package eventq

import (
	"fmt"
	"math/rand"
	"testing"
)

// popRecord is one fired event in a drain, captured for order comparison.
type popRecord struct {
	at   Time
	name string
}

// mirror drives a single Queue and a Sharded queue through the same
// randomized schedule of operations and returns both pop logs. Events are
// assigned to shards round-robin by id — the partition must not matter.
func mirror(t *testing.T, seed int64, shards, ops int) (single, sharded []popRecord) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	q := &Queue{}
	s := NewSharded(shards)

	type pair struct {
		se, sh *Event
		name   string
	}
	var live []*pair // caller-owned, possibly pending
	now := Time(0)
	id := 0

	record := func(log *[]popRecord, name string) func(Time) {
		return func(at Time) { *log = append(*log, popRecord{at, name}) }
	}

	for op := 0; op < ops; op++ {
		switch k := rng.Intn(10); {
		case k < 3: // Push
			at := now + Time(rng.Intn(50))
			name := fmt.Sprintf("push%d", id)
			shard := id % (shards + 1) // sometimes the global queue
			p := &pair{name: name}
			p.se = q.Push(at, record(&single, name))
			p.sh = s.Push(shard, at, record(&sharded, name))
			live = append(live, p)
			id++
		case k < 5: // PushPooled (fire-and-forget; no handle kept)
			at := now + Time(rng.Intn(50))
			name := fmt.Sprintf("pool%d", id)
			shard := id % shards
			q.PushPooled(at, record(&single, name))
			s.PushPooled(shard, at, record(&sharded, name))
			id++
		case k < 7 && len(live) > 0: // Schedule (move or re-insert)
			p := live[rng.Intn(len(live))]
			at := now + Time(rng.Intn(50))
			// Re-route to a different shard half the time.
			shard := id % shards
			q.Schedule(p.se, at)
			s.Schedule(p.sh, shard, at)
			id++
		case k < 8 && len(live) > 0: // Remove
			i := rng.Intn(len(live))
			p := live[i]
			r1 := q.Remove(p.se)
			r2 := s.Remove(p.sh)
			if r1 != r2 {
				t.Fatalf("Remove(%s): single=%v sharded=%v", p.name, r1, r2)
			}
			live = append(live[:i], live[i+1:]...)
		default: // Pop one event from each
			e1, e2 := q.Pop(), s.Pop()
			if (e1 == nil) != (e2 == nil) {
				t.Fatalf("pop mismatch: single=%v sharded=%v", e1, e2)
			}
			if e1 != nil {
				if e1.At > now {
					now = e1.At
				}
				e1.Fire(e1.At)
				e2.Fire(e2.At)
				q.Release(e1)
				s.Release(e2)
			}
		}
		if q.Len() != s.Len() {
			t.Fatalf("op %d: Len single=%d sharded=%d", op, q.Len(), s.Len())
		}
	}
	// Drain both fully.
	for {
		e1, e2 := q.Pop(), s.Pop()
		if (e1 == nil) != (e2 == nil) {
			t.Fatalf("drain mismatch: single=%v sharded=%v", e1, e2)
		}
		if e1 == nil {
			break
		}
		e1.Fire(e1.At)
		e2.Fire(e2.At)
		q.Release(e1)
		s.Release(e2)
	}
	return single, sharded
}

// TestShardedMatchesSingleQueue is the core determinism property of the
// sharded engine: for any shard count and any interleaving of Push,
// PushPooled, Schedule, Remove and Pop, the sharded queue pops events in
// exactly the order a single queue does.
func TestShardedMatchesSingleQueue(t *testing.T) {
	for _, shards := range []int{1, 2, 4, 7, 16} {
		shards := shards
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			for seed := int64(1); seed <= 20; seed++ {
				single, sharded := mirror(t, seed, shards, 400)
				if len(single) != len(sharded) {
					t.Fatalf("seed %d: fired %d vs %d events", seed, len(single), len(sharded))
				}
				for i := range single {
					if single[i] != sharded[i] {
						t.Fatalf("seed %d: event %d: single fired %v, sharded fired %v",
							seed, i, single[i], sharded[i])
					}
				}
			}
		})
	}
}

// TestShardedScheduleReroutes proves a caller-owned event moves between
// sub-queues when rescheduled with a different shard.
func TestShardedScheduleReroutes(t *testing.T) {
	s := NewSharded(4)
	fired := 0
	e := NewEvent(func(now Time) { fired++ })
	s.Schedule(e, 0, 10)
	if s.ShardLen(0) != 1 {
		t.Fatalf("shard 0 len = %d", s.ShardLen(0))
	}
	s.Schedule(e, 3, 5)
	if s.ShardLen(0) != 0 || s.ShardLen(3) != 1 {
		t.Fatalf("after reroute: shard0=%d shard3=%d", s.ShardLen(0), s.ShardLen(3))
	}
	got := s.Pop()
	if got != e || got.At != 5 {
		t.Fatalf("Pop = %v", got)
	}
	got.Fire(got.At)
	if fired != 1 {
		t.Fatalf("fired = %d", fired)
	}
	if s.Len() != 0 {
		t.Fatalf("Len = %d", s.Len())
	}
}

// TestShardedGlobalHorizon checks PeekGlobal sees only control events.
func TestShardedGlobalHorizon(t *testing.T) {
	s := NewSharded(2)
	s.Push(0, 5, func(Time) {})
	s.Push(1, 7, func(Time) {})
	if g := s.PeekGlobal(); g != nil {
		t.Fatalf("PeekGlobal = %v with no global events", g)
	}
	s.Push(s.Global(), 9, func(Time) {})
	g := s.PeekGlobal()
	if g == nil || g.At != 9 {
		t.Fatalf("PeekGlobal = %v, want At=9", g)
	}
	// The global event must still lose to earlier shard events in Pop.
	if e := s.Pop(); e == nil || e.At != 5 {
		t.Fatalf("Pop = %v, want At=5", e)
	}
}

// TestShardedWindow exercises the parallel-window protocol sequentially:
// per-shard sequence streams during the window, deterministic fold-back,
// and the global-push tripwire.
func TestShardedWindow(t *testing.T) {
	s := NewSharded(2)
	var log []popRecord
	rec := func(name string) func(Time) {
		return func(at Time) { log = append(log, popRecord{at, name}) }
	}
	s.Push(s.Global(), 100, rec("horizon"))

	s.BeginWindow()
	// Each shard schedules its own work; same-time cross-shard order is
	// decided by shard index.
	s.PushPooled(1, 10, rec("b"))
	s.PushPooled(0, 10, rec("a"))
	s.PushPooled(0, 20, rec("c"))
	horizon := s.PeekGlobal().At
	for shard := 0; shard < s.Shards(); shard++ {
		for {
			e := s.ShardPopBefore(shard, horizon)
			if e == nil {
				break
			}
			e.Fire(e.At)
			s.ShardRelease(e)
		}
	}
	s.EndWindow()

	// Shard-major drain order: shard 0 fully drains before shard 1 here,
	// but within a shard time order holds.
	want := []popRecord{{10, "a"}, {20, "c"}, {10, "b"}}
	if len(log) != len(want) {
		t.Fatalf("log = %v", log)
	}
	for i := range want {
		if log[i] != want[i] {
			t.Fatalf("log = %v, want %v", log, want)
		}
	}

	// After the window, sequencing resumes globally and deterministically.
	s.PushPooled(0, 50, rec("d"))
	for {
		e := s.Pop()
		if e == nil {
			break
		}
		e.Fire(e.At)
		s.Release(e)
	}
	if log[len(log)-2].name != "d" || log[len(log)-1].name != "horizon" {
		t.Fatalf("tail of log = %v", log[len(log)-2:])
	}

	// Global pushes inside a window must panic: they would invalidate
	// the lookahead horizon.
	s.BeginWindow()
	defer s.EndWindow()
	defer func() {
		if recover() == nil {
			t.Error("no panic for global push inside a window")
		}
	}()
	s.Push(s.Global(), 999, func(Time) {})
}

// TestShardedPopTieBreak pins the cross-heap tie-break: equal (At, seq)
// — only possible from window mode — resolves by shard index.
func TestShardedPopTieBreak(t *testing.T) {
	s := NewSharded(3)
	s.BeginWindow()
	// All three shards start from the same seq base, so these collide
	// on both At and seq.
	s.Push(2, 10, func(Time) {})
	s.Push(0, 10, func(Time) {})
	s.Push(1, 10, func(Time) {})
	s.EndWindow()
	var order []int32
	for e := s.Pop(); e != nil; e = s.Pop() {
		order = append(order, e.shard)
	}
	if len(order) != 3 || order[0] != 0 || order[1] != 1 || order[2] != 2 {
		t.Fatalf("pop order = %v, want [0 1 2]", order)
	}
}
