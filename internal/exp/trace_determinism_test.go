package exp

import (
	"bytes"
	"encoding/json"
	"testing"

	"repro/internal/metrics"
)

// traceRun executes one experiment with tracing and metrics attached
// and returns the trace bytes, the metrics snapshot, and the rendered
// tables.
func traceRun(t *testing.T, id string, par int) (traceJSON []byte, snap metrics.Snapshot, tables string) {
	t.Helper()
	e, err := ByID(id)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	ctx := &Context{Reps: 2, Scale: 32, Seed: 20100109, Parallelism: par}
	ctx.Trace = NewTraceSink(&buf, 0)
	ctx.Metrics = metrics.NewAggregate()
	out := renderAll(e.Run(ctx))
	if err := ctx.Trace.Close(); err != nil {
		t.Fatalf("trace close: %v", err)
	}
	return buf.Bytes(), ctx.Metrics.Snapshot(), out
}

// TestTraceParallelDeterminism extends the harness reproducibility
// guarantee to the observability layer: the Chrome trace JSON and the
// aggregated metrics snapshot are byte-identical across Parallelism
// ∈ {1, 2, 8}. fig1 is the analytic experiment (no simulated cells —
// its trace must be empty but valid); abl-jit runs real Submit/Repeat
// cells through every traced subsystem.
func TestTraceParallelDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("determinism regression test skipped in short mode")
	}
	for _, id := range []string{"fig1", "abl-jit"} {
		id := id
		t.Run(id, func(t *testing.T) {
			baseTrace, baseSnap, baseTables := traceRun(t, id, 1)
			if !json.Valid(baseTrace) {
				t.Fatalf("trace is not valid JSON:\n%.200s", baseTrace)
			}
			var doc struct {
				TraceEvents []json.RawMessage `json:"traceEvents"`
			}
			if err := json.Unmarshal(baseTrace, &doc); err != nil {
				t.Fatalf("trace does not parse as a trace-event document: %v", err)
			}
			if id == "abl-jit" && len(doc.TraceEvents) == 0 {
				t.Error("abl-jit runs simulated cells but traced no events")
			}
			for _, par := range []int{2, 8} {
				gotTrace, gotSnap, gotTables := traceRun(t, id, par)
				if !bytes.Equal(gotTrace, baseTrace) {
					t.Errorf("trace bytes differ between Parallelism 1 and %d (%d vs %d bytes)",
						par, len(baseTrace), len(gotTrace))
				}
				if len(gotSnap.Counters) != len(baseSnap.Counters) {
					t.Errorf("Parallelism %d: %d counters, want %d", par, len(gotSnap.Counters), len(baseSnap.Counters))
				} else {
					for i, c := range gotSnap.Counters {
						if c != baseSnap.Counters[i] {
							t.Errorf("Parallelism %d: counter %d = %+v, want %+v", par, i, c, baseSnap.Counters[i])
						}
					}
				}
				if gotTables != baseTables {
					t.Errorf("Parallelism %d: traced run rendered different tables", par)
				}
			}
			// Tracing must not perturb the measured output either: the
			// rendered tables of a traced run match an untraced one.
			e, _ := ByID(id)
			plain := renderAll(e.Run(&Context{Reps: 2, Scale: 32, Seed: 20100109, Parallelism: 1}))
			if plain != baseTables {
				t.Error("attaching the tracer changed the rendered tables")
			}
		})
	}
}
