package exp

import (
	"strings"
	"testing"
)

// renderAll concatenates an experiment's rendered tables — the exact
// bytes `lbos run` prints.
func renderAll(tables []*Table) string {
	var b strings.Builder
	for _, t := range tables {
		t.Render(&b)
	}
	return b.String()
}

// TestParallelDeterminism is the reproducibility guarantee of the
// harness: for a sample of experiments the rendered output is
// byte-identical across Parallelism ∈ {1, 2, 8} and across repeated
// runs with the same seed.
func TestParallelDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("determinism regression test skipped in short mode")
	}
	ids := []string{"fig1", "table1", "abl-jit"}
	for _, id := range ids {
		id := id
		t.Run(id, func(t *testing.T) {
			e, err := ByID(id)
			if err != nil {
				t.Fatal(err)
			}
			render := func(par int) string {
				ctx := &Context{Reps: 2, Scale: 32, Seed: 20100109, Parallelism: par}
				return renderAll(e.Run(ctx))
			}
			base := render(1)
			if base == "" {
				t.Fatal("empty render")
			}
			for _, par := range []int{2, 8} {
				if got := render(par); got != base {
					t.Errorf("output differs between Parallelism 1 and %d:\n--- parallel=1 ---\n%s--- parallel=%d ---\n%s",
						par, base, par, got)
				}
			}
			// Same seed, same parallelism, second run: repeatability.
			if got := render(1); got != base {
				t.Errorf("repeated run with identical seed differs:\n--- first ---\n%s--- second ---\n%s", base, got)
			}
		})
	}
}

// TestParallelDeterminismAcrossSeeds guards against the grid sharing RNG
// state between cells: changing the base seed must change measured
// experiment output (abl-jit tabulates run-time variation, which is
// seed-sensitive), while each seed stays self-consistent.
func TestParallelDeterminismAcrossSeeds(t *testing.T) {
	if testing.Short() {
		t.Skip("determinism regression test skipped in short mode")
	}
	e, err := ByID("abl-jit")
	if err != nil {
		t.Fatal(err)
	}
	render := func(seed uint64) string {
		ctx := &Context{Reps: 2, Scale: 32, Seed: seed, Parallelism: 4}
		return renderAll(e.Run(ctx))
	}
	a, b := render(1), render(2)
	if a2 := render(1); a2 != a {
		t.Error("seed 1 not repeatable")
	}
	if a == b {
		t.Error("different base seeds produced identical measured output")
	}
}
