// Package perturb is the deterministic fault- and noise-injection layer:
// it composes OS-level interference onto any simulated run — the
// perturbations of the paper's robustness sections (§6.4–§6.6) that a
// clean simulator otherwise lacks.
//
// Four perturbation families are modelled, each driven by its own
// sub-configuration:
//
//   - Kernel noise (NoiseConfig): per-core bursts that steal a fraction
//     of wall time from whatever is running (interrupt handlers, kernel
//     threads, SMM). The victim's measured speed t_exec/t_real drops —
//     the signal speed balancing reacts to — while its run-queue length
//     is unchanged, so queue-length balancers cannot see it. This is
//     the missing ingredient for the paper's ompS result.
//   - Core hotplug (HotplugConfig): cores are taken offline and brought
//     back, forcing the machine to drain their tasks and the balancers
//     to re-place work (sim.Machine.SetCoreOnline semantics).
//   - Frequency drift (FreqConfig): per-core dynamic frequency factors
//     performing a bounded random walk — §6.6's slow cores, made
//     time-varying. A slowed core retires work more slowly but still
//     accrues exec time at wall rate.
//   - Interrupt storms (StormConfig): whole-socket slices during which
//     every core of one socket is (near-)frozen.
//
// Determinism: an Injector draws all randomness from RNG streams split
// off the machine's seeded generator in a fixed order at Start, so the
// full perturbation schedule is a pure function of (config, machine
// seed). No wall clock, no maps on any emission path; runs under
// perturbation stay bit-identical at any -parallel level.
//
// Invariants preserved under every perturbation: no task is lost
// (unplug drains, wakes redirect), task exec time never exceeds wall
// time, and core busy time never exceeds elapsed×cores — enforced by
// the internal/sim invariant suite running perturbed draws.
package perturb

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/cpuset"
)

// NoiseConfig describes recurring per-core kernel-noise bursts. Each
// core in Cores independently starts a burst roughly every Period; a
// burst lasts Duration and steals Steal of the core's wall time.
type NoiseConfig struct {
	// Period is the mean gap between burst starts on one core.
	Period time.Duration
	// Duration is the mean burst length.
	Duration time.Duration
	// Jitter in [0,1] randomises each gap and burst length by
	// ±Jitter×mean (uniform).
	Jitter float64
	// Steal in (0,1] is the fraction of wall time stolen during a burst.
	Steal float64
	// Cores restricts the noise to a core subset; zero means all cores.
	Cores cpuset.Set
	// Kthread switches the burst mechanism: instead of IRQ/SMM-style
	// theft (unschedulable, invisible to run queues), each noisy core
	// gets a pinned high-priority kernel daemon task that wakes for
	// every burst, computes Steal×Duration, and sleeps again. The theft
	// is then *visible* to queue-length balancers — which, as the paper
	// observes (§6.4), react to it by migrating application threads,
	// while a speed balancer's longer horizon filters it out.
	Kthread bool
}

// HotplugConfig describes core hot-unplug/replug events: roughly every
// Interval one online core is unplugged and replugged OffTime later.
type HotplugConfig struct {
	// Interval is the mean gap between unplug events.
	Interval time.Duration
	// OffTime is the mean time a core stays offline.
	OffTime time.Duration
	// Jitter in [0,1] randomises gaps and off-times by ±Jitter×mean.
	Jitter float64
	// MaxOffline caps how many cores may be offline at once (default 1).
	// The machine additionally never allows the last online core to go.
	MaxOffline int
	// Cores restricts unplugging to a core subset; zero means all cores.
	Cores cpuset.Set
}

// FreqConfig describes per-core dynamic frequency asymmetry: each core
// starts at a random factor in [Min,Max] and performs a bounded random
// walk, stepping every Interval.
type FreqConfig struct {
	// Interval is the mean gap between frequency steps on one core.
	Interval time.Duration
	// Min and Max bound the frequency factor (1.0 is nominal speed).
	Min, Max float64
	// Step is the maximum per-step change (uniform in ±Step).
	Step float64
	// Jitter in [0,1] randomises the step gaps by ±Jitter×mean.
	Jitter float64
	// Cores restricts the drift to a core subset; zero means all cores.
	Cores cpuset.Set
}

// StormConfig describes machine-wide interrupt storms: roughly every
// Period one socket is picked and every core on it has Steal of its
// wall time stolen for Duration.
type StormConfig struct {
	// Period is the mean gap between storms.
	Period time.Duration
	// Duration is the mean storm length.
	Duration time.Duration
	// Jitter in [0,1] randomises gaps and lengths by ±Jitter×mean.
	Jitter float64
	// Steal in (0,1] is the stolen fraction during the storm (1 freezes
	// the socket outright).
	Steal float64
}

// Config combines the enabled perturbation families. The zero Config is
// inert. A family is enabled when its period/interval is positive.
type Config struct {
	Noise   NoiseConfig
	Hotplug HotplugConfig
	Freq    FreqConfig
	Storm   StormConfig

	// ShardLocal routes the per-core families (IRQ-style noise bursts
	// and frequency drift) onto their cores' shard queues, so they run
	// inside parallel windows instead of bounding conservative
	// lookahead. Each per-core injector only ever touches its own core,
	// so results stay bit-identical — with one contract change: the
	// injectors stop watching for workload drain (a machine-global
	// read), so the run must be bounded by Machine.Run(until) or Stop
	// rather than by the event queue emptying. Hotplug and storms are
	// machine-global by nature and always stay on the control queue.
	ShardLocal bool
}

// Active reports whether any perturbation family is enabled.
func (c Config) Active() bool {
	return c.Noise.Period > 0 || c.Hotplug.Interval > 0 ||
		c.Freq.Interval > 0 || c.Storm.Period > 0
}

// DefaultNoise is the canned kernel-noise profile: 600 µs bursts
// stealing 90% of a core roughly every 6 ms — the magnitude of timer
// ticks, RCU callbacks and kworker activity on a busy Linux node, large
// enough to skew fine-grained barrier rounds (the ompS regime).
func DefaultNoise() NoiseConfig {
	return NoiseConfig{Period: 6 * time.Millisecond, Duration: 600 * time.Microsecond,
		Jitter: 0.8, Steal: 0.9}
}

// IRQNoise is the core-concentrated heavy-noise profile: bursts of
// 4.8 ms every 6 ms stealing 90% — a core saturated by pinned interrupt
// work (softirq storms, housekeeping threads with IRQ affinity),
// averaging ~72% theft on the afflicted cores and nothing elsewhere.
// Unlike DefaultNoise's uniform background hum, this asymmetry persists
// per core, so a speed balancer sampling at 100 ms can see and avoid
// it while a run-queue balancer cannot — the paper's §6.4 regime.
func IRQNoise(cores cpuset.Set) NoiseConfig {
	return NoiseConfig{Period: 6 * time.Millisecond, Duration: 4800 * time.Microsecond,
		Jitter: 0.3, Steal: 0.9, Cores: cores}
}

// KthreadNoise is the schedulable kernel-noise profile: a nice −20
// kworker per core waking roughly every 6 ms to run for 600 µs. Unlike
// DefaultNoise's IRQ-style theft, these bursts sit on run queues, so
// load balancers see (and chase) them.
func KthreadNoise() NoiseConfig {
	return NoiseConfig{Period: 8 * time.Millisecond, Duration: 600 * time.Microsecond,
		Jitter: 0.8, Steal: 1.0, Kthread: true}
}

// DefaultHotplug is the canned hotplug profile: one core out roughly
// every 400 ms, staying off for 150 ms.
func DefaultHotplug() HotplugConfig {
	return HotplugConfig{Interval: 400 * time.Millisecond, OffTime: 150 * time.Millisecond,
		Jitter: 0.5, MaxOffline: 1}
}

// DefaultFreq is the canned frequency-drift profile: factors walking in
// [0.5, 1.0] with 0.1 steps every 50 ms.
func DefaultFreq() FreqConfig {
	return FreqConfig{Interval: 50 * time.Millisecond, Min: 0.5, Max: 1.0,
		Step: 0.1, Jitter: 0.5}
}

// DefaultStorm is the canned interrupt-storm profile: one socket frozen
// for 3 ms roughly every 250 ms.
func DefaultStorm() StormConfig {
	return StormConfig{Period: 250 * time.Millisecond, Duration: 3 * time.Millisecond,
		Jitter: 0.5, Steal: 1.0}
}

// Parse turns a -perturb flag value into a Config: a comma-separated
// list of family names ("noise", "hotplug", "freq", "storm", or "all"),
// each enabling its canned default profile. The empty string yields an
// inert Config.
func Parse(spec string) (Config, error) {
	var c Config
	if spec == "" {
		return c, nil
	}
	for _, name := range strings.Split(spec, ",") {
		switch strings.TrimSpace(name) {
		case "noise":
			c.Noise = DefaultNoise()
		case "kthread":
			c.Noise = KthreadNoise()
		case "hotplug":
			c.Hotplug = DefaultHotplug()
		case "freq":
			c.Freq = DefaultFreq()
		case "storm":
			c.Storm = DefaultStorm()
		case "all":
			c.Noise = DefaultNoise()
			c.Hotplug = DefaultHotplug()
			c.Freq = DefaultFreq()
			c.Storm = DefaultStorm()
		case "":
		default:
			return Config{}, fmt.Errorf("perturb: unknown family %q (want noise, kthread, hotplug, freq, storm or all)", name)
		}
	}
	return c, nil
}
