// Package exp is the experiment harness: it regenerates every table and
// figure of the paper's evaluation (§6) plus the ablations listed in
// DESIGN.md §4, rendering results as text tables (and CSV).
//
// Each experiment is registered under the ID used throughout DESIGN.md
// and EXPERIMENTS.md (fig1, fig2, fig3t, fig3b, fig4, fig4omp, fig5,
// fig6, table1, table2, table3, ompS, abl-*). `lbos run <id>` executes
// one; `go test -bench` runs scaled-down versions of all of them.
package exp

import (
	"fmt"
	"io"
	"runtime"
	"sort"
	"sync"

	"repro/internal/metrics"
	"repro/internal/perturb"
)

// Context carries run-wide settings into experiments.
type Context struct {
	// Reps is the number of repetitions per configuration (the paper
	// repeats each experiment ten times or more).
	Reps int
	// Scale divides workload sizes: 1 = full paper scale, larger values
	// shrink iteration counts/work for quick runs (benches use 8).
	Scale int
	// Seed is the base RNG seed; repetition r of configuration k uses a
	// deterministic function of (Seed, k, r).
	Seed uint64
	// Parallelism is the number of worker goroutines the experiment
	// Runner uses for the (configuration × repetition) grid (0 or
	// negative = GOMAXPROCS). Each cell is an isolated single-threaded
	// simulation seeded by seedFor, and results are aggregated in
	// submission order, so rendered tables are bit-identical at every
	// parallelism level.
	Parallelism int
	// FailFast cancels an experiment's remaining cells as soon as one
	// run overruns its simulated time limit, instead of tabulating the
	// truncated value; the Runner then panics with a description of the
	// overrun cell.
	FailFast bool
	// Log receives progress lines (nil discards).
	Log io.Writer
	// Trace, when set, collects every Submit/Repeat cell's scheduling
	// events into one Chrome trace stream. Cells record into private
	// rings and are flushed in submission order, so the trace bytes are
	// identical at every Parallelism (SubmitFunc custom cells are not
	// traced — they build their own machines).
	Trace *TraceSink
	// Metrics, when set, aggregates every Submit/Repeat cell's metrics
	// registry, merged in submission order.
	Metrics *metrics.Aggregate
	// Perturb, when active, composes deterministic fault injection
	// (kernel noise, hotplug, frequency drift, interrupt storms) onto
	// every Submit/Repeat cell that does not set its own perturbation.
	// The injector draws from each cell's seeded RNG, so perturbed
	// tables remain bit-identical at every Parallelism.
	Perturb perturb.Config
	// Predict turns on the speed balancer's anticipatory mode
	// (speedbal.Config.Predict with predict.DefaultConfig) in every
	// Submit/Repeat cell that does not configure prediction itself —
	// the -predict flag of `lbos run`. Cells not using the speed
	// balancer are unaffected.
	Predict bool
	// Shards partitions every cell's simulator into per-socket event
	// shards (sim.Config.Shards): 0/1 keeps the single queue, larger
	// values are clamped to the machine's socket count. Results are
	// bit-identical at every shard count — that invariant is what
	// internal/difftest proves.
	Shards int
	// ShardParallel additionally lets shard-confined spans of each
	// cell's simulation run on parallel goroutines (conservative
	// lookahead windows). Outputs stay bit-identical; see
	// sim.Config.ShardParallel for the isolation contract.
	ShardParallel bool
	// Interrupt, when non-nil, lets an external owner (the lbosd
	// serving daemon, a request context) abort the grid: once the
	// channel is closed, workers skip every not-yet-started cell and
	// Wait panics with ErrInterrupted. Cells already executing run to
	// completion — interruption never truncates a simulation mid-run,
	// so the callbacks delivered before the abort are still bit-exact.
	Interrupt <-chan struct{}

	// logMu serialises Logf writes: cells complete on worker
	// goroutines, and experiments log from result callbacks while the
	// Runner logs its own progress.
	logMu sync.Mutex
}

// DefaultContext returns paper-scale settings: 10 repetitions, scale 1.
func DefaultContext() *Context {
	return &Context{Reps: 10, Scale: 1, Seed: 20100109} // PPoPP'10 date
}

// QuickContext returns a scaled-down context for tests and benches.
func QuickContext() *Context {
	return &Context{Reps: 3, Scale: 8, Seed: 20100109}
}

// Logf writes a progress line. It is safe for concurrent use: lines
// from parallel cells are serialised, never interleaved.
func (c *Context) Logf(format string, args ...any) {
	if c.Log == nil {
		return
	}
	c.logMu.Lock()
	defer c.logMu.Unlock()
	fmt.Fprintf(c.Log, format+"\n", args...)
}

// parallelism resolves the effective worker count.
func (c *Context) parallelism() int {
	if c.Parallelism > 0 {
		return c.Parallelism
	}
	return runtime.GOMAXPROCS(0)
}

// Experiment regenerates one paper artifact.
type Experiment struct {
	// ID is the short handle (e.g. "fig3t").
	ID string
	// Title is the human description.
	Title string
	// PaperRef names the artifact in the paper ("Figure 3, left").
	PaperRef string
	// Expect summarises the shape the paper reports, for side-by-side
	// reading in EXPERIMENTS.md.
	Expect string
	// Run executes the experiment and returns its tables.
	Run func(ctx *Context) []*Table
}

var registry = map[string]*Experiment{}

// Register adds an experiment; duplicate IDs panic.
func Register(e *Experiment) {
	if _, dup := registry[e.ID]; dup {
		panic(fmt.Sprintf("exp: duplicate experiment %q", e.ID))
	}
	registry[e.ID] = e
}

// ByID returns the experiment or an error listing valid IDs.
func ByID(id string) (*Experiment, error) {
	if e, ok := registry[id]; ok {
		return e, nil
	}
	ids := make([]string, 0, len(registry))
	for k := range registry {
		ids = append(ids, k)
	}
	sort.Strings(ids)
	return nil, fmt.Errorf("exp: unknown experiment %q (have %v)", id, ids)
}

// All returns every experiment sorted by ID.
func All() []*Experiment {
	out := make([]*Experiment, 0, len(registry))
	for _, e := range registry {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// seedFor derives a per-(configuration, repetition) seed.
func seedFor(base uint64, config, rep int) uint64 {
	x := base ^ uint64(config)*0x9e3779b97f4a7c15 ^ uint64(rep)*0xbf58476d1ce4e5b9
	// One splitmix-style mix so nearby inputs decorrelate.
	x ^= x >> 30
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}
