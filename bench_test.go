package lbos

// One benchmark per table and figure of the paper (see DESIGN.md §4).
// Each bench executes a scaled-down rendition of the corresponding
// experiment — the same code paths `lbos run <id>` uses at paper scale —
// and reports the experiment's key quantity as a custom metric, so
// `go test -bench=. -benchmem` both exercises and summarises the whole
// reproduction. Absolute wall times measure simulator throughput;
// the custom metrics measure the reproduced result.

import (
	"fmt"
	"strconv"
	"testing"

	"repro/internal/exp"
)

// benchCtx returns a context small enough for benchmarking but large
// enough to keep the paper's shapes visible.
func benchCtx() *exp.Context {
	return &exp.Context{Reps: 2, Scale: 8, Seed: 20100109}
}

// runExperiment executes the experiment b.N times and returns the final
// tables for metric extraction.
func runExperiment(b *testing.B, id string) []*exp.Table {
	b.Helper()
	e, err := exp.ByID(id)
	if err != nil {
		b.Fatal(err)
	}
	var tables []*exp.Table
	for i := 0; i < b.N; i++ {
		tables = e.Run(benchCtx())
	}
	return tables
}

// cell parses a numeric table cell; "-" and labels yield NaN-free skips.
func cell(t *exp.Table, row, col int) (float64, bool) {
	if row < 0 || col < 0 || row >= len(t.Rows) || col >= len(t.Rows[row]) {
		return 0, false
	}
	v, err := strconv.ParseFloat(t.Rows[row][col], 64)
	return v, err == nil
}

// colIndex finds a column by header name.
func colIndex(t *exp.Table, name string) int {
	for i, c := range t.Columns {
		if c == name {
			return i
		}
	}
	return -1
}

// BenchmarkTable1Systems regenerates Table 1 (machine descriptions).
func BenchmarkTable1Systems(b *testing.B) {
	tables := runExperiment(b, "table1")
	b.ReportMetric(float64(len(tables[0].Rows)), "properties")
}

// BenchmarkFig1ModelSurface regenerates Figure 1 (the Lemma 1 threshold
// surface) and reports the fraction of splits with min S ≤ 1.
func BenchmarkFig1ModelSurface(b *testing.B) {
	runExperiment(b, "fig1")
}

// BenchmarkFig2GranularitySweep regenerates Figure 2 and reports the
// best (SPEED, B=20 ms, coarsest S) and worst (LOAD) slowdowns.
func BenchmarkFig2GranularitySweep(b *testing.B) {
	tables := runExperiment(b, "fig2")
	t := tables[0]
	last := len(t.Rows) - 1
	if v, ok := cell(t, last, 2); ok { // SPEED B=20ms at coarsest grain
		b.ReportMetric(v, "slowdown-speed-20ms")
	}
	if v, ok := cell(t, last, 1); ok {
		b.ReportMetric(v, "slowdown-load")
	}
}

// benchFig3 shares logic for the two machines.
func benchFig3(b *testing.B, id string) {
	tables := runExperiment(b, id)
	t := tables[0]
	row := len(t.Rows) - 3 // the 12-core row: mid-range, not a divisor of 16
	if v, ok := cell(t, row, colIndex(t, "SPEED")); ok {
		b.ReportMetric(v, "speedup-speed-12c")
	}
	if v, ok := cell(t, row, colIndex(t, "LOAD-YIELD")); ok {
		b.ReportMetric(v, "speedup-load-12c")
	}
	if v, ok := cell(t, row, colIndex(t, "PINNED")); ok {
		b.ReportMetric(v, "speedup-pinned-12c")
	}
}

// BenchmarkFig3TigertonEP regenerates Figure 3 (left).
func BenchmarkFig3TigertonEP(b *testing.B) { benchFig3(b, "fig3t") }

// BenchmarkFig3BarcelonaEP regenerates Figure 3 (right).
func BenchmarkFig3BarcelonaEP(b *testing.B) { benchFig3(b, "fig3b") }

// BenchmarkFig4UPCSuite regenerates Figure 4 and reports the mean
// SPEED/LOAD average-time ratio over the suite.
func BenchmarkFig4UPCSuite(b *testing.B) {
	tables := runExperiment(b, "fig4")
	t := tables[0]
	sum, n := 0.0, 0
	col := colIndex(t, "SB_AVG/LB_AVG")
	for r := range t.Rows {
		if v, ok := cell(t, r, col); ok {
			sum += v
			n++
		}
	}
	if n > 0 {
		b.ReportMetric(sum/float64(n), "mean-speed/load-ratio")
	}
}

// BenchmarkFig4OpenMPBlocktime regenerates the OpenMP DEF/INF
// comparison.
func BenchmarkFig4OpenMPBlocktime(b *testing.B) {
	tables := runExperiment(b, "fig4omp")
	t := tables[0]
	all := len(t.Rows) - 1
	if v, ok := cell(t, all, colIndex(t, "SB_INF/LB_INF")); ok {
		b.ReportMetric(v, "sbinf/lbinf")
	}
	if v, ok := cell(t, all, colIndex(t, "LB_INF/LB_DEF")); ok {
		b.ReportMetric(v, "lbinf/lbdef")
	}
}

// BenchmarkFig5CPUHog regenerates Figure 5 and reports the 16-core
// speedups under SPEED, LOAD and PINNED.
func BenchmarkFig5CPUHog(b *testing.B) {
	tables := runExperiment(b, "fig5")
	t := tables[0]
	last := len(t.Rows) - 1
	if v, ok := cell(t, last, colIndex(t, "SPEED")); ok {
		b.ReportMetric(v, "speedup-speed-16c")
	}
	if v, ok := cell(t, last, colIndex(t, "PINNED")); ok {
		b.ReportMetric(v, "speedup-pinned-16c")
	}
}

// BenchmarkFig6MakeJ regenerates Figure 6 and reports the mean
// SPEED/LOAD ratio across benchmarks and -j widths.
func BenchmarkFig6MakeJ(b *testing.B) {
	tables := runExperiment(b, "fig6")
	t := tables[0]
	sum, n := 0.0, 0
	for r := range t.Rows {
		for c := 1; c < len(t.Columns); c++ {
			if v, ok := cell(t, r, c); ok {
				sum += v
				n++
			}
		}
	}
	if n > 0 {
		b.ReportMetric(sum/float64(n), "mean-speed/load-ratio")
	}
}

// BenchmarkTable2Characteristics regenerates Table 2 and reports the
// measured Tigerton speedup of ft.B (paper: 5.3).
func BenchmarkTable2Characteristics(b *testing.B) {
	tables := runExperiment(b, "table2")
	t := tables[0]
	for r, row := range t.Rows {
		if row[0] == "ft.B" {
			if v, ok := cell(t, r, colIndex(t, "speedupT")); ok {
				b.ReportMetric(v, "ft.B-speedupT")
			}
			if v, ok := cell(t, r, colIndex(t, "speedupB")); ok {
				b.ReportMetric(v, "ft.B-speedupB")
			}
		}
	}
}

// BenchmarkTable3Summary regenerates Table 3 and reports the "all"
// aggregate improvements.
func BenchmarkTable3Summary(b *testing.B) {
	tables := runExperiment(b, "table3")
	t := tables[0]
	all := len(t.Rows) - 1
	if v, ok := cell(t, all, colIndex(t, "vs LB avg")); ok {
		b.ReportMetric(v, "improv-vs-load-%")
	}
	if v, ok := cell(t, all, colIndex(t, "vs PINNED")); ok {
		b.ReportMetric(v, "improv-vs-pinned-%")
	}
}

// BenchmarkOpenMPClassS regenerates the §6.4 class-S result (recorded as
// a negative result; see EXPERIMENTS.md).
func BenchmarkOpenMPClassS(b *testing.B) {
	tables := runExperiment(b, "ompS")
	t := tables[0]
	last := len(t.Rows) - 1
	if v, ok := cell(t, last, colIndex(t, "SB_INF vs LB_DEF %")); ok {
		b.ReportMetric(v, "improv-%")
	}
}

// Ablation benches (DESIGN.md §4).

// BenchmarkAblationThreshold sweeps T_s.
func BenchmarkAblationThreshold(b *testing.B) {
	tables := runExperiment(b, "abl-ts")
	t := tables[0]
	for r, row := range t.Rows {
		if row[0] == "0.9" {
			if v, ok := cell(t, r, colIndex(t, "balanced-run migrations")); ok {
				b.ReportMetric(v, "spurious-migs-at-0.9")
			}
		}
		_ = r
	}
}

// BenchmarkAblationInterval sweeps the balance interval.
func BenchmarkAblationInterval(b *testing.B) { runExperiment(b, "abl-int") }

// BenchmarkAblationJitter compares jitter on/off.
func BenchmarkAblationJitter(b *testing.B) { runExperiment(b, "abl-jit") }

// BenchmarkAblationNUMA compares NUMA blocking on/off.
func BenchmarkAblationNUMA(b *testing.B) { runExperiment(b, "abl-numa") }

// BenchmarkAblationPullPolicy compares victim-selection policies.
func BenchmarkAblationPullPolicy(b *testing.B) {
	tables := runExperiment(b, "abl-pull")
	t := tables[0]
	col := colIndex(t, "max per-thread migrations")
	if v, ok := cell(t, 0, col); ok {
		b.ReportMetric(v, "least-migrated-max")
	}
	if v, ok := cell(t, 2, col); ok {
		b.ReportMetric(v, "most-migrated-max")
	}
}

// Harness benchmarks: the same experiment grid executed serially and on
// the worker pool. Compare ns/op between the pair to see the wall-clock
// gain of `-parallel` on your host (on a ≥4-core machine the parallel
// variant should be ≥2× faster; outputs are bit-identical either way —
// see TestParallelDeterminism in internal/exp).

// benchHarness runs the Figure 3 Tigerton grid at the given pool width.
func benchHarness(b *testing.B, parallelism int) {
	b.Helper()
	e, err := exp.ByID("fig3t")
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		ctx := benchCtx()
		ctx.Parallelism = parallelism
		e.Run(ctx)
	}
}

// BenchmarkHarnessSerial runs the grid one cell at a time.
func BenchmarkHarnessSerial(b *testing.B) { benchHarness(b, 1) }

// BenchmarkHarnessParallel runs the same grid on 4 workers.
func BenchmarkHarnessParallel(b *testing.B) { benchHarness(b, 4) }

// Substrate micro-benchmarks: simulator throughput (events/sec) for the
// canonical workload — useful when optimising the engine itself.

// BenchmarkSimulatorThroughput measures raw event processing on a
// 16-core oversubscribed run.
func BenchmarkSimulatorThroughput(b *testing.B) {
	b.ReportAllocs()
	events := 0
	for i := 0; i < b.N; i++ {
		sys := NewSystem(Tigerton(), WithSeed(uint64(i)))
		app := sys.BuildApp(AppSpec{
			Name: "bench", Threads: 24, Iterations: 50,
			WorkPerIteration: 2 * Millisecond,
			Model:            UPC(),
		})
		sys.SpeedBalance(app, SpeedConfig{})
		sys.RunUntil(app)
		events += sys.Machine().Stats.Events
	}
	b.ReportMetric(float64(events)/float64(b.N), "events/run")
}

func ExampleNewSystem() {
	sys := NewSystem(SMP(2), WithSeed(1))
	app := sys.BuildApp(AppSpec{
		Name: "app", Threads: 3, Iterations: 1,
		WorkPerIteration: 100 * Millisecond,
		Model:            UPC(),
	})
	sys.SpeedBalance(app, SpeedConfig{})
	sys.RunUntil(app)
	fmt.Println(app.Done())
	// Output: true
}
