package exp

import (
	"fmt"

	"repro/internal/competing"
	"repro/internal/cpuset"
	"repro/internal/npb"
	"repro/internal/sim"
	"repro/internal/spmd"
	"repro/internal/stats"
	"repro/internal/topo"
)

func init() {
	Register(&Experiment{
		ID:       "fig5",
		Title:    "EP sharing with a cpu-hog pinned to core 0",
		PaperRef: "Figure 5 / §6.3",
		Expect: "One-per-core is slowed ~50% (EP runs at the slowest thread); " +
			"PINNED starts better (the core-0 thread keeps a larger share at low " +
			"core counts) but degrades toward half speed at 16 cores; no static " +
			"balance exists (17 tasks is prime); SPEED attains near-optimal " +
			"performance at all core counts with low variation (≤6% vs LOAD's ~20%).",
		Run: runFig5,
	})
}

func runFig5(ctx *Context) []*Table {
	series := []fig3Series{
		{name: "One-per-core", strat: StratPinned, model: spmd.UPC(), onePerCore: true},
		{name: "SPEED", strat: StratSpeed, model: spmd.UPC()},
		{name: "LOAD", strat: StratLoad, model: spmd.UPC()},
		{name: "PINNED", strat: StratPinned, model: spmd.UPC()},
	}
	coreCounts := []int{2, 4, 6, 8, 10, 12, 14, 16}

	cols := []string{"cores", "ideal"}
	for _, s := range series {
		cols = append(cols, s.name)
	}
	tb := &Table{Title: "EP speedup with a cpu-hog on core 0 (avg over reps)", Columns: cols}
	vt := &Table{Title: "Run-time variation % with a cpu-hog on core 0", Columns: cols[:1:1]}
	for _, s := range series {
		vt.Columns = append(vt.Columns, s.name)
	}

	hog := func(m *sim.Machine) { competing.CPUHog(m, 0) }
	run := NewRunner(ctx)
	config := 2000
	for _, n := range coreCounts {
		sps := make([]*stats.Sample, len(series))
		rts := make([]*stats.Sample, len(series))
		for i, s := range series {
			threads := 16
			if s.onePerCore {
				threads = n
			}
			spec := ScaleSpec(ctx, npb.EP.Spec(threads, s.model, cpuset.All(n)))
			sp, rt := &stats.Sample{}, &stats.Sample{}
			sps[i], rts[i] = sp, rt
			run.Repeat(config, RunOpts{
				Topo: topo.Tigerton, Strategy: s.strat, Spec: spec, Setup: hog,
			}, func(_ int, r RunResult) {
				sp.Add(r.Speedup)
				rt.AddDuration(r.Elapsed)
			})
			config++
		}
		run.Then(func() {
			// With fair sharing, the hog is entitled to ~half of core 0
			// while the app saturates it, so the app's ideal capacity is
			// n − 0.5 cores.
			row := []any{fmt.Sprintf("%d", n), float64(n) - 0.5}
			vrow := []any{fmt.Sprintf("%d", n)}
			for i := range series {
				row = append(row, sps[i].Mean())
				vrow = append(vrow, rts[i].VariationPct())
			}
			tb.AddRow(row...)
			vt.AddRow(vrow...)
			ctx.Logf("fig5: %d cores done", n)
		})
	}
	run.Wait()
	tb.Note("the cpu-hog is a compute-only task pinned to core 0 for the whole run; 17 tasks total at 16 threads — a prime, so no static balance exists")
	return []*Table{tb, vt}
}
