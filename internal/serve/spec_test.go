package serve

import (
	"strings"
	"testing"
)

func TestParseSpecStrict(t *testing.T) {
	if _, err := ParseSpec([]byte(`{"experiment":"fig1","repz":3}`)); err == nil {
		t.Error("unknown field accepted")
	}
	if _, err := ParseSpec([]byte(`{"experiment":"fig1"} trailing`)); err == nil {
		t.Error("trailing data accepted")
	}
	s, err := ParseSpec([]byte(`{"experiment":"fig1","reps":3,"seed":7}`))
	if err != nil {
		t.Fatal(err)
	}
	if s.Experiment != "fig1" || s.Reps != 3 || s.Seed != 7 {
		t.Errorf("parsed %+v", s)
	}
}

func TestCanonicalizeDefaultsAndValidation(t *testing.T) {
	s, err := Spec{Experiment: "fig1"}.Canonicalize()
	if err != nil {
		t.Fatal(err)
	}
	if s.Reps != DefaultReps || s.Scale != DefaultScale || s.Seed != DefaultSeed {
		t.Errorf("defaults not filled: %+v", s)
	}

	for _, bad := range []Spec{
		{},                                      // no experiment
		{Experiment: "no-such-experiment"},      // unregistered
		{Experiment: "fig1", Reps: -1},          // bad reps
		{Experiment: "fig1", Scale: -2},         // bad scale
		{Experiment: "fig1", Perturb: "zap"},    // unknown family
		{Experiment: "fig1", Shards: -1},        // bad shards
		{Experiment: "fig1", Parallel: -3},      // bad parallel
	} {
		if _, err := bad.Canonicalize(); err == nil {
			t.Errorf("spec %+v canonicalized without error", bad)
		}
	}

	// Canonicalization is idempotent.
	again, err := s.Canonicalize()
	if err != nil {
		t.Fatal(err)
	}
	if again != s {
		t.Errorf("canonicalize not idempotent: %+v vs %+v", again, s)
	}
}

func TestCanonicalPerturb(t *testing.T) {
	cases := []struct{ in, want string }{
		{"", ""},
		{" noise , hotplug ", "noise,hotplug"},
		{"all", "noise,hotplug,freq,storm"},
		{"noise,noise,freq", "noise,freq"},
		// Order is preserved: noise vs kthread pick different presets
		// and the last mention wins inside perturb.Parse.
		{"kthread,noise", "kthread,noise"},
	}
	for _, c := range cases {
		got, err := canonicalPerturb(c.in)
		if err != nil {
			t.Errorf("canonicalPerturb(%q): %v", c.in, err)
			continue
		}
		if got != c.want {
			t.Errorf("canonicalPerturb(%q) = %q, want %q", c.in, got, c.want)
		}
	}
	if _, err := canonicalPerturb("noise,zap"); err == nil {
		t.Error("unknown family accepted")
	}
}

func TestKeyCoversWorkloadNotEngine(t *testing.T) {
	base, err := Spec{Experiment: "fig1", Reps: 2, Scale: 8}.Canonicalize()
	if err != nil {
		t.Fatal(err)
	}
	key := base.Key("v1")

	// Engine dials do not move the key: the determinism contract says
	// they cannot change one output byte.
	engine := base
	engine.Parallel, engine.Shards, engine.ShardParallel = 8, 4, true
	if engine.Key("v1") != key {
		t.Error("engine dials changed the cache key")
	}

	// Workload dials and the code version do.
	for _, c := range []struct {
		name  string
		other string
	}{
		{"seed", func() string { s := base; s.Seed = 99; return s.Key("v1") }()},
		{"reps", func() string { s := base; s.Reps = 3; return s.Key("v1") }()},
		{"scale", func() string { s := base; s.Scale = 4; return s.Key("v1") }()},
		{"perturb", func() string { s := base; s.Perturb = "noise"; return s.Key("v1") }()},
		{"predict", func() string { s := base; s.Predict = true; return s.Key("v1") }()},
		{"trace", func() string { s := base; s.Trace = true; return s.Key("v1") }()},
		{"metrics", func() string { s := base; s.Metrics = true; return s.Key("v1") }()},
		{"version", base.Key("v2")},
	} {
		if c.other == key {
			t.Errorf("changing %s did not change the cache key", c.name)
		}
	}

	// Keys are stable across derivations.
	if base.Key("v1") != key {
		t.Error("key derivation is not deterministic")
	}
	if len(key) != 64 || strings.Trim(key, "0123456789abcdef") != "" {
		t.Errorf("key %q is not lowercase hex SHA-256", key)
	}
}

func TestCanonicalJSONIsTotal(t *testing.T) {
	s, err := Spec{Experiment: "fig1"}.Canonicalize()
	if err != nil {
		t.Fatal(err)
	}
	got := string(s.CanonicalJSON())
	want := `{"experiment":"fig1","reps":10,"scale":1,"seed":20100109,"perturb":"","predict":false,"trace":false,"metrics":false}`
	if got != want {
		t.Errorf("canonical JSON\n got %s\nwant %s", got, want)
	}
}
