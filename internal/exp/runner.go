package exp

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/metrics"
	"repro/internal/trace"
)

// ErrInterrupted is the error Wait panics with when the run was aborted
// through Context.Interrupt. Owners that drive the Runner on behalf of
// an external caller (the serving daemon) recover it and report the run
// cancelled rather than failed.
var ErrInterrupted = errors.New("exp: run interrupted")

// Runner fans an experiment's (configuration × repetition) grid out over
// a worker pool while keeping the output bit-identical to a serial run.
//
// Experiments submit independent measurement cells (Submit / SubmitFunc /
// Repeat) interleaved with ordered hooks (Then), then call Wait. Cells
// execute concurrently on Context.Parallelism workers; each result lands
// in the slot indexed by its submission position — never in channel
// completion order — and Wait delivers callbacks strictly in submission
// order, streaming: a cell's callback fires as soon as it and every cell
// before it have completed, even while later cells are still running.
// Because every cell is an isolated single-threaded simulation whose
// randomness flows from its own seed, and because aggregation order is
// the submission order, rendered tables are bit-identical at every
// parallelism level.
//
// Early stop: a panicking cell (or, with Context.FailFast, a cell whose
// simulation overran its time limit) cancels all not-yet-started cells;
// Wait then re-panics with the first failure so a broken experiment
// surfaces instead of tabulating garbage.
type Runner struct {
	ctx   *Context
	items []runnerItem

	// next is the index of the next cell to hand to a worker.
	next atomic.Int64
	// cancelled stops workers from starting new cells once set.
	cancelled atomic.Bool

	mu   sync.Mutex
	cond *sync.Cond
	// err records the first failure (panic or FailFast overrun).
	err error
}

// runnerItem is one entry of the ordered submission stream: either a
// measurement cell (run != nil) or a deterministic hook (then != nil).
type runnerItem struct {
	label string
	run   func() RunResult
	fn    func(RunResult)
	then  func()

	// ring and reg are the cell-private observability buffers injected
	// by submitRun when the context traces/collects; the Wait goroutine
	// flushes them in submission order.
	ring *trace.Ring
	reg  *metrics.Registry

	res     RunResult
	done    bool
	skipped bool
}

// NewRunner builds a runner for one experiment.
func NewRunner(ctx *Context) *Runner {
	r := &Runner{ctx: ctx}
	r.cond = sync.NewCond(&r.mu)
	return r
}

// Submit queues one measurement with an explicit seed already set in o.
// fn (which may be nil) is invoked during Wait, in submission order, on
// the Wait goroutine — callbacks never race with one another.
func (r *Runner) Submit(o RunOpts, fn func(RunResult)) {
	r.submitRun(fmt.Sprintf("cell %d", len(r.items)), o, fn)
}

// SubmitFunc queues an arbitrary measurement function for runs that need
// custom machine wiring; label identifies the cell in failure reports.
// Custom cells are not traced (the run function owns its machine
// configuration), which keeps the trace stream deterministic: they
// contribute no events at any parallelism.
func (r *Runner) SubmitFunc(label string, run func() RunResult, fn func(RunResult)) {
	r.items = append(r.items, runnerItem{label: label, run: run, fn: fn})
}

// submitRun queues a RunOpts-based cell, injecting the cell-private
// trace ring and metrics registry when the context collects them.
func (r *Runner) submitRun(label string, o RunOpts, fn func(RunResult)) {
	it := runnerItem{label: label, fn: fn}
	if r.ctx.Perturb.Active() && !o.Perturb.Active() {
		// -perturb composes onto any experiment; cells that configure
		// their own perturbation (noise-* drivers) keep it.
		o.Perturb = r.ctx.Perturb
	}
	if o.Shards == 0 {
		// -shards composes onto any experiment; cells that pick their
		// own shard count keep it.
		o.Shards = r.ctx.Shards
		o.ShardParallel = o.ShardParallel || r.ctx.ShardParallel
	}
	// -predict composes onto any experiment; cells that configure
	// prediction through their own SpeedCfg keep it.
	o.Predict = o.Predict || r.ctx.Predict
	if r.ctx.Trace != nil {
		it.ring = r.ctx.Trace.newRing()
		o.Tracer = it.ring
	}
	if r.ctx.Metrics != nil {
		it.reg = metrics.NewRegistry()
		o.Metrics = it.reg
	}
	it.run = func() RunResult { return Run(o) }
	r.items = append(r.items, it)
}

// Repeat queues Context.Reps repetitions of the configuration with
// per-(config, rep) seeds derived by seedFor, exactly as the serial
// Repeat does.
func (r *Runner) Repeat(config int, o RunOpts, fn func(rep int, res RunResult)) {
	for rep := 0; rep < r.ctx.Reps; rep++ {
		rep := rep
		o.Seed = seedFor(r.ctx.Seed, config, rep)
		r.submitRun(fmt.Sprintf("config %d rep %d", config, rep), o,
			func(res RunResult) {
				if fn != nil {
					fn(rep, res)
				}
			})
	}
}

// Then queues a hook that runs on the Wait goroutine after the callbacks
// of everything submitted before it — the place for row assembly and
// progress logging that needs completed samples.
func (r *Runner) Then(fn func()) {
	r.items = append(r.items, runnerItem{then: fn})
}

// Cancel marks the run failed: workers skip all not-yet-started cells
// and Wait panics with err after in-flight cells drain.
func (r *Runner) Cancel(err error) {
	r.mu.Lock()
	if r.err == nil {
		r.err = err
	}
	r.mu.Unlock()
	r.cancelled.Store(true)
}

// Wait executes all queued cells on the worker pool and delivers
// callbacks and hooks in submission order, then resets the runner for
// reuse. It panics if any cell failed.
func (r *Runner) Wait() {
	items := r.items
	cells := make([]int, 0, len(items))
	for i := range items {
		if items[i].run != nil {
			cells = append(cells, i)
		}
	}

	workers := r.ctx.parallelism()
	if workers > len(cells) {
		workers = len(cells)
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				n := int(r.next.Add(1)) - 1
				if n >= len(cells) {
					return
				}
				r.runCell(&items[cells[n]])
			}
		}()
	}

	// Deliver in submission order, streaming as slots fill. Delivery
	// stops at the first skipped (cancelled) cell so the delivered
	// prefix is deterministic even when a failure races later cells.
	delivered := 0
	lastDecile := -1
	for i := range items {
		it := &items[i]
		if it.then != nil {
			it.then()
			continue
		}
		r.mu.Lock()
		for !it.done {
			r.cond.Wait()
		}
		r.mu.Unlock()
		if it.skipped {
			break
		}
		if it.fn != nil {
			it.fn(it.res)
		}
		// Flush the cell's observability buffers on the delivery
		// goroutine, in submission order: the trace bytes and the merged
		// metrics are therefore independent of the parallelism level.
		if it.ring != nil {
			r.ctx.Trace.flush(it.label, it.ring)
		}
		if it.reg != nil {
			r.ctx.Metrics.Add(it.reg.Snapshot())
		}
		delivered++
		if d := delivered * 10 / len(cells); d != lastDecile && len(cells) > 1 {
			lastDecile = d
			r.ctx.Logf("exp: %d/%d cells done", delivered, len(cells))
		}
	}
	wg.Wait()

	r.mu.Lock()
	err := r.err
	// Reset so a driver can reuse the runner for another phase. The
	// failure state must clear too (before the panic below, so a
	// recovering driver gets a clean runner): a runner left cancelled
	// would silently skip every cell of the next phase, and a stale err
	// would re-panic a failure that was already handled.
	r.err = nil
	r.mu.Unlock()
	r.cancelled.Store(false)
	r.items = nil
	r.next.Store(0)
	if err != nil {
		panic(err)
	}
}

// runCell executes one cell on a worker goroutine, converting panics
// into cancellation and honouring FailFast on truncated runs.
func (r *Runner) runCell(it *runnerItem) {
	finish := func() {
		r.mu.Lock()
		it.done = true
		r.mu.Unlock()
		r.cond.Broadcast()
	}
	if c := r.ctx.Interrupt; c != nil && !r.cancelled.Load() {
		// Non-blocking probe: an external abort cancels every cell that
		// has not started yet, exactly like an in-grid failure would.
		select {
		case <-c:
			r.Cancel(ErrInterrupted)
		default:
		}
	}
	if r.cancelled.Load() {
		it.skipped = true
		finish()
		return
	}
	defer func() {
		if p := recover(); p != nil {
			it.skipped = true
			r.Cancel(fmt.Errorf("exp: %s panicked: %v", it.label, p))
		}
		finish()
	}()
	it.res = it.run()
	if it.res.Truncated && r.ctx.FailFast {
		r.Cancel(fmt.Errorf("exp: %s overran its simulated time limit (elapsed %v)", it.label, it.res.Elapsed))
	}
}
