package perturb_test

// Tests for the fault-injection layer: flag parsing, schedule
// determinism (the schedule must be a pure function of config and
// machine seed), physical plausibility of each family (noise delays
// work, kthread noise is schedulable, frequency walks stay in bounds),
// and the hotplug safety property that no task is ever lost.

import (
	"strings"
	"testing"
	"time"

	"repro/internal/cfs"
	"repro/internal/cpuset"
	"repro/internal/perturb"
	"repro/internal/sim"
	"repro/internal/task"
	"repro/internal/topo"
	"repro/internal/trace"
)

func TestParse(t *testing.T) {
	cases := []struct {
		spec string
		want func(c perturb.Config) bool
	}{
		{"", func(c perturb.Config) bool { return !c.Active() }},
		{"noise", func(c perturb.Config) bool { return c.Noise.Period > 0 && !c.Noise.Kthread }},
		{"kthread", func(c perturb.Config) bool { return c.Noise.Period > 0 && c.Noise.Kthread }},
		{"hotplug", func(c perturb.Config) bool { return c.Hotplug.Interval > 0 && c.Noise.Period == 0 }},
		{"freq", func(c perturb.Config) bool { return c.Freq.Interval > 0 }},
		{"storm", func(c perturb.Config) bool { return c.Storm.Period > 0 }},
		{"noise,hotplug", func(c perturb.Config) bool { return c.Noise.Period > 0 && c.Hotplug.Interval > 0 }},
		{"all", func(c perturb.Config) bool {
			return c.Noise.Period > 0 && c.Hotplug.Interval > 0 && c.Freq.Interval > 0 && c.Storm.Period > 0
		}},
	}
	for _, tc := range cases {
		c, err := perturb.Parse(tc.spec)
		if err != nil {
			t.Errorf("Parse(%q): unexpected error %v", tc.spec, err)
			continue
		}
		if !tc.want(c) {
			t.Errorf("Parse(%q) = %+v: wrong families enabled", tc.spec, c)
		}
	}
	if _, err := perturb.Parse("noise,bogus"); err == nil || !strings.Contains(err.Error(), "bogus") {
		t.Errorf("Parse with unknown family: err = %v, want mention of the family", err)
	}
}

func newMachine(seed uint64, cores int, tr trace.Tracer) *sim.Machine {
	return sim.New(topo.SMP(cores), sim.Config{Seed: seed, NewScheduler: cfs.Factory(), Tracer: tr})
}

// computeTasks starts n independent compute tasks of the given work.
func computeTasks(m *sim.Machine, n int, work float64) []*task.Task {
	var tasks []*task.Task
	for i := 0; i < n; i++ {
		tk := m.NewTask("w", &task.Seq{Actions: []task.Action{task.Compute{Work: work}}})
		m.Start(tk)
		tasks = append(tasks, tk)
	}
	return tasks
}

// IRQ-style noise steals wall time: the victim finishes later than its
// work, and its exec time still never exceeds its real time.
func TestNoiseDelaysWork(t *testing.T) {
	m := newMachine(7, 1, nil)
	in := perturb.New(perturb.Config{Noise: perturb.DefaultNoise()})
	m.AddActor(in)
	tk := computeTasks(m, 1, 100e6)[0] // 100 ms of work
	m.Run(int64(10 * time.Second))
	if tk.State != task.Done {
		t.Fatalf("task did not finish under noise")
	}
	if in.NoiseBursts() == 0 {
		t.Fatalf("no noise bursts injected")
	}
	if tk.FinishedAt <= 100e6 {
		t.Errorf("finished at %v despite stolen time; want > 100ms", time.Duration(tk.FinishedAt))
	}
	if int64(tk.ExecTime) > tk.FinishedAt {
		t.Errorf("exec %v exceeds real time %v", tk.ExecTime, time.Duration(tk.FinishedAt))
	}
}

// Kthread noise is schedulable: the daemon appears as a real task on
// the run queue, and the stolen time shows up as daemon exec time.
func TestKthreadNoiseIsSchedulable(t *testing.T) {
	m := newMachine(7, 1, nil)
	cfg := perturb.KthreadNoise()
	in := perturb.New(perturb.Config{Noise: cfg})
	m.AddActor(in)
	app := computeTasks(m, 1, 100e6)[0]
	m.Run(int64(10 * time.Second))
	m.Sync()
	if app.State != task.Done {
		t.Fatalf("app task did not finish under kthread noise")
	}
	var kw *task.Task
	for _, tk := range m.Tasks() {
		if tk.Group == "kthread" {
			kw = tk
		}
	}
	if kw == nil {
		t.Fatalf("no kworker task spawned")
	}
	if kw.Affinity != cpuset.Of(0) {
		t.Errorf("kworker affinity %v, want pinned to core 0", kw.Affinity)
	}
	if kw.Sched.Weight != task.NiceWeight(-20) {
		t.Errorf("kworker weight %d, want nice -20 weight %d", kw.Sched.Weight, task.NiceWeight(-20))
	}
	if in.NoiseBursts() == 0 || kw.ExecTime == 0 {
		t.Errorf("kworker never ran: bursts %d, exec %v", in.NoiseBursts(), kw.ExecTime)
	}
	if app.FinishedAt <= 100e6 {
		t.Errorf("app finished at %v despite daemon competition; want > 100ms", time.Duration(app.FinishedAt))
	}
}

// Hotplug never loses tasks: every task finishes even though cores keep
// vanishing mid-run, and all cores are back online at the end.
func TestHotplugLosesNoTask(t *testing.T) {
	m := newMachine(11, 4, nil)
	cfg := perturb.DefaultHotplug()
	cfg.Interval = 20 * time.Millisecond // churn hard
	cfg.OffTime = 10 * time.Millisecond
	cfg.MaxOffline = 3
	in := perturb.New(perturb.Config{Hotplug: cfg})
	m.AddActor(in)
	tasks := computeTasks(m, 8, 50e6)
	m.Run(int64(30 * time.Second))
	m.Sync()
	if in.Hotplugs == 0 {
		t.Fatalf("no hotplug events injected")
	}
	for _, tk := range tasks {
		if tk.State != task.Done {
			t.Errorf("task %q lost: state %v after hotplug churn", tk.Name, tk.State)
		}
	}
}

// freqRecorder collects frequency-change trace events.
type freqRecorder struct{ factors []float64 }

func (r *freqRecorder) Emit(e trace.Event) {
	if e.Kind == trace.KindFreqChange {
		r.factors = append(r.factors, e.SK)
	}
}

// The frequency walk stays inside [Min, Max] at every step, and a
// slowed core still satisfies exec ≤ real.
func TestFreqWalkStaysBounded(t *testing.T) {
	rec := &freqRecorder{}
	m := newMachine(13, 2, rec)
	cfg := perturb.DefaultFreq()
	cfg.Interval = 5 * time.Millisecond
	in := perturb.New(perturb.Config{Freq: cfg})
	m.AddActor(in)
	tasks := computeTasks(m, 2, 100e6)
	m.Run(int64(30 * time.Second))
	m.Sync()
	if in.FreqSteps() == 0 {
		t.Fatalf("no frequency steps injected")
	}
	if len(rec.factors) == 0 {
		t.Fatalf("no freq-change trace events recorded")
	}
	for _, f := range rec.factors {
		if f < cfg.Min-1e-12 || f > cfg.Max+1e-12 {
			t.Errorf("frequency factor %.4f outside [%.2f, %.2f]", f, cfg.Min, cfg.Max)
		}
	}
	for _, tk := range tasks {
		if tk.State != task.Done {
			t.Fatalf("task did not finish under frequency drift")
		}
		if int64(tk.ExecTime) > tk.FinishedAt {
			t.Errorf("exec %v exceeds real time %v on slowed core", tk.ExecTime, time.Duration(tk.FinishedAt))
		}
	}
}

// Storms freeze one socket at a time; work still completes and the
// injector counts the storms.
func TestStormCompletes(t *testing.T) {
	m := sim.New(topo.Tigerton(), sim.Config{Seed: 17, NewScheduler: cfs.Factory()})
	cfg := perturb.DefaultStorm()
	cfg.Period = 20 * time.Millisecond
	in := perturb.New(perturb.Config{Storm: cfg})
	m.AddActor(in)
	tasks := computeTasks(m, 16, 50e6)
	m.Run(int64(30 * time.Second))
	m.Sync()
	if in.Storms == 0 {
		t.Fatalf("no storms injected")
	}
	for _, tk := range tasks {
		if tk.State != task.Done {
			t.Errorf("task %q did not finish under storms", tk.Name)
		}
	}
}

// run executes a fixed workload under the full perturbation mix and
// returns a fingerprint of everything schedule-dependent: event counts,
// per-task finish times and exec times, and the final clock.
func fingerprint(seed uint64) []int64 {
	m := newMachine(seed, 4, nil)
	cfg := perturb.Config{
		Noise:   perturb.DefaultNoise(),
		Hotplug: perturb.HotplugConfig{Interval: 50 * time.Millisecond, OffTime: 20 * time.Millisecond, Jitter: 0.5, MaxOffline: 1},
		Freq:    perturb.DefaultFreq(),
		Storm:   perturb.StormConfig{Period: 80 * time.Millisecond, Duration: 2 * time.Millisecond, Jitter: 0.5, Steal: 1.0},
	}
	in := perturb.New(cfg)
	m.AddActor(in)
	tasks := computeTasks(m, 6, 40e6)
	m.Run(int64(30 * time.Second))
	m.Sync()
	fp := []int64{int64(in.NoiseBursts()), int64(in.Hotplugs), int64(in.FreqSteps()), int64(in.Storms), m.Now()}
	for _, tk := range tasks {
		fp = append(fp, tk.FinishedAt, int64(tk.ExecTime))
	}
	return fp
}

// The full perturbation schedule is a pure function of the machine
// seed: identical seeds reproduce every event count and finish time
// exactly; a different seed produces a different schedule.
func TestScheduleDeterminism(t *testing.T) {
	a, b := fingerprint(42), fingerprint(42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at fingerprint[%d]: %d vs %d", i, a[i], b[i])
		}
	}
	c := fingerprint(43)
	same := true
	for i := range a {
		if i < len(c) && a[i] != c[i] {
			same = false
		}
	}
	if same {
		t.Errorf("different seeds produced identical schedules — RNG not wired to the machine seed")
	}
}
