package stats

import (
	"math"
	"testing"
	"time"
)

// Edge cases the parallel experiment runner can feed the aggregator: an
// empty sample (a cancelled cell delivered nothing), a single
// observation (Reps = 1), and all-equal observations (a fully
// deterministic quantity). Every accessor must stay finite and
// division-free — a NaN or Inf here would poison a rendered table cell.
func TestEdgeCaseSamples(t *testing.T) {
	build := func(xs ...float64) *Sample {
		s := &Sample{}
		for _, x := range xs {
			s.Add(x)
		}
		return s
	}
	cases := []struct {
		name   string
		s      *Sample
		n      int
		mean   float64
		min    float64
		max    float64
		median float64
		stddev float64
		varPct float64
	}{
		{name: "empty", s: build(), n: 0},
		{name: "single", s: build(3.5), n: 1, mean: 3.5, min: 3.5, max: 3.5, median: 3.5},
		{name: "single-zero", s: build(0), n: 1},
		{name: "all-equal", s: build(2, 2, 2, 2), n: 4, mean: 2, min: 2, max: 2, median: 2},
		{name: "all-equal-pair", s: build(1.25, 1.25), n: 2, mean: 1.25, min: 1.25, max: 1.25, median: 1.25},
		{name: "zeroes", s: build(0, 0, 0), n: 3},
	}
	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			got := []struct {
				name string
				v    float64
				want float64
			}{
				{"Mean", c.s.Mean(), c.mean},
				{"Min", c.s.Min(), c.min},
				{"Max", c.s.Max(), c.max},
				{"Median", c.s.Median(), c.median},
				{"StdDev", c.s.StdDev(), c.stddev},
				{"VariationPct", c.s.VariationPct(), c.varPct},
			}
			if c.s.N() != c.n {
				t.Errorf("N() = %d, want %d", c.s.N(), c.n)
			}
			for _, g := range got {
				if math.IsNaN(g.v) || math.IsInf(g.v, 0) {
					t.Errorf("%s = %v, must be finite", g.name, g.v)
				}
				if g.v != g.want {
					t.Errorf("%s = %v, want %v", g.name, g.v, g.want)
				}
			}
			if s := c.s.String(); s == "" {
				t.Error("String() empty")
			}
		})
	}
}

// Ratio metrics against degenerate baselines and receivers must not
// divide by zero, and must treat empties symmetrically: a comparison
// with no data on either side reports 0 (no claim), not −100% — an
// empty baseline used to make every receiver look infinitely worse.
func TestEdgeCaseRatios(t *testing.T) {
	empty := &Sample{}
	zero := &Sample{}
	zero.Add(0)
	one := &Sample{}
	one.Add(1)
	two := &Sample{}
	two.Add(2)

	cases := []struct {
		name     string
		s, base  *Sample
		improve  float64
		worstImp float64
	}{
		{name: "empty-vs-empty", s: empty, base: empty},
		{name: "empty-vs-real", s: empty, base: one},
		{name: "real-vs-empty", s: one, base: empty},
		{name: "zero-vs-real", s: zero, base: one},
		{name: "real-vs-zero", s: one, base: zero},
		{name: "equal", s: one, base: one, improve: 0, worstImp: 0},
		{name: "faster", s: one, base: two, improve: 100, worstImp: 100},
	}
	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			for _, g := range []struct {
				name      string
				got, want float64
			}{
				{"ImprovementPct", c.s.ImprovementPct(c.base), c.improve},
				{"WorstImprovementPct", c.s.WorstImprovementPct(c.base), c.worstImp},
			} {
				if math.IsNaN(g.got) || math.IsInf(g.got, 0) {
					t.Errorf("%s = %v, must be finite", g.name, g.got)
				}
				if g.got != g.want {
					t.Errorf("%s = %v, want %v", g.name, g.got, g.want)
				}
			}
		})
	}
}

// Percentile interpolates linearly between closest ranks, clamps p
// outside [0, 100], and agrees with Median at p = 50 for both parities.
func TestPercentile(t *testing.T) {
	s := &Sample{}
	for _, x := range []float64{40, 10, 20, 30} { // deliberately unsorted
		s.Add(x)
	}
	cases := []struct {
		p    float64
		want float64
	}{
		{-5, 10}, {0, 10}, {25, 17.5}, {50, 25}, {75, 32.5},
		{90, 37}, {100, 40}, {150, 40},
	}
	for _, c := range cases {
		if got := s.Percentile(c.p); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("Percentile(%v) = %v, want %v", c.p, got, c.want)
		}
	}
	if s.Median() != s.Percentile(50) {
		t.Errorf("Median %v != Percentile(50) %v", s.Median(), s.Percentile(50))
	}
	odd := &Sample{}
	for _, x := range []float64{3, 1, 2} {
		odd.Add(x)
	}
	if got := odd.Percentile(50); got != 2 {
		t.Errorf("odd-count Percentile(50) = %v, want 2", got)
	}
	if got := (&Sample{}).Percentile(99); got != 0 {
		t.Errorf("empty Percentile(99) = %v, want 0", got)
	}
	single := &Sample{}
	single.Add(7)
	for _, p := range []float64{0, 33, 50, 99, 100} {
		if got := single.Percentile(p); got != 7 {
			t.Errorf("single-obs Percentile(%v) = %v, want 7", p, got)
		}
	}
}

// A NaN p satisfies neither clamp (every comparison against NaN is
// false), so before the explicit guard it reached int(rank) — whose
// result for NaN is undefined — and indexed the sorted slice out of
// range. The guard propagates NaN instead of inventing a value; it
// must do so without panicking for any sample size.
func TestPercentileNaNP(t *testing.T) {
	for _, xs := range [][]float64{{}, {7}, {2, 2, 2}, {40, 10, 20, 30}} {
		s := &Sample{}
		for _, x := range xs {
			s.Add(x)
		}
		if got := s.Percentile(math.NaN()); !math.IsNaN(got) {
			t.Errorf("n=%d: Percentile(NaN) = %v, want NaN", len(xs), got)
		}
	}
}

// No percentile query may reorder the sample's backing slice: Add order
// is observable by callers that replay observations, so Median and
// Percentile must sort a copy.
func TestPercentileDoesNotReorderSample(t *testing.T) {
	s := &Sample{}
	orig := []float64{5, 1, 4, 2, 3}
	for _, x := range orig {
		s.Add(x)
	}
	s.Median()
	s.Percentile(95)
	for i, x := range s.xs {
		if x != orig[i] {
			t.Fatalf("backing slice reordered at %d: %v vs %v", i, s.xs, orig)
		}
	}
}

// VariationPct with a zero minimum (e.g. a truncated run recorded as
// Speedup 0) must not divide by zero.
func TestVariationPctZeroMin(t *testing.T) {
	s := &Sample{}
	s.Add(0)
	s.Add(5)
	if v := s.VariationPct(); v != 0 {
		t.Errorf("VariationPct with zero min = %v, want 0", v)
	}
}

// AddDuration on an empty sample then aggregation round-trips.
func TestEdgeCaseDuration(t *testing.T) {
	s := &Sample{}
	s.AddDuration(0)
	if s.N() != 1 || s.Mean() != 0 || s.VariationPct() != 0 {
		t.Errorf("zero duration sample misbehaves: %s", s)
	}
	s.AddDuration(2 * time.Second)
	if s.Mean() != 1 {
		t.Errorf("mean = %v, want 1", s.Mean())
	}
}
