// Asymmetric: condition 2 from the paper's introduction — cores running
// at different clock speeds (e.g. Turbo Boost over-clocking a subset of
// cores until the temperature rises).
//
// Twelve threads run on 8 cores, four of them 1.5x faster. The balancer's
// speed metric (exec/real, weighted by the core's relative clock per
// §4's heterogeneous extension) sees threads on doubled-up slow cores
// as the stragglers and rotates every thread through the fast cores.
// Queue-length balancing only equalises counts — blind to which cores
// are fast — so whichever threads land doubled on slow cores set the
// finish time.
//
// Note the limitation inherited from the paper's pull-only design: with
// exactly one thread per core, equalising asymmetric speeds would
// require swaps, which a pull-only balancer cannot express; the win
// appears under oversubscription, as here.
//
//	go run ./examples/asymmetric
package main

import (
	"fmt"
	"time"

	lbos "repro"
)

func main() {
	speeds := []float64{1.5, 1.5, 1.5, 1.5, 1.0, 1.0, 1.0, 1.0}
	topoF := func() *lbos.Topology { return lbos.Asymmetric(speeds) }

	const threads = 12
	spec := lbos.AppSpec{
		Name:             "app",
		Threads:          threads,
		Iterations:       1,
		WorkPerIteration: 3000 * lbos.Millisecond,
		Model:            lbos.UPC(),
	}

	// Total capacity 4×1.5 + 4×1.0 = 10 speed-units for 12 threads of
	// 3 s each: the perfectly balanced finish is 12·3/10 = 3.6 s.
	ideal := 3600 * time.Millisecond

	pinSys := lbos.NewSystem(topoF(), lbos.WithSeed(5))
	pinApp := pinSys.StartPinned(spec)
	pinSys.RunUntil(pinApp)

	loadSys := lbos.NewSystem(topoF(), lbos.WithSeed(5))
	loadApp := loadSys.StartApp(spec)
	loadSys.RunUntil(loadApp)

	speedSys := lbos.NewSystem(topoF(), lbos.WithSeed(5))
	speedApp := speedSys.BuildApp(spec)
	bal := speedSys.SpeedBalance(speedApp, lbos.SpeedConfig{})
	speedSys.RunUntil(speedApp)

	fmt.Printf("%d threads, 8 cores (4 at 1.5x, 4 at 1.0x), 3s work each; ideal %v\n\n", threads, ideal)
	fmt.Printf("  PINNED : %8v  (doubled-up cores set the pace)\n",
		pinApp.Elapsed().Round(time.Millisecond))
	fmt.Printf("  LOAD   : %8v  (equal queue lengths, blind to clock speeds)\n",
		loadApp.Elapsed().Round(time.Millisecond))
	fmt.Printf("  SPEED  : %8v  (%d migrations rotate threads through the 1.5x cores)\n",
		speedApp.Elapsed().Round(time.Millisecond), bal.Migrations)
}
