// Package clean holds worker patterns that must never fire: shard-scoped
// calls, machines the goroutine constructs for itself, event-loop calls
// outside any goroutine, and hazard-named methods on unrelated types.
package clean

// Machine mirrors sim.Machine's surface.
type Machine struct{}

func NewMachine() *Machine { return &Machine{} }

func (m *Machine) Run(until int64) int64 { return until }
func (m *Machine) Stop()                 {}
func (m *Machine) Sync()                 {}
func (m *Machine) drainShard(s int)      {}

// eventLoopStop calls machine-global methods from the event loop — the
// sanctioned place — and the workers touch only shard-scoped methods.
func eventLoopStop(m *Machine, done chan struct{}) {
	for s := 0; s < 4; s++ {
		go func(s int) {
			m.drainShard(s) // shard-scoped: must not fire
			done <- struct{}{}
		}(s)
	}
	m.Sync()
	m.Stop()
}

// perGoroutineMachine is the speedbalance CLI pattern: each goroutine
// builds and runs its own machine. The receiver chain roots at a
// variable declared inside the worker body, so every call is
// goroutine-local and exempt.
func perGoroutineMachine(results chan int64) {
	go func() {
		m := NewMachine()
		end := m.Run(1000)
		m.Stop()
		results <- end
	}()
}

type lab struct{}

// Stop on a type not named Machine must not fire, even in a worker.
func (lab) Stop() {}

func stopsSomethingElse(done chan struct{}) {
	var l lab
	go func() {
		l.Stop()
		done <- struct{}{}
	}()
}

// localCounters: writes to locals are not global writes.
func localCounters(done chan struct{}) {
	go func() {
		steals := 0
		steals++
		_ = steals
		done <- struct{}{}
	}()
}
