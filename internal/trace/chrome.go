package trace

import (
	"bufio"
	"io"
	"strconv"
)

// ChromeWriter streams events as Chrome trace-event JSON (the
// "JSON Array Format" with a traceEvents wrapper), loadable in
// chrome://tracing and ui.perfetto.dev.
//
// Mapping: each experiment cell becomes one process (pid = cell index,
// named by BeginCell), each simulated core one thread (tid = core id),
// so perfetto renders per-core timelines. KindRunStint events export as
// complete ("X") slices — the task occupying the core — and every other
// kind as an instant ("i") event with its evidence in args.
//
// Output bytes are a pure function of the event sequence: fields are
// written in a fixed order with fixed number formatting, and no Go map
// is ever ranged. Timestamps are simulated microseconds (Chrome's unit)
// printed as ns/1000 with three decimals, exact for integer nanoseconds.
type ChromeWriter struct {
	w     *bufio.Writer
	first bool
	pid   int
	// seenTids tracks which (pid, tid) pairs already carry a
	// thread_name metadata record. Membership-only: never iterated.
	seenTids map[int]bool
	err      error
}

// NewChromeWriter starts a trace stream on w, writing the header
// immediately. Call Close to terminate the JSON document.
func NewChromeWriter(w io.Writer) *ChromeWriter {
	cw := &ChromeWriter{w: bufio.NewWriter(w), first: true}
	cw.writeString(`{"traceEvents":[`)
	return cw
}

// BeginCell opens a new process scope: subsequent events belong to the
// cell labelled label (pid increments per call). dropped, when nonzero,
// is recorded on the process metadata so truncated ring buffers are
// visible in the viewer.
func (cw *ChromeWriter) BeginCell(label string, dropped uint64) {
	cw.pid++
	cw.seenTids = make(map[int]bool)
	cw.sep()
	cw.writeString(`{"name":"process_name","ph":"M","pid":`)
	cw.writeInt(int64(cw.pid))
	cw.writeString(`,"tid":0,"args":{"name":`)
	cw.writeQuoted(label)
	if dropped > 0 {
		cw.writeString(`,"dropped_events":`)
		cw.writeInt(int64(dropped))
	}
	cw.writeString(`}}`)
}

// WriteEvent exports one event into the current cell. Events must be
// written in emission order; BeginCell must have been called first.
func (cw *ChromeWriter) WriteEvent(e Event) {
	if cw.pid == 0 {
		cw.BeginCell("cell", 0)
	}
	cw.nameTid(e.Core)
	cw.sep()
	if e.Kind == KindRunStint {
		cw.writeString(`{"name":`)
		cw.writeQuoted(e.TaskName)
		cw.writeString(`,"ph":"X","pid":`)
		cw.writeInt(int64(cw.pid))
		cw.writeString(`,"tid":`)
		cw.writeInt(int64(e.Core))
		cw.writeString(`,"ts":`)
		cw.writeTS(e.Time - e.Dur)
		cw.writeString(`,"dur":`)
		cw.writeTS(e.Dur)
		cw.writeString(`,"args":{"task":`)
		cw.writeInt(int64(e.Task))
		cw.writeString(`,"seq":`)
		cw.writeInt(int64(e.Seq))
		cw.writeString(`}}`)
		return
	}
	cw.writeString(`{"name":`)
	cw.writeQuoted(e.Kind.String())
	cw.writeString(`,"ph":"i","s":"t","pid":`)
	cw.writeInt(int64(cw.pid))
	cw.writeString(`,"tid":`)
	cw.writeInt(int64(e.Core))
	cw.writeString(`,"ts":`)
	cw.writeTS(e.Time)
	cw.writeString(`,"args":{"seq":`)
	cw.writeInt(int64(e.Seq))
	cw.writeArgs(e)
	cw.writeString(`}}`)
}

// writeArgs appends the kind-specific evidence fields, in fixed order.
func (cw *ChromeWriter) writeArgs(e Event) {
	switch e.Kind {
	case KindMigration:
		cw.taskArgs(e)
		cw.intArg("src", e.Src)
		cw.intArg("dst", e.Dst)
		cw.strArg("label", e.Label)
	case KindBalanceWake:
		cw.strArg("label", e.Label)
		cw.floatArg("s_local", e.SLocal)
		cw.floatArg("s_global", e.SGlobal)
		cw.floatArg("threshold", e.Threshold)
	case KindBalanceSkip:
		cw.strArg("label", e.Label)
		cw.strArg("reason", e.Reason)
		if e.Src != e.Core {
			cw.intArg("candidate", e.Src)
			cw.floatArg("s_k", e.SK)
			cw.floatArg("s_global", e.SGlobal)
		}
	case KindBalancePull:
		cw.taskArgs(e)
		cw.intArg("src", e.Src)
		cw.intArg("dst", e.Dst)
		cw.floatArg("s_local", e.SLocal)
		cw.floatArg("s_k", e.SK)
		cw.floatArg("s_global", e.SGlobal)
		cw.floatArg("threshold", e.Threshold)
	case KindBarrierArrive, KindBarrierRelease:
		cw.taskArgs(e)
		cw.intArg("n", e.N)
	case KindPreempt:
		cw.taskArgs(e)
		cw.strArg("reason", e.Reason)
	case KindTimeslice, KindSleeperCredit:
		cw.taskArgs(e)
	case KindForkPlace:
		cw.taskArgs(e)
		cw.intArg("dst", e.Dst)
	case KindRoundAdvance:
		cw.intArg("round", e.N)
	case KindCoreOffline:
		cw.intArg("drained", e.N)
	case KindCoreOnline:
		// Core is already the tid; no extra evidence.
	case KindNoiseBegin:
		cw.strArg("label", e.Label)
		cw.floatArg("stolen", e.SK)
		cw.intArg("dur_ns", int(e.Dur))
	case KindNoiseEnd:
		cw.strArg("label", e.Label)
		cw.floatArg("stolen", e.SK)
	case KindFreqChange:
		cw.floatArg("freq", e.SK)
	case KindPredictMigrate:
		cw.taskArgs(e)
		cw.intArg("src", e.Src)
		cw.intArg("dst", e.Dst)
		cw.floatArg("s_local", e.SLocal)
		cw.floatArg("s_k", e.SK)
		cw.floatArg("s_pred", e.SPred)
		cw.floatArg("s_global", e.SGlobal)
		cw.floatArg("threshold", e.Threshold)
	}
}

func (cw *ChromeWriter) taskArgs(e Event) {
	cw.intArg("task", e.Task)
	if e.TaskName != "" {
		cw.strArg("name", e.TaskName)
	}
}

// nameTid emits a thread_name metadata record the first time a core
// appears within the current cell.
func (cw *ChromeWriter) nameTid(tid int) {
	if cw.seenTids[tid] {
		return
	}
	cw.seenTids[tid] = true
	cw.sep()
	cw.writeString(`{"name":"thread_name","ph":"M","pid":`)
	cw.writeInt(int64(cw.pid))
	cw.writeString(`,"tid":`)
	cw.writeInt(int64(tid))
	cw.writeString(`,"args":{"name":"core `)
	cw.writeInt(int64(tid))
	cw.writeString(`"}}`)
}

// Close terminates the JSON document and flushes. It does not close the
// underlying writer. It returns the first error encountered on the
// stream, if any.
func (cw *ChromeWriter) Close() error {
	cw.writeString(`]}`)
	if err := cw.w.Flush(); cw.err == nil && err != nil {
		cw.err = err
	}
	return cw.err
}

func (cw *ChromeWriter) sep() {
	if cw.first {
		cw.first = false
		return
	}
	cw.writeString(",")
}

func (cw *ChromeWriter) intArg(key string, v int) {
	cw.writeString(`,"` + key + `":`)
	cw.writeInt(int64(v))
}

func (cw *ChromeWriter) strArg(key, v string) {
	cw.writeString(`,"` + key + `":`)
	cw.writeQuoted(v)
}

func (cw *ChromeWriter) floatArg(key string, v float64) {
	cw.writeString(`,"` + key + `":`)
	// Shortest round-trip formatting: deterministic, and valid JSON for
	// the finite values the balancers produce.
	cw.writeString(strconv.FormatFloat(v, 'g', -1, 64))
}

// writeTS writes nanoseconds as microseconds with three decimals
// (Chrome's ts unit), exactly: 1234567 ns → "1234.567".
func (cw *ChromeWriter) writeTS(ns int64) {
	cw.writeInt(ns / 1000)
	rem := ns % 1000
	if rem < 0 {
		rem = -rem
	}
	cw.writeString(".")
	if rem < 100 {
		cw.writeString("0")
	}
	if rem < 10 {
		cw.writeString("0")
	}
	cw.writeInt(rem)
}

func (cw *ChromeWriter) writeInt(v int64) {
	var buf [20]byte
	cw.write(strconv.AppendInt(buf[:0], v, 10))
}

// writeQuoted writes s as a JSON string. strconv.Quote's escaping (Go
// string syntax) coincides with JSON for the ASCII names and labels the
// simulator produces, and escapes everything else as \uXXXX, which JSON
// also accepts.
func (cw *ChromeWriter) writeQuoted(s string) {
	var buf [64]byte
	cw.write(strconv.AppendQuote(buf[:0], s))
}

func (cw *ChromeWriter) writeString(s string) {
	if cw.err != nil {
		return
	}
	if _, err := cw.w.WriteString(s); err != nil {
		cw.err = err
	}
}

func (cw *ChromeWriter) write(b []byte) {
	if cw.err != nil {
		return
	}
	if _, err := cw.w.Write(b); err != nil {
		cw.err = err
	}
}
