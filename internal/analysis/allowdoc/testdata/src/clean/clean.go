// Package clean holds a well-formed directive: known category, with a
// justification. allowdoc must stay silent.
package clean

import "time"

func documented() {
	_ = time.Now //lint:allow-wallclock progress reporting only
}
