package perfbench

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func report(cases ...Case) *Report {
	return &Report{Schema: Schema, Tool: "lbos bench", Suite: cases}
}

// The gate flags normalised-ns and allocs regressions beyond tolerance,
// stays quiet inside it, and never gates the calibration case.
func TestCompareGates(t *testing.T) {
	base := report(
		Case{Name: "calib", NsPerOp: 1e6},
		Case{Name: "wake", NsNorm: 1.0, AllocsPerOp: 1000, EventsPerSec: 1e6},
	)
	// Within tolerance: 10% slower, same allocs.
	ok := report(
		Case{Name: "calib", NsPerOp: 2e6}, // calib shift alone is not a regression
		Case{Name: "wake", NsNorm: 1.10, AllocsPerOp: 1000, EventsPerSec: 9e5},
	)
	c := Compare(ok, base, "base.json", 0.15)
	if len(c.Regressions) != 0 {
		t.Errorf("within-tolerance run flagged: %v", c.Regressions)
	}
	if len(c.Deltas) != 1 || c.Deltas[0].Name != "wake" {
		t.Fatalf("deltas = %+v, want exactly the wake case", c.Deltas)
	}
	if got := c.Deltas[0].EventsPerSecRatio; got != 0.9 {
		t.Errorf("events/s ratio = %v, want 0.9", got)
	}

	// Past tolerance on both gated axes.
	bad := report(
		Case{Name: "calib", NsPerOp: 1e6},
		Case{Name: "wake", NsNorm: 1.30, AllocsPerOp: 1300, EventsPerSec: 1e6},
	)
	c = Compare(bad, base, "base.json", 0.15)
	if len(c.Regressions) != 2 {
		t.Fatalf("regressions = %v, want ns and allocs", c.Regressions)
	}
	for _, r := range c.Regressions {
		if !strings.HasPrefix(r, "wake: ") {
			t.Errorf("regression %q not attributed to its case", r)
		}
	}

	// A case missing from the baseline is skipped, not gated.
	extra := report(Case{Name: "brand-new", NsNorm: 99, AllocsPerOp: 99})
	if c := Compare(extra, base, "base.json", 0.15); len(c.Regressions) != 0 {
		t.Errorf("unknown case gated: %v", c.Regressions)
	}
}

// Reports survive a write/load round trip, and Load rejects foreign
// schema versions.
func TestJSONRoundTrip(t *testing.T) {
	r := report(Case{Name: "wake", N: 7, NsPerOp: 123.5, AllocsPerOp: 42,
		EventsPerOp: 10, EventsPerSec: 5e6, NsNorm: 0.5})
	r.Comparison = &Comparison{Baseline: "b.json", Tolerance: 0.15,
		Deltas: []Delta{{Name: "wake", AllocsRatio: 0.5}}}

	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "BENCH_test.json")
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := json.Marshal(r)
	have, _ := json.Marshal(got)
	if !bytes.Equal(want, have) {
		t.Errorf("round trip changed the report:\n%s\n%s", want, have)
	}

	bad := *r
	bad.Schema = Schema + 1
	buf.Reset()
	if err := bad.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(path); err == nil {
		t.Error("Load accepted a report with a foreign schema version")
	}
}

// The committed suite stays calibration-first with unique names — the
// invariants RunSuite's normalisation and Compare's map rely on.
func TestSuiteShape(t *testing.T) {
	suite := Suite()
	if len(suite) == 0 || suite[0].Name != "calib" {
		t.Fatal("suite must lead with the calibration case")
	}
	seen := map[string]bool{}
	for _, s := range suite {
		if seen[s.Name] {
			t.Errorf("duplicate case name %q", s.Name)
		}
		seen[s.Name] = true
		if s.bench == nil {
			t.Errorf("case %q has no bench function", s.Name)
		}
	}
	for _, name := range []string{"wake", "fig2", "fig3t", "fig5", "abl-int", "fab1k", "open", "serve"} {
		if !seen[name] {
			t.Errorf("suite is missing the %q case", name)
		}
	}
}

// The 1,024-core case must actually exercise the sharded engine: if the
// parallel lookahead windows never open (an affinity or balancer-scope
// slip), the bench silently measures the sequential merge and the scale
// gate means nothing.
func TestFabric1kWindowsOpen(t *testing.T) {
	if testing.Short() {
		t.Skip("builds a 1,024-core machine")
	}
	m := fabric1kSetup()
	m.RunFor(50 * time.Millisecond)
	if m.Stats.Events == 0 {
		t.Fatal("fabric1k machine processed no events")
	}
	if m.Windows() == 0 {
		t.Fatal("fabric1k ran entirely outside parallel windows — the shard scope of an app or balancer is broken")
	}
	if frac := float64(m.WindowEvents()) / float64(m.Stats.Events); frac < 0.5 {
		t.Errorf("only %.0f%% of events ran inside windows, want most", frac*100)
	}
}
