package linuxlb_test

import (
	"testing"
	"time"

	"repro/internal/cfs"
	"repro/internal/cpuset"
	"repro/internal/linuxlb"
	"repro/internal/sim"
	"repro/internal/task"
	"repro/internal/topo"
)

func newMachine(tp *topo.Topology, seed uint64) (*sim.Machine, *linuxlb.Balancer) {
	m := sim.New(tp, sim.Config{Seed: seed, NewScheduler: cfs.Factory()})
	b := linuxlb.Default()
	m.AddActor(b)
	return m, b
}

func hogs(m *sim.Machine, n int, core int) []*task.Task {
	var out []*task.Task
	for i := 0; i < n; i++ {
		t := m.NewTask("hog", &task.ComputeForever{Chunk: 1e9})
		if core >= 0 {
			m.StartOn(t, core)
		} else {
			m.Start(t)
		}
		out = append(out, t)
	}
	return out
}

func queueLens(m *sim.Machine) []int {
	out := make([]int, len(m.Cores))
	for i, c := range m.Cores {
		out[i] = c.NrRunnable()
	}
	return out
}

// The paper's central critique: a 3-vs-2 (or 2-vs-1) split is "balanced"
// under integer queue-length arithmetic and is never corrected.
func TestIntegerStasisTwoVsOne(t *testing.T) {
	m, _ := newMachine(topo.SMP(2), 1)
	ts := hogs(m, 3, 0) // all three on core 0
	m.RunFor(5 * time.Second)
	lens := queueLens(m)
	if !(lens[0] == 2 && lens[1] == 1 || lens[0] == 1 && lens[1] == 2) {
		t.Fatalf("queues %v, want a 2/1 split", lens)
	}
	// The split must then be static: run on and re-check.
	migsBefore := ts[0].Migrations + ts[1].Migrations + ts[2].Migrations
	m.RunFor(5 * time.Second)
	migsAfter := ts[0].Migrations + ts[1].Migrations + ts[2].Migrations
	if migsAfter != migsBefore {
		t.Errorf("migrations continued on a 2/1 split: %d -> %d", migsBefore, migsAfter)
	}
}

// A 3-vs-1 split is correctable (moving one task improves balance).
func TestThreeVsOneCorrected(t *testing.T) {
	m, _ := newMachine(topo.SMP(2), 2)
	hogs(m, 4, 0)
	m.RunFor(5 * time.Second)
	lens := queueLens(m)
	if lens[0] != 2 || lens[1] != 2 {
		t.Errorf("queues %v, want 2/2", lens)
	}
}

// Sixteen tasks forked together spread to one per core.
func TestSpreadSixteen(t *testing.T) {
	m, _ := newMachine(topo.Tigerton(), 3)
	hogs(m, 16, -1) // placed via the (stale) OS placer
	m.RunFor(5 * time.Second)
	for i, l := range queueLens(m) {
		if l != 1 {
			t.Errorf("core %d queue %d, want 1 (got %v)", i, l, queueLens(m))
			break
		}
	}
}

// Stale fork placement: tasks started between ticks all see the same
// snapshot and clump; with accurate placement they spread immediately.
func TestStalePlacementClumps(t *testing.T) {
	m, _ := newMachine(topo.SMP(4), 4)
	m.RunFor(50 * time.Millisecond) // let ticks initialise snapshots
	var placed []int
	for i := 0; i < 4; i++ {
		tk := m.NewTask("t", &task.ComputeForever{Chunk: 1e9})
		m.Start(tk)
		placed = append(placed, tk.CoreID)
	}
	same := 0
	for _, c := range placed {
		if c == placed[0] {
			same++
		}
	}
	if same != 4 {
		t.Errorf("simultaneous forks placed on %v, want all clumped", placed)
	}
}

// New-idle balancing: when a core empties, it immediately pulls from a
// loaded queue rather than waiting for the periodic balancer.
func TestNewIdlePull(t *testing.T) {
	m, b := newMachine(topo.SMP(2), 5)
	// A short-lived task on core 1 plus two hogs on core 0.
	short := m.NewTask("short", &task.Seq{Actions: []task.Action{task.Compute{Work: 30e6}}})
	m.StartOn(short, 1)
	h := m.NewTask("hog1", &task.ComputeForever{Chunk: 1e9})
	m.StartOn(h, 0)
	h2 := m.NewTask("hog2", &task.ComputeForever{Chunk: 1e9})
	m.StartOn(h2, 0)
	m.RunFor(10 * time.Millisecond) // before the short task ends
	lens := queueLens(m)
	if lens[0] != 2 {
		t.Skip("periodic balancing already intervened; scenario void")
	}
	m.RunFor(40 * time.Millisecond) // short ends at 30 ms: core 1 idles
	if got := queueLens(m); got[0] != 1 || got[1] != 1 {
		t.Errorf("queues %v after idle, want 1/1", got)
	}
	if b.NewIdlePulls == 0 {
		t.Error("no new-idle pulls recorded")
	}
}

// The balancer never violates affinity masks.
func TestAffinityRespected(t *testing.T) {
	m, _ := newMachine(topo.SMP(4), 6)
	var pinned []*task.Task
	for i := 0; i < 6; i++ {
		tk := m.NewTask("pinned", &task.ComputeForever{Chunk: 1e9})
		tk.Affinity = cpuset.Of(0, 1)
		m.Start(tk)
		pinned = append(pinned, tk)
	}
	m.RunFor(5 * time.Second)
	for _, tk := range pinned {
		if tk.CoreID > 1 {
			t.Errorf("task on core %d outside affinity {0,1}", tk.CoreID)
		}
	}
}

// The balancer never migrates the running task through the normal path
// (only the active-balance migration thread may move it).
func TestRunningTaskOnlyMovedByActiveBalance(t *testing.T) {
	m, b := newMachine(topo.SMP(2), 7)
	hogs(m, 3, 0)
	m.RunFor(2 * time.Second)
	// Any moves the normal path made must have been of queued tasks —
	// this is enforced by sim.Migrate panicking on running tasks, so
	// surviving the run is the assertion; count activity for sanity.
	if b.Pulls+b.NewIdlePulls == 0 {
		t.Error("balancer made no pulls at all")
	}
}

// Yield-waiters count as load: queue lengths include them, so a core
// full of waiters attracts no tasks (the LOAD-YIELD pathology).
func TestYieldWaitersCountAsLoad(t *testing.T) {
	m, _ := newMachine(topo.SMP(2), 8)
	// A yield-waiter parked on core 1 (waiting on a condition that
	// never fires), plus two hogs on core 0.
	never := newNeverCond()
	waiter := m.NewTask("waiter", &task.Seq{Actions: []task.Action{
		task.WaitFor{C: never, Policy: task.WaitYield},
	}})
	m.StartOn(waiter, 1)
	hogs(m, 2, 0)
	m.RunFor(3 * time.Second)
	// 2 vs 1 with the waiter counted: integer stasis, no migration.
	if got := queueLens(m); got[0] != 2 || got[1] != 1 {
		t.Errorf("queues %v, want 2/1 (waiter counts as load)", got)
	}
}

// Block-waiters do NOT count: the same scenario with a blocking waiter
// lets the balancer move a hog over (the LOAD-SLEEP advantage).
func TestBlockWaitersDoNotCountAsLoad(t *testing.T) {
	m, _ := newMachine(topo.SMP(2), 9)
	never := newNeverCond()
	waiter := m.NewTask("waiter", &task.Seq{Actions: []task.Action{
		task.WaitFor{C: never, Policy: task.WaitBlock},
	}})
	m.StartOn(waiter, 1)
	hogs(m, 2, 0)
	m.RunFor(3 * time.Second)
	if got := queueLens(m); got[0] != 1 || got[1] != 1 {
		t.Errorf("queues %v, want 1/1 (blocked waiter is invisible)", got)
	}
}

// neverCond is a condition that never releases.
type neverCond struct{}

func newNeverCond() *neverCond { return &neverCond{} }

func (n *neverCond) Arrive(t *task.Task, w task.Waker) bool { return false }

// An extreme clump disperses across the machine (cache-hot resistance
// escalates, active balance pushes running tasks to idle sockets). A
// residual ±1 imbalance may survive — group-sum integer arithmetic stops
// correcting once sums look balanced, which is exactly the "failure to
// correct initial imbalances" the paper attributes LOAD's erratic EP
// results to.
func TestClumpDispersal(t *testing.T) {
	m, b := newMachine(topo.Tigerton(), 10)
	hogs(m, 8, 0) // extreme clump on core 0
	m.RunFor(2 * time.Second)
	lens := queueLens(m)
	occupied, max := 0, 0
	for _, l := range lens {
		if l > 0 {
			occupied++
		}
		if l > max {
			max = l
		}
	}
	if occupied < 7 {
		t.Errorf("only %d cores occupied after 2s: %v", occupied, lens)
	}
	if max > 2 {
		t.Errorf("a queue still holds %d tasks after 2s: %v", max, lens)
	}
	if b.Pulls+b.NewIdlePulls == 0 {
		t.Error("no pulls during dispersal")
	}
}
