package trace

// Ring is a bounded in-memory event sink: it keeps the most recent
// Capacity events, overwriting the oldest when full. A capacity of zero
// drops every event (a cheap way to measure emission cost without
// retention). The zero-allocation steady state — storage grows once up
// to capacity and is then reused — keeps tracing off the simulator's
// allocation profile.
//
// Ring is not safe for concurrent use; each simulated machine (each
// experiment cell) owns its own ring, which is what makes parallel
// harness runs trace-deterministic: no two cells share a sink.
type Ring struct {
	buf []Event
	cap int
	// start indexes the oldest retained event once the ring has wrapped.
	start   int
	wrapped bool
	dropped uint64
	total   uint64
}

// NewRing returns a ring retaining up to capacity events. Capacity 0
// drops all events; negative capacities panic.
func NewRing(capacity int) *Ring {
	if capacity < 0 {
		panic("trace: negative ring capacity")
	}
	return &Ring{cap: capacity}
}

// Emit implements Tracer.
func (r *Ring) Emit(e Event) {
	r.total++
	if r.cap == 0 {
		r.dropped++
		return
	}
	if len(r.buf) < r.cap {
		r.buf = append(r.buf, e)
		return
	}
	r.wrapped = true
	r.dropped++
	r.buf[r.start] = e
	r.start++
	if r.start == r.cap {
		r.start = 0
	}
}

// Len returns the number of retained events.
func (r *Ring) Len() int { return len(r.buf) }

// Total returns the number of events ever emitted.
func (r *Ring) Total() uint64 { return r.total }

// Dropped returns how many events were discarded (capacity 0 counts
// every emission; a wrapped ring counts the overwritten oldest ones).
func (r *Ring) Dropped() uint64 { return r.dropped }

// Events returns the retained events oldest-first. The returned slice
// is freshly allocated; the ring keeps its storage.
func (r *Ring) Events() []Event {
	if len(r.buf) == 0 {
		return nil
	}
	out := make([]Event, 0, len(r.buf))
	if r.wrapped {
		out = append(out, r.buf[r.start:]...)
		out = append(out, r.buf[:r.start]...)
		return out
	}
	out = append(out, r.buf...)
	return out
}

// Reset discards all retained events, keeping the storage for reuse.
func (r *Ring) Reset() {
	r.buf = r.buf[:0]
	r.start = 0
	r.wrapped = false
	r.dropped = 0
	r.total = 0
}
