// Traced: run the quickstart scenario under speed balancing with the
// tracer and metrics attached, write a Chrome trace-event JSON, and
// print the collected scheduler metrics.
//
// Load the resulting trace in ui.perfetto.dev to see one timeline row
// per core: run stints as slices, migrations and balancer decisions as
// instants. This visualises the paper's central mechanism — under
// speed balancing the threads rotate through the fast cores instead of
// being stuck behind a queue-length-balanced placement.
//
//	go run ./examples/traced
package main

import (
	"fmt"
	"os"
	"time"

	lbos "repro"
)

func main() {
	const threads, cores = 12, 8

	spec := lbos.AppSpec{
		Name:             "solver",
		Threads:          threads,
		Iterations:       20,
		WorkPerIteration: 150 * lbos.Millisecond,
		Model:            lbos.UPC(),
		Affinity:         lbos.Cores(cores),
	}

	ring := lbos.NewTraceRing(1 << 16)
	reg := lbos.NewMetricsRegistry()
	sys := lbos.NewSystem(lbos.Tigerton(), lbos.WithSeed(1),
		lbos.WithTracer(ring), lbos.WithMetrics(reg))
	app := sys.BuildApp(spec)
	bal := sys.SpeedBalance(app, lbos.SpeedConfig{})
	sys.RunUntil(app)

	fmt.Printf("%d threads on %d cores under SPEED: %v (speedup %.2f, %d migrations)\n",
		threads, cores, app.Elapsed().Round(time.Millisecond), app.Speedup(), bal.Migrations)

	f, err := os.Create("speed.trace.json")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if err := lbos.WriteChromeTrace(f, "speed 12x8", ring); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	f.Close()
	fmt.Printf("wrote speed.trace.json (%d events) — load it in ui.perfetto.dev\n\n", ring.Total())

	snap := reg.Snapshot()
	fmt.Println("counters:")
	for _, c := range snap.Counters {
		fmt.Printf("  %-24s %d\n", c.Name, c.Value)
	}
	fmt.Println("histograms:")
	for _, h := range snap.Hists {
		fmt.Printf("  %-24s count %d  mean %.4g  max %.4g\n", h.Name, h.Count, h.Mean(), h.Max)
	}
}
