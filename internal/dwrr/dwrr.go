// Package dwrr models Distributed Weighted Round-Robin multiprocessor
// fair scheduling (Li et al. [15]), the strongest kernel-level baseline
// the paper compares against (§2).
//
// DWRR schedules in rounds: each task may consume one round slice
// (100 ms in the 2.6.22-based implementation the paper used, weighted by
// priority) per round, after which it moves to the core's expired queue.
// Each core has a round number; global fairness is enforced by keeping
// all busy cores' round numbers within one of each other. A core whose
// active queue empties first performs round balancing: it steals a
// not-yet-expired task from another core in the lowest round, and only
// advances its own round (swapping active and expired) when no such task
// exists. As the paper notes, the mechanism is application-unaware,
// balances every task in the system uniformly, and can migrate a large
// number of threads; it maintains no migration history.
package dwrr

import (
	"fmt"
	"time"

	"repro/internal/sim"
	"repro/internal/task"
	"repro/internal/trace"
)

// Config tunes the scheduler.
type Config struct {
	// RoundSlice is the per-round CPU quantum per task (100 ms in the
	// 2.6.22 DWRR, 30 ms in 2.6.24; the paper used the former).
	RoundSlice time.Duration
	// Slice is the interleaving quantum within a round (O(1)-scheduler
	// style round-robin at equal priority).
	Slice time.Duration
	// ShardLocal confines round balancing to the stealing core's
	// simulation shard: queues steal only from queues in the same shard,
	// and the round-spread invariant holds per shard rather than
	// machine-wide. Stealing happens inside PickNext — on the core's
	// own shard worker — so with this set DWRR runs inside parallel
	// windows; without it, any steal may reach across shards and the
	// simulator must serialise (machine-wide DWRR keeps windows shut via
	// the isolation checks whenever tasks can actually cross shards).
	ShardLocal bool
}

// DefaultConfig returns the 2.6.22-era parameters.
func DefaultConfig() Config {
	return Config{RoundSlice: 100 * time.Millisecond, Slice: 100 * time.Millisecond}
}

// Global coordinates the per-core queues: round numbers and stealing.
type Global struct {
	cfg    Config
	m      *sim.Machine
	queues []*Queue
}

// NewFactory returns a scheduler factory and the shared coordinator.
func NewFactory(cfg Config) (func(coreID int) sim.Scheduler, *Global) {
	if cfg.RoundSlice == 0 {
		cfg = DefaultConfig()
	}
	if cfg.Slice == 0 {
		cfg.Slice = cfg.RoundSlice
	}
	g := &Global{cfg: cfg}
	return func(coreID int) sim.Scheduler {
		q := &Queue{g: g, core: coreID}
		g.queues = append(g.queues, q)
		return q
	}, g
}

// Steals sums round-balancing migrations across queues. The count is
// kept per queue so concurrent shard workers never share a counter.
func (g *Global) Steals() int {
	n := 0
	for _, q := range g.queues {
		n += q.steals
	}
	return n
}

// MaxRoundSpread returns the largest difference between busy cores'
// round numbers — the DWRR invariant bounds it by 1 (per shard when
// ShardLocal confines stealing).
func (g *Global) MaxRoundSpread() int {
	min, max, any := 0, 0, false
	for _, q := range g.queues {
		if q.NrRunnable() == 0 {
			continue
		}
		if !any {
			min, max, any = q.round, q.round, true
			continue
		}
		if q.round < min {
			min = q.round
		}
		if q.round > max {
			max = q.round
		}
	}
	return max - min
}

// Queue is one core's DWRR run queue (active + expired), implementing
// sim.Scheduler.
type Queue struct {
	g    *Global
	core int

	active  []*task.Task
	expired []*task.Task
	cur     *task.Task
	round   int
	steals  int
	// roundServed accumulates weighted CPU time charged since the round
	// began. Rounds normally close when active empties, but under open
	// arrivals active may never empty — each newcomer joins the current
	// round with a fresh slice, so a task expired early in the round can
	// be stranded behind an unbounded stream of arrivals (the observed
	// ρ≥0.85 p99 collapse). Once roundServed exceeds the round's
	// entitlement while expired tasks wait, the round is force-advanced.
	roundServed time.Duration
}

// Round returns the core's current round number.
func (q *Queue) Round() int { return q.round }

// Attach implements sim.Scheduler.
func (q *Queue) Attach(m *sim.Machine, coreID int) { q.g.m = m }

// Enqueue implements sim.Scheduler. Waking and new tasks join the
// current round's active queue; no wakeup preemption (round-robin).
func (q *Queue) Enqueue(t *task.Task, wakeup bool) bool {
	if t.Sched.OnQueue {
		panic(fmt.Sprintf("dwrr: double enqueue of %q", t.Name))
	}
	if t.Sched.Round < q.round {
		// The task's recorded round is behind the queue's: it slept (or
		// arrived) across a round boundary, so whatever it consumed was
		// consumed in a round that has already closed. Without this reset
		// a task that dozed off just short of its slice woke into the new
		// round pre-expired — charged twice for the same CPU time.
		t.Sched.RoundUsed = 0
	}
	t.Sched.Round = q.round
	if t.Sched.RoundUsed >= q.g.cfg.RoundSlice {
		// Already exhausted this round elsewhere: expired.
		t.Sched.Round = q.round + 1
		q.expired = append(q.expired, t)
	} else {
		q.active = append(q.active, t)
	}
	t.Sched.OnQueue = true
	return false
}

// Dequeue implements sim.Scheduler.
func (q *Queue) Dequeue(t *task.Task) {
	switch {
	case t == q.cur:
		q.cur = nil
	case remove(&q.active, t):
	case remove(&q.expired, t):
	default:
		panic(fmt.Sprintf("dwrr: dequeue of absent task %q", t.Name))
	}
	t.Sched.OnQueue = false
}

// PickNext implements sim.Scheduler: head of active; when active is
// empty, round-balance by stealing, else advance the round.
func (q *Queue) PickNext() *task.Task {
	if q.cur != nil {
		panic("dwrr: PickNext with current attached")
	}
	for {
		if len(q.active) > 0 && len(q.expired) > 0 && q.roundServed >= q.roundBudget() {
			// The core has served a full round's entitlement yet active is
			// still populated — tasks keep arriving into the open round, so
			// the empty-active advance below would never run: close the
			// round by force so the expired tasks are not stranded. They go
			// ahead of the carried-over active tasks — they have waited the
			// longest and their new-round slice is already reset. A closed
			// system never gets here: its round serves exactly the
			// entitlement, emptying active at the same moment, and takes
			// the steal-then-advance path instead.
			q.round++
			q.roundServed = 0
			if q.g.m.Tracing() {
				q.g.m.Emit(trace.Event{Kind: trace.KindRoundAdvance, Core: q.core, N: q.round})
			}
			q.active = append(q.expired, q.active...)
			q.expired = nil
		}
		if len(q.active) > 0 {
			t := q.active[0]
			// Shift down rather than re-slice so the backing array's front
			// capacity is not leaked (appends would otherwise regrow it).
			copy(q.active, q.active[1:])
			q.active[len(q.active)-1] = nil
			q.active = q.active[:len(q.active)-1]
			t.Sched.OnQueue = false
			q.cur = t
			return t
		}
		if q.stealRound() {
			continue
		}
		if len(q.expired) == 0 {
			return nil
		}
		// Advance the round: expired tasks become the new active set.
		q.round++
		q.roundServed = 0
		if q.g.m.Tracing() {
			q.g.m.Emit(trace.Event{Kind: trace.KindRoundAdvance, Core: q.core, N: q.round})
		}
		q.active, q.expired = q.expired, q.active[:0]
	}
}

// stealRound implements DWRR round balancing: take one unexpired task
// from another core that is still in a round ≤ ours. Returns whether a
// task was stolen into the active queue.
func (q *Queue) stealRound() bool {
	var victim *Queue
	var pick *task.Task
	shard := -1
	if q.g.cfg.ShardLocal {
		shard = q.g.m.ShardOf(q.core)
	}
	for _, o := range q.g.queues {
		if o == q || o.round > q.round {
			continue
		}
		if shard >= 0 && q.g.m.ShardOf(o.core) != shard {
			continue
		}
		if !q.g.m.Cores[o.core].Online() {
			// Hot-unplugged queues are drained empty; skipping keeps the
			// scan honest if one is mid-drain.
			continue
		}
		for _, t := range o.active {
			if !t.Affinity.Has(q.core) {
				continue
			}
			if victim == nil || o.round < victim.round || (o.round == victim.round && len(o.active) > len(victim.active)) {
				victim, pick = o, t
			}
			break
		}
	}
	if pick == nil {
		return false
	}
	remove(&victim.active, pick)
	pick.Sched.OnQueue = false
	q.g.m.NoteMigration(pick, q.core, "dwrr")
	q.steals++
	pick.Sched.Round = q.round
	q.active = append(q.active, pick)
	pick.Sched.OnQueue = true
	return true
}

// PutPrev implements sim.Scheduler: an expired task waits for the next
// round; otherwise it rejoins the active tail.
func (q *Queue) PutPrev(t *task.Task) {
	if q.cur == t {
		q.cur = nil
	}
	if t.Sched.RoundUsed >= q.g.cfg.RoundSlice {
		t.Sched.RoundUsed = 0
		t.Sched.Round = q.round + 1
		q.expired = append(q.expired, t)
	} else {
		q.active = append(q.active, t)
	}
	t.Sched.OnQueue = true
}

// AccountExec implements sim.Scheduler: consume round slice, weighted by
// priority (a nice −5 task's round slice is proportionally larger).
func (q *Queue) AccountExec(t *task.Task, d time.Duration) {
	w := t.Sched.Weight
	if w <= 0 {
		w = 1024
	}
	charge := time.Duration(int64(d) * 1024 / w)
	t.Sched.RoundUsed += charge
	q.roundServed += charge
}

// roundBudget is the weighted time the current round is entitled to
// serve: one round slice per runnable task. It is evaluated against the
// live queue length, so the entitlement grows as tasks arrive — a round
// may run long, but never unboundedly long while expired tasks wait.
func (q *Queue) roundBudget() time.Duration {
	return q.g.cfg.RoundSlice * time.Duration(q.NrRunnable())
}

// Slice implements sim.Scheduler: run until the round slice is consumed
// (bounded by the interleaving quantum).
func (q *Queue) Slice(t *task.Task) time.Duration {
	left := q.g.cfg.RoundSlice - t.Sched.RoundUsed
	if left < time.Millisecond {
		left = time.Millisecond
	}
	if left > q.g.cfg.Slice {
		left = q.g.cfg.Slice
	}
	return left
}

// Yield implements sim.Scheduler: move behind the other active tasks
// (handled by PutPrev appending to the tail).
func (q *Queue) Yield(t *task.Task) {}

// NrRunnable implements sim.Scheduler.
func (q *Queue) NrRunnable() int {
	n := len(q.active) + len(q.expired)
	if q.cur != nil {
		n++
	}
	return n
}

// WeightedLoad implements sim.Scheduler.
func (q *Queue) WeightedLoad() int64 {
	var w int64
	for _, t := range q.active {
		w += t.Sched.Weight
	}
	for _, t := range q.expired {
		w += t.Sched.Weight
	}
	if q.cur != nil {
		w += q.cur.Sched.Weight
	}
	return w
}

// Queued implements sim.Scheduler.
func (q *Queue) Queued() []*task.Task {
	out := make([]*task.Task, 0, len(q.active)+len(q.expired))
	out = append(out, q.active...)
	out = append(out, q.expired...)
	return out
}

// EachQueued implements sim.Scheduler: active tasks first, then expired,
// matching Queued's order.
func (q *Queue) EachQueued(fn func(t *task.Task) bool) {
	for _, t := range q.active {
		if !fn(t) {
			return
		}
	}
	for _, t := range q.expired {
		if !fn(t) {
			return
		}
	}
}

func remove(s *[]*task.Task, t *task.Task) bool {
	for i, o := range *s {
		if o == t {
			*s = append((*s)[:i], (*s)[i+1:]...)
			return true
		}
	}
	return false
}
