package exp

// Fidelity tests: assert the *shapes* of the paper's headline results at
// a reduced scale, so a regression in any balancer or substrate model
// that would flip a conclusion fails the suite. (EXPERIMENTS.md records
// the full-scale values.)

import (
	"strconv"
	"testing"
)

func fidelityCtx() *Context { return &Context{Reps: 3, Scale: 8, Seed: 20100109} }

func cellF(t *testing.T, tb *Table, row int, col string) float64 {
	t.Helper()
	ci := -1
	for i, c := range tb.Columns {
		if c == col {
			ci = i
		}
	}
	if ci < 0 {
		t.Fatalf("no column %q in %q", col, tb.Title)
	}
	v, err := strconv.ParseFloat(tb.Rows[row][ci], 64)
	if err != nil {
		t.Fatalf("cell [%d,%s] = %q: %v", row, col, tb.Rows[row][ci], err)
	}
	return v
}

func rowOf(t *testing.T, tb *Table, first string) int {
	t.Helper()
	for i, r := range tb.Rows {
		if r[0] == first {
			return i
		}
	}
	t.Fatalf("no row %q in %q", first, tb.Title)
	return -1
}

// Figure 3 orderings at 12 cores (16 does not divide by 12): SPEED well
// above PINNED and LOAD-YIELD; LOAD-SLEEP above LOAD-YIELD; One-per-core
// ≈ linear; ULE ≈ PINNED.
func TestFidelityFig3Ordering(t *testing.T) {
	if testing.Short() {
		t.Skip("fidelity tests skipped in short mode")
	}
	tables := mustRun(t, "fig3t", fidelityCtx())
	tb := tables[0]
	r := rowOf(t, tb, "12")
	oneper := cellF(t, tb, r, "One-per-core")
	speed := cellF(t, tb, r, "SPEED")
	sleep := cellF(t, tb, r, "LOAD-SLEEP")
	yield := cellF(t, tb, r, "LOAD-YIELD")
	pinned := cellF(t, tb, r, "PINNED")
	ule := cellF(t, tb, r, "FreeBSD")

	if oneper < 11.5 {
		t.Errorf("One-per-core at 12 cores = %.2f, want ≈ 12", oneper)
	}
	if speed < pinned*1.15 {
		t.Errorf("SPEED %.2f not well above PINNED %.2f", speed, pinned)
	}
	if speed < yield*1.15 {
		t.Errorf("SPEED %.2f not well above LOAD-YIELD %.2f", speed, yield)
	}
	if sleep < yield*1.05 {
		t.Errorf("LOAD-SLEEP %.2f not above LOAD-YIELD %.2f", sleep, yield)
	}
	if diff := ule - pinned; diff > 1 || diff < -1 {
		t.Errorf("ULE %.2f not ≈ PINNED %.2f", ule, pinned)
	}
}

// Figure 2 shape: at S ≪ B all columns sit at the ~1.33 lockstep bound;
// at coarse S the smallest interval approaches 1.0 and intervals are
// monotone (smaller B never much worse).
func TestFidelityFig2Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("fidelity tests skipped in short mode")
	}
	tables := mustRun(t, "fig2", fidelityCtx())
	tb := tables[0]
	fine := rowOf(t, tb, "50µs")
	for _, col := range []string{"LOAD", "SPEED B=20ms", "SPEED B=500ms"} {
		v := cellF(t, tb, fine, col)
		if v < 1.25 || v > 1.45 {
			t.Errorf("fine grain %s = %.3f, want ≈ 1.33 (lockstep)", col, v)
		}
	}
	coarse := rowOf(t, tb, "1s")
	if v := cellF(t, tb, coarse, "SPEED B=20ms"); v > 1.1 {
		t.Errorf("coarse grain SPEED B=20ms = %.3f, want ≈ 1.0", v)
	}
	if load := cellF(t, tb, coarse, "LOAD"); load < 1.25 {
		t.Errorf("coarse grain LOAD = %.3f, want ≈ 1.33 (no mid-iteration help)", load)
	}
}

// Figure 5 shape at 16 cores: PINNED degrades to ~half speed; SPEED
// clearly above both PINNED and LOAD.
func TestFidelityFig5Hog(t *testing.T) {
	if testing.Short() {
		t.Skip("fidelity tests skipped in short mode")
	}
	tables := mustRun(t, "fig5", fidelityCtx())
	tb := tables[0]
	r := rowOf(t, tb, "16")
	pinned := cellF(t, tb, r, "PINNED")
	speed := cellF(t, tb, r, "SPEED")
	load := cellF(t, tb, r, "LOAD")
	if pinned > 8.5 {
		t.Errorf("PINNED with hog = %.2f, want ≈ 8 (half speed)", pinned)
	}
	if speed < pinned*1.2 || speed < load*1.1 {
		t.Errorf("SPEED %.2f not clearly above PINNED %.2f / LOAD %.2f", speed, pinned, load)
	}
}

// Table 3 aggregate: SPEED improves on LOAD and PINNED on average, with
// far lower variation than LOAD.
func TestFidelityTable3Aggregate(t *testing.T) {
	if testing.Short() {
		t.Skip("fidelity tests skipped in short mode")
	}
	tables := mustRun(t, "table3", fidelityCtx())
	tb := tables[0]
	// The big improvements concentrate in ep.C (the paper's 24/46/90
	// row): fine-grain benchmarks sit near the Lemma 1 parity bound.
	r := rowOf(t, tb, "ep.C")
	if vsLoad := cellF(t, tb, r, "vs LB avg"); vsLoad < 5 {
		t.Errorf("ep.C SPEED vs LOAD avg = %.1f%%, want clearly positive", vsLoad)
	}
	all := rowOf(t, tb, "all")
	if vsPinned := cellF(t, tb, all, "vs PINNED"); vsPinned < 0 {
		t.Errorf("aggregate SPEED vs PINNED = %.1f%%, want non-negative", vsPinned)
	}
	if vsLoad := cellF(t, tb, all, "vs LB avg"); vsLoad < 0.5 {
		t.Errorf("aggregate SPEED vs LOAD = %.1f%%, want positive", vsLoad)
	}
	// Variance claims need full scale and full reps; just log here.
	t.Logf("aggregate: vsPinned=%.1f%% vsLoad=%.1f%% varS=%.1f%% varL=%.1f%%",
		cellF(t, tb, all, "vs PINNED"), cellF(t, tb, all, "vs LB avg"),
		cellF(t, tb, all, "SPEED var %"), cellF(t, tb, all, "LOAD var %"))
}

func mustRun(t *testing.T, id string, ctx *Context) []*Table {
	t.Helper()
	e, err := ByID(id)
	if err != nil {
		t.Fatal(err)
	}
	return e.Run(ctx)
}
