// Package maporder implements the map-iteration-order analyzer. Go
// randomizes map iteration order per run, so a `range` over a map whose
// body feeds an output sink — a fmt print, a Context.Logf progress line,
// a table row builder, or an append that escapes the loop — produces
// output that differs between runs and breaks the harness's
// bit-identical-output contract.
//
// The analyzer flags such ranges unless the escaping slice is passed to
// a sort function later in the same enclosing function body (the
// canonical collect-keys-then-sort idiom), or the site carries a
// //lint:allow-maporder directive. Iteration that only aggregates into
// iteration-local state, or into commutative non-output state, is left
// alone.
//
// Ranges over maps.Keys / maps.Values / maps.All iterators are treated
// exactly like ranges over the map itself.
package maporder

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/analysis"
)

// Analyzer is the maporder analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "maporder",
	Doc:  "flag range-over-map whose body writes to output sinks without a deterministic sort",
	Run:  run,
}

// sinkMethods are method names that emit ordered output. Receivers
// declared inside the range body (iteration-local builders) are exempt.
var sinkMethods = map[string]bool{
	"Logf": true, "Log": true, "Print": true, "Printf": true,
	"Println": true, "Write": true, "WriteString": true,
	"WriteByte": true, "WriteRune": true, "AddRow": true, "Note": true,
	// Test failure output is ordered output too: a table-driven test
	// ranging over a map reports its failures in a different order each
	// run, which defeats diffing two test logs.
	"Error": true, "Errorf": true, "Fatal": true, "Fatalf": true,
	"Skip": true, "Skipf": true,
	// Observability sinks: trace rings export events in emission order
	// (the Chrome trace bytes are part of the bit-identical contract),
	// and metric updates driven from a map range assign values in an
	// order that differs between runs.
	"Emit": true, "WriteEvent": true, "Inc": true, "Observe": true,
}

// sortFuncs maps package path to the package-level functions that
// establish a deterministic order for their first argument.
var sortFuncs = map[string]map[string]bool{
	"sort": {
		"Strings": true, "Ints": true, "Float64s": true,
		"Slice": true, "SliceStable": true, "Sort": true, "Stable": true,
	},
	"slices": {
		"Sort": true, "SortFunc": true, "SortStableFunc": true,
	},
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			var body *ast.BlockStmt
			switch fn := n.(type) {
			case *ast.FuncDecl:
				body = fn.Body
			case *ast.FuncLit:
				body = fn.Body
			}
			if body != nil {
				checkFunc(pass, body)
			}
			return true
		})
	}
	return nil
}

// checkFunc examines the map ranges directly inside one function body.
// Nested function literals are skipped here; the outer walk visits them
// as functions in their own right, so each range is checked exactly once
// against its innermost enclosing function.
func checkFunc(pass *analysis.Pass, body *ast.BlockStmt) {
	inspectShallow(body, func(n ast.Node) {
		rs, ok := n.(*ast.RangeStmt)
		if !ok || !rangesOverMap(pass, rs) {
			return
		}
		checkRange(pass, body, rs)
	})
}

// inspectShallow walks n without descending into function literals.
func inspectShallow(n ast.Node, fn func(ast.Node)) {
	ast.Inspect(n, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if n != nil {
			fn(n)
		}
		return true
	})
}

// rangesOverMap reports whether rs iterates in map order: directly over
// a map value, or over a maps.Keys/Values/All iterator.
func rangesOverMap(pass *analysis.Pass, rs *ast.RangeStmt) bool {
	if tv, ok := pass.TypesInfo.Types[rs.X]; ok && tv.Type != nil {
		if _, isMap := tv.Type.Underlying().(*types.Map); isMap {
			return true
		}
	}
	call, ok := rs.X.(*ast.CallExpr)
	if !ok {
		return false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "maps" {
		return false
	}
	return fn.Name() == "Keys" || fn.Name() == "Values" || fn.Name() == "All"
}

// checkRange looks for output sinks in one map-range body. Unlike
// checkFunc's traversal, this one does descend into function literals:
// a print deferred or spawned from inside the loop still observes the
// nondeterministic order.
func checkRange(pass *analysis.Pass, enclosing *ast.BlockStmt, rs *ast.RangeStmt) {
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			checkCallSink(pass, rs, n)
		case *ast.AssignStmt:
			checkEscapingAppend(pass, enclosing, rs, n)
		}
		return true
	})
}

// checkCallSink flags fmt/log prints and sink method calls on receivers
// that outlive the iteration.
func checkCallSink(pass *analysis.Pass, rs *ast.RangeStmt, call *ast.CallExpr) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	if fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func); ok && fn.Pkg() != nil {
		if sig, _ := fn.Type().(*types.Signature); sig != nil && sig.Recv() == nil {
			path := fn.Pkg().Path()
			if (path == "fmt" || path == "log") && printLike(fn.Name()) {
				pass.Reportf(call.Pos(), "maporder",
					"%s.%s inside range over map emits output in nondeterministic order; collect keys, sort, then iterate", path, fn.Name())
			}
			return
		}
	}
	// Method call: a sink only if the receiver survives the iteration.
	if !sinkMethods[sel.Sel.Name] {
		return
	}
	if obj := rootObject(pass, sel.X); obj != nil && within(obj.Pos(), rs) {
		return // iteration-local builder
	}
	pass.Reportf(call.Pos(), "maporder",
		"%s call inside range over map emits output in nondeterministic order; collect keys, sort, then iterate", sel.Sel.Name)
}

func printLike(name string) bool {
	switch name {
	case "Print", "Printf", "Println", "Fprint", "Fprintf", "Fprintln":
		return true
	}
	return false
}

// checkEscapingAppend flags `s = append(s, ...)` where s is declared
// outside the range — unless s is sorted later in the enclosing
// function, which is the deterministic collect-then-sort idiom.
func checkEscapingAppend(pass *analysis.Pass, enclosing *ast.BlockStmt, rs *ast.RangeStmt, as *ast.AssignStmt) {
	for i, rhs := range as.Rhs {
		call, ok := rhs.(*ast.CallExpr)
		if !ok || len(call.Args) == 0 {
			continue
		}
		id, ok := call.Fun.(*ast.Ident)
		if !ok || id.Name != "append" {
			continue
		}
		if _, builtin := pass.TypesInfo.Uses[id].(*types.Builtin); !builtin {
			continue // shadowed: not the builtin append
		}
		var dest types.Object
		if i < len(as.Lhs) {
			dest = rootObject(pass, as.Lhs[i])
		}
		if dest == nil {
			dest = rootObject(pass, call.Args[0])
		}
		if dest == nil || within(dest.Pos(), rs) {
			continue // iteration-local slice
		}
		if sortedAfter(pass, enclosing, dest, rs) {
			continue
		}
		pass.Reportf(as.Pos(), "maporder",
			"append to %s inside range over map accumulates in nondeterministic order; sort %s afterwards or iterate sorted keys", dest.Name(), dest.Name())
	}
}

// sortedAfter reports whether obj is passed to a sort function after the
// range statement, anywhere in the enclosing function body.
func sortedAfter(pass *analysis.Pass, enclosing *ast.BlockStmt, obj types.Object, rs *ast.RangeStmt) bool {
	found := false
	ast.Inspect(enclosing, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || found || call.Pos() < rs.End() || len(call.Args) == 0 {
			return !found
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
		if !ok || fn.Pkg() == nil {
			return true
		}
		if names := sortFuncs[fn.Pkg().Path()]; names[fn.Name()] && rootObject(pass, call.Args[0]) == obj {
			found = true
		}
		return !found
	})
	return found
}

// rootObject resolves the leftmost identifier of an expression (x in
// x.f[i]) to its object, or nil.
func rootObject(pass *analysis.Pass, expr ast.Expr) types.Object {
	for {
		switch e := expr.(type) {
		case *ast.Ident:
			if obj := pass.TypesInfo.Uses[e]; obj != nil {
				return obj
			}
			return pass.TypesInfo.Defs[e]
		case *ast.SelectorExpr:
			expr = e.X
		case *ast.IndexExpr:
			expr = e.X
		case *ast.StarExpr:
			expr = e.X
		case *ast.ParenExpr:
			expr = e.X
		default:
			return nil
		}
	}
}

// within reports whether pos falls inside the range statement.
func within(pos token.Pos, rs *ast.RangeStmt) bool {
	return pos >= rs.Pos() && pos <= rs.End()
}
