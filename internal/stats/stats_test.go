package stats

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func sample(xs ...float64) *Sample {
	var s Sample
	for _, x := range xs {
		s.Add(x)
	}
	return &s
}

func TestBasics(t *testing.T) {
	s := sample(1, 2, 3, 4)
	if s.N() != 4 {
		t.Errorf("N = %d", s.N())
	}
	if s.Mean() != 2.5 {
		t.Errorf("Mean = %v", s.Mean())
	}
	if s.Min() != 1 || s.Max() != 4 {
		t.Errorf("Min/Max = %v/%v", s.Min(), s.Max())
	}
	if s.Median() != 2.5 {
		t.Errorf("Median = %v", s.Median())
	}
	if m := sample(5, 1, 3).Median(); m != 3 {
		t.Errorf("odd Median = %v", m)
	}
}

func TestEmptySample(t *testing.T) {
	var s Sample
	if s.Mean() != 0 || s.Min() != 0 || s.Max() != 0 || s.Median() != 0 ||
		s.StdDev() != 0 || s.VariationPct() != 0 {
		t.Error("empty sample statistics not all zero")
	}
}

func TestStdDev(t *testing.T) {
	s := sample(2, 4, 4, 4, 5, 5, 7, 9)
	// Sample (n-1) standard deviation of this classic set is ~2.138.
	if got := s.StdDev(); math.Abs(got-2.138) > 0.01 {
		t.Errorf("StdDev = %v", got)
	}
	if sample(5).StdDev() != 0 {
		t.Error("single-point StdDev != 0")
	}
}

// VariationPct is the paper's max/min − 1 in percent.
func TestVariationPct(t *testing.T) {
	if v := sample(10, 10, 10).VariationPct(); v != 0 {
		t.Errorf("identical runs variation = %v", v)
	}
	if v := sample(10, 20).VariationPct(); v != 100 {
		t.Errorf("2x spread variation = %v, want 100", v)
	}
	if v := sample(10, 16.7).VariationPct(); math.Abs(v-67) > 0.5 {
		t.Errorf("variation = %v, want ≈ 67 (the paper's LOAD number)", v)
	}
}

func TestImprovementPct(t *testing.T) {
	speed := sample(1.0)
	load := sample(1.46)
	if v := speed.ImprovementPct(load); math.Abs(v-46) > 0.01 {
		t.Errorf("improvement = %v, want 46", v)
	}
	// Negative when slower.
	if v := load.ImprovementPct(speed); v >= 0 {
		t.Errorf("slower sample has non-negative improvement %v", v)
	}
}

func TestWorstImprovementPct(t *testing.T) {
	speed := sample(1.0, 1.1)
	load := sample(1.0, 1.87)
	if v := speed.WorstImprovementPct(load); math.Abs(v-70) > 0.1 {
		t.Errorf("worst improvement = %v, want 70", v)
	}
}

func TestAddDuration(t *testing.T) {
	var s Sample
	s.AddDuration(1500 * time.Millisecond)
	if s.Mean() != 1.5 {
		t.Errorf("AddDuration mean = %v", s.Mean())
	}
}

func TestString(t *testing.T) {
	if got := sample(1, 2).String(); got == "" {
		t.Error("empty String")
	}
}

// Properties: min ≤ mean ≤ max; min ≤ median ≤ max; variation ≥ 0.
func TestPropertyOrderings(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		var s Sample
		for _, r := range raw {
			s.Add(float64(r) + 1) // positive
		}
		return s.Min() <= s.Mean() && s.Mean() <= s.Max() &&
			s.Min() <= s.Median() && s.Median() <= s.Max() &&
			s.VariationPct() >= 0 && s.StdDev() >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
