// Package npb provides models of the NAS Parallel Benchmarks used in the
// paper's evaluation (§6, Table 2): SPMD compute/barrier loops whose
// parameters — work per iteration, iteration count, resident set size
// and memory intensity — are calibrated so that, on the simulated
// machines, the 16-core inter-barrier times, speedups and run-time band
// match what Table 2 reports for the real benchmarks.
//
// The balancers under study observe only what these models expose:
// compute phases, barrier waits (with the programming model's wait
// policy), run-queue membership, memory footprint (migration cost) and
// memory intensity (bandwidth and NUMA effects). See calibrate.go for
// the derivation of each constant.
package npb

import (
	"fmt"
	"sort"

	"repro/internal/cpuset"
	"repro/internal/sim"
	"repro/internal/spmd"
)

// Benchmark describes one NAS kernel/application model.
type Benchmark struct {
	// Name is the NAS name with class, e.g. "ep.C".
	Name string
	// WorkPerIteration is per-thread work between barriers in
	// speed-1.0 nanoseconds.
	WorkPerIteration float64
	// Iterations is the number of compute+barrier rounds.
	Iterations int
	// RSSPerThread is the per-thread resident set in bytes (Table 2's
	// RSS column divided across 16 threads).
	RSSPerThread int64
	// MemIntensity in [0,1]: fraction of execution bound by the memory
	// system (drives bandwidth contention and NUMA penalties).
	MemIntensity float64
	// WorkJitter models data-dependent per-iteration imbalance
	// (irregular benchmarks have more).
	WorkJitter float64
}

// Spec instantiates the benchmark as an SPMD application spec with the
// given thread count, programming model and core restriction.
func (b Benchmark) Spec(threads int, model spmd.Model, affinity cpuset.Set) spmd.Spec {
	return spmd.Spec{
		Name:             b.Name,
		Threads:          threads,
		Iterations:       b.Iterations,
		WorkPerIteration: b.WorkPerIteration,
		WorkJitter:       b.WorkJitter,
		Model:            model,
		RSSBytes:         b.RSSPerThread,
		MemIntensity:     b.MemIntensity,
		Affinity:         affinity,
	}
}

// Build is sugar for spmd.Build(m, b.Spec(...)).
func (b Benchmark) Build(m *sim.Machine, threads int, model spmd.Model, affinity cpuset.Set) *spmd.App {
	return spmd.Build(m, b.Spec(threads, model, affinity))
}

// The benchmark suite. Calibration constants are derived in
// calibrate.go; see also DESIGN.md §6.
var (
	// EP (embarrassingly parallel, class C): one long compute phase and
	// a single final barrier — "negligible memory, no synchronization"
	// (§6.1). The headline Figure 3 benchmark.
	EP = Benchmark{
		Name:             "ep.C",
		WorkPerIteration: 6e9, // 6 s per thread at speed 1
		Iterations:       1,
		RSSPerThread:     2 << 20,
		MemIntensity:     0,
	}

	// BT (block tridiagonal, class A): moderate footprint, ~10 ms
	// barriers, strongly memory bound on Tigerton (speedup 4.6).
	BT = Benchmark{
		Name:             "bt.A",
		WorkPerIteration: 2.9e6,
		Iterations:       400,
		RSSPerThread:     25 << 20, // 0.4 GB / 16
		MemIntensity:     0.96,
		WorkJitter:       0.02,
	}

	// FT (3-D FFT, class B): the largest footprint (5.6 GB) and the
	// coarsest barriers (~73–206 ms) in the suite.
	FT = Benchmark{
		Name:             "ft.B",
		WorkPerIteration: 33e6,
		Iterations:       150,
		RSSPerThread:     350 << 20,
		MemIntensity:     0.92,
		WorkJitter:       0.02,
	}

	// IS (integer sort, class C): irregular all-to-all communication,
	// ~44–63 ms barriers, poor Barcelona scaling (8.4).
	IS = Benchmark{
		Name:             "is.C",
		WorkPerIteration: 13e6,
		Iterations:       100,
		RSSPerThread:     194 << 20, // 3.1 GB / 16
		MemIntensity:     0.95,
		WorkJitter:       0.08,
	}

	// SP (scalar pentadiagonal, class A): tiny footprint, very fine
	// ~2 ms barriers — the fine-grain end of the Lemma 1 spectrum.
	SP = Benchmark{
		Name:             "sp.A",
		WorkPerIteration: 0.9e6,
		Iterations:       2000,
		RSSPerThread:     6 << 20, // 0.1 GB / 16
		MemIntensity:     0.80,
		WorkJitter:       0.02,
	}

	// CG (conjugate gradient, class B): "performs barrier
	// synchronization every 4 ms" (§6.2).
	CG = Benchmark{
		Name:             "cg.B",
		WorkPerIteration: 1.4e6,
		Iterations:       1500,
		RSSPerThread:     100 << 20,
		MemIntensity:     0.90,
		WorkJitter:       0.04,
	}
)

// Suite returns the benchmarks of the combined workload (Figure 4 /
// Table 3) in a stable order.
func Suite() []Benchmark {
	s := []Benchmark{BT, CG, EP, FT, IS, SP}
	sort.Slice(s, func(i, j int) bool { return s[i].Name < s[j].Name })
	return s
}

// ByName returns the benchmark with the given name.
func ByName(name string) (Benchmark, error) {
	for _, b := range Suite() {
		if b.Name == name {
			return b, nil
		}
	}
	return Benchmark{}, fmt.Errorf("npb: unknown benchmark %q", name)
}

// ClassS returns a barrier-dominated class-S variant of the benchmark:
// 1/32 of the work per iteration but 8× the iterations, so runs last
// long enough to balance while synchronization overhead dominates. The
// paper uses class S runs to stress barrier behaviour (§6.4).
func ClassS(b Benchmark) Benchmark {
	s := b
	s.Name = b.Name[:len(b.Name)-1] + "S"
	s.WorkPerIteration = b.WorkPerIteration / 32
	s.Iterations = b.Iterations * 8
	s.RSSPerThread = b.RSSPerThread / 16
	return s
}
