package exp

// The ext-* experiments evaluate the paper's stated future work,
// implemented in this reproduction (see DESIGN.md):
//
//   - ext-smt: weighting thread speed by the sibling hardware context's
//     state ("In future work we intend to weight the speed of a task
//     according to the state of the other hardware context", §6).
//   - ext-measure: a performance-counter (retired-work) speed signal
//     instead of exec/real (§7).
//   - ext-swap: thread exchanges for one-thread-per-core imbalances
//     that the paper's pull-only design cannot express.

import (
	"fmt"

	"time"

	"repro/internal/cfs"
	"repro/internal/cpuset"
	"repro/internal/npb"
	"repro/internal/sim"
	"repro/internal/speedbal"
	"repro/internal/spmd"
	"repro/internal/stats"
	"repro/internal/task"
	"repro/internal/topo"
)

func init() {
	Register(&Experiment{
		ID:       "ext-smt",
		Title:    "Extension: SMT-aware speed weighting on Nehalem",
		PaperRef: "§6 (stated future work)",
		Expect: "12 threads on 16 logical CPUs leave 4 physical cores " +
			"dual-occupied; every balancer that only sees per-logical-CPU " +
			"shares is blind to it. Weighting by sibling occupancy (plus swaps) " +
			"rotates contention and approaches the 9.2-capacity ideal.",
		Run: runExtSMT,
	})
	Register(&Experiment{
		ID:       "ext-measure",
		Title:    "Extension: performance-counter (work-rate) speed signal",
		PaperRef: "§7 (stated future work)",
		Expect: "Memory-bound threads clumped on two sockets saturate the FSB; " +
			"every thread owns a full core, so the exec/real signal is blind. " +
			"The retired-work signal spreads them across sockets.",
		Run: runExtMeasure,
	})
	Register(&Experiment{
		ID:       "ext-swap",
		Title:    "Extension: swaps for one-thread-per-core asymmetry",
		PaperRef: "beyond the paper (pull-only limitation)",
		Expect: "With one thread per core on 4×1.5x + 4×1.0x cores, any pull " +
			"lowers utilisation; swaps rotate fast-core time and approach the " +
			"capacity-10 ideal while plain SPEED stays at the slow cores' pace.",
		Run: runExtSwap,
	})
}

func runExtSMT(ctx *Context) []*Table {
	t := &Table{
		Title:   "EP, 12 threads on Nehalem (16 logical / 8 physical CPUs)",
		Columns: []string{"config", "elapsed s", "speedup", "migrations+swaps"},
	}
	// Finishers block (MPI-style), freeing their hardware contexts;
	// only the SMT-aware measure routes stragglers onto them.
	spec := ScaleSpec(ctx, npb.EP.Spec(12,
		spmd.Model{Name: "mpi-block", Policy: task.WaitBlock}, cpuset.Set{}))
	type cfgRow struct {
		name string
		cfg  *speedbal.Config
		st   Strategy
	}
	aware := speedbal.DefaultConfig()
	aware.SMTAware = true
	aware.EnableSwaps = true
	aware.BlockNUMA = false
	plain := speedbal.DefaultConfig()
	plain.BlockNUMA = false
	rows := []cfgRow{
		{"PINNED", nil, StratPinned},
		{"LOAD", nil, StratLoad},
		{"SPEED", &plain, StratSpeed},
		{"SPEED smt-aware", &aware, StratSpeed},
	}
	run := NewRunner(ctx)
	config := 8000
	for _, r := range rows {
		el, sp, mig := &stats.Sample{}, &stats.Sample{}, &stats.Sample{}
		run.Repeat(config, RunOpts{
			Topo: topo.Nehalem, Strategy: r.st, Spec: spec, SpeedCfg: r.cfg,
		}, func(_ int, res RunResult) {
			el.AddDuration(res.Elapsed)
			sp.Add(res.Speedup)
			mig.Add(float64(res.AppMigrations))
		})
		config++
		run.Then(func() {
			t.AddRow(r.name, el.Mean(), sp.Mean(), mig.Mean())
			ctx.Logf("ext-smt: %s done", r.name)
		})
	}
	run.Wait()
	t.Note("capacity with 4 dual-occupied physical cores is 8×0.65 + 4×1.0 = 9.2 of 12")
	return []*Table{t}
}

func runExtMeasure(ctx *Context) []*Table {
	t := &Table{
		Title:   "Memory-bound app clumped on 2 of 4 Tigerton sockets (managed set spans all 16 cores)",
		Columns: []string{"measure", "elapsed s", "migrations"},
	}
	spec := ScaleSpec(ctx, spmd.Spec{
		Name: "mem", Threads: 8, Iterations: 1, WorkPerIteration: 4e9,
		Model: spmd.UPC(), RSSBytes: 1 << 20, MemIntensity: 0.9,
		Affinity: cpuset.Range(0, 8),
	})
	run := NewRunner(ctx)
	config := 8100
	for _, meas := range []speedbal.Measure{speedbal.MeasureCPUShare, speedbal.MeasureWorkRate} {
		meas := meas // freeze the cell's input at submission (slotsafety)
		el, mig := &stats.Sample{}, &stats.Sample{}
		// The run needs custom wiring (clumped start, machine-wide
		// managed set), so submit a custom run function per repetition.
		for rep := 0; rep < ctx.Reps; rep++ {
			seed := seedFor(ctx.Seed, config, rep)
			run.SubmitFunc(fmt.Sprintf("ext-measure %s rep %d", meas, rep),
				func() RunResult { return runClumpedMeasure(spec, meas, seed) },
				func(res RunResult) {
					el.Add(res.Elapsed.Seconds())
					mig.Add(float64(res.SpeedbalMigrations))
				})
		}
		config++
		run.Then(func() {
			t.AddRow(meas.String(), el.Mean(), mig.Mean())
			ctx.Logf("ext-measure: %s done", meas)
		})
	}
	run.Wait()
	t.Note("clumped: 4 mem-bound threads per FSB run at f = 0.35; spread across 4 sockets f = 0.6")
	return []*Table{t}
}

func runExtSwap(ctx *Context) []*Table {
	t := &Table{
		Title:   "8 threads on 8 asymmetric cores (4×1.5x + 4×1.0x), capacity 10",
		Columns: []string{"config", "elapsed s", "swaps"},
	}
	speeds := []float64{1.5, 1.5, 1.5, 1.5, 1, 1, 1, 1}
	spec := ScaleSpec(ctx, spmd.Spec{
		Name: "app", Threads: 8, Iterations: 1, WorkPerIteration: 6e9,
		Model: spmd.UPC(),
	})
	swap := speedbal.DefaultConfig()
	swap.EnableSwaps = true
	rows := []struct {
		name string
		st   Strategy
		cfg  *speedbal.Config
	}{
		{"PINNED", StratPinned, nil},
		{"LOAD", StratLoad, nil},
		{"SPEED (pull-only)", StratSpeed, nil},
		{"SPEED + swaps", StratSpeed, &swap},
	}
	run := NewRunner(ctx)
	config := 8200
	for _, r := range rows {
		el, sw := &stats.Sample{}, &stats.Sample{}
		run.Repeat(config, RunOpts{
			Topo:     func() *topo.Topology { return topo.Asymmetric(speeds) },
			Strategy: r.st, Spec: spec, SpeedCfg: r.cfg,
		}, func(_ int, res RunResult) {
			el.AddDuration(res.Elapsed)
			sw.Add(float64(res.Stats.Migrations["speedbal-swap"]) / 2)
		})
		config++
		run.Then(func() {
			t.AddRow(r.name, el.Mean(), sw.Mean())
			ctx.Logf("ext-swap: %s done", r.name)
		})
	}
	run.Wait()
	t.Note(fmt.Sprintf("per-thread work %.3gs; ideal elapsed = 8·W/10", spec.WorkPerIteration/1e9))
	return []*Table{t}
}

// runClumpedMeasure starts the app pinned on its (restricted) affinity,
// then widens the managed set to the whole machine — the measure under
// test decides whether the balancer discovers the free sockets.
func runClumpedMeasure(spec spmd.Spec, meas speedbal.Measure, seed uint64) RunResult {
	m := sim.New(topo.Tigerton(), sim.Config{Seed: seed, NewScheduler: cfs.Factory()})
	app := spmd.Build(m, spec)
	app.OnDone(func(*spmd.App) { m.Stop() })
	app.StartPinned()
	for _, tk := range app.Tasks {
		tk.Affinity = m.Topo.AllCores()
	}
	cfg := speedbal.DefaultConfig()
	cfg.Measure = meas
	sb := speedbal.New(cfg)
	sb.Manage(m, app.Tasks, m.Topo.AllCores())
	m.AddActor(sb)
	m.Run(int64(2000 * time.Second))
	return RunResult{
		Elapsed:            app.Elapsed(),
		Speedup:            app.Speedup(),
		SpeedbalMigrations: sb.Migrations,
		Stats:              m.Stats,
		App:                app,
		Machine:            m,
		Truncated:          !app.Done(),
	}
}
