package sim_test

import (
	"testing"
	"time"

	"repro/internal/cfs"
	"repro/internal/cpuset"
	"repro/internal/sim"
	"repro/internal/spmd"
	"repro/internal/task"
	"repro/internal/topo"
)

// MigrateNow moves even the running task immediately
// (sched_setaffinity semantics, §5.2).
func TestMigrateNowRunningTask(t *testing.T) {
	m := newSMP(t, 2, 1)
	tk := m.NewTask("t", &task.Seq{Actions: []task.Action{task.Compute{Work: 100e6}}})
	m.StartOn(tk, 0)
	m.RunFor(10 * time.Millisecond)
	if tk.State != task.Running || tk.CoreID != 0 {
		t.Fatalf("setup: state %v core %d", tk.State, tk.CoreID)
	}
	m.MigrateNow(tk, 1, "test")
	if tk.CoreID != 1 {
		t.Fatalf("core %d after MigrateNow", tk.CoreID)
	}
	if tk.Migrations != 1 {
		t.Errorf("migrations %d", tk.Migrations)
	}
	m.Run(int64(time.Second))
	if tk.State != task.Done {
		t.Error("task did not finish after MigrateNow")
	}
	// Total work still exactly 100ms (plus warmup charged as exec).
	if tk.WorkDone != 100e6 {
		t.Errorf("work done %v, want 100e6", tk.WorkDone)
	}
}

// Migrate panics on a running task — balancers must use MigrateNow.
func TestMigratePanicsOnRunning(t *testing.T) {
	m := newSMP(t, 2, 1)
	tk := m.NewTask("t", &task.ComputeForever{Chunk: 1e9})
	m.StartOn(tk, 0)
	m.RunFor(time.Millisecond)
	defer func() {
		if recover() == nil {
			t.Error("no panic migrating a running task")
		}
	}()
	m.Migrate(tk, 1, "test")
}

// WorkDone excludes spin-waiting: a thread that finishes early and
// spins at a barrier accrues ExecTime but not WorkDone.
func TestWorkCounterExcludesSpin(t *testing.T) {
	m := newSMP(t, 2, 1)
	app := spmd.Build(m, spmd.Spec{
		Name: "app", Threads: 2, Iterations: 1, WorkPerIteration: 10e6,
		Model: spmd.Model{Policy: task.WaitSpin},
	})
	// Slow down thread 1 by co-locating a hog.
	hog := m.NewTask("hog", &task.ComputeForever{Chunk: 1e9})
	hog.Affinity = cpuset.Of(1)
	m.StartOn(hog, 1)
	app.Tasks[0].Affinity = cpuset.Of(0)
	app.Tasks[1].Affinity = cpuset.Of(1)
	m.StartOn(app.Tasks[0], 0)
	m.StartOn(app.Tasks[1], 1)
	m.Run(int64(time.Second))
	if !app.Done() {
		t.Fatal("app not done")
	}
	t0 := app.Tasks[0]
	if t0.WorkDone != 10e6 {
		t.Errorf("work done %v, want exactly 10e6", t0.WorkDone)
	}
	if t0.ExecTime <= 10*time.Millisecond {
		t.Errorf("exec %v should exceed work time (spin waiting)", t0.ExecTime)
	}
}

// Poll-sleep waiters back off exponentially: the number of sleep/wake
// cycles over a long wait is far below wait/PollInterval.
func TestPollBackoff(t *testing.T) {
	m := newSMP(t, 2, 1)
	app := spmd.Build(m, spmd.Spec{
		Name: "app", Threads: 2, Iterations: 1, WorkPerIteration: 10e6,
		Model: spmd.UPCSleep(),
	})
	// Thread 1 takes 1s; thread 0 waits ~990ms poll-sleeping.
	app.Tasks[1].Affinity = cpuset.Of(1)
	hog := m.NewTask("hog", &task.ComputeForever{Chunk: 99e9})
	hog.Affinity = cpuset.Of(1)
	m.StartOn(app.Tasks[0], 0)
	m.StartOn(hog, 1)
	m.StartOn(app.Tasks[1], 1)
	m.Run(int64(10 * time.Second))
	wakeups := m.Stats.Wakeups
	// Without backoff: ~990ms / 50µs ≈ 20k wakeups. With backoff to
	// 2 ms: ≈ 500 + a handful.
	if wakeups > 3000 {
		t.Errorf("wakeups %d: poll backoff not effective", wakeups)
	}
	// The waiter's exec time is small (checks only), unlike spinning.
	if app.Tasks[0].ExecTime > 50*time.Millisecond {
		t.Errorf("poll-sleeper exec %v, want ≪ wait time", app.Tasks[0].ExecTime)
	}
}

// Bandwidth contention: four fully memory-bound tasks on one Tigerton
// socket share the FSB capacity (1.0): aggregate progress is capacity-
// bound, not core-bound.
func TestBandwidthContention(t *testing.T) {
	m := sim.New(topo.Tigerton(), sim.Config{Seed: 1, NewScheduler: cfs.Factory()})
	var tasks []*task.Task
	for i := 0; i < 4; i++ {
		tk := m.NewTask("mem", &task.ComputeForever{Chunk: 1e9})
		tk.MemIntensity = 1.0
		tk.Affinity = cpuset.Of(i)
		m.StartOn(tk, i) // one per core of socket 0
		tasks = append(tasks, tk)
	}
	m.RunFor(time.Second)
	m.Sync()
	var total float64
	for _, tk := range tasks {
		total += tk.WorkDone
	}
	// Fully memory bound: aggregate = capacity (1.0 core-equivalents)
	// per second = 1e9 work units.
	if total < 0.95e9 || total > 1.05e9 {
		t.Errorf("aggregate work %v, want ≈ 1e9 (FSB capacity)", total)
	}
}

// Partially memory-bound tasks retain their compute fraction under
// contention: m=0.5 on a saturated socket gives 1-0.5+0.5·C/D each.
func TestBandwidthPartialIntensity(t *testing.T) {
	m := sim.New(topo.Tigerton(), sim.Config{Seed: 1, NewScheduler: cfs.Factory()})
	var tasks []*task.Task
	for i := 0; i < 4; i++ {
		tk := m.NewTask("mem", &task.ComputeForever{Chunk: 1e9})
		tk.MemIntensity = 0.5
		tk.Affinity = cpuset.Of(i)
		m.StartOn(tk, i)
		tasks = append(tasks, tk)
	}
	m.RunFor(time.Second)
	m.Sync()
	want := 1 - 0.5 + 0.5*(1.0/2.0) // D = 4×0.5 = 2
	for _, tk := range tasks {
		got := tk.WorkDone / 1e9
		if got < want-0.02 || got > want+0.02 {
			t.Errorf("per-task rate %.3f, want %.3f", got, want)
		}
	}
}

// Demand changes re-arm neighbours: when a memory-bound co-runner
// leaves, the survivor speeds up immediately (not at its stale event).
func TestBandwidthRearmOnDeparture(t *testing.T) {
	m := sim.New(topo.Tigerton(), sim.Config{Seed: 1, NewScheduler: cfs.Factory()})
	// Two fully-bound tasks on socket 0: each runs at 0.5 (D=2, C=1).
	short := m.NewTask("short", &task.Seq{Actions: []task.Action{task.Compute{Work: 250e6}}})
	short.MemIntensity = 1.0
	short.Affinity = cpuset.Of(0)
	long := m.NewTask("long", &task.Seq{Actions: []task.Action{task.Compute{Work: 750e6}}})
	long.MemIntensity = 1.0
	long.Affinity = cpuset.Of(1)
	m.StartOn(short, 0)
	m.StartOn(long, 1)
	m.Run(int64(time.Minute))
	// short: 250e6 at 0.5 → done at 500ms. long: 250e6 at 0.5 (500ms),
	// then alone at 1.0: 500e6 more → done at 1000ms.
	if got, want := short.FinishedAt, int64(500e6); got != want {
		t.Errorf("short finished at %d, want %d", got, want)
	}
	if got, want := long.FinishedAt, int64(1000e6); got != want {
		t.Errorf("long finished at %d, want %d (re-arm on departure)", got, want)
	}
}

// Core idle time accounting.
func TestIdleTime(t *testing.T) {
	m := newSMP(t, 1, 1)
	tk := m.NewTask("t", &task.Seq{Actions: []task.Action{
		task.Compute{Work: 10e6},
		task.Sleep{D: 30 * time.Millisecond},
		task.Compute{Work: 10e6},
	}})
	m.Start(tk)
	m.Run(int64(50 * time.Millisecond))
	if got := m.Cores[0].IdleTime(); got != 30*time.Millisecond {
		t.Errorf("idle time %v, want 30ms", got)
	}
	if got := m.Cores[0].BusyTime; got != 20*time.Millisecond {
		t.Errorf("busy time %v, want 20ms", got)
	}
}

// Context-switch counting: two alternating tasks switch at slice ends.
func TestContextSwitchCount(t *testing.T) {
	m := newSMP(t, 1, 1)
	a := m.NewTask("a", &task.ComputeForever{Chunk: 1e9})
	b := m.NewTask("b", &task.ComputeForever{Chunk: 1e9})
	m.Start(a)
	m.Start(b)
	m.RunFor(time.Second)
	// CFS latency 20 ms → each runs 10 ms slices → ~100 switches/s.
	cs := m.Stats.ContextSwitches
	if cs < 50 || cs > 250 {
		t.Errorf("context switches %d over 1s, want ≈ 100", cs)
	}
}

// Affinity violations at placement panic loudly.
func TestStartOnOutsideAffinityPanics(t *testing.T) {
	m := newSMP(t, 2, 1)
	tk := m.NewTask("t", &task.ComputeForever{Chunk: 1})
	tk.Affinity = cpuset.Of(0)
	defer func() {
		if recover() == nil {
			t.Error("no panic for placement outside affinity")
		}
	}()
	m.StartOn(tk, 1)
}

// Events counter grows and Stop halts promptly.
func TestStopHalts(t *testing.T) {
	m := newSMP(t, 1, 1)
	tk := m.NewTask("t", &task.ComputeForever{Chunk: 1e6})
	m.Start(tk)
	m.After(5*time.Millisecond, func(int64) { m.Stop() })
	end := m.Run(int64(time.Hour))
	if end > int64(6*time.Millisecond) {
		t.Errorf("machine ran to %v after Stop at 5ms", time.Duration(end))
	}
	if m.Stats.Events == 0 {
		t.Error("no events counted")
	}
}

// The yield-group coarsening does not change CPU accounting: two
// finished yield-waiters sharing a core split it ~evenly while waiting.
func TestYieldGroupAccounting(t *testing.T) {
	m := newSMP(t, 1, 1)
	never := &neverRelease{}
	mk := func(name string) *task.Task {
		return m.NewTask(name, &task.Seq{Actions: []task.Action{
			task.Compute{Work: 1e6},
			task.WaitFor{C: never, Policy: task.WaitYield},
		}})
	}
	a, b := mk("a"), mk("b")
	m.Start(a)
	m.Start(b)
	m.RunFor(time.Second)
	m.Sync()
	total := a.ExecTime + b.ExecTime
	if total < 990*time.Millisecond {
		t.Errorf("waiters burned %v of 1s, want ≈ all of it", total)
	}
	ratio := float64(a.ExecTime) / float64(b.ExecTime)
	if ratio < 0.8 || ratio > 1.25 {
		t.Errorf("yield ping-pong unfair: %v vs %v", a.ExecTime, b.ExecTime)
	}
}

type neverRelease struct{}

func (neverRelease) Arrive(t *task.Task, w task.Waker) bool { return false }

// RNG splitting: adding an unrelated actor must not change an existing
// app's result (stream independence end-to-end).
func TestActorStreamIndependence(t *testing.T) {
	run := func(extraActor bool) int64 {
		m := newSMP(t, 2, 42)
		app := spmd.Build(m, spmd.Spec{
			Name: "app", Threads: 3, Iterations: 20, WorkPerIteration: 2e6,
			WorkJitter: 0.2, Model: spmd.UPC(),
		})
		if extraActor {
			// An actor that splits its own RNG but does nothing.
			m.AddActor(actorFunc(func(m *sim.Machine) { m.RNG() }))
		}
		app.Start()
		m.Run(int64(time.Minute))
		return int64(app.Elapsed())
	}
	// Note: the extra actor splits the machine stream before the app's
	// own splits happen at Build time... Build happens after AddActor
	// here, so streams differ — assert only determinism of each shape.
	a1, a2 := run(false), run(false)
	b1, b2 := run(true), run(true)
	if a1 != a2 || b1 != b2 {
		t.Error("same configuration not deterministic")
	}
}

type actorFunc func(m *sim.Machine)

func (f actorFunc) Start(m *sim.Machine) { f(m) }
