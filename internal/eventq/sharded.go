package eventq

import "fmt"

// Sharded is a partitioned event queue: one sub-queue per machine shard
// plus a control sub-queue for global (machine-wide) events, all sharing
// a single scheduling-sequence counter.
//
// Determinism contract: in sequential operation every push — whichever
// sub-queue it lands in — draws the next value of the shared sequence
// counter, and Pop returns the globally earliest event by (time, seq).
// Because (time, seq) is exactly the order a single Queue would produce,
// a machine draining a Sharded queue one event at a time fires events in
// the byte-identical order of the unsharded simulator, for any shard
// count. The partition only changes which heap an event sits in — never
// when it fires.
//
// Parallel windows: between two global events, shard sub-queues hold
// only shard-local work, so shard workers may drain their own sub-queues
// concurrently (Machine arranges the preconditions). BeginWindow hands
// each sub-queue an independent sequence stream seeded from the shared
// counter; EndWindow folds the streams back. Sequence values may then
// collide across shards, so cross-shard ordering falls back to the shard
// index — a deterministic tie-break that is only ever consulted for
// events scheduled by concurrent shard workers, whose cross-shard order
// is unobservable by construction (isolated shards, tracing off).
type Sharded struct {
	qs  []Queue
	seq uint64
	// window is true while shard workers own their sub-queues. It is
	// written only with no workers running (BeginWindow/EndWindow), so
	// reads from workers are race-free.
	window bool
}

// NewSharded returns a queue partitioned into shards sub-queues plus the
// control sub-queue. shards must be at least 1.
func NewSharded(shards int) *Sharded {
	if shards < 1 {
		panic(fmt.Sprintf("eventq: shard count %d < 1", shards))
	}
	return &Sharded{qs: make([]Queue, shards+1)}
}

// Shards returns the number of shard sub-queues (excluding control).
func (s *Sharded) Shards() int { return len(s.qs) - 1 }

// Global returns the index of the control sub-queue, used for events
// that are not bound to one shard. Global events are the synchronization
// horizons of parallel windows.
func (s *Sharded) Global() int { return len(s.qs) - 1 }

// Len returns the number of pending events across all sub-queues.
func (s *Sharded) Len() int {
	n := 0
	for i := range s.qs {
		n += s.qs[i].Len()
	}
	return n
}

// ShardLen returns the number of pending events in one sub-queue.
func (s *Sharded) ShardLen(shard int) int { return s.qs[shard].Len() }

// ShardPeek returns the earliest event of one sub-queue, or nil.
func (s *Sharded) ShardPeek(shard int) *Event { return s.qs[shard].Peek() }

// Push schedules fn at time at on the given sub-queue and returns the
// caller-owned handle.
func (s *Sharded) Push(shard int, at Time, fn func(now Time)) *Event {
	q := s.checkout(shard)
	e := q.Push(at, fn)
	e.shard = int32(shard)
	s.checkin(shard)
	return e
}

// PushPooled schedules a fire-and-forget event on the given sub-queue,
// drawing the Event from that sub-queue's free list. As with
// Queue.PushPooled, the handle must not be retained after firing.
func (s *Sharded) PushPooled(shard int, at Time, fn func(now Time)) *Event {
	q := s.checkout(shard)
	e := q.PushPooled(at, fn)
	e.shard = int32(shard)
	s.checkin(shard)
	return e
}

// Schedule inserts or moves a caller-owned event to time at on the given
// sub-queue. An event still pending on a different sub-queue is removed
// there first, so one reusable timer may follow its task across shards.
func (s *Sharded) Schedule(e *Event, shard int, at Time) {
	if e.index >= 0 && int(e.shard) != shard {
		s.qs[e.shard].Remove(e)
	}
	q := s.checkout(shard)
	q.Schedule(e, at)
	e.shard = int32(shard)
	s.checkin(shard)
}

// Remove cancels a pending event wherever it sits. It reports whether
// the event was removed.
func (s *Sharded) Remove(e *Event) bool {
	if e == nil {
		return false
	}
	return s.qs[e.shard].Remove(e)
}

// Release returns a fired pooled event to its sub-queue's free list.
func (s *Sharded) Release(e *Event) { s.qs[e.shard].Release(e) }

// Peek returns the globally earliest event by (time, seq, shard), or nil.
func (s *Sharded) Peek() *Event {
	_, e := s.min()
	return e
}

// Pop removes and returns the globally earliest event, or nil.
func (s *Sharded) Pop() *Event {
	i, e := s.min()
	if e == nil {
		return nil
	}
	return s.qs[i].Pop()
}

// PeekGlobal returns the earliest control-queue event, or nil. Its time
// is the conservative-lookahead horizon: no cross-shard interaction can
// occur strictly before it.
func (s *Sharded) PeekGlobal() *Event { return s.qs[s.Global()].Peek() }

// min locates the sub-queue holding the globally earliest event.
func (s *Sharded) min() (int, *Event) {
	best, bi := (*Event)(nil), -1
	for i := range s.qs {
		h := s.qs[i].Peek()
		if h == nil {
			continue
		}
		if best == nil || h.At < best.At || (h.At == best.At && (h.seq < best.seq || (h.seq == best.seq && i < bi))) {
			best, bi = h, i
		}
	}
	return bi, best
}

// checkout hands the shared sequence counter to a sub-queue before a
// scheduling operation; checkin takes the advanced value back. During a
// parallel window the sub-queues keep their independent streams instead,
// and global pushes are forbidden — a global event appearing before the
// horizon would invalidate the lookahead that justified the window.
func (s *Sharded) checkout(shard int) *Queue {
	q := &s.qs[shard]
	if s.window {
		if shard == s.Global() {
			panic("eventq: global event scheduled inside a parallel shard window")
		}
		return q
	}
	q.seq = s.seq
	return q
}

func (s *Sharded) checkin(shard int) {
	if !s.window {
		s.seq = s.qs[shard].seq
	}
}

// BeginWindow switches the queue into parallel-window mode: each shard
// sub-queue continues from the current shared sequence value on its own
// independent stream, so concurrent workers never contend on the shared
// counter. The caller must guarantee no worker is running when this is
// called.
func (s *Sharded) BeginWindow() {
	for i := 0; i < s.Global(); i++ {
		s.qs[i].seq = s.seq
	}
	s.window = true
}

// EndWindow returns to sequential mode, folding the per-shard sequence
// streams back into the shared counter (their maximum, so sequence
// values keep strictly increasing). The caller must guarantee all
// workers have stopped.
func (s *Sharded) EndWindow() {
	s.window = false
	for i := 0; i < s.Global(); i++ {
		if s.qs[i].seq > s.seq {
			s.seq = s.qs[i].seq
		}
	}
}

// ShardPopBefore removes and returns the earliest event of one sub-queue
// if it fires strictly before horizon, else nil. It is the drain
// primitive of parallel shard workers: each worker owns exactly one
// sub-queue for the duration of a window.
func (s *Sharded) ShardPopBefore(shard int, horizon Time) *Event {
	q := &s.qs[shard]
	h := q.Peek()
	if h == nil || h.At >= horizon {
		return nil
	}
	return q.Pop()
}

// ShardRelease returns a fired pooled event to its own sub-queue's free
// list; safe for concurrent use by distinct shard workers because an
// event popped by worker i always belongs to sub-queue i.
func (s *Sharded) ShardRelease(e *Event) { s.qs[e.shard].Release(e) }
