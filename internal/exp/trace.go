package exp

import (
	"fmt"
	"io"

	"repro/internal/metrics"
	"repro/internal/trace"
)

// DefaultTraceCap is the per-cell ring capacity used when a TraceSink
// is built without an explicit one: enough for the full event stream of
// a paper-scale run while bounding memory on pathological ones.
const DefaultTraceCap = 1 << 16

// TraceSink collects the traces of an experiment's cells into one
// Chrome trace-event stream. Each cell records into its own ring
// (created at submission time), and the Runner flushes rings into the
// writer strictly in submission order — which is what makes the output
// bytes independent of the -parallel level. All sink methods are called
// from a single goroutine (submission and delivery both happen on the
// goroutine that calls Runner.Wait).
type TraceSink struct {
	cw      *trace.ChromeWriter
	perCell int
	// Cells and Dropped summarise the flushed stream for reporting.
	Cells   int
	Dropped uint64
}

// NewTraceSink starts a trace stream on w. perCellCap bounds each
// cell's ring; values ≤ 0 pick DefaultTraceCap.
func NewTraceSink(w io.Writer, perCellCap int) *TraceSink {
	if perCellCap <= 0 {
		perCellCap = DefaultTraceCap
	}
	return &TraceSink{cw: trace.NewChromeWriter(w), perCell: perCellCap}
}

// newRing allocates the per-cell event buffer.
func (s *TraceSink) newRing() *trace.Ring { return trace.NewRing(s.perCell) }

// flush exports one cell's events under its label. Rings must be
// flushed in submission order.
func (s *TraceSink) flush(label string, r *trace.Ring) {
	s.Cells++
	s.Dropped += r.Dropped()
	s.cw.BeginCell(label, r.Dropped())
	for _, e := range r.Events() {
		s.cw.WriteEvent(e)
	}
}

// Close terminates the JSON document. The stream is valid (an empty
// traceEvents array) even when no cell was ever flushed.
func (s *TraceSink) Close() error { return s.cw.Close() }

// MetricsTables renders an aggregated metrics snapshot as exp tables
// (one per metric class that has entries), ready for text or CSV
// output alongside the experiment's own tables.
func MetricsTables(s metrics.Snapshot) []*Table {
	var out []*Table
	if len(s.Counters) > 0 {
		t := &Table{Title: "metrics: counters", Columns: []string{"name", "total"}}
		for _, c := range s.Counters {
			t.AddRow(c.Name, fmt.Sprintf("%d", c.Value))
		}
		out = append(out, t)
	}
	if len(s.Gauges) > 0 {
		t := &Table{Title: "metrics: gauges (mean over runs)", Columns: []string{"name", "mean"}}
		for _, g := range s.Gauges {
			t.AddRow(g.Name, fmt.Sprintf("%.4f", g.Value))
		}
		out = append(out, t)
	}
	if len(s.Hists) > 0 {
		t := &Table{
			Title:   "metrics: histograms",
			Columns: []string{"name", "count", "mean", "min", "max"},
		}
		for _, h := range s.Hists {
			t.AddRow(h.Name, fmt.Sprintf("%d", h.Count),
				fmt.Sprintf("%.4g", h.Mean()), fmt.Sprintf("%.4g", h.Min), fmt.Sprintf("%.4g", h.Max))
		}
		out = append(out, t)
	}
	return out
}
