package sim_test

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/cpuset"
	"repro/internal/sim"
	"repro/internal/spmd"
	"repro/internal/task"
	"repro/internal/topo"
)

// These tests pin the open-system contract: NewTask + Start are
// machine-global events, so a task admitted mid-run — at a parallel
// window's sync horizon, during hotplug churn, or into a fully drained
// machine — must produce bit-identical results at every shard count and
// window setting.

// admitPinned creates a shard-contained task (single-core affinity, so
// it never blocks parallel windows) and starts it on that core.
func admitPinned(m *sim.Machine, name string, p task.Program, core int) *task.Task {
	tk := m.NewTask(name, p)
	tk.Affinity = cpuset.Of(core)
	m.StartOn(tk, core)
	return tk
}

// shortJob is a finite program: compute, doze, compute — enough to
// exercise wake timers on the admitted task without running forever.
func shortJob(work time.Duration) task.Program {
	return &task.Seq{Actions: []task.Action{
		task.Compute{Work: float64(work)},
		task.Sleep{D: 2 * time.Millisecond},
		task.Compute{Work: float64(work)},
	}}
}

// TestAdmissionAtWindowHorizonSharded: tasks arrive via control-queue
// events while socket-contained apps keep parallel windows open. The
// arrival timestamps force sync horizons; the admitted tasks are
// themselves shard-contained so windows reopen afterwards. Results must
// match the single-queue engine bit for bit — and the parallel
// configuration must actually have opened windows, or the test proves
// nothing.
func TestAdmissionAtWindowHorizonSharded(t *testing.T) {
	run := func(shards int, par bool) (string, int) {
		m := sim.New(topo.Fabric(4, 4), shardCfg(21, shards, par))
		socketApps(m, spmd.UPCSleep(), 8)
		for i, d := range []time.Duration{
			5 * time.Millisecond, 10 * time.Millisecond, 15 * time.Millisecond,
		} {
			i, d := i, d
			m.At(int64(d), func(now int64) {
				admitPinned(m, fmt.Sprintf("late%d", i),
					shortJob(300*time.Microsecond), (i*4+1)%16)
			})
		}
		m.Run(int64(40 * time.Millisecond))
		return fingerprint(m), m.Windows()
	}
	want, _ := run(1, false)
	for _, c := range []struct {
		shards int
		par    bool
	}{{2, false}, {4, false}, {2, true}, {4, true}} {
		got, windows := run(c.shards, c.par)
		if got != want {
			t.Errorf("shards=%d parallel=%v diverged:\n%s",
				c.shards, c.par, diffLines(want, got))
		}
		if c.par && windows == 0 {
			t.Errorf("shards=%d parallel=%v: no window ever opened; admission-at-horizon path not exercised", c.shards, c.par)
		}
	}
}

// TestAdmissionDuringHotplugChurnSharded: a task is admitted at the
// same timestamp a core on its target socket goes offline, and another
// lands on a core the moment it comes back online. Both must complete,
// identically at any shard count.
func TestAdmissionDuringHotplugChurnSharded(t *testing.T) {
	run := func(shards int) string {
		m := sim.New(topo.Tigerton(), shardCfg(25, shards, false))
		for i := 0; i < 4; i++ {
			tk := m.NewTask(fmt.Sprintf("filler%d", i), hog(500*time.Microsecond))
			m.StartOn(tk, i*4)
		}
		var during, onto *task.Task
		m.After(2*time.Millisecond, func(now int64) {
			m.SetCoreOnline(5, false)
		})
		// Same timestamp as the unplug, registered after it: the
		// newcomer is admitted onto the vanished core's socket while the
		// scheduler domains are mid-churn.
		m.After(2*time.Millisecond, func(now int64) {
			during = m.NewTask("during", shortJob(200*time.Microsecond))
			m.StartOn(during, 6)
		})
		m.After(6*time.Millisecond, func(now int64) {
			m.SetCoreOnline(5, true)
		})
		// And one onto the core that just came back, in the same event
		// timestamp as the replug.
		m.After(6*time.Millisecond, func(now int64) {
			onto = m.NewTask("onto", shortJob(200*time.Microsecond))
			m.StartOn(onto, 5)
		})
		m.Run(int64(25 * time.Millisecond))
		if during.State != task.Done {
			t.Fatalf("task admitted during churn stuck in %v", during.State)
		}
		if onto.State != task.Done {
			t.Fatalf("task admitted onto replugged core stuck in %v", onto.State)
		}
		return fingerprint(m)
	}
	want := run(1)
	for _, shards := range []int{2, 4} {
		if got := run(shards); got != want {
			t.Errorf("shards=%d diverged:\n%s", shards, diffLines(want, got))
		}
	}
}

// TestAdmissionAfterDrainSharded: the machine runs completely dry —
// every task done, every core idle — and then a control-queue event
// admits a fresh wave. The restart out of the idle state must be
// bit-identical at every shard count and window setting.
func TestAdmissionAfterDrainSharded(t *testing.T) {
	run := func(shards int, par bool) string {
		m := sim.New(topo.Fabric(4, 4), shardCfg(29, shards, par))
		first := admitPinned(m, "first", shortJob(300*time.Microsecond), 0)
		// The first job is done well before 10 ms; the wave arrives into
		// a drained machine whose only pending event is this one.
		var wave []*task.Task
		m.At(int64(10*time.Millisecond), func(now int64) {
			if first.State != task.Done {
				t.Errorf("machine not drained before admission: first is %v", first.State)
			}
			if live := m.LiveTasks(); live != 0 {
				t.Errorf("machine not drained before admission: %d live tasks", live)
			}
			for s := 0; s < 4; s++ {
				wave = append(wave, admitPinned(m, fmt.Sprintf("wave%d", s),
					shortJob(400*time.Microsecond), 4*s))
			}
		})
		m.Run(int64(25 * time.Millisecond))
		for _, tk := range wave {
			if tk.State != task.Done {
				t.Fatalf("post-drain task %q stuck in %v", tk.Name, tk.State)
			}
		}
		return fingerprint(m)
	}
	want := run(1, false)
	for _, c := range []struct {
		shards int
		par    bool
	}{{2, false}, {4, false}, {4, true}} {
		if got := run(c.shards, c.par); got != want {
			t.Errorf("shards=%d parallel=%v diverged:\n%s",
				c.shards, c.par, diffLines(want, got))
		}
	}
}
