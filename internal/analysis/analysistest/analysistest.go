// Package analysistest runs an analyzer over testdata packages and
// checks its diagnostics against // want comments, mirroring
// golang.org/x/tools/go/analysis/analysistest with a stdlib-only
// implementation.
//
// A test package lives in testdata/src/<name>/ beside the analyzer's
// test. Each expected diagnostic is declared on the line it fires:
//
//	start := time.Now() // want "reads the wall clock"
//
// The quoted string is a regular expression matched against the
// diagnostic message; several strings on one line expect several
// diagnostics. An expectation may pin the suppression category too:
//
//	q.Release(e) // want eventown:"released on another path"
//
// matches only a diagnostic whose category is eventown, so corpora for
// analyzers that report under several categories (windowsafe emits both
// machineglobal and windowsafe) assert the category routing, not just
// the message. Lines without a want comment must stay silent, so the
// same corpus pins both positives and false-positive guards. Findings
// suppressed by //lint:allow-* directives never reach matching —
// a directive line with no want comment asserts the escape hatch works.
package analysistest

import (
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"

	"repro/internal/analysis"
)

// wantRE extracts the expectations from a want comment: an optional
// category qualifier followed by a quoted message regexp.
var wantRE = regexp.MustCompile(`(?:([a-zA-Z][a-zA-Z0-9_-]*):)?("(?:[^"\\]|\\.)*")`)

// Run applies the analyzer to each named package under dir (usually
// "testdata/src") and reports mismatches through t.
func Run(t *testing.T, dir string, a *analysis.Analyzer, pkgs ...string) {
	t.Helper()
	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "source", nil)
	for _, name := range pkgs {
		runPackage(t, fset, imp, filepath.Join(dir, name), a)
	}
}

func runPackage(t *testing.T, fset *token.FileSet, imp types.Importer, dir string, a *analysis.Analyzer) {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("%s: %v", dir, err)
	}
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			t.Fatalf("parse: %v", err)
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		t.Fatalf("%s: no Go files", dir)
	}
	info := analysis.NewInfo()
	conf := types.Config{Importer: imp}
	pkg, err := conf.Check(files[0].Name.Name, fset, files, info)
	if err != nil {
		t.Fatalf("typecheck %s: %v", dir, err)
	}
	diags, err := analysis.Run([]*analysis.Analyzer{a}, fset, files, pkg, info)
	if err != nil {
		t.Fatalf("run %s on %s: %v", a.Name, dir, err)
	}
	match(t, fset, files, diags)
}

// wantPayload extracts the expectation list from a comment: either the
// whole comment is a want comment (`// want "re"`), or one is appended
// after another trailing comment (`//lint:allow-rand // want "re"`).
func wantPayload(comment string) (string, bool) {
	trimmed := strings.TrimSpace(strings.TrimPrefix(comment, "//"))
	if strings.HasPrefix(trimmed, "want ") {
		return trimmed, true
	}
	if i := strings.LastIndex(comment, "// want "); i >= 0 {
		return comment[i+3:], true
	}
	return "", false
}

// expectation is one want regexp, consumed when a diagnostic matches it.
// A non-empty cat additionally requires the diagnostic's category.
type expectation struct {
	re   *regexp.Regexp
	cat  string
	text string
	used bool
}

// match compares diagnostics to want comments line by line.
func match(t *testing.T, fset *token.FileSet, files []*ast.File, diags []analysis.Diagnostic) {
	t.Helper()
	type key struct {
		file string
		line int
	}
	wants := map[key][]*expectation{}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := wantPayload(c.Text)
				if !ok {
					continue
				}
				pos := fset.Position(c.Pos())
				k := key{pos.Filename, pos.Line}
				for _, m := range wantRE.FindAllStringSubmatch(text, -1) {
					cat, q := m[1], m[2]
					unq, err := strconv.Unquote(q)
					if err != nil {
						t.Fatalf("%s: bad want string %s: %v", pos, q, err)
					}
					re, err := regexp.Compile(unq)
					if err != nil {
						t.Fatalf("%s: bad want regexp %q: %v", pos, unq, err)
					}
					label := unq
					if cat != "" {
						label = cat + ":" + unq
					}
					wants[k] = append(wants[k], &expectation{re: re, cat: cat, text: label})
				}
			}
		}
	}
	for _, d := range diags {
		pos := fset.Position(d.Pos)
		k := key{pos.Filename, pos.Line}
		matched := false
		for _, w := range wants[k] {
			if !w.used && w.re.MatchString(d.Message) && (w.cat == "" || w.cat == d.Category) {
				w.used = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s: unexpected diagnostic: %s [%s]: %s", pos, d.Analyzer, d.Category, d.Message)
		}
	}
	keys := make([]key, 0, len(wants))
	for k := range wants {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].file != keys[j].file {
			return keys[i].file < keys[j].file
		}
		return keys[i].line < keys[j].line
	})
	for _, k := range keys {
		for _, w := range wants[k] {
			if !w.used {
				t.Errorf("%s:%d: expected diagnostic matching %q, got none", k.file, k.line, w.text)
			}
		}
	}
}
