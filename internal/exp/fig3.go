package exp

import (
	"fmt"

	"repro/internal/cpuset"
	"repro/internal/npb"
	"repro/internal/spmd"
	"repro/internal/stats"
	"repro/internal/topo"
)

func init() {
	Register(&Experiment{
		ID:       "fig3t",
		Title:    "UPC EP class C speedup on Tigerton (16 threads, 1–16 cores)",
		PaperRef: "Figure 3, left",
		Expect: "One-per-core scales ~linearly; SPEED near-optimal at all core " +
			"counts with tiny variation; PINNED optimal only when 16 mod cores = 0; " +
			"LOAD-YIELD erratic (up to 3x run-time spread) and below SPEED; " +
			"LOAD-SLEEP clearly better than LOAD-YIELD; DWRR ≈ SPEED up to 8 cores " +
			"but ≈12 at 16 cores; FreeBSD ULE ≈ PINNED.",
		Run: func(ctx *Context) []*Table { return runFig3(ctx, topo.Tigerton) },
	})
	Register(&Experiment{
		ID:       "fig3b",
		Title:    "UPC EP class C speedup on Barcelona (16 threads, 1–16 cores)",
		PaperRef: "Figure 3, right",
		Expect: "Same ordering as Tigerton; speed balancing blocks NUMA migrations " +
			"and stays near-optimal; LOAD remains erratic.",
		Run: func(ctx *Context) []*Table { return runFig3(ctx, topo.Barcelona) },
	})
}

// fig3Strategies are the series of Figure 3.
type fig3Series struct {
	name  string
	strat Strategy
	model spmd.Model
	// onePerCore compiles the benchmark with one thread per core.
	onePerCore bool
}

func runFig3(ctx *Context, machine func() *topo.Topology) []*Table {
	series := []fig3Series{
		{name: "One-per-core", strat: StratPinned, model: spmd.UPC(), onePerCore: true},
		{name: "SPEED", strat: StratSpeed, model: spmd.UPC()},
		{name: "DWRR", strat: StratDWRR, model: spmd.UPC()},
		{name: "FreeBSD", strat: StratULE, model: spmd.UPC()},
		{name: "LOAD-SLEEP", strat: StratLoad, model: spmd.UPCSleep()},
		{name: "LOAD-YIELD", strat: StratLoad, model: spmd.UPC()},
		{name: "PINNED", strat: StratPinned, model: spmd.UPC()},
	}
	coreCounts := []int{1, 2, 3, 4, 5, 6, 7, 8, 10, 12, 14, 16}

	cols := []string{"cores"}
	for _, s := range series {
		cols = append(cols, s.name)
	}
	tb := &Table{Title: "EP class C speedup (avg over reps)", Columns: cols}
	vt := &Table{Title: "EP class C run-time variation % (max/min - 1)", Columns: cols}

	bench := npb.EP
	run := NewRunner(ctx)
	config := 0
	for _, n := range coreCounts {
		sps := make([]*stats.Sample, len(series))
		rts := make([]*stats.Sample, len(series))
		for i, s := range series {
			threads := 16
			if s.onePerCore {
				threads = n
			}
			spec := ScaleSpec(ctx, bench.Spec(threads, s.model, cpuset.All(n)))
			sp, rt := &stats.Sample{}, &stats.Sample{}
			sps[i], rts[i] = sp, rt
			run.Repeat(config, RunOpts{
				Topo: machine, Strategy: s.strat, Spec: spec,
			}, func(_ int, r RunResult) {
				// Normalise one-per-core speedup to the 16-thread
				// serial work so all series share a baseline? No: the
				// paper plots each binary's own speedup; EP's work per
				// thread is fixed, so speedup = threads·f. For the
				// one-per-core series speedup equals core count when
				// scaling is perfect.
				sp.Add(r.Speedup)
				rt.AddDuration(r.Elapsed)
			})
			config++
		}
		run.Then(func() {
			row := []any{fmt.Sprintf("%d", n)}
			vrow := []any{fmt.Sprintf("%d", n)}
			for i := range series {
				row = append(row, sps[i].Mean())
				vrow = append(vrow, rts[i].VariationPct())
			}
			tb.AddRow(row...)
			vt.AddRow(vrow...)
			ctx.Logf("fig3(%s): %d cores done", machine().Name, n)
		})
	}
	run.Wait()
	tb.Note("machine: %s; EP = one compute phase + final barrier; 16 threads except One-per-core", machine().Name)
	return []*Table{tb, vt}
}
