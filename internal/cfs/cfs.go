// Package cfs models the Linux Completely Fair Scheduler as the per-core
// scheduling policy (the first level of the two-level approach described
// in the paper's §2: per-core queues with fair scheduling in time).
//
// The model keeps the CFS mechanisms that matter to load balancing:
// virtual runtime ordered by nice weight, bounded timeslices, sleeper
// credit on wakeup, wakeup preemption, and sched_yield placing the
// yielder behind all other runnable tasks. It dispenses with the
// red-black tree (queues here are short; an ordered slice is simpler and
// deterministic).
//
// CFS is trivially shard-local: every Queue touches only its own core's
// tasks and never reads another queue, so under the sharded simulator
// (sim.Config.Shards) per-core CFS scheduling always runs inside
// parallel windows with no extra configuration. Cross-core movement is
// the balancers' business (packages linuxlb, ule, dwrr, speedbal).
package cfs

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/sim"
	"repro/internal/task"
	"repro/internal/trace"
)

// Params are the tunables of the scheduler, mirroring
// /proc/sys/kernel/sched_* in the 2.6.28 kernel.
type Params struct {
	// Latency is the targeted scheduling period: every runnable task
	// should run once per Latency (sched_latency_ns, default 20 ms).
	Latency time.Duration
	// MinGranularity is the floor on a task's slice
	// (sched_min_granularity_ns, default 4 ms).
	MinGranularity time.Duration
	// WakeupGranularity is the vruntime lead a waking task needs to
	// preempt the running one (sched_wakeup_granularity_ns, default
	// 5 ms in 2.6.28; we keep it small enough for interactive wakeups).
	WakeupGranularity time.Duration
	// SleeperCredit bounds how much vruntime credit a waking sleeper
	// receives (GENTLE_FAIR_SLEEPERS halves sched_latency).
	SleeperCredit time.Duration
}

// DefaultParams returns the 2.6.28-era defaults.
func DefaultParams() Params {
	return Params{
		Latency:           20 * time.Millisecond,
		MinGranularity:    4 * time.Millisecond,
		WakeupGranularity: 5 * time.Millisecond,
		SleeperCredit:     10 * time.Millisecond,
	}
}

const nice0Weight = 1024

// Queue is one core's CFS run queue. It implements sim.Scheduler.
type Queue struct {
	p Params
	// queue holds runnable tasks not currently executing, ordered by
	// (vruntime, ID).
	queue []*task.Task
	cur   *task.Task
	// minVruntime is the monotonic per-queue clock new arrivals are
	// normalised against.
	minVruntime int64
	totalWeight int64
	// m and coreID identify the queue's machine and core for tracing;
	// m is nil for queues used standalone in tests.
	m      *sim.Machine
	coreID int
}

// New returns a CFS queue with the given parameters.
func New(p Params) *Queue { return &Queue{p: p} }

// Factory returns a sim scheduler factory producing CFS queues with
// default parameters — the standard substrate for experiments.
func Factory() func(coreID int) sim.Scheduler {
	return FactoryWith(DefaultParams())
}

// FactoryWith returns a factory with explicit parameters.
func FactoryWith(p Params) func(coreID int) sim.Scheduler {
	return func(int) sim.Scheduler { return New(p) }
}

// Attach implements sim.Scheduler.
func (q *Queue) Attach(m *sim.Machine, coreID int) {
	q.m = m
	q.coreID = coreID
}

// Enqueue implements sim.Scheduler: inserts a runnable task, granting
// sleeper credit on wakeups, and reports whether it should preempt the
// running task.
func (q *Queue) Enqueue(t *task.Task, wakeup bool) bool {
	if t.Sched.OnQueue {
		panic(fmt.Sprintf("cfs: double enqueue of %q", t.Name))
	}
	if wakeup {
		// place_entity wakeup semantics: the sleeper resumes from its
		// absolute position when it slept, but never worse than
		// minVruntime − SleeperCredit — a long sleeper re-enters with
		// a bounded lead over the queue clock (GENTLE_FAIR_SLEEPERS).
		old := t.Sched.Vruntime + t.Sched.QueueClock
		if floor := q.minVruntime - int64(q.p.SleeperCredit); old < floor {
			old = floor
			if q.m != nil && q.m.Tracing() {
				q.m.Emit(trace.Event{Kind: trace.KindSleeperCredit, Core: q.coreID,
					Task: t.ID, TaskName: t.Name})
			}
		}
		t.Sched.Vruntime = old
	} else {
		// Migration/new-task: join relative to this queue's clock.
		t.Sched.Vruntime += q.minVruntime
	}
	q.insert(t)
	t.Sched.OnQueue = true
	q.totalWeight += t.Sched.Weight
	if q.cur != nil {
		// Preemption check: the newcomer must lead by more than the
		// wakeup granularity. The kernel runs check_preempt_curr for
		// migrations too (pull_task), not only wakeups — without it a
		// freshly migrated thread sits behind a barrier-spinner for
		// the rest of its slice.
		return q.cur.Sched.Vruntime-t.Sched.Vruntime > int64(q.p.WakeupGranularity)
	}
	return false
}

// Dequeue implements sim.Scheduler.
func (q *Queue) Dequeue(t *task.Task) {
	if t == q.cur {
		q.cur = nil
		q.totalWeight -= t.Sched.Weight
	} else if t.Sched.OnQueue {
		q.remove(t)
		q.totalWeight -= t.Sched.Weight
	} else {
		panic(fmt.Sprintf("cfs: dequeue of absent task %q", t.Name))
	}
	t.Sched.OnQueue = false
	// Leave the queue's clock: vruntime becomes queue-relative, and the
	// clock snapshot lets a same-queue wakeup restore the absolute
	// position.
	t.Sched.QueueClock = q.minVruntime
	t.Sched.Vruntime -= q.minVruntime
}

// PickNext implements sim.Scheduler: the leftmost (smallest vruntime)
// task.
func (q *Queue) PickNext() *task.Task {
	if q.cur != nil {
		panic("cfs: PickNext with current task still attached")
	}
	if len(q.queue) == 0 {
		return nil
	}
	t := q.queue[0]
	// Shift down instead of re-slicing: q.queue = q.queue[1:] would leak
	// the front capacity, so every insert after a few picks regrows the
	// backing array. The queues are short (a handful of tasks), so the
	// copy is cheaper than the allocation churn.
	copy(q.queue, q.queue[1:])
	q.queue[len(q.queue)-1] = nil
	q.queue = q.queue[:len(q.queue)-1]
	t.Sched.OnQueue = false
	q.cur = t
	q.updateMin()
	return t
}

// PutPrev implements sim.Scheduler: the preempted/expired task rejoins
// the queue.
func (q *Queue) PutPrev(t *task.Task) {
	if q.cur == t {
		q.cur = nil
	} else {
		// A task stopped via stopCurrent and requeued later (yield
		// path); weight already counted only if it was current.
		q.totalWeight += t.Sched.Weight
	}
	q.insert(t)
	t.Sched.OnQueue = true
	q.updateMin()
}

// AccountExec implements sim.Scheduler: vruntime advances inversely to
// weight.
func (q *Queue) AccountExec(t *task.Task, d time.Duration) {
	t.Sched.Vruntime += int64(d) * nice0Weight / t.Sched.Weight
	q.updateMin()
}

// Slice implements sim.Scheduler: the task's share of the latency
// period, floored by the minimum granularity.
func (q *Queue) Slice(t *task.Task) time.Duration {
	tw := q.totalWeight
	if tw <= 0 {
		tw = t.Sched.Weight
	}
	s := time.Duration(int64(q.p.Latency) * t.Sched.Weight / tw)
	if s < q.p.MinGranularity {
		s = q.p.MinGranularity
	}
	return s
}

// Yield implements sim.Scheduler: sched_yield moves the caller behind
// every other runnable task (CFS sets its vruntime to the rightmost).
func (q *Queue) Yield(t *task.Task) {
	max := t.Sched.Vruntime
	for _, o := range q.queue {
		if o.Sched.Vruntime > max {
			max = o.Sched.Vruntime
		}
	}
	if max > t.Sched.Vruntime {
		t.Sched.Vruntime = max
	}
	t.Sched.Vruntime++ // strictly behind ties
}

// NrRunnable implements sim.Scheduler.
func (q *Queue) NrRunnable() int {
	n := len(q.queue)
	if q.cur != nil {
		n++
	}
	return n
}

// WeightedLoad implements sim.Scheduler.
func (q *Queue) WeightedLoad() int64 { return q.totalWeight }

// Queued implements sim.Scheduler.
func (q *Queue) Queued() []*task.Task {
	out := make([]*task.Task, len(q.queue))
	copy(out, q.queue)
	return out
}

// EachQueued implements sim.Scheduler: visits queued tasks in (vruntime,
// ID) order without copying the queue.
func (q *Queue) EachQueued(fn func(t *task.Task) bool) {
	for _, t := range q.queue {
		if !fn(t) {
			return
		}
	}
}

// MinVruntime exposes the queue clock for tests.
func (q *Queue) MinVruntime() int64 { return q.minVruntime }

func (q *Queue) insert(t *task.Task) {
	i := sort.Search(len(q.queue), func(i int) bool {
		o := q.queue[i]
		if o.Sched.Vruntime != t.Sched.Vruntime {
			return o.Sched.Vruntime > t.Sched.Vruntime
		}
		return o.ID > t.ID
	})
	q.queue = append(q.queue, nil)
	copy(q.queue[i+1:], q.queue[i:])
	q.queue[i] = t
}

func (q *Queue) remove(t *task.Task) {
	for i, o := range q.queue {
		if o == t {
			q.queue = append(q.queue[:i], q.queue[i+1:]...)
			return
		}
	}
	panic(fmt.Sprintf("cfs: task %q not in queue", t.Name))
}

// updateMin advances the queue clock to min(cur, leftmost), never
// backwards.
func (q *Queue) updateMin() {
	m := int64(-1)
	if q.cur != nil {
		m = q.cur.Sched.Vruntime
	}
	if len(q.queue) > 0 {
		if lv := q.queue[0].Sched.Vruntime; m < 0 || lv < m {
			m = lv
		}
	}
	if m > q.minVruntime {
		q.minVruntime = m
	}
}
