// Multiprogrammed: the Figure 5 scenario — a 16-thread EP-style
// application sharing the machine with an unrelated cpu-hog pinned to
// core 0, plus a make -j build churning in the background.
//
// Static pinning runs at the slowest thread's speed (the one sharing
// core 0 with the hog); Linux load balancing cannot fix the 2-vs-1
// queue split; speed balancing detects the slow core through its
// threads' exec/real ratios and rotates threads away from it.
//
//	go run ./examples/multiprogrammed
package main

import (
	"fmt"
	"time"

	lbos "repro"
)

func main() {
	spec := lbos.AppSpec{
		Name:             "ep",
		Threads:          16,
		Iterations:       1,
		WorkPerIteration: 2000 * lbos.Millisecond,
		Model:            lbos.UPC(),
	}

	type setup struct {
		name  string
		build func(sys *lbos.System) *lbos.App
	}
	setups := []setup{
		{"PINNED", func(sys *lbos.System) *lbos.App { return sys.StartPinned(spec) }},
		{"LOAD", func(sys *lbos.System) *lbos.App { return sys.StartApp(spec) }},
		{"SPEED", func(sys *lbos.System) *lbos.App {
			app := sys.BuildApp(spec)
			sys.SpeedBalance(app, lbos.SpeedConfig{})
			return app
		}},
	}

	fmt.Println("16-thread EP on 16 Tigerton cores, sharing with a cpu-hog on core 0")
	fmt.Println("and `make -j4` (17+ tasks: no static balance exists)")
	fmt.Println()
	fmt.Printf("%-8s %10s  %8s  %s\n", "config", "elapsed", "speedup", "app migrations")
	for _, s := range setups {
		sys := lbos.NewSystem(lbos.Tigerton(), lbos.WithSeed(3))
		sys.AddCPUHog(0)
		sys.AddMakeJ(4)
		app := s.build(sys)
		sys.RunUntil(app)
		migs := 0
		for _, t := range app.Tasks {
			migs += t.Migrations
		}
		fmt.Printf("%-8s %10v  %8.2f  %d\n",
			s.name, app.Elapsed().Round(time.Millisecond), app.Speedup(), migs)
	}
	fmt.Println()
	fmt.Println("ideal speedup with the hog taking half of core 0 is ~15.5")
}
