package exp

import (
	"fmt"
	"time"

	"repro/internal/cpuset"
	"repro/internal/perturb"
	"repro/internal/stats"
)

func init() {
	Register(&Experiment{
		ID:    "predict-bakeoff",
		Title: "Predictive vs reactive speed balancing under disturbance",
		PaperRef: "beyond the paper: §5's balancer reacts to a realized " +
			"sub-T_s interval; this arms the predictive mode and measures " +
			"what anticipation buys under the disturbances that make " +
			"speeds drift",
		Expect: "under persistent per-core noise and hotplug churn the " +
			"predictive mode's wake-time placement cuts mean response " +
			"time (anticipatory pulls stay rare at default confidence); " +
			"memoryless frequency drift has no predictable trend, so " +
			"there the mode should at best hold the median and may pay " +
			"in the tail",
		Run: runPredictBakeoff,
	})
}

// predictFamilies are the disturbance regimes of the bakeoff. IRQ noise
// pins heavy interrupt work to a fixed core subset — the persistent
// asymmetry wake-time placement can learn and avoid; hotplug and
// frequency drift move the asymmetry around, testing how fast the
// decayed estimators re-learn.
var predictFamilies = []struct {
	name string
	cfg  perturb.Config
}{
	{"clean", perturb.Config{}},
	{"irq-noise", perturb.Config{Noise: perturb.IRQNoise(cpuset.Of(0, 1, 2, 3))}},
	{"hotplug", perturb.Config{Hotplug: perturb.DefaultHotplug()}},
	{"freq-drift", perturb.Config{Freq: perturb.DefaultFreq()}},
}

// runPredictBakeoff sweeps disturbance family × {reactive, predictive}
// for the SPEED policy at a fixed moderate load, pooling per-job
// response times across repetitions.
func runPredictBakeoff(ctx *Context) []*Table {
	const rho = 0.60
	horizon := time.Duration(int64(4*time.Second) / int64(ctx.Scale))
	if horizon < 250*time.Millisecond {
		horizon = 250 * time.Millisecond
	}
	tb := &Table{
		Title: "Predictive vs reactive speed balancing (SPEED, open arrivals, rho=0.60, Tigerton)",
		Columns: []string{"family", "mode", "jobs", "unfin",
			"mean ms", "p50 ms", "p95 ms", "p99 ms", "pred pulls", "hit %"},
	}
	tb.Note("pooled over %d reps; arrivals for %v per cell, then a drain window", ctx.Reps, horizon)
	tb.Note("pred pulls = anticipatory migrations (candidate above realized T_s); hit %% = slowest-core predictions confirmed next interval")

	speed := openPolicies[0] // SPEED: linux + speed balancer
	rn := NewRunner(ctx)
	for fi, fam := range predictFamilies {
		for _, predictive := range []bool{false, true} {
			// Both modes share the family's config index, so each rep's
			// arrival stream and disturbance schedule are identical
			// between reactive and predictive: the comparison is paired.
			cfgIdx := fi
			soj := &stats.Sample{}
			jobs, unfin := new(int), new(int)
			pulls, hits, misses := new(int), new(int), new(int)
			for rep := 0; rep < ctx.Reps; rep++ {
				fam, predictive := fam, predictive
				seed := seedFor(ctx.Seed, cfgIdx, rep)
				rn.SubmitFunc(
					fmt.Sprintf("predict %s pred=%v rep %d", fam.name, predictive, rep),
					func() RunResult {
						return RunResult{Out: runOpenCell(speed, openCellOpts{
							rho: rho, horizon: horizon, seed: seed,
							shards: ctx.Shards, shardPar: ctx.ShardParallel,
							perturb: fam.cfg, predict: predictive,
						})}
					},
					func(res RunResult) {
						o := res.Out.(openCellOut)
						*jobs += o.admitted
						*unfin += o.unfinished
						*pulls += o.predictPulls
						*hits += o.predictHits
						*misses += o.predictMisses
						for _, v := range o.sojournsMs {
							soj.Add(v)
						}
					})
			}
			fam, predictive := fam, predictive
			rn.Then(func() {
				mode := "reactive"
				if predictive {
					mode = "predictive"
				}
				hitPct := "-"
				if n := *hits + *misses; n > 0 {
					hitPct = fmt.Sprintf("%.0f", 100*float64(*hits)/float64(n))
				}
				tb.AddRow(fam.name, mode, *jobs, *unfin,
					fmt.Sprintf("%.3f", soj.Mean()),
					fmt.Sprintf("%.3f", soj.Percentile(50)),
					fmt.Sprintf("%.3f", soj.Percentile(95)),
					fmt.Sprintf("%.3f", soj.Percentile(99)),
					*pulls, hitPct)
				ctx.Logf("predict-bakeoff: %s %s done (%d jobs)", fam.name, mode, *jobs)
			})
		}
	}
	rn.Wait()
	return []*Table{tb}
}
