// Package ule models the FreeBSD 7.2 ULE scheduler's load balancing
// (§2): per-core queues managed event-driven, with a combination of pull
// and push migration.
//
// The push balancer runs twice a second and moves a thread from the
// highest-loaded queue to the lightest-loaded queue. In the default
// configuration it will not migrate when a static balance is not
// attainable (a one-thread imbalance is left alone); setting
// StealThreshold to 1 mimics kern.sched.steal_thresh=1, which the paper
// tried without observing benefits for parallel workloads. Idle cores
// pull from queues holding at least two threads.
//
// ULE's per-core time sharing is close enough to fair that we reuse the
// CFS per-core policy underneath; only the balancing (this package)
// differs — which is the axis the paper evaluates.
package ule

import (
	"time"

	"repro/internal/cpuset"
	"repro/internal/sim"
	"repro/internal/task"
	"repro/internal/trace"
	"repro/internal/xrand"
)

// Config tunes the balancer.
type Config struct {
	// PushInterval is the push balancer period ("runs twice a second").
	PushInterval time.Duration
	// StealThreshold is the minimum queue length an idle core steals
	// from (kern.sched.steal_thresh; 2 by default).
	StealThreshold int
	// MinImbalance is the queue-length difference required for a push
	// (2 by default: a static balance must be improvable).
	MinImbalance int
	// Domain restricts pushing and stealing to a core subset — one
	// Balancer instance per socket/shard models partitioned scheduling
	// domains. Empty means the whole machine. When the domain is
	// contained in one simulation shard, the push timer rides that
	// shard's queue, so the twice-a-second pass no longer bounds
	// conservative lookahead and runs inside parallel windows.
	Domain cpuset.Set
}

// DefaultConfig returns the FreeBSD 7.2 defaults.
func DefaultConfig() Config {
	return Config{
		PushInterval:   500 * time.Millisecond,
		StealThreshold: 2,
		MinImbalance:   2,
	}
}

// Balancer is the ULE load balancer actor.
type Balancer struct {
	cfg Config
	m   *sim.Machine
	rng *xrand.RNG

	// domain is the resolved balancing scope (Config.Domain or all).
	domain cpuset.Set
	// pushTimer is the reusable push-balancer timer.
	pushTimer *sim.Timer

	// Pushes and Pulls count balancing actions.
	Pushes, Pulls int
}

// New creates the balancer.
func New(cfg Config) *Balancer {
	d := DefaultConfig()
	if cfg.PushInterval == 0 {
		cfg.PushInterval = d.PushInterval
	}
	if cfg.StealThreshold == 0 {
		cfg.StealThreshold = d.StealThreshold
	}
	if cfg.MinImbalance == 0 {
		cfg.MinImbalance = d.MinImbalance
	}
	return &Balancer{cfg: cfg}
}

// Default creates the balancer with DefaultConfig.
func Default() *Balancer { return New(DefaultConfig()) }

// Start implements sim.Actor.
func (b *Balancer) Start(m *sim.Machine) {
	b.m = m
	b.rng = m.RNG()
	b.domain = b.cfg.Domain
	if b.domain.Empty() {
		b.domain = m.Topo.AllCores()
	}
	m.OnIdle(b.idled)
	fn := func(now int64) {
		b.push(now)
		b.pushTimer.Schedule(now + int64(b.cfg.PushInterval))
	}
	// The push pass reads and moves only domain queues: when they all
	// live in one shard the timer may ride that shard's queue instead of
	// bounding conservative lookahead.
	if first := b.domain.First(); first >= 0 && b.m.ShardCores(m.ShardOf(first)).Contains(b.domain) {
		b.pushTimer = m.NewCoreTimer(first, fn)
	} else {
		b.pushTimer = m.NewTimer(fn)
	}
	b.pushTimer.Schedule(m.Now() + int64(b.cfg.PushInterval))
}

// push moves one thread from the most to the least loaded queue when the
// imbalance is at least MinImbalance.
func (b *Balancer) push(now int64) {
	var hi, lo *sim.Core
	for _, c := range b.m.Cores {
		if !c.Online() || !b.domain.Has(c.ID()) {
			// An offline queue holds nothing and must receive nothing;
			// out-of-domain queues belong to another balancer.
			continue
		}
		if hi == nil || c.NrRunnable() > hi.NrRunnable() {
			hi = c
		}
		if lo == nil || c.NrRunnable() < lo.NrRunnable() {
			lo = c
		}
	}
	if hi == nil || lo == nil || hi == lo {
		return
	}
	tr := b.m.Tracing()
	if tr {
		b.m.Emit(trace.Event{Kind: trace.KindBalanceWake, Core: hi.ID(), Label: "ule-push"})
	}
	if hi.NrRunnable()-lo.NrRunnable() < b.cfg.MinImbalance {
		if tr {
			b.traceSkip(hi.ID(), "ule-push", "below-min-imbalance")
		}
		return
	}
	if t := b.steal(hi, lo.ID()); t != nil {
		b.m.Migrate(t, lo.ID(), "ule")
		b.Pushes++
	} else if tr {
		b.traceSkip(hi.ID(), "ule-push", "no-stealable-thread")
	}
}

// idled is ULE's tdq_idled: an idle core steals from a loaded queue.
func (b *Balancer) idled(c *sim.Core) {
	if !b.domain.Has(c.ID()) {
		return
	}
	var busiest *sim.Core
	for _, o := range b.m.Cores {
		if o == c || !o.Online() || !b.domain.Has(o.ID()) ||
			o.NrRunnable() < b.cfg.StealThreshold {
			continue
		}
		if busiest == nil || o.NrRunnable() > busiest.NrRunnable() {
			busiest = o
		}
	}
	if busiest == nil {
		return
	}
	if t := b.steal(busiest, c.ID()); t != nil {
		b.m.Migrate(t, c.ID(), "ule-pull")
		b.Pulls++
	} else if b.m.Tracing() {
		b.traceSkip(c.ID(), "ule-pull", "no-stealable-thread")
	}
}

// traceSkip records a balancing pass that moved nothing.
func (b *Balancer) traceSkip(core int, label, reason string) {
	b.m.Emit(trace.Event{Kind: trace.KindBalanceSkip, Core: core, Src: core,
		Label: label, Reason: reason})
}

// steal picks a migratable queued thread from src that may run on dst.
func (b *Balancer) steal(src *sim.Core, dst int) *task.Task {
	var pick *task.Task
	src.Scheduler().EachQueued(func(t *task.Task) bool {
		if t.Affinity.Has(dst) {
			pick = t
			return false
		}
		return true
	})
	return pick
}
