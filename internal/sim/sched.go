package sim

import (
	"time"

	"repro/internal/task"
)

// Scheduler is the per-core scheduling policy (scheduling in time, in the
// paper's terms). The machine owns the dispatch loop and calls into the
// policy for queueing decisions; package cfs provides the Linux CFS
// model, package dwrr the Distributed Weighted Round-Robin variant.
//
// Protocol: PickNext removes the chosen task from the queue and makes it
// the policy's current task; PutPrev returns a still-runnable current
// task to the queue; Dequeue removes a task wherever it is (queued or
// current). AccountExec is called with the CPU time the current task just
// consumed, before any queue operation that depends on up-to-date
// vruntimes.
type Scheduler interface {
	// Attach binds the policy to a machine core. Called once at setup.
	Attach(m *Machine, coreID int)
	// Enqueue adds a runnable task. wakeup is true when the task is
	// waking from sleep/block (it may receive a sleeper credit and may
	// preempt). The return value asks the machine to preempt the
	// current task.
	Enqueue(t *task.Task, wakeup bool) (preempt bool)
	// Dequeue removes the task from the policy entirely.
	Dequeue(t *task.Task)
	// PickNext selects, removes and returns the next task to run, or
	// nil if the core should idle.
	PickNext() *task.Task
	// PutPrev returns the (still runnable) previously running task to
	// the queue.
	PutPrev(t *task.Task)
	// AccountExec charges d of CPU time to the task.
	AccountExec(t *task.Task, d time.Duration)
	// Slice returns the timeslice the current task may run before the
	// machine calls PutPrev/PickNext again.
	Slice(t *task.Task) time.Duration
	// Yield implements sched_yield: the task forfeits its claim and
	// will be placed behind the other runnable tasks.
	Yield(t *task.Task)
	// NrRunnable returns the queue length including the running task —
	// the "load" that Linux-style balancing equalises.
	NrRunnable() int
	// WeightedLoad returns the sum of queued task weights (including
	// the running task), the load metric of CFS group balancing.
	WeightedLoad() int64
	// Queued returns the runnable tasks excluding the running one — the
	// candidates a balancer may migrate. The returned slice is owned by
	// the caller; order is deterministic (by vruntime, then ID).
	Queued() []*task.Task
	// EachQueued visits the same tasks as Queued, in the same
	// deterministic order, without allocating. fn returning false stops
	// the walk. The policy's queue must not be mutated during the walk.
	EachQueued(fn func(t *task.Task) bool)
}
