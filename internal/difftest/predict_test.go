package difftest

import (
	"testing"
	"time"

	"repro/internal/cfs"
	"repro/internal/cpuset"
	"repro/internal/exp"
	"repro/internal/linuxlb"
	"repro/internal/npb"
	"repro/internal/openload"
	"repro/internal/perturb"
	"repro/internal/predict"
	"repro/internal/sim"
	"repro/internal/speedbal"
	"repro/internal/spmd"
	"repro/internal/topo"
)

// The reactive-degeneracy contract: the predictive balancer with a zero
// horizon, or a zero blend weight, must be byte-identical to the
// reactive balancer — not "statistically close", identical. The
// estimators still run (Enabled allocates and feeds the tracker), so
// these tests prove the prediction arithmetic degenerates exactly, not
// merely that a flag short-circuits it.

// degenerateConfigs are the two dials that must each independently
// collapse prediction to reactive behaviour.
var degenerateConfigs = []struct {
	name string
	cfg  predict.Config
}{
	{"horizon-0", predict.Config{Enabled: true, Horizon: 0, Weight: 1}},
	{"weight-0", predict.Config{Enabled: true, Horizon: 100 * time.Millisecond, Weight: 0}},
}

// closedFingerprint runs the canonical imbalanced closed workload (EP,
// 16 threads on 10 cores) under frequency drift with the given predict
// config and fingerprints the full machine end state.
func closedFingerprint(t *testing.T, pcfg predict.Config, seed uint64) string {
	t.Helper()
	scfg := speedbal.DefaultConfig()
	scfg.Predict = pcfg
	// ~3.5s of simulated time: long enough for the tracker to warm up
	// and for active prediction to actually change decisions (the power
	// check below fails on shorter runs), still ~10ms of wall time.
	spec := npb.EP.Spec(16, spmd.UPC(), cpuset.All(10))
	spec.WorkPerIteration /= 4
	res := exp.Run(exp.RunOpts{
		Topo: topo.Tigerton, Strategy: exp.StratSpeed, Spec: spec,
		Seed: seed, SpeedCfg: &scfg,
		Perturb: perturb.Config{Freq: perturb.DefaultFreq()},
	})
	if res.Truncated {
		t.Fatal("closed workload truncated — fingerprints would compare limits, not runs")
	}
	return Fingerprint(res.Machine)
}

// openFingerprint runs an open arrival stream with rescan adoption —
// the path where the predictive placer wraps the fork placement policy
// — and fingerprints the machine end state.
func openFingerprint(pcfg predict.Config, seed uint64) string {
	cfg := sim.Config{Seed: seed}
	cfg.NewScheduler = cfs.Factory()
	m := sim.New(topo.Tigerton(), cfg)
	m.AddActor(linuxlb.Default())
	scfg := speedbal.DefaultConfig()
	scfg.RescanGroup = openload.Group
	scfg.Predict = pcfg
	m.AddActor(speedbal.New(scfg))
	m.AddActor(perturb.New(perturb.Config{Freq: perturb.DefaultFreq()}))
	m.AddActor(openload.New(openload.Config{Rho: 0.6, Horizon: 500 * time.Millisecond}))
	m.Run(int64(2 * time.Second))
	return Fingerprint(m)
}

func TestPredictDegeneracyClosed(t *testing.T) {
	for _, seed := range []uint64{1, 20100109} {
		reactive := closedFingerprint(t, predict.Config{}, seed)
		for _, dc := range degenerateConfigs {
			if got := closedFingerprint(t, dc.cfg, seed); got != reactive {
				t.Errorf("seed %d: %s diverges from reactive:\n%s",
					seed, dc.name, firstDivergence(reactive, got))
			}
		}
		// Power check: a genuinely active config must change *something*,
		// or the comparisons above prove nothing.
		if got := closedFingerprint(t, predict.DefaultConfig(), seed); got == reactive {
			t.Errorf("seed %d: active prediction is byte-identical to reactive — degeneracy test has no power", seed)
		}
	}
}

func TestPredictDegeneracyOpen(t *testing.T) {
	for _, seed := range []uint64{7, 20100109} {
		reactive := openFingerprint(predict.Config{}, seed)
		for _, dc := range degenerateConfigs {
			if got := openFingerprint(dc.cfg, seed); got != reactive {
				t.Errorf("seed %d: %s diverges from reactive:\n%s",
					seed, dc.name, firstDivergence(reactive, got))
			}
		}
		if got := openFingerprint(predict.DefaultConfig(), seed); got == reactive {
			t.Errorf("seed %d: active prediction is byte-identical to reactive — degeneracy test has no power", seed)
		}
	}
}
