// Package stats provides the run statistics the paper reports: means,
// extrema, percentage variation (max/min run-time ratio, Table 3's
// "% variation"), and improvement ratios between balancers.
package stats

import (
	"fmt"
	"math"
	"sort"
	"time"
)

// Sample is a collection of observations (e.g. run times of repeated
// runs, one per seed).
type Sample struct {
	xs []float64
}

// Add appends an observation.
func (s *Sample) Add(x float64) { s.xs = append(s.xs, x) }

// AddDuration appends a duration observation in seconds.
func (s *Sample) AddDuration(d time.Duration) { s.Add(d.Seconds()) }

// N returns the observation count.
func (s *Sample) N() int { return len(s.xs) }

// Mean returns the arithmetic mean (0 when empty).
func (s *Sample) Mean() float64 {
	if len(s.xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range s.xs {
		sum += x
	}
	return sum / float64(len(s.xs))
}

// Min returns the smallest observation (0 when empty).
func (s *Sample) Min() float64 {
	if len(s.xs) == 0 {
		return 0
	}
	m := s.xs[0]
	for _, x := range s.xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the largest observation (0 when empty).
func (s *Sample) Max() float64 {
	if len(s.xs) == 0 {
		return 0
	}
	m := s.xs[0]
	for _, x := range s.xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// StdDev returns the sample standard deviation (0 for n < 2).
func (s *Sample) StdDev() float64 {
	n := len(s.xs)
	if n < 2 {
		return 0
	}
	mean := s.Mean()
	var ss float64
	for _, x := range s.xs {
		d := x - mean
		ss += d * d
	}
	return math.Sqrt(ss / float64(n-1))
}

// Median returns the middle observation (0 when empty). It is
// Percentile(50): for even counts the two middle observations are
// averaged, which is exactly what linear interpolation at p=50 yields.
func (s *Sample) Median() float64 { return s.Percentile(50) }

// Percentile returns the p-th percentile (p in [0, 100]) using linear
// interpolation between closest ranks (the R-7/NumPy default): the
// value at fractional rank p/100·(n−1). An empty sample returns 0, a
// single observation is every percentile of itself, and p outside
// [0, 100] is clamped. A NaN p returns NaN — it satisfies neither
// clamp (NaN comparisons are all false), and before this guard it
// flowed into int(rank), whose value for NaN is undefined and indexed
// the sorted slice out of range. The receiver's observations are
// copied before sorting — Add order is observable (and kept) for
// callers that iterate the sample, so no query may reorder the backing
// slice.
func (s *Sample) Percentile(p float64) float64 {
	if math.IsNaN(p) {
		return math.NaN()
	}
	n := len(s.xs)
	if n == 0 {
		return 0
	}
	xs := append([]float64(nil), s.xs...)
	sort.Float64s(xs)
	if p <= 0 {
		return xs[0]
	}
	if p >= 100 {
		return xs[n-1]
	}
	rank := p / 100 * float64(n-1)
	lo := int(rank)
	frac := rank - float64(lo)
	if lo+1 >= n || frac == 0 {
		return xs[lo]
	}
	return xs[lo] + frac*(xs[lo+1]-xs[lo])
}

// VariationPct is the paper's Table 3 metric: "the ratio of the maximum
// to minimum run times across 10 runs", expressed as a percentage above
// 1 (so identical runs give 0, a 2× spread gives 100).
func (s *Sample) VariationPct() float64 {
	min := s.Min()
	if min <= 0 {
		return 0
	}
	return (s.Max()/min - 1) * 100
}

// ImprovementPct returns how much faster (in %) the receiver's mean run
// time is than the baseline's: (base/mean − 1)·100. Positive means the
// receiver is better (smaller times). The guard is symmetric: an empty
// or zero sample on either side yields 0 (no data, no claim), never the
// −100% an empty baseline's zero mean would otherwise produce.
func (s *Sample) ImprovementPct(base *Sample) float64 {
	m, b := s.Mean(), base.Mean()
	if m <= 0 || b <= 0 {
		return 0
	}
	return (b/m - 1) * 100
}

// WorstImprovementPct compares worst cases: (base.Max/s.Max − 1)·100,
// with the same symmetric empty/zero guard as ImprovementPct.
func (s *Sample) WorstImprovementPct(base *Sample) float64 {
	m, b := s.Max(), base.Max()
	if m <= 0 || b <= 0 {
		return 0
	}
	return (b/m - 1) * 100
}

// String summarises the sample.
func (s *Sample) String() string {
	return fmt.Sprintf("n=%d mean=%.4g min=%.4g max=%.4g var=%.1f%%",
		s.N(), s.Mean(), s.Min(), s.Max(), s.VariationPct())
}
