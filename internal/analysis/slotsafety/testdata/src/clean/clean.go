// Package clean holds the sanctioned Runner patterns that must never
// fire: snapshotted loop variables, aggregation in the ordered result
// callback, read-only captures, and the explicit escape hatch.
package clean

type RunResult struct{ Elapsed int64 }

type Runner struct{}

func (r *Runner) SubmitFunc(label string, run func() RunResult, fn func(RunResult)) {}

type spec struct{ work int64 }

func measure(s spec, seed uint64) RunResult { return RunResult{Elapsed: s.work} }

// snapshot is the repo convention: the loop variable is frozen into an
// iteration-local before submission.
func snapshot(r *Runner, seeds []uint64) {
	s := spec{work: 100}
	for _, seed := range seeds {
		seed := seed
		r.SubmitFunc("cell",
			func() RunResult { return measure(s, seed) },
			nil)
	}
}

// aggregateInCallback mutates shared state only in the result callback,
// which the Runner delivers serially in submission order.
func aggregateInCallback(r *Runner, seeds []uint64) []int64 {
	var out []int64
	s := spec{work: 7}
	for _, seed := range seeds {
		seed := seed
		r.SubmitFunc("cell",
			func() RunResult { return measure(s, seed) },
			func(res RunResult) { out = append(out, res.Elapsed) })
	}
	return out
}

// bodyLocal state declared inside the loop body is per-iteration.
func bodyLocal(r *Runner, seeds []uint64) {
	for _, seed := range seeds {
		seed := seed
		retries := 0
		_ = retries
		r.SubmitFunc("cell", func() RunResult {
			local := measure(spec{}, seed)
			local.Elapsed *= 2
			return local
		}, nil)
	}
}

// allowed demonstrates the escape hatch for a deliberate shared write.
func allowed(r *Runner, counter *int) {
	r.SubmitFunc("cell", func() RunResult {
		*counter++ //lint:allow-slotsafety intentionally racy debug counter
		return RunResult{}
	}, nil)
}

// shardState mirrors one shard's slot in the machine's shardStates.
type shardState struct {
	events int
	now    int64
}

// slotConfined is the machine's window-worker idiom: the shard index
// arrives as an argument and every write lands in the worker's own
// slot; the fold after the window merges the slots on the event loop.
func slotConfined(states []shardState, horizon int64) int {
	for s := 0; s < len(states); s++ {
		go func(s int) {
			states[s].events++
			states[s].now = horizon
		}(s)
	}
	total := 0
	for s := range states {
		total += states[s].events
	}
	return total
}

// workerLocals writes only its own locals and reads outer config.
func workerLocals(horizon int64, shards int) {
	for s := 0; s < shards; s++ {
		go func(s int) {
			fired := 0
			for t := int64(s); t < horizon; t += 7 {
				fired++
			}
			_ = fired
		}(s)
	}
}

// allowedWorker demonstrates the escape hatch for a deliberate shared
// write (a mutex-guarded progress counter, as in cmd/speedbalance).
func allowedWorker(finished *int, shards int) {
	for s := 0; s < shards; s++ {
		go func(s int) {
			*finished++ //lint:allow-slotsafety mutex-guarded progress counter
		}(s)
	}
}
