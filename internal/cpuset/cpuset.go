// Package cpuset provides a compact set of CPU (core) identifiers.
//
// It models the affinity masks used by sched_setaffinity and taskset in
// the paper: a task may only be placed on cores in its mask, the Linux
// load balancer respects masks when pulling, and speedbalancer migrates a
// thread by rewriting its mask to a single core. Machines in this
// reproduction have at most 64 logical CPUs, so a single word suffices.
package cpuset

import (
	"fmt"
	"math/bits"
	"strings"
)

// Set is a bitmask of core IDs in [0, 64).
type Set uint64

// MaxCPU is the largest representable core ID plus one.
const MaxCPU = 64

// Of returns a set containing exactly the given cores.
func Of(cores ...int) Set {
	var s Set
	for _, c := range cores {
		s = s.Add(c)
	}
	return s
}

// Range returns the set {lo, lo+1, ..., hi-1}.
func Range(lo, hi int) Set {
	var s Set
	for c := lo; c < hi; c++ {
		s = s.Add(c)
	}
	return s
}

// All returns a set of the first n cores.
func All(n int) Set { return Range(0, n) }

// Add returns the set with core c included. It panics if c is out of range.
func (s Set) Add(c int) Set {
	check(c)
	return s | 1<<uint(c)
}

// Remove returns the set with core c excluded.
func (s Set) Remove(c int) Set {
	check(c)
	return s &^ (1 << uint(c))
}

// Has reports whether core c is in the set.
func (s Set) Has(c int) bool {
	if c < 0 || c >= MaxCPU {
		return false
	}
	return s&(1<<uint(c)) != 0
}

// Count returns the number of cores in the set.
func (s Set) Count() int { return bits.OnesCount64(uint64(s)) }

// Empty reports whether the set has no cores.
func (s Set) Empty() bool { return s == 0 }

// Union returns s ∪ t.
func (s Set) Union(t Set) Set { return s | t }

// Intersect returns s ∩ t.
func (s Set) Intersect(t Set) Set { return s & t }

// Minus returns s \ t.
func (s Set) Minus(t Set) Set { return s &^ t }

// Contains reports whether every core of t is in s.
func (s Set) Contains(t Set) bool { return t&^s == 0 }

// First returns the smallest core ID in the set, or -1 if empty.
func (s Set) First() int {
	if s == 0 {
		return -1
	}
	return bits.TrailingZeros64(uint64(s))
}

// Cores returns the core IDs in ascending order.
func (s Set) Cores() []int {
	out := make([]int, 0, s.Count())
	for v := uint64(s); v != 0; v &= v - 1 {
		out = append(out, bits.TrailingZeros64(v))
	}
	return out
}

// String renders the set in taskset-like list form, e.g. "0-3,8,10-11".
func (s Set) String() string {
	if s == 0 {
		return "{}"
	}
	var b strings.Builder
	cores := s.Cores()
	for i := 0; i < len(cores); {
		j := i
		for j+1 < len(cores) && cores[j+1] == cores[j]+1 {
			j++
		}
		if b.Len() > 0 {
			b.WriteByte(',')
		}
		if j == i {
			fmt.Fprintf(&b, "%d", cores[i])
		} else {
			fmt.Fprintf(&b, "%d-%d", cores[i], cores[j])
		}
		i = j + 1
	}
	return b.String()
}

func check(c int) {
	if c < 0 || c >= MaxCPU {
		panic(fmt.Sprintf("cpuset: core %d out of range [0,%d)", c, MaxCPU))
	}
}
