//go:build race

package sim_test

// raceEnabled reports whether the race detector is compiled in; the
// property tests scale their iteration counts down under it (it slows
// the simulator ~10×) so `go test -race ./...` fits the default package
// timeout.
const raceEnabled = true
