package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/exp"
)

// doReq drives one request through the server's handler tree.
func doReq(t *testing.T, h http.Handler, method, target, body string) *httptest.ResponseRecorder {
	t.Helper()
	var req *http.Request
	if body != "" {
		req = httptest.NewRequest(method, target, strings.NewReader(body))
	} else {
		req = httptest.NewRequest(method, target, nil)
	}
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	return w
}

// stubExecutor returns a deterministic spec-driven executor for tests
// that must not pay for real experiment runs. Behaviour is selected by
// seed: < 100 blocks on gate, 100–199 blocks until interrupted,
// ≥ 200 returns instantly. started receives one token per execution
// entered.
func stubExecutor(gate chan struct{}, started chan uint64) func(Spec, <-chan struct{}) ([]byte, []byte, error) {
	return func(spec Spec, interrupt <-chan struct{}) ([]byte, []byte, error) {
		if started != nil {
			started <- spec.Seed
		}
		switch {
		case spec.Seed < 100:
			<-gate
		case spec.Seed < 200:
			<-interrupt
			return nil, nil, fmt.Errorf("stub: %w", exp.ErrInterrupted)
		}
		return []byte(fmt.Sprintf(`{"stub":true,"experiment":%q,"seed":%d}`, spec.Experiment, spec.Seed)), nil, nil
	}
}

// The content-addressed cache contract: POSTing the same spec twice
// returns byte-identical bodies with the second marked as a hit, and a
// fresh server (fresh cache) produces the same bytes again — cached
// and fresh results are indistinguishable, difftest-style.
func TestCacheHitByteIdentical(t *testing.T) {
	spec := `{"experiment":"fig1","reps":2,"scale":8}`
	newServer := func() *Server {
		return New(Config{Workers: 1, QueueDepth: 4, Version: "test"})
	}
	a := newServer()
	defer a.Drain()

	first := doReq(t, a.Handler(), "POST", "/v1/runs?wait=1", spec)
	if first.Code != http.StatusOK {
		t.Fatalf("first POST: %d %s", first.Code, first.Body.String())
	}
	if got := first.Header().Get("X-Lbos-Cache"); got != CacheMiss {
		t.Errorf("first POST cache verdict %q, want %q", got, CacheMiss)
	}
	second := doReq(t, a.Handler(), "POST", "/v1/runs?wait=1", spec)
	if second.Code != http.StatusOK {
		t.Fatalf("second POST: %d %s", second.Code, second.Body.String())
	}
	if got := second.Header().Get("X-Lbos-Cache"); got != CacheHit {
		t.Errorf("second POST cache verdict %q, want %q", got, CacheHit)
	}
	if first.Body.String() != second.Body.String() {
		t.Error("cache hit body differs from the fresh body")
	}

	// A separate server with an empty cache must produce the same bytes
	// — the cached copy is provably what a fresh execution returns.
	b := newServer()
	defer b.Drain()
	fresh := doReq(t, b.Handler(), "POST", "/v1/runs?wait=1", spec)
	if fresh.Code != http.StatusOK {
		t.Fatalf("fresh-server POST: %d %s", fresh.Code, fresh.Body.String())
	}
	if fresh.Body.String() != first.Body.String() {
		t.Error("fresh-server body differs: results are not a pure function of (version, spec)")
	}

	// The document is well-formed and self-describing.
	var doc ResultDoc
	if err := json.Unmarshal(first.Body.Bytes(), &doc); err != nil {
		t.Fatalf("result document is not JSON: %v", err)
	}
	if doc.Version != "test" || doc.Experiment.ID != "fig1" || len(doc.Tables) == 0 {
		t.Errorf("degenerate result doc: version=%q exp=%q tables=%d", doc.Version, doc.Experiment.ID, len(doc.Tables))
	}
	want, _ := Spec{Experiment: "fig1", Reps: 2, Scale: 8}.Canonicalize()
	if doc.ID != want.Key("test") {
		t.Errorf("doc ID %s is not the spec's content address %s", doc.ID, want.Key("test"))
	}
}

// The bounded queue sheds load with 429 + Retry-After instead of
// growing: with one worker parked on a gate and a one-slot queue,
// exactly one of a flood of distinct submissions is admitted.
func TestBackpressureSheds(t *testing.T) {
	s := New(Config{Workers: 1, QueueDepth: 1, Version: "test", RetryAfterSeconds: 2})
	gate := make(chan struct{})
	started := make(chan uint64, 64)
	s.executor = stubExecutor(gate, started)
	defer func() {
		close(gate)
		s.Drain()
	}()

	submit := func(seed uint64) *httptest.ResponseRecorder {
		return doReq(t, s.Handler(), "POST", "/v1/runs",
			fmt.Sprintf(`{"experiment":"fig1","seed":%d}`, seed))
	}
	// Occupy the worker and wait until it is provably inside the stub.
	if w := submit(1); w.Code != http.StatusAccepted {
		t.Fatalf("first submit: %d %s", w.Code, w.Body.String())
	}
	<-started

	// The queue has one slot: of 50 more distinct specs, exactly one is
	// admitted and 49 are shed.
	accepted, shed := 0, 0
	for seed := uint64(2); seed <= 51; seed++ {
		w := submit(seed)
		switch w.Code {
		case http.StatusAccepted:
			accepted++
		case http.StatusTooManyRequests:
			shed++
			if got := w.Header().Get("Retry-After"); got != "2" {
				t.Errorf("429 Retry-After %q, want \"2\"", got)
			}
		default:
			t.Fatalf("submit seed %d: unexpected %d %s", seed, w.Code, w.Body.String())
		}
	}
	if accepted != 1 || shed != 49 {
		t.Errorf("accepted %d shed %d, want 1/49 (bounded queue must shed, not grow)", accepted, shed)
	}

	// Run metadata stayed bounded too: only the admitted runs exist.
	s.mu.Lock()
	runCount := len(s.runs)
	s.mu.Unlock()
	if runCount != 2 {
		t.Errorf("%d run records after the flood, want 2", runCount)
	}
}

// A duplicate submission joins the in-flight run instead of executing
// again, and both observers see the same result when it lands.
func TestDuplicateJoinsInFlight(t *testing.T) {
	s := New(Config{Workers: 1, QueueDepth: 4, Version: "test"})
	gate := make(chan struct{})
	started := make(chan uint64, 4)
	s.executor = stubExecutor(gate, started)
	defer s.Drain()

	spec := `{"experiment":"fig1","seed":7}`
	if w := doReq(t, s.Handler(), "POST", "/v1/runs", spec); w.Code != http.StatusAccepted {
		t.Fatalf("submit: %d", w.Code)
	}
	<-started
	dup := doReq(t, s.Handler(), "POST", "/v1/runs", spec)
	if dup.Code != http.StatusAccepted {
		t.Fatalf("dup submit: %d", dup.Code)
	}
	var st StatusDoc
	if err := json.Unmarshal(dup.Body.Bytes(), &st); err != nil {
		t.Fatal(err)
	}
	if st.Cache != CacheJoin {
		t.Errorf("duplicate verdict %q, want %q", st.Cache, CacheJoin)
	}
	close(gate)
	// A waiting resubmission drains with the joined run's result.
	w := doReq(t, s.Handler(), "POST", "/v1/runs?wait=1", spec)
	if w.Code != http.StatusOK {
		t.Fatalf("wait resubmit: %d %s", w.Code, w.Body.String())
	}
	if !strings.Contains(w.Body.String(), `"stub":true`) {
		t.Errorf("joined result body: %s", w.Body.String())
	}
}

// DELETE cancels: a queued run never starts, a running run aborts via
// the interrupt channel that exp.Runner honours between cells.
func TestCancelQueuedAndRunning(t *testing.T) {
	s := New(Config{Workers: 1, QueueDepth: 4, Version: "test"})
	started := make(chan uint64, 4)
	s.executor = stubExecutor(nil, started)
	defer s.Drain()

	// Seed 100: the stub blocks until interrupted.
	specA, _ := Spec{Experiment: "fig1", Seed: 100}.Canonicalize()
	specB, _ := Spec{Experiment: "fig1", Seed: 101}.Canonicalize()
	rA, verdict, err := s.submit(specA)
	if err != nil || verdict != CacheMiss {
		t.Fatalf("submit A: %v %q", err, verdict)
	}
	<-started // A is running (blocked on its interrupt)
	rB, _, err := s.submit(specB)
	if err != nil {
		t.Fatalf("submit B: %v", err)
	}

	// Cancel the queued run first, then the running one.
	if w := doReq(t, s.Handler(), "DELETE", "/v1/runs/"+rB.id, ""); w.Code != http.StatusAccepted {
		t.Fatalf("DELETE B: %d %s", w.Code, w.Body.String())
	}
	if w := doReq(t, s.Handler(), "DELETE", "/v1/runs/"+rA.id, ""); w.Code != http.StatusAccepted {
		t.Fatalf("DELETE A: %d %s", w.Code, w.Body.String())
	}
	<-rA.done
	<-rB.done
	if st, msg, _, _, _ := rA.snapshot(); st != StateCancelled {
		t.Errorf("running run: state %q (%s), want cancelled", st, msg)
	}
	if st, msg, _, _, _ := rB.snapshot(); st != StateCancelled || !strings.Contains(msg, "before execution") {
		t.Errorf("queued run: state %q (%s), want cancelled-before-start", st, msg)
	}

	// Cancelling a terminal run is a conflict, not a state change.
	if w := doReq(t, s.Handler(), "DELETE", "/v1/runs/"+rA.id, ""); w.Code != http.StatusConflict {
		t.Errorf("DELETE terminal run: %d, want 409", w.Code)
	}
	// Fetching a cancelled result reports the cancellation.
	if w := doReq(t, s.Handler(), "GET", "/v1/runs/"+rA.id+"/result", ""); w.Code != http.StatusConflict {
		t.Errorf("GET cancelled result: %d, want 409", w.Code)
	}

	// A resubmission after cancellation executes afresh (seed ≥ 200:
	// instant success).
	specC, _ := Spec{Experiment: "fig1", Seed: 200}.Canonicalize()
	rC, verdict, err := s.submit(specC)
	if err != nil || verdict != CacheMiss {
		t.Fatalf("submit C: %v %q", err, verdict)
	}
	<-rC.done
	if st, _, _, _, _ := rC.snapshot(); st != StateDone {
		t.Errorf("post-cancel run state %q, want done", st)
	}
}

// Batch submission admits per item: valid specs queue or join, invalid
// ones report errors, and overflow is rejected item-by-item.
func TestBatchSubmission(t *testing.T) {
	s := New(Config{Workers: 1, QueueDepth: 1, Version: "test"})
	gate := make(chan struct{})
	started := make(chan uint64, 8)
	s.executor = stubExecutor(gate, started)
	defer func() {
		close(gate)
		s.Drain()
	}()

	// Park the worker so batch admission is deterministic.
	blocker, _ := Spec{Experiment: "fig1", Seed: 1}.Canonicalize()
	if _, _, err := s.submit(blocker); err != nil {
		t.Fatal(err)
	}
	<-started

	batch := `{"specs":[
		{"experiment":"fig1","seed":1},
		{"experiment":"no-such"},
		{"experiment":"fig1","seed":2},
		{"experiment":"fig1","seed":3}
	]}`
	w := doReq(t, s.Handler(), "POST", "/v1/batches", batch)
	if w.Code != http.StatusOK {
		t.Fatalf("batch: %d %s", w.Code, w.Body.String())
	}
	var resp batchResponse
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Items) != 4 {
		t.Fatalf("%d items, want 4", len(resp.Items))
	}
	if resp.Items[0].Cache != CacheJoin {
		t.Errorf("item 0: %+v, want join with the parked run", resp.Items[0])
	}
	if resp.Items[1].State != "invalid" || resp.Items[1].Error == "" {
		t.Errorf("item 1: %+v, want invalid", resp.Items[1])
	}
	if resp.Items[2].State != StateQueued || resp.Items[2].Cache != CacheMiss {
		t.Errorf("item 2: %+v, want queued miss", resp.Items[2])
	}
	if resp.Items[3].State != "rejected" {
		t.Errorf("item 3: %+v, want rejected (queue full)", resp.Items[3])
	}
}

// Result formats: the JSON document renders as text tables and CSV,
// and the trace endpoint serves the Chrome stream when requested.
func TestResultFormatsAndTrace(t *testing.T) {
	s := New(Config{Workers: 1, QueueDepth: 4, Version: "test"})
	defer s.Drain()

	w := doReq(t, s.Handler(), "POST", "/v1/runs?wait=1",
		`{"experiment":"fig1","reps":1,"scale":8,"trace":true,"metrics":true}`)
	if w.Code != http.StatusOK {
		t.Fatalf("POST: %d %s", w.Code, w.Body.String())
	}
	var doc ResultDoc
	if err := json.Unmarshal(w.Body.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	if doc.TraceBytes == 0 {
		t.Error("trace requested but trace_bytes is 0")
	}

	text := doReq(t, s.Handler(), "GET", "/v1/runs/"+doc.ID+"/result?format=text", "")
	if text.Code != http.StatusOK || !strings.Contains(text.Body.String(), "== ") {
		t.Errorf("text format: %d %q", text.Code, firstLine(text.Body.String()))
	}
	csv := doReq(t, s.Handler(), "GET", "/v1/runs/"+doc.ID+"/result?format=csv", "")
	if csv.Code != http.StatusOK || !strings.HasPrefix(csv.Body.String(), "# table: ") {
		t.Errorf("csv format: %d %q", csv.Code, firstLine(csv.Body.String()))
	}
	if w := doReq(t, s.Handler(), "GET", "/v1/runs/"+doc.ID+"/result?format=yaml", ""); w.Code != http.StatusBadRequest {
		t.Errorf("unknown format: %d, want 400", w.Code)
	}
	tr := doReq(t, s.Handler(), "GET", "/v1/runs/"+doc.ID+"/trace", "")
	if tr.Code != http.StatusOK || tr.Body.Len() != doc.TraceBytes {
		t.Errorf("trace: %d, %d bytes, want %d", tr.Code, tr.Body.Len(), doc.TraceBytes)
	}

	// A spec without tracing 404s on the trace endpoint.
	w2 := doReq(t, s.Handler(), "POST", "/v1/runs?wait=1", `{"experiment":"fig1","reps":1,"scale":8}`)
	var doc2 ResultDoc
	if err := json.Unmarshal(w2.Body.Bytes(), &doc2); err != nil {
		t.Fatal(err)
	}
	if w := doReq(t, s.Handler(), "GET", "/v1/runs/"+doc2.ID+"/trace", ""); w.Code != http.StatusNotFound {
		t.Errorf("trace without tracing: %d, want 404", w.Code)
	}
}

func firstLine(s string) string {
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		return s[:i]
	}
	return s
}

// Submission validation surfaces as 400 with a JSON error body.
func TestSubmitValidation(t *testing.T) {
	s := New(Config{Workers: 1, Version: "test"})
	defer s.Drain()
	for _, body := range []string{
		``,
		`{`,
		`{"experiment":"no-such-experiment"}`,
		`{"experiment":"fig1","bogus":1}`,
		`{"experiment":"fig1","perturb":"zap"}`,
		`{"experiment":"fig1","reps":-1}`,
	} {
		w := doReq(t, s.Handler(), "POST", "/v1/runs", body)
		if w.Code != http.StatusBadRequest {
			t.Errorf("POST %q: %d, want 400", body, w.Code)
		}
		var e errorDoc
		if err := json.Unmarshal(w.Body.Bytes(), &e); err != nil || e.Error == "" {
			t.Errorf("POST %q: error body %q", body, w.Body.String())
		}
	}
	if w := doReq(t, s.Handler(), "GET", "/v1/runs/deadbeef", ""); w.Code != http.StatusNotFound {
		t.Errorf("GET unknown run: %d, want 404", w.Code)
	}
}

// Drain stops admission with 503 and reports draining on healthz.
func TestDrainRejectsNewWork(t *testing.T) {
	s := New(Config{Workers: 1, Version: "test"})
	s.executor = stubExecutor(nil, nil)
	s.Drain()
	if w := doReq(t, s.Handler(), "POST", "/v1/runs", `{"experiment":"fig1","seed":200}`); w.Code != http.StatusServiceUnavailable {
		t.Errorf("submit while draining: %d, want 503", w.Code)
	}
	w := doReq(t, s.Handler(), "GET", "/v1/healthz", "")
	var h healthDoc
	if err := json.Unmarshal(w.Body.Bytes(), &h); err != nil {
		t.Fatal(err)
	}
	if h.Status != "draining" {
		t.Errorf("healthz status %q, want draining", h.Status)
	}
	// Drain is idempotent.
	s.Drain()
}

// The registry, health and metrics endpoints answer.
func TestIntrospectionEndpoints(t *testing.T) {
	s := New(Config{Workers: 1, Version: "test"})
	defer s.Drain()

	w := doReq(t, s.Handler(), "GET", "/v1/experiments", "")
	var infos []ExperimentInfo
	if err := json.Unmarshal(w.Body.Bytes(), &infos); err != nil {
		t.Fatal(err)
	}
	if len(infos) != len(exp.All()) {
		t.Errorf("%d experiments listed, registry has %d", len(infos), len(exp.All()))
	}

	h := doReq(t, s.Handler(), "GET", "/v1/healthz", "")
	if h.Code != http.StatusOK || !strings.Contains(h.Body.String(), `"status": "ok"`) {
		t.Errorf("healthz: %d %s", h.Code, h.Body.String())
	}
	m := doReq(t, s.Handler(), "GET", "/v1/metricsz", "")
	if m.Code != http.StatusOK || !strings.Contains(m.Body.String(), `"cache"`) {
		t.Errorf("metricsz: %d", m.Code)
	}
}

// Different code versions address different cache slots: the same spec
// on servers built from different versions never shares bytes.
func TestVersionPartitionsCache(t *testing.T) {
	a := New(Config{Workers: 1, Version: "v1"})
	b := New(Config{Workers: 1, Version: "v2"})
	a.executor = stubExecutor(nil, nil)
	b.executor = stubExecutor(nil, nil)
	defer a.Drain()
	defer b.Drain()

	spec := `{"experiment":"fig1","seed":200}`
	wa := doReq(t, a.Handler(), "POST", "/v1/runs?wait=1", spec)
	wb := doReq(t, b.Handler(), "POST", "/v1/runs?wait=1", spec)
	if wa.Code != http.StatusOK || wb.Code != http.StatusOK {
		t.Fatalf("submits: %d %d", wa.Code, wb.Code)
	}
	ca, _ := Spec{Experiment: "fig1", Seed: 200}.Canonicalize()
	if ca.Key("v1") == ca.Key("v2") {
		t.Error("cache keys do not separate code versions")
	}
	if s := doReq(t, a.Handler(), "GET", "/v1/runs/"+ca.Key("v2"), ""); s.Code != http.StatusNotFound {
		t.Errorf("v2 key resolved on the v1 server: %d", s.Code)
	}
}

// A failing experiment reports failed, not a daemon crash, and the
// error surfaces on both wait and status paths.
func TestRunFailureIsContained(t *testing.T) {
	s := New(Config{Workers: 1, Version: "test"})
	s.executor = func(Spec, <-chan struct{}) ([]byte, []byte, error) {
		return nil, nil, fmt.Errorf("synthetic failure")
	}
	defer s.Drain()
	w := doReq(t, s.Handler(), "POST", "/v1/runs?wait=1", `{"experiment":"fig1"}`)
	if w.Code != http.StatusInternalServerError || !strings.Contains(w.Body.String(), "synthetic failure") {
		t.Errorf("failed run: %d %s", w.Code, w.Body.String())
	}
	// The daemon still serves.
	if h := doReq(t, s.Handler(), "GET", "/v1/healthz", ""); h.Code != http.StatusOK {
		t.Errorf("healthz after failure: %d", h.Code)
	}
}
