package ule_test

import (
	"repro/internal/cpuset"
	"testing"
	"time"

	"repro/internal/cfs"
	"repro/internal/sim"
	"repro/internal/task"
	"repro/internal/topo"
	"repro/internal/ule"
)

func newULE(n int, seed uint64, cfg ule.Config) (*sim.Machine, *ule.Balancer) {
	m := sim.New(topo.SMP(n), sim.Config{Seed: seed, NewScheduler: cfs.Factory()})
	b := ule.New(cfg)
	m.AddActor(b)
	return m, b
}

// Default configuration: a one-task imbalance is left alone ("the ULE
// scheduler will not migrate threads when a static balance is not
// attainable").
func TestDefaultLeavesOneTaskImbalance(t *testing.T) {
	m, b := newULE(2, 1, ule.Config{})
	for i := 0; i < 3; i++ {
		tk := m.NewTask("t", &task.ComputeForever{Chunk: 1e9})
		m.StartOn(tk, 0)
	}
	// Initial pushes/pulls spread 3-on-0 to 2/1, then stop.
	m.RunFor(5 * time.Second)
	l0, l1 := m.Cores[0].NrRunnable(), m.Cores[1].NrRunnable()
	if l0+l1 != 3 || l0 == 0 || l1 == 0 {
		t.Fatalf("queues %d/%d, want a 2/1 split", l0, l1)
	}
	pushes := b.Pushes
	m.RunFor(5 * time.Second)
	if b.Pushes != pushes {
		t.Errorf("pushes continued on a 2/1 split: %d -> %d", pushes, b.Pushes)
	}
}

// kern.sched.steal_thresh=1 equivalent: MinImbalance 1 lets the push
// balancer move on a one-task difference.
func TestStealThreshOneMigrates(t *testing.T) {
	m, b := newULE(2, 2, ule.Config{MinImbalance: 1, StealThreshold: 1})
	for i := 0; i < 3; i++ {
		tk := m.NewTask("t", &task.ComputeForever{Chunk: 1e9})
		m.StartOn(tk, 0)
	}
	m.RunFor(5 * time.Second)
	if b.Pushes == 0 {
		t.Error("no pushes despite MinImbalance=1")
	}
}

// Idle pull: an idle core steals from a queue with ≥ StealThreshold.
func TestIdlePull(t *testing.T) {
	m, b := newULE(2, 3, ule.Config{})
	short := m.NewTask("short", &task.Seq{Actions: []task.Action{task.Compute{Work: 10e6}}})
	m.StartOn(short, 1)
	for i := 0; i < 2; i++ {
		tk := m.NewTask("hog", &task.ComputeForever{Chunk: 1e9})
		m.StartOn(tk, 0)
	}
	m.RunFor(time.Second)
	if b.Pulls == 0 {
		t.Error("idle core did not pull")
	}
	if l := m.Cores[1].NrRunnable(); l != 1 {
		t.Errorf("core 1 queue %d, want 1 after idle pull", l)
	}
}

// The push period is honoured: pushes happen at ~2/second.
func TestPushPeriod(t *testing.T) {
	// Construct a workload that always has a ≥2 imbalance: 6 tasks
	// pinned... easier: count pushes over time with a perpetually
	// rebuilding clump via affinity release is complex — instead check
	// that pushes are bounded by elapsed/period + 1.
	m, b := newULE(4, 4, ule.Config{})
	for i := 0; i < 8; i++ {
		tk := m.NewTask("t", &task.ComputeForever{Chunk: 1e9})
		m.StartOn(tk, 0)
	}
	m.RunFor(3 * time.Second)
	maxPushes := int(3*time.Second/ule.DefaultConfig().PushInterval) + 1
	if b.Pushes > maxPushes {
		t.Errorf("pushes %d exceed one per period (max %d)", b.Pushes, maxPushes)
	}
}

// ULE respects affinity.
func TestULEAffinity(t *testing.T) {
	m, _ := newULE(4, 5, ule.Config{MinImbalance: 1, StealThreshold: 1})
	var pinned []*task.Task
	for i := 0; i < 6; i++ {
		tk := m.NewTask("pinned", &task.ComputeForever{Chunk: 1e9})
		tk.Affinity = cpuset.Of(0, 1)
		m.Start(tk)
		pinned = append(pinned, tk)
	}
	m.RunFor(3 * time.Second)
	for _, tk := range pinned {
		if tk.CoreID > 1 {
			t.Errorf("task escaped affinity to core %d", tk.CoreID)
		}
	}
}
