// Package eventq implements the time-ordered event queue at the heart of
// the discrete-event simulator.
//
// Events are ordered by (time, sequence): the sequence number is assigned
// at push time, so two events scheduled for the same instant fire in the
// order they were scheduled. That stability matters for determinism —
// without it, heap sibling order would decide whether, say, a balancer
// fires before or after a barrier release at the same nanosecond.
package eventq

// Time is an absolute simulation time in nanoseconds since the start of
// the run. It is redeclared by package sim; eventq keeps its own alias so
// it has no dependencies.
type Time int64

// Event is a scheduled callback. Fire is invoked with the event's time.
type Event struct {
	At   Time
	Fire func(now Time)

	seq   uint64
	index int // heap index, -1 when not queued
}

// Queue is a min-heap of events. The zero value is an empty queue ready
// to use.
type Queue struct {
	heap []*Event
	seq  uint64
}

// Len returns the number of pending events.
func (q *Queue) Len() int { return len(q.heap) }

// Push schedules fn to fire at time at and returns the event handle,
// which can be passed to Remove to cancel it.
func (q *Queue) Push(at Time, fn func(now Time)) *Event {
	e := &Event{At: at, Fire: fn, seq: q.seq}
	q.seq++
	e.index = len(q.heap)
	q.heap = append(q.heap, e)
	q.up(e.index)
	return e
}

// Pop removes and returns the earliest event, or nil if the queue is
// empty.
func (q *Queue) Pop() *Event {
	if len(q.heap) == 0 {
		return nil
	}
	top := q.heap[0]
	last := len(q.heap) - 1
	q.swap(0, last)
	q.heap[last] = nil
	q.heap = q.heap[:last]
	if last > 0 {
		q.down(0)
	}
	top.index = -1
	return top
}

// Peek returns the earliest event without removing it, or nil.
func (q *Queue) Peek() *Event {
	if len(q.heap) == 0 {
		return nil
	}
	return q.heap[0]
}

// Remove cancels a pending event. It is a no-op if the event has already
// fired or been removed. It returns whether the event was removed.
func (q *Queue) Remove(e *Event) bool {
	if e == nil || e.index < 0 || e.index >= len(q.heap) || q.heap[e.index] != e {
		return false
	}
	i := e.index
	last := len(q.heap) - 1
	q.swap(i, last)
	q.heap[last] = nil
	q.heap = q.heap[:last]
	if i < last {
		q.down(i)
		q.up(i)
	}
	e.index = -1
	return true
}

// less orders by time, then by scheduling sequence.
func (q *Queue) less(i, j int) bool {
	a, b := q.heap[i], q.heap[j]
	if a.At != b.At {
		return a.At < b.At
	}
	return a.seq < b.seq
}

func (q *Queue) swap(i, j int) {
	q.heap[i], q.heap[j] = q.heap[j], q.heap[i]
	q.heap[i].index = i
	q.heap[j].index = j
}

func (q *Queue) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !q.less(i, parent) {
			break
		}
		q.swap(i, parent)
		i = parent
	}
}

func (q *Queue) down(i int) {
	n := len(q.heap)
	for {
		left := 2*i + 1
		if left >= n {
			break
		}
		child := left
		if right := left + 1; right < n && q.less(right, left) {
			child = right
		}
		if !q.less(child, i) {
			break
		}
		q.swap(i, child)
		i = child
	}
}
