// Package sim implements the discrete-event multicore machine simulator
// that substitutes for the paper's hardware testbeds (see DESIGN.md §2).
//
// A Machine has one Core per logical CPU of its topology. Each core runs
// at most one task at a time under a pluggable per-core Scheduler; a
// central event queue advances simulated time. Tasks execute Programs
// (compute, sleep, wait-for-condition, exit); the machine performs all
// time accounting — notably each task's cumulative CPU time, the
// numerator of the paper's speed metric.
//
// Determinism: given the same topology, tasks, actors and seed, a run
// produces bit-identical results. All randomness flows from the machine's
// seeded RNG; events at equal times fire in scheduling order.
package sim

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/cpuset"
	"repro/internal/eventq"
	"repro/internal/metrics"
	"repro/internal/task"
	"repro/internal/topo"
	"repro/internal/trace"
	"repro/internal/xrand"
)

// Actor is anything that schedules its own activity on the machine —
// load balancers, workload generators. Start is called once before the
// event loop begins.
type Actor interface {
	Start(m *Machine)
}

// Placer decides which core a newly started task is placed on. The
// default picks the least-loaded allowed core with accurate information;
// the Linux balancer installs a placer that uses per-tick-stale load
// snapshots (reproducing the fork-placement clumping discussed in the
// paper's §2 footnote 1).
type Placer interface {
	Place(m *Machine, t *task.Task) int
}

// Stats aggregates machine-wide counters for a run.
type Stats struct {
	// Migrations counts cross-core task moves, keyed by the label the
	// mover passed to Migrate ("linuxlb", "speedbal", "dwrr", ...).
	Migrations map[string]int
	// ContextSwitches counts dispatches of a different task than the
	// one previously running on the core.
	ContextSwitches int
	// Wakeups counts sleep/block → runnable transitions.
	Wakeups int
	// Events counts processed simulator events (a cost/health metric).
	Events int
}

// TotalMigrations sums migrations across movers.
func (s *Stats) TotalMigrations() int {
	n := 0
	for _, v := range s.Migrations {
		n += v
	}
	return n
}

// Config carries machine construction options.
type Config struct {
	// Seed feeds the machine RNG; actors split their own streams off
	// it.
	Seed uint64
	// NewScheduler builds the per-core scheduling policy. Required.
	NewScheduler func(coreID int) Scheduler
	// SMTContentionFactor is the speed multiplier applied to a core
	// whose SMT sibling context is busy (default 0.65, per the paper's
	// §6 observation that a task sharing a physical core runs slower).
	SMTContentionFactor float64
	// PollInterval is the initial sleep length between checks of a
	// WaitPollSleep waiter (the usleep(1) call in the paper's modified
	// UPC runtime; default 50 µs of effective sleep). Unsuccessful
	// checks back off exponentially to PollMax (default 2 ms).
	PollInterval time.Duration
	// PollMax caps the poll-sleep backoff.
	PollMax time.Duration
	// CheckCost is the CPU cost of one condition check in yield/poll
	// waits (default 1 µs).
	CheckCost time.Duration
	// YieldGroupCheck is the coarsened check interval used when every
	// runnable task on a core is an unreleased yield-waiter — the
	// interleaving grain of a symmetric sched_yield ping-pong (default
	// 1 ms; the waiters burn CPU either way).
	YieldGroupCheck time.Duration
	// Tracer receives scheduling events (migrations, balancer decisions,
	// barrier crossings, run stints). Nil disables tracing; emission
	// sites skip event construction entirely on the nil path.
	Tracer trace.Tracer
	// Metrics receives run counters and distributions. Nil disables
	// metric collection.
	Metrics *metrics.Registry
	// Shards partitions the machine into per-socket event-queue shards:
	// core-bound events (stop events, task sleep timers, core timers)
	// live on their core's shard queue, everything else on the global
	// control queue. The partition never changes simulation results —
	// events still fire in the exact (time, scheduling-order) sequence of
	// a single queue — it only enables the parallel fast path below.
	// Values are clamped to the socket count; 0 or 1 means one shard.
	Shards int
	// ShardParallel lets Run advance shards on parallel goroutines
	// between global events (conservative-lookahead windows), when the
	// run is provably shard-isolated: no tracer, no metrics, every live
	// task confined (by affinity) to one shard. By setting it the caller
	// additionally asserts that registered hooks and task programs are
	// shard-confined — they touch only the firing task's shard, never
	// call Stop/NewTask/RNG mid-run, and synchronize (barriers,
	// releases) only within a shard. The simulator panics on the
	// violations it can detect. Results are byte-identical with the flag
	// on or off; only wall-clock time changes.
	ShardParallel bool
	// WindowMin is the minimum sync-horizon span worth parallelising
	// (default 20 µs of simulated time); shorter windows run
	// sequentially to amortize goroutine coordination.
	WindowMin time.Duration
}

func (c *Config) fill() {
	if c.SMTContentionFactor == 0 {
		c.SMTContentionFactor = 0.65
	}
	if c.PollInterval == 0 {
		c.PollInterval = 50 * time.Microsecond
	}
	if c.PollMax == 0 {
		c.PollMax = 2 * time.Millisecond
	}
	if c.CheckCost == 0 {
		c.CheckCost = time.Microsecond
	}
	if c.YieldGroupCheck == 0 {
		c.YieldGroupCheck = time.Millisecond
	}
	if c.Shards < 1 {
		c.Shards = 1
	}
	if c.WindowMin == 0 {
		c.WindowMin = 20 * time.Microsecond
	}
}

// shardState is the mutable per-shard context of the event loop: the
// shard's clock and the counter deltas its worker accumulates during a
// parallel window, folded into the machine totals in shard order when the
// window closes. Padded so concurrent workers never share a cache line.
type shardState struct {
	// now is the shard-local clock. Outside a parallel window it is
	// meaningless (the machine clock rules); inside one it tracks the
	// shard's own event stream and never crosses the window horizon.
	now   int64
	stats Stats
	live  int // delta: tasks exited in this shard during the window
	_     [64]byte
}

// Machine is the simulated multicore system.
type Machine struct {
	Topo  *topo.Topology
	Cores []*Core
	Stats Stats

	cfg      Config
	events   *eventq.Sharded
	now      int64
	rng      *xrand.RNG
	tasks    []*task.Task
	actors   []Actor
	placer   Placer
	idleFns   []func(c *Core)
	doneFns   []func(t *task.Task)
	startFns  []func(t *task.Task)
	moveFns   []func(t *task.Task, from, to int)
	onlineFns []func(c *Core, online bool)
	nOnline   int
	running  bool
	stopped  bool
	nextTask int
	live     int
	tracer   trace.Tracer
	metrics  *metrics.Registry
	traceSeq uint64
	// sleepTimers holds one reusable wake event per task (indexed by
	// task ID, grown on demand): timed sleeps and poll-wait backoffs are
	// the highest-churn timers in the simulator, and a task has at most
	// one outstanding sleep at a time, so each task's timer and callback
	// closure are allocated exactly once.
	sleepTimers []*eventq.Event

	// Shard layout (fixed at New): socket-aligned so every SMT pair and
	// memory domain lives inside one shard, keeping contention models
	// shard-local. shardOf maps core → shard; shardCores is the inverse.
	nShards    int
	shardOf    []int32
	shardCores []cpuset.Set
	shardStates []shardState
	// shardClosed records whether SMT siblings and memory domains are
	// contained in single shards — a precondition of parallel windows
	// (always true for socket-aligned partitions of sane topologies).
	shardClosed bool
	// window is true while shard workers drain their queues in parallel.
	// Written only between windows; in-window code reads it to pick the
	// shard clock over the machine clock.
	window bool
	// windows and windowEvents count parallel windows opened and the
	// events they processed — observability for tests and benchmarks (a
	// sharded run that never opens a window is a silent perf bug).
	windows      int
	windowEvents int
	// windowsBlocked permanently disables parallel windows: set via
	// BlockWindows by users whose callbacks have machine-global effects
	// the isolation preconditions cannot see (e.g. a stop-on-completion
	// hook).
	windowsBlocked bool
	// groupShard is tryWindow's scratch map for the app-containment
	// check, kept across calls to avoid a per-horizon allocation.
	groupShard map[string]int32
}

// New builds a machine over the topology. The scheduler factory in cfg is
// mandatory.
func New(tp *topo.Topology, cfg Config) *Machine {
	if cfg.NewScheduler == nil {
		panic("sim: Config.NewScheduler is required")
	}
	if err := tp.Validate(); err != nil {
		panic(fmt.Sprintf("sim: invalid topology: %v", err))
	}
	cfg.fill()
	m := &Machine{
		Topo:    tp,
		cfg:     cfg,
		rng:     xrand.New(cfg.Seed),
		tracer:  cfg.Tracer,
		metrics: cfg.Metrics,
	}
	m.Stats.Migrations = make(map[string]int)
	m.partition(cfg.Shards)
	m.events = eventq.NewSharded(m.nShards)
	for i := range tp.Cores {
		c := &Core{id: i, info: &tp.Cores[i], m: m, memDomain: tp.MemDomainOf(i),
			online: true, freq: 1,
			shard: int(m.shardOf[i])}
		c.sh = &m.shardStates[c.shard]
		c.sched = cfg.NewScheduler(i)
		c.sched.Attach(m, i)
		// The stop event is the single hottest timer: it is re-armed on
		// every dispatch, slice boundary and wait check, so each core owns
		// one reusable event and reschedules it in place.
		c.stopEv = eventq.NewEvent(func(now int64) { c.onStop() })
		m.Cores = append(m.Cores, c)
	}
	for _, c := range m.Cores {
		for _, sid := range c.info.SMTSiblings.Cores() {
			if sid != c.id {
				c.smtMates = append(c.smtMates, int32(sid))
				c.shareMates = append(c.shareMates, int32(sid))
			}
		}
		if c.memDomain >= 0 {
			for _, sid := range tp.MemDomains[c.memDomain].Cores.Cores() {
				c.memCores = append(c.memCores, int32(sid))
				if sid != c.id && !c.info.SMTSiblings.Has(sid) {
					c.shareMates = append(c.shareMates, int32(sid))
				}
			}
		}
	}
	m.nOnline = len(m.Cores)
	m.placer = leastLoadedPlacer{}
	return m
}

// partition computes the socket-aligned shard layout: sockets are dealt
// to shards in balanced contiguous runs, and every core inherits its
// socket's shard. Sharding never alters results — it only decides which
// sub-queue holds a core's events — so a shard count above the socket
// count is simply clamped.
func (m *Machine) partition(want int) {
	tp := m.Topo
	// Sockets in first-appearance order (== ascending on sane machines).
	var sockets []int
	sockOf := make(map[int]int) // socket id → dense index
	for i := range tp.Cores {
		s := tp.Cores[i].Socket
		if _, ok := sockOf[s]; !ok {
			sockOf[s] = len(sockets)
			sockets = append(sockets, s)
		}
	}
	n := want
	if n > len(sockets) {
		n = len(sockets)
	}
	m.nShards = n
	m.shardOf = make([]int32, len(tp.Cores))
	m.shardCores = make([]cpuset.Set, n)
	m.shardStates = make([]shardState, n+1) // +1: slot for the control queue
	for i := range tp.Cores {
		sh := int32(sockOf[tp.Cores[i].Socket] * n / len(sockets))
		m.shardOf[i] = sh
		m.shardCores[sh] = m.shardCores[sh].Add(i)
	}
	// Closure check for parallel windows: contention couplings (SMT
	// siblings, memory domains) must not straddle shards, or concurrent
	// workers would read each other's occupancy.
	m.shardClosed = true
	for i := range tp.Cores {
		contained := false
		for _, s := range m.shardCores {
			if s.Contains(tp.Cores[i].SMTSiblings) {
				contained = true
				break
			}
		}
		if !contained {
			m.shardClosed = false
			return
		}
	}
	for _, d := range tp.MemDomains {
		contained := false
		for _, s := range m.shardCores {
			if s.Contains(d.Cores) {
				contained = true
				break
			}
		}
		if !contained {
			m.shardClosed = false
			return
		}
	}
}

// Shards returns the number of event-queue shards (1 when unsharded).
func (m *Machine) Shards() int { return m.nShards }

// ShardOf returns the shard owning the core's events.
func (m *Machine) ShardOf(core int) int { return int(m.shardOf[core]) }

// ShardCores returns the cores of one shard.
func (m *Machine) ShardCores(shard int) cpuset.Set { return m.shardCores[shard] }

// clock returns the simulation clock governing the given core: the
// machine clock, or the core's shard clock inside a parallel window.
func (m *Machine) clock(core int) int64 {
	if m.window {
		return m.shardStates[m.shardOf[core]].now
	}
	return m.now
}

// statsFor returns the Stats sink for events on the given core: the
// machine totals, or the shard's delta block inside a parallel window
// (folded into the totals, in shard order, when the window closes).
func (m *Machine) statsFor(core int) *Stats {
	if m.window {
		return &m.shardStates[m.shardOf[core]].stats
	}
	return &m.Stats
}

// Now returns the current simulation time in nanoseconds. It implements
// part of task.Waker.
func (m *Machine) Now() int64 { return m.now }

// Tracing implements trace.Emitter: instrumentation sites that build
// expensive events should check it first.
func (m *Machine) Tracing() bool { return m.tracer != nil }

// Emit implements trace.Emitter: it stamps the event with the current
// simulated time and the machine-wide emission sequence number, then
// hands it to the configured tracer. No-op without a tracer.
func (m *Machine) Emit(e trace.Event) {
	if m.tracer == nil {
		return
	}
	e.Time = m.now
	e.Seq = m.traceSeq
	m.traceSeq++
	m.tracer.Emit(e)
}

// Metrics implements metrics.Source; nil means metrics are off and
// instrumentation sites must skip recording.
func (m *Machine) Metrics() *metrics.Registry { return m.metrics }

// RNG returns a generator split off the machine stream; each caller gets
// an independent stream so actors do not perturb one another. Splitting
// mutates the machine stream, so it must happen at setup or from global
// events — never inside a parallel shard window.
func (m *Machine) RNG() *xrand.RNG {
	if m.window {
		panic("sim: RNG split inside a parallel shard window")
	}
	return m.rng.Split()
}

// Config returns the machine configuration.
func (m *Machine) Config() Config { return m.cfg }

// Tasks returns all tasks ever added, in creation order.
func (m *Machine) Tasks() []*task.Task { return m.tasks }

// At schedules fn to run at absolute time at (clamped to now). The event
// lands on the global control queue: it may touch any shard, so it is a
// synchronization horizon for parallel windows. Core-confined callbacks
// should prefer AtOn.
func (m *Machine) At(at int64, fn func(now int64)) *eventq.Event {
	if at < m.now {
		at = m.now
	}
	return m.events.Push(m.events.Global(), at, fn)
}

// AtOn schedules fn at absolute time at (clamped to the core's clock) on
// the core's shard queue. The callback must confine itself to that
// core's shard; in exchange it does not bound conservative lookahead,
// so shards keep advancing in parallel across it.
func (m *Machine) AtOn(core int, at int64, fn func(now int64)) *eventq.Event {
	if now := m.clock(core); at < now {
		at = now
	}
	return m.events.Push(int(m.shardOf[core]), at, fn)
}

// atPooled schedules a fire-and-forget callback whose handle is
// discarded; the event struct comes from (and returns to) the queue's
// free list, so steady-state timer churn allocates only fn's closure.
func (m *Machine) atPooled(at int64, fn func(now int64)) {
	if at < m.now {
		at = m.now
	}
	m.events.PushPooled(m.events.Global(), at, fn)
}

// After schedules fn to run d from now.
func (m *Machine) After(d time.Duration, fn func(now int64)) *eventq.Event {
	return m.At(m.now+int64(d), fn)
}

// Cancel removes a pending event scheduled with At/After.
func (m *Machine) Cancel(e *eventq.Event) { m.events.Remove(e) }

// Timer is a reusable scheduled callback: the event and its closure are
// allocated once by NewTimer, and Schedule moves it inside the event
// queue without allocating. Periodic actors (balancer wakes, scheduler
// ticks) should prefer a Timer over repeated At calls.
type Timer struct {
	m     *Machine
	ev    *eventq.Event
	shard int
}

// NewTimer creates an unscheduled reusable timer on the global control
// queue: its callback may touch any core, and every firing is a
// synchronization horizon for parallel windows.
func (m *Machine) NewTimer(fn func(now int64)) *Timer {
	return &Timer{m: m, ev: eventq.NewEvent(fn), shard: m.events.Global()}
}

// NewCoreTimer creates an unscheduled reusable timer bound to the core's
// shard queue. The callback must confine itself to that core's shard
// (its run queue, its tasks, its SMT and memory-domain mates); in
// exchange the timer does not bound conservative lookahead. Per-core
// scheduler ticks and per-core balancer sampling belong here.
func (m *Machine) NewCoreTimer(core int, fn func(now int64)) *Timer {
	return &Timer{m: m, ev: eventq.NewEvent(fn), shard: int(m.shardOf[core])}
}

// now returns the clock governing the timer's shard.
func (t *Timer) now() int64 {
	if t.m.window {
		return t.m.shardStates[t.shard].now
	}
	return t.m.now
}

// Schedule (re)schedules the timer at absolute time at (clamped to now).
// If the timer is already pending it is moved, not duplicated.
func (t *Timer) Schedule(at int64) {
	if now := t.now(); at < now {
		at = now
	}
	t.m.events.Schedule(t.ev, t.shard, at)
}

// ScheduleAfter schedules the timer d from now.
func (t *Timer) ScheduleAfter(d time.Duration) { t.Schedule(t.now() + int64(d)) }

// Stop cancels the timer if pending.
func (t *Timer) Stop() { t.m.events.Remove(t.ev) }

// Pending reports whether the timer is scheduled.
func (t *Timer) Pending() bool { return t.ev.Queued() }

// OnCoreChange registers a hook invoked whenever a task's core
// assignment changes: on first placement (from = -1) and on every
// migration. Balancers that maintain per-core membership lists (package
// speedbal) keep them current through this hook instead of rescanning
// all tasks.
func (m *Machine) OnCoreChange(fn func(t *task.Task, from, to int)) {
	m.moveFns = append(m.moveFns, fn)
}

// OnOnlineChange registers a hook invoked after a core goes offline or
// comes back online (SetCoreOnline). On unplug it fires after the
// core's tasks have been drained to online cores; balancers use it to
// invalidate per-core state (speed samples, tick timers) for cores that
// no longer run anything.
func (m *Machine) OnOnlineChange(fn func(c *Core, online bool)) {
	m.onlineFns = append(m.onlineFns, fn)
}

// OnlineCores returns the number of cores currently online.
func (m *Machine) OnlineCores() int { return m.nOnline }

// SetCoreOnline hot-unplugs (online=false) or replugs (online=true) a
// core, modelling CPU hotplug. Unplugging drains the core's running and
// queued tasks to online cores — breaking single-core affinity the way
// the kernel's select_fallback_rq does when a task's last allowed CPU
// vanishes — and the drained moves are charged as ordinary migrations
// labelled "hotplug". Sleeping and blocked tasks whose last core is
// offline are redirected when they wake. Unplugging the last online
// core panics. No-op when the core is already in the requested state.
func (m *Machine) SetCoreOnline(core int, online bool) {
	if m.window {
		// Hotplug re-places tasks across the whole machine; it can only
		// run from a global event, never from inside a window.
		panic("sim: SetCoreOnline inside a parallel shard window")
	}
	c := m.Cores[core]
	if c.online == online {
		return
	}
	if online {
		c.online = true
		m.nOnline++
		if m.tracer != nil {
			m.Emit(trace.Event{Kind: trace.KindCoreOnline, Core: core})
		}
		if m.metrics != nil {
			m.metrics.Counter("hotplug.online").Inc()
		}
		for _, fn := range m.onlineFns {
			fn(c, true)
		}
		// The replugged core is empty: run the new-idle hooks so
		// balancers can pull work onto it immediately.
		c.dispatch()
		return
	}
	if m.nOnline == 1 {
		panic(fmt.Sprintf("sim: cannot unplug core %d: it is the last online core", core))
	}
	// Settle and detach everything the core holds, then mark it offline
	// and re-place the orphans. An offline core accrues neither busy nor
	// idle time.
	var moved []*task.Task
	if t := c.cur; t != nil {
		c.account()
		c.stopCurrent()
		c.sched.Dequeue(t)
		t.State = task.Runnable
		moved = append(moved, t)
	}
	for _, t := range c.sched.Queued() {
		c.sched.Dequeue(t)
		moved = append(moved, t)
	}
	if c.idle {
		c.idleTime += time.Duration(m.now - c.idleSince)
		c.idle = false
	}
	c.online = false
	m.nOnline--
	m.events.Remove(c.stopEv)
	if m.tracer != nil {
		m.Emit(trace.Event{Kind: trace.KindCoreOffline, Core: core, N: len(moved)})
	}
	if m.metrics != nil {
		m.metrics.Counter("hotplug.offline").Inc()
		if len(moved) > 0 {
			m.metrics.Counter("hotplug.drained").Add(int64(len(moved)))
		}
	}
	for _, t := range moved {
		dst := m.fallbackCore(t)
		m.NoteMigration(t, dst, "hotplug")
		m.enqueue(t, dst, false)
	}
	for _, fn := range m.onlineFns {
		fn(c, false)
	}
}

// fallbackCore picks the least-loaded online core allowed by the task's
// affinity (ties to the lowest ID). When the affinity holds no online
// core — a pinned task whose core was unplugged — the mask is widened
// to all cores, mirroring the kernel's select_fallback_rq.
func (m *Machine) fallbackCore(t *task.Task) int {
	best, bestLoad := -1, 0
	for _, c := range m.Cores {
		if !c.online || !t.Affinity.Has(c.id) {
			continue
		}
		l := c.sched.NrRunnable()
		if best == -1 || l < bestLoad {
			best, bestLoad = c.id, l
		}
	}
	if best >= 0 {
		return best
	}
	t.Affinity = m.Topo.AllCores()
	for _, c := range m.Cores {
		if !c.online {
			continue
		}
		l := c.sched.NrRunnable()
		if best == -1 || l < bestLoad {
			best, bestLoad = c.id, l
		}
	}
	if best == -1 {
		panic(fmt.Sprintf("sim: no online core for task %q", t.Name))
	}
	return best
}

// SetCoreFreq sets the core's dynamic frequency factor (1.0 nominal,
// must be positive). In-progress accounting is settled at the old
// frequency and the core's stop event re-derived at the new one.
func (m *Machine) SetCoreFreq(core int, f float64) {
	if f <= 0 {
		panic(fmt.Sprintf("sim: core %d frequency factor %v not positive", core, f))
	}
	c := m.Cores[core]
	if c.freq == f {
		return
	}
	c.account()
	c.freq = f
	if c.cur != nil {
		c.scheduleStop()
	}
}

// SetCoreStolen sets the fraction of wall time kernel-level activity
// steals from whatever runs on the core, in [0, 1]. 1 freezes the core
// (an interrupt storm): tasks stay resident but make no progress until
// the fraction drops. In-progress accounting is settled at the old
// fraction and the core's stop event re-derived at the new one.
func (m *Machine) SetCoreStolen(core int, s float64) {
	if s < 0 || s > 1 {
		panic(fmt.Sprintf("sim: core %d stolen fraction %v outside [0,1]", core, s))
	}
	c := m.Cores[core]
	if c.stolen == s {
		return
	}
	c.account()
	// Fold the closing segment into the wall-clock steal integral
	// (StolenWall) before the fraction changes.
	now := m.clock(core)
	c.stolenWall += time.Duration(float64(now-c.stolenMark) * c.stolen)
	c.stolenMark = now
	c.stolen = s
	if c.cur != nil {
		c.scheduleStop()
	}
}

// LiveTasks returns the number of tasks created and not yet exited. A
// machine with zero live tasks has drained its workload: no running
// program remains to spawn more.
func (m *Machine) LiveTasks() int { return m.live }

// Windows reports how many parallel shard windows the run has opened;
// WindowEvents reports how many events those windows processed. Both are
// zero for sequential runs — a sharded-parallel run that stays at zero
// means the isolation preconditions never held.
func (m *Machine) Windows() int { return m.windows }

// WindowEvents reports the events processed inside parallel windows.
func (m *Machine) WindowEvents() int { return m.windowEvents }

// BlockWindows permanently disables parallel lookahead windows on this
// machine. Callers must invoke it when they register a callback with
// machine-global effects that tryWindow's isolation preconditions
// cannot detect — the canonical case is a stop-on-completion hook
// (Stop inside a window would truncate other shards' already-fired
// events, so such a run can only be executed sequentially). The sharded
// event queue and its deterministic merge stay active; only the
// parallel drain is withheld.
func (m *Machine) BlockWindows() { m.windowsBlocked = true }

// PendingEvents returns the number of scheduled events — a liveness
// metric: after a run drains, self-rescheduling actors are the only
// thing keeping it non-zero.
func (m *Machine) PendingEvents() int { return m.events.Len() }

// AddActor registers an actor; its Start runs when the event loop begins
// (or immediately if the loop is already running).
func (m *Machine) AddActor(a Actor) {
	m.actors = append(m.actors, a)
	if m.running {
		a.Start(m)
	}
}

// SetPlacer installs the fork-placement policy.
func (m *Machine) SetPlacer(p Placer) { m.placer = p }

// GetPlacer returns the installed fork-placement policy, so a policy
// layered on top (the speed balancer's predictive placement of its
// managed group) can delegate everything else to whatever was there.
func (m *Machine) GetPlacer() Placer { return m.placer }

// OnIdle registers a hook invoked when a core runs out of runnable tasks
// (the Linux new-idle balancing entry point). The hook may enqueue a task
// on the core; dispatch re-runs afterwards.
func (m *Machine) OnIdle(fn func(c *Core)) { m.idleFns = append(m.idleFns, fn) }

// OnTaskDone registers a hook invoked when any task exits.
func (m *Machine) OnTaskDone(fn func(t *task.Task)) { m.doneFns = append(m.doneFns, fn) }

// OnTaskStart registers a hook invoked when any task is admitted
// (Start/StartOn), symmetric to OnTaskDone. The hook fires after the
// task is placed (State Runnable, CoreID set) but before its first
// action is fetched. Admission is a machine-global operation — it
// happens at setup or from global (control-queue) events, never inside
// a parallel shard window — so balancers may use the hook to learn
// about mid-run arrivals: a wake loop that drained because every
// managed thread had exited can re-arm its timers here instead of
// missing every later arrival (the closed-batch bookkeeping bug the
// open-system workloads flushed out).
func (m *Machine) OnTaskStart(fn func(t *task.Task)) { m.startFns = append(m.startFns, fn) }

// NewTask creates a task with the given program, default nice and full
// affinity, but does not start it.
func (m *Machine) NewTask(name string, prog task.Program) *task.Task {
	if m.window {
		// Task creation appends to machine-wide structures and placement
		// scans every core; it belongs to setup or global events.
		panic("sim: NewTask inside a parallel shard window")
	}
	t := &task.Task{
		ID:         m.nextTask,
		Name:       name,
		Prog:       prog,
		Affinity:   m.Topo.AllCores(),
		HomeNode:   -1,
		CoreID:     -1,
		FirstRanAt: -1,
	}
	t.Sched.Weight = task.NiceWeight(0)
	m.nextTask++
	m.live++
	m.tasks = append(m.tasks, t)
	// Pre-grow the sleep-timer table here, at creation time, so the
	// hot sleep path — which may run inside a parallel window — never
	// appends to a machine-wide slice.
	for len(m.sleepTimers) <= t.ID {
		m.sleepTimers = append(m.sleepTimers, nil)
	}
	return t
}

// Start places a new task using the machine placer and makes it runnable.
func (m *Machine) Start(t *task.Task) {
	m.StartOn(t, m.placer.Place(m, t))
}

// StartOn places a new task on the given core and makes it runnable. The
// core must be in the task's affinity.
func (m *Machine) StartOn(t *task.Task, core int) {
	if t.State != task.New {
		panic(fmt.Sprintf("sim: Start of task %q in state %v", t.Name, t.State))
	}
	if !t.Affinity.Has(core) {
		panic(fmt.Sprintf("sim: task %q placed on core %d outside affinity %v", t.Name, core, t.Affinity))
	}
	if !m.Cores[core].online {
		panic(fmt.Sprintf("sim: task %q placed on offline core %d", t.Name, core))
	}
	if t.Sched.Weight == 0 {
		t.Sched.Weight = task.NiceWeight(t.Nice)
	}
	t.StartedAt = m.now
	t.State = task.Runnable
	t.CoreID = core
	if t.HomeNode < 0 {
		// First-touch NUMA placement: pages land on the node of the
		// core the task starts on.
		t.HomeNode = m.Topo.Cores[core].Node
	}
	if m.tracer != nil {
		m.Emit(trace.Event{Kind: trace.KindForkPlace, Core: core, Task: t.ID, TaskName: t.Name, Dst: core})
	}
	for _, fn := range m.moveFns {
		fn(t, -1, core)
	}
	for _, fn := range m.startFns {
		fn(t)
	}
	m.advance(t) // fetch the first action
	if t.State == task.Runnable {
		m.enqueue(t, core, false)
	}
}

// Release implements task.Waker: the condition t was waiting for is now
// satisfied. A blocked task wakes; a spinning/yielding/polling task
// completes its wait at its next check (immediately — same simulated
// time — if it is running right now).
func (m *Machine) Release(t *task.Task) {
	t.Cur.Released = true
	switch t.State {
	case task.Blocked:
		m.wake(t)
	case task.Running:
		// Serviced in event context to keep state transitions
		// non-reentrant; the event fires at the current time.
		m.Cores[t.CoreID].requestStop()
	case task.Runnable, task.Sleeping:
		// Completes at next dispatch / timer wake.
	}
}

// wake moves a sleeping or blocked task back onto its core's run queue.
func (m *Machine) wake(t *task.Task) {
	if t.State != task.Sleeping && t.State != task.Blocked {
		return
	}
	m.statsFor(t.CoreID).Wakeups++
	t.State = task.Runnable
	core := t.CoreID
	if !m.Cores[core].online {
		// The task's core was unplugged while it slept: redirect the
		// wake to an online core (the kernel's select_task_rq fallback),
		// charged as a hotplug migration.
		core = m.fallbackCore(t)
		m.NoteMigration(t, core, "hotplug")
	}
	m.enqueue(t, core, true)
}

// enqueue puts a runnable task on a core's queue and handles preemption.
// Scheduler implementations maintain t.Sched.OnQueue.
func (m *Machine) enqueue(t *task.Task, core int, wakeup bool) {
	c := m.Cores[core]
	if !c.online {
		// Balancers must never move work to an offline core; wake and
		// drain paths redirect before reaching here.
		panic(fmt.Sprintf("sim: enqueue of task %q on offline core %d", t.Name, core))
	}
	t.CoreID = core
	t.LastEnqueuedAt = m.clock(core)
	if wakeup {
		// Arm the wake-to-run latency measurement: the core's next
		// dispatch of this task closes the window against LastEnqueuedAt.
		// A migration before that dispatch re-stamps LastEnqueuedAt, so
		// the measured latency is from the task's last queue entry — the
		// queue whose dispatch actually serviced the wake.
		t.WakeArmed = true
	}
	preempt := c.sched.Enqueue(t, wakeup)
	if c.cur == nil {
		c.dispatch()
		return
	}
	// A yield-waiting current task would voluntarily yield within
	// microseconds of a competitor arriving; fold that into "now".
	if preempt || c.cur.Cur.Kind == task.ExecYieldWait {
		if m.tracer != nil {
			reason := "wakeup-preempt"
			if !preempt {
				reason = "competitor-arrived"
			}
			m.Emit(trace.Event{Kind: trace.KindPreempt, Core: core,
				Task: c.cur.ID, TaskName: c.cur.Name, Reason: reason})
		}
		c.requestStop()
		return
	}
	// No preemption: the current task keeps running, but it is now
	// contended, so make sure a slice-end event exists.
	c.refreshStop()
}

// Migrate moves a runnable (not running) task to the destination core,
// charging the cache-warmup cost. label identifies the mover for the
// migration statistics. Balancers are expected to have checked affinity
// semantics themselves: Linux respects the mask, speedbalancer rewrites
// it. It panics if the task is running; use MigrateNow for
// sched_setaffinity semantics that move a running task.
func (m *Machine) Migrate(t *task.Task, dst int, label string) {
	if t.State == task.Running {
		panic(fmt.Sprintf("sim: migrating running task %q", t.Name))
	}
	src := t.CoreID
	if src == dst {
		return
	}
	if t.Sched.OnQueue {
		m.Cores[src].sched.Dequeue(t)
	}
	m.NoteMigration(t, dst, label)
	if t.Runnable() {
		t.State = task.Runnable
		m.enqueue(t, dst, false)
	}
	// Sleeping/blocked tasks just wake on the new core later.
}

// MigrateNow moves a task to the destination core even if it is
// currently running, modelling sched_setaffinity: "forces a task to be
// moved immediately to another core, without allowing the task to finish
// the run time remaining in its quantum" (§5.2). This is how
// speedbalancer migrates and how the Linux active-balance migration
// thread pushes.
func (m *Machine) MigrateNow(t *task.Task, dst int, label string) {
	if t.State != task.Running {
		m.Migrate(t, dst, label)
		return
	}
	src := t.CoreID
	if src == dst {
		return
	}
	c := m.Cores[src]
	c.account()
	c.stopCurrent()
	c.sched.Dequeue(t)
	m.NoteMigration(t, dst, label)
	t.State = task.Runnable
	m.enqueue(t, dst, false)
	c.dispatch()
}

// NoteMigration records a cross-core move of a task that the caller has
// already detached from its source queue (or that is off-queue): it
// charges the cache-warmup cost and updates counters and the task's core
// assignment. Queue insertion at the destination is the caller's job —
// schedulers that steal internally (DWRR round balancing) insert into
// their own structures.
func (m *Machine) NoteMigration(t *task.Task, dst int, label string) {
	src := t.CoreID
	if src == dst {
		return
	}
	if m.window && m.shardOf[src] != m.shardOf[dst] {
		// Cross-shard moves mutate two shards at once; only global
		// events (balancer ticks, hotplug) may perform them.
		panic(fmt.Sprintf("sim: cross-shard migration of task %q inside a parallel shard window", t.Name))
	}
	t.WarmupLeft += m.Topo.MigrationCost(t.RSS, src, dst)
	t.Migrations++
	t.LastMigratedAt = m.clock(dst)
	st := m.statsFor(dst)
	if st.Migrations == nil {
		st.Migrations = make(map[string]int)
	}
	st.Migrations[label]++
	if m.tracer != nil {
		m.Emit(trace.Event{Kind: trace.KindMigration, Core: dst,
			Task: t.ID, TaskName: t.Name, Src: src, Dst: dst, Label: label})
	}
	if m.metrics != nil {
		m.metrics.Counter("migrations." + label).Inc()
	}
	t.CoreID = dst
	for _, fn := range m.moveFns {
		fn(t, src, dst)
	}
}

// advance drives the task's program forward until it yields an action
// that takes time. It may be called re-entrantly (a barrier release
// advancing waiters on other cores).
func (m *Machine) advance(t *task.Task) {
	for {
		now := m.clock(t.CoreID)
		var a task.Action = task.Exit{}
		if t.Prog != nil {
			a = t.Prog.Next(t, now)
		}
		switch a := a.(type) {
		case task.Compute:
			t.Cur = task.Exec{Kind: task.ExecCompute, WorkLeft: a.Work}
			return
		case task.Sleep:
			t.Cur = task.Exec{Kind: task.ExecSleep, WakeAt: now + int64(a.D)}
			m.sleepUntil(t, t.Cur.WakeAt)
			return
		case task.WaitFor:
			if a.C.Arrive(t, m) {
				continue // condition already satisfied; next action
			}
			switch a.Policy {
			case task.WaitSpin:
				t.Cur = task.Exec{Kind: task.ExecSpin, Cond: a.C, Policy: a.Policy, SpinLeft: -1}
			case task.WaitSpinThenBlock:
				bt := a.Blocktime
				if bt <= 0 {
					bt = 200 * time.Millisecond // KMP_BLOCKTIME default
				}
				t.Cur = task.Exec{Kind: task.ExecSpin, Cond: a.C, Policy: a.Policy, SpinLeft: bt}
			case task.WaitYield:
				t.Cur = task.Exec{Kind: task.ExecYieldWait, Cond: a.C, Policy: a.Policy, CheckLeft: m.cfg.CheckCost}
			case task.WaitPollSleep:
				t.Cur = task.Exec{Kind: task.ExecPollWait, Cond: a.C, Policy: a.Policy, CheckLeft: m.cfg.CheckCost}
			case task.WaitBlock:
				t.Cur = task.Exec{Kind: task.ExecBlocked, Cond: a.C, Policy: a.Policy}
				m.block(t)
				return
			default:
				panic("sim: unknown wait policy")
			}
			if t.Cur.Released {
				// Released during Arrive (cannot happen for barriers,
				// but a permissive condition could); keep going.
				continue
			}
			return
		case task.Exit:
			m.exit(t)
			return
		default:
			panic(fmt.Sprintf("sim: unknown action %T", a))
		}
	}
}

// sleepUntil takes a runnable/running task off its queue for a timed
// sleep. The caller has already set t.Cur. Each task reuses one wake
// timer: a sleeping task can only sleep again after its timer has fired
// (nothing else wakes a timed sleeper), so one outstanding event per
// task suffices and the steady-state path allocates nothing.
func (m *Machine) sleepUntil(t *task.Task, wakeAt int64) {
	m.offQueue(t, task.Sleeping)
	if now := m.clock(t.CoreID); wakeAt < now {
		wakeAt = now
	}
	ev := m.sleepTimers[t.ID]
	if ev == nil {
		ev = eventq.NewEvent(func(now int64) {
			if t.State == task.Sleeping {
				m.wake(t)
			}
		})
		m.sleepTimers[t.ID] = ev
	}
	// The wake timer lives on the shard of the core the task sleeps on:
	// the task will wake exactly there (or be redirected by a global
	// hotplug event, which closes any window first).
	m.events.Schedule(ev, int(m.shardOf[t.CoreID]), wakeAt)
}

// block takes a task off its queue until a Release.
func (m *Machine) block(t *task.Task) {
	m.offQueue(t, task.Blocked)
}

// exit ends the task.
func (m *Machine) exit(t *task.Task) {
	t.Cur = task.Exec{Kind: task.ExecExited}
	m.offQueue(t, task.Done)
	t.FinishedAt = m.clock(t.CoreID)
	if m.window {
		m.shardStates[m.shardOf[t.CoreID]].live++
	} else {
		m.live--
	}
	for _, fn := range m.doneFns {
		fn(t)
	}
}

// offQueue removes a task from its core's queue (handling the case where
// it is the currently running task) and sets the new state. Accounting
// for a running task must already be settled by the caller.
func (m *Machine) offQueue(t *task.Task, st task.State) {
	c := m.Cores[t.CoreID]
	wasCur := c.cur == t
	if wasCur {
		c.stopCurrent()
	}
	if wasCur || t.Sched.OnQueue {
		// The policy tracks the running task internally; Dequeue
		// detaches it in either position.
		c.sched.Dequeue(t)
	}
	t.State = st
	if wasCur {
		c.dispatch()
	}
}

// sharedWith visits every other core whose effective speed depends on
// this core's occupancy — SMT siblings and memory-domain mates
// (precomputed per core at New).
func (m *Machine) sharedWith(c *Core, fn func(o *Core)) {
	for _, s := range c.shareMates {
		fn(m.Cores[s])
	}
}

// settleShared settles accounting on the dependent cores before this
// core's occupancy changes, so their in-progress stints are charged at
// the contention level that actually held.
func (m *Machine) settleShared(c *Core) {
	m.sharedWith(c, func(o *Core) { o.account() })
}

// rearmShared recomputes the dependent cores' stop events after this
// core's occupancy changed: their tasks now retire work at a different
// rate, so previously armed completion times are wrong.
func (m *Machine) rearmShared(c *Core) {
	m.sharedWith(c, func(o *Core) {
		if o.cur != nil {
			o.scheduleStop()
		}
	})
}

// Sync settles in-progress accounting on every core so task ExecTime
// values are exact as of Now. Balancers call this before sampling speeds.
// Machine-wide settlement can only run from a global event; a
// shard-confined balancer uses SyncCores on its own cores instead.
func (m *Machine) Sync() {
	if m.window {
		panic("sim: machine-wide Sync inside a parallel shard window; use SyncCores")
	}
	for _, c := range m.Cores {
		c.account()
	}
}

// SyncCores settles in-progress accounting on the given cores only, so a
// balancer confined to one shard can sample exact ExecTime values from
// inside a parallel window without touching other shards.
func (m *Machine) SyncCores(set cpuset.Set) {
	set.ForEach(func(id int) bool {
		m.Cores[id].account()
		return true
	})
}

// Stop ends the run after the current event. It is a machine-wide
// control action and must not be called from inside a parallel shard
// window — a mid-window stop would depend on shard interleaving.
func (m *Machine) Stop() {
	if m.window {
		panic("sim: Stop inside a parallel shard window")
	}
	m.stopped = true
}

// Run processes events until the given absolute time (inclusive), the
// event queue empties, or Stop is called. It returns the time reached.
//
// With ShardParallel set (and the isolation preconditions holding) the
// loop alternates between global events, processed one at a time in
// strict (time, scheduling-order) sequence, and parallel windows: spans
// with no global event, during which every shard's worker drains its own
// queue on its own goroutine. Results are identical either way; see
// tryWindow for the argument.
func (m *Machine) Run(until int64) int64 {
	if !m.running {
		m.running = true
		for _, a := range m.actors {
			a.Start(m)
		}
	}
	parallel := m.cfg.ShardParallel && m.nShards > 1 && m.shardClosed
	for !m.stopped {
		if parallel && m.tryWindow(until) {
			continue
		}
		e := m.events.Peek()
		if e == nil || e.At > until {
			break
		}
		m.events.Pop()
		if e.At > m.now {
			m.now = e.At
		}
		m.Stats.Events++
		e.Fire(e.At)
		// Pooled fire-and-forget events go back to the free list; Release
		// is a no-op for caller-owned or re-scheduled events.
		m.events.Release(e)
	}
	if m.now < until && !m.stopped {
		m.now = until
	}
	return m.now
}

// tryWindow opens a parallel window up to the next global event (or the
// run limit) if the span is worth it and the run is shard-isolated right
// now. It reports whether a window ran.
//
// Why results cannot differ from the sequential order: shard events
// never interact across shards — their callbacks touch only their own
// shard's cores and tasks (affinity containment checked below; SMT and
// memory-domain closure checked at New; the remaining obligations are
// asserted by the ShardParallel contract and enforced by panics and the
// race detector). Two events on different shards therefore commute, and
// any interleaving — including the fully-parallel one — produces the
// same state at the horizon as the sequential (time, seq) order. Within
// a shard the worker preserves the exact sequential order. Tracing and
// metrics are off (checked below), so no observer can see the
// cross-shard interleaving either.
func (m *Machine) tryWindow(until int64) bool {
	if m.tracer != nil || m.metrics != nil || m.windowsBlocked {
		return false
	}
	horizon := until + 1
	if g := m.events.PeekGlobal(); g != nil && g.At < horizon {
		horizon = g.At
	}
	if horizon-m.now < int64(m.cfg.WindowMin) {
		return false
	}
	// Parallelism pays only when at least two shards have work before
	// the horizon.
	active := 0
	for s := 0; s < m.nShards; s++ {
		if h := m.events.ShardPeek(s); h != nil && h.At < horizon {
			active++
		}
	}
	if active < 2 {
		return false
	}
	// Isolation: every live task must be confined by affinity to the
	// shard it currently sits on, or a wake/enqueue could cross shards.
	// Grouped tasks (one application) must additionally share a shard:
	// task-exit hooks mutate per-app state (spmd.App completion counts)
	// from whichever shard worker retires the task, so an app split
	// across shards would race even though each task is contained.
	if m.groupShard == nil {
		m.groupShard = make(map[string]int32, 16)
	}
	clear(m.groupShard)
	for _, t := range m.tasks {
		switch t.State {
		case task.New, task.Done:
			continue
		}
		sh := m.shardOf[t.CoreID]
		if !m.shardCores[sh].Contains(t.Affinity) {
			return false
		}
		if t.Group != "" {
			if prev, ok := m.groupShard[t.Group]; ok && prev != sh {
				return false
			}
			m.groupShard[t.Group] = sh
		}
	}
	m.runWindow(horizon)
	return true
}

// runWindow drains every shard queue up to (strictly before) horizon,
// one goroutine per shard with pending work, then folds the per-shard
// clocks and counter deltas back into the machine, in shard order.
func (m *Machine) runWindow(horizon int64) {
	for s := range m.shardStates {
		m.shardStates[s].now = m.now
	}
	m.events.BeginWindow()
	m.window = true
	var wg sync.WaitGroup
	for s := 1; s < m.nShards; s++ {
		if h := m.events.ShardPeek(s); h == nil || h.At >= horizon {
			continue
		}
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			m.drainShard(s, horizon)
		}(s)
	}
	m.drainShard(0, horizon)
	wg.Wait()
	m.window = false
	m.events.EndWindow()
	m.windows++
	for s := 0; s < m.nShards; s++ {
		sh := &m.shardStates[s]
		if sh.now > m.now {
			m.now = sh.now
		}
		m.windowEvents += sh.stats.Events
		m.Stats.Events += sh.stats.Events
		m.Stats.ContextSwitches += sh.stats.ContextSwitches
		m.Stats.Wakeups += sh.stats.Wakeups
		for label, n := range sh.stats.Migrations {
			m.Stats.Migrations[label] += n
		}
		m.live -= sh.live
		sh.stats = Stats{}
		sh.live = 0
	}
}

// drainShard is one window worker: it fires the shard's events in
// (time, seq) order until the queue is empty or the next event is at or
// past the horizon. Events it fires may push more shard-local events,
// which it also drains.
func (m *Machine) drainShard(s int, horizon int64) {
	sh := &m.shardStates[s]
	for {
		e := m.events.ShardPopBefore(s, horizon)
		if e == nil {
			return
		}
		if e.At > sh.now {
			sh.now = e.At
		}
		sh.stats.Events++
		e.Fire(e.At)
		m.events.ShardRelease(e)
	}
}

// RunFor processes events for d of simulated time.
func (m *Machine) RunFor(d time.Duration) int64 { return m.Run(m.now + int64(d)) }

// leastLoadedPlacer is the default accurate placement policy: the
// lowest-loaded allowed core, ties to the lowest ID.
type leastLoadedPlacer struct{}

func (leastLoadedPlacer) Place(m *Machine, t *task.Task) int {
	best, bestLoad := -1, 0
	for _, c := range m.Cores {
		if !c.online || !t.Affinity.Has(c.id) {
			continue
		}
		l := c.sched.NrRunnable()
		if best == -1 || l < bestLoad {
			best, bestLoad = c.id, l
		}
	}
	if best == -1 {
		panic(fmt.Sprintf("sim: no allowed core for task %q (affinity %v)", t.Name, t.Affinity))
	}
	return best
}

// RoundRobinPlacer places the i-th started task on the i-th core of the
// allowed set, wrapping — the initial distribution speedbalancer enforces
// (§5.2: "each of the threads gets pinned ... in round-robin fashion").
type RoundRobinPlacer struct{ n int }

// Place implements Placer. Offline cores are skipped (keeping the
// round-robin position advancing past them); if every allowed core is
// offline the affinity is widened like the kernel's fallback path.
func (p *RoundRobinPlacer) Place(m *Machine, t *task.Task) int {
	cores := t.Affinity.Cores()
	for range cores {
		c := cores[p.n%len(cores)]
		p.n++
		if m.Cores[c].online {
			return c
		}
	}
	return m.fallbackCore(t)
}
