// Package lbos is a reproduction of "Load Balancing on Speed" (Hofmeyr,
// Iancu, Blagojević — PPoPP 2010): user-level speed balancing for SPMD
// parallel applications on multicore systems, together with the
// simulated multicore substrate, the baselines it is evaluated against
// (Linux queue-length load balancing, DWRR, FreeBSD ULE, static
// pinning), the NAS-like benchmark models, and the experiment harness
// that regenerates every table and figure of the paper's evaluation.
//
// # Quick start
//
//	sys := lbos.NewSystem(lbos.Tigerton(), lbos.WithSeed(42))
//	app := sys.BuildApp(lbos.AppSpec{
//	        Name: "solver", Threads: 16, Iterations: 100,
//	        WorkPerIteration: 50 * lbos.Millisecond,
//	        Model: lbos.UPC(),
//	})
//	bal := sys.SpeedBalance(app, lbos.SpeedConfig{})
//	sys.RunUntil(app)
//	fmt.Println(app.Elapsed(), app.Speedup(), bal.Migrations)
//
// The three layers underneath are available for finer control:
// machines and scheduling domains (NewSystem options), tasks and
// programs (System.Machine), and the experiment harness
// (RunExperiment / Experiments).
package lbos

import (
	"io"
	"time"

	"repro/internal/cfs"
	"repro/internal/competing"
	"repro/internal/cpuset"
	"repro/internal/dwrr"
	"repro/internal/exp"
	"repro/internal/linuxlb"
	"repro/internal/metrics"
	"repro/internal/npb"
	"repro/internal/perturb"
	"repro/internal/sim"
	"repro/internal/speedbal"
	"repro/internal/spmd"
	"repro/internal/task"
	"repro/internal/topo"
	"repro/internal/trace"
	"repro/internal/ule"
)

// Millisecond is the work equivalent of one millisecond on a unit-speed
// core (work is measured in speed-1.0 nanoseconds).
const Millisecond = 1e6

// Re-exported substrate types. The aliases make the internal packages'
// types part of the public API without duplicating them.
type (
	// Topology describes a simulated machine (cores, caches, NUMA
	// nodes, scheduling domains, memory-bandwidth domains).
	Topology = topo.Topology
	// Machine is the discrete-event simulator.
	Machine = sim.Machine
	// Task is the unit of scheduling.
	Task = task.Task
	// App is a running SPMD application.
	App = spmd.App
	// AppSpec describes an SPMD application.
	AppSpec = spmd.Spec
	// Model is a programming-model preset (barrier wait policy).
	Model = spmd.Model
	// Benchmark is a calibrated NAS-like benchmark model.
	Benchmark = npb.Benchmark
	// SpeedConfig tunes the speed balancer (zero value = the paper's
	// parameters).
	SpeedConfig = speedbal.Config
	// SpeedBalancer is the paper's user-level balancer.
	SpeedBalancer = speedbal.Balancer
	// LinuxConfig tunes the Linux-model load balancer.
	LinuxConfig = linuxlb.Config
	// CPUSet is a set of core IDs.
	CPUSet = cpuset.Set
	// Experiment regenerates one paper table or figure.
	Experiment = exp.Experiment
	// ExperimentContext carries repetitions/scale/seed.
	ExperimentContext = exp.Context
	// ResultTable is a rendered experiment result.
	ResultTable = exp.Table
	// Tracer receives the simulator's scheduling events (see WithTracer).
	Tracer = trace.Tracer
	// TraceEvent is one scheduling event.
	TraceEvent = trace.Event
	// TraceRing is a bounded in-memory event buffer.
	TraceRing = trace.Ring
	// MetricsRegistry collects scheduler counters, gauges and histograms
	// (see WithMetrics).
	MetricsRegistry = metrics.Registry
	// PerturbConfig describes a deterministic fault-injection mix:
	// kernel-noise bursts, core hot-unplug/replug, per-core frequency
	// drift and interrupt storms (see System.Inject).
	PerturbConfig = perturb.Config
	// PerturbInjector drives a PerturbConfig's schedule on one machine.
	PerturbInjector = perturb.Injector
)

// Canned perturbation profiles and the -perturb flag parser.
var (
	// KernelNoise is IRQ/SMM-style theft: invisible to run queues,
	// visible to speed measurement.
	KernelNoise = perturb.DefaultNoise
	// KthreadNoise is schedulable noise: pinned nice −20 daemons whose
	// bursts land on run queues, goading queue-length balancers.
	KthreadNoise = perturb.KthreadNoise
	// HotplugChurn unplugs and replugs cores.
	HotplugChurn = perturb.DefaultHotplug
	// FreqDrift makes per-core frequency factors walk randomly.
	FreqDrift = perturb.DefaultFreq
	// IRQStorm freezes one socket at a time.
	IRQStorm = perturb.DefaultStorm
	// ParsePerturb parses a comma-separated family list ("noise,
	// kthread, hotplug, freq, storm, all") into a PerturbConfig.
	ParsePerturb = perturb.Parse
)

// NewTraceRing builds an event buffer keeping the most recent cap
// events (pass it to WithTracer).
func NewTraceRing(cap int) *TraceRing { return trace.NewRing(cap) }

// NewMetricsRegistry builds an empty metrics registry (pass it to
// WithMetrics).
func NewMetricsRegistry() *MetricsRegistry { return metrics.NewRegistry() }

// WriteChromeTrace exports events as Chrome trace-event JSON, loadable
// in ui.perfetto.dev: one timeline row per core, run stints as slices,
// scheduler decisions as instants.
func WriteChromeTrace(w io.Writer, label string, r *TraceRing) error {
	cw := trace.NewChromeWriter(w)
	cw.BeginCell(label, r.Dropped())
	for _, e := range r.Events() {
		cw.WriteEvent(e)
	}
	return cw.Close()
}

// Machine presets (Table 1 plus extras).
var (
	// Tigerton is the UMA quad-socket quad-core Intel Xeon E7310.
	Tigerton = topo.Tigerton
	// Barcelona is the NUMA quad-socket quad-core AMD Opteron 8350.
	Barcelona = topo.Barcelona
	// Nehalem is a 2-socket 4-core 2-way-SMT machine.
	Nehalem = topo.Nehalem
	// SMP builds a flat UMA machine with n identical cores.
	SMP = topo.SMP
	// Asymmetric builds a flat machine with per-core clock multipliers.
	Asymmetric = topo.Asymmetric
)

// Speed-measure choices for SpeedConfig.Measure (the §7 future-work
// extension: a retired-work performance counter instead of exec/real).
const (
	MeasureCPUShare = speedbal.MeasureCPUShare
	MeasureWorkRate = speedbal.MeasureWorkRate
)

// Programming-model presets (§3: how each runtime's threads wait).
var (
	// UPC yields at barriers (Berkeley UPC default).
	UPC = spmd.UPC
	// UPCSleep polls with usleep (the paper's modified runtime).
	UPCSleep = spmd.UPCSleep
	// MPI yields at barriers.
	MPI = spmd.MPI
	// OpenMPDefault spins for KMP_BLOCKTIME (200 ms) then sleeps.
	OpenMPDefault = spmd.OpenMPDefault
	// OpenMPInfinite polls forever (KMP_BLOCKTIME=infinite).
	OpenMPInfinite = spmd.OpenMPInfinite
)

// Benchmark models calibrated to Table 2.
var (
	EP = npb.EP
	BT = npb.BT
	CG = npb.CG
	FT = npb.FT
	IS = npb.IS
	SP = npb.SP
	// BenchmarkSuite returns all of the above.
	BenchmarkSuite = npb.Suite
)

// Cores builds a CPUSet of the first n cores (taskset-style restriction).
func Cores(n int) CPUSet { return cpuset.All(n) }

// CoreList builds a CPUSet from explicit core IDs.
func CoreList(ids ...int) CPUSet { return cpuset.Of(ids...) }

// System bundles a machine with an OS configuration: per-core
// schedulers plus a load balancer.
type System struct {
	m *sim.Machine
}

// Option configures NewSystem.
type Option func(*config)

type config struct {
	seed     uint64
	osKind   osKind
	linuxCfg linuxlb.Config
	simCfg   sim.Config
}

type osKind int

const (
	osLinux osKind = iota
	osULE
	osDWRR
	osNone
)

// WithSeed sets the RNG seed (runs are pure functions of topology,
// workload and seed).
func WithSeed(seed uint64) Option { return func(c *config) { c.seed = seed } }

// WithULE replaces the Linux balancer with the FreeBSD ULE model.
func WithULE() Option { return func(c *config) { c.osKind = osULE } }

// WithDWRR replaces per-core scheduling and balancing with Distributed
// Weighted Round-Robin.
func WithDWRR() Option { return func(c *config) { c.osKind = osDWRR } }

// WithoutBalancing disables OS load balancing entirely (per-core CFS
// only) — useful for controlled experiments.
func WithoutBalancing() Option { return func(c *config) { c.osKind = osNone } }

// WithLinuxConfig overrides the Linux balancer parameters.
func WithLinuxConfig(cfg LinuxConfig) Option {
	return func(c *config) { c.linuxCfg = cfg }
}

// WithTracer streams every scheduling event (migrations, balancer
// decisions, barrier arrivals, run stints) to t. Tracing observes the
// simulation without perturbing it: a traced run produces bit-identical
// results to an untraced one.
func WithTracer(t Tracer) Option {
	return func(c *config) { c.simCfg.Tracer = t }
}

// WithMetrics collects scheduler counters and distributions into r.
func WithMetrics(r *MetricsRegistry) Option {
	return func(c *config) { c.simCfg.Metrics = r }
}

// NewSystem builds a simulated machine running the configured OS
// (default: CFS per core plus the Linux 2.6.28-style load balancer).
func NewSystem(t *Topology, opts ...Option) *System {
	c := config{linuxCfg: linuxlb.DefaultConfig()}
	for _, o := range opts {
		o(&c)
	}
	c.simCfg.Seed = c.seed
	switch c.osKind {
	case osDWRR:
		c.simCfg.NewScheduler, _ = dwrr.NewFactory(dwrr.DefaultConfig())
	default:
		c.simCfg.NewScheduler = cfs.Factory()
	}
	m := sim.New(t, c.simCfg)
	switch c.osKind {
	case osLinux:
		m.AddActor(linuxlb.New(c.linuxCfg))
	case osULE:
		m.AddActor(ule.Default())
	}
	return &System{m: m}
}

// Machine exposes the underlying simulator for task-level control.
func (s *System) Machine() *Machine { return s.m }

// BuildApp creates an SPMD application without starting it.
func (s *System) BuildApp(spec AppSpec) *App { return spmd.Build(s.m, spec) }

// StartApp builds and starts an application through the OS placement
// path (fork semantics).
func (s *System) StartApp(spec AppSpec) *App {
	a := s.BuildApp(spec)
	a.Start()
	return a
}

// StartPinned builds and starts an application with its threads pinned
// round-robin over the allowed cores.
func (s *System) StartPinned(spec AppSpec) *App {
	a := s.BuildApp(spec)
	a.StartPinned()
	return a
}

// SpeedBalance launches the application under the paper's user-level
// speed balancer: threads are pinned round-robin and then migrated to
// equalise their speeds. A zero SpeedConfig uses the paper's parameters
// (100 ms interval, T_s = 0.9, two-interval block, NUMA blocked).
func (s *System) SpeedBalance(app *App, cfg SpeedConfig) *SpeedBalancer {
	b := speedbal.New(cfg)
	b.Launch(s.m, app)
	return b
}

// Inject composes a deterministic perturbation schedule onto the
// system. The schedule is a pure function of the configuration and the
// system seed, so perturbed runs stay reproducible. Call before the
// run starts; the returned injector's counters (NoiseBursts, Hotplugs,
// FreqSteps, Storms) report what was injected.
func (s *System) Inject(cfg PerturbConfig) *PerturbInjector {
	in := perturb.New(cfg)
	s.m.AddActor(in)
	return in
}

// AddCPUHog pins a compute-only competitor to the given core.
func (s *System) AddCPUHog(core int) *Task { return competing.CPUHog(s.m, core) }

// AddMakeJ runs a make -j style competitor with the given width.
func (s *System) AddMakeJ(width int) *competing.MakeJ {
	mk := &competing.MakeJ{Width: width}
	s.m.AddActor(mk)
	return mk
}

// RunFor advances simulated time by d.
func (s *System) RunFor(d time.Duration) { s.m.RunFor(d) }

// RunUntil runs until every given app completes (or the default 2000 s
// safety limit).
func (s *System) RunUntil(apps ...*App) {
	remaining := len(apps)
	for _, a := range apps {
		a.OnDone(func(*App) {
			remaining--
			if remaining == 0 {
				s.m.Stop()
			}
		})
	}
	s.m.Run(int64(2000 * time.Second))
}

// Experiments lists the registered paper experiments.
func Experiments() []*Experiment { return exp.All() }

// ExperimentByID looks up one experiment.
func ExperimentByID(id string) (*Experiment, error) { return exp.ByID(id) }
