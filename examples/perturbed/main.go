// Perturbed: the same barrier-dominated workload under Linux load
// balancing and under speed balancing, with deterministic kernel-noise
// injection composed onto both runs — the paper's §6.4 regime in
// miniature.
//
// Six of Barcelona's sixteen cores host a pinned nice −20 "kworker"
// daemon that wakes every few milliseconds to burn a few hundred
// microseconds. The daemons' bursts sit on run queues, so the
// queue-length balancer sees them and reacts: it migrates application
// threads off the noisy cores, doubling them up elsewhere and convoying
// every polling barrier behind the displaced threads. The speed
// balancer samples over a 100 ms horizon, so millisecond bursts average
// out — it leaves the placement alone and stays near the noise floor.
//
// The same seed produces the same noise schedule in both runs (and on
// every rerun): fault injection is under the repository's determinism
// contract.
//
//	go run ./examples/perturbed
package main

import (
	"fmt"
	"time"

	lbos "repro"
)

func main() {
	const threads = 16

	spec := lbos.AppSpec{
		Name:             "solver",
		Threads:          threads,
		Iterations:       400,
		WorkPerIteration: 2 * lbos.Millisecond,
		Model:            lbos.OpenMPInfinite(), // polling barriers
		Affinity:         lbos.Cores(16),
	}

	noise := lbos.KthreadNoise()
	noise.Cores = lbos.CoreList(0, 1, 4, 8, 9, 12)
	cfg := lbos.PerturbConfig{Noise: noise}

	// LOAD: Linux queue-length balancing, noise injected.
	sysL := lbos.NewSystem(lbos.Barcelona(), lbos.WithSeed(1))
	inL := sysL.Inject(cfg)
	appL := sysL.StartApp(spec)
	sysL.RunUntil(appL)

	// SPEED: user-level speed balancing on top, same noise, same seed.
	sysS := lbos.NewSystem(lbos.Barcelona(), lbos.WithSeed(1))
	inS := sysS.Inject(cfg)
	appS := sysS.BuildApp(spec)
	bal := sysS.SpeedBalance(appS, lbos.SpeedConfig{})
	sysS.RunUntil(appS)

	fmt.Printf("16 threads / 16 cores, 6 noisy (kthread bursts):\n")
	fmt.Printf("  LOAD : %8v   (%d noise bursts injected)\n",
		appL.Elapsed().Round(time.Millisecond), inL.NoiseBursts())
	fmt.Printf("  SPEED: %8v   (%d noise bursts, %d balancer migrations)\n",
		appS.Elapsed().Round(time.Millisecond), inS.NoiseBursts(), bal.Migrations)
	fmt.Printf("  SPEED improvement: %.1f%%\n",
		100*(appL.Elapsed().Seconds()-appS.Elapsed().Seconds())/appS.Elapsed().Seconds())
}
