// Quickstart: run one SPMD application under speed balancing on the
// simulated Tigerton machine and print per-thread statistics.
//
// The scenario is the paper's central one: an oversubscribed SPMD
// application (12 threads on 8 cores) whose threads must make equal
// progress. Under queue-length balancing the 2-thread cores set the
// pace; speed balancing rotates threads through the fast cores.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"time"

	lbos "repro"
)

func main() {
	const threads, cores = 12, 8

	spec := lbos.AppSpec{
		Name:             "solver",
		Threads:          threads,
		Iterations:       1,
		WorkPerIteration: 3000 * lbos.Millisecond, // 3 s of work per thread
		Model:            lbos.UPC(),              // yield-waiting barriers
		Affinity:         lbos.Cores(cores),
	}

	// Baseline: default Linux load balancing.
	loadSys := lbos.NewSystem(lbos.Tigerton(), lbos.WithSeed(1))
	loadApp := loadSys.StartApp(spec)
	loadSys.RunUntil(loadApp)

	// Speed balancing: same app, managed by the user-level balancer.
	speedSys := lbos.NewSystem(lbos.Tigerton(), lbos.WithSeed(1))
	speedApp := speedSys.BuildApp(spec)
	bal := speedSys.SpeedBalance(speedApp, lbos.SpeedConfig{})
	speedSys.RunUntil(speedApp)

	ideal := time.Duration(float64(threads) * 3000 * lbos.Millisecond / float64(cores))
	fmt.Printf("%d threads on %d cores, 3s of work each (ideal %v):\n\n", threads, cores, ideal)
	fmt.Printf("  LOAD  : %8v   speedup %.2f\n", loadApp.Elapsed().Round(time.Millisecond), loadApp.Speedup())
	fmt.Printf("  SPEED : %8v   speedup %.2f   (%d migrations)\n\n",
		speedApp.Elapsed().Round(time.Millisecond), speedApp.Speedup(), bal.Migrations)

	fmt.Println("per-thread CPU time under SPEED (equal work -> equal share):")
	for _, t := range speedApp.Tasks {
		fmt.Printf("  %-10s exec %8v   migrations %d   final core %d\n",
			t.Name, t.ExecTime.Round(time.Millisecond), t.Migrations, t.CoreID)
	}
}
