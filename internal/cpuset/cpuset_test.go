package cpuset

import (
	"testing"
	"testing/quick"
)

// fromWord builds a Set from a 64-bit mask — the shape most property
// tests draw; multi-word behaviour gets its own cases below.
func fromWord(a uint64) Set {
	var s Set
	s.w[0] = a
	return s
}

// fromWords spreads three 64-bit masks across the low, middle and high
// words of the set so properties exercise the multi-word paths too.
func fromWords(a, b, c uint64) Set {
	var s Set
	s.w[0] = a
	s.w[words/2] = b
	s.w[words-1] = c
	return s
}

func TestOfAndHas(t *testing.T) {
	s := Of(0, 3, 63, 64, MaxCPU-1)
	for c := 0; c < MaxCPU; c++ {
		want := c == 0 || c == 3 || c == 63 || c == 64 || c == MaxCPU-1
		if s.Has(c) != want {
			t.Errorf("Has(%d) = %v, want %v", c, s.Has(c), want)
		}
	}
	if s.Has(-1) || s.Has(MaxCPU) {
		t.Error("Has out of range returned true")
	}
}

func TestRangeAll(t *testing.T) {
	if got, want := Range(2, 5), Of(2, 3, 4); got != want {
		t.Errorf("Range(2,5) = %v, want %v", got, want)
	}
	if got := All(3); got != Of(0, 1, 2) {
		t.Errorf("All(3) = %v", got)
	}
	if !Range(5, 5).Empty() {
		t.Error("empty range not empty")
	}
	// Cross-word range.
	if got := Range(62, 67); got != Of(62, 63, 64, 65, 66) {
		t.Errorf("Range(62,67) = %v", got)
	}
	if got := All(MaxCPU).Count(); got != MaxCPU {
		t.Errorf("All(MaxCPU).Count() = %d", got)
	}
}

func TestAddRemove(t *testing.T) {
	var s Set
	s = s.Add(7)
	if !s.Has(7) || s.Count() != 1 {
		t.Fatalf("after Add(7): %v", s)
	}
	s = s.Add(7) // idempotent
	if s.Count() != 1 {
		t.Error("double Add changed count")
	}
	s = s.Remove(7)
	if !s.Empty() {
		t.Error("Remove did not empty the set")
	}
	s = s.Remove(7) // idempotent
	if !s.Empty() {
		t.Error("double Remove changed the set")
	}
}

func TestAddPanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Errorf("no panic for Add(%d)", MaxCPU)
		}
	}()
	var s Set
	s.Add(MaxCPU)
}

func TestCoresOrderAndFirst(t *testing.T) {
	s := Of(9, 1, 5, 200)
	got := s.Cores()
	want := []int{1, 5, 9, 200}
	if len(got) != len(want) {
		t.Fatalf("Cores = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Cores = %v, want %v", got, want)
		}
	}
	if s.First() != 1 {
		t.Errorf("First = %d", s.First())
	}
	if (Set{}).First() != -1 {
		t.Error("First of empty != -1")
	}
}

func TestNext(t *testing.T) {
	s := Of(3, 64, 130)
	cases := []struct{ from, want int }{
		{-5, 3}, {0, 3}, {3, 3}, {4, 64}, {64, 64}, {65, 130},
		{130, 130}, {131, -1}, {MaxCPU, -1}, {MaxCPU + 7, -1},
	}
	for _, c := range cases {
		if got := s.Next(c.from); got != c.want {
			t.Errorf("Next(%d) = %d, want %d", c.from, got, c.want)
		}
	}
}

func TestForEach(t *testing.T) {
	s := Of(2, 63, 64, 999)
	var got []int
	s.ForEach(func(c int) bool {
		got = append(got, c)
		return true
	})
	want := s.Cores()
	if len(got) != len(want) {
		t.Fatalf("ForEach visited %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ForEach visited %v, want %v", got, want)
		}
	}
	n := 0
	s.ForEach(func(c int) bool {
		n++
		return n < 2
	})
	if n != 2 {
		t.Errorf("early-stop ForEach visited %d cores, want 2", n)
	}
}

func TestString(t *testing.T) {
	cases := []struct {
		s    Set
		want string
	}{
		{Set{}, "{}"},
		{Of(3), "3"},
		{Of(0, 1, 2, 3), "0-3"},
		{Of(0, 1, 2, 8, 10, 11), "0-2,8,10-11"},
		{Of(63, 64, 65), "63-65"},
	}
	for _, c := range cases {
		if got := c.s.String(); got != c.want {
			t.Errorf("%v.String() = %q, want %q", c.s.Cores(), got, c.want)
		}
	}
}

// Set-algebra laws via quick.Check, over multi-word sets.
func TestPropertySetAlgebra(t *testing.T) {
	cfg := &quick.Config{MaxCount: 500}
	if err := quick.Check(func(a1, a2, a3, b1, b2, b3 uint64) bool {
		x, y := fromWords(a1, a2, a3), fromWords(b1, b2, b3)
		return x.Union(y) == y.Union(x) &&
			x.Intersect(y) == y.Intersect(x) &&
			x.Union(y).Contains(x) &&
			x.Contains(x.Intersect(y)) &&
			x.Minus(y).Intersect(y).Empty() &&
			x.Minus(y).Union(x.Intersect(y)) == x
	}, cfg); err != nil {
		t.Error(err)
	}
	if err := quick.Check(func(a, b, c uint64) bool {
		x := fromWords(a, b, c)
		return x.Count() == len(x.Cores())
	}, cfg); err != nil {
		t.Error(err)
	}
}

// Cores round-trips through Of; Next walks exactly Cores.
func TestPropertyCoresRoundTrip(t *testing.T) {
	if err := quick.Check(func(a, b, c uint64) bool {
		x := fromWords(a, b, c)
		if Of(x.Cores()...) != x {
			return false
		}
		i := 0
		for c := x.Next(0); c >= 0; c = x.Next(c + 1) {
			if x.Cores()[i] != c {
				return false
			}
			i++
		}
		return i == x.Count()
	}, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
	// Single-word fast path keeps the same semantics.
	if err := quick.Check(func(a uint64) bool {
		x := fromWord(a)
		return Of(x.Cores()...) == x
	}, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
