// Package spmd models SPMD (single program, multiple data) parallel
// applications: N threads alternating computation phases with barrier
// synchronization, the structure of the OpenMP, UPC and MPI workloads
// evaluated in the paper (§3).
//
// The package provides the barrier condition with the wait-policy
// variants whose interaction with OS load balancing the paper studies —
// polling (spin), sched_yield (UPC/MPI default), usleep polling (the
// paper's modified "LOAD-SLEEP" UPC runtime) and spin-then-block (Intel
// OpenMP's KMP_BLOCKTIME) — plus the App builder used by the workloads in
// package npb.
package spmd

import (
	"fmt"

	"repro/internal/metrics"
	"repro/internal/task"
	"repro/internal/trace"
)

// Barrier is an N-party reusable (generational) barrier, implementing
// task.Cond.
type Barrier struct {
	n       int
	arrived int
	gen     int
	waiters []*task.Task
	// arrivedAt mirrors waiters with each waiter's arrival time, feeding
	// the barrier-wait histogram when the machine collects metrics.
	arrivedAt []int64
	// Crossings counts completed barrier episodes (all N arrived).
	Crossings int
}

// waitBuckets spans barrier waits from 1 µs to ~4 s, geometric ×4.
var waitBuckets = metrics.ExpBuckets(1e3, 4, 12)

// NewBarrier returns a barrier for n parties. It panics if n < 1.
func NewBarrier(n int) *Barrier {
	if n < 1 {
		panic(fmt.Sprintf("spmd: barrier size %d", n))
	}
	return &Barrier{n: n}
}

// N returns the party count.
func (b *Barrier) N() int { return b.n }

// Arrive implements task.Cond. The last arriver releases all waiters and
// proceeds immediately; earlier arrivers wait under their task's policy.
//
// The waker is the simulated machine; when it also implements
// trace.Emitter or metrics.Source (type-asserted here to avoid an
// import cycle on the sim package), arrivals and releases are traced
// and per-waiter wait durations feed the "barrier.wait_ns" histogram.
func (b *Barrier) Arrive(t *task.Task, w task.Waker) bool {
	em, tracing := w.(trace.Emitter)
	tracing = tracing && em.Tracing()
	if tracing {
		em.Emit(trace.Event{Kind: trace.KindBarrierArrive, Core: t.CoreID,
			Task: t.ID, TaskName: t.Name, N: b.n})
	}
	b.arrived++
	if b.arrived < b.n {
		b.waiters = append(b.waiters, t)
		b.arrivedAt = append(b.arrivedAt, w.Now())
		return false
	}
	// Episode complete: open the next generation before releasing, so
	// re-arrivals (a released thread racing around the loop at the same
	// timestamp) land in the new episode.
	b.arrived = 0
	b.gen++
	b.Crossings++
	if src, ok := w.(metrics.Source); ok {
		if reg := src.Metrics(); reg != nil {
			now := w.Now()
			h := reg.Histogram("barrier.wait_ns", waitBuckets)
			for _, at := range b.arrivedAt {
				h.Observe(float64(now - at))
			}
			h.Observe(0) // the last arriver does not wait
		}
	}
	if tracing {
		em.Emit(trace.Event{Kind: trace.KindBarrierRelease, Core: t.CoreID,
			Task: t.ID, TaskName: t.Name, N: b.n})
	}
	ws := b.waiters
	b.waiters = nil
	b.arrivedAt = b.arrivedAt[:0]
	for _, wt := range ws {
		w.Release(wt)
	}
	return true
}

// Waiting returns how many parties are currently waiting.
func (b *Barrier) Waiting() int { return len(b.waiters) }

// Gen returns the current generation (completed episodes).
func (b *Barrier) Gen() int { return b.gen }

// Counter is a simple countdown condition: satisfied for everyone after
// Arrive has been called n times. Unlike Barrier it is not generational;
// it models one-shot events such as "all workers initialised".
type Counter struct {
	remaining int
	done      bool
	waiters   []*task.Task
}

// NewCounter returns a countdown condition for n arrivals.
func NewCounter(n int) *Counter {
	if n < 1 {
		panic(fmt.Sprintf("spmd: counter size %d", n))
	}
	return &Counter{remaining: n}
}

// Arrive implements task.Cond.
func (c *Counter) Arrive(t *task.Task, w task.Waker) bool {
	if c.done {
		return true
	}
	c.remaining--
	if c.remaining <= 0 {
		c.done = true
		ws := c.waiters
		c.waiters = nil
		for _, wt := range ws {
			w.Release(wt)
		}
		return true
	}
	c.waiters = append(c.waiters, t)
	return false
}
