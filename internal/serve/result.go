package serve

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"

	"repro/internal/exp"
	"repro/internal/metrics"
)

// ResultDoc is the JSON result document a run produces — the bytes the
// cache stores and every hit replays. Everything in it is a pure
// function of (code version, canonical workload spec): experiment
// tables, registry metadata, the canonical spec itself. Wall-clock
// measurements are deliberately absent — they would differ between a
// fresh run and a cache hit and break byte identity.
type ResultDoc struct {
	// ID is the content address (Spec.Key) of this document.
	ID string `json:"id"`
	// Version is the code version baked into the ID.
	Version string `json:"version"`
	// Spec is the canonical workload identity that was hashed — the
	// exact bytes of Spec.CanonicalJSON.
	Spec json.RawMessage `json:"spec"`
	// Experiment echoes the registry entry the spec addressed.
	Experiment ExperimentInfo `json:"experiment"`
	// Tables are the experiment's rendered tables (metrics tables
	// appended when the spec asked for them).
	Tables []TableDoc `json:"tables"`
	// TraceBytes is the size of the Chrome trace stream available at
	// /v1/runs/{id}/trace (0 when tracing was off).
	TraceBytes int `json:"trace_bytes,omitempty"`
}

// TableDoc is the JSON form of one exp.Table.
type TableDoc struct {
	Title   string     `json:"title"`
	Columns []string   `json:"columns"`
	Rows    [][]string `json:"rows"`
	Notes   []string   `json:"notes,omitempty"`
}

// executeSpec runs one canonical spec to completion and builds its
// result document. The interrupt channel aborts the experiment grid
// between cells; the resulting error wraps exp.ErrInterrupted. Panics
// from the experiment stack (a failed cell, a misconfigured driver)
// are converted to errors so one bad run never takes the daemon down.
func executeSpec(spec Spec, version string, interrupt <-chan struct{}) (body, traceBytes []byte, err error) {
	defer func() {
		if p := recover(); p != nil {
			if e, ok := p.(error); ok && errors.Is(e, exp.ErrInterrupted) {
				body, traceBytes, err = nil, nil, e
				return
			}
			body, traceBytes, err = nil, nil, fmt.Errorf("serve: %s: run panicked: %v", spec.Experiment, p)
		}
	}()

	e, err := exp.ByID(spec.Experiment)
	if err != nil {
		return nil, nil, err
	}
	ctx, err := spec.Context(interrupt)
	if err != nil {
		return nil, nil, err
	}
	var traceBuf bytes.Buffer
	if spec.Trace {
		ctx.Trace = exp.NewTraceSink(&traceBuf, 0)
	}
	if spec.Metrics {
		ctx.Metrics = metrics.NewAggregate()
	}

	tables := e.Run(ctx)
	if spec.Metrics {
		tables = append(tables, exp.MetricsTables(ctx.Metrics.Snapshot())...)
	}
	if spec.Trace {
		if err := ctx.Trace.Close(); err != nil {
			return nil, nil, fmt.Errorf("serve: closing trace stream: %w", err)
		}
		traceBytes = traceBuf.Bytes()
	}

	doc := ResultDoc{
		ID:      spec.Key(version),
		Version: version,
		Spec:    json.RawMessage(spec.CanonicalJSON()),
		Experiment: ExperimentInfo{
			ID: e.ID, Title: e.Title, PaperRef: e.PaperRef, Expect: e.Expect,
		},
		TraceBytes: len(traceBytes),
	}
	for _, t := range tables {
		doc.Tables = append(doc.Tables, TableDoc{
			Title: t.Title, Columns: t.Columns, Rows: t.Rows, Notes: t.Notes,
		})
	}
	body, err = json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return nil, nil, err
	}
	return append(body, '\n'), traceBytes, nil
}
