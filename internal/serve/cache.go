package serve

import (
	"container/list"
	"sync"
)

// Entry is one cached result: the response document plus its optional
// Chrome trace stream, both immutable once stored.
type Entry struct {
	// Body is the JSON result document — the exact bytes a fresh
	// execution produced and every future hit replays.
	Body []byte
	// Trace is the Chrome trace-event JSON (nil when the spec did not
	// request tracing).
	Trace []byte
}

// size is the entry's accounting weight in bytes.
func (e Entry) size() int64 { return int64(len(e.Body) + len(e.Trace)) }

// Cache is the content-addressed result store: hex SHA-256 keys (see
// Spec.Key) map to immutable result bytes. Determinism is what makes it
// correct — a key pins (code version, canonical workload spec), and the
// run's output bytes are a pure function of that pair — so the cache
// never needs invalidation, only bounded memory: least-recently-used
// entries are evicted once the byte budget is exceeded.
//
// All methods are safe for concurrent use.
type Cache struct {
	mu       sync.Mutex
	maxBytes int64
	curBytes int64
	entries  map[string]*list.Element
	lru      *list.List // front = most recently used
	hits     int64
	misses   int64
	evicted  int64
}

// cacheItem is the LRU list payload.
type cacheItem struct {
	key   string
	entry Entry
}

// NewCache builds a cache bounded to maxBytes of stored result bytes
// (≤ 0 picks a 256 MiB default).
func NewCache(maxBytes int64) *Cache {
	if maxBytes <= 0 {
		maxBytes = 256 << 20
	}
	return &Cache{
		maxBytes: maxBytes,
		entries:  make(map[string]*list.Element),
		lru:      list.New(),
	}
}

// Get returns the entry stored under key, marking it recently used.
func (c *Cache) Get(key string) (Entry, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		c.misses++
		return Entry{}, false
	}
	c.hits++
	c.lru.MoveToFront(el)
	return el.Value.(*cacheItem).entry, true
}

// Put stores an entry under key. A key already present is left intact:
// content addressing means the stored bytes are already the right ones,
// and keeping the first copy preserves byte identity even if a racing
// writer somehow differed.
func (c *Cache) Put(key string, e Entry) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.entries[key]; ok {
		return
	}
	c.entries[key] = c.lru.PushFront(&cacheItem{key: key, entry: e})
	c.curBytes += e.size()
	for c.curBytes > c.maxBytes && c.lru.Len() > 1 {
		oldest := c.lru.Back()
		item := oldest.Value.(*cacheItem)
		c.lru.Remove(oldest)
		delete(c.entries, item.key)
		c.curBytes -= item.entry.size()
		c.evicted++
	}
}

// Stats reports the cache's counters and current footprint.
func (c *Cache) Stats() (hits, misses, evicted int64, entries int, bytes int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses, c.evicted, c.lru.Len(), c.curBytes
}
