// Package clean holds the sanctioned Runner patterns that must never
// fire: snapshotted loop variables, aggregation in the ordered result
// callback, read-only captures, and the explicit escape hatch.
package clean

type RunResult struct{ Elapsed int64 }

type Runner struct{}

func (r *Runner) SubmitFunc(label string, run func() RunResult, fn func(RunResult)) {}

type spec struct{ work int64 }

func measure(s spec, seed uint64) RunResult { return RunResult{Elapsed: s.work} }

// snapshot is the repo convention: the loop variable is frozen into an
// iteration-local before submission.
func snapshot(r *Runner, seeds []uint64) {
	s := spec{work: 100}
	for _, seed := range seeds {
		seed := seed
		r.SubmitFunc("cell",
			func() RunResult { return measure(s, seed) },
			nil)
	}
}

// aggregateInCallback mutates shared state only in the result callback,
// which the Runner delivers serially in submission order.
func aggregateInCallback(r *Runner, seeds []uint64) []int64 {
	var out []int64
	s := spec{work: 7}
	for _, seed := range seeds {
		seed := seed
		r.SubmitFunc("cell",
			func() RunResult { return measure(s, seed) },
			func(res RunResult) { out = append(out, res.Elapsed) })
	}
	return out
}

// bodyLocal state declared inside the loop body is per-iteration.
func bodyLocal(r *Runner, seeds []uint64) {
	for _, seed := range seeds {
		seed := seed
		retries := 0
		_ = retries
		r.SubmitFunc("cell", func() RunResult {
			local := measure(spec{}, seed)
			local.Elapsed *= 2
			return local
		}, nil)
	}
}

// allowed demonstrates the escape hatch for a deliberate shared write.
func allowed(r *Runner, counter *int) {
	r.SubmitFunc("cell", func() RunResult {
		*counter++ //lint:allow-slotsafety intentionally racy debug counter
		return RunResult{}
	}, nil)
}
