// Package trace is the deterministic observability layer of the
// scheduling stack: typed event records for the decisions the paper's
// argument turns on — which thread migrated, which core was measured
// below the speed threshold T_s, how barrier episodes unfold — emitted
// with simulated timestamps only and stamped with a per-machine
// sequence number so equal-time events keep the event queue's
// (time, seq) order.
//
// The package has three parts:
//
//   - Event / Kind: a flat, allocation-free record. One struct covers
//     every kind; the exporter knows which fields each kind carries.
//   - Tracer: the sink interface. Ring is the in-memory ring-buffered
//     implementation; a nil Tracer disables tracing entirely, and every
//     emission point in the simulator guards on that nil before building
//     the record, so untraced runs pay one pointer compare per site
//     (guarded by BenchmarkTracedVsUntraced in internal/exp).
//   - ChromeWriter: a streaming Chrome trace-event JSON exporter whose
//     output loads in chrome://tracing and ui.perfetto.dev as per-core
//     timelines. Its byte output is a pure function of the event
//     sequence — fixed field order, fixed float formatting — which is
//     what lets the experiment harness promise byte-identical trace
//     files at every -parallel level.
//
// Determinism contract: events carry simulated nanoseconds, never wall
// clock, and no map is iterated anywhere on the export path.
package trace

// Kind enumerates the event types the scheduling stack emits.
type Kind uint8

const (
	// KindMigration is a cross-core task move (sim.Machine.NoteMigration):
	// Task/TaskName, Src, Dst, Label (the mover: "speedbal", "linuxlb",
	// "dwrr", ...).
	KindMigration Kind = iota
	// KindBalanceWake is a balancer activation: Core, Label, and for the
	// speed balancer SLocal/SGlobal/Threshold (steps 1–3 of §5.1).
	KindBalanceWake
	// KindBalanceSkip is a balancer deciding not to act: Core, Label,
	// Reason; for per-candidate rejections Src is the candidate core and
	// SK its measured speed (the threshold test of §5.2).
	KindBalanceSkip
	// KindBalancePull is the speed balancer's positive decision, emitted
	// just before the migration with the full evidence: Task, Src, Dst,
	// SLocal, SK, SGlobal, Threshold.
	KindBalancePull
	// KindBarrierArrive is one thread reaching a barrier: Task, Core,
	// N = arrivals so far this episode.
	KindBarrierArrive
	// KindBarrierRelease is the last arrival opening the barrier: Task,
	// Core, N = waiters released (Lemma 1's rotation is read off these).
	KindBarrierRelease
	// KindPreempt is a forced resched of the running task: Core, Task,
	// Reason ("wakeup-preempt", "competitor-arrived").
	KindPreempt
	// KindTimeslice is a slice-expiry rotation: Core, Task.
	KindTimeslice
	// KindForkPlace is initial placement of a new task: Task, Dst.
	KindForkPlace
	// KindRunStint is a completed on-CPU stint, emitted when the task
	// detaches: Core, Task/TaskName, Dur (exported as a Chrome complete
	// event, giving the per-core timeline).
	KindRunStint
	// KindSleeperCredit is CFS clamping a waking sleeper's vruntime to
	// the GENTLE_FAIR_SLEEPERS floor: Core, Task.
	KindSleeperCredit
	// KindRoundAdvance is a DWRR core advancing its round: Core,
	// N = the new round number.
	KindRoundAdvance
	// KindCoreOffline is a core hot-unplug (sim.Machine.SetCoreOnline):
	// Core, N = tasks drained to other cores.
	KindCoreOffline
	// KindCoreOnline is a core replug: Core.
	KindCoreOnline
	// KindNoiseBegin is a kernel-noise or interrupt-storm burst starting
	// on a core: Core, Label (the injector: "noise", "storm"), SK = the
	// stolen fraction now in force, Dur = the planned burst length.
	KindNoiseBegin
	// KindNoiseEnd is the burst ending: Core, Label, SK = the stolen
	// fraction the core returns to (0 unless bursts overlap).
	KindNoiseEnd
	// KindFreqChange is a dynamic frequency step: Core, SK = the new
	// frequency factor (1.0 nominal).
	KindFreqChange
	// KindPredictMigrate is the speed balancer's anticipatory pull: the
	// candidate's realized speed was still above the T_s threshold, but
	// its predicted speed crossed it with sufficient slowest-core
	// probability. It replaces KindBalancePull for such pulls and
	// carries the full audit evidence: Task, Src, Dst, SLocal (local
	// effective speed), SK (the candidate's *realized* speed), SPred
	// (its *predicted* speed — compare against SK to audit
	// mispredictions), SGlobal, Threshold.
	KindPredictMigrate
)

// String names the kind (the Chrome event name for instant events).
func (k Kind) String() string {
	switch k {
	case KindMigration:
		return "migration"
	case KindBalanceWake:
		return "balance-wake"
	case KindBalanceSkip:
		return "balance-skip"
	case KindBalancePull:
		return "balance-pull"
	case KindBarrierArrive:
		return "barrier-arrive"
	case KindBarrierRelease:
		return "barrier-release"
	case KindPreempt:
		return "preempt"
	case KindTimeslice:
		return "timeslice"
	case KindForkPlace:
		return "fork-place"
	case KindRunStint:
		return "run"
	case KindSleeperCredit:
		return "sleeper-credit"
	case KindRoundAdvance:
		return "round-advance"
	case KindCoreOffline:
		return "core-offline"
	case KindCoreOnline:
		return "core-online"
	case KindNoiseBegin:
		return "noise-begin"
	case KindNoiseEnd:
		return "noise-end"
	case KindFreqChange:
		return "freq-change"
	case KindPredictMigrate:
		return "predict-migrate"
	}
	return "unknown"
}

// Event is one trace record. It is a flat value — no pointers, no
// allocation on emit beyond the sink's own storage. Fields beyond Time,
// Seq and Kind are kind-dependent; unused ones stay zero.
type Event struct {
	// Time is the simulated timestamp in nanoseconds. For KindRunStint
	// it is the stint's end; the start is Time − Dur.
	Time int64
	// Seq is the emission sequence number, assigned by the machine.
	// Events at equal Time are ordered by Seq, matching the event
	// queue's (time, seq) scheduling order.
	Seq uint64
	// Kind selects the record type.
	Kind Kind

	// Core is the core the event concerns (the Chrome thread id).
	Core int
	// Task and TaskName identify the task involved, when any.
	Task     int
	TaskName string
	// Src and Dst are source/destination cores of a move or decision.
	Src, Dst int
	// Label identifies the mover or balancer ("speedbal", "linuxlb", ...).
	Label string
	// Reason explains a skip/block/preempt ("numa-block", "below-threshold", ...).
	Reason string
	// N is a small kind-specific count (barrier arrivals, DWRR round).
	N int
	// Dur is a duration in nanoseconds (KindRunStint).
	Dur int64
	// SLocal, SK, SGlobal and Threshold carry the speed-balancing
	// evidence: local core speed, candidate core speed, global average,
	// and T_s (§5.1–§5.2).
	SLocal, SK, SGlobal, Threshold float64
	// SPred is the predicted candidate-core speed behind an
	// anticipatory pull (KindPredictMigrate); SK holds the realized
	// speed of the same core so mispredictions are auditable.
	SPred float64
}

// Tracer is a sink for events. Implementations are used from a single
// simulation goroutine; they need no locking of their own.
//
// A nil Tracer means tracing is off: emission points must check for nil
// before constructing the Event so the untraced hot path does no work.
type Tracer interface {
	Emit(e Event)
}

// Emitter is the stamping façade the simulator machine exposes to
// packages that only hold a task.Waker (the SPMD barrier): Emit fills
// Time and Seq and routes to the configured Tracer; Tracing reports
// whether a Tracer is installed, so callers can skip building records.
type Emitter interface {
	Tracing() bool
	Emit(e Event)
}
