package task

import "time"

// Program supplies a task's behaviour as a sequence of actions. The
// machine calls Next each time the previous action completes; programs
// are written as small state machines (see package spmd for the SPMD
// compute/barrier loop).
type Program interface {
	// Next returns the task's next action. now is the simulation time in
	// nanoseconds. Returning Exit ends the task.
	Next(t *Task, now int64) Action
}

// Action is one step of a task's program.
type Action interface{ isAction() }

// Compute retires Work units of work (one unit = 1 ns on a speed-1.0
// core).
type Compute struct{ Work float64 }

// Sleep takes the task off the run queue for the given duration
// (nanosleep/usleep semantics).
type Sleep struct{ D time.Duration }

// WaitFor waits until the condition C is satisfied, using the given wait
// policy. For WaitSpinThenBlock, Blocktime is the spin budget before
// blocking (the OpenMP KMP_BLOCKTIME).
type WaitFor struct {
	C         Cond
	Policy    WaitPolicy
	Blocktime time.Duration
}

// Exit ends the task.
type Exit struct{}

func (Compute) isAction() {}
func (Sleep) isAction()   {}
func (WaitFor) isAction() {}
func (Exit) isAction()    {}

// WaitPolicy is how a task waits for a condition. The choice is the
// load-balancer-visible difference between synchronization
// implementations that the paper studies in §3 and §6: yielding tasks
// stay on the run queue and count as load; sleeping tasks leave it.
type WaitPolicy int

const (
	// WaitSpin polls continuously, burning CPU (OpenMP with
	// KMP_BLOCKTIME=infinite; "INF" in the paper's figures).
	WaitSpin WaitPolicy = iota
	// WaitYield polls and calls sched_yield between checks (the default
	// UPC and MPI barrier implementations). The task stays runnable.
	WaitYield
	// WaitPollSleep polls and calls usleep between checks (the paper's
	// modified UPC runtime, "LOAD-SLEEP"). The task briefly leaves the
	// run queue on every sleep.
	WaitPollSleep
	// WaitBlock blocks immediately until released.
	WaitBlock
	// WaitSpinThenBlock spins for a budget (KMP_BLOCKTIME, default
	// 200 ms — "DEF" in the paper's figures), then blocks.
	WaitSpinThenBlock
)

// String returns the conventional name of the policy.
func (p WaitPolicy) String() string {
	switch p {
	case WaitSpin:
		return "spin"
	case WaitYield:
		return "yield"
	case WaitPollSleep:
		return "poll-sleep"
	case WaitBlock:
		return "block"
	case WaitSpinThenBlock:
		return "spin-then-block"
	}
	return "invalid"
}

// Cond is a condition a task can wait for (a barrier, a lock, ...).
// Implementations live outside this package (see spmd.Barrier).
type Cond interface {
	// Arrive registers the task's arrival at the condition. It returns
	// true if the condition is satisfied immediately (e.g. last thread
	// at a barrier), in which case the task proceeds without waiting.
	// If false, the task waits; the condition must later call
	// w.Release(t) exactly once for each waiting task.
	Arrive(t *Task, w Waker) bool
}

// Waker is implemented by the machine; conditions use it to wake or
// un-wait tasks when they become satisfied.
type Waker interface {
	// Release marks the condition satisfied for t: a blocked task is
	// woken, a spinning/yielding/polling task completes its wait at its
	// next check.
	Release(t *Task)
	// Now returns the current simulation time in nanoseconds.
	Now() int64
}

// Seq is a Program that runs a fixed slice of actions once, then exits.
type Seq struct {
	Actions []Action
	next    int
}

// Next implements Program.
func (s *Seq) Next(t *Task, now int64) Action {
	if s.next >= len(s.Actions) {
		return Exit{}
	}
	a := s.Actions[s.next]
	s.next++
	return a
}

// Loop is a Program that repeats a body of actions for a fixed number of
// iterations (forever if Iterations <= 0), then exits.
type Loop struct {
	Body       func(iter int) []Action
	Iterations int

	iter    int
	pending []Action
}

// Next implements Program.
func (l *Loop) Next(t *Task, now int64) Action {
	for len(l.pending) == 0 {
		if l.Iterations > 0 && l.iter >= l.Iterations {
			return Exit{}
		}
		l.pending = l.Body(l.iter)
		l.iter++
	}
	a := l.pending[0]
	l.pending = l.pending[1:]
	return a
}

// ComputeForever is a Program that computes without end — the "cpu-hog"
// competing task from the paper's §6.3.
type ComputeForever struct {
	// Chunk is the work granularity per action; any positive value
	// works, larger chunks mean fewer simulator events.
	Chunk float64
}

// Next implements Program.
func (c *ComputeForever) Next(t *Task, now int64) Action {
	chunk := c.Chunk
	if chunk <= 0 {
		chunk = 1e9 // 1 simulated second
	}
	return Compute{Work: chunk}
}
