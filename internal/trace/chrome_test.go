package trace

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func sampleEvents() []Event {
	return []Event{
		{Time: 1000, Seq: 0, Kind: KindForkPlace, Core: 0, Task: 1, TaskName: "ep.1", Dst: 2},
		{Time: 2500, Seq: 1, Kind: KindBalanceWake, Core: 2, Label: "speedbal",
			SLocal: 0.5, SGlobal: 0.45, Threshold: 0.9},
		{Time: 2500, Seq: 2, Kind: KindBalanceSkip, Core: 2, Src: 3, Label: "speedbal",
			Reason: "above-threshold", SK: 0.44, SGlobal: 0.45},
		{Time: 3000, Seq: 3, Kind: KindBalancePull, Core: 2, Task: 4, TaskName: "ep.4",
			Src: 5, Dst: 2, SLocal: 0.5, SK: 0.3, SGlobal: 0.45, Threshold: 0.9},
		{Time: 3000, Seq: 4, Kind: KindMigration, Core: 2, Task: 4, TaskName: "ep.4",
			Src: 5, Dst: 2, Label: "speedbal"},
		{Time: 4001, Seq: 5, Kind: KindRunStint, Core: 2, Task: 4, TaskName: "ep.4", Dur: 1001},
		{Time: 5000, Seq: 6, Kind: KindBarrierArrive, Core: 2, Task: 4, TaskName: "ep.4", N: 3},
	}
}

func render(evs []Event) string {
	var b bytes.Buffer
	cw := NewChromeWriter(&b)
	cw.BeginCell("cell 0", 2)
	for _, e := range evs {
		cw.WriteEvent(e)
	}
	if err := cw.Close(); err != nil {
		panic(err)
	}
	return b.String()
}

// TestChromeWriterValidJSON checks the stream parses as the Chrome
// trace-event wrapper format and carries the expected structure.
func TestChromeWriterValidJSON(t *testing.T) {
	out := render(sampleEvents())
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal([]byte(out), &doc); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, out)
	}
	// process_name + two thread_name metadata (cores 0, 2) + 7 events.
	if len(doc.TraceEvents) != 10 {
		t.Fatalf("got %d trace events, want 10:\n%s", len(doc.TraceEvents), out)
	}
	if doc.TraceEvents[0]["ph"] != "M" {
		t.Errorf("first record is %v, want process_name metadata", doc.TraceEvents[0])
	}
	var sawX, sawI bool
	for _, e := range doc.TraceEvents {
		switch e["ph"] {
		case "X":
			sawX = true
			if e["dur"] != 1.001 {
				t.Errorf("X dur = %v, want 1.001 µs", e["dur"])
			}
			if e["ts"] != 3.0 {
				t.Errorf("X ts = %v, want 3 µs (end − dur)", e["ts"])
			}
		case "i":
			sawI = true
		}
	}
	if !sawX || !sawI {
		t.Errorf("missing event phases: X=%v i=%v", sawX, sawI)
	}
	if !strings.Contains(out, `"dropped_events":2`) {
		t.Errorf("dropped count not recorded:\n%s", out)
	}
}

// TestChromeWriterDeterministic pins byte-level determinism: identical
// event sequences must render to identical bytes.
func TestChromeWriterDeterministic(t *testing.T) {
	a := render(sampleEvents())
	b := render(sampleEvents())
	if a != b {
		t.Errorf("same events rendered differently:\n--- a ---\n%s\n--- b ---\n%s", a, b)
	}
}

// TestChromeWriterEmpty checks a header-only stream (no cells, as a
// trace of an analytic experiment like fig1 produces) is valid JSON.
func TestChromeWriterEmpty(t *testing.T) {
	var b bytes.Buffer
	cw := NewChromeWriter(&b)
	if err := cw.Close(); err != nil {
		t.Fatal(err)
	}
	if !json.Valid(b.Bytes()) {
		t.Fatalf("empty stream is invalid JSON: %s", b.String())
	}
	if got := b.String(); got != `{"traceEvents":[]}` {
		t.Errorf("empty stream = %q", got)
	}
}

// TestChromeWriterMultiCell checks pid assignment and per-cell thread
// metadata reset across BeginCell calls.
func TestChromeWriterMultiCell(t *testing.T) {
	var b bytes.Buffer
	cw := NewChromeWriter(&b)
	cw.BeginCell("config 0 rep 0", 0)
	cw.WriteEvent(Event{Time: 10, Kind: KindTimeslice, Core: 1, Task: 0, TaskName: "a.0"})
	cw.BeginCell("config 0 rep 1", 0)
	cw.WriteEvent(Event{Time: 10, Kind: KindTimeslice, Core: 1, Task: 0, TaskName: "a.0"})
	if err := cw.Close(); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(b.Bytes(), &doc); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	pids := map[float64]bool{}
	threadNames := 0
	for _, e := range doc.TraceEvents {
		if pid, ok := e["pid"].(float64); ok {
			pids[pid] = true
		}
		if e["name"] == "thread_name" {
			threadNames++
		}
	}
	if !pids[1] || !pids[2] {
		t.Errorf("expected pids 1 and 2, got %v", pids)
	}
	if threadNames != 2 {
		t.Errorf("thread_name metadata emitted %d times, want 2 (once per cell)", threadNames)
	}
}
