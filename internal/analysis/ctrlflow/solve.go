package ctrlflow

import "go/ast"

// A Dataflow describes one forward, flow-sensitive analysis over a CFG.
// The state type S is typically a map from types.Object to an abstract
// value; the solver treats it as opaque.
type Dataflow[S any] struct {
	// Entry returns the state on function entry.
	Entry func() S
	// Clone returns an independent copy of a state.
	Clone func(S) S
	// Join merges src into dst (the lattice join) and reports whether
	// dst changed. The solver re-queues a block whenever the state
	// flowing into it changes, so Join must be monotone and the lattice
	// of finite height or the fixpoint will not terminate.
	Join func(dst, src S) bool
	// Transfer applies the effect of one CFG node to the state in place.
	Transfer func(n ast.Node, s S)
}

// Solve runs the worklist algorithm to a fixpoint and returns the state
// flowing *into* each reachable block. Unreachable blocks have no entry
// in the map. Analyzers typically follow with a reporting pass: for each
// reachable block, clone its in-state and replay Transfer node by node,
// emitting diagnostics with full knowledge of the merged state at every
// program point (see ReplayFunc).
func Solve[S any](g *CFG, d Dataflow[S]) map[*Block]S {
	in := map[*Block]S{g.Entry: d.Entry()}
	work := []*Block{g.Entry}
	queued := map[*Block]bool{g.Entry: true}
	// Safety valve: with a monotone Join the fixpoint is reached long
	// before this; a non-monotone analyzer bug degrades to a partial
	// (still sound-to-report-nothing-more) result instead of a hang.
	budget := 64 * (len(g.Blocks) + 1)
	for len(work) > 0 && budget > 0 {
		budget--
		b := work[0]
		work = work[1:]
		queued[b] = false
		s := d.Clone(in[b])
		for _, n := range b.Nodes {
			d.Transfer(n, s)
		}
		for _, succ := range b.Succs {
			if succ == g.Exit {
				continue
			}
			cur, ok := in[succ]
			changed := false
			if !ok {
				in[succ] = d.Clone(s)
				changed = true
			} else {
				changed = d.Join(cur, s)
			}
			if changed && !queued[succ] {
				queued[succ] = true
				work = append(work, succ)
			}
		}
	}
	return in
}

// Replay clones the in-state of each reachable block (in block order) and
// feeds its nodes through fn with the evolving state — the reporting pass
// that follows Solve. fn receives the same (node, state) pairs Transfer
// saw at the fixpoint, so diagnostics observe the merged may/must facts.
func Replay[S any](g *CFG, in map[*Block]S, clone func(S) S, fn func(n ast.Node, s S)) {
	for _, b := range g.Blocks {
		s, ok := in[b]
		if !ok {
			continue
		}
		s = clone(s)
		for _, n := range b.Nodes {
			fn(n, s)
		}
	}
}

// ExitStates collects, for every edge into the exit block, the state at
// the end of the source block together with the node to report at: the
// trailing return statement, or nil when the function falls off the end
// of its body. Leak-style checks (a handle live at one return, released
// at another) compare these per-exit states.
func ExitStates[S any](g *CFG, in map[*Block]S, clone func(S) S, transfer func(n ast.Node, s S)) []ExitState[S] {
	var out []ExitState[S]
	for _, b := range g.Blocks {
		s, ok := in[b]
		if !ok {
			continue
		}
		exits := 0
		for _, succ := range b.Succs {
			if succ == g.Exit {
				exits++
			}
		}
		if exits == 0 {
			continue
		}
		s = clone(s)
		for _, n := range b.Nodes {
			transfer(n, s)
		}
		var ret *ast.ReturnStmt
		if len(b.Nodes) > 0 {
			ret, _ = b.Nodes[len(b.Nodes)-1].(*ast.ReturnStmt)
		}
		for i := 0; i < exits; i++ {
			out = append(out, ExitState[S]{State: s, Return: ret})
		}
	}
	return out
}

// ExitState is the dataflow state on one edge into the exit block.
type ExitState[S any] struct {
	State S
	// Return is the return statement ending the path, or nil when the
	// path falls off the end of the function body.
	Return *ast.ReturnStmt
}
