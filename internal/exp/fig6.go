package exp

import (
	"time"

	"repro/internal/competing"
	"repro/internal/cpuset"
	"repro/internal/npb"
	"repro/internal/sim"
	"repro/internal/spmd"
	"repro/internal/stats"
	"repro/internal/topo"
)

func init() {
	Register(&Experiment{
		ID:       "fig6",
		Title:    "NAS benchmarks sharing the system with make -j",
		PaperRef: "Figure 6 / §6.3",
		Expect: "SPEED performs well against a realistic competitor that uses " +
			"memory, I/O and spawns subprocesses: the SPEED/LOAD run-time ratio " +
			"stays at or below 1 across benchmarks and -j widths.",
		Run: runFig6,
	})
}

func runFig6(ctx *Context) []*Table {
	widths := []int{2, 4, 8, 16}
	benches := []npb.Benchmark{npb.EP, npb.FT, npb.IS, npb.CG}

	cols := []string{"benchmark"}
	for _, w := range widths {
		cols = append(cols, "-j"+itoa(w))
	}
	t := &Table{
		Title:   "SPEED/LOAD run-time ratio sharing 16 cores with make -j (ratios < 1 favour SPEED)",
		Columns: cols,
	}

	run := NewRunner(ctx)
	config := 3000
	for _, b := range benches {
		sps := make([]*stats.Sample, len(widths))
		lbs := make([]*stats.Sample, len(widths))
		for i, w := range widths {
			spec := ScaleSpec(ctx, b.Spec(16, spmd.UPC(), cpuset.All(16)))
			mk := func(m *sim.Machine) {
				m.AddActor(&competing.MakeJ{Width: w, Duration: time.Hour})
			}
			sp, lb := &stats.Sample{}, &stats.Sample{}
			sps[i], lbs[i] = sp, lb
			run.Repeat(config, RunOpts{
				Topo: topo.Tigerton, Strategy: StratSpeed, Spec: spec, Setup: mk,
			}, func(_ int, r RunResult) { sp.AddDuration(r.Elapsed) })
			config++
			run.Repeat(config, RunOpts{
				Topo: topo.Tigerton, Strategy: StratLoad, Spec: spec, Setup: mk,
			}, func(_ int, r RunResult) { lb.AddDuration(r.Elapsed) })
			config++
			run.Then(func() { ctx.Logf("fig6: %s -j%d done", b.Name, w) })
		}
		run.Then(func() {
			row := []any{b.Name}
			for i := range widths {
				row = append(row, sps[i].Mean()/lbs[i].Mean())
			}
			t.AddRow(row...)
		})
	}
	run.Wait()
	t.Note("make -j keeps its job width in flight for the whole run (jobs compute, sleep on I/O, exit and respawn); jobs are unpinned and balanced by the OS in both configurations")
	return []*Table{t}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [8]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}
