// Package eventown implements the pooled-event ownership analyzer.
//
// The event queue's pooling contract (internal/eventq) is the hottest
// sharp edge in the simulator: PushPooled hands out an *Event drawn from
// a free list, Release returns it, and the struct is recycled for an
// unrelated timer the moment it is back on the list. A handle misused
// after that point corrupts whatever timer inherited the struct — a
// determinism bug that surfaces as a wrong migration thousands of events
// later, which is exactly the hazard class the PR 6 fuzzer could only
// find dynamically. This analyzer finds it at lint time.
//
// eventown tracks every local variable bound to a PushPooled result
// through the function's control-flow graph (internal/analysis/ctrlflow)
// and flags, with full branch/loop sensitivity:
//
//   - use after Release: any read of a handle that has definitely been
//     released, or may have been released on some path reaching the use
//     — including a Release inside one arm of a branch followed by a use
//     after the join, which no per-statement check can see;
//   - double Release: a second Release (or Remove) of the same handle,
//     including the may-happen-again form at a loop head;
//   - Schedule on a released handle: rescheduling a recycled struct
//     corrupts the unrelated timer that now owns it;
//   - inconsistent release across exit paths: a handle released on one
//     return path but still live on another — the early-return leak
//     shape. A handle that is never released anywhere is NOT flagged:
//     the fire-and-forget idiom hands the struct back via the event
//     loop's own Release after firing.
//
// Ownership transfers end tracking: returning the handle, storing it in
// a field, slice, map, or global (an owner now holds it), sending it on
// a channel, passing it to a function, or capturing it in a function
// literal. The analyzer matches queue receivers by named type (Queue,
// Sharded), so corpora and test doubles are covered.
//
// //lint:allow-eventown suppresses a finding that is deliberate, e.g. a
// pool test comparing a released handle's identity to prove reuse.
package eventown

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/analysis"
	"repro/internal/analysis/ctrlflow"
)

// Analyzer is the eventown analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "eventown",
	Doc:  "track pooled event handles through branches and loops: use-after-Release, double Release, Schedule on released, inconsistent release across returns",
	Run:  run,
}

// queueTypes names the receiver types whose methods transfer pooled
// ownership.
var queueTypes = map[string]bool{"Queue": true, "Sharded": true}

// absState is the abstract ownership state of one handle variable.
type absState uint8

const (
	live     absState = iota + 1 // definitely holds an un-released pooled event
	released                     // definitely released on every path here
	maybe                        // released on some path, live on another
	escaped                      // ownership handed off; no longer tracked
)

// state maps handle variables to their abstract ownership.
type state map[types.Object]absState

func cloneState(s state) state {
	c := make(state, len(s))
	for k, v := range s {
		c[k] = v
	}
	return c
}

// joinState merges src into dst: live ⊔ released = maybe, escaped wins
// over everything (once ownership left the function on any path, later
// reports would be speculative). A variable tracked on only one incoming
// path keeps that path's state — the other path never bound a handle.
func joinState(dst, src state) bool {
	changed := false
	for k, sv := range src {
		dv, ok := dst[k]
		if !ok {
			dst[k] = sv
			changed = true
			continue
		}
		nv := joinAbs(dv, sv)
		if nv != dv {
			dst[k] = nv
			changed = true
		}
	}
	return changed
}

func joinAbs(a, b absState) absState {
	if a == b {
		return a
	}
	if a == escaped || b == escaped {
		return escaped
	}
	// Any disagreement among {live, released, maybe} is maybe.
	return maybe
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				if n.Body != nil {
					checkFunc(pass, n.Body)
				}
			case *ast.FuncLit:
				checkFunc(pass, n.Body)
			}
			return true
		})
	}
	return nil
}

// checkFunc runs the ownership dataflow over one function body.
func checkFunc(pass *analysis.Pass, body *ast.BlockStmt) {
	// Fast path: a body that never binds a PushPooled result has nothing
	// to track.
	binds := false
	ast.Inspect(body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok && isQueueOp(pass, call, "PushPooled") {
			binds = true
		}
		return !binds
	})
	if !binds {
		return
	}

	g := ctrlflow.New(body)
	c := &checker{pass: pass}
	flow := ctrlflow.Dataflow[state]{
		Entry: func() state { return state{} },
		Clone: cloneState,
		Join:  joinState,
		Transfer: func(n ast.Node, s state) {
			c.transfer(n, s, false)
		},
	}
	in := ctrlflow.Solve(g, flow)

	// Reporting pass: replay with diagnostics enabled.
	c.reported = map[token.Pos]bool{}
	ctrlflow.Replay(g, in, cloneState, func(n ast.Node, s state) {
		c.transfer(n, s, true)
	})

	// Exit consistency: a handle released on one return path but live on
	// another is the early-return leak shape.
	exits := ctrlflow.ExitStates(g, in, cloneState, func(n ast.Node, s state) {
		c.transfer(n, s, false)
	})
	objs := map[types.Object]bool{}
	for _, e := range exits {
		for obj := range e.State {
			objs[obj] = true
		}
	}
	for obj := range objs {
		releasedSomewhere := false
		for _, e := range exits {
			if st := e.State[obj]; st == released || st == maybe {
				releasedSomewhere = true
			}
		}
		if !releasedSomewhere {
			continue // never released: fire-and-forget, event loop owns it
		}
		for _, e := range exits {
			st := e.State[obj]
			if st != live && st != maybe {
				continue
			}
			pos := body.Rbrace
			where := "falling off the end of the function"
			if e.Return != nil {
				pos = e.Return.Pos()
				where = "this return"
			}
			if c.reported[pos] {
				continue
			}
			c.reported[pos] = true
			if st == live {
				pass.Reportf(pos, "eventown",
					"pooled event handle %s is released on another path but still live at %s; release it on every path, or use a caller-owned event (NewEvent + Schedule) for a cancellable timer", obj.Name(), where)
			} else {
				pass.Reportf(pos, "eventown",
					"pooled event handle %s is released on only some paths reaching %s; release it unconditionally, or use a caller-owned event (NewEvent + Schedule) for a cancellable timer", obj.Name(), where)
			}
		}
	}
}

// checker carries the per-function reporting state.
type checker struct {
	pass     *analysis.Pass
	reported map[token.Pos]bool
}

func (c *checker) reportf(report bool, pos token.Pos, format string, args ...any) {
	if !report || c.reported[pos] {
		return
	}
	c.reported[pos] = true
	c.pass.Reportf(pos, "eventown", format, args...)
}

// transfer applies one CFG node to the ownership state. With report set
// it also emits diagnostics (the replay pass); the solve pass runs it
// silently to fixpoint first.
func (c *checker) transfer(n ast.Node, s state, report bool) {
	switch n := n.(type) {
	case *ast.AssignStmt:
		// Uses inside the right-hand sides first (q.Release(h) can hide
		// in an rhs via ok := q.Remove(h)).
		for _, rhs := range n.Rhs {
			c.expr(rhs, s, report)
		}
		if len(n.Lhs) == len(n.Rhs) {
			for i := range n.Lhs {
				c.bind(n.Lhs[i], n.Rhs[i], s, report)
			}
		} else {
			// h, ok := m[k] and tuple calls cannot produce handles we
			// recognize; any tracked lhs is rebound to unknown.
			for _, lhs := range n.Lhs {
				if obj := identObj(c.pass, lhs); obj != nil {
					delete(s, obj)
				}
			}
		}
	case *ast.DeclStmt:
		if gd, ok := n.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for _, v := range vs.Values {
					c.expr(v, s, report)
				}
				if len(vs.Names) == len(vs.Values) {
					for i := range vs.Names {
						c.bind(vs.Names[i], vs.Values[i], s, report)
					}
				}
			}
		}
	case *ast.ReturnStmt:
		for _, r := range n.Results {
			if obj := identObj(c.pass, r); obj != nil && s[obj] != 0 {
				c.useCheck(report, r.Pos(), obj, s, "returned")
				s[obj] = escaped
			} else {
				c.expr(r, s, report)
			}
		}
	case *ast.SendStmt:
		c.expr(n.Chan, s, report)
		if obj := identObj(c.pass, n.Value); obj != nil && s[obj] != 0 {
			c.useCheck(report, n.Value.Pos(), obj, s, "sent to another owner")
			s[obj] = escaped
		} else {
			c.expr(n.Value, s, report)
		}
	case *ast.ExprStmt:
		c.expr(n.X, s, report)
	case *ast.IncDecStmt:
		c.expr(n.X, s, report)
	case *ast.GoStmt:
		c.expr(n.Call, s, report)
	case *ast.DeferStmt:
		c.expr(n.Call, s, report)
	case *ast.RangeStmt:
		c.expr(n.X, s, report)
	case ast.Expr:
		// A branch condition (if/for/switch tag, case expression).
		c.expr(n, s, report)
	}
}

// bind handles one lhs := rhs pair.
func (c *checker) bind(lhs, rhs ast.Expr, s state, report bool) {
	lobj := identObj(c.pass, lhs)
	if call, ok := unparen(rhs).(*ast.CallExpr); ok && isQueueOp(c.pass, call, "PushPooled") {
		if lobj != nil {
			s[lobj] = live
		}
		return
	}
	robj := identObj(c.pass, rhs)
	if robj != nil && s[robj] != 0 {
		if lobj != nil {
			// Alias: the new name takes over the tracked state; the old
			// name's ownership is considered transferred so a release
			// through either alias is not misreported.
			s[lobj] = s[robj]
			s[robj] = escaped
			return
		}
		// Stored into a field, slice, map, or global: an owner holds it.
		c.useCheck(report, rhs.Pos(), robj, s, "stored in an owner")
		s[robj] = escaped
		return
	}
	if lobj != nil && s[lobj] != 0 {
		// Rebound to something we do not track.
		delete(s, lobj)
	}
}

// expr walks an expression, interpreting queue operations and flagging
// uses of dead handles. Function-literal bodies are scanned only for
// handle captures (a capture is an escape), not folded into the flow.
func (c *checker) expr(e ast.Expr, s state, report bool) {
	if e == nil {
		return
	}
	ctrlflow.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if c.queueCall(n, s, report) {
				return false // handle argument consumed by the op
			}
			// An unrecognized call that takes a tracked handle as a
			// direct argument transfers ownership out of the function.
			for _, arg := range n.Args {
				if obj := identObj(c.pass, arg); obj != nil && s[obj] != 0 {
					c.useCheck(report, arg.Pos(), obj, s, "passed to "+callName(n))
					s[obj] = escaped
				}
			}
			return true
		case *ast.CompositeLit:
			for _, el := range n.Elts {
				v := el
				if kv, ok := el.(*ast.KeyValueExpr); ok {
					v = kv.Value
				}
				if obj := identObj(c.pass, v); obj != nil && s[obj] != 0 {
					c.useCheck(report, v.Pos(), obj, s, "stored in an owner")
					s[obj] = escaped
				}
			}
			return true
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if obj := identObj(c.pass, n.X); obj != nil && s[obj] != 0 {
					c.useCheck(report, n.X.Pos(), obj, s, "address-escaped")
					s[obj] = escaped
					return false
				}
			}
			return true
		case *ast.FuncLit:
			// Captured handles escape into the closure.
			ast.Inspect(n.Body, func(inner ast.Node) bool {
				if id, ok := inner.(*ast.Ident); ok {
					if obj, isVar := c.pass.TypesInfo.Uses[id].(*types.Var); isVar && s[obj] != 0 {
						c.useCheck(report, id.Pos(), obj, s, "captured by a function literal")
						s[obj] = escaped
					}
				}
				return true
			})
			return false
		case *ast.Ident:
			// A bare read (comparison, condition, method receiver like
			// h.Queued()): legal on a live handle, a bug on a dead one.
			if obj, ok := c.pass.TypesInfo.Uses[n].(*types.Var); ok {
				switch s[obj] {
				case released:
					c.reportf(report, n.Pos(), "pooled event handle %s used after Release; the struct may already back an unrelated timer", obj.Name())
					s[obj] = escaped
				case maybe:
					c.reportf(report, n.Pos(), "pooled event handle %s may have been released on a path reaching this use; restructure so the release dominates or postdominates every use", obj.Name())
					s[obj] = escaped
				}
			}
		}
		return true
	})
}

// queueCall interprets Release/ShardRelease/Remove/Schedule calls on a
// queue receiver against the state. It reports whether the call was one
// of those (so the caller skips generic argument-escape handling).
func (c *checker) queueCall(call *ast.CallExpr, s state, report bool) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	if !queueTypes[analysis.RecvTypeName(c.pass.TypesInfo, sel)] {
		return false
	}
	switch sel.Sel.Name {
	case "Release", "ShardRelease", "Remove":
		if len(call.Args) < 1 {
			return false
		}
		obj := identObj(c.pass, call.Args[0])
		if obj == nil || s[obj] == 0 {
			return false
		}
		switch s[obj] {
		case released:
			c.reportf(report, call.Pos(), "pooled event handle %s released twice; the second %s recycles a struct that may already back an unrelated timer", obj.Name(), sel.Sel.Name)
		case maybe:
			c.reportf(report, call.Pos(), "pooled event handle %s may already have been released on a path reaching this %s; release it exactly once on every path", obj.Name(), sel.Sel.Name)
		}
		s[obj] = released
		return true
	case "Schedule":
		if len(call.Args) < 1 {
			return false
		}
		obj := identObj(c.pass, call.Args[0])
		if obj == nil || s[obj] == 0 {
			return false
		}
		switch s[obj] {
		case released:
			c.reportf(report, call.Pos(), "Schedule on released pooled event handle %s; the struct may already back an unrelated timer — allocate with NewEvent for reschedulable timers", obj.Name())
			s[obj] = escaped
		case maybe:
			c.reportf(report, call.Pos(), "pooled event handle %s may have been released on a path reaching this Schedule; a recycled struct must never be rescheduled", obj.Name())
			s[obj] = escaped
		}
		// Scheduling a live handle re-queues it; it stays live.
		for _, arg := range call.Args[1:] {
			c.expr(arg, s, report)
		}
		return true
	}
	return false
}

// useCheck reports a use of a dead handle in an ownership-transferring
// position.
func (c *checker) useCheck(report bool, pos token.Pos, obj types.Object, s state, how string) {
	switch s[obj] {
	case released:
		c.reportf(report, pos, "pooled event handle %s %s after it was released; the struct may already back an unrelated timer", obj.Name(), how)
	case maybe:
		c.reportf(report, pos, "pooled event handle %s %s but may have been released on a path reaching here", obj.Name(), how)
	}
}

// callName renders the callee of a call for diagnostics ("q.Remove",
// "helper", or "a call" when unprintable).
func callName(call *ast.CallExpr) string {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		return fun.Name
	case *ast.SelectorExpr:
		if id, ok := fun.X.(*ast.Ident); ok {
			return id.Name + "." + fun.Sel.Name
		}
		return fun.Sel.Name
	}
	return "a call"
}

// isQueueOp reports whether call is method name on a Queue/Sharded
// receiver.
func isQueueOp(pass *analysis.Pass, call *ast.CallExpr, name string) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != name {
		return false
	}
	return queueTypes[analysis.RecvTypeName(pass.TypesInfo, sel)]
}

// identObj resolves a (possibly parenthesized) identifier expression to
// its variable object, or nil.
func identObj(pass *analysis.Pass, e ast.Expr) types.Object {
	id, ok := unparen(e).(*ast.Ident)
	if !ok || id.Name == "_" {
		return nil
	}
	if obj, ok := pass.TypesInfo.Uses[id].(*types.Var); ok {
		return obj
	}
	// A := binding defines the identifier instead of using it.
	if obj, ok := pass.TypesInfo.Defs[id].(*types.Var); ok {
		return obj
	}
	return nil
}

func unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}
