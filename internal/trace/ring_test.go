package trace

import "testing"

func ev(time int64, seq uint64) Event {
	return Event{Time: time, Seq: seq, Kind: KindMigration}
}

func TestRingBasic(t *testing.T) {
	r := NewRing(4)
	for i := 0; i < 3; i++ {
		r.Emit(ev(int64(i), uint64(i)))
	}
	if r.Len() != 3 || r.Total() != 3 || r.Dropped() != 0 {
		t.Fatalf("len=%d total=%d dropped=%d, want 3/3/0", r.Len(), r.Total(), r.Dropped())
	}
	evs := r.Events()
	for i, e := range evs {
		if e.Time != int64(i) || e.Seq != uint64(i) {
			t.Errorf("event %d = (t=%d seq=%d), want (%d, %d)", i, e.Time, e.Seq, i, i)
		}
	}
}

func TestRingWraparound(t *testing.T) {
	r := NewRing(4)
	for i := 0; i < 10; i++ {
		r.Emit(ev(int64(i), uint64(i)))
	}
	if r.Len() != 4 {
		t.Fatalf("len = %d, want 4", r.Len())
	}
	if r.Dropped() != 6 {
		t.Fatalf("dropped = %d, want 6", r.Dropped())
	}
	if r.Total() != 10 {
		t.Fatalf("total = %d, want 10", r.Total())
	}
	evs := r.Events()
	// Oldest-first: the last 4 of 10 emissions, i.e. 6, 7, 8, 9.
	for i, e := range evs {
		want := int64(6 + i)
		if e.Time != want {
			t.Errorf("event %d time = %d, want %d", i, e.Time, want)
		}
	}
}

func TestRingCapacityZeroDropsAll(t *testing.T) {
	r := NewRing(0)
	for i := 0; i < 5; i++ {
		r.Emit(ev(int64(i), uint64(i)))
	}
	if r.Len() != 0 {
		t.Errorf("len = %d, want 0", r.Len())
	}
	if r.Events() != nil {
		t.Errorf("Events() = %v, want nil", r.Events())
	}
	if r.Dropped() != 5 || r.Total() != 5 {
		t.Errorf("dropped=%d total=%d, want 5/5", r.Dropped(), r.Total())
	}
}

// TestRingEqualTimestampOrder pins the ordering contract: events at the
// same simulated instant stay in emission (sequence) order, matching
// the event queue's (time, seq) firing order — the ring never reorders.
func TestRingEqualTimestampOrder(t *testing.T) {
	r := NewRing(8)
	const at = 100
	for seq := uint64(0); seq < 6; seq++ {
		r.Emit(ev(at, seq))
	}
	evs := r.Events()
	for i := 1; i < len(evs); i++ {
		if evs[i].Time != at {
			t.Fatalf("event %d time = %d, want %d", i, evs[i].Time, at)
		}
		if evs[i].Seq <= evs[i-1].Seq {
			t.Errorf("seq order broken at %d: %d after %d", i, evs[i].Seq, evs[i-1].Seq)
		}
	}
	// Same with wraparound crossing the seam.
	r2 := NewRing(4)
	for seq := uint64(0); seq < 7; seq++ {
		r2.Emit(ev(at, seq))
	}
	evs = r2.Events()
	if len(evs) != 4 || evs[0].Seq != 3 {
		t.Fatalf("wrapped events start at seq %d (len %d), want seq 3 len 4", evs[0].Seq, len(evs))
	}
	for i := 1; i < len(evs); i++ {
		if evs[i].Seq != evs[i-1].Seq+1 {
			t.Errorf("wrapped seq order broken at %d: %d after %d", i, evs[i].Seq, evs[i-1].Seq)
		}
	}
}

func TestRingReset(t *testing.T) {
	r := NewRing(2)
	for i := 0; i < 5; i++ {
		r.Emit(ev(int64(i), uint64(i)))
	}
	r.Reset()
	if r.Len() != 0 || r.Total() != 0 || r.Dropped() != 0 {
		t.Fatalf("after Reset: len=%d total=%d dropped=%d, want zeros", r.Len(), r.Total(), r.Dropped())
	}
	r.Emit(ev(42, 0))
	evs := r.Events()
	if len(evs) != 1 || evs[0].Time != 42 {
		t.Fatalf("after Reset+Emit: %v", evs)
	}
}

func TestRingNegativeCapacityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewRing(-1) did not panic")
		}
	}()
	NewRing(-1)
}
