// Package allowdoc implements the suppression-hygiene analyzer.
//
// Every //lint:allow-<category> directive is a hole punched in a
// determinism guarantee, and the lint-budget ledger audits those holes
// by category count. That audit is only as good as the directives
// themselves, so this analyzer enforces two invariants over them:
//
//   - the category must be one of the canonical vocabulary
//     (analysis.Categories) — a typoed directive silences nothing and
//     would otherwise rot in place looking like protection;
//   - the directive must carry a justification after the category — the
//     reviewer-facing reason the site is exempt. A bare directive tells
//     the next reader nothing about whether the hole is still needed.
//
// Directives are parsed by analysis.Directives, the same function the
// suppressor and the ledger use, so the three can never disagree about
// what counts as a directive. Findings carry category allowdoc; there
// is deliberately no allow-allowdoc escape in practice — documenting a
// directive is always cheaper than justifying why it shouldn't be.
package allowdoc

import (
	"repro/internal/analysis"
)

// Analyzer is the allowdoc analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "allowdoc",
	Doc:  "require every //lint:allow-* directive to name a known category and carry a justification",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	for _, d := range analysis.Directives(pass.Files) {
		if !analysis.KnownCategory(d.Category) {
			pass.Reportf(d.Pos, "allowdoc",
				"//lint:allow-%s names an unknown category; it suppresses nothing (known: %v)", d.Category, analysis.Categories)
			continue
		}
		if d.Justification == "" {
			pass.Reportf(d.Pos, "allowdoc",
				"//lint:allow-%s has no justification; state why this site is exempt so the ledger entry stays auditable", d.Category)
		}
	}
	return nil
}
