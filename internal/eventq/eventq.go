// Package eventq implements the time-ordered event queue at the heart of
// the discrete-event simulator.
//
// Events are ordered by (time, sequence): the sequence number is assigned
// at scheduling time, so two events scheduled for the same instant fire in
// the order they were scheduled. That stability matters for determinism —
// without it, heap sibling order would decide whether, say, a balancer
// fires before or after a barrier release at the same nanosecond.
//
// The queue is the simulator's hottest allocation site, so it supports two
// allocation-lean usage patterns on top of the classic Push/Pop:
//
//   - Caller-owned events (NewEvent + Schedule): a periodic timer — a
//     core's stop event, a balancer wake — allocates its Event and its
//     callback once and reschedules the same handle forever. Schedule
//     moves a still-pending event inside the heap without re-allocating,
//     assigning a fresh sequence number so same-time ordering follows the
//     scheduling order exactly as a remove+push would.
//   - Pooled events (PushPooled + Release): fire-and-forget timers whose
//     handle the caller discards draw their Event from a free list; the
//     event-loop owner returns them with Release after they fire. Handles
//     to pooled events must not be retained — the struct is reused.
package eventq

// Time is an absolute simulation time in nanoseconds since the start of
// the run. It is an alias of int64 (not a defined type) so that callbacks
// written against the simulator's int64 clock are assignable without a
// wrapping closure per scheduled event.
type Time = int64

// Event is a scheduled callback. Fire is invoked with the event's time.
type Event struct {
	At   Time
	Fire func(now Time)

	seq    uint64
	index  int // heap index, -1 when not queued
	pooled bool
	// shard is the index of the Sharded sub-queue holding (or last
	// holding) the event; 0 for events in a plain Queue.
	shard int32
}

// NewEvent returns an unqueued event with the given callback, for callers
// that schedule one timer repeatedly: allocate once, then Schedule it as
// often as needed.
func NewEvent(fn func(now Time)) *Event {
	return &Event{Fire: fn, index: -1}
}

// Queued reports whether the event is currently pending in a queue.
func (e *Event) Queued() bool { return e.index >= 0 }

// Queue is a min-heap of events. The zero value is an empty queue ready
// to use.
type Queue struct {
	heap []*Event
	seq  uint64
	free []*Event
}

// Len returns the number of pending events.
func (q *Queue) Len() int { return len(q.heap) }

// Push schedules fn to fire at time at and returns the event handle,
// which can be passed to Remove to cancel it. The event is allocated
// fresh and never reused, so the handle stays valid indefinitely.
func (q *Queue) Push(at Time, fn func(now Time)) *Event {
	e := &Event{At: at, Fire: fn}
	q.push(e)
	return e
}

// PushPooled schedules fn like Push but draws the Event from the queue's
// free list. The caller must not retain the returned handle past the
// event's firing: after the event-loop owner calls Release the struct is
// recycled for an unrelated timer. Use for fire-and-forget timers only.
func (q *Queue) PushPooled(at Time, fn func(now Time)) *Event {
	var e *Event
	if n := len(q.free); n > 0 {
		e = q.free[n-1]
		q.free[n-1] = nil
		q.free = q.free[:n-1]
		e.At = at
		e.Fire = fn
	} else {
		e = &Event{At: at, Fire: fn, pooled: true}
	}
	q.push(e)
	return e
}

// Release returns a fired pooled event to the free list. It is a no-op
// for non-pooled or still-queued events, so the event-loop owner may call
// it unconditionally on whatever Pop returned after firing it.
func (q *Queue) Release(e *Event) {
	if !e.pooled || e.index >= 0 {
		return
	}
	e.Fire = nil // drop the closure so its captures can be collected
	q.free = append(q.free, e)
}

// Schedule inserts a caller-owned event at time at, or — if the event is
// still pending — moves it there, re-allocating nothing. Either way the
// event receives a fresh sequence number: among events at the same time it
// fires in the order of the Schedule/Push calls, exactly as if it had
// been removed and re-pushed.
func (q *Queue) Schedule(e *Event, at Time) {
	if e.index >= 0 && q.heap[e.index] == e {
		e.At = at
		e.seq = q.seq
		q.seq++
		q.down(e.index)
		q.up(e.index)
		return
	}
	e.At = at
	q.push(e)
}

func (q *Queue) push(e *Event) {
	e.seq = q.seq
	q.seq++
	e.index = len(q.heap)
	q.heap = append(q.heap, e)
	q.up(e.index)
}

// Pop removes and returns the earliest event, or nil if the queue is
// empty.
func (q *Queue) Pop() *Event {
	if len(q.heap) == 0 {
		return nil
	}
	top := q.heap[0]
	last := len(q.heap) - 1
	q.swap(0, last)
	q.heap[last] = nil
	q.heap = q.heap[:last]
	if last > 0 {
		q.down(0)
	}
	top.index = -1
	return top
}

// Peek returns the earliest event without removing it, or nil.
func (q *Queue) Peek() *Event {
	if len(q.heap) == 0 {
		return nil
	}
	return q.heap[0]
}

// Remove cancels a pending event. It is a no-op if the event has already
// fired or been removed. It returns whether the event was removed.
func (q *Queue) Remove(e *Event) bool {
	if e == nil || e.index < 0 || e.index >= len(q.heap) || q.heap[e.index] != e {
		return false
	}
	i := e.index
	last := len(q.heap) - 1
	q.swap(i, last)
	q.heap[last] = nil
	q.heap = q.heap[:last]
	if i < last {
		q.down(i)
		q.up(i)
	}
	e.index = -1
	if e.pooled {
		e.Fire = nil
		q.free = append(q.free, e)
	}
	return true
}

// less orders by time, then by scheduling sequence.
func (q *Queue) less(i, j int) bool {
	a, b := q.heap[i], q.heap[j]
	if a.At != b.At {
		return a.At < b.At
	}
	return a.seq < b.seq
}

func (q *Queue) swap(i, j int) {
	q.heap[i], q.heap[j] = q.heap[j], q.heap[i]
	q.heap[i].index = i
	q.heap[j].index = j
}

func (q *Queue) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !q.less(i, parent) {
			break
		}
		q.swap(i, parent)
		i = parent
	}
}

func (q *Queue) down(i int) {
	n := len(q.heap)
	for {
		left := 2*i + 1
		if left >= n {
			break
		}
		child := left
		if right := left + 1; right < n && q.less(right, left) {
			child = right
		}
		if !q.less(child, i) {
			break
		}
		q.swap(i, child)
		i = child
	}
}
