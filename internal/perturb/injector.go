package perturb

import (
	"fmt"
	"time"

	"repro/internal/cpuset"
	"repro/internal/sim"
	"repro/internal/task"
	"repro/internal/trace"
	"repro/internal/xrand"
)

// Injector drives a Config's perturbation schedule on one machine. It
// implements sim.Actor; add it with Machine.AddActor before the run
// starts. Every Injector owns RNG streams split off the machine
// generator at Start, so two runs with the same seed and config see the
// same schedule.
type Injector struct {
	cfg Config
	m   *sim.Machine

	// noiseStolen and stormStolen are the per-core stolen-fraction
	// contributions of the two theft families; the fraction installed on
	// a core is their composition 1-(1-noise)(1-storm).
	noiseStolen []float64
	stormStolen []float64

	// Per-core injector states, kept for counter aggregation: each
	// state counts its own events so concurrent shard workers (under
	// Config.ShardLocal) never share a counter.
	noiseStates []*noiseState
	kthreads    []*kthreadProgram
	freqStates  []*freqState

	// Storms and Hotplugs count injected events of the machine-global
	// families (always fired on the control queue, never concurrently).
	Storms   int
	Hotplugs int
}

// NoiseBursts sums injected noise bursts across cores (IRQ-style and
// kthread daemons alike).
func (in *Injector) NoiseBursts() int {
	n := 0
	for _, st := range in.noiseStates {
		n += st.bursts
	}
	for _, p := range in.kthreads {
		n += p.bursts
	}
	return n
}

// FreqSteps sums frequency-walk steps across cores.
func (in *Injector) FreqSteps() int {
	n := 0
	for _, st := range in.freqStates {
		n += st.steps
	}
	return n
}

// New builds an injector for the configuration. An inert configuration
// yields an injector whose Start does nothing.
func New(cfg Config) *Injector { return &Injector{cfg: cfg} }

// Start implements sim.Actor: it installs the initial frequency
// asymmetry and schedules the first event of every enabled family. RNG
// streams are split in a fixed order (noise cores, hotplug, freq cores,
// storm) to keep schedules independent and deterministic.
func (in *Injector) Start(m *sim.Machine) {
	in.m = m
	in.noiseStolen = make([]float64, len(m.Cores))
	in.stormStolen = make([]float64, len(m.Cores))
	if n := &in.cfg.Noise; n.Period > 0 {
		for _, c := range m.Cores {
			if !n.Cores.Empty() && !n.Cores.Has(c.ID()) {
				continue
			}
			if n.Kthread {
				in.spawnKthread(c.ID(), m.RNG())
				continue
			}
			st := &noiseState{in: in, core: c.ID(), rng: m.RNG()}
			in.noiseStates = append(in.noiseStates, st)
			if in.cfg.ShardLocal {
				st.timer = m.NewCoreTimer(st.core, st.fire)
			} else {
				st.timer = m.NewTimer(st.fire)
			}
			// Desynchronised first bursts: one uniform draw over the
			// period, so the cores do not pulse in lockstep.
			st.timer.Schedule(m.Now() + st.rng.Jitter(int64(n.Period)) + 1)
		}
	}
	if h := &in.cfg.Hotplug; h.Interval > 0 {
		st := &hotplugState{in: in, rng: m.RNG(), maxOffline: h.MaxOffline}
		if st.maxOffline <= 0 {
			st.maxOffline = 1
		}
		st.timer = m.NewTimer(st.fire)
		st.timer.Schedule(m.Now() + jittered(st.rng, h.Interval, h.Jitter))
	}
	if f := &in.cfg.Freq; f.Interval > 0 {
		for _, c := range m.Cores {
			if !f.Cores.Empty() && !f.Cores.Has(c.ID()) {
				continue
			}
			st := &freqState{in: in, core: c.ID(), rng: m.RNG()}
			in.freqStates = append(in.freqStates, st)
			// Initial asymmetry: each core starts at a random factor in
			// [Min, Max] — §6.6's asymmetric machine at time zero.
			st.f = f.Min + st.rng.Float64()*(f.Max-f.Min)
			in.setFreq(st.core, st.f)
			if in.cfg.ShardLocal {
				st.timer = m.NewCoreTimer(st.core, st.fire)
			} else {
				st.timer = m.NewTimer(st.fire)
			}
			st.timer.Schedule(m.Now() + jittered(st.rng, f.Interval, f.Jitter))
		}
	}
	if s := &in.cfg.Storm; s.Period > 0 {
		st := &stormState{in: in, rng: m.RNG()}
		// Socket core groups in first-appearance order (no map).
		for _, c := range m.Topo.Cores {
			sock := c.Socket
			for len(st.sockets) <= sock {
				st.sockets = append(st.sockets, nil)
			}
			st.sockets[sock] = append(st.sockets[sock], c.ID)
		}
		st.timer = m.NewTimer(st.fire)
		st.timer.Schedule(m.Now() + jittered(st.rng, s.Period, s.Jitter))
	}
}

// apply installs the composed stolen fraction on a core and returns it.
func (in *Injector) apply(core int) float64 {
	s := 1 - (1-in.noiseStolen[core])*(1-in.stormStolen[core])
	in.m.SetCoreStolen(core, s)
	return s
}

func (in *Injector) setFreq(core int, f float64) {
	in.m.SetCoreFreq(core, f)
	if in.m.Tracing() {
		in.m.Emit(trace.Event{Kind: trace.KindFreqChange, Core: core, SK: f})
	}
}

func (in *Injector) count(name string) {
	if reg := in.m.Metrics(); reg != nil {
		reg.Counter(name).Inc()
	}
}

// spawnKthread starts one core's noise daemon: a pinned nice −20
// "kworker" that sleeps most of the time and wakes to compute for each
// burst. Because it is an ordinary task, its bursts appear on the run
// queue — the form of kernel noise load balancers can see and react to.
// The daemon never exits; runs under kthread noise end via
// Machine.Stop (as the experiment harness does), not by draining.
func (in *Injector) spawnKthread(core int, rng *xrand.RNG) {
	p := &kthreadProgram{in: in, rng: rng}
	in.kthreads = append(in.kthreads, p)
	t := in.m.NewTask(fmt.Sprintf("kworker/%d", core), p)
	t.Group = "kthread"
	t.Affinity = cpuset.Of(core)
	t.Nice = -20
	t.Sched.Weight = task.NiceWeight(t.Nice)
	in.m.StartOn(t, core)
}

// kthreadProgram alternates jittered sleeps with burst computes; the
// initial sleep desynchronises the per-core daemons.
type kthreadProgram struct {
	in      *Injector
	rng     *xrand.RNG
	started bool
	burst   bool
	bursts  int
}

func (p *kthreadProgram) Next(t *task.Task, now int64) task.Action {
	cfg := &p.in.cfg.Noise
	if !p.started {
		p.started = true
		return task.Sleep{D: time.Duration(p.rng.Jitter(int64(cfg.Period)) + 1)}
	}
	if p.burst {
		// Burst done; sleep out the gap.
		p.burst = false
		if p.in.m.Tracing() {
			p.in.m.Emit(trace.Event{Kind: trace.KindNoiseEnd, Core: t.CoreID, Label: "kthread", SK: 0})
		}
		return task.Sleep{D: time.Duration(jittered(p.rng, cfg.Period, cfg.Jitter))}
	}
	p.burst = true
	work := float64(jittered(p.rng, cfg.Duration, cfg.Jitter)) * cfg.Steal
	p.bursts++
	p.in.count("perturb.noise_bursts")
	if p.in.m.Tracing() {
		p.in.m.Emit(trace.Event{Kind: trace.KindNoiseBegin, Core: t.CoreID, Label: "kthread",
			SK: cfg.Steal, Dur: int64(work)})
	}
	return task.Compute{Work: work}
}

// noiseState is one core's kernel-noise burst machine: it alternates
// burst-begin and burst-end firings of a single reusable timer.
type noiseState struct {
	in     *Injector
	core   int
	rng    *xrand.RNG
	timer  *sim.Timer
	burst  bool
	bursts int
}

func (st *noiseState) fire(now int64) {
	in := st.in
	cfg := &in.cfg.Noise
	if st.burst {
		// Burst ends; next burst after a jittered period.
		st.burst = false
		in.noiseStolen[st.core] = 0
		s := in.apply(st.core)
		if in.m.Tracing() {
			in.m.Emit(trace.Event{Kind: trace.KindNoiseEnd, Core: st.core, Label: "noise", SK: s})
		}
		if !in.cfg.ShardLocal && in.m.LiveTasks() == 0 {
			return // workload drained: stop injecting so the run can end
		}
		st.timer.Schedule(now + jittered(st.rng, cfg.Period, cfg.Jitter))
		return
	}
	// ShardLocal mode never reads the machine-global live count (the
	// run is horizon-bounded by contract); otherwise stop on drain.
	if !in.cfg.ShardLocal && in.m.LiveTasks() == 0 {
		return
	}
	st.burst = true
	dur := jittered(st.rng, cfg.Duration, cfg.Jitter)
	st.bursts++
	in.count("perturb.noise_bursts")
	in.noiseStolen[st.core] = cfg.Steal
	s := in.apply(st.core)
	if in.m.Tracing() {
		in.m.Emit(trace.Event{Kind: trace.KindNoiseBegin, Core: st.core, Label: "noise", SK: s, Dur: dur})
	}
	st.timer.Schedule(now + dur)
}

// hotplugState drives unplug events; each unplug schedules its own
// replug event.
type hotplugState struct {
	in         *Injector
	rng        *xrand.RNG
	timer      *sim.Timer
	offline    int
	maxOffline int
}

func (st *hotplugState) fire(now int64) {
	in := st.in
	cfg := &in.cfg.Hotplug
	if in.m.LiveTasks() == 0 {
		return
	}
	if st.offline < st.maxOffline && in.m.OnlineCores() > 1 {
		// Candidates in core-ID order keep the pick a pure function of
		// the RNG stream.
		var cand []int
		for _, c := range in.m.Cores {
			if !c.Online() {
				continue
			}
			if !cfg.Cores.Empty() && !cfg.Cores.Has(c.ID()) {
				continue
			}
			cand = append(cand, c.ID())
		}
		if len(cand) > 0 {
			core := cand[st.rng.Intn(len(cand))]
			off := jittered(st.rng, cfg.OffTime, cfg.Jitter)
			st.offline++
			in.Hotplugs++
			in.count("perturb.hotplug")
			in.m.SetCoreOnline(core, false)
			in.m.At(now+off, func(int64) {
				st.offline--
				in.m.SetCoreOnline(core, true)
			})
		}
	}
	st.timer.Schedule(now + jittered(st.rng, cfg.Interval, cfg.Jitter))
}

// freqState is one core's frequency random walk.
type freqState struct {
	in    *Injector
	core  int
	rng   *xrand.RNG
	timer *sim.Timer
	f     float64
	steps int
}

func (st *freqState) fire(now int64) {
	in := st.in
	cfg := &in.cfg.Freq
	if !in.cfg.ShardLocal && in.m.LiveTasks() == 0 {
		return
	}
	st.f += cfg.Step * (2*st.rng.Float64() - 1)
	if st.f < cfg.Min {
		st.f = cfg.Min
	}
	if st.f > cfg.Max {
		st.f = cfg.Max
	}
	st.steps++
	in.count("perturb.freq_steps")
	in.setFreq(st.core, st.f)
	st.timer.Schedule(now + jittered(st.rng, cfg.Interval, cfg.Jitter))
}

// stormState drives whole-socket interrupt storms.
type stormState struct {
	in      *Injector
	rng     *xrand.RNG
	timer   *sim.Timer
	sockets [][]int
}

func (st *stormState) fire(now int64) {
	in := st.in
	cfg := &in.cfg.Storm
	if in.m.LiveTasks() == 0 {
		return
	}
	cores := st.sockets[st.rng.Intn(len(st.sockets))]
	dur := jittered(st.rng, cfg.Duration, cfg.Jitter)
	in.Storms++
	in.count("perturb.storms")
	for _, id := range cores {
		in.stormStolen[id] = cfg.Steal
		s := in.apply(id)
		if in.m.Tracing() {
			in.m.Emit(trace.Event{Kind: trace.KindNoiseBegin, Core: id, Label: "storm", SK: s, Dur: dur})
		}
	}
	in.m.At(now+dur, func(int64) {
		for _, id := range cores {
			in.stormStolen[id] = 0
			s := in.apply(id)
			if in.m.Tracing() {
				in.m.Emit(trace.Event{Kind: trace.KindNoiseEnd, Core: id, Label: "storm", SK: s})
			}
		}
	})
	st.timer.Schedule(now + jittered(st.rng, cfg.Period, cfg.Jitter))
}

// jittered draws mean ± Jitter×mean (uniform), at least 1 ns.
func jittered(rng *xrand.RNG, mean time.Duration, j float64) int64 {
	d := float64(mean)
	if j > 0 {
		d *= 1 + j*(2*rng.Float64()-1)
	}
	if d < 1 {
		return 1
	}
	return int64(d)
}
