package spmd

import (
	"fmt"
	"time"

	"repro/internal/cpuset"
	"repro/internal/sim"
	"repro/internal/task"
	"repro/internal/xrand"
)

// Model is a programming-model preset: it fixes the barrier wait policy
// the way each runtime in the paper implements synchronization (§3).
type Model struct {
	// Name identifies the runtime ("upc", "mpi", "openmp", ...).
	Name string
	// Policy is the barrier wait policy.
	Policy task.WaitPolicy
	// Blocktime is the spin budget for WaitSpinThenBlock.
	Blocktime time.Duration
}

// UPC: the default Berkeley UPC barrier calls sched_yield when
// oversubscribed.
func UPC() Model { return Model{Name: "upc", Policy: task.WaitYield} }

// UPCSleep: the paper's modified UPC runtime calling usleep(1)
// (the "LOAD-SLEEP" configuration).
func UPCSleep() Model { return Model{Name: "upc-sleep", Policy: task.WaitPollSleep} }

// MPI: yielding barriers, like UPC.
func MPI() Model { return Model{Name: "mpi", Policy: task.WaitYield} }

// OpenMPDefault: the Intel runtime's default barrier spins for
// KMP_BLOCKTIME (200 ms) and then sleeps ("DEF" in the paper's figures).
func OpenMPDefault() Model {
	return Model{Name: "openmp-def", Policy: task.WaitSpinThenBlock, Blocktime: 200 * time.Millisecond}
}

// OpenMPInfinite: KMP_BLOCKTIME=infinite polls continuously ("INF").
func OpenMPInfinite() Model { return Model{Name: "openmp-inf", Policy: task.WaitSpin} }

// Spec describes one SPMD application instance.
type Spec struct {
	// Name labels the application's tasks (Group).
	Name string
	// Threads is the number of SPMD tasks.
	Threads int
	// Iterations is the number of compute+barrier rounds.
	Iterations int
	// WorkPerIteration is the per-thread work between barriers, in
	// speed-1.0 nanoseconds. The paper's S (inter-barrier time) at one
	// thread per unit-speed core.
	WorkPerIteration float64
	// WorkJitter adds ±WorkJitter×WorkPerIteration uniform noise per
	// thread per iteration, modelling data-dependent imbalance. Zero
	// for the regular NAS kernels.
	WorkJitter float64
	// Model fixes the synchronization implementation.
	Model Model
	// RSSBytes is the per-thread resident set (drives migration cost).
	RSSBytes int64
	// MemIntensity in [0,1] scales the NUMA remote-memory penalty.
	MemIntensity float64
	// Affinity restricts the app to a core subset (taskset); zero means
	// all cores.
	Affinity cpuset.Set
	// Nice is the task priority.
	Nice int
}

// App is a started SPMD application: its tasks, barrier, and completion
// bookkeeping.
type App struct {
	Spec    Spec
	Tasks   []*task.Task
	Barrier *Barrier

	m        *sim.Machine
	started  int64
	finished int64
	done     int
	onDone   []func(a *App)
}

// Build creates the application's tasks on the machine without starting
// them: the caller (an experiment or a balancer setup) decides placement.
func Build(m *sim.Machine, spec Spec) *App {
	if spec.Threads < 1 {
		panic(fmt.Sprintf("spmd: app %q with %d threads", spec.Name, spec.Threads))
	}
	if spec.Affinity.Empty() {
		spec.Affinity = m.Topo.AllCores()
	}
	a := &App{Spec: spec, Barrier: NewBarrier(spec.Threads), m: m}
	rng := m.RNG()
	for i := 0; i < spec.Threads; i++ {
		prog := &workerProgram{app: a, rng: rng.Split()}
		t := m.NewTask(fmt.Sprintf("%s.%d", spec.Name, i), prog)
		t.Group = spec.Name
		t.Affinity = spec.Affinity
		t.RSS = spec.RSSBytes
		t.MemIntensity = spec.MemIntensity
		t.Nice = spec.Nice
		t.Sched.Weight = task.NiceWeight(spec.Nice)
		a.Tasks = append(a.Tasks, t)
	}
	m.OnTaskDone(a.taskDone)
	return a
}

// Start launches all tasks through the machine placer (the OS fork
// placement path). Simultaneous starts expose the stale-idleness
// clumping the paper describes.
func (a *App) Start() {
	a.started = a.m.Now()
	for _, t := range a.Tasks {
		a.m.Start(t)
	}
}

// StartPinned launches the tasks round-robin over the allowed cores,
// pinning each to its core (the PINNED configuration, and the initial
// distribution speedbalancer establishes before managing the app).
func (a *App) StartPinned() {
	a.started = a.m.Now()
	cores := a.Spec.Affinity.Cores()
	for i, t := range a.Tasks {
		c := cores[i%len(cores)]
		t.Affinity = cpuset.Of(c)
		a.m.StartOn(t, c)
	}
}

// OnDone registers fn to run when the last task exits.
func (a *App) OnDone(fn func(a *App)) { a.onDone = append(a.onDone, fn) }

func (a *App) taskDone(t *task.Task) {
	if t.Group != a.Spec.Name {
		return
	}
	a.done++
	if a.done == len(a.Tasks) {
		// The exiting task's own finish stamp, not Machine.Now: inside a
		// parallel shard window the machine clock lags the shard clock
		// that actually retired the task.
		a.finished = t.FinishedAt
		for _, fn := range a.onDone {
			fn(a)
		}
	}
}

// Done reports whether every task has exited.
func (a *App) Done() bool { return a.done == len(a.Tasks) }

// Elapsed returns the wall time from Start to the last exit (or to now
// if unfinished).
func (a *App) Elapsed() time.Duration {
	if a.Done() {
		return time.Duration(a.finished - a.started)
	}
	return time.Duration(a.m.Now() - a.started)
}

// SerialWork returns the total work of the app (threads × iterations ×
// work), the runtime of a perfect single unit-speed core, used as the
// speedup baseline.
func (a *App) SerialWork() time.Duration {
	s := a.Spec
	return time.Duration(float64(s.Threads) * float64(s.Iterations) * s.WorkPerIteration)
}

// Speedup returns SerialWork / Elapsed.
func (a *App) Speedup() float64 {
	e := a.Elapsed()
	if e <= 0 {
		return 0
	}
	return float64(a.SerialWork()) / float64(e)
}

// workerProgram is one SPMD thread: Iterations × (compute; barrier).
type workerProgram struct {
	app  *App
	rng  *xrand.RNG
	iter int
	// inBarrier alternates compute and barrier steps.
	inBarrier bool
}

// Next implements task.Program.
func (p *workerProgram) Next(t *task.Task, now int64) task.Action {
	s := &p.app.Spec
	if p.inBarrier {
		p.inBarrier = false
		p.iter++
		return task.WaitFor{
			C:         p.app.Barrier,
			Policy:    s.Model.Policy,
			Blocktime: s.Model.Blocktime,
		}
	}
	if p.iter >= s.Iterations {
		return task.Exit{}
	}
	w := s.WorkPerIteration
	if s.WorkJitter > 0 {
		w *= 1 + s.WorkJitter*(2*p.rng.Float64()-1)
	}
	p.inBarrier = true
	return task.Compute{Work: w}
}
