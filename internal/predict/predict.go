// Package predict is the anticipatory layer of the speed balancer: it
// maintains streaming per-core and per-thread speed distributions and
// turns them into "core k will be the slowest next interval"
// probability bounds, in the style of Boulmier et al., *Anticipating
// Load Imbalance* (see PAPERS.md).
//
// The paper's balancer (§5) is purely reactive — it migrates only after
// a core has already been slow for a full balance interval, so jobs
// shorter than the interval are finished before the poller ever sees
// them. The predictor closes that gap with three pieces:
//
//   - Welford: a streaming mean/variance estimator with exponential
//     decay, so the distribution tracks non-stationary signals
//     (frequency drift, migrating noise) instead of averaging them
//     away. One instance per core and per managed thread, fed from the
//     balancer's existing sample pass.
//   - Dist + SlowestLowerBounds/FastestLowerBounds: order-statistic
//     probability bounds over a set of normal approximations. The
//     midpoint-split trick (one log-CDF/log-CCDF evaluation per
//     distribution, then an all-minus-own exchange per candidate) gives
//     each core a lower bound on the probability that it is the
//     extreme, at O(n) per pass.
//   - Tracker: the composition speedbal feeds — realized samples in,
//     horizon-extrapolated speeds and slowest-core bounds out.
//
// Determinism: everything here is pure float64 arithmetic over the
// sampled speeds — no RNG, no wall clock, no map on any decision path.
// math.Erf, like the math.Log/math.Sqrt the RNG layer already relies
// on, is a tightly-specified pure-Go implementation, so predictions are
// bit-identical across platforms and engine configurations.
//
// Degeneracy contract: Predicted extrapolates the *last realized
// sample* by the decayed trend, so a zero horizon returns the realized
// sample exactly, and a zero blend weight leaves effective speeds
// untouched — predictive mode with Horizon→0 or Weight→0 is
// byte-identical to the reactive balancer (pinned by the difftest
// property suite).
package predict

import (
	"math"
	"time"
)

// Config tunes the predictive mode. The zero value is disabled; a
// Config is only acted on when Active reports true.
type Config struct {
	// Enabled turns the predictive machinery on: the balancer feeds the
	// tracker and runs its decisions on horizon-extrapolated speeds.
	Enabled bool
	// Horizon is how far past the last sample core speeds are
	// extrapolated along their decayed trend — naturally one balance
	// interval (predict the interval the decision affects). Zero
	// degenerates to the reactive balancer exactly.
	Horizon time.Duration
	// Weight in [0,1] blends the anticipated drift into the effective
	// speed: eff = realized + Weight·(predicted − realized). Zero
	// degenerates to the reactive balancer exactly.
	Weight float64
	// MinConfidence is the probability a purely predicted pull must
	// clear — the larger of the candidate's slowest-core lower bound
	// and its marginal probability of sub-threshold speed next
	// interval. The default sits above 0.5 deliberately: an effective
	// mean below the threshold already puts the marginal at 0.5, so a
	// gate at 0.5 would pass every predicted candidate; 0.75 demands
	// the prediction clear the threshold by a clear margin of its own
	// spread. Realized sub-threshold evidence stands on its own, as in
	// the reactive balancer.
	MinConfidence float64
	// Decay in (0,1] is the per-sample exponential decay of the
	// estimator weight; smaller forgets faster. At the balancer's
	// 100 ms cadence the default 0.8 halves a sample's influence in
	// ~310 ms, fast enough to track the perturbation families' drift.
	Decay float64
	// MinWeight is the effective sample weight below which a
	// distribution is considered cold; cold predictions fall back to
	// realized speeds and load-based placement.
	MinWeight float64
}

// DefaultConfig returns the predictive profile the predict-bakeoff
// experiment runs: one-interval horizon, full blend.
func DefaultConfig() Config {
	return Config{
		Enabled:       true,
		Horizon:       100 * time.Millisecond,
		Weight:        1,
		MinConfidence: 0.75,
		Decay:         0.8,
		MinWeight:     3,
	}
}

// Active reports whether the configuration changes any decision: a zero
// horizon or a zero weight makes prediction inert by construction, so
// only the estimator state differs from the reactive balancer.
func (c Config) Active() bool {
	return c.Enabled && c.Horizon > 0 && c.Weight > 0
}

// Welford is a streaming mean/variance estimator with exponential
// decay (West's weighted-increment form with geometric weights). With
// Decay = 1 it is the textbook Welford recurrence; with Decay < 1 old
// samples fade so the estimate tracks a drifting signal.
type Welford struct {
	w    float64 // decayed total weight
	mean float64
	m2   float64 // decayed sum of squared deviations
}

// Observe folds one sample in, decaying the accumulated state first.
func (e *Welford) Observe(x, decay float64) {
	e.w = e.w*decay + 1
	e.m2 *= decay
	d := x - e.mean
	e.mean += d / e.w
	e.m2 += d * (x - e.mean)
}

// Weight returns the decayed effective sample weight (the "how much
// evidence" measure MinWeight gates on).
func (e *Welford) Weight() float64 { return e.w }

// Mean returns the decayed mean (0 before any sample).
func (e *Welford) Mean() float64 { return e.mean }

// Var returns the decayed population variance (0 with fewer than two
// samples' worth of weight, and clamped at 0 against rounding).
func (e *Welford) Var() float64 {
	if e.w <= 1 {
		return 0
	}
	v := e.m2 / e.w
	if v < 0 {
		return 0
	}
	return v
}

// StdDev returns the decayed standard deviation.
func (e *Welford) StdDev() float64 { return math.Sqrt(e.Var()) }

// Reset forgets everything (hotplug invalidation).
func (e *Welford) Reset() { *e = Welford{} }

// Dist is a normal approximation of one core's next-interval speed.
type Dist struct {
	Mean, Std float64
}

// CDF is the normal CDF via math.Erf; a degenerate (zero-variance)
// distribution is a step at the mean.
func (d Dist) CDF(x float64) float64 {
	if d.Std <= 0 {
		if x < d.Mean {
			return 0
		}
		return 1
	}
	return 0.5 * (1 + math.Erf((x-d.Mean)/(d.Std*math.Sqrt2)))
}

// SlowestLowerBounds writes, for each distribution i, a lower bound on
// the probability that X_i is the minimum of the set: the probability
// that X_i falls below the midpoint c (the mean of means) while every
// other X_j stays above it. The bound is exact in the limit of
// well-separated distributions and conservative otherwise; the sum over
// i never exceeds 1. out must have len(ds); it is returned for
// convenience. With fewer than two distributions the bound is 1 for the
// lone entry (it is trivially the slowest) or empty.
func SlowestLowerBounds(ds []Dist, out []float64) []float64 {
	return extremeLowerBounds(ds, out, false)
}

// FastestLowerBounds is the mirror: a lower bound on the probability
// that X_i is the maximum — X_i above the midpoint, every other below.
func FastestLowerBounds(ds []Dist, out []float64) []float64 {
	return extremeLowerBounds(ds, out, true)
}

// extremeLowerBounds implements both bounds with the midpoint-split
// trick: one log-CDF and log-CCDF per distribution, a shared sum, and
// an exchange of the candidate's own term. Zero probabilities (−inf
// logs) are counted out of the shared sum so a certain distribution
// does not poison every other bound with NaNs.
func extremeLowerBounds(ds []Dist, out []float64, fastest bool) []float64 {
	n := len(ds)
	if n == 0 {
		return out[:0]
	}
	out = out[:n]
	if n == 1 {
		out[0] = 1
		return out
	}
	c := 0.0
	for _, d := range ds {
		c += d.Mean
	}
	c /= float64(n)
	// own[i] = log P(X_i on the candidate side of c),
	// rest[i] = log P(X_i on the other side).
	own := make([]float64, n)
	rest := make([]float64, n)
	total := 0.0 // sum of finite rest terms
	zeros := 0   // count of rest[i] == -inf
	for i, d := range ds {
		p := d.CDF(c)
		below, above := math.Log(p), math.Log(1-p)
		if fastest {
			own[i], rest[i] = above, below
		} else {
			own[i], rest[i] = below, above
		}
		if math.IsInf(rest[i], -1) {
			zeros++
		} else {
			total += rest[i]
		}
	}
	for i := range ds {
		// P(i extreme) ≥ P(X_i own side) · Π_{j≠i} P(X_j other side).
		// The product over j≠i is zero whenever some other j is certain
		// to be on the candidate side of the midpoint.
		switch {
		case zeros == 0:
			out[i] = math.Exp(total - rest[i] + own[i])
		case zeros == 1 && math.IsInf(rest[i], -1):
			out[i] = math.Exp(total + own[i])
		default:
			out[i] = 0
		}
	}
	return out
}

// Tracker composes the estimators for one balancer: a decayed speed
// distribution and a decayed trend (per-interval speed delta) per
// managed core, plus a decayed speed distribution per managed thread.
// All methods are single-goroutine like the balancer that owns it.
type Tracker struct {
	cfg      Config
	interval float64 // balance interval in ns, the trend's unit of time
	cores    []coreState
	threads  map[int]*Welford // keyed by task ID; never iterated
}

// coreState is one core's estimator set.
type coreState struct {
	est   Welford // decayed speed distribution
	trend Welford // decayed speed delta per balance interval
	last  float64 // most recent realized sample
	at    int64   // when it was taken
	warm  bool    // at least one sample since the last reset
}

// NewTracker sizes a tracker for n managed cores balancing at the given
// interval.
func NewTracker(cfg Config, n int, interval time.Duration) *Tracker {
	return &Tracker{
		cfg:      cfg,
		interval: float64(interval),
		cores:    make([]coreState, n),
		threads:  make(map[int]*Welford),
	}
}

// ObserveCore feeds core index j's realized speed sample taken at now.
func (tr *Tracker) ObserveCore(j int, s float64, now int64) {
	cs := &tr.cores[j]
	if cs.warm && now > cs.at {
		// Normalise the observed delta to one balance interval so the
		// trend is a per-interval drift rate regardless of jitter.
		cs.trend.Observe((s-cs.last)*tr.interval/float64(now-cs.at), tr.cfg.Decay)
	}
	cs.est.Observe(s, tr.cfg.Decay)
	cs.last, cs.at, cs.warm = s, now, true
}

// ResetCore forgets core index j's history — hotplug transitions make
// the old distribution evidence about a machine that no longer exists.
func (tr *Tracker) ResetCore(j int) { tr.cores[j] = coreState{} }

// CoreWarm reports whether core index j has enough decayed evidence to
// predict from.
func (tr *Tracker) CoreWarm(j int) bool {
	cs := &tr.cores[j]
	return cs.warm && cs.est.Weight() >= tr.cfg.MinWeight
}

// Predicted returns core index j's speed extrapolated horizon past its
// last sample: the realized sample plus the decayed trend, clamped at
// zero. Predicted(j, 0) is the realized sample exactly — the degeneracy
// the reactive-equivalence property test pins.
//
// The trend is shrunk by its signal-to-noise ratio, m²/(m² + Var/W):
// a persistent drift (sustained down-clock, post-hotplug recovery)
// passes through almost untouched, while a memoryless random walk —
// whose per-interval deltas average zero with high variance — shrinks
// toward no extrapolation instead of chasing the last step. Without the
// shrinkage, trend-following on frequency random walks *doubles* the
// noise it claims to predict.
func (tr *Tracker) Predicted(j int, horizon time.Duration) float64 {
	cs := &tr.cores[j]
	m := cs.trend.Mean()
	if w := cs.trend.Weight(); w > 0 && m != 0 {
		if v := cs.trend.Var() / w; v > 0 {
			m *= m * m / (m*m + v)
		}
	}
	p := cs.last + m*(float64(horizon)/tr.interval)
	if p < 0 {
		return 0
	}
	return p
}

// CoreStd returns the standard deviation of core index j's decayed
// speed estimator — the spread SlowestLowerBounds pairs with an
// effective (blended) mean the caller computed itself.
func (tr *Tracker) CoreStd(j int) float64 { return tr.cores[j].est.StdDev() }

// CoreDist returns core index j's next-interval speed distribution at
// the horizon: predicted mean, decayed spread.
func (tr *Tracker) CoreDist(j int, horizon time.Duration) Dist {
	return Dist{Mean: tr.Predicted(j, horizon), Std: tr.cores[j].est.StdDev()}
}

// ObserveThread feeds one managed thread's realized speed sample.
func (tr *Tracker) ObserveThread(id int, s float64) {
	e, ok := tr.threads[id]
	if !ok {
		e = &Welford{}
		tr.threads[id] = e
	}
	e.Observe(s, tr.cfg.Decay)
}

// ThreadMean returns the thread's decayed mean speed and whether enough
// evidence backs it.
func (tr *Tracker) ThreadMean(id int) (float64, bool) {
	e, ok := tr.threads[id]
	if !ok || e.Weight() < tr.cfg.MinWeight {
		return 0, false
	}
	return e.Mean(), true
}

// ForgetThread purges an exited thread so churny dynamic groups do not
// grow the map unboundedly.
func (tr *Tracker) ForgetThread(id int) { delete(tr.threads, id) }
