// Package difftest is the differential equivalence harness for the
// sharded simulator: it runs the same workload through the legacy
// single-queue engine and the sharded engine (internal/eventq.Sharded +
// sim parallel lookahead windows) and proves every deterministic output
// channel byte-identical.
//
// The sharded refactor is the riskiest change the repo has taken — a
// merge-order slip or a stale clock read would not crash, it would
// silently skew result tables. The defence is differential: the legacy
// engine is the oracle, and three output channels are compared
// byte-for-byte:
//
//   - rendered result tables (the exact bytes `lbos run` prints),
//   - the Chrome trace-event JSON stream,
//   - the aggregated metrics snapshot (rendered through the same table
//     path `lbos run -metrics` uses).
//
// Two test families use the harness: an experiment matrix running every
// registered driver the evaluation depends on at shard counts
// {1, 2, 4, sockets} × Parallelism {1, 8} (diff_test.go), and a seeded
// property-based generator drawing random topologies, workloads and
// perturbation configs that cross-checks the engines on machine-state
// fingerprints and the physical invariant suite (prop_test.go).
package difftest

import (
	"bytes"
	"fmt"
	"strings"

	"repro/internal/exp"
	"repro/internal/metrics"
	"repro/internal/sim"
)

// Settings selects one engine configuration for a differential run.
type Settings struct {
	// Shards is exp.Context.Shards: 0/1 is the legacy single queue,
	// larger values shard per socket (clamped to the socket count).
	Shards int
	// ShardParallel opens conservative lookahead windows (parallel shard
	// goroutines) where the workload's shard scope allows it.
	ShardParallel bool
	// Parallelism is the experiment Runner's worker count (0 =
	// GOMAXPROCS); the grid level, orthogonal to the engine level.
	Parallelism int
	// Bare runs without trace or metrics sinks, exactly like a plain
	// `lbos run`. Sinks block parallel lookahead windows, so only the
	// bare configuration reaches the window-eligibility path inside an
	// experiment — the configuration where a stop-on-completion hook
	// once fired inside a window and crashed the run. Bare captures
	// compare tables only.
	Bare bool
}

// String names the configuration in failure messages.
func (s Settings) String() string {
	return fmt.Sprintf("shards=%d shardpar=%v parallel=%d", s.Shards, s.ShardParallel, s.Parallelism)
}

// Capture holds every deterministic output channel of one experiment
// run. Two captures from equivalent engines must be equal field by
// field, byte for byte.
type Capture struct {
	// Tables is the concatenation of the experiment's rendered tables.
	Tables string
	// Trace is the Chrome trace-event JSON document.
	Trace []byte
	// Metrics is the aggregated metrics snapshot rendered as tables —
	// rendering makes the comparison a byte comparison and the failure
	// output human-readable.
	Metrics string
}

// RunExperiment executes the registered experiment driver id with every
// output channel attached and captures the results. reps/scale/seed pin
// the workload; s picks the engine.
func RunExperiment(id string, reps, scale int, seed uint64, s Settings) (Capture, error) {
	e, err := exp.ByID(id)
	if err != nil {
		return Capture{}, err
	}
	var traceBuf bytes.Buffer
	ctx := &exp.Context{
		Reps: reps, Scale: scale, Seed: seed,
		Parallelism:   s.Parallelism,
		Shards:        s.Shards,
		ShardParallel: s.ShardParallel,
	}
	if !s.Bare {
		ctx.Trace = exp.NewTraceSink(&traceBuf, 0)
		ctx.Metrics = metrics.NewAggregate()
	}
	var tables strings.Builder
	for _, t := range e.Run(ctx) {
		t.Render(&tables)
	}
	if s.Bare {
		return Capture{Tables: tables.String()}, nil
	}
	if err := ctx.Trace.Close(); err != nil {
		return Capture{}, fmt.Errorf("difftest: closing trace: %w", err)
	}
	var ms strings.Builder
	for _, t := range exp.MetricsTables(ctx.Metrics.Snapshot()) {
		t.Render(&ms)
	}
	return Capture{Tables: tables.String(), Trace: traceBuf.Bytes(), Metrics: ms.String()}, nil
}

// Diff compares two captures and describes the first divergence, or
// returns "" when they are byte-identical.
func Diff(want, got Capture) string {
	if want.Tables != got.Tables {
		return "tables differ:\n" + firstDivergence(want.Tables, got.Tables)
	}
	if !bytes.Equal(want.Trace, got.Trace) {
		return "trace bytes differ:\n" + firstDivergence(string(want.Trace), string(got.Trace))
	}
	if want.Metrics != got.Metrics {
		return "metrics differ:\n" + firstDivergence(want.Metrics, got.Metrics)
	}
	return ""
}

// firstDivergence renders the first differing line of two outputs with
// a little context — enough to see which cell or event diverged without
// dumping both documents.
func firstDivergence(want, got string) string {
	wl, gl := strings.Split(want, "\n"), strings.Split(got, "\n")
	n := len(wl)
	if len(gl) < n {
		n = len(gl)
	}
	for i := 0; i < n; i++ {
		if wl[i] != gl[i] {
			return fmt.Sprintf("line %d:\n  want: %q\n  got:  %q", i+1, wl[i], gl[i])
		}
	}
	return fmt.Sprintf("line counts differ: want %d lines, got %d", len(wl), len(gl))
}

// Fingerprint summarises the complete observable end state of a machine
// — clock, counters, every task's accounting, every core's time split —
// as a string two equivalent engines must reproduce byte-identically.
// It is the machine-level analogue of Capture for workloads driven
// below the experiment harness (the property-based cross-checks).
func Fingerprint(m *sim.Machine) string {
	var b strings.Builder
	fmt.Fprintf(&b, "now=%d events=%d cs=%d wake=%d mig=%d live=%d\n",
		m.Now(), m.Stats.Events, m.Stats.ContextSwitches, m.Stats.Wakeups,
		m.Stats.TotalMigrations(), m.LiveTasks())
	for _, t := range m.Tasks() {
		fmt.Fprintf(&b, "task %d %s exec=%d work=%.9g mig=%d fin=%d core=%d st=%v\n",
			t.ID, t.Name, t.ExecTime, t.WorkDone, t.Migrations, t.FinishedAt, t.CoreID, t.State)
	}
	for _, c := range m.Cores {
		fmt.Fprintf(&b, "core %d busy=%d idle=%d stolen=%d\n",
			c.ID(), c.BusyTime, c.IdleTime(), c.StolenTime)
	}
	return b.String()
}
