// Package linuxlb models the Linux 2.6.28 scheduling-domain load
// balancer — the paper's LOAD baseline and the second level (scheduling
// in space) of the two-level design described in §2.
//
// The model reproduces the behaviours the paper's analysis rests on:
//
//   - Load is queue length (weighted by nice): threads that sched_yield
//     still count; threads that sleep do not.
//   - Busy-interval balancing compares decayed per-tick load averages
//     (rq->cpu_load[], the kernel's source_load/target_load pair), so a
//     high-priority daemon that wakes for a few hundred µs at a time
//     still raises its core's apparent load for many ticks after — the
//     mechanism by which the balancer chases short-lived kernel
//     activity (§6.4). New-idle balancing uses instantaneous load
//     (load index 0), as SD_BALANCE_NEWIDLE does.
//   - Balancing proceeds up a domain hierarchy, each level with its own
//     busy/idle intervals and imbalance percentage.
//   - Imbalance uses integer task-count arithmetic: a 3-vs-2 (or 2-vs-1)
//     split is left alone, which is precisely why queue-length balancing
//     caps an oversubscribed SPMD application at the speed of its
//     slowest thread.
//   - The running task is never pulled; cache-hot tasks (ran within
//     ~5 ms) are resisted until repeated failures escalate, and as a
//     last resort the migration thread performs an active push.
//   - New-idle balancing pulls immediately when a core empties.
//   - Fork placement chooses the idlest core using per-tick-stale load
//     snapshots, so simultaneously forked threads clump (§2 footnote 1).
package linuxlb

import (
	"time"

	"repro/internal/cpuset"
	"repro/internal/sim"
	"repro/internal/task"
	"repro/internal/topo"
	"repro/internal/trace"
	"repro/internal/xrand"
)

// Config tunes the balancer.
type Config struct {
	// Tick is the scheduler tick driving periodic balancing and load
	// snapshots (10 ms on a 100 Hz server kernel).
	Tick time.Duration
	// CacheHot is the recency window within which a task is considered
	// cache-hot and resisted (≈5 ms, §2).
	CacheHot time.Duration
	// MaxFailures is how many failed attempts at a level before
	// cache-hot tasks are migrated anyway (typically between one and
	// two, §2).
	MaxFailures int
	// ActiveBalance enables the migration-thread push of the running
	// task after even cache-hot migration fails.
	ActiveBalance bool
	// StalePlacement makes fork placement use tick-stale load
	// snapshots (the realistic default); accurate placement is an
	// ablation.
	StalePlacement bool
	// Domain restricts the balancer to a core subset: only domain cores
	// tick, balance, and exchange tasks, and sched groups are clipped to
	// the domain — one Balancer instance per socket/shard models
	// isolated scheduling domains (cpusets with sched_load_balance
	// partitioning). Empty means the whole machine. When the domain is
	// contained in one simulation shard, the per-core tick timers ride
	// the shard queues, so balancing no longer bounds conservative
	// lookahead and runs inside parallel windows. A domain-restricted
	// instance does not install itself as the fork placer (placement is
	// machine-global); StalePlacement is ignored.
	Domain cpuset.Set
}

// DefaultConfig returns the 2.6.28-like defaults.
func DefaultConfig() Config {
	return Config{
		Tick:           10 * time.Millisecond,
		CacheHot:       5 * time.Millisecond,
		MaxFailures:    2,
		ActiveBalance:  true,
		StalePlacement: true,
	}
}

const nice0Weight = 1024

// Balancer is the per-machine Linux load balancer actor.
type Balancer struct {
	cfg Config
	m   *sim.Machine
	rng *xrand.RNG

	// domain is the resolved balancing scope (Config.Domain or all
	// cores); cores holds state for domain members only (nil elsewhere).
	domain cpuset.Set
	cores  []*coreState

	// Pulls / Pushes / ActivePushes count balancing actions for tests
	// and experiment reporting.
	Pulls, NewIdlePulls, ActivePushes int
}

type coreState struct {
	// nextBalance is the next balancing time per domain level.
	nextBalance []int64
	// failed counts consecutive balance failures per level.
	failed []int
	// staleLoad is the queue length snapshot from the last tick, used
	// by fork placement.
	staleLoad int64
	// cpuLoad is the decayed per-tick load average (rq->cpu_load[] at
	// the busy index): cpuLoad = (7*cpuLoad + instantaneous)/8 each
	// tick. Busy-interval balancing reads load through this average so
	// short bursts of high-weight activity stay visible between ticks.
	cpuLoad int64
	// levels[li] is the precomputed sched-group structure this core
	// compares when balancing at domain level li. The topology is static,
	// so the groups, their core lists and the level span are derived once
	// at Start instead of on every tick.
	levels []levelGroups
	// tick is the core's reusable scheduler-tick timer.
	tick *sim.Timer
}

// levelGroups caches one (core, level) balancing view.
type levelGroups struct {
	// groups are the child groups compared at the level, in the same
	// deterministic order subgroup discovery yields them.
	groups []groupInfo
	// local is the index in groups of the group containing the core, or
	// -1 if none does.
	local int
	// span lists the core IDs of the level's whole span (the
	// active-balance push targets).
	span []int
}

// groupInfo is one sched group with its core list materialised.
type groupInfo struct {
	set   cpuset.Set
	cores []int
}

// New creates the balancer with the given configuration.
func New(cfg Config) *Balancer { return &Balancer{cfg: cfg} }

// Default creates the balancer with DefaultConfig.
func Default() *Balancer { return New(DefaultConfig()) }

// Start implements sim.Actor.
func (b *Balancer) Start(m *sim.Machine) {
	b.m = m
	b.rng = m.RNG()
	b.domain = b.cfg.Domain
	if b.domain.Empty() {
		b.domain = m.Topo.AllCores()
	}
	// A tick may ride the core's shard queue — and so run inside
	// parallel windows — only when everything the tick can read or move
	// (the whole domain) lives in one shard.
	shardLocal := true
	shard := -1
	b.domain.ForEach(func(id int) bool {
		if shard < 0 {
			shard = m.ShardOf(id)
		} else if m.ShardOf(id) != shard {
			shardLocal = false
			return false
		}
		return true
	})
	n := len(m.Cores)
	b.cores = make([]*coreState, n)
	for i := 0; i < n; i++ {
		if !b.domain.Has(i) {
			continue
		}
		cs := &coreState{
			nextBalance: make([]int64, len(m.Topo.Levels)),
			failed:      make([]int, len(m.Topo.Levels)),
			levels:      make([]levelGroups, len(m.Topo.Levels)),
		}
		for li, l := range m.Topo.Levels {
			cs.nextBalance[li] = int64(l.BusyInterval)
			cs.levels[li] = b.buildLevel(i, li)
		}
		b.cores[i] = cs
		// Stagger ticks across cores as real timer interrupts are.
		off := b.rng.Jitter(int64(b.cfg.Tick))
		core := m.Cores[i]
		fn := func(now int64) {
			b.tick(core, now)
			cs.tick.Schedule(now + int64(b.cfg.Tick))
		}
		if shardLocal {
			cs.tick = m.NewCoreTimer(i, fn)
		} else {
			cs.tick = m.NewTimer(fn)
		}
		cs.tick.Schedule(m.Now() + off)
	}
	if b.cfg.StalePlacement && b.cfg.Domain.Empty() {
		m.SetPlacer(b)
	}
	m.OnIdle(b.newIdle)
}

// buildLevel materialises the sched groups core id compares at level li:
// the level-(li−1) groups inside the level-li span, or per-core
// singletons at the innermost level. This mirrors the kernel structure
// where a domain's sched_groups are its child domains.
func (b *Balancer) buildLevel(id, li int) levelGroups {
	span := b.m.Topo.Levels[li].GroupOf(id).Intersect(b.domain)
	lg := levelGroups{local: -1, span: span.Cores()}
	add := func(g cpuset.Set) {
		if g.Has(id) {
			lg.local = len(lg.groups)
		}
		lg.groups = append(lg.groups, groupInfo{set: g, cores: g.Cores()})
	}
	if li == 0 {
		for _, c := range span.Cores() {
			add(cpuset.Of(c))
		}
		return lg
	}
	for _, g := range b.m.Topo.Levels[li-1].Groups {
		if g = g.Intersect(span); !g.Empty() {
			add(g)
		}
	}
	return lg
}

// tick is the per-core scheduler tick: refresh the load snapshot and run
// due domain-level balancing.
func (b *Balancer) tick(c *sim.Core, now int64) {
	cs := b.cores[c.ID()]
	if !c.Online() {
		// A hot-unplugged CPU takes no timer interrupts: skip the
		// balancing pass (and zero the placement snapshot so forks do
		// not clump onto the dead core) but keep the timer alive so the
		// tick resumes when the core returns.
		cs.staleLoad = 0
		cs.cpuLoad = 0
		return
	}
	cs.staleLoad = c.Scheduler().WeightedLoad()
	cs.cpuLoad = (7*cs.cpuLoad + cs.staleLoad) / 8
	idle := c.Idle()
	for li := range b.m.Topo.Levels {
		if now < cs.nextBalance[li] {
			continue
		}
		l := &b.m.Topo.Levels[li]
		if b.shouldBalance(c, li) {
			b.balanceLevel(c, li, false)
		}
		iv := l.BusyInterval
		if idle {
			iv = l.IdleInterval
		}
		cs.nextBalance[li] = now + int64(iv)
	}
}

// shouldBalance gates balancing at a level to one core per child group:
// the first idle core of the local subgroup, or its first core when none
// is idle (Linux's should_we_balance).
func (b *Balancer) shouldBalance(c *sim.Core, li int) bool {
	lg := &b.cores[c.ID()].levels[li]
	if lg.local < 0 {
		return true
	}
	g := &lg.groups[lg.local]
	first := -1
	for _, id := range g.cores {
		o := b.m.Cores[id]
		if !o.Online() {
			// An offline core neither ticks nor balances; it must not
			// hold the group's balancing slot or the whole group stops
			// balancing until the core returns.
			continue
		}
		if first < 0 {
			first = id
		}
		if o.Idle() {
			return id == c.ID()
		}
	}
	return first == c.ID()
}

// balanceLevel runs one load_balance pass pulling toward core c at
// domain level li. newIdle relaxes it to "grab one task from any queue
// with more than one".
func (b *Balancer) balanceLevel(c *sim.Core, li int, newIdle bool) bool {
	cs := b.cores[c.ID()]
	lg := &cs.levels[li]

	tr := b.m.Tracing()
	label := "linuxlb"
	if newIdle {
		label = "linuxlb-newidle"
	}
	if tr {
		b.m.Emit(trace.Event{Kind: trace.KindBalanceWake, Core: c.ID(), Label: label, N: li})
	}
	imbalance, busiestGroup := b.imbalance(lg, int64(b.m.Topo.Levels[li].ImbalancePct), newIdle)
	if imbalance <= 0 {
		cs.failed[li] = 0
		if tr {
			b.traceSkip(c.ID(), label, "balanced")
		}
		return false
	}
	busiest := b.findBusiestQueue(c, busiestGroup, newIdle)
	if busiest == nil {
		cs.failed[li] = 0
		if tr {
			b.traceSkip(c.ID(), label, "no-busiest-queue")
		}
		return false
	}
	moved := b.moveTasks(busiest, c, imbalance, cs.failed[li] > b.cfg.MaxFailures)
	if moved > 0 {
		cs.failed[li] = 0
		if newIdle {
			b.NewIdlePulls++
		} else {
			b.Pulls++
		}
		return true
	}
	if tr {
		b.traceSkip(c.ID(), label, "all-candidates-resisted")
	}
	if newIdle {
		return false
	}
	cs.failed[li]++
	if cs.failed[li] > b.cfg.MaxFailures+1 && b.cfg.ActiveBalance {
		// Wake the migration thread: push the busiest core's running
		// task to an idle core in the domain (active_load_balance).
		b.activeBalance(busiest, li)
		cs.failed[li] = 0
	}
	return false
}

// traceSkip records a balancing pass that moved nothing.
func (b *Balancer) traceSkip(core int, label, reason string) {
	b.m.Emit(trace.Event{Kind: trace.KindBalanceSkip, Core: core, Src: core,
		Label: label, Reason: reason})
}

// sourceLoad is the kernel's source_load: the decayed load average
// biased upward by the instantaneous load, so a pull source is never
// underestimated. New-idle balancing uses load index 0 — instantaneous.
func (b *Balancer) sourceLoad(id int, newIdle bool) int64 {
	inst := b.m.Cores[id].Scheduler().WeightedLoad()
	if newIdle {
		return inst
	}
	if avg := b.cores[id].cpuLoad; avg > inst {
		return avg
	}
	return inst
}

// targetLoad is the kernel's target_load: biased downward, so the
// pulling side is never overestimated.
func (b *Balancer) targetLoad(id int, newIdle bool) int64 {
	inst := b.m.Cores[id].Scheduler().WeightedLoad()
	if newIdle {
		return inst
	}
	if avg := b.cores[id].cpuLoad; avg < inst {
		return avg
	}
	return inst
}

// groupLoad sums the group's core loads: target-biased for the local
// group, source-biased for remote ones.
func (b *Balancer) groupLoad(cores []int, local, newIdle bool) (load int64, ncores int64) {
	for _, id := range cores {
		if local {
			load += b.targetLoad(id, newIdle)
		} else {
			load += b.sourceLoad(id, newIdle)
		}
		ncores++
	}
	return load, ncores
}

// imbalance computes the load amount (in weight units) that should move
// into the local subgroup and the busiest subgroup it should come from
// (nil when no remote group qualifies). This is the integer arithmetic
// at the core of the paper's critique: for equal-weight tasks split
// 3-vs-2 it yields 0.
func (b *Balancer) imbalance(lg *levelGroups, imbPct int64, newIdle bool) (int64, *groupInfo) {
	var localAvg, maxAvg int64
	var totalLoad, totalN int64
	var busiest *groupInfo
	for gi := range lg.groups {
		g := &lg.groups[gi]
		load, n := b.groupLoad(g.cores, gi == lg.local, newIdle)
		totalLoad += load
		totalN += n
		if gi == lg.local {
			localAvg = load / n
			continue
		}
		if a := load / n; a > maxAvg {
			maxAvg = a
			busiest = g
		}
	}
	if busiest == nil || totalN == 0 {
		return 0, busiest
	}
	if newIdle {
		if maxAvg > localAvg {
			return nice0Weight, busiest
		}
		return 0, busiest
	}
	domainAvg := totalLoad / totalN
	// Busiest group must exceed the local one by the imbalance pct.
	if maxAvg*100 <= localAvg*imbPct {
		return 0, busiest
	}
	if maxAvg <= domainAvg {
		return 0, busiest
	}
	imb := maxAvg - domainAvg
	if d := domainAvg - localAvg; d < imb {
		imb = d
	}
	if imb < nice0Weight {
		// fix_small_imbalance: move a single task only when the gap is
		// at least two tasks' worth — moving one out of a 3-vs-2 split
		// would not improve the balance.
		if maxAvg-localAvg >= 2*nice0Weight {
			return nice0Weight, busiest
		}
		// An entirely idle local group may always take one task
		// (CPU_IDLE balancing); when the only candidate is the remote
		// core's running task, the repeated failures escalate to the
		// active-balance push.
		if localAvg == 0 {
			return nice0Weight, busiest
		}
		return 0, busiest
	}
	return imb, busiest
}

// findBusiestQueue returns the most loaded core of the busiest subgroup.
func (b *Balancer) findBusiestQueue(c *sim.Core, group *groupInfo, newIdle bool) *sim.Core {
	var busiest *sim.Core
	var maxLoad int64
	for _, id := range group.cores {
		if id == c.ID() {
			continue
		}
		o := b.m.Cores[id]
		if !o.Online() {
			continue
		}
		load := o.Scheduler().WeightedLoad()
		if newIdle && o.NrRunnable() < 2 {
			continue
		}
		if load > maxLoad {
			busiest, maxLoad = o, load
		}
	}
	return busiest
}

// moveTasks pulls up to `amount` of weighted load from src to dst,
// skipping the running task and (unless force) cache-hot tasks and
// respecting affinity. Returns the number of tasks moved.
func (b *Balancer) moveTasks(src, dst *sim.Core, amount int64, force bool) int {
	moved := 0
	// The destination core's clock, not Machine.Now: inside a parallel
	// window the machine clock lags the shard clock this pass runs on
	// (src and dst share a shard whenever a window is open).
	now := dst.Now()
	for amount > 0 {
		var pick *task.Task
		src.Scheduler().EachQueued(func(t *task.Task) bool {
			if !t.Affinity.Has(dst.ID()) {
				return true
			}
			if t.Sched.Weight > amount && moved > 0 {
				return true
			}
			hot := now-t.LastRanAt < int64(b.cfg.CacheHot) &&
				b.m.Topo.Distance(src.ID(), dst.ID()) > topo.DistSMT
			if hot && !force {
				return true
			}
			pick = t
			return false
		})
		if pick == nil {
			break
		}
		amount -= pick.Sched.Weight
		b.m.Migrate(pick, dst.ID(), "linuxlb")
		moved++
	}
	return moved
}

// activeBalance pushes the running task of the busiest core to the
// least loaded core in the domain span, as the kernel migration thread
// does when normal balancing keeps failing.
func (b *Balancer) activeBalance(busiest *sim.Core, li int) {
	t := busiest.Current()
	if t == nil {
		return
	}
	span := b.cores[busiest.ID()].levels[li].span
	var target *sim.Core
	var minLoad int64
	for _, id := range span {
		if id == busiest.ID() || !t.Affinity.Has(id) {
			continue
		}
		o := b.m.Cores[id]
		if !o.Online() {
			continue
		}
		load := o.Scheduler().WeightedLoad()
		if target == nil || load < minLoad {
			target, minLoad = o, load
		}
	}
	if target == nil || minLoad+2*nice0Weight > b.sourceLoad(busiest.ID(), false) {
		return
	}
	b.ActivePushes++
	b.m.MigrateNow(t, target.ID(), "linuxlb-active")
}

// newIdle is the SD_BALANCE_NEWIDLE hook: a core that just emptied pulls
// one task, walking levels innermost first.
func (b *Balancer) newIdle(c *sim.Core) {
	if !b.domain.Has(c.ID()) {
		return
	}
	for li := range b.m.Topo.Levels {
		l := &b.m.Topo.Levels[li]
		if !l.NewIdle {
			continue
		}
		if b.balanceLevel(c, li, true) {
			return
		}
	}
}

// Place implements sim.Placer using the tick-stale load snapshots: the
// idlest allowed core as of the last tick. Threads forked between two
// ticks all see the same snapshot and clump onto the same "idle" cores —
// the start-up behaviour the paper's §2 footnote describes.
func (b *Balancer) Place(m *sim.Machine, t *task.Task) int {
	best, bestLoad := -1, int64(0)
	for _, c := range m.Cores {
		if !c.Online() || !t.Affinity.Has(c.ID()) || b.cores[c.ID()] == nil {
			continue
		}
		l := b.cores[c.ID()].staleLoad
		if best == -1 || l < bestLoad {
			best, bestLoad = c.ID(), l
		}
	}
	if best == -1 {
		// No allowed core is online (a pinned fork racing a hotplug):
		// widen the mask like the kernel's select_fallback_rq and take
		// the idlest online core.
		t.Affinity = m.Topo.AllCores()
		for _, c := range m.Cores {
			if !c.Online() || b.cores[c.ID()] == nil {
				continue
			}
			l := b.cores[c.ID()].staleLoad
			if best == -1 || l < bestLoad {
				best, bestLoad = c.ID(), l
			}
		}
	}
	return best
}
