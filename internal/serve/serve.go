// Package serve is the HTTP serving layer of the simulator — the
// engine behind the `lbosd` daemon. It accepts experiment specs as JSON
// (POST /v1/runs, POST /v1/batches), validates them against the
// internal/exp registry, executes them on a bounded worker pool with
// per-request cancellation, and streams results back as JSON, CSV or
// rendered text tables, plus optional Chrome trace-event streams.
//
// The core is a content-addressed result cache: every canonical spec
// hashes — together with the running code version — to a SHA-256 key
// (Spec.Key), and because the whole stack is deterministic (README
// "Determinism policy"), the result bytes are a pure function of that
// key. A hit therefore bypasses execution entirely and replays the
// exact bytes a fresh run would produce; no invalidation is ever
// needed, only LRU memory bounding (Cache).
//
// Backpressure is explicit: submissions land on a bounded queue, and
// when it is full the server sheds load with 429 + Retry-After instead
// of growing memory. Admission control under concurrent job streams
// follows the argument in Berg et al., "Towards Optimality in Parallel
// Job Scheduling" (PAPERS.md): with a fixed worker pool, refusing
// excess work at the door beats queueing it unboundedly.
//
// Determinism boundary: everything *inside* a run is simulated time and
// seeded randomness, same as `lbos run`. The serving shell around it is
// operational — wall-clock latency histograms (via internal/clock, the
// sanctioned stopwatch) and request counters live outside the
// bit-identical contract and are exposed on /v1/metricsz, never mixed
// into result documents.
package serve

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"

	"repro/internal/clock"
	"repro/internal/exp"
	"repro/internal/metrics"
)

// Config tunes a Server.
type Config struct {
	// Workers is the number of concurrent experiment executions
	// (default 2; each execution may itself fan out per Spec.Parallel).
	Workers int
	// QueueDepth bounds the submission queue; a full queue sheds new
	// runs with 429 (default 16).
	QueueDepth int
	// CacheBytes bounds the result cache (default 256 MiB).
	CacheBytes int64
	// RetryAfterSeconds is advertised on 429 responses (default 1).
	RetryAfterSeconds int
	// Version overrides the code version in cache keys (tests pin it;
	// "" resolves CodeVersion()).
	Version string
	// Log receives operational progress lines (nil discards).
	Log io.Writer
}

// Run states reported by the API.
const (
	StateQueued    = "queued"
	StateRunning   = "running"
	StateDone      = "done"
	StateFailed    = "failed"
	StateCancelled = "cancelled"
)

// Cache verdicts reported on submission.
const (
	// CacheHit: the result existed before this submission; no execution.
	CacheHit = "hit"
	// CacheMiss: this submission enqueued a fresh execution.
	CacheMiss = "miss"
	// CacheJoin: an identical spec was already queued or running; this
	// submission attached to it instead of executing again.
	CacheJoin = "join"
)

// maxRuns bounds the run-metadata map; terminal runs beyond it are
// evicted oldest-first (their result bytes live on in the cache).
const maxRuns = 1024

// maxBodyBytes bounds request bodies; specs are small documents.
const maxBodyBytes = 1 << 20

// maxBatchSpecs bounds one batch submission.
const maxBatchSpecs = 256

// run is one submission's lifecycle record.
type run struct {
	id   string
	spec Spec

	// done closes when the run reaches a terminal state.
	done chan struct{}
	// interrupt closes when cancellation is requested; it propagates
	// into exp.Context.Interrupt so the grid aborts between cells.
	interrupt chan struct{}

	mu        sync.Mutex
	state     string
	errMsg    string
	body      []byte
	trace     []byte
	cacheHit  bool
	cancelled bool // cancellation requested
}

// snapshot reads the run's mutable state consistently.
func (r *run) snapshot() (state, errMsg string, body, trace []byte, cacheHit bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.state, r.errMsg, r.body, r.trace, r.cacheHit
}

// Server executes experiment specs over HTTP with caching, bounded
// concurrency and graceful drain. Build with New, mount Handler, and
// call Drain before exit.
type Server struct {
	cfg     Config
	version string
	cache   *Cache
	met     *lockedRegistry
	mux     *http.ServeMux

	mu       sync.Mutex
	runs     map[string]*run
	runOrder []string
	draining bool
	queue    chan *run
	wg       sync.WaitGroup

	// executor runs one canonical spec; tests substitute a stub to make
	// backpressure and cancellation deterministic.
	executor func(spec Spec, interrupt <-chan struct{}) (body, trace []byte, err error)
}

// New builds a server and starts its worker pool.
func New(cfg Config) *Server {
	if cfg.Workers <= 0 {
		cfg.Workers = 2
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 16
	}
	if cfg.RetryAfterSeconds <= 0 {
		cfg.RetryAfterSeconds = 1
	}
	version := cfg.Version
	if version == "" {
		version = CodeVersion()
	}
	s := &Server{
		cfg:     cfg,
		version: version,
		cache:   NewCache(cfg.CacheBytes),
		met:     newLockedRegistry(),
		runs:    make(map[string]*run),
		queue:   make(chan *run, cfg.QueueDepth),
	}
	s.executor = func(spec Spec, interrupt <-chan struct{}) ([]byte, []byte, error) {
		return executeSpec(spec, s.version, interrupt)
	}
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("POST /v1/runs", s.handleSubmit)
	s.mux.HandleFunc("POST /v1/batches", s.handleBatch)
	s.mux.HandleFunc("GET /v1/runs/{id}", s.handleStatus)
	s.mux.HandleFunc("DELETE /v1/runs/{id}", s.handleCancel)
	s.mux.HandleFunc("GET /v1/runs/{id}/result", s.handleResult)
	s.mux.HandleFunc("GET /v1/runs/{id}/trace", s.handleTrace)
	s.mux.HandleFunc("GET /v1/experiments", s.handleExperiments)
	s.mux.HandleFunc("GET /v1/healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /v1/metricsz", s.handleMetricsz)
	for i := 0; i < cfg.Workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s
}

// Handler returns the HTTP handler tree (mount at "/").
func (s *Server) Handler() http.Handler { return s.mux }

// Version returns the code version baked into this server's cache keys.
func (s *Server) Version() string { return s.version }

// Drain stops admitting new runs (503), lets queued and running ones
// finish, and returns when the worker pool has exited. Safe to call
// more than once.
func (s *Server) Drain() {
	s.mu.Lock()
	if !s.draining {
		s.draining = true
		close(s.queue)
	}
	s.mu.Unlock()
	s.wg.Wait()
}

// logf writes an operational progress line.
func (s *Server) logf(format string, args ...any) {
	if s.cfg.Log != nil {
		fmt.Fprintf(s.cfg.Log, format+"\n", args...)
	}
}

// worker executes queued runs until the queue closes on drain.
func (s *Server) worker() {
	defer s.wg.Done()
	for r := range s.queue {
		s.execute(r)
	}
}

// execute drives one run to a terminal state and publishes its result.
func (s *Server) execute(r *run) {
	r.mu.Lock()
	if r.cancelled {
		r.state = StateCancelled
		r.errMsg = "cancelled before execution started"
		r.mu.Unlock()
		s.met.inc("serve.runs.cancelled")
		close(r.done)
		return
	}
	r.state = StateRunning
	r.mu.Unlock()

	sw := clock.Start()
	body, trace, err := s.executor(r.spec, r.interrupt)
	s.met.observeMs("serve.exec_ms", sw.Elapsed().Seconds()*1e3)

	r.mu.Lock()
	switch {
	case err != nil && errors.Is(err, exp.ErrInterrupted):
		r.state = StateCancelled
		r.errMsg = err.Error()
		s.met.inc("serve.runs.cancelled")
	case err != nil:
		r.state = StateFailed
		r.errMsg = err.Error()
		s.met.inc("serve.runs.failed")
	default:
		r.state = StateDone
		r.body = body
		r.trace = trace
		s.cache.Put(r.id, Entry{Body: body, Trace: trace})
		s.met.inc("serve.runs.executed")
	}
	state, errMsg := r.state, r.errMsg
	r.mu.Unlock()
	close(r.done)
	if errMsg != "" {
		s.logf("lbosd: run %s %s: %s (%s)", r.id[:12], state, errMsg, r.spec.Experiment)
	} else {
		s.logf("lbosd: run %s %s (%s, %d bytes)", r.id[:12], state, r.spec.Experiment, len(body))
	}
}

// submit admits one canonical spec. The verdict is CacheHit (result
// served without execution), CacheJoin (attached to an identical
// in-flight run) or CacheMiss (fresh execution enqueued); errors are
// errShed (queue full) or errDraining.
var (
	errShed     = errors.New("serve: queue full")
	errDraining = errors.New("serve: draining, not admitting runs")
)

func (s *Server) submit(spec Spec) (*run, string, error) {
	id := spec.Key(s.version)
	s.mu.Lock()
	defer s.mu.Unlock()

	if r, ok := s.runs[id]; ok {
		st, _, _, _, _ := r.snapshot()
		switch st {
		case StateDone:
			s.met.inc("serve.cache.hit")
			return r, CacheHit, nil
		case StateQueued, StateRunning:
			s.met.inc("serve.cache.join")
			return r, CacheJoin, nil
			// Failed and cancelled runs fall through: resubmission
			// replaces them with a fresh attempt.
		}
	}

	if e, ok := s.cache.Get(id); ok {
		// Result bytes survive run-metadata eviction; resurrect a
		// terminal run record around them.
		r := &run{
			id: id, spec: spec, state: StateDone, cacheHit: true,
			body: e.Body, trace: e.Trace,
			done: make(chan struct{}), interrupt: make(chan struct{}),
		}
		close(r.done)
		s.insertRunLocked(id, r)
		s.met.inc("serve.cache.hit")
		return r, CacheHit, nil
	}

	if s.draining {
		return nil, "", errDraining
	}
	r := &run{
		id: id, spec: spec, state: StateQueued,
		done: make(chan struct{}), interrupt: make(chan struct{}),
	}
	select {
	case s.queue <- r:
	default:
		s.met.inc("serve.queue.shed")
		return nil, "", errShed
	}
	s.insertRunLocked(id, r)
	s.met.inc("serve.cache.miss")
	return r, CacheMiss, nil
}

// insertRunLocked records a run and evicts the oldest terminal run
// records beyond maxRuns. Callers hold s.mu.
func (s *Server) insertRunLocked(id string, r *run) {
	s.runs[id] = r
	s.runOrder = append(s.runOrder, id)
	// Compact on map growth, and also when resubmissions have let the
	// order log accumulate duplicate IDs for replaced runs.
	if len(s.runs) <= maxRuns && len(s.runOrder) <= 2*maxRuns {
		return
	}
	kept := s.runOrder[:0]
	for _, old := range s.runOrder {
		rr, ok := s.runs[old]
		if !ok || rr == r {
			continue
		}
		st, _, _, _, _ := rr.snapshot()
		if len(s.runs) > maxRuns && (st == StateDone || st == StateFailed || st == StateCancelled) {
			delete(s.runs, old)
			continue
		}
		kept = append(kept, old)
	}
	s.runOrder = append(kept, id)
}

// lookup finds a run by ID, falling back to a cache-only record for
// results whose metadata was evicted.
func (s *Server) lookup(id string) (*run, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if r, ok := s.runs[id]; ok {
		return r, true
	}
	if e, ok := s.cache.Get(id); ok {
		r := &run{
			id: id, state: StateDone, cacheHit: true,
			body: e.Body, trace: e.Trace,
			done: make(chan struct{}), interrupt: make(chan struct{}),
		}
		close(r.done)
		return r, true
	}
	return nil, false
}

// StatusDoc is the JSON shape of a run's state.
type StatusDoc struct {
	ID string `json:"id"`
	// State is queued, running, done, failed or cancelled.
	State string `json:"state"`
	// Cache is the submission verdict: hit, miss or join.
	Cache string `json:"cache,omitempty"`
	Error string `json:"error,omitempty"`
	// Result and Trace are fetch paths, present once the run is done.
	Result string `json:"result,omitempty"`
	Trace  string `json:"trace,omitempty"`
}

// statusDoc renders a run's current state.
func (s *Server) statusDoc(r *run, verdict string) StatusDoc {
	st, errMsg, _, trace, _ := r.snapshot()
	doc := StatusDoc{ID: r.id, State: st, Cache: verdict, Error: errMsg}
	if st == StateDone {
		doc.Result = "/v1/runs/" + r.id + "/result"
		if len(trace) > 0 {
			doc.Trace = "/v1/runs/" + r.id + "/trace"
		}
	}
	return doc
}

// errorDoc is the JSON error body.
type errorDoc struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	b, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	w.Write(append(b, '\n'))
}

func (s *Server) writeError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, errorDoc{Error: fmt.Sprintf(format, args...)})
}

// readSpec decodes and canonicalizes the request body's spec.
func (s *Server) readSpec(w http.ResponseWriter, req *http.Request) (Spec, bool) {
	data, err := io.ReadAll(http.MaxBytesReader(w, req.Body, maxBodyBytes))
	if err != nil {
		s.writeError(w, http.StatusBadRequest, "reading request body: %v", err)
		return Spec{}, false
	}
	spec, err := ParseSpec(data)
	if err == nil {
		spec, err = spec.Canonicalize()
	}
	if err != nil {
		s.writeError(w, http.StatusBadRequest, "%v", err)
		return Spec{}, false
	}
	return spec, true
}

// handleSubmit is POST /v1/runs: admit a spec, optionally (?wait=1)
// blocking until the result is ready and returning it directly.
func (s *Server) handleSubmit(w http.ResponseWriter, req *http.Request) {
	sw := clock.Start()
	s.met.inc("serve.requests.runs_submit")
	spec, ok := s.readSpec(w, req)
	if !ok {
		return
	}
	r, verdict, err := s.submit(spec)
	switch {
	case errors.Is(err, errShed):
		w.Header().Set("Retry-After", fmt.Sprintf("%d", s.cfg.RetryAfterSeconds))
		s.writeError(w, http.StatusTooManyRequests,
			"queue full (%d queued, %d workers); retry after %ds",
			s.cfg.QueueDepth, s.cfg.Workers, s.cfg.RetryAfterSeconds)
		return
	case errors.Is(err, errDraining):
		s.writeError(w, http.StatusServiceUnavailable, "server is draining")
		return
	}

	if req.URL.Query().Get("wait") == "" {
		code := http.StatusAccepted
		if verdict == CacheHit {
			code = http.StatusOK
		}
		writeJSON(w, code, s.statusDoc(r, verdict))
		return
	}

	<-r.done
	s.met.observeMs("serve.request_ms", sw.Elapsed().Seconds()*1e3)
	st, errMsg, body, _, _ := r.snapshot()
	switch st {
	case StateDone:
		w.Header().Set("X-Lbos-Cache", verdict)
		w.Header().Set("Content-Type", "application/json")
		w.Write(body)
	case StateCancelled:
		s.writeError(w, http.StatusConflict, "run cancelled: %s", errMsg)
	default:
		s.writeError(w, http.StatusInternalServerError, "run failed: %s", errMsg)
	}
}

// batchRequest and batchItem are the POST /v1/batches shapes.
type batchRequest struct {
	Specs []json.RawMessage `json:"specs"`
}

type batchItem struct {
	Index int    `json:"index"`
	ID    string `json:"id,omitempty"`
	State string `json:"state"`
	Cache string `json:"cache,omitempty"`
	Error string `json:"error,omitempty"`
}

type batchResponse struct {
	Items []batchItem `json:"items"`
}

// handleBatch is POST /v1/batches: admit many specs in one request.
// Admission is per-item — a full queue rejects the remaining items
// individually instead of failing the whole batch.
func (s *Server) handleBatch(w http.ResponseWriter, req *http.Request) {
	s.met.inc("serve.requests.batches")
	data, err := io.ReadAll(http.MaxBytesReader(w, req.Body, maxBodyBytes))
	if err != nil {
		s.writeError(w, http.StatusBadRequest, "reading request body: %v", err)
		return
	}
	var br batchRequest
	if err := json.Unmarshal(data, &br); err != nil {
		s.writeError(w, http.StatusBadRequest, "invalid batch: %v", err)
		return
	}
	if len(br.Specs) == 0 {
		s.writeError(w, http.StatusBadRequest, "batch has no specs")
		return
	}
	if len(br.Specs) > maxBatchSpecs {
		s.writeError(w, http.StatusBadRequest, "batch of %d specs exceeds the %d limit", len(br.Specs), maxBatchSpecs)
		return
	}
	resp := batchResponse{Items: make([]batchItem, 0, len(br.Specs))}
	for i, raw := range br.Specs {
		item := batchItem{Index: i}
		spec, err := ParseSpec(raw)
		if err == nil {
			spec, err = spec.Canonicalize()
		}
		if err != nil {
			item.State = "invalid"
			item.Error = err.Error()
			resp.Items = append(resp.Items, item)
			continue
		}
		r, verdict, err := s.submit(spec)
		if err != nil {
			item.State = "rejected"
			item.Error = err.Error()
			resp.Items = append(resp.Items, item)
			continue
		}
		st, _, _, _, _ := r.snapshot()
		item.ID = r.id
		item.State = st
		item.Cache = verdict
		resp.Items = append(resp.Items, item)
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleStatus is GET /v1/runs/{id}.
func (s *Server) handleStatus(w http.ResponseWriter, req *http.Request) {
	s.met.inc("serve.requests.status")
	r, ok := s.lookup(req.PathValue("id"))
	if !ok {
		s.writeError(w, http.StatusNotFound, "unknown run %q", req.PathValue("id"))
		return
	}
	_, _, _, _, hit := r.snapshot()
	verdict := ""
	if hit {
		verdict = CacheHit
	}
	writeJSON(w, http.StatusOK, s.statusDoc(r, verdict))
}

// handleCancel is DELETE /v1/runs/{id}: request cancellation. Queued
// runs cancel before starting; running ones abort between grid cells
// (exp.Context.Interrupt). Terminal runs are unaffected.
func (s *Server) handleCancel(w http.ResponseWriter, req *http.Request) {
	s.met.inc("serve.requests.cancel")
	s.mu.Lock()
	r, ok := s.runs[req.PathValue("id")]
	s.mu.Unlock()
	if !ok {
		s.writeError(w, http.StatusNotFound, "unknown run %q", req.PathValue("id"))
		return
	}
	r.mu.Lock()
	terminal := r.state == StateDone || r.state == StateFailed || r.state == StateCancelled
	if !terminal && !r.cancelled {
		r.cancelled = true
		close(r.interrupt)
	}
	r.mu.Unlock()
	if terminal {
		writeJSON(w, http.StatusConflict, s.statusDoc(r, ""))
		return
	}
	writeJSON(w, http.StatusAccepted, s.statusDoc(r, ""))
}

// handleResult is GET /v1/runs/{id}/result (?format=json|csv|text).
func (s *Server) handleResult(w http.ResponseWriter, req *http.Request) {
	s.met.inc("serve.requests.result")
	r, ok := s.lookup(req.PathValue("id"))
	if !ok {
		s.writeError(w, http.StatusNotFound, "unknown run %q", req.PathValue("id"))
		return
	}
	st, errMsg, body, _, _ := r.snapshot()
	switch st {
	case StateDone:
	case StateFailed:
		s.writeError(w, http.StatusInternalServerError, "run failed: %s", errMsg)
		return
	case StateCancelled:
		s.writeError(w, http.StatusConflict, "run cancelled: %s", errMsg)
		return
	default:
		s.writeError(w, http.StatusConflict, "run is %s; poll /v1/runs/%s until done", st, r.id)
		return
	}
	switch format := req.URL.Query().Get("format"); format {
	case "", "json":
		w.Header().Set("Content-Type", "application/json")
		w.Write(body)
	case "csv", "text":
		rendered, err := renderResult(body, format)
		if err != nil {
			s.writeError(w, http.StatusInternalServerError, "rendering result: %v", err)
			return
		}
		if format == "csv" {
			w.Header().Set("Content-Type", "text/csv; charset=utf-8")
		} else {
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		}
		w.Write(rendered)
	default:
		s.writeError(w, http.StatusBadRequest, "unknown format %q (want json, csv or text)", format)
	}
}

// handleTrace is GET /v1/runs/{id}/trace.
func (s *Server) handleTrace(w http.ResponseWriter, req *http.Request) {
	s.met.inc("serve.requests.trace")
	r, ok := s.lookup(req.PathValue("id"))
	if !ok {
		s.writeError(w, http.StatusNotFound, "unknown run %q", req.PathValue("id"))
		return
	}
	st, _, _, trace, _ := r.snapshot()
	if st != StateDone {
		s.writeError(w, http.StatusConflict, "run is %s; poll /v1/runs/%s until done", st, r.id)
		return
	}
	if len(trace) == 0 {
		s.writeError(w, http.StatusNotFound, "run %s was submitted without \"trace\": true", r.id)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(trace)
}

// ExperimentInfo is one registry entry on GET /v1/experiments.
type ExperimentInfo struct {
	ID       string `json:"id"`
	Title    string `json:"title"`
	PaperRef string `json:"paper_ref"`
	Expect   string `json:"expect,omitempty"`
}

// handleExperiments is GET /v1/experiments: the addressable registry.
func (s *Server) handleExperiments(w http.ResponseWriter, _ *http.Request) {
	s.met.inc("serve.requests.experiments")
	var out []ExperimentInfo
	for _, e := range exp.All() {
		out = append(out, ExperimentInfo{ID: e.ID, Title: e.Title, PaperRef: e.PaperRef, Expect: e.Expect})
	}
	writeJSON(w, http.StatusOK, out)
}

// healthDoc is the GET /v1/healthz shape.
type healthDoc struct {
	Status   string `json:"status"`
	Version  string `json:"version"`
	Workers  int    `json:"workers"`
	QueueLen int    `json:"queue_len"`
	QueueCap int    `json:"queue_cap"`
	Runs     int    `json:"runs"`
}

// handleHealthz is GET /v1/healthz.
func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	doc := healthDoc{
		Status:   "ok",
		Version:  s.version,
		Workers:  s.cfg.Workers,
		QueueLen: len(s.queue),
		QueueCap: s.cfg.QueueDepth,
		Runs:     len(s.runs),
	}
	if s.draining {
		doc.Status = "draining"
	}
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, doc)
}

// handleMetricsz is GET /v1/metricsz: the operational counters and
// latency histograms, plus cache statistics.
func (s *Server) handleMetricsz(w http.ResponseWriter, _ *http.Request) {
	hits, misses, evicted, entries, bytes := s.cache.Stats()
	snap := s.met.snapshot()
	writeJSON(w, http.StatusOK, struct {
		Cache struct {
			Hits    int64 `json:"hits"`
			Misses  int64 `json:"misses"`
			Evicted int64 `json:"evicted"`
			Entries int   `json:"entries"`
			Bytes   int64 `json:"bytes"`
		} `json:"cache"`
		Metrics metrics.Snapshot `json:"metrics"`
	}{
		Cache: struct {
			Hits    int64 `json:"hits"`
			Misses  int64 `json:"misses"`
			Evicted int64 `json:"evicted"`
			Entries int   `json:"entries"`
			Bytes   int64 `json:"bytes"`
		}{hits, misses, evicted, entries, bytes},
		Metrics: snap,
	})
}

// lockedRegistry guards an internal/metrics Registry for concurrent
// handler and worker goroutines. The registry itself is single-owner by
// design (simulation cells); the serving shell adds the lock.
type lockedRegistry struct {
	mu  sync.Mutex
	reg *metrics.Registry
}

func newLockedRegistry() *lockedRegistry {
	return &lockedRegistry{reg: metrics.NewRegistry()}
}

func (l *lockedRegistry) inc(name string) {
	l.mu.Lock()
	l.reg.Counter(name).Inc()
	l.mu.Unlock()
}

// latencyBuckets covers 0.1 ms .. ~1.6 min in geometric steps.
var latencyBuckets = metrics.ExpBuckets(0.1, 2, 20)

func (l *lockedRegistry) observeMs(name string, ms float64) {
	l.mu.Lock()
	l.reg.Histogram(name, latencyBuckets).Observe(ms)
	l.mu.Unlock()
}

func (l *lockedRegistry) snapshot() metrics.Snapshot {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.reg.Snapshot()
}

// renderResult re-renders a cached JSON result document as CSV or text
// tables. Both renderings are pure functions of the document bytes, so
// they inherit its determinism.
func renderResult(body []byte, format string) ([]byte, error) {
	var doc ResultDoc
	if err := json.Unmarshal(body, &doc); err != nil {
		return nil, err
	}
	var out bytes.Buffer
	for i, td := range doc.Tables {
		if i > 0 {
			out.WriteByte('\n')
		}
		t := &exp.Table{Title: td.Title, Columns: td.Columns, Rows: td.Rows, Notes: td.Notes}
		if format == "csv" {
			fmt.Fprintf(&out, "# table: %s\n", strings.ReplaceAll(td.Title, "\n", " "))
			t.CSV(&out)
		} else {
			t.Render(&out)
		}
	}
	return out.Bytes(), nil
}
