// Package a seeds every windowsafe violation class. The Machine/metrics
// doubles mirror the sim and metrics surfaces; the analyzer matches
// receivers by named type, so these exercise the same code paths. The
// deep fixtures are the point of the call-graph upgrade: hazards the old
// per-statement check could never see because they sit behind helper
// calls.
package a

// Machine mirrors sim.Machine's machine-global and shard surfaces.
type Machine struct{ n int }

func (m *Machine) Stop()                       {}
func (m *Machine) Sync()                       {}
func (m *Machine) NewTask(name string)         {}
func (m *Machine) SetCoreOnline(c int, o bool) {}
func (m *Machine) RNG() int                    { return 0 }
func (m *Machine) Emit(kind string)            {}
func (m *Machine) drainShard(s int)            {}

// Counter/Registry mirror the metrics surface.
type Counter struct{}

func (c *Counter) Inc() {}

type Registry struct{}

func (r *Registry) Counter(name string) *Counter { return &Counter{} }

var totalSteals int64

// workerCallsMachineGlobals is the depth-0 case the old nodeterm check
// covered: machine-global calls directly inside the go-launched literal.
func workerCallsMachineGlobals(m *Machine, done chan struct{}) {
	for s := 0; s < 4; s++ {
		go func(s int) {
			m.drainShard(s)
			m.Sync()                  // want machineglobal:"Machine.Sync is a machine-global, event-loop-only operation"
			m.NewTask("straggler")    // want machineglobal:"Machine.NewTask is a machine-global, event-loop-only operation"
			m.SetCoreOnline(s, false) // want machineglobal:"Machine.SetCoreOnline is a machine-global, event-loop-only operation"
			_ = m.RNG()               // want machineglobal:"Machine.RNG is a machine-global, event-loop-only operation"
			m.Stop()                  // want machineglobal:"Machine.Stop is a machine-global, event-loop-only operation"
			done <- struct{}{}
		}(s)
	}
}

// mergeResults sits two call-graph edges below the worker literal; the
// per-statement check was blind to it. The diagnostic must carry the
// witness path.
func (m *Machine) mergeResults() {
	m.Sync() // want machineglobal:"reachable from a go-launched worker via \\(\\*Machine\\)\\.finishShard → \\(\\*Machine\\)\\.mergeResults"
}

func (m *Machine) finishShard(s int) {
	m.drainShard(s)
	m.mergeResults()
}

func workerDeepHazard(m *Machine, done chan struct{}) {
	go func() {
		m.finishShard(0)
		done <- struct{}{}
	}()
}

// workerEmits: observability is detached while windows are open, so any
// emission on a worker path is a hazard — including a registry lookup,
// which lazily allocates.
func workerEmits(m *Machine, c *Counter, r *Registry, done chan struct{}) {
	go func() {
		m.Emit("tick")      // want windowsafe:"Machine.Emit emits tracer/metrics state shared across shards"
		c.Inc()             // want windowsafe:"Counter.Inc emits tracer/metrics state shared across shards"
		r.Counter("steals") // want windowsafe:"Registry.Counter emits tracer/metrics state shared across shards"
		done <- struct{}{}
	}()
}

// bumpGlobal is reachable from the worker below: a package-level write
// one helper deep.
func bumpGlobal() {
	totalSteals++ // want windowsafe:"write to package-level variable totalSteals"
}

func workerWritesGlobal(done chan struct{}) {
	go func() {
		totalSteals = 0 // want windowsafe:"write to package-level variable totalSteals"
		bumpGlobal()
		done <- struct{}{}
	}()
}
