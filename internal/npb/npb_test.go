package npb_test

import (
	"testing"
	"time"

	"repro/internal/cfs"
	"repro/internal/cpuset"
	"repro/internal/npb"
	"repro/internal/sim"
	"repro/internal/spmd"
	"repro/internal/topo"
)

func TestSuiteStable(t *testing.T) {
	s := npb.Suite()
	if len(s) != 6 {
		t.Fatalf("suite size %d", len(s))
	}
	for i := 1; i < len(s); i++ {
		if s[i-1].Name >= s[i].Name {
			t.Errorf("suite not sorted at %d: %s ≥ %s", i, s[i-1].Name, s[i].Name)
		}
	}
}

func TestByName(t *testing.T) {
	b, err := npb.ByName("ft.B")
	if err != nil || b.Name != "ft.B" {
		t.Errorf("ByName(ft.B) = %v, %v", b.Name, err)
	}
	if _, err := npb.ByName("lu.A"); err == nil {
		t.Error("unknown benchmark found")
	}
}

// Calibration sanity: each benchmark's parameters are positive, memory
// intensity in [0,1], and the suite spans fine (sp ~2 ms) to coarse
// (ft ~100 ms) barrier granularity as in Table 2.
func TestCalibrationRanges(t *testing.T) {
	for _, b := range npb.Suite() {
		if b.WorkPerIteration <= 0 || b.Iterations < 1 || b.RSSPerThread <= 0 {
			t.Errorf("%s: non-positive parameters %+v", b.Name, b)
		}
		if b.MemIntensity < 0 || b.MemIntensity > 1 {
			t.Errorf("%s: mem intensity %v", b.Name, b.MemIntensity)
		}
	}
	sp, _ := npb.ByName("sp.A")
	ft, _ := npb.ByName("ft.B")
	if spT := sp.InterBarrierTime(1.0); spT < time.Millisecond || spT > 4*time.Millisecond {
		t.Errorf("sp.A inter-barrier %v, want ≈ 2ms", spT)
	}
	if ftT := ft.InterBarrierTime(1.0); ftT < 70*time.Millisecond || ftT > 130*time.Millisecond {
		t.Errorf("ft.B inter-barrier %v, want ≈ 100ms", ftT)
	}
}

// The closed-form speedup predictions match Table 2 within ~10%.
func TestClosedFormSpeedups(t *testing.T) {
	paper := []struct {
		name string
		want [2]float64 // Tigerton, Barcelona
	}{
		{"bt.A", [2]float64{4.6, 10.0}},
		{"ft.B", [2]float64{5.3, 10.5}},
		{"sp.A", [2]float64{7.2, 12.4}},
	}
	for _, c := range paper {
		name, want := c.name, c.want
		b, _ := npb.ByName(name)
		m := b.MemIntensity
		fT := 1 - m + 1.0/4
		fB := 1 - m + 2.4/4
		if gotT := 16 * fT; gotT < want[0]*0.9 || gotT > want[0]*1.1 {
			t.Errorf("%s Tigerton prediction %.1f, paper %.1f", name, gotT, want[0])
		}
		if gotB := 16 * fB; gotB < want[1]*0.88 || gotB > want[1]*1.12 {
			t.Errorf("%s Barcelona prediction %.1f, paper %.1f", name, gotB, want[1])
		}
	}
}

// End-to-end calibration: a 16-thread one-per-core ep.C run scales
// perfectly; ft.B saturates the FSB near its Table 2 speedup.
func TestMeasuredSpeedups(t *testing.T) {
	run := func(b npb.Benchmark, scale int) float64 {
		m := sim.New(topo.Tigerton(), sim.Config{Seed: 1, NewScheduler: cfs.Factory()})
		spec := b.Spec(16, spmd.UPC(), cpuset.All(16))
		spec.Iterations /= scale
		if spec.Iterations < 1 {
			spec.Iterations = 1
		}
		if spec.Iterations == 1 && b.Iterations == 1 {
			spec.WorkPerIteration /= float64(scale)
		}
		app := spmd.Build(m, spec)
		app.StartPinned()
		m.Run(int64(10 * time.Minute))
		if !app.Done() {
			t.Fatalf("%s did not finish", b.Name)
		}
		return app.Speedup()
	}
	if sp := run(npb.EP, 8); sp < 15.5 {
		t.Errorf("ep.C speedup %v, want ≈ 16", sp)
	}
	if sp := run(npb.FT, 8); sp < 4.7 || sp > 5.9 {
		t.Errorf("ft.B speedup %v, want ≈ 5.3 (Table 2)", sp)
	}
}

func TestClassS(t *testing.T) {
	s := npb.ClassS(npb.CG)
	if s.Name != "cg.S" {
		t.Errorf("class S name %q", s.Name)
	}
	if s.WorkPerIteration >= npb.CG.WorkPerIteration/16 {
		t.Error("class S work not shrunk enough")
	}
	if s.Iterations < 1 {
		t.Error("class S iterations < 1")
	}
}

func TestSpecWiring(t *testing.T) {
	spec := npb.IS.Spec(8, spmd.UPCSleep(), cpuset.All(4))
	if spec.Threads != 8 || spec.Model.Name != "upc-sleep" || spec.Affinity != cpuset.All(4) {
		t.Errorf("spec wiring: %+v", spec)
	}
	if spec.RSSBytes != npb.IS.RSSPerThread || spec.MemIntensity != npb.IS.MemIntensity {
		t.Error("spec does not carry benchmark memory parameters")
	}
}
