// Package a seeds slotsafety violations against a stand-in for the
// experiment Runner: cell functions that capture submission-loop
// variables or mutate state shared across concurrently running cells.
package a

// RunResult mirrors exp.RunResult.
type RunResult struct{ Elapsed int64 }

// Runner mirrors exp.Runner's submission surface; the analyzer matches
// the named type, so this double exercises the same code path.
type Runner struct{}

func (r *Runner) SubmitFunc(label string, run func() RunResult, fn func(RunResult)) {}

func measure(seed uint64) RunResult { return RunResult{Elapsed: int64(seed)} }

func capturesIndexVar(r *Runner, seeds []uint64) {
	for i := 0; i < len(seeds); i++ {
		r.SubmitFunc("cell",
			func() RunResult { return measure(seeds[i]) }, // want "captures loop variable i"
			nil)
	}
}

func capturesRangeVar(r *Runner, seeds []uint64) {
	for _, s := range seeds {
		r.SubmitFunc("cell",
			func() RunResult { return measure(s) }, // want "captures loop variable s"
			nil)
	}
}

func mutatesSharedCounter(r *Runner, seeds []uint64) int {
	done := 0
	for _, s := range seeds {
		s := s
		r.SubmitFunc("cell", func() RunResult {
			done++ // want "mutates done"
			return measure(s)
		}, nil)
	}
	return done
}

func mutatesSharedSlice(r *Runner, seeds []uint64) []int64 {
	var out []int64
	for _, s := range seeds {
		s := s
		r.SubmitFunc("cell", func() RunResult {
			res := measure(s)
			out = append(out, res.Elapsed) // want "mutates out"
			return res
		}, nil)
	}
	return out
}

func mutatesSharedMap(r *Runner, seeds []uint64) map[uint64]int64 {
	seen := map[uint64]int64{}
	for _, s := range seeds {
		s := s
		r.SubmitFunc("cell", func() RunResult {
			res := measure(s)
			seen[s] = res.Elapsed // want "mutates seen"
			delete(seen, 0)       // want "mutates seen"
			return res
		}, nil)
	}
	return seen
}

func mutatesThroughField(r *Runner, agg *struct{ total int64 }) {
	r.SubmitFunc("cell", func() RunResult {
		res := measure(1)
		agg.total += res.Elapsed // want "mutates agg"
		return res
	}, nil)
}

// shardState mirrors one shard's slot in the machine's shardStates.
type shardState struct {
	events int
	now    int64
}

func workerMutatesSharedTotal(states []shardState) int {
	total := 0
	for s := 0; s < len(states); s++ {
		go func(s int) {
			states[s].events++
			total += states[s].events // want "mutates total"
		}(s)
	}
	return total
}

func workerCapturesLoopVar(states []shardState) {
	for s := 0; s < len(states); s++ {
		go func() {
			states[s].events++ // want "mutates states" "captures loop variable s"
		}()
	}
}

func workerWritesOtherSlot(states []shardState, horizon int64) {
	for s := 0; s < len(states); s++ {
		go func(s int) {
			// The index is not the worker's own parameter: shared.
			states[0].now = horizon // want "mutates states"
		}(s)
	}
}

func workerDeletesSharedMap(pending map[int]int, shards int) {
	for s := 0; s < shards; s++ {
		go func(s int) {
			delete(pending, s) // want "mutates pending"
		}(s)
	}
}
