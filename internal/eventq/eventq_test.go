package eventq

import (
	"sort"
	"testing"
	"testing/quick"
)

// Events pop in time order.
func TestPopOrder(t *testing.T) {
	var q Queue
	times := []Time{50, 10, 30, 20, 40}
	for _, at := range times {
		q.Push(at, nil)
	}
	want := append([]Time(nil), times...)
	sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
	for i, w := range want {
		e := q.Pop()
		if e == nil || e.At != w {
			t.Fatalf("pop %d: got %v, want %v", i, e, w)
		}
	}
	if q.Pop() != nil {
		t.Error("pop from empty queue returned event")
	}
}

// Same-time events fire in scheduling order (stability) — the
// determinism guarantee the simulator relies on.
func TestSameTimeStability(t *testing.T) {
	var q Queue
	var fired []int
	for i := 0; i < 100; i++ {
		i := i
		q.Push(7, func(Time) { fired = append(fired, i) })
	}
	for {
		e := q.Pop()
		if e == nil {
			break
		}
		e.Fire(e.At)
	}
	for i, v := range fired {
		if v != i {
			t.Fatalf("same-time order violated at %d: %v", i, fired[:i+1])
		}
	}
}

// Remove cancels exactly the chosen event, once.
func TestRemove(t *testing.T) {
	var q Queue
	a := q.Push(1, nil)
	b := q.Push(2, nil)
	c := q.Push(3, nil)
	if !q.Remove(b) {
		t.Fatal("Remove(b) = false")
	}
	if q.Remove(b) {
		t.Error("second Remove(b) = true")
	}
	if q.Len() != 2 {
		t.Fatalf("len %d, want 2", q.Len())
	}
	if e := q.Pop(); e != a {
		t.Errorf("first pop = %v, want a", e.At)
	}
	if e := q.Pop(); e != c {
		t.Errorf("second pop = %v, want c", e.At)
	}
	if q.Remove(a) {
		t.Error("Remove of popped event = true")
	}
	if q.Remove(nil) {
		t.Error("Remove(nil) = true")
	}
}

func TestPeek(t *testing.T) {
	var q Queue
	if q.Peek() != nil {
		t.Error("Peek on empty returned event")
	}
	q.Push(5, nil)
	q.Push(2, nil)
	if e := q.Peek(); e == nil || e.At != 2 {
		t.Errorf("Peek = %v, want at=2", e)
	}
	if q.Len() != 2 {
		t.Error("Peek consumed an event")
	}
}

// Property: for any sequence of pushes (with arbitrary times), popping
// everything yields a sorted-by-(time, insertion) sequence.
func TestPropertyHeapOrdering(t *testing.T) {
	f := func(times []int16) bool {
		var q Queue
		type rec struct {
			at  Time
			seq int
		}
		var want []rec
		for i, raw := range times {
			at := Time(raw)
			q.Push(at, nil)
			want = append(want, rec{at, i})
		}
		sort.SliceStable(want, func(i, j int) bool { return want[i].at < want[j].at })
		for i := range want {
			e := q.Pop()
			if e == nil || e.At != want[i].at {
				return false
			}
		}
		return q.Pop() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: interleaved removes keep the heap consistent.
func TestPropertyRemoveConsistency(t *testing.T) {
	f := func(times []int16, removeMask []bool) bool {
		var q Queue
		var events []*Event
		for _, raw := range times {
			events = append(events, q.Push(Time(raw), nil))
		}
		removed := 0
		for i, e := range events {
			if i < len(removeMask) && removeMask[i] {
				if q.Remove(e) {
					removed++
				}
			}
		}
		if q.Len() != len(events)-removed {
			return false
		}
		last := Time(-1 << 62)
		for {
			e := q.Pop()
			if e == nil {
				break
			}
			if e.At < last {
				return false
			}
			last = e.At
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
