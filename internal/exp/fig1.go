package exp

import (
	"fmt"

	"repro/internal/model"
)

func init() {
	Register(&Experiment{
		ID:       "fig1",
		Title:    "Profitability threshold: minimum S vs cores and threads (B=1)",
		PaperRef: "Figure 1",
		Expect: "In the majority of cases S ≤ 1; increasing threads for fixed cores " +
			"relaxes the minimum S, increasing cores raises it; worst cases (high S) on " +
			"the diagonals with two threads per core and many slow cores; " +
			"data range ≈ [0.015, 147].",
		Run: runFig1,
	})
}

func runFig1(ctx *Context) []*Table {
	// The paper plots the full surface for cores and threads up to 100.
	// The table reports the same quantity on a readable grid plus the
	// global extrema of the full surface.
	cores := []int{4, 8, 16, 32, 64, 100}
	threads := []int{5, 9, 17, 33, 65, 101, 150, 200}

	t := &Table{
		Title:   "Minimum profitable S (units of B) — min S = 2·ceil(SQ/FQ)/(T+1)",
		Columns: append([]string{"threads\\cores"}, intsToStrings(cores)...),
	}
	for _, n := range threads {
		row := []any{fmt.Sprintf("%d", n)}
		for _, m := range cores {
			if n <= m {
				row = append(row, "-")
				continue
			}
			s := model.NewSplit(n, m)
			if s.Balanced() {
				row = append(row, "even")
				continue
			}
			row = append(row, fmt.Sprintf("%.3g", s.MinS()))
		}
		t.AddRow(row...)
	}

	// Full-surface extrema, as in the figure caption.
	min, max := 0.0, 0.0
	first := true
	count, leqOne := 0, 0
	for m := 2; m <= 100; m++ {
		for n := m + 1; n <= 2*100; n++ {
			s := model.NewSplit(n, m)
			if s.Balanced() {
				continue
			}
			v := s.MinS()
			if first || v < min {
				min = v
			}
			if first || v > max {
				max = v
			}
			first = false
			count++
			if v <= 1 {
				leqOne++
			}
		}
	}
	t.Note("full surface (cores 2–100, threads ≤ 200): range [%.3g, %.3g]; %d%% of cases have min S ≤ 1 (paper: range [0.015, 147], \"in the majority of cases S ≤ 1\")",
		min, max, 100*leqOne/count)

	// Brute-force validation of Lemma 1 on the same grid.
	viol := 0
	checked := 0
	for m := 2; m <= 40; m++ {
		for n := m + 1; n <= 80; n++ {
			s := model.NewSplit(n, m)
			if s.Balanced() {
				continue
			}
			checked++
			if model.SimulateSteps(s) > s.StepsBound() {
				viol++
			}
		}
	}
	t.Note("Lemma 1 brute-force check over %d (N,M) splits: %d bound violations", checked, viol)
	return []*Table{t}
}

func intsToStrings(xs []int) []string {
	out := make([]string, len(xs))
	for i, x := range xs {
		out[i] = fmt.Sprintf("%d", x)
	}
	return out
}
