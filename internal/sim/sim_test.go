package sim_test

import (
	"testing"
	"time"

	"repro/internal/cfs"
	"repro/internal/cpuset"
	"repro/internal/sim"
	"repro/internal/spmd"
	"repro/internal/task"
	"repro/internal/topo"
)

func newSMP(t *testing.T, n int, seed uint64) *sim.Machine {
	t.Helper()
	return sim.New(topo.SMP(n), sim.Config{Seed: seed, NewScheduler: cfs.Factory()})
}

// A single compute task on one core finishes in exactly its work time.
func TestSingleTaskComputesExactly(t *testing.T) {
	m := newSMP(t, 1, 1)
	tk := m.NewTask("t", &task.Seq{Actions: []task.Action{task.Compute{Work: 5e6}}})
	m.Start(tk)
	m.Run(int64(time.Second))
	if tk.State != task.Done {
		t.Fatalf("state = %v, want done", tk.State)
	}
	if got := tk.FinishedAt; got != 5e6 {
		t.Errorf("finished at %d ns, want 5e6", got)
	}
	if tk.ExecTime != 5*time.Millisecond {
		t.Errorf("exec time %v, want 5ms", tk.ExecTime)
	}
}

// Two equal tasks on one core share it fairly: both finish around 2W,
// and their exec times are equal.
func TestTwoTasksShareFairly(t *testing.T) {
	m := newSMP(t, 1, 1)
	a := m.NewTask("a", &task.Seq{Actions: []task.Action{task.Compute{Work: 50e6}}})
	b := m.NewTask("b", &task.Seq{Actions: []task.Action{task.Compute{Work: 50e6}}})
	m.Start(a)
	m.Start(b)
	m.Run(int64(time.Second))
	if a.State != task.Done || b.State != task.Done {
		t.Fatalf("states: %v %v", a.State, b.State)
	}
	// Total CPU time must equal total work.
	if total := a.ExecTime + b.ExecTime; total != 100*time.Millisecond {
		t.Errorf("total exec %v, want 100ms", total)
	}
	// Both finish within one slice of 100 ms.
	for _, tk := range []*task.Task{a, b} {
		if tk.FinishedAt < int64(90*time.Millisecond) || tk.FinishedAt > int64(100*time.Millisecond) {
			t.Errorf("%s finished at %v, want near 100ms", tk.Name, time.Duration(tk.FinishedAt))
		}
	}
}

// A lower nice value (higher priority) gets proportionally more CPU.
func TestNiceWeightsShareProportionally(t *testing.T) {
	m := newSMP(t, 1, 1)
	hi := m.NewTask("hi", &task.ComputeForever{Chunk: 1e6})
	lo := m.NewTask("lo", &task.ComputeForever{Chunk: 1e6})
	hi.Nice = -5 // weight 3121
	lo.Nice = 0  // weight 1024
	hi.Sched.Weight = task.NiceWeight(hi.Nice)
	m.Start(hi)
	m.Start(lo)
	m.Run(int64(10 * time.Second))
	m.Sync()
	ratio := float64(hi.ExecTime) / float64(lo.ExecTime)
	want := float64(task.NiceWeight(-5)) / float64(task.NiceWeight(0))
	if ratio < want*0.9 || ratio > want*1.1 {
		t.Errorf("exec ratio %.2f, want ≈ %.2f", ratio, want)
	}
}

// Tasks on separate cores run concurrently without interference.
func TestTwoCoresRunConcurrently(t *testing.T) {
	m := newSMP(t, 2, 1)
	a := m.NewTask("a", &task.Seq{Actions: []task.Action{task.Compute{Work: 5e6}}})
	b := m.NewTask("b", &task.Seq{Actions: []task.Action{task.Compute{Work: 5e6}}})
	m.Start(a)
	m.Start(b)
	m.Run(int64(time.Second))
	if a.FinishedAt != 5e6 || b.FinishedAt != 5e6 {
		t.Errorf("finish times %d %d, want 5e6 both", a.FinishedAt, b.FinishedAt)
	}
	if a.CoreID == b.CoreID {
		t.Errorf("both tasks placed on core %d", a.CoreID)
	}
}

// Sleep takes a task off the queue for the right duration.
func TestSleepDuration(t *testing.T) {
	m := newSMP(t, 1, 1)
	tk := m.NewTask("t", &task.Seq{Actions: []task.Action{
		task.Compute{Work: 1e6},
		task.Sleep{D: 3 * time.Millisecond},
		task.Compute{Work: 1e6},
	}})
	m.Start(tk)
	m.Run(int64(time.Second))
	if got, want := tk.FinishedAt, int64(5e6); got != want {
		t.Errorf("finished at %d, want %d", got, want)
	}
	if tk.ExecTime != 2*time.Millisecond {
		t.Errorf("exec %v, want 2ms", tk.ExecTime)
	}
}

// An asymmetric core retires work proportionally faster.
func TestAsymmetricCoreSpeed(t *testing.T) {
	m := sim.New(topo.Asymmetric([]float64{2.0}), sim.Config{Seed: 1, NewScheduler: cfs.Factory()})
	tk := m.NewTask("t", &task.Seq{Actions: []task.Action{task.Compute{Work: 10e6}}})
	m.Start(tk)
	m.Run(int64(time.Second))
	if got, want := tk.FinishedAt, int64(5e6); got != want {
		t.Errorf("finished at %d on 2x core, want %d", got, want)
	}
}

// Barrier with blocking waiters: all three threads make equal progress
// per iteration and the app finishes in iterations × work (3 cores).
func TestBarrierBlockAllProgress(t *testing.T) {
	m := newSMP(t, 3, 1)
	app := spmd.Build(m, spmd.Spec{
		Name: "app", Threads: 3, Iterations: 10, WorkPerIteration: 1e6,
		Model: spmd.Model{Name: "block", Policy: task.WaitBlock},
	})
	app.Start()
	m.Run(int64(time.Second))
	if !app.Done() {
		t.Fatalf("app not done; elapsed %v", app.Elapsed())
	}
	if got, want := app.Elapsed(), 10*time.Millisecond; got != want {
		t.Errorf("elapsed %v, want %v", got, want)
	}
	if app.Barrier.Crossings != 10 {
		t.Errorf("crossings %d, want 10", app.Barrier.Crossings)
	}
}

// Oversubscribed barrier app: 3 threads, 2 cores, yield waits. The ideal
// time with perfect balance is 1.5 × serial-per-thread; queue-length
// stasis gives 2×. Without any balancer the initial placement (2+1)
// persists, so the app takes ~2× per-thread time.
func TestOversubscribedYieldNoBalancer(t *testing.T) {
	m := newSMP(t, 2, 1)
	app := spmd.Build(m, spmd.Spec{
		Name: "app", Threads: 3, Iterations: 100, WorkPerIteration: 1e6,
		Model: spmd.UPC(),
	})
	app.Start()
	m.Run(int64(10 * time.Second))
	if !app.Done() {
		t.Fatalf("app not done; elapsed %v", app.Elapsed())
	}
	got := app.Elapsed()
	// 100 iterations × 1 ms × 2 (two threads share one core) ≈ 200 ms,
	// plus yield-check overhead.
	if got < 190*time.Millisecond || got > 230*time.Millisecond {
		t.Errorf("elapsed %v, want ≈ 200ms (2 threads serialised on one core)", got)
	}
}

// Wait policies: spinning waiters burn CPU; blocking waiters do not.
func TestSpinVsBlockExecTime(t *testing.T) {
	run := func(policy task.WaitPolicy) (fast, slow time.Duration) {
		m := newSMP(t, 2, 1)
		app := spmd.Build(m, spmd.Spec{
			Name: "app", Threads: 2, Iterations: 1, WorkPerIteration: 10e6,
			Model: spmd.Model{Policy: policy},
		})
		// Make thread 1's work twice as long by running both on core 0?
		// Simpler: place one thread per core but give the machine
		// asymmetric speeds via affinity pinning below.
		app.Tasks[0].Affinity = cpuset.Of(0)
		app.Tasks[1].Affinity = cpuset.Of(0) // both on core 0: serialised
		app.Start()
		m.Run(int64(time.Second))
		if !app.Done() {
			t.Fatalf("app not done (policy %v)", policy)
		}
		return app.Tasks[0].ExecTime, app.Tasks[1].ExecTime
	}
	// With both threads on one core and blocking waits, total exec ≈
	// work (20 ms); with spin waits the first finisher burns CPU while
	// the other computes, so total exec is strictly larger.
	b0, b1 := run(task.WaitBlock)
	s0, s1 := run(task.WaitSpin)
	blockTotal, spinTotal := b0+b1, s0+s1
	if blockTotal > 21*time.Millisecond {
		t.Errorf("block total exec %v, want ≈ 20ms", blockTotal)
	}
	if spinTotal <= blockTotal {
		t.Errorf("spin total exec %v not > block total %v", spinTotal, blockTotal)
	}
}

// Determinism: identical seeds produce identical runs; different seeds
// may differ.
func TestDeterminism(t *testing.T) {
	run := func(seed uint64) (int64, time.Duration, int) {
		m := newSMP(t, 4, seed)
		app := spmd.Build(m, spmd.Spec{
			Name: "app", Threads: 7, Iterations: 50, WorkPerIteration: 2e6,
			WorkJitter: 0.3, Model: spmd.UPC(),
		})
		app.Start()
		m.Run(int64(100 * time.Second))
		return int64(app.Elapsed()), app.Tasks[3].ExecTime, m.Stats.ContextSwitches
	}
	e1, x1, c1 := run(42)
	e2, x2, c2 := run(42)
	if e1 != e2 || x1 != x2 || c1 != c2 {
		t.Errorf("same seed differs: (%d,%v,%d) vs (%d,%v,%d)", e1, x1, c1, e2, x2, c2)
	}
}

// Work conservation: total exec time across tasks can never exceed
// cores × wall time.
func TestWorkConservation(t *testing.T) {
	m := newSMP(t, 4, 7)
	app := spmd.Build(m, spmd.Spec{
		Name: "app", Threads: 9, Iterations: 30, WorkPerIteration: 3e6,
		Model: spmd.UPC(),
	})
	app.Start()
	end := m.Run(int64(10 * time.Second))
	m.Sync()
	var total time.Duration
	for _, tk := range m.Tasks() {
		total += tk.ExecTime
	}
	if limit := time.Duration(end) * 4; total > limit {
		t.Errorf("total exec %v exceeds %v (4 cores × %v)", total, limit, time.Duration(end))
	}
}

// SMT contention: a task sharing a physical core runs slower than one
// alone, by the configured factor.
func TestSMTContention(t *testing.T) {
	m := sim.New(topo.Nehalem(), sim.Config{Seed: 1, NewScheduler: cfs.Factory()})
	// Logical CPUs 0 and 8 are siblings on Nehalem.
	a := m.NewTask("a", &task.Seq{Actions: []task.Action{task.Compute{Work: 10e6}}})
	b := m.NewTask("b", &task.Seq{Actions: []task.Action{task.Compute{Work: 10e6}}})
	a.Affinity = cpuset.Of(0)
	b.Affinity = cpuset.Of(8)
	m.StartOn(a, 0)
	m.StartOn(b, 8)
	m.Run(int64(time.Second))
	// Both ran contended the whole time: finish at work / 0.65.
	work := 10e6
	want := int64(work / 0.65)
	tol := int64(2)
	if a.FinishedAt < want-tol || a.FinishedAt > want+tol {
		t.Errorf("SMT-contended finish %d, want ≈ %d", a.FinishedAt, want)
	}
}

// NUMA: a task whose pages are on node 0 runs slower on node 1 in
// proportion to its memory intensity.
func TestNUMARemotePenalty(t *testing.T) {
	m := sim.New(topo.Barcelona(), sim.Config{Seed: 1, NewScheduler: cfs.Factory()})
	tk := m.NewTask("t", &task.Seq{Actions: []task.Action{task.Compute{Work: 10e6}}})
	tk.MemIntensity = 1.0
	tk.HomeNode = 0
	tk.Affinity = cpuset.Of(4) // node 1
	m.StartOn(tk, 4)
	m.Run(int64(time.Second))
	want := int64(10e6 * 1.5) // penalty 0.5, fully memory bound
	if tk.FinishedAt != want {
		t.Errorf("remote finish %d, want %d", tk.FinishedAt, want)
	}
}

// Migration applies a warmup cost visible as delayed completion.
func TestMigrationWarmupCost(t *testing.T) {
	m := newSMP(t, 2, 1)
	a := m.NewTask("a", &task.ComputeForever{Chunk: 1e9})
	b := m.NewTask("b", &task.Seq{Actions: []task.Action{task.Compute{Work: 10e6}}})
	b.RSS = 8 << 20 // bigger than the 4MB LLC: full refill cost
	m.StartOn(a, 0)
	m.StartOn(b, 0) // b queued behind a
	m.RunFor(time.Millisecond)
	if b.State != task.Runnable {
		t.Fatalf("b state %v, want runnable", b.State)
	}
	m.Migrate(b, 1, "test")
	if b.Migrations != 1 {
		t.Errorf("migrations %d, want 1", b.Migrations)
	}
	m.Run(int64(time.Second))
	cost := m.Topo.MigrationCost(b.RSS, 0, 1)
	if cost <= 0 {
		t.Fatalf("expected positive migration cost")
	}
	// b ran ~1ms-? on core 0 before migration? It was queued, may have
	// run partially. Check exec time exceeds pure work by the warmup.
	if b.ExecTime < 10*time.Millisecond+cost {
		t.Errorf("exec %v, want ≥ work+warmup %v", b.ExecTime, 10*time.Millisecond+cost)
	}
}
