// Package a seeds every maporder violation class.
package a

import (
	"fmt"
	"io"
	"maps"
	"strings"
)

// logger mimics exp.Context: Logf is an output sink.
type logger struct{}

func (logger) Logf(format string, args ...any) {}

// table mimics exp.Table: AddRow is an output sink.
type table struct{}

func (*table) AddRow(cells ...any) {}

func printsInOrder(m map[string]int) {
	for k, v := range m {
		fmt.Printf("%s=%d\n", k, v) // want "fmt.Printf inside range over map"
	}
}

func fprintsInOrder(w io.Writer, m map[string]int) {
	for k := range m {
		fmt.Fprintln(w, k) // want "fmt.Fprintln inside range over map"
	}
}

func logsInOrder(log logger, m map[string]int) {
	for k := range m {
		log.Logf("saw %s", k) // want "Logf call inside range over map"
	}
}

func buildsRows(t *table, m map[string]float64) {
	for k, v := range m {
		t.AddRow(k, v) // want "AddRow call inside range over map"
	}
}

func buildsString(m map[string]int) string {
	var b strings.Builder
	for k := range m {
		b.WriteString(k) // want "WriteString call inside range over map"
	}
	return b.String()
}

func escapingAppend(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k) // want "append to keys inside range over map"
	}
	return keys
}

// deferredPrint still observes map order even though the print happens
// inside a nested literal.
func deferredPrint(m map[string]int) {
	for k := range m {
		defer func(k string) {
			fmt.Println(k) // want "fmt.Println inside range over map"
		}(k)
	}
}

// iteratorOrder is map order too: maps.Keys ranges the same way.
func iteratorOrder(m map[string]int) []string {
	var keys []string
	for k := range maps.Keys(m) {
		keys = append(keys, k) // want "append to keys inside range over map"
	}
	return keys
}

// tracer mimics trace.Ring: Emit records events in emission order, and
// the exporter writes them out verbatim.
type tracer struct{}

func (*tracer) Emit(e any) {}

// chromeWriter mimics trace.ChromeWriter.
type chromeWriter struct{}

func (*chromeWriter) WriteEvent(e any) {}

// counter and histogram mimic the metrics registry types.
type counter struct{}

func (*counter) Inc() {}

type histogram struct{}

func (*histogram) Observe(x float64) {}

func emitsInOrder(tr *tracer, m map[int]string) {
	for c := range m {
		tr.Emit(c) // want "Emit call inside range over map"
	}
}

func exportsInOrder(cw *chromeWriter, m map[int]string) {
	for c, name := range m {
		_ = c
		cw.WriteEvent(name) // want "WriteEvent call inside range over map"
	}
}

func countsInOrder(c *counter, m map[string]int) {
	for range m {
		c.Inc() // want "Inc call inside range over map"
	}
}

func observesInOrder(h *histogram, m map[string]float64) {
	for _, v := range m {
		h.Observe(v) // want "Observe call inside range over map"
	}
}
