package sim

import (
	"math"
	"time"

	"repro/internal/eventq"
	"repro/internal/task"
	"repro/internal/topo"
	"repro/internal/trace"
)

// Core is one logical CPU of the machine. At most one task runs on a
// core at a time; the core's Scheduler decides which.
type Core struct {
	id   int
	info *topo.CoreInfo
	m    *Machine
	// shard is the event-queue shard owning this core's events; sh is
	// that shard's mutable state (clock, window counters).
	shard int
	sh    *shardState

	sched Scheduler
	cur   *task.Task
	// runStart is when the current task's un-accounted stint began.
	runStart int64
	// stintStart is when the current task last went on-CPU (unlike
	// runStart it survives intermediate accounting settlements); it
	// anchors the traced run-stint slice.
	stintStart int64
	// sliceEnd is when the current task's CFS timeslice expires.
	sliceEnd int64
	// stopEv is the core's reusable stop event. Re-arming moves it inside
	// the event queue; disarming removes it, so at most one stop event per
	// core is ever pending and stale stops cannot fire.
	stopEv *eventq.Event
	// needResched forces the next scheduleStop to fire immediately
	// (wakeup preemption, release of a running waiter).
	needResched bool
	inDispatch  bool

	idle      bool
	idleSince int64
	lastRun   *task.Task
	// memDomain is the index of the core's memory-bandwidth domain in
	// Topo.MemDomains, -1 when no contention model is configured.
	memDomain int
	// Contention neighbourhoods, precomputed at New so the effSpeed and
	// settle/rearm hot paths walk small int slices instead of decoding
	// affinity-mask words: smtMates are the other hardware contexts of
	// this physical core; memCores are all cores of this core's memory
	// domain (self included — the demand sum wants it); shareMates is
	// smtMates ∪ (memCores minus self minus smtMates), the cores whose
	// effective speed depends on this core's occupancy.
	smtMates   []int32
	memCores   []int32
	shareMates []int32

	// online reports whether the core participates in scheduling. An
	// offline core runs nothing and accrues neither busy nor idle time;
	// enqueueing on it is a bug (the machine panics). Toggled by
	// Machine.SetCoreOnline.
	online bool
	// freq is the core's dynamic frequency factor (1.0 nominal). It
	// scales work retirement exactly like BaseSpeed but can change at
	// run time (perturbation layer); exec time still accrues at wall
	// rate, so a slow core looks fully "fast" to the speed metric —
	// the paper's §6.6 asymmetry, made time-varying.
	freq float64
	// stolen is the fraction of wall time currently stolen from the
	// running task by kernel-level activity (interrupt storms, kernel
	// threads). It scales both exec-time accrual and work retirement by
	// (1-stolen): the victim's measured speed t_exec/t_real drops — the
	// signal speed balancing reacts to — while the queue length a
	// load balancer watches is unchanged, exactly the §6.4 noise
	// asymmetry. Set by Machine.SetCoreStolen.
	stolen float64
	// stolenWall integrates the stolen fraction over wall time up to
	// stolenMark, busy or idle — the core's /proc/stat-style steal+irq
	// account, which user-level code may read. StolenWall() extends the
	// integral to the present.
	stolenWall time.Duration
	stolenMark int64

	// BusyTime and IdleTime accumulate the core's utilisation.
	BusyTime time.Duration
	idleTime time.Duration
	// StolenTime accumulates the wall time stolen from on-CPU tasks by
	// the kernel-noise model (a subset of BusyTime).
	StolenTime time.Duration
}

// clk returns the simulation clock governing this core: the machine
// clock, or the core's shard clock inside a parallel window.
func (c *Core) clk() int64 {
	if c.m.window {
		return c.sh.now
	}
	return c.m.now
}

// ID returns the core's logical CPU number.
func (c *Core) ID() int { return c.id }

// Info returns the core's static topology description.
func (c *Core) Info() *topo.CoreInfo { return c.info }

// Scheduler returns the core's scheduling policy.
func (c *Core) Scheduler() Scheduler { return c.sched }

// Current returns the task running right now, or nil if the core is
// idle.
func (c *Core) Current() *task.Task { return c.cur }

// Idle reports whether the core has no task to run.
func (c *Core) Idle() bool { return c.cur == nil }

// Now returns the clock governing this core: the machine clock, or the
// core's shard clock inside a parallel window. Shard-confined code
// (core-routed timers, idle hooks) must read time through this instead
// of Machine.Now, which lags the shard clocks mid-window.
func (c *Core) Now() int64 { return c.clk() }

// Online reports whether the core participates in scheduling.
func (c *Core) Online() bool { return c.online }

// Freq returns the core's dynamic frequency factor (1.0 nominal).
func (c *Core) Freq() float64 { return c.freq }

// Stolen returns the fraction of wall time currently stolen from the
// running task by the kernel-noise model.
func (c *Core) Stolen() float64 { return c.stolen }

// StolenWall returns the total wall time the kernel-noise model has
// stolen from the core since boot, whether or not a task was running —
// what /proc/stat's steal+irq columns report on a real machine. A
// user-level balancer may difference it across a sampling window to
// estimate how much CPU a newcomer would actually receive.
func (c *Core) StolenWall() time.Duration {
	return c.stolenWall + time.Duration(float64(c.clk()-c.stolenMark)*c.stolen)
}

// NrRunnable returns the run-queue length including the running task —
// the "load" of Linux-style balancing.
func (c *Core) NrRunnable() int { return c.sched.NrRunnable() }

// Queued returns the runnable tasks excluding the running one.
func (c *Core) Queued() []*task.Task { return c.sched.Queued() }

// IdleTime returns the accumulated idle time (settled as of the last
// idle→busy transition).
func (c *Core) IdleTime() time.Duration {
	if c.idle {
		return c.idleTime + time.Duration(c.clk()-c.idleSince)
	}
	return c.idleTime
}

// Sync settles in-progress accounting so task ExecTime values on this
// core are exact as of Machine.Now.
func (c *Core) Sync() { c.account() }

// effSpeed returns the work retired per on-CPU nanosecond when t runs
// on this core now: base clock × dynamic frequency × NUMA-locality
// factor × SMT-contention factor × memory-bandwidth contention factor.
// Kernel-noise theft (c.stolen) is applied separately — it reduces the
// on-CPU time itself, not the retirement rate.
func (c *Core) effSpeed(t *task.Task) float64 {
	s := c.info.BaseSpeed * c.freq
	if c.m.Topo.RemoteMemoryPenalty > 0 && t.HomeNode >= 0 && t.HomeNode != c.info.Node {
		s /= 1 + c.m.Topo.RemoteMemoryPenalty*t.MemIntensity
	}
	for _, sid := range c.smtMates {
		if c.m.Cores[sid].cur != nil {
			s *= c.m.cfg.SMTContentionFactor
			break
		}
	}
	if t.MemIntensity > 0 && t.Cur.Kind == task.ExecCompute && c.memDomain >= 0 {
		d := &c.m.Topo.MemDomains[c.memDomain]
		demand := 0.0
		for _, id := range c.memCores {
			// Only computing tasks stress the memory path: a thread
			// spinning at a barrier issues no memory traffic.
			if o := c.m.Cores[id].cur; o != nil && o.Cur.Kind == task.ExecCompute {
				demand += o.MemIntensity
			} else if o == nil && int(id) == c.id {
				// Called before c.cur is set (scheduleStop timing):
				// count t itself.
				demand += t.MemIntensity
			}
		}
		if demand > d.Capacity {
			// The memory-bound fraction of the task slows to its fair
			// share of the saturated path.
			s *= 1 - t.MemIntensity + t.MemIntensity*d.Capacity/demand
		}
	}
	return s
}

// account settles the current task's in-progress stint: charges exec
// time, consumes migration warmup, retires work, burns spin budget and
// check budget. Safe to call at any time.
func (c *Core) account() {
	t := c.cur
	now := c.clk()
	if t == nil || c.runStart >= now {
		return
	}
	elapsed := time.Duration(now - c.runStart)
	c.runStart = now
	// Kernel noise steals a fraction of the wall time: the task was
	// on-CPU (and made progress) only for avail of it. The core itself
	// stays busy for all of elapsed — it was running noise, not idling.
	avail := elapsed
	if c.stolen > 0 {
		avail = time.Duration(float64(elapsed) * (1 - c.stolen))
		c.StolenTime += elapsed - avail
	}
	t.ExecTime += avail
	t.LastRanAt = now
	c.BusyTime += elapsed
	c.sched.AccountExec(t, avail)

	rem := avail
	if t.WarmupLeft > 0 {
		w := t.WarmupLeft
		if w > rem {
			w = rem
		}
		t.WarmupLeft -= w
		rem -= w
	}
	switch t.Cur.Kind {
	case task.ExecCompute:
		retired := float64(rem) * c.effSpeed(t)
		if retired > t.Cur.WorkLeft {
			retired = t.Cur.WorkLeft
		}
		t.Cur.WorkLeft -= retired
		t.WorkDone += retired
	case task.ExecSpin:
		if t.Cur.SpinLeft >= 0 {
			t.Cur.SpinLeft -= avail
			if t.Cur.SpinLeft < 0 {
				t.Cur.SpinLeft = 0
			}
		}
	case task.ExecYieldWait, task.ExecPollWait:
		t.Cur.CheckLeft -= rem
		if t.Cur.CheckLeft < 0 {
			t.Cur.CheckLeft = 0
		}
	}
}

// dispatch fills an empty core with the scheduler's next choice, firing
// the new-idle hooks when there is none. Re-entrant calls (from idle
// hooks that enqueue) are absorbed by the outer loop.
func (c *Core) dispatch() {
	if c.inDispatch || !c.online {
		return
	}
	c.inDispatch = true
	defer func() { c.inDispatch = false }()
	for c.cur == nil {
		t := c.sched.PickNext()
		if t == nil {
			if !c.idle {
				c.idle = true
				c.idleSince = c.clk()
			}
			for _, fn := range c.m.idleFns {
				fn(c)
			}
			t = c.sched.PickNext()
			if t == nil {
				return
			}
		}
		c.begin(t)
	}
}

// begin starts running t. It only mutates core/task state and schedules
// the stop event; program advancement happens in event context (onStop).
func (c *Core) begin(t *task.Task) {
	now := c.clk()
	if c.idle {
		c.idleTime += time.Duration(now - c.idleSince)
		c.idle = false
	}
	c.m.settleShared(c)
	if t != c.lastRun {
		c.m.statsFor(c.id).ContextSwitches++
		c.lastRun = t
	}
	t.State = task.Running
	t.LastRanAt = now
	if t.FirstRanAt < 0 {
		t.FirstRanAt = now
	}
	if t.WakeArmed {
		// Close the wake-to-run window opened at the wakeup enqueue.
		t.WakeArmed = false
		if d := now - t.LastEnqueuedAt; d >= 0 {
			t.WakeLatSum += d
			t.WakeLatN++
			if d > t.WakeLatMax {
				t.WakeLatMax = d
			}
		}
	}
	c.cur = t
	c.runStart = now
	c.stintStart = now
	c.sliceEnd = now + int64(c.sched.Slice(t))
	c.needResched = false
	c.scheduleStop()
	c.m.rearmShared(c)
}

// requestStop forces the current task to re-enter onStop at the current
// simulated time (wakeup preemption, spin release).
func (c *Core) requestStop() {
	if c.cur == nil {
		return
	}
	c.needResched = true
	c.armStop(c.clk())
}

// refreshStop re-derives the stop event after queue conditions changed
// without a preemption (e.g. a task arrived but does not preempt, so a
// slice boundary now matters).
func (c *Core) refreshStop() {
	if c.cur == nil {
		return
	}
	c.account()
	c.scheduleStop()
}

// scheduleStop computes when the current task must next be looked at and
// arms the stop event. A stop time of "never" (spinning alone on a core)
// arms nothing; external events (enqueue, release) will intervene.
func (c *Core) scheduleStop() {
	t := c.cur
	now := c.clk()
	if c.needResched {
		c.armStop(now)
		return
	}
	contended := c.sched.NrRunnable() > 1
	const never = int64(math.MaxInt64)
	stop := never
	// The policy re-evaluates at every slice boundary even when the
	// task runs alone — DWRR's round accounting (and hence its
	// round-balancing steals) depends on slices expiring, as the timer
	// tick guarantees in a real kernel.
	sliceCap := true
	switch t.Cur.Kind {
	case task.ExecCompute:
		need := int64(t.WarmupLeft)
		if eff := c.effSpeed(t); t.Cur.WorkLeft > 0 {
			need += int64(math.Ceil(t.Cur.WorkLeft / eff))
		}
		stop = c.wallAfter(need)
	case task.ExecSpin:
		if t.Cur.Released {
			stop = now
		} else if t.Cur.SpinLeft >= 0 {
			stop = c.wallAfter(int64(t.Cur.SpinLeft) + int64(t.WarmupLeft))
		}
	case task.ExecYieldWait:
		if t.Cur.Released {
			stop = now
		} else if contended {
			stop = c.wallAfter(int64(t.Cur.CheckLeft) + int64(t.WarmupLeft))
		} else {
			// Uncontended yield-waiters spin lazily with no event; an
			// arriving competitor forces a resched (Machine.enqueue).
			sliceCap = false
		}
	case task.ExecPollWait:
		if t.Cur.Released {
			stop = now
		} else {
			stop = c.wallAfter(int64(t.Cur.CheckLeft) + int64(t.WarmupLeft))
		}
	case task.ExecSleep, task.ExecBlocked:
		// A completed sleep/block scheduled onto the CPU: finish the
		// action immediately.
		stop = now
	case task.ExecExited, task.ExecIdle:
		stop = now
	}
	if sliceCap && c.sliceEnd < stop {
		stop = c.sliceEnd
		if stop < now {
			stop = now
		}
	}
	if stop == never {
		c.m.events.Remove(c.stopEv) // disarm any previously armed stop
		return
	}
	c.armStop(stop)
}

// wallAfter converts need nanoseconds of on-CPU progress into the
// absolute wall time at which the progress completes, stretching for
// stolen time. A fully stolen core (stolen >= 1) never completes on
// its own — the slice cap keeps its event rate bounded and external
// events (noise ending) intervene.
func (c *Core) wallAfter(need int64) int64 {
	if c.stolen <= 0 {
		return c.clk() + need
	}
	if c.stolen >= 1 {
		return int64(math.MaxInt64)
	}
	return c.clk() + int64(math.Ceil(float64(need)/(1-c.stolen)))
}

// armStop (re)schedules the core's stop event, moving it if already
// pending.
func (c *Core) armStop(at int64) {
	if now := c.clk(); at < now {
		at = now
	}
	c.m.events.Schedule(c.stopEv, c.shard, at)
}

// onStop is the single place tasks make progress through their programs:
// it fires at slice ends, work completion, check boundaries, wait
// releases and preemption requests, decides what the stop means from
// task state, and either advances the program or rotates the queue.
func (c *Core) onStop() {
	c.account()
	c.needResched = false
	t := c.cur
	if t == nil {
		c.dispatch()
		return
	}
	switch t.Cur.Kind {
	case task.ExecCompute:
		// Within 1 ns of work at current speed counts as done (event
		// times are integer ns; see scheduleStop's Ceil).
		if t.WarmupLeft == 0 && t.Cur.WorkLeft < c.effSpeed(t) {
			c.advanceCurrent()
			return
		}
	case task.ExecSleep, task.ExecBlocked:
		c.advanceCurrent()
		return
	case task.ExecSpin:
		if t.Cur.Released {
			c.advanceCurrent()
			return
		}
		if t.Cur.Policy == task.WaitSpinThenBlock && t.Cur.SpinLeft == 0 {
			// KMP_BLOCKTIME exhausted: go to sleep until released.
			t.Cur.Kind = task.ExecBlocked
			c.m.block(t)
			return
		}
	case task.ExecYieldWait:
		if t.Cur.Released {
			c.advanceCurrent()
			return
		}
		if t.Cur.CheckLeft == 0 {
			// Condition still unmet: sched_yield and let others run.
			// When every co-runnable task is also an unreleased
			// yield-waiter, the ping-pong is symmetric (they all just
			// burn CPU): coarsen the check interval so the simulator
			// does not pay one event per microsecond of mutual
			// yielding. CPU accounting is unchanged — waiters still
			// charge their exec time — only the interleaving grain is.
			next := c.m.cfg.CheckCost
			if c.onlyYieldWaitersQueued() {
				next = c.m.cfg.YieldGroupCheck
			}
			c.stopCurrent()
			c.sched.Yield(t)
			t.State = task.Runnable
			t.Cur.CheckLeft = next
			c.sched.PutPrev(t)
			c.dispatch()
			return
		}
	case task.ExecPollWait:
		if t.Cur.Released {
			c.advanceCurrent()
			return
		}
		if t.Cur.CheckLeft == 0 {
			// Condition still unmet: usleep before the next check,
			// backing off exponentially up to PollMax as usleep-based
			// barrier loops do.
			t.Cur.CheckLeft = c.m.cfg.CheckCost
			backoff := t.Cur.PollBackoff
			if backoff == 0 {
				backoff = c.m.cfg.PollInterval
			} else if backoff < c.m.cfg.PollMax {
				backoff *= 2
				if backoff > c.m.cfg.PollMax {
					backoff = c.m.cfg.PollMax
				}
			}
			t.Cur.PollBackoff = backoff
			t.Cur.WakeAt = c.clk() + int64(backoff)
			c.m.sleepUntil(t, t.Cur.WakeAt)
			return
		}
	case task.ExecExited:
		c.m.exit(t)
		return
	}
	// Slice expiry or preemption: return the task to the queue and pick
	// again.
	if c.m.tracer != nil {
		c.m.Emit(trace.Event{Kind: trace.KindTimeslice, Core: c.id, Task: t.ID, TaskName: t.Name})
	}
	c.stopCurrent()
	t.State = task.Runnable
	c.sched.PutPrev(t)
	c.dispatch()
}

// onlyYieldWaitersQueued reports whether every queued task on this core
// is an unreleased yield-waiter (the symmetric ping-pong case).
func (c *Core) onlyYieldWaitersQueued() bool {
	all := true
	c.sched.EachQueued(func(o *task.Task) bool {
		if o.Cur.Kind != task.ExecYieldWait || o.Cur.Released {
			all = false
			return false
		}
		return true
	})
	return all
}

// advanceCurrent moves the running task to its next program action.
func (c *Core) advanceCurrent() {
	t := c.cur
	// A memory-intensive task switching between computing and waiting
	// changes the demand on its memory domain even though core
	// occupancy is unchanged: settle the domain mates at the old
	// demand and re-arm them at the new one.
	memShift := t.MemIntensity > 0 && c.memDomain >= 0
	if memShift {
		c.m.settleShared(c)
	}
	c.m.advance(t)
	if c.cur == t {
		// Still running (new compute or on-CPU wait): restart timing.
		c.scheduleStop()
	}
	if memShift {
		c.m.rearmShared(c)
	}
}

// stopCurrent detaches the running task from the CPU. Accounting must be
// settled first. The task is left off-queue; the caller requeues,
// blocks or exits it. Dependent cores are settled and re-armed because
// the occupancy change alters their contention factors.
func (c *Core) stopCurrent() {
	if c.m.tracer != nil && c.cur != nil {
		if d := c.clk() - c.stintStart; d > 0 {
			c.m.Emit(trace.Event{Kind: trace.KindRunStint, Core: c.id,
				Task: c.cur.ID, TaskName: c.cur.Name, Dur: d})
		}
	}
	c.m.settleShared(c)
	c.cur = nil
	c.m.events.Remove(c.stopEv)
	c.needResched = false
	c.m.rearmShared(c)
}
