package allowdoc_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/allowdoc"
)

func TestAllowdoc(t *testing.T) {
	analysistest.Run(t, "testdata/src", allowdoc.Analyzer, "a", "clean")
}
