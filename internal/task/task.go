// Package task defines the unit of scheduling in the simulator: a task
// (the paper follows Linux in not distinguishing threads from processes),
// its program (the sequence of compute, sleep and synchronization actions
// it performs), and the accounting state that schedulers and balancers
// read.
//
// The package is deliberately free of simulator mechanics: the machine in
// package sim drives tasks through their programs, and schedulers mutate
// only the Sched sub-struct reserved for them.
package task

import (
	"time"

	"repro/internal/cpuset"
)

// State is the lifecycle state of a task.
type State int

const (
	// New means the task has been created but not yet placed on a core.
	New State = iota
	// Runnable means the task is on a run queue, not currently executing.
	Runnable
	// Running means the task is currently executing on its core.
	Running
	// Sleeping means the task is off the run queue on a timed sleep
	// (usleep/nanosleep): it will wake when its timer fires.
	Sleeping
	// Blocked means the task is off the run queue waiting for a
	// condition (e.g. a barrier); it wakes when released.
	Blocked
	// Done means the task has exited.
	Done
)

// String returns a short name for the state.
func (s State) String() string {
	switch s {
	case New:
		return "new"
	case Runnable:
		return "runnable"
	case Running:
		return "running"
	case Sleeping:
		return "sleeping"
	case Blocked:
		return "blocked"
	case Done:
		return "done"
	}
	return "invalid"
}

// Sched holds the per-task state owned by the per-core scheduler. CFS
// uses Vruntime and Weight; DWRR additionally uses Round and RoundUsed.
type Sched struct {
	// Vruntime is the CFS virtual runtime in nanoseconds, weighted by
	// priority. While queued it is absolute (on the queue's clock);
	// after Dequeue it is stored relative to QueueClock.
	Vruntime int64
	// QueueClock is the queue clock (min vruntime) captured at the
	// last dequeue, letting a wakeup on the same queue restore the
	// task's absolute position (and so compute the sleeper credit the
	// way the kernel's place_entity does).
	QueueClock int64
	// Weight is the CFS load weight derived from Nice (nice 0 = 1024).
	Weight int64
	// OnQueue reports whether the task is enqueued (or running) on a
	// core's run queue.
	OnQueue bool
	// Round is the DWRR round number the task is currently in.
	Round int
	// RoundUsed is the CPU time consumed in the current DWRR round.
	RoundUsed time.Duration
}

// Task is a schedulable entity.
type Task struct {
	ID   int
	Name string
	// Nice is the Unix nice level in [-20, 19]; 0 is the default.
	Nice int
	// Affinity is the set of cores the task may run on. A single-core
	// set models sched_setaffinity pinning: the Linux balancer will
	// never move such a task, and speedbalancer moves tasks by
	// rewriting this set.
	Affinity cpuset.Set

	// Prog supplies the task's actions. Nil means the task computes
	// forever (used for cpu-hogs built via RunForever).
	Prog Program

	// Group labels related tasks (an application); balancers that are
	// application-aware (speedbalancer) manage one group.
	Group string

	// RSS is the resident set size in bytes, used for migration warmup
	// costs.
	RSS int64
	// MemIntensity in [0,1] is the fraction of execution bound by
	// memory locality: it scales the NUMA remote-access penalty.
	MemIntensity float64
	// HomeNode is the NUMA node holding the task's pages. -1 until the
	// task first runs (first-touch placement).
	HomeNode int

	// State is maintained by the machine.
	State State
	// CoreID is the core the task is assigned to (its run queue), valid
	// once placed.
	CoreID int

	// Sched is owned by the per-core scheduler.
	Sched Sched

	// ExecTime is the total CPU time the task has consumed, the
	// numerator of the paper's speed = t_exec / t_real. It includes
	// spin-waiting and migration warmup, exactly as /proc accounting
	// would.
	ExecTime time.Duration
	// WorkDone is the cumulative retired work (speed-1.0 nanoseconds).
	// It is the simulator's stand-in for a retired-instruction
	// performance counter: §7 discusses speed measures "based on
	// sampling performance counters" as an alternative to exec/real.
	// Unlike ExecTime it excludes spin-waiting, warmup stalls and
	// contention losses.
	WorkDone float64
	// StartedAt and FinishedAt bracket the task's life (ns sim time).
	StartedAt, FinishedAt int64
	// LastRanAt is when the task last ran (for the Linux 5 ms cache-hot
	// heuristic). LastEnqueuedAt is when it last joined a queue.
	LastRanAt, LastEnqueuedAt int64
	// FirstRanAt is when the task first got the CPU (−1 until it has):
	// FirstRanAt − StartedAt is the admission-to-first-run latency of an
	// open-system job.
	FirstRanAt int64
	// WakeLatSum, WakeLatMax and WakeLatN accumulate wake-to-run latency
	// (wakeup enqueue → next dispatch, in ns): the responsiveness metric
	// of interactive open-system workloads. WakeArmed marks a wakeup
	// whose dispatch has not happened yet; the core consumes it. All
	// four are per-task state, so the accounting stays shard-local under
	// the parallel engine.
	WakeLatSum, WakeLatMax int64
	WakeLatN               int
	WakeArmed              bool

	// Migrations counts cross-core moves; speedbalancer pulls the task
	// that has migrated least to avoid hot-potato tasks.
	Migrations int
	// LastMigratedAt is when the task last moved cores.
	LastMigratedAt int64
	// WarmupLeft is the remaining cache-refill delay the task must pay
	// (accrues exec time but no progress).
	WarmupLeft time.Duration

	// Run-state for the current action; owned by the machine.
	Cur Exec
}

// Exec is the in-progress execution state of a task's current action.
type Exec struct {
	// Kind says what the task is doing when it runs.
	Kind ExecKind
	// WorkLeft is the remaining work (speed-1.0 nanoseconds) of a
	// compute action.
	WorkLeft float64
	// Cond is the condition being waited for (barrier etc.), when Kind
	// is a wait.
	Cond Cond
	// Policy is the wait policy in effect.
	Policy WaitPolicy
	// SpinLeft is the remaining spin budget of a spin-then-block wait
	// (negative means unbounded).
	SpinLeft time.Duration
	// CheckLeft is the CPU time remaining in the current condition
	// check of a yield/poll wait; when it reaches zero the task yields
	// or sleeps, respectively.
	CheckLeft time.Duration
	// PollBackoff is the current usleep length of a poll wait (doubles
	// per unsuccessful check up to the machine's PollMax).
	PollBackoff time.Duration
	// Released is set by the machine when Cond has been satisfied; the
	// task completes the wait the next time it checks.
	Released bool
	// WakeAt is the absolute wake time of a timed sleep.
	WakeAt int64
}

// ExecKind enumerates what a task does with CPU time.
type ExecKind int

const (
	// ExecIdle means no action is in progress (about to fetch the next).
	ExecIdle ExecKind = iota
	// ExecCompute means retiring work.
	ExecCompute
	// ExecSpin means burning CPU waiting for a condition.
	ExecSpin
	// ExecYieldWait means polling a condition with sched_yield between
	// checks (the UPC/MPI barrier style).
	ExecYieldWait
	// ExecPollWait means polling a condition with short sleeps between
	// checks (the usleep(1) barrier style).
	ExecPollWait
	// ExecBlocked means waiting off-queue for a release.
	ExecBlocked
	// ExecSleep means a timed sleep.
	ExecSleep
	// ExecExited means the task has finished.
	ExecExited
)

// NiceWeight converts a nice level to a CFS load weight. The table
// follows the kernel's geometric ~1.25× per nice step, anchored at
// nice 0 = 1024.
func NiceWeight(nice int) int64 {
	// The kernel's prio_to_weight table for the range we use.
	var table = [40]int64{
		88761, 71755, 56483, 46273, 36291, // -20..-16
		29154, 23254, 18705, 14949, 11916, // -15..-11
		9548, 7620, 6100, 4904, 3906, // -10..-6
		3121, 2501, 1991, 1586, 1277, // -5..-1
		1024, 820, 655, 526, 423, // 0..4
		335, 272, 215, 172, 137, // 5..9
		110, 87, 70, 56, 45, // 10..14
		36, 29, 23, 18, 15, // 15..19
	}
	if nice < -20 {
		nice = -20
	}
	if nice > 19 {
		nice = 19
	}
	return table[nice+20]
}

// Runnable reports whether the task is on a run queue (running or
// waiting to run).
func (t *Task) Runnable() bool { return t.State == Running || t.State == Runnable }

// Pinned reports whether the task is restricted to a single core.
func (t *Task) Pinned() bool { return t.Affinity.Count() == 1 }

// Speed returns the task's average speed (exec time / wall time) between
// two absolute times, given the exec-time reading at each. This is the
// paper's core metric.
func Speed(execDelta time.Duration, wallDelta time.Duration) float64 {
	if wallDelta <= 0 {
		return 0
	}
	return float64(execDelta) / float64(wallDelta)
}
