package lbos_test

// Documentation health checks, run in CI alongside the code:
//
//   - every relative link in every tracked markdown file must resolve
//     to an existing file or directory (external http(s) links are not
//     fetched — the check is offline and deterministic),
//   - every internal package must carry a package doc comment, so
//     `go doc repro/internal/<pkg>` always has something to say,
//   - EXPERIMENTS.md's experiment-ID ↔ API-spec table must stay in
//     lock-step with the registry and the serving codec: every row
//     round-trips through parse → canonicalize → key, and every
//     registered experiment has a row.

import (
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"repro/internal/exp"
	"repro/internal/serve"
)

// mdLink matches [text](target) links, excluding images' preceding "!"
// handling — images use the same resolution rule anyway.
var mdLink = regexp.MustCompile(`\]\(([^)\s]+)\)`)

func markdownFiles(t *testing.T) []string {
	t.Helper()
	var files []string
	err := filepath.WalkDir(".", func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		name := d.Name()
		if d.IsDir() {
			if name == ".git" || name == "testdata" {
				return filepath.SkipDir
			}
			return nil
		}
		if strings.HasSuffix(name, ".md") {
			files = append(files, path)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(files) == 0 {
		t.Fatal("no markdown files found")
	}
	return files
}

func TestMarkdownLinksResolve(t *testing.T) {
	for _, f := range markdownFiles(t) {
		data, err := os.ReadFile(f)
		if err != nil {
			t.Fatal(err)
		}
		inFence := false
		for _, line := range strings.Split(string(data), "\n") {
			if strings.HasPrefix(strings.TrimSpace(line), "```") {
				inFence = !inFence
				continue
			}
			if inFence {
				continue
			}
			for _, m := range mdLink.FindAllStringSubmatch(line, -1) {
				target := m[1]
				if strings.HasPrefix(target, "http://") || strings.HasPrefix(target, "https://") ||
					strings.HasPrefix(target, "mailto:") || strings.HasPrefix(target, "#") {
					continue
				}
				// Strip anchors and line fragments.
				if i := strings.IndexByte(target, '#'); i >= 0 {
					target = target[:i]
				}
				if target == "" {
					continue
				}
				resolved := filepath.Join(filepath.Dir(f), target)
				if _, err := os.Stat(resolved); err != nil {
					t.Errorf("%s: broken link %q (resolved %q)", f, m[1], resolved)
				}
			}
		}
	}
}

// specMapRow matches a row of EXPERIMENTS.md's "Experiment ID ↔ API
// spec" table: | `id` | `{...json...}` |
var specMapRow = regexp.MustCompile("^\\| `([^`]+)` \\| `(\\{[^`]*\\})` \\|")

func TestServingSpecMapping(t *testing.T) {
	data, err := os.ReadFile("EXPERIMENTS.md")
	if err != nil {
		t.Fatal(err)
	}
	mapped := map[string]bool{}
	for _, line := range strings.Split(string(data), "\n") {
		m := specMapRow.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		id, raw := m[1], m[2]
		if mapped[id] {
			t.Errorf("EXPERIMENTS.md maps %q twice", id)
		}
		mapped[id] = true

		// The documented spec must round-trip through the serving codec
		// and address the experiment it claims to.
		spec, err := serve.ParseSpec([]byte(raw))
		if err != nil {
			t.Errorf("EXPERIMENTS.md spec for %q does not parse: %v", id, err)
			continue
		}
		canon, err := spec.Canonicalize()
		if err != nil {
			t.Errorf("EXPERIMENTS.md spec for %q does not canonicalize: %v", id, err)
			continue
		}
		if canon.Experiment != id {
			t.Errorf("EXPERIMENTS.md row %q submits experiment %q", id, canon.Experiment)
		}
		if _, err := exp.ByID(id); err != nil {
			t.Errorf("EXPERIMENTS.md maps %q, which is not in the registry: %v", id, err)
		}
		if k1, k2 := canon.Key("v"), canon.Key("v"); k1 != k2 || len(k1) != 64 {
			t.Errorf("spec for %q does not derive a stable SHA-256 key", id)
		}
	}
	if len(mapped) == 0 {
		t.Fatal("EXPERIMENTS.md has no experiment-ID ↔ API-spec table rows")
	}
	// Completeness: every registered experiment is documented.
	for _, e := range exp.All() {
		if !mapped[e.ID] {
			t.Errorf("registered experiment %q is missing from EXPERIMENTS.md's API-spec table", e.ID)
		}
	}
}

func TestInternalPackagesHaveDocComments(t *testing.T) {
	dirs, err := filepath.Glob("internal/*")
	if err != nil {
		t.Fatal(err)
	}
	dirs = append(dirs, "internal/analysis/analysistest")
	for _, dir := range dirs {
		info, err := os.Stat(dir)
		if err != nil || !info.IsDir() {
			continue
		}
		pkg := filepath.Base(dir)
		goFiles, _ := filepath.Glob(filepath.Join(dir, "*.go"))
		found := false
		hasCode := false
		for _, gf := range goFiles {
			if strings.HasSuffix(gf, "_test.go") {
				continue
			}
			hasCode = true
			data, err := os.ReadFile(gf)
			if err != nil {
				t.Fatal(err)
			}
			if strings.Contains(string(data), "// Package "+pkg+" ") ||
				strings.Contains(string(data), "// Package "+pkg+"\n") {
				found = true
				break
			}
		}
		if hasCode && !found {
			t.Errorf("internal package %q has no package doc comment (want a `// Package %s ...` block)", dir, pkg)
		}
	}
}
