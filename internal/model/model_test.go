package model

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewSplit(t *testing.T) {
	s := NewSplit(17, 16)
	if s.T != 1 || s.SQ != 1 || s.FQ != 15 {
		t.Errorf("17/16: %+v", s)
	}
	s = NewSplit(3, 2)
	if s.T != 1 || s.SQ != 1 || s.FQ != 1 {
		t.Errorf("3/2: %+v", s)
	}
	s = NewSplit(32, 16)
	if !s.Balanced() || s.T != 2 {
		t.Errorf("32/16: %+v", s)
	}
}

func TestNewSplitPanics(t *testing.T) {
	for _, c := range [][2]int{{2, 2}, {1, 2}, {5, 0}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("no panic for N=%d M=%d", c[0], c[1])
				}
			}()
			NewSplit(c[0], c[1])
		}()
	}
}

// The §4 closed forms for the paper's running example (3 threads, 2
// cores, T=1): Linux speed 1/2, ideal 3/4, max speedup 1.5x.
func TestSpeedFormulas(t *testing.T) {
	s := NewSplit(3, 2)
	if got := s.LinuxSpeed(); got != 0.5 {
		t.Errorf("LinuxSpeed = %v", got)
	}
	if got := s.IdealSpeed(); got != 0.75 {
		t.Errorf("IdealSpeed = %v", got)
	}
	if got := s.MaxSpeedup(); math.Abs(got-1.5) > 1e-12 {
		t.Errorf("MaxSpeedup = %v", got)
	}
	// General form 1 + 1/(2T).
	for _, c := range [][2]int{{5, 4}, {9, 4}, {33, 16}} {
		s := NewSplit(c[0], c[1])
		want := 1 + 1/(2*float64(s.T))
		if got := s.MaxSpeedup(); math.Abs(got-want) > 1e-12 {
			t.Errorf("N=%d M=%d MaxSpeedup = %v, want %v", c[0], c[1], got, want)
		}
	}
}

func TestStepsBound(t *testing.T) {
	cases := []struct {
		n, m, want int
	}{
		{3, 2, 2},   // SQ=1 FQ=1
		{17, 16, 2}, // SQ=1 FQ=15
		{31, 16, 2}, // SQ=15 FQ=1? No: T=1, SQ=15, FQ=1: 2*15=30
		{5, 4, 2},   // SQ=1 FQ=3
		{7, 4, 6},   // SQ=3 FQ=1
		{32, 16, 0}, // balanced
	}
	cases[2].want = 30
	for _, c := range cases {
		s := NewSplit(c.n, c.m)
		if got := s.StepsBound(); got != c.want {
			t.Errorf("StepsBound(%d,%d) = %d, want %d", c.n, c.m, got, c.want)
		}
	}
}

// Figure 1 monotonicity: for fixed cores, more threads relaxes MinS;
// for the diagonal, fewer fast cores raises it.
func TestMinSShape(t *testing.T) {
	// Fixed M=16: N=17 (T=1) vs N=33 (T=2) vs N=65 (T=4).
	prev := math.Inf(1)
	for _, n := range []int{17, 33, 65} {
		v := NewSplit(n, 16).MinS()
		if v > prev {
			t.Errorf("MinS not decreasing with threads: %v after %v", v, prev)
		}
		prev = v
	}
	// Worst case on the diagonal: N = 2M-1 gives SQ=M-1, FQ=1.
	if v := NewSplit(199, 100).MinS(); v != 99 {
		t.Errorf("diagonal MinS = %v, want 99", v)
	}
}

func TestFigure1Dimensions(t *testing.T) {
	f := Figure1(10, 20)
	if len(f) != 9 { // cores 2..10
		t.Fatalf("rows = %d", len(f))
	}
	for i, row := range f {
		m := i + 2
		if want := 20 - m; len(row) != want {
			t.Errorf("cores=%d: %d entries, want %d", m, len(row), want)
		}
	}
}

// Lemma 1 (property): the simulated distributed balancing always
// satisfies the necessity condition within the closed-form bound.
func TestPropertyLemma1Bound(t *testing.T) {
	f := func(nRaw, mRaw uint8) bool {
		m := int(mRaw%63) + 2
		n := m + 1 + int(nRaw)%(3*m)
		s := NewSplit(n, m)
		if s.Balanced() {
			return true
		}
		return SimulateSteps(s) <= s.StepsBound()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// The bound is tight somewhere: at least one split needs exactly the
// bound.
func TestBoundTightness(t *testing.T) {
	tight := false
	for m := 2; m <= 20 && !tight; m++ {
		for n := m + 1; n < 2*m; n++ {
			s := NewSplit(n, m)
			if SimulateSteps(s) == s.StepsBound() {
				tight = true
				break
			}
		}
	}
	if !tight {
		t.Error("bound never attained on small splits; it may be misstated")
	}
}
