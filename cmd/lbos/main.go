// Command lbos runs the experiments that regenerate the tables and
// figures of "Load Balancing on Speed" (PPoPP 2010) on the simulated
// machines.
//
// Usage:
//
//	lbos list                              # show available experiments
//	lbos run [flags] <id>... | all         # run experiments
//	lbos bench [flags]                     # run the performance suite
//
// Flags for bench:
//
//	-out FILE       write the report here (default: the next free
//	                BENCH_<n>.json in the current directory)
//	-baseline FILE  compare against this report and exit non-zero on
//	                regression (default BENCH_baseline.json when present;
//	                "" disables)
//	-tol F          relative regression tolerance (default 0.15)
//	-q              suppress per-case progress
//
// Flags for run:
//
//	-reps N      repetitions per configuration (default 10, the paper's count)
//	-scale K     divide workload sizes by K for quicker runs (default 1)
//	-seed S      base RNG seed
//	-parallel P  worker goroutines for the (config × rep) grid
//	             (default 0 = GOMAXPROCS); tables are bit-identical at any P
//	-failfast    stop an experiment at the first run that overruns its
//	             simulated time limit
//	-csv DIR     also write each table as CSV under DIR
//	-trace FILE  write a Chrome trace-event JSON of every run's scheduling
//	             events (load FILE in ui.perfetto.dev); byte-identical at
//	             every -parallel level
//	-metrics     collect and print scheduler metrics (migration counts,
//	             speed-sample and barrier-wait histograms, busy fractions)
//	-perturb L   inject deterministic faults into every run: comma-
//	             separated families from noise, kthread (schedulable
//	             noise), hotplug, freq, storm, or all (see
//	             internal/perturb); schedules derive from -seed, so
//	             perturbed tables stay bit-identical at any -parallel
//	-predict     arm the speed balancer's predictive mode (anticipatory
//	             pulls and wake-time placement from streaming per-core
//	             speed distributions) in every SPEED run; inert for
//	             experiments that configure prediction themselves
//	-shards N    partition every run's simulator into N per-socket event
//	             shards (clamped to the machine's socket count; 0/1 =
//	             single queue); tables are bit-identical at every N
//	-shardpar    additionally run shard-confined simulation spans on
//	             parallel goroutines (conservative lookahead windows);
//	             output bytes are unchanged
//	-q           suppress progress logging
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"time"

	"repro/internal/clock"
	"repro/internal/exp"
	"repro/internal/metrics"
	"repro/internal/perfbench"
	"repro/internal/perturb"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	switch os.Args[1] {
	case "list":
		list()
	case "run":
		run(os.Args[2:])
	case "bench":
		bench(os.Args[2:])
	default:
		usage()
		os.Exit(2)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: lbos list | lbos run [-reps N] [-scale K] [-seed S] [-parallel P] [-failfast] [-csv DIR] [-trace FILE] [-metrics] [-perturb LIST] [-predict] [-shards N] [-shardpar] [-q] <id>...|all | lbos bench [-out FILE] [-baseline FILE] [-tol F] [-q]")
}

// bench runs the perfbench suite, writes BENCH_<n>.json and gates the
// result against a baseline report when one is available.
func bench(args []string) {
	fs := flag.NewFlagSet("bench", flag.ExitOnError)
	out := fs.String("out", "", "report output path (default: next free BENCH_<n>.json)")
	baseline := fs.String("baseline", "", "baseline report to gate against (default BENCH_baseline.json when present)")
	tol := fs.Float64("tol", 0.15, "relative regression tolerance")
	quiet := fs.Bool("q", false, "suppress per-case progress")
	fs.Parse(args)
	if fs.NArg() != 0 {
		usage()
		os.Exit(2)
	}

	var log io.Writer
	if !*quiet {
		log = os.Stderr
	}
	report := perfbench.RunSuite(log)

	// An explicit -baseline '' disables the gate (e.g. when refreshing
	// the committed baseline); leaving the flag unset auto-detects it.
	baselineSet := false
	fs.Visit(func(f *flag.Flag) {
		if f.Name == "baseline" {
			baselineSet = true
		}
	})
	basePath := *baseline
	if !baselineSet {
		if _, err := os.Stat("BENCH_baseline.json"); err == nil {
			basePath = "BENCH_baseline.json"
		}
	}
	failed := false
	if basePath != "" {
		base, err := perfbench.Load(basePath)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		report.Comparison = perfbench.Compare(report, base, basePath, *tol)
		for _, d := range report.Comparison.Deltas {
			fmt.Fprintf(os.Stderr, "bench: %-8s vs %s:", d.Name, basePath)
			if d.NsNormRatio > 0 {
				fmt.Fprintf(os.Stderr, " ns %+.1f%%", (d.NsNormRatio-1)*100)
			}
			if d.AllocsRatio > 0 {
				fmt.Fprintf(os.Stderr, " allocs %+.1f%%", (d.AllocsRatio-1)*100)
			}
			if d.EventsPerSecRatio > 0 {
				fmt.Fprintf(os.Stderr, " events/s %+.1f%%", (d.EventsPerSecRatio-1)*100)
			}
			fmt.Fprintln(os.Stderr)
		}
		for _, msg := range report.Comparison.Regressions {
			fmt.Fprintf(os.Stderr, "bench: REGRESSION: %s\n", msg)
			failed = true
		}
	}

	outPath := *out
	if outPath == "" {
		outPath = nextBenchFile()
	}
	f, err := os.Create(outPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if err := report.WriteJSON(f); err == nil {
		err = f.Close()
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "bench: report written to %s\n", outPath)
	if failed {
		os.Exit(1)
	}
}

// nextBenchFile returns the first BENCH_<n>.json that does not exist yet.
func nextBenchFile() string {
	for n := 0; ; n++ {
		name := fmt.Sprintf("BENCH_%d.json", n)
		if _, err := os.Stat(name); os.IsNotExist(err) {
			return name
		}
	}
}

func list() {
	for _, e := range exp.All() {
		fmt.Printf("%-10s %-12s %s\n", e.ID, e.PaperRef, e.Title)
	}
}

func run(args []string) {
	fs := flag.NewFlagSet("run", flag.ExitOnError)
	reps := fs.Int("reps", 10, "repetitions per configuration")
	scale := fs.Int("scale", 1, "divide workload sizes by this factor")
	seed := fs.Uint64("seed", 20100109, "base RNG seed")
	parallel := fs.Int("parallel", 0, "worker goroutines for the experiment grid (0 = GOMAXPROCS)")
	failfast := fs.Bool("failfast", false, "stop at the first run overrunning its simulated time limit")
	csvDir := fs.String("csv", "", "write tables as CSV under this directory")
	traceFile := fs.String("trace", "", "write a Chrome trace-event JSON of all runs to this file")
	withMetrics := fs.Bool("metrics", false, "collect and print scheduler metrics per experiment")
	perturbSpec := fs.String("perturb", "", "inject faults: comma-separated from noise,kthread,hotplug,freq,storm,all")
	predictOn := fs.Bool("predict", false, "arm the speed balancer's predictive mode in every SPEED run")
	shards := fs.Int("shards", 0, "per-socket event shards per run (0/1 = single queue)")
	shardPar := fs.Bool("shardpar", false, "run shard-confined spans on parallel goroutines")
	quiet := fs.Bool("q", false, "suppress progress logging")
	fs.Parse(args)

	pcfg, err := perturb.Parse(*perturbSpec)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	ids := fs.Args()
	if len(ids) == 0 {
		usage()
		os.Exit(2)
	}
	var exps []*exp.Experiment
	if len(ids) == 1 && ids[0] == "all" {
		exps = exp.All()
	} else {
		for _, id := range ids {
			e, err := exp.ByID(id)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			exps = append(exps, e)
		}
	}

	ctx := &exp.Context{
		Reps: *reps, Scale: *scale, Seed: *seed,
		Parallelism: *parallel, FailFast: *failfast,
		Perturb: pcfg, Predict: *predictOn,
		Shards: *shards, ShardParallel: *shardPar,
	}
	if *traceFile != "" {
		f, err := os.Create(*traceFile)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		ctx.Trace = exp.NewTraceSink(f, 0)
		defer func() {
			if err := ctx.Trace.Close(); err != nil {
				fmt.Fprintln(os.Stderr, err)
			}
			f.Close()
			if !*quiet {
				fmt.Fprintf(os.Stderr, "lbos: trace of %d runs written to %s (load in ui.perfetto.dev)\n",
					ctx.Trace.Cells, *traceFile)
			}
		}()
	}
	if !*quiet {
		ctx.Log = os.Stderr
		workers := *parallel
		if workers <= 0 {
			workers = runtime.GOMAXPROCS(0)
		}
		fmt.Fprintf(os.Stderr, "lbos: %d reps, scale 1/%d, %d parallel workers\n",
			*reps, *scale, workers)
	}
	for _, e := range exps {
		sw := clock.Start()
		fmt.Printf("### %s — %s (%s)\n", e.ID, e.Title, e.PaperRef)
		fmt.Printf("paper: %s\n\n", e.Expect)
		if *withMetrics {
			// Fresh aggregate per experiment so metrics tables are scoped
			// to one experiment's cells.
			ctx.Metrics = metrics.NewAggregate()
		}
		tables := e.Run(ctx)
		if *withMetrics {
			tables = append(tables, exp.MetricsTables(ctx.Metrics.Snapshot())...)
		}
		for ti, t := range tables {
			t.Render(os.Stdout)
			fmt.Println()
			if *csvDir != "" {
				writeCSV(*csvDir, e.ID, ti, t)
			}
		}
		fmt.Printf("(%s completed in %v wall time)\n\n", e.ID, sw.Elapsed().Round(time.Millisecond))
	}
}

func writeCSV(dir, id string, idx int, t *exp.Table) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		fmt.Fprintln(os.Stderr, err)
		return
	}
	name := fmt.Sprintf("%s_%d_%s.csv", id, idx, slug(t.Title))
	f, err := os.Create(filepath.Join(dir, name))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return
	}
	defer f.Close()
	var w io.Writer = f
	t.CSV(w)
}

func slug(s string) string {
	s = strings.ToLower(s)
	var b strings.Builder
	for _, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= '0' && r <= '9':
			b.WriteRune(r)
		case r == ' ' || r == '-' || r == '_':
			b.WriteByte('_')
		}
	}
	out := b.String()
	if len(out) > 40 {
		out = out[:40]
	}
	return out
}
