// Command lbosd serves the simulator over HTTP: a long-running daemon
// that accepts experiment specs as JSON, executes them on a bounded
// worker pool, and answers repeated queries from a content-addressed
// result cache keyed on (canonical spec, seed, code version) — see
// docs/api.md for the endpoint reference and DESIGN.md §11 for the
// design.
//
// Usage:
//
//	lbosd [-addr HOST:PORT] [-workers N] [-queue N] [-cache-mb MB] [-q]
//
// Flags:
//
//	-addr      listen address (default 127.0.0.1:8080)
//	-workers   concurrent experiment executions (default 2)
//	-queue     submission queue depth; a full queue sheds new runs
//	           with 429 + Retry-After (default 16)
//	-cache-mb  result cache budget in MiB (default 256)
//	-q         suppress operational logging
//
// Quickstart:
//
//	lbosd &
//	curl -X POST -d '{"experiment":"fig1","reps":2,"scale":8}' \
//	    'http://127.0.0.1:8080/v1/runs?wait=1'
//
// On SIGTERM or SIGINT the daemon drains gracefully: it stops accepting
// connections, finishes queued and running experiments, and exits 0.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/serve"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8080", "listen address")
	workers := flag.Int("workers", 2, "concurrent experiment executions")
	queue := flag.Int("queue", 16, "submission queue depth (full queue sheds with 429)")
	cacheMB := flag.Int64("cache-mb", 256, "result cache budget in MiB")
	quiet := flag.Bool("q", false, "suppress operational logging")
	flag.Parse()
	if flag.NArg() != 0 {
		fmt.Fprintln(os.Stderr, "usage: lbosd [-addr HOST:PORT] [-workers N] [-queue N] [-cache-mb MB] [-q]")
		os.Exit(2)
	}

	var log io.Writer
	if !*quiet {
		log = os.Stderr
	}
	srv := serve.New(serve.Config{
		Workers:    *workers,
		QueueDepth: *queue,
		CacheBytes: *cacheMB << 20,
		Log:        log,
	})

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	httpSrv := &http.Server{
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}
	go func() {
		// Serve returns ErrServerClosed after Shutdown; anything else is
		// a fatal listener error and the daemon cannot limp on.
		if err := httpSrv.Serve(ln); err != nil && err != http.ErrServerClosed {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}()
	if !*quiet {
		fmt.Fprintf(os.Stderr, "lbosd: version %s listening on http://%s (%d workers, queue %d, cache %d MiB)\n",
			srv.Version(), ln.Addr(), *workers, *queue, *cacheMB)
	}

	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, syscall.SIGTERM, syscall.SIGINT)
	sig := <-sigs
	if !*quiet {
		fmt.Fprintf(os.Stderr, "lbosd: %v: draining (finishing queued and running experiments)\n", sig)
	}
	// Stop accepting connections and let in-flight handlers finish, then
	// drain the worker pool. Order matters: handlers blocked on ?wait=1
	// need the workers alive until their runs complete.
	if err := httpSrv.Shutdown(context.Background()); err != nil {
		fmt.Fprintln(os.Stderr, err)
	}
	srv.Drain()
	if !*quiet {
		fmt.Fprintln(os.Stderr, "lbosd: drained, exiting")
	}
}
