// Package a seeds every timeunits violation class against doubles that
// mirror the sim/eventq timer surfaces. The branch fixture is the point
// of the dataflow engine: wall taint arriving on only one path still
// poisons the sink after the join.
package a

import "time"

// Machine, Queue, Timer, and Stopwatch mirror the repo's timer surfaces.
type Machine struct{}

func (m *Machine) Now() int64                      { return 0 }
func (m *Machine) Run(until int64) int64           { return until }
func (m *Machine) At(at int64, fn func(now int64)) {}

type Event struct{ At int64 }

type Queue struct{}

func (q *Queue) Push(at int64, fn func(now int64)) *Event { return &Event{} }
func (q *Queue) Schedule(e *Event, at int64)              {}

type Timer struct{}

func (t *Timer) Schedule(at int64) {}

type Stopwatch struct{}

func (s *Stopwatch) Elapsed() time.Duration { return 0 }

// Wall-clock nanoseconds driving the simulation clock.
func wallIntoRun(m *Machine) {
	m.Run(time.Now().UnixNano()) // want timeunits:"wall-clock-derived nanoseconds passed as the simulated time of Machine.Run"
}

// The taint survives locals and method chains.
func wallThroughLocal(t *Timer) {
	deadline := time.Now().Add(time.Second).UnixNano()
	t.Schedule(deadline) // want timeunits:"wall-clock-derived nanoseconds passed as the simulated time of Timer.Schedule"
}

// Stopwatch is the sanctioned progress reporter; its reading is still
// wall time and must not feed the event clock.
func stopwatchIntoSink(m *Machine, sw *Stopwatch) {
	m.Run(int64(sw.Elapsed())) // want timeunits:"wall-clock-derived nanoseconds passed as the simulated time of Machine.Run"
}

// Mixing wall and simulated time in arithmetic is wrong everywhere, not
// just at sinks.
func wallMixedWithSim(m *Machine) int64 {
	return m.Now() + time.Now().UnixNano() // want timeunits:"mixes wall-clock time with simulated time"
}

// A bare duration as an absolute re-scheduling time: t = interval is the
// dead past once the clock has advanced.
func durationAsAbsolute(q *Queue, e *Event, interval time.Duration) {
	q.Schedule(e, int64(interval)) // want timeunits:"bare time.Duration value passed as the absolute time of Queue.Schedule"
}

func tickEveryInterval(t *Timer, period time.Duration) {
	next := period.Nanoseconds()
	t.Schedule(next) // want timeunits:"bare time.Duration value passed as the absolute time of Timer.Schedule"
}

// Wall taint on one branch poisons the joined value: only the CFG sees
// this.
func wallOnOnePath(m *Machine, t *Timer, fallback bool) {
	var at int64
	if fallback {
		at = time.Now().UnixNano()
	} else {
		at = m.Now() + int64(time.Millisecond)
	}
	t.Schedule(at) // want timeunits:"wall-clock-derived nanoseconds passed as the simulated time of Timer.Schedule"
}
