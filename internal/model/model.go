// Package model implements the paper's analytic argument for speed
// balancing (§4): Lemma 1 and the profitability threshold plotted in
// Figure 1.
//
// Setting: N threads of an SPMD application on M homogeneous cores,
// N > M, T = ⌊N/M⌋ threads per core. FQ cores ("fast") hold T threads
// and SQ cores ("slow") hold T+1. Threads compute for S between
// synchronization points; balancing runs every B. Lemma 1: the number of
// balancing steps needed so that every thread has run on a fast core at
// least once is bounded by 2·⌈SQ/FQ⌉, so speed balancing is profitable
// when the total program time exceeds that many balancing intervals:
//
//	(T+1)·S  >  2·⌈SQ/FQ⌉·B
package model

import (
	"fmt"
	"math"
)

// Split describes the thread distribution for N threads on M cores.
type Split struct {
	N, M int
	// T is ⌊N/M⌋, the thread count of a fast core.
	T int
	// FQ is the number of fast cores (T threads each).
	FQ int
	// SQ is the number of slow cores (T+1 threads each).
	SQ int
}

// NewSplit computes the distribution. It panics unless N > M ≥ 1.
func NewSplit(n, m int) Split {
	if m < 1 || n <= m {
		panic(fmt.Sprintf("model: need N > M ≥ 1, got N=%d M=%d", n, m))
	}
	t := n / m
	sq := n % m
	return Split{N: n, M: m, T: t, FQ: m - sq, SQ: sq}
}

// Balanced reports whether the threads divide evenly (SQ == 0), in which
// case balancing has nothing to do.
func (s Split) Balanced() bool { return s.SQ == 0 }

// StepsBound returns Lemma 1's bound on the balancing steps needed for
// every thread to run on a fast core at least once: 2·⌈SQ/FQ⌉ (2 when
// FQ ≥ SQ).
func (s Split) StepsBound() int {
	if s.Balanced() {
		return 0
	}
	return 2 * int(math.Ceil(float64(s.SQ)/float64(s.FQ)))
}

// MinS returns the minimum inter-synchronization compute time S (in
// units of the balancing interval B) for which speed balancing is
// expected to beat queue-length balancing:
//
//	S > 2·⌈SQ/FQ⌉·B / (T+1)
//
// This is the quantity plotted in Figure 1 (B = 1 time unit). A zero
// result means any granularity profits (already balanced ⇒ no
// constraint, reported as 0).
func (s Split) MinS() float64 {
	if s.Balanced() {
		return 0
	}
	return float64(s.StepsBound()) / float64(s.T+1)
}

// LinuxSpeed returns the per-thread application speed under queue-length
// balancing: the speed of the slowest thread, 1/(T+1) (§4).
func (s Split) LinuxSpeed() float64 { return 1 / float64(s.T+1) }

// IdealSpeed returns the asymptotic per-thread speed under perfect speed
// balancing: (2T+1) / (2T(T+1)) — each thread spends equal time on fast
// (1/T) and slow (1/(T+1)) cores (§4).
func (s Split) IdealSpeed() float64 {
	t := float64(s.T)
	return (2*t + 1) / (2 * t * (t + 1))
}

// MaxSpeedup returns the bound on speed balancing's improvement over
// queue-length balancing: 1 + 1/(2T) (§4).
func (s Split) MaxSpeedup() float64 { return s.IdealSpeed() / s.LinuxSpeed() }

// Figure1 computes the Figure 1 surface: for every core count in
// [2, maxCores] and thread count in (cores, maxThreads], the minimum S
// (B = 1). Entries where threads divide evenly are 0. The returned
// matrix is indexed [cores-2][threads-cores-1].
func Figure1(maxCores, maxThreads int) [][]float64 {
	var out [][]float64
	for m := 2; m <= maxCores; m++ {
		var row []float64
		for n := m + 1; n <= maxThreads; n++ {
			row = append(row, NewSplit(n, m).MinS())
		}
		out = append(out, row)
	}
	return out
}

// SimulateSteps runs the abstract balancing process of Lemma 1's proof
// and returns the number of migrations (balancing steps) until every
// thread has run on a fast core at least once — a brute-force check
// that the closed-form bound holds.
//
// Each round, threads resident on fast queues (length T) are credited
// with a fast interval; then one thread is pulled from a slow queue
// holding uncredited threads onto a fast queue, flipping both queues'
// roles. As in the proof, the thread pulled is "a different thread"
// when possible — one already credited — so that the uncredited threads
// are left behind on the queue that just became fast.
func SimulateSteps(s Split) int {
	if s.Balanced() {
		return 0
	}
	// lengths[i] = threads on queue i; fast ⇔ length == T.
	// pending[i] = threads on queue i not yet credited.
	lengths := make([]int, s.M)
	pending := make([]int, s.M)
	for i := 0; i < s.M; i++ {
		if i < s.FQ {
			lengths[i] = s.T
		} else {
			lengths[i] = s.T + 1
		}
		pending[i] = lengths[i]
	}
	remaining := s.N
	credit := func() {
		for i := range lengths {
			if lengths[i] == s.T && pending[i] > 0 {
				remaining -= pending[i]
				pending[i] = 0
			}
		}
	}
	// The initial interval before balancing starts (the paper notes
	// balancing can begin after T+1 quanta): the FQ·T threads that
	// started on fast queues run fast.
	credit()
	steps := 0
	guard := 4 * (s.N + s.M) // safety net: the bound is far below this
	for remaining > 0 && steps <= guard {
		steps++
		// One distributed balancing step: every fast queue's balancer
		// pulls one thread from a distinct slow queue that still holds
		// uncredited threads — preferring to move an already-credited
		// thread so the uncredited ones are left behind on the queue
		// that just became fast.
		var dsts, srcs []int
		used := make(map[int]bool, s.M)
		for i := range lengths {
			if lengths[i] == s.T {
				dsts = append(dsts, i)
			}
		}
		for _, dst := range dsts {
			src := -1
			for i := range lengths {
				if used[i] || lengths[i] != s.T+1 || pending[i] == 0 {
					continue
				}
				if src == -1 || pending[src] == lengths[src] && pending[i] < lengths[i] {
					src = i
				}
			}
			if src == -1 {
				break
			}
			used[src] = true
			srcs = append(srcs, src)
			if pending[src] == lengths[src] {
				// Only uncredited threads here: one carries its
				// pending status to the destination (now slow).
				pending[src]--
				pending[dst]++
			}
			lengths[src]--
			lengths[dst]++
		}
		if len(srcs) == 0 {
			break // no eligible source: all pending queues exhausted
		}
		// The interval after this round's migrations.
		credit()
	}
	return steps
}
