package task

import (
	"repro/internal/cpuset"
	"testing"
	"time"
)

// The weight table matches the kernel anchors: nice 0 = 1024, and each
// step changes the share by ~25%.
func TestNiceWeightTable(t *testing.T) {
	if w := NiceWeight(0); w != 1024 {
		t.Fatalf("NiceWeight(0) = %d", w)
	}
	if w := NiceWeight(-20); w != 88761 {
		t.Errorf("NiceWeight(-20) = %d", w)
	}
	if w := NiceWeight(19); w != 15 {
		t.Errorf("NiceWeight(19) = %d", w)
	}
	// Monotone decreasing.
	for n := -20; n < 19; n++ {
		if NiceWeight(n) <= NiceWeight(n+1) {
			t.Errorf("weight not decreasing at nice %d", n)
		}
	}
	// ~1.25x ratio per step in the middle of the table.
	for n := -5; n < 5; n++ {
		r := float64(NiceWeight(n)) / float64(NiceWeight(n+1))
		if r < 1.15 || r > 1.35 {
			t.Errorf("weight ratio at nice %d = %.3f, want ≈1.25", n, r)
		}
	}
	// Clamping.
	if NiceWeight(-100) != NiceWeight(-20) || NiceWeight(100) != NiceWeight(19) {
		t.Error("clamping broken")
	}
}

func TestSpeed(t *testing.T) {
	if s := Speed(50*time.Millisecond, 100*time.Millisecond); s != 0.5 {
		t.Errorf("Speed = %v, want 0.5", s)
	}
	if s := Speed(time.Second, 0); s != 0 {
		t.Errorf("Speed with zero wall = %v, want 0", s)
	}
	if s := Speed(0, time.Second); s != 0 {
		t.Errorf("Speed with zero exec = %v, want 0", s)
	}
}

func TestStateString(t *testing.T) {
	for _, c := range []struct {
		st   State
		want string
	}{
		{New, "new"}, {Runnable, "runnable"}, {Running, "running"},
		{Sleeping, "sleeping"}, {Blocked, "blocked"}, {Done, "done"},
	} {
		if c.st.String() != c.want {
			t.Errorf("%d.String() = %q", c.st, c.st.String())
		}
	}
	if State(99).String() != "invalid" {
		t.Error("unknown state not invalid")
	}
}

func TestWaitPolicyString(t *testing.T) {
	for _, c := range []struct {
		p    WaitPolicy
		want string
	}{
		{WaitSpin, "spin"}, {WaitYield, "yield"},
		{WaitPollSleep, "poll-sleep"}, {WaitBlock, "block"},
		{WaitSpinThenBlock, "spin-then-block"},
	} {
		if c.p.String() != c.want {
			t.Errorf("%d.String() = %q", c.p, c.p.String())
		}
	}
}

func TestSeqProgram(t *testing.T) {
	p := &Seq{Actions: []Action{Compute{Work: 1}, Sleep{D: 2}}}
	if _, ok := p.Next(nil, 0).(Compute); !ok {
		t.Fatal("first action not Compute")
	}
	if _, ok := p.Next(nil, 0).(Sleep); !ok {
		t.Fatal("second action not Sleep")
	}
	if _, ok := p.Next(nil, 0).(Exit); !ok {
		t.Fatal("exhausted Seq did not Exit")
	}
	if _, ok := p.Next(nil, 0).(Exit); !ok {
		t.Fatal("Exit not sticky")
	}
}

func TestLoopProgram(t *testing.T) {
	calls := 0
	p := &Loop{
		Iterations: 3,
		Body: func(iter int) []Action {
			calls++
			if iter != calls-1 {
				t.Errorf("body iter = %d, want %d", iter, calls-1)
			}
			return []Action{Compute{Work: 1}, Compute{Work: 2}}
		},
	}
	var seq []Action
	for {
		a := p.Next(nil, 0)
		if _, done := a.(Exit); done {
			break
		}
		seq = append(seq, a)
		if len(seq) > 100 {
			t.Fatal("Loop does not terminate")
		}
	}
	if len(seq) != 6 || calls != 3 {
		t.Errorf("got %d actions from %d body calls, want 6 from 3", len(seq), calls)
	}
}

// A Loop body may return an empty slice; the loop must skip it rather
// than return nothing.
func TestLoopEmptyBody(t *testing.T) {
	p := &Loop{
		Iterations: 2,
		Body: func(iter int) []Action {
			if iter == 0 {
				return nil
			}
			return []Action{Compute{Work: 5}}
		},
	}
	if _, ok := p.Next(nil, 0).(Compute); !ok {
		t.Error("empty body iteration not skipped")
	}
	if _, ok := p.Next(nil, 0).(Exit); !ok {
		t.Error("loop did not exit after iterations")
	}
}

func TestComputeForever(t *testing.T) {
	p := &ComputeForever{Chunk: 7}
	for i := 0; i < 10; i++ {
		a, ok := p.Next(nil, 0).(Compute)
		if !ok || a.Work != 7 {
			t.Fatalf("action %d = %#v", i, a)
		}
	}
	d := &ComputeForever{}
	if a := d.Next(nil, 0).(Compute); a.Work <= 0 {
		t.Error("default chunk not positive")
	}
}

func TestTaskPredicates(t *testing.T) {
	tk := &Task{State: Running}
	if !tk.Runnable() {
		t.Error("running task not runnable")
	}
	tk.State = Blocked
	if tk.Runnable() {
		t.Error("blocked task runnable")
	}
	tk.Affinity = cpuset.Of(5)
	if !tk.Pinned() {
		t.Error("single-core affinity not pinned")
	}
	tk.Affinity = tk.Affinity.Add(6)
	if tk.Pinned() {
		t.Error("two-core affinity pinned")
	}
}
