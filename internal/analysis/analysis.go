// Package analysis is a small, dependency-free static-analysis framework
// modelled on golang.org/x/tools/go/analysis. The repository's hard
// requirement — experiment output is a pure function of (machine,
// workload, balancer, seed) and bit-identical at any Parallelism level —
// is a semantic property that tests can only spot-check; the analyzers
// built on this package (nodeterm, maporder, slotsafety) enforce it
// structurally over every current and future driver.
//
// x/tools is deliberately not imported: the module is self-contained, so
// the linter builds with nothing but the standard library. The API
// mirrors go/analysis closely enough that the analyzers could be ported
// to a vet -vettool multichecker by swapping this package for the real
// one.
//
// Findings can be suppressed at a call site with a directive comment on
// the same line or the line directly above:
//
//	start := time.Now() //lint:allow-wallclock progress reporting only
//
// The directive names the diagnostic's category (wallclock, rand,
// select, maporder, slotsafety, machineglobal), so an escape hatch for
// one rule never silences another on the same line.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// An Analyzer describes one static check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and on the command line.
	Name string
	// Doc is the one-paragraph description shown by lbos-lint -help.
	Doc string
	// Run applies the check to one package, reporting findings via
	// pass.Reportf.
	Run func(*Pass) error
}

// A Pass provides one analyzer with one type-checked package. Unlike
// x/tools, there is no Facts machinery: every check here is local to a
// package, which keeps the driver a single parse+typecheck sweep.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	diags *[]Diagnostic
}

// A Diagnostic is one finding.
type Diagnostic struct {
	Pos      token.Pos
	Analyzer string
	// Category selects the //lint:allow-<category> directive that
	// suppresses the finding.
	Category string
	Message  string
}

// Reportf records a finding at pos under the given suppression category.
func (p *Pass) Reportf(pos token.Pos, category, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      pos,
		Analyzer: p.Analyzer.Name,
		Category: category,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Run applies the analyzers to one type-checked package and returns the
// surviving findings: diagnostics matched by an allow directive are
// dropped here, so both lbos-lint and the analysistest harness see
// exactly what a user would. Findings are ordered by position.
func Run(analyzers []*Analyzer, fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:  a,
			Fset:      fset,
			Files:     files,
			Pkg:       pkg,
			TypesInfo: info,
			diags:     &diags,
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: %w", a.Name, err)
		}
	}
	sup := newSuppressor(fset, files)
	kept := diags[:0]
	for _, d := range diags {
		if !sup.suppressed(d) {
			kept = append(kept, d)
		}
	}
	sort.Slice(kept, func(i, j int) bool {
		if kept[i].Pos != kept[j].Pos {
			return kept[i].Pos < kept[j].Pos
		}
		return kept[i].Analyzer < kept[j].Analyzer
	})
	return kept, nil
}

// Categories is the canonical suppression-category vocabulary, the
// single source the allowdoc analyzer, the lint-budget ledger, and the
// documentation table draw from. A //lint:allow-<category> directive
// naming anything else is itself a finding.
var Categories = []string{
	"wallclock", "rand", "select", "maporder", "slotsafety",
	"machineglobal", "windowsafe", "eventown", "timeunits", "allowdoc",
}

// KnownCategory reports whether cat is in the canonical vocabulary.
func KnownCategory(cat string) bool {
	for _, c := range Categories {
		if c == cat {
			return true
		}
	}
	return false
}

// A Directive is one parsed //lint:allow-<category> comment.
type Directive struct {
	Pos      token.Pos
	Category string
	// Justification is the free-form text after the category — the
	// reviewer-facing reason the site is exempt. allowdoc requires it.
	Justification string
}

// Directives extracts every suppression directive from the files, in
// file order. The suppressor, the allowdoc analyzer, and the lbos-lint
// ledger all parse directives through this one function so they can
// never disagree about what counts as one.
func Directives(files []*ast.File) []Directive {
	var out []Directive
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, directivePrefix) {
					continue
				}
				rest := strings.TrimPrefix(c.Text, directivePrefix)
				// The category runs to the first space; anything after
				// is the free-form justification.
				cat, just, _ := strings.Cut(rest, " ")
				if cat == "" {
					continue
				}
				// In analyzer corpora a directive line may also carry a
				// "// want" expectation; that is harness metadata, not
				// justification text.
				if i := strings.Index(just, "// want "); i >= 0 {
					just = just[:i]
				}
				out = append(out, Directive{
					Pos:           c.Pos(),
					Category:      cat,
					Justification: strings.TrimSpace(just),
				})
			}
		}
	}
	return out
}

// RecvTypeName resolves the name of the named receiver type of a method
// call selector, or "" when sel is not a method selection. Pointerness
// is stripped: (*Queue).Release and Queue.Release both report "Queue".
// Matching receivers by name rather than by package identity keeps the
// analyzers portable across test doubles and corpora, the same
// convention slotsafety established for Runner.
func RecvTypeName(info *types.Info, sel *ast.SelectorExpr) string {
	selection := info.Selections[sel]
	if selection == nil {
		return ""
	}
	recv := selection.Recv()
	if ptr, ok := recv.(*types.Pointer); ok {
		recv = ptr.Elem()
	}
	named, ok := recv.(*types.Named)
	if !ok {
		return ""
	}
	return named.Obj().Name()
}

// suppressor indexes //lint:allow-<category> directives by file line.
type suppressor struct {
	fset *token.FileSet
	// allows maps filename -> line -> categories allowed on that line.
	allows map[string]map[int][]string
}

const directivePrefix = "//lint:allow-"

func newSuppressor(fset *token.FileSet, files []*ast.File) *suppressor {
	s := &suppressor{fset: fset, allows: map[string]map[int][]string{}}
	for _, d := range Directives(files) {
		pos := fset.Position(d.Pos)
		byLine := s.allows[pos.Filename]
		if byLine == nil {
			byLine = map[int][]string{}
			s.allows[pos.Filename] = byLine
		}
		byLine[pos.Line] = append(byLine[pos.Line], d.Category)
	}
	return s
}

// suppressed reports whether d is covered by an allow directive on its
// own line or the line directly above it.
func (s *suppressor) suppressed(d Diagnostic) bool {
	pos := s.fset.Position(d.Pos)
	byLine := s.allows[pos.Filename]
	if byLine == nil {
		return false
	}
	for _, line := range []int{pos.Line, pos.Line - 1} {
		for _, cat := range byLine[line] {
			if cat == d.Category {
				return true
			}
		}
	}
	return false
}
