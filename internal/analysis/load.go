package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os/exec"
	"path/filepath"
)

// A Package is one loaded, type-checked analysis unit. Test files in the
// same package are checked together with the library files (so test
// helpers are covered); external test packages (package foo_test) form
// their own unit.
type Package struct {
	// Path is the import path, with "_test" appended for external test
	// packages.
	Path  string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// listedPackage is the subset of `go list -json` output the loader needs.
type listedPackage struct {
	Dir          string
	ImportPath   string
	Name         string
	GoFiles      []string
	TestGoFiles  []string
	XTestGoFiles []string
	DepsErrors   []*listError
	Error        *listError
	Incomplete   bool
}

type listError struct {
	Err string
}

// Load expands the go-list patterns (e.g. "./...") into packages and
// type-checks each from source. All units share one file set and one
// source importer, so the standard library and in-module dependencies
// are type-checked once per invocation.
func Load(patterns []string) ([]*Package, error) {
	listed, err := goList(patterns)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "source", nil)

	var pkgs []*Package
	for _, lp := range listed {
		if lp.Error != nil {
			return nil, fmt.Errorf("go list %s: %s", lp.ImportPath, lp.Error.Err)
		}
		// Library + in-package test files as one unit.
		unit := append(append([]string{}, lp.GoFiles...), lp.TestGoFiles...)
		p, err := check(fset, imp, lp.ImportPath, lp.Dir, unit)
		if err != nil {
			return nil, err
		}
		if p != nil {
			pkgs = append(pkgs, p)
		}
		// External test package, if any.
		px, err := check(fset, imp, lp.ImportPath+"_test", lp.Dir, lp.XTestGoFiles)
		if err != nil {
			return nil, err
		}
		if px != nil {
			pkgs = append(pkgs, px)
		}
	}
	return pkgs, nil
}

// check parses and type-checks one unit; it returns nil for an empty
// file list.
func check(fset *token.FileSet, imp types.Importer, path, dir string, names []string) (*Package, error) {
	if len(names) == 0 {
		return nil, nil
	}
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := NewInfo()
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(path, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("typecheck %s: %w", path, err)
	}
	return &Package{Path: path, Fset: fset, Files: files, Types: tpkg, Info: info}, nil
}

// NewInfo allocates the types.Info maps the analyzers rely on.
func NewInfo() *types.Info {
	return &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
}

// goList shells out to the go command to resolve package patterns; this
// keeps the loader honest about build constraints and module layout.
func goList(patterns []string) ([]*listedPackage, error) {
	args := append([]string{"list", "-json"}, patterns...)
	cmd := exec.Command("go", args...)
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %v: %v\n%s", patterns, err, stderr.String())
	}
	dec := json.NewDecoder(bytes.NewReader(out))
	var pkgs []*listedPackage
	for {
		var lp listedPackage
		if err := dec.Decode(&lp); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list: decoding output: %v", err)
		}
		pkgs = append(pkgs, &lp)
	}
	return pkgs, nil
}
