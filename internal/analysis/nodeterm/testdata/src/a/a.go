// Package a seeds every nodeterm violation class; each marked line must
// fire exactly the diagnostics its want comment lists.
package a

import (
	"math/rand"
	randv2 "math/rand/v2"
	"os"
	"time"
)

func wallClock() time.Duration {
	start := time.Now()          // want "time.Now reads the wall clock"
	time.Sleep(time.Millisecond) // want "time.Sleep reads the wall clock"
	return time.Since(start)     // want "time.Since reads the wall clock"
}

func wallClockValue() {
	// Referencing the function as a value is as banned as calling it.
	f := time.Now // want "time.Now reads the wall clock"
	_ = f
	ch := time.After(time.Second) // want "time.After reads the wall clock"
	<-ch
}

func globalRand() int {
	n := rand.Intn(10)                 // want "math/rand.Intn draws from the shared global generator"
	rand.Shuffle(n, func(i, j int) {}) // want "math/rand.Shuffle draws from the shared global generator"
	return n + randv2.IntN(3)          // want "math/rand/v2.IntN draws from the unseedable global generator"
}

func taintedSeed() *rand.Rand {
	// The inner time.Now fires the wallclock rule; both constructor
	// calls independently fire the seed-provenance rule.
	return rand.New(rand.NewSource(time.Now().UnixNano())) // want "rand.New seeded from the wall clock" "rand.NewSource seeded from the wall clock" "time.Now reads the wall clock"
}

func pidSeed() *rand.Rand {
	return rand.New(rand.NewSource(int64(os.Getpid()))) // want "rand.New seeded from the process identity" "rand.NewSource seeded from the process identity"
}

func racySelect(a, b chan int) int {
	select { // want "select with 2 communication cases chooses nondeterministically"
	case x := <-a:
		return x
	case x := <-b:
		return x
	}
}

// Worker-goroutine fixtures for machine-global calls live in the
// windowsafe corpus now: that analyzer owns the machineglobal category.
