// Package allow exercises the timeunits escape hatch.
package allow

import "time"

type Timer struct{}

func (t *Timer) Schedule(at int64) {}

// sanctionedMix pins a sim epoch to the wall epoch on purpose — the
// directive documents why and keeps the analyzer silent.
func sanctionedMix(t *Timer) {
	t.Schedule(time.Now().UnixNano()) //lint:allow-timeunits replay harness aligns the sim epoch with the wall epoch
}
