package ctrlflow_test

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"testing"

	"repro/internal/analysis/ctrlflow"
)

// The tests drive the builder and solver purely syntactically with a toy
// analysis: track string-literal assignments to identifiers (x = "a"),
// using the same join discipline the real analyzers use — keys missing
// from one path copy over, conflicting values decay to "?". The joined
// value at the function's exits then witnesses exactly which paths the
// CFG wired up.

type env map[string]string

func cloneEnv(s env) env {
	c := make(env, len(s))
	for k, v := range s {
		c[k] = v
	}
	return c
}

func joinEnv(dst, src env) bool {
	changed := false
	for k, sv := range src {
		dv, ok := dst[k]
		if !ok {
			dst[k] = sv
			changed = true
		} else if dv != sv && dv != "?" {
			dst[k] = "?"
			changed = true
		}
	}
	return changed
}

func transferEnv(n ast.Node, s env) {
	as, ok := n.(*ast.AssignStmt)
	if !ok || len(as.Lhs) != len(as.Rhs) {
		return
	}
	for i := range as.Lhs {
		id, ok := as.Lhs[i].(*ast.Ident)
		if !ok {
			continue
		}
		if lit, ok := as.Rhs[i].(*ast.BasicLit); ok && lit.Kind == token.STRING {
			s[id.Name] = lit.Value
		} else {
			delete(s, id.Name)
		}
	}
}

// build parses a function body and returns its CFG.
func build(t *testing.T, body string) *ctrlflow.CFG {
	t.Helper()
	src := fmt.Sprintf("package p\nfunc f(cond bool, n int, ch chan int) {\n%s\n}", body)
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "fixture.go", src, 0)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	fd := file.Decls[0].(*ast.FuncDecl)
	return ctrlflow.New(fd.Body)
}

// exits solves the toy analysis and returns the per-exit-edge states.
func exits(t *testing.T, body string) []ctrlflow.ExitState[env] {
	t.Helper()
	g := build(t, body)
	in := ctrlflow.Solve(g, ctrlflow.Dataflow[env]{
		Entry:    func() env { return env{} },
		Clone:    cloneEnv,
		Join:     joinEnv,
		Transfer: transferEnv,
	})
	return ctrlflow.ExitStates(g, in, cloneEnv, transferEnv)
}

// merged joins every exit state into one view of "what may reach the
// end of the function".
func merged(t *testing.T, body string) env {
	t.Helper()
	out := env{}
	for _, e := range exits(t, body) {
		joinEnv(out, e.State)
	}
	return out
}

func TestBranchJoin(t *testing.T) {
	got := merged(t, `
		x := 0
		_ = x
		x = "a"
		if cond {
			x = "b"
		}
		y := "c"
		_ = y
	`)
	if got["x"] != "?" {
		t.Errorf("x after half-assigned branch: got %q, want \"?\"", got["x"])
	}
	if got["y"] != `"c"` {
		t.Errorf("y: got %q, want %q", got["y"], `"c"`)
	}
}

func TestBothArmsAgree(t *testing.T) {
	got := merged(t, `
		x := ""
		if cond {
			x = "a"
		} else {
			x = "a"
		}
		_ = x
	`)
	if got["x"] != `"a"` {
		t.Errorf("x agreed on both arms: got %q, want %q", got["x"], `"a"`)
	}
}

func TestEarlyReturnSplitsExits(t *testing.T) {
	es := exits(t, `
		x := ""
		x = "a"
		if cond {
			return
		}
		x = "b"
	`)
	if len(es) != 2 {
		t.Fatalf("exit edges: got %d, want 2", len(es))
	}
	var atReturn, atEnd env
	for _, e := range es {
		if e.Return != nil {
			atReturn = e.State
		} else {
			atEnd = e.State
		}
	}
	if atReturn == nil || atEnd == nil {
		t.Fatalf("want one return exit and one fall-off exit, got %+v", es)
	}
	if atReturn["x"] != `"a"` {
		t.Errorf("x at early return: got %q, want %q", atReturn["x"], `"a"`)
	}
	if atEnd["x"] != `"b"` {
		t.Errorf("x at end: got %q, want %q", atEnd["x"], `"b"`)
	}
}

func TestLoopBackEdgeJoins(t *testing.T) {
	got := merged(t, `
		x := ""
		x = "a"
		for i := 0; i < n; i++ {
			x = "b"
		}
		_ = x
	`)
	// Zero iterations leave "a"; one or more leave "b".
	if got["x"] != "?" {
		t.Errorf("x after loop: got %q, want \"?\"", got["x"])
	}
}

func TestBreakContinueTargets(t *testing.T) {
	got := merged(t, `
		x := ""
		for i := 0; i < n; i++ {
			if cond {
				x = "b"
				continue
			}
			x = "a"
			break
		}
		_ = x
	`)
	// Exit can be reached with x unset (zero iterations), "a" (break), or
	// "b" (continue, then the condition fails).
	if got["x"] != "?" {
		t.Errorf("x after break/continue loop: got %q, want \"?\"", got["x"])
	}
}

func TestNoReturnCallTerminatesPath(t *testing.T) {
	got := merged(t, `
		x := ""
		x = "a"
		if cond {
			x = "b"
			panic("boom")
		}
		_ = x
	`)
	// The panic arm must not smear "b" over the exit.
	if got["x"] != `"a"` {
		t.Errorf("x with panicking branch: got %q, want %q", got["x"], `"a"`)
	}
}

func TestGotoSkipsDeadCode(t *testing.T) {
	got := merged(t, `
		x := ""
		x = "a"
		goto skip
		x = "b"
	skip:
		_ = x
	`)
	if got["x"] != `"a"` {
		t.Errorf("x after goto over dead store: got %q, want %q", got["x"], `"a"`)
	}
}

func TestSwitchJoin(t *testing.T) {
	got := merged(t, `
		x := ""
		switch n {
		case 1:
			x = "a"
		case 2:
			x = "a"
		default:
			x = "a"
		}
		_ = x
	`)
	// Every clause (including default, so no bypass edge) agrees.
	if got["x"] != `"a"` {
		t.Errorf("x after exhaustive switch: got %q, want %q", got["x"], `"a"`)
	}
}

func TestSwitchFallthroughEdge(t *testing.T) {
	g := build(t, `
		x := ""
		switch n {
		case 1:
			x = "a"
			fallthrough
		case 2:
			x = "b"
		default:
			x = "c"
		}
		_ = x
	`)
	// Structural: some case block must feed the next case block directly.
	found := false
	for _, b := range g.Blocks {
		if b.Kind != "switch.case" {
			continue
		}
		for _, s := range b.Succs {
			if s.Kind == "switch.case" {
				found = true
			}
		}
	}
	if !found {
		t.Error("no fallthrough edge between case blocks")
	}

	// Semantic: the fallthrough path overwrites "a" with "b", so only
	// "b"/"c" reach the exit — a conflict, but never "a" alone.
	got := merged(t, `
		x := ""
		switch n {
		case 1:
			x = "a"
			fallthrough
		case 2:
			x = "b"
		default:
			x = "b"
		}
		_ = x
	`)
	if got["x"] != `"b"` {
		t.Errorf("x after fallthrough rewrite: got %q, want %q", got["x"], `"b"`)
	}
}

func TestSelectWiresEveryCase(t *testing.T) {
	got := merged(t, `
		x := ""
		select {
		case <-ch:
			x = "a"
		case ch <- 1:
			x = "a"
		}
		_ = x
	`)
	if got["x"] != `"a"` {
		t.Errorf("x after select: got %q, want %q", got["x"], `"a"`)
	}
}

func TestEntryIsFirstBlock(t *testing.T) {
	g := build(t, `x := "a"; _ = x`)
	if len(g.Blocks) == 0 || g.Blocks[0] != g.Entry {
		t.Fatal("Blocks[0] is not Entry")
	}
	if g.Exit == nil || len(g.Exit.Nodes) != 0 {
		t.Fatal("Exit must exist and hold no nodes")
	}
}
