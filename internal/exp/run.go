package exp

import (
	"fmt"
	"time"

	"repro/internal/cfs"
	"repro/internal/dwrr"
	"repro/internal/linuxlb"
	"repro/internal/metrics"
	"repro/internal/perturb"
	"repro/internal/predict"
	"repro/internal/sim"
	"repro/internal/speedbal"
	"repro/internal/spmd"
	"repro/internal/topo"
	"repro/internal/trace"
	"repro/internal/ule"
)

// Strategy names a balancing configuration, matching the labels in the
// paper's figures.
type Strategy string

const (
	// StratPinned statically pins threads round-robin (the paper's
	// PINNED; with threads == cores it is One-per-core).
	StratPinned Strategy = "PINNED"
	// StratLoad is default Linux: CFS per core plus the queue-length
	// load balancer, OS fork placement.
	StratLoad Strategy = "LOAD"
	// StratSpeed is the paper's contribution: Linux plus the user-level
	// speed balancer managing the application.
	StratSpeed Strategy = "SPEED"
	// StratDWRR replaces balancing with Distributed Weighted
	// Round-Robin scheduling.
	StratDWRR Strategy = "DWRR"
	// StratULE is the FreeBSD 7.2 ULE push/pull balancer.
	StratULE Strategy = "FreeBSD"
)

// RunOpts describes one measurement.
type RunOpts struct {
	// Topo builds the machine (fresh per run).
	Topo func() *topo.Topology
	// Strategy selects the balancing configuration.
	Strategy Strategy
	// Spec is the application (threads, work, barrier model, affinity).
	Spec spmd.Spec
	// Seed drives all randomness in the run.
	Seed uint64
	// SpeedCfg overrides the speed balancer configuration (ablations).
	SpeedCfg *speedbal.Config
	// LinuxCfg overrides the Linux balancer configuration.
	LinuxCfg *linuxlb.Config
	// Setup installs competing workload on the machine before the app
	// starts (cpu-hog, make -j). May be nil.
	Setup func(m *sim.Machine)
	// Perturb, when active, adds a deterministic fault injector (kernel
	// noise, hotplug, frequency drift, interrupt storms) to the run. The
	// Runner copies Context.Perturb here for cells that leave it inert.
	Perturb perturb.Config
	// Predict enables the speed balancer's anticipatory mode with
	// predict.DefaultConfig when the cell's SpeedCfg does not already
	// configure prediction. The Runner copies Context.Predict here. Only
	// StratSpeed runs are affected.
	Predict bool
	// Shards and ShardParallel select the sharded simulator engine
	// (sim.Config fields of the same names). The Runner copies the
	// Context values here for cells that leave them zero.
	Shards        int
	ShardParallel bool
	// Limit caps the simulated time (default 2000 s).
	Limit time.Duration
	// Tracer, when non-nil, receives the run's scheduling events. The
	// Runner injects a per-cell ring here when Context.Trace is set.
	Tracer trace.Tracer
	// Metrics, when non-nil, collects the run's counters and
	// distributions. The Runner injects a fresh registry per cell when
	// Context.Metrics is set.
	Metrics *metrics.Registry
}

// RunResult is the outcome of one measurement.
type RunResult struct {
	// Elapsed is the application's wall time.
	Elapsed time.Duration
	// Speedup is serial work / elapsed.
	Speedup float64
	// AppMigrations counts migrations of the app's threads.
	AppMigrations int
	// SpeedbalMigrations counts the speed balancer's pulls.
	SpeedbalMigrations int
	// PredictPulls/Hits/Misses are the speed balancer's prediction
	// audit counters (zero when prediction is off).
	PredictPulls, PredictHits, PredictMisses int
	// Stats is the machine's counter snapshot.
	Stats sim.Stats
	// App is the finished application (thread exec times etc.).
	App *spmd.App
	// Machine allows further inspection.
	Machine *sim.Machine
	// Truncated reports that the simulated time limit expired before the
	// application finished (Elapsed is then the limit and Speedup 0).
	Truncated bool
	// Out carries a custom cell's payload when the fields above don't
	// fit (SubmitFunc cells); aggregate it in the ordered result
	// callback, never through shared state in the cell function.
	Out any
}

// Run executes one measurement.
func Run(o RunOpts) RunResult {
	tp := o.Topo()
	cfg := sim.Config{Seed: o.Seed, Tracer: o.Tracer, Metrics: o.Metrics,
		Shards: o.Shards, ShardParallel: o.ShardParallel}
	var dwrrG *dwrr.Global
	if o.Strategy == StratDWRR {
		cfg.NewScheduler, dwrrG = dwrr.NewFactory(dwrr.DefaultConfig())
	} else {
		cfg.NewScheduler = cfs.Factory()
	}
	m := sim.New(tp, cfg)

	var sb *speedbal.Balancer
	switch o.Strategy {
	case StratPinned, StratLoad, StratSpeed:
		lcfg := linuxlb.DefaultConfig()
		if o.LinuxCfg != nil {
			lcfg = *o.LinuxCfg
		}
		m.AddActor(linuxlb.New(lcfg))
	case StratULE:
		m.AddActor(ule.Default())
	case StratDWRR:
		// DWRR balances via round stealing inside the scheduler.
	default:
		panic(fmt.Sprintf("exp: unknown strategy %q", o.Strategy))
	}

	if o.Perturb.Active() {
		// Added after the balancer so the RNG split order (balancer,
		// injector, app) is fixed regardless of which families are on.
		m.AddActor(perturb.New(o.Perturb))
	}

	if o.Setup != nil {
		o.Setup(m)
	}

	app := spmd.Build(m, o.Spec)
	// The stop-on-completion hook is a machine-global effect that can
	// fire from whichever shard retires the app's last task, so this run
	// must never open a parallel window (the sharded queue and its
	// deterministic merge still apply). Long-running workloads that want
	// windowed execution drive the machine directly (sim.Machine.Run).
	m.BlockWindows()
	app.OnDone(func(*spmd.App) { m.Stop() })
	switch o.Strategy {
	case StratPinned:
		app.StartPinned()
	case StratSpeed:
		scfg := speedbal.DefaultConfig()
		if o.SpeedCfg != nil {
			scfg = *o.SpeedCfg
		}
		if o.Predict && !scfg.Predict.Enabled {
			scfg.Predict = predict.DefaultConfig()
		}
		sb = speedbal.New(scfg)
		sb.Launch(m, app)
	default:
		app.Start()
	}

	limit := o.Limit
	if limit == 0 {
		limit = 2000 * time.Second
	}
	m.Run(int64(limit))

	if o.Metrics != nil {
		m.Sync()
		elapsed := m.Now()
		for _, c := range m.Cores {
			frac := 0.0
			if elapsed > 0 {
				frac = float64(c.BusyTime) / float64(elapsed)
			}
			o.Metrics.Gauge(fmt.Sprintf("sim.core%02d.busy_frac", c.ID())).Set(frac)
		}
		o.Metrics.Counter("sim.context_switches").Add(int64(m.Stats.ContextSwitches))
		o.Metrics.Counter("sim.wakeups").Add(int64(m.Stats.Wakeups))
		o.Metrics.Counter("sim.events").Add(int64(m.Stats.Events))
	}

	res := RunResult{
		Elapsed: app.Elapsed(),
		Speedup: app.Speedup(),
		Stats:   m.Stats,
		App:     app,
		Machine: m,
	}
	for _, t := range app.Tasks {
		res.AppMigrations += t.Migrations
	}
	if sb != nil {
		res.SpeedbalMigrations = sb.Migrations
		res.PredictPulls = sb.PredictPulls
		res.PredictHits = sb.PredictHits
		res.PredictMisses = sb.PredictMisses
	}
	if dwrrG != nil {
		res.Stats.Migrations["dwrr"] = dwrrG.Steals()
	}
	if !app.Done() {
		// Surface truncation loudly: experiments must size Limit.
		res.Elapsed = limit
		res.Speedup = 0
		res.Truncated = true
	}
	return res
}

// Repeat runs the configuration Reps times with derived seeds and calls
// fn with each result, in repetition order. The repetitions execute on
// the parallel Runner; fn is invoked on the calling goroutine.
func Repeat(ctx *Context, config int, o RunOpts, fn func(rep int, r RunResult)) {
	r := NewRunner(ctx)
	r.Repeat(config, o, fn)
	r.Wait()
}

// ScaleSpec shrinks a spec's iteration count by the context scale,
// keeping at least one iteration (and for single-iteration EP-style
// specs, shrinking the work instead).
func ScaleSpec(ctx *Context, s spmd.Spec) spmd.Spec {
	if ctx.Scale <= 1 {
		return s
	}
	if s.Iterations > 1 {
		s.Iterations /= ctx.Scale
		if s.Iterations < 1 {
			s.Iterations = 1
		}
	} else {
		s.WorkPerIteration /= float64(ctx.Scale)
	}
	return s
}
