package speedbal_test

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/cfs"
	"repro/internal/cpuset"
	"repro/internal/sim"
	"repro/internal/speedbal"
	"repro/internal/spmd"
	"repro/internal/task"
	"repro/internal/topo"
)

// Swap extension: 8 threads on 8 asymmetric cores (4×1.5x, 4×1.0x).
// Pull-only balancing cannot express the needed rotation; swaps reach
// near the 10-capacity ideal.
func TestSwapExtensionAsymmetric(t *testing.T) {
	speeds := []float64{1.5, 1.5, 1.5, 1.5, 1, 1, 1, 1}
	const work = 3e9
	run := func(swaps bool) (time.Duration, int) {
		m := sim.New(topo.Asymmetric(speeds), sim.Config{Seed: 11, NewScheduler: cfs.Factory()})
		app := spmd.Build(m, spmd.Spec{
			Name: "app", Threads: 8, Iterations: 1, WorkPerIteration: work,
			Model: spmd.UPC(),
		})
		cfg := speedbal.DefaultConfig()
		cfg.EnableSwaps = swaps
		sb := speedbal.New(cfg)
		sb.Launch(m, app)
		m.Run(int64(time.Hour))
		if !app.Done() {
			t.Fatal("app not done")
		}
		return app.Elapsed(), sb.Swaps
	}
	plain, _ := run(false)
	swapped, nswaps := run(true)
	// Ideal: 8×3s over 10 capacity = 2.4s; pull-only is pinned at the
	// slow cores' 3s.
	if plain < 2900*time.Millisecond {
		t.Errorf("pull-only %v suspiciously fast; expected ≈ 3s (slow cores bound)", plain)
	}
	if swapped > 2750*time.Millisecond {
		t.Errorf("swap-enabled %v, want clearly under 2.75s (ideal 2.4s)", swapped)
	}
	if nswaps == 0 {
		t.Error("no swaps recorded")
	}
}

// Work-rate measure: memory-bound threads clumped on two sockets run at
// 1/3 efficiency; the CPU-share measure sees nothing wrong (everyone
// has a full core), the work-rate measure spreads them across sockets.
func TestWorkRateSeesBandwidthContention(t *testing.T) {
	const work = 2e9
	spec := spmd.Spec{
		Name: "mem", Threads: 8, Iterations: 1, WorkPerIteration: work,
		Model:        spmd.UPC(),
		RSSBytes:     1 << 20,
		MemIntensity: 0.9,
		// Clump on sockets 0 and 1 (cores 0-7) initially.
		Affinity: cpuset.Range(0, 8),
	}
	run := func(measure speedbal.Measure) time.Duration {
		m := sim.New(topo.Tigerton(), sim.Config{Seed: 13, NewScheduler: cfs.Factory()})
		app := spmd.Build(m, spec)
		cfg := speedbal.DefaultConfig()
		cfg.Measure = measure
		sb := speedbal.New(cfg)
		// Manage over ALL cores (the user asked for the full machine)
		// but the app starts clumped on cores 0-7.
		app.StartPinned()
		for _, tk := range app.Tasks {
			tk.Affinity = m.Topo.AllCores() // managed set may expand
		}
		sb.Manage(m, app.Tasks, m.Topo.AllCores())
		m.AddActor(sb)
		m.Run(int64(time.Hour))
		if !app.Done() {
			t.Fatal("app not done")
		}
		return app.Elapsed()
	}
	share := run(speedbal.MeasureCPUShare)
	rate := run(speedbal.MeasureWorkRate)
	t.Logf("cpu-share %v, work-rate %v", share, rate)
	// Clumped: 4 threads/socket, f = 1−0.9+0.9·(1/3.6) = 0.35 → ~5.7s.
	// Spread: 2/socket, f = 1−0.9+0.9·(1/1.8) = 0.6 → ~3.3s.
	if float64(rate) > 0.8*float64(share) {
		t.Errorf("work-rate (%v) did not clearly beat cpu-share (%v) under bandwidth contention", rate, share)
	}
}

// SMT-aware weighting: 12 threads on 16 logical CPUs (8 physical): the
// plain share measure sees every thread at full speed; the SMT-aware
// measure rotates threads through un-contended physical cores. Finishers
// block (MPI-style), freeing their hardware contexts — which only the
// SMT-aware measure routes stragglers onto.
func TestSMTAwareRotation(t *testing.T) {
	const work = 2e9
	run := func(aware bool) time.Duration {
		m := sim.New(topo.Nehalem(), sim.Config{Seed: 17, NewScheduler: cfs.Factory()})
		app := spmd.Build(m, spmd.Spec{
			Name: "app", Threads: 12, Iterations: 1, WorkPerIteration: work,
			Model: spmd.Model{Name: "mpi-block", Policy: task.WaitBlock},
		})
		cfg := speedbal.DefaultConfig()
		cfg.SMTAware = aware
		cfg.BlockNUMA = false   // allow rotation across the two sockets
		cfg.EnableSwaps = aware // contended↔solo exchange needs swaps
		sb := speedbal.New(cfg)
		sb.Launch(m, app)
		m.Run(int64(time.Hour))
		if !app.Done() {
			t.Fatal("app not done")
		}
		return app.Elapsed()
	}
	plain := run(false)
	aware := run(true)
	t.Logf("plain %v, smt-aware %v", plain, aware)
	if aware >= plain {
		t.Errorf("SMT-aware (%v) not better than plain (%v)", aware, plain)
	}
}

// Dynamic parallelism: threads appearing after launch are adopted via
// the rescan and balanced.
func TestDynamicRescanAdoptsNewThreads(t *testing.T) {
	m := sim.New(topo.SMP(2), sim.Config{Seed: 19, NewScheduler: cfs.Factory()})
	cfg := speedbal.DefaultConfig()
	cfg.RescanGroup = "dyn"
	sb := speedbal.New(cfg)
	m.AddActor(sb)

	mk := func(i int) *task.Task {
		tk := m.NewTask(fmt.Sprintf("dyn.%d", i), &task.Seq{Actions: []task.Action{
			task.Compute{Work: 3e9},
		}})
		tk.Group = "dyn"
		return tk
	}
	// Two threads at t=0, a third at t=500ms — all forked onto core 0
	// to create the imbalance the balancer must fix.
	t0, t1 := mk(0), mk(1)
	m.StartOn(t0, 0)
	m.StartOn(t1, 1)
	m.After(500*time.Millisecond, func(int64) {
		t2 := mk(2)
		m.StartOn(t2, 0)
	})
	m.RunFor(10 * time.Second)
	if sb.Adopted != 3 {
		t.Fatalf("adopted %d threads, want 3", sb.Adopted)
	}
	if sb.Migrations == 0 {
		t.Error("no balancing after adoption (3 threads on 2 cores)")
	}
	m.Sync()
	// Fairness: all three threads make comparable progress.
	var min, max time.Duration
	for i, tk := range []*task.Task{t0, t1} {
		_ = i
		_ = tk
	}
	min, max = 0, 0
	for i, tk := range m.Tasks() {
		if tk.Group != "dyn" {
			continue
		}
		if i == 0 || tk.ExecTime < min || min == 0 {
			min = tk.ExecTime
		}
		if tk.ExecTime > max {
			max = tk.ExecTime
		}
	}
	if float64(max) > 2.2*float64(min) {
		t.Errorf("dynamic threads progress spread too wide: %v..%v", min, max)
	}
}

// The work-rate measure must not regress the homogeneous oversubscribed
// case (EP 3-on-2 still near ideal).
func TestWorkRateHomogeneousParity(t *testing.T) {
	m := sim.New(topo.SMP(2), sim.Config{Seed: 23, NewScheduler: cfs.Factory()})
	app := spmd.Build(m, spmd.Spec{
		Name: "app", Threads: 3, Iterations: 1, WorkPerIteration: 2e9,
		Model: spmd.UPC(),
	})
	cfg := speedbal.DefaultConfig()
	cfg.Measure = speedbal.MeasureWorkRate
	sb := speedbal.New(cfg)
	sb.Launch(m, app)
	m.Run(int64(time.Hour))
	if !app.Done() {
		t.Fatal("app not done")
	}
	ideal := time.Duration(1.5 * 2e9)
	if float64(app.Elapsed()) > 1.2*float64(ideal) {
		t.Errorf("work-rate EP 3-on-2: %v, want within 20%% of %v", app.Elapsed(), ideal)
	}
}
