// Package metrics is a small deterministic metrics layer for the
// scheduling stack: named counters, gauges and histograms collected
// per simulated run, snapshotted in sorted-name order, and merged
// across the repetitions of an experiment.
//
// Design constraints inherited from the bit-identical-output contract:
//
//   - A Registry belongs to one simulated machine (one experiment cell)
//     and is used from that cell's single goroutine — no locks.
//   - Snapshot output is sorted by metric name, never map-ordered, so a
//     rendered metrics table is a pure function of the run.
//   - Aggregation across cells happens in the harness's submission
//     order (exp.Runner delivers results slot-indexed), so even
//     float-summing accumulators are order-stable at any -parallel.
//
// Instrumentation points check for a nil Registry before recording, the
// same fast-path discipline as the nil trace.Tracer.
package metrics

import (
	"fmt"
	"sort"
)

// Counter is a monotonically increasing integer metric.
type Counter struct{ v int64 }

// Inc adds one.
func (c *Counter) Inc() { c.v++ }

// Add adds n (n may be any non-negative amount).
func (c *Counter) Add(n int64) { c.v += n }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v }

// Gauge is a point-in-time float metric (set, not accumulated).
type Gauge struct{ v float64 }

// Set records the current value.
func (g *Gauge) Set(v float64) { g.v = v }

// Value returns the last set value.
func (g *Gauge) Value() float64 { return g.v }

// Histogram accumulates observations into fixed buckets. Buckets are
// upper bounds (inclusive); observations above the last bound land in
// an implicit overflow bucket.
type Histogram struct {
	bounds []float64
	counts []int64 // len(bounds)+1, last = overflow
	count  int64
	sum    float64
	min    float64
	max    float64
}

// Observe records one observation.
func (h *Histogram) Observe(v float64) {
	if h.count == 0 || v < h.min {
		h.min = v
	}
	if h.count == 0 || v > h.max {
		h.max = v
	}
	h.count++
	h.sum += v
	for i, b := range h.bounds {
		if v <= b {
			h.counts[i]++
			return
		}
	}
	h.counts[len(h.bounds)]++
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count }

// Mean returns the observation mean (0 when empty).
func (h *Histogram) Mean() float64 {
	if h.count == 0 {
		return 0
	}
	return h.sum / float64(h.count)
}

// Registry holds one run's metrics, keyed by name.
type Registry struct {
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

// Counter returns the named counter, creating it at zero.
func (r *Registry) Counter(name string) *Counter {
	c := r.counters[name]
	if c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it at zero.
func (r *Registry) Gauge(name string) *Gauge {
	g := r.gauges[name]
	if g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it with the given
// bucket upper bounds (sorted ascending). The bounds of the first
// creation win; later calls may pass nil.
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	h := r.hists[name]
	if h == nil {
		bs := append([]float64(nil), bounds...)
		sort.Float64s(bs)
		h = &Histogram{bounds: bs, counts: make([]int64, len(bs)+1)}
		r.hists[name] = h
	}
	return h
}

// ExpBuckets returns n bounds growing geometrically from start by
// factor: {start, start·f, start·f², ...} — the standard shape for
// duration histograms.
func ExpBuckets(start, factor float64, n int) []float64 {
	if n <= 0 || start <= 0 || factor <= 1 {
		panic(fmt.Sprintf("metrics: invalid ExpBuckets(%v, %v, %d)", start, factor, n))
	}
	out := make([]float64, n)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}

// LinearBuckets returns n bounds {start, start+w, start+2w, ...}.
func LinearBuckets(start, width float64, n int) []float64 {
	if n <= 0 || width <= 0 {
		panic(fmt.Sprintf("metrics: invalid LinearBuckets(%v, %v, %d)", start, width, n))
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = start + float64(i)*width
	}
	return out
}

// CounterSnap is one counter in a snapshot.
type CounterSnap struct {
	Name  string
	Value int64
}

// GaugeSnap is one gauge in a snapshot.
type GaugeSnap struct {
	Name  string
	Value float64
}

// HistSnap is one histogram in a snapshot.
type HistSnap struct {
	Name   string
	Bounds []float64
	Counts []int64
	Count  int64
	Sum    float64
	Min    float64
	Max    float64
}

// Mean returns the snapshot's observation mean (0 when empty).
func (h *HistSnap) Mean() float64 {
	if h.Count == 0 {
		return 0
	}
	return h.Sum / float64(h.Count)
}

// Snapshot is a registry's state at one instant, sorted by name within
// each metric class — safe to render directly.
type Snapshot struct {
	Counters []CounterSnap
	Gauges   []GaugeSnap
	Hists    []HistSnap
}

// Snapshot captures the registry's current state, sorted by name.
func (r *Registry) Snapshot() Snapshot {
	var s Snapshot
	names := make([]string, 0, len(r.counters))
	for n := range r.counters {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		s.Counters = append(s.Counters, CounterSnap{Name: n, Value: r.counters[n].v})
	}
	names = names[:0]
	for n := range r.gauges {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		s.Gauges = append(s.Gauges, GaugeSnap{Name: n, Value: r.gauges[n].v})
	}
	names = names[:0]
	for n := range r.hists {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		h := r.hists[n]
		s.Hists = append(s.Hists, HistSnap{
			Name:   n,
			Bounds: append([]float64(nil), h.bounds...),
			Counts: append([]int64(nil), h.counts...),
			Count:  h.count,
			Sum:    h.sum,
			Min:    h.min,
			Max:    h.max,
		})
	}
	return s
}

// Source is implemented by the simulator machine: instrumentation that
// only holds a task.Waker (the SPMD barrier) type-asserts to reach the
// run's registry. A nil result means metrics are off.
type Source interface {
	Metrics() *Registry
}

// Aggregate merges the snapshots of an experiment's runs: counters and
// histogram buckets sum; gauges average across runs. Snapshots must be
// added in a deterministic order (the harness adds them in cell
// submission order).
type Aggregate struct {
	counters map[string]int64
	gauges   map[string]*gaugeAgg
	hists    map[string]*HistSnap
	runs     int
}

type gaugeAgg struct {
	sum float64
	n   int
}

// NewAggregate returns an empty aggregate.
func NewAggregate() *Aggregate {
	return &Aggregate{
		counters: make(map[string]int64),
		gauges:   make(map[string]*gaugeAgg),
		hists:    make(map[string]*HistSnap),
	}
}

// Runs returns how many snapshots have been merged.
func (a *Aggregate) Runs() int { return a.runs }

// Add merges one run's snapshot.
func (a *Aggregate) Add(s Snapshot) {
	a.runs++
	for _, c := range s.Counters {
		a.counters[c.Name] += c.Value
	}
	for _, g := range s.Gauges {
		ga := a.gauges[g.Name]
		if ga == nil {
			ga = &gaugeAgg{}
			a.gauges[g.Name] = ga
		}
		ga.sum += g.Value
		ga.n++
	}
	for _, h := range s.Hists {
		ha := a.hists[h.Name]
		if ha == nil {
			cp := h
			cp.Bounds = append([]float64(nil), h.Bounds...)
			cp.Counts = append([]int64(nil), h.Counts...)
			a.hists[h.Name] = &cp
			continue
		}
		if ha.Count == 0 || (h.Count > 0 && h.Min < ha.Min) {
			ha.Min = h.Min
		}
		if h.Count > 0 && h.Max > ha.Max {
			ha.Max = h.Max
		}
		ha.Count += h.Count
		ha.Sum += h.Sum
		for i := range ha.Counts {
			if i < len(h.Counts) {
				ha.Counts[i] += h.Counts[i]
			}
		}
	}
}

// Snapshot returns the merged state sorted by name. Gauge values are
// the mean over the runs that set them.
func (a *Aggregate) Snapshot() Snapshot {
	var s Snapshot
	names := make([]string, 0, len(a.counters))
	for n := range a.counters {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		s.Counters = append(s.Counters, CounterSnap{Name: n, Value: a.counters[n]})
	}
	names = names[:0]
	for n := range a.gauges {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		g := a.gauges[n]
		s.Gauges = append(s.Gauges, GaugeSnap{Name: n, Value: g.sum / float64(g.n)})
	}
	names = names[:0]
	for n := range a.hists {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		h := a.hists[n]
		cp := *h
		cp.Bounds = append([]float64(nil), h.Bounds...)
		cp.Counts = append([]int64(nil), h.Counts...)
		s.Hists = append(s.Hists, cp)
	}
	return s
}
