// Package windowsafe implements the shard-window isolation analyzer.
//
// Inside a parallel lookahead window (internal/sim) every shard worker —
// a goroutine the machine launches as `go func(s int) { ... }(s)` —
// may touch only its own shard's state. The simulator enforces this at
// runtime with tripwire panics and precondition checks (windows refuse
// to open while a tracer or metrics registry is attached); this analyzer
// enforces it at lint time, and — unlike the per-statement machineglobal
// check it replaces in nodeterm — it follows the package-local call
// graph, so a hazard buried two helpers deep under the worker literal is
// found without ever executing a window.
//
// The analyzer computes the set of functions in the package statically
// reachable from every go-launched function literal (reachability
// follows direct calls to same-package functions and methods; calls
// through function values, interfaces, or other packages end the chain,
// which keeps the check honest about what it can see). In the literal
// and every reachable function it flags:
//
//   - machine-global Machine operations (Stop, Sync, SyncCores, NewTask,
//     Start, StartOn, SetCoreOnline, SetCoreFreq, SetCoreStolen, RNG,
//     AddActor, SetPlacer, BlockWindows, Run, RunFor, Migrate,
//     MigrateNow): event-loop-only calls whose order must not depend on
//     goroutine scheduling — category machineglobal, the same directive
//     vocabulary the nodeterm check used;
//   - tracer/metrics emission (Machine.Emit, Ring.Emit, Counter.Inc/Add,
//     Gauge.Set, Histogram.Observe, Registry.Counter/Gauge/Histogram —
//     registry lookups lazily allocate, so even a read mutates shared
//     state): windows only open with observability detached, so emission
//     on a worker path either panics at runtime or silently interleaves
//     — category windowsafe;
//   - writes to package-level variables: global state is by definition
//     cross-shard — category windowsafe.
//
// A Machine (or registry) the worker constructs for itself is exempt:
// calls whose receiver chain roots at a variable declared inside the
// body of the function under scrutiny are goroutine-local, the pattern
// the speedbalance CLI's run-per-goroutine workers use. Receivers and
// parameters are not exempt — they arrived from outside the goroutine.
//
// Diagnostics on reachable functions carry the witness call path from
// the worker literal, so the finding is actionable without re-deriving
// the reachability by hand. //lint:allow-machineglobal and
// //lint:allow-windowsafe mark calls that are provably serialised (e.g.
// under the machine's own window barrier).
package windowsafe

import (
	"fmt"
	"go/ast"
	"go/types"
	"strings"

	"repro/internal/analysis"
)

// Analyzer is the windowsafe analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "windowsafe",
	Doc:  "flag machine-global calls, tracer/metrics emission, and global writes on any path reachable from a go-launched worker literal",
	Run:  run,
}

// machineGlobal lists the Machine methods that are event-loop-only:
// each either panics behind a window tripwire or mutates machine-wide
// state whose update order must not depend on goroutine scheduling.
var machineGlobal = map[string]bool{
	"Stop": true, "Sync": true, "SyncCores": true, "NewTask": true,
	"Start": true, "StartOn": true, "SetCoreOnline": true,
	"SetCoreFreq": true, "SetCoreStolen": true, "RNG": true,
	"AddActor": true, "SetPlacer": true, "BlockWindows": true,
	"Run": true, "RunFor": true, "Migrate": true, "MigrateNow": true,
}

// emitters maps receiver type name -> method names that emit trace or
// metrics state. Registry lookups are included because they lazily
// allocate the named instrument: even "just reading" mutates the shared
// registry map.
var emitters = map[string]map[string]bool{
	"Machine":   {"Emit": true},
	"Ring":      {"Emit": true},
	"Counter":   {"Inc": true, "Add": true},
	"Gauge":     {"Set": true},
	"Histogram": {"Observe": true},
	"Registry":  {"Counter": true, "Gauge": true, "Histogram": true},
}

func run(pass *analysis.Pass) error {
	// Index every function and method declared in this package by its
	// types.Func object, for call-graph edges.
	decls := map[*types.Func]*ast.FuncDecl{}
	declName := map[*types.Func]string{}
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func); ok {
				decls[fn] = fd
				name := fd.Name.Name
				if fd.Recv != nil {
					name = recvString(fd) + "." + name
				}
				declName[fn] = name
			}
		}
	}

	// Find the worker roots: every function literal launched by a go
	// statement, together with the literal itself for depth-0 checks.
	type root struct {
		lit *ast.FuncLit
	}
	var roots []root
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			gs, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			if lit, ok := gs.Call.Fun.(*ast.FuncLit); ok {
				roots = append(roots, root{lit: lit})
			}
			return true
		})
	}
	if len(roots) == 0 {
		return nil
	}

	// BFS the package-local call graph from each root, recording the
	// first witness path to each reachable function. Reachability and
	// findings are deduplicated across roots: a helper reachable from
	// two workers is reported once.
	type item struct {
		fn   *types.Func
		path []string
	}
	reached := map[*types.Func][]string{}
	var queue []item
	enqueue := func(body ast.Node, path []string) {
		for _, callee := range directCallees(pass, body, decls) {
			if _, ok := reached[callee]; ok {
				continue
			}
			p := append(append([]string{}, path...), declName[callee])
			reached[callee] = p
			queue = append(queue, item{fn: callee, path: p})
		}
	}
	reportedAt := map[string]bool{}
	for _, r := range roots {
		// Depth 0: the literal body itself.
		checkBody(pass, r.lit.Body, nil, reportedAt)
		enqueue(r.lit.Body, nil)
	}
	for len(queue) > 0 {
		it := queue[0]
		queue = queue[1:]
		fd := decls[it.fn]
		checkBody(pass, fd.Body, it.path, reportedAt)
		enqueue(fd.Body, it.path)
	}
	return nil
}

// directCallees returns the same-package functions and methods that body
// calls directly. Calls through function values, interface methods, or
// other packages are not resolvable statically and end the chain.
func directCallees(pass *analysis.Pass, body ast.Node, decls map[*types.Func]*ast.FuncDecl) []*types.Func {
	var out []*types.Func
	seen := map[*types.Func]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		var obj types.Object
		switch fun := call.Fun.(type) {
		case *ast.Ident:
			obj = pass.TypesInfo.Uses[fun]
		case *ast.SelectorExpr:
			obj = pass.TypesInfo.Uses[fun.Sel]
		}
		fn, ok := obj.(*types.Func)
		if !ok || seen[fn] {
			return true
		}
		if _, declared := decls[fn]; declared {
			seen[fn] = true
			out = append(out, fn)
		}
		return true
	})
	return out
}

// checkBody flags the three hazard classes inside one worker-reachable
// function body. Variables declared inside the body itself (a Machine
// the goroutine constructs for its own run) are goroutine-local and
// exempt; receivers and parameters are not — they arrived from outside
// the goroutine.
func checkBody(pass *analysis.Pass, body *ast.BlockStmt, path []string, reportedAt map[string]bool) {
	via := ""
	if len(path) > 0 {
		via = " (reachable from a go-launched worker via " + strings.Join(path, " → ") + ")"
	}
	report := func(pos ast.Node, category, format string, args ...any) {
		key := fmt.Sprintf("%d-%s", pos.Pos(), category)
		if reportedAt[key] {
			return
		}
		reportedAt[key] = true
		pass.Reportf(pos.Pos(), category, format+via, args...)
	}
	localTo := func(e ast.Expr) bool {
		obj := rootObj(pass, e)
		return obj != nil && obj.Pos() >= body.Pos() && obj.Pos() <= body.End()
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			sel, ok := n.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			recv := analysis.RecvTypeName(pass.TypesInfo, sel)
			if recv == "" || localTo(sel.X) {
				return true
			}
			if recv == "Machine" && machineGlobal[sel.Sel.Name] {
				report(n, "machineglobal",
					"Machine.%s is a machine-global, event-loop-only operation; a worker goroutine must act through its own shard's state and defer global effects to the merge point after the window", sel.Sel.Name)
			}
			if methods, ok := emitters[recv]; ok && methods[sel.Sel.Name] {
				report(n, "windowsafe",
					"%s.%s emits tracer/metrics state shared across shards; parallel windows require observability detached, so this call on a worker path either panics or interleaves nondeterministically", recv, sel.Sel.Name)
			}
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				checkGlobalWrite(pass, lhs, report)
			}
		case *ast.IncDecStmt:
			checkGlobalWrite(pass, n.X, report)
		}
		return true
	})
}

// checkGlobalWrite reports a write whose root variable is declared at
// package scope.
func checkGlobalWrite(pass *analysis.Pass, lhs ast.Expr, report func(ast.Node, string, string, ...any)) {
	obj := rootObj(pass, lhs)
	if obj == nil {
		return
	}
	v, ok := obj.(*types.Var)
	if !ok || v.Parent() != pass.Pkg.Scope() {
		return
	}
	report(lhs, "windowsafe",
		"write to package-level variable %s from code reachable from a go-launched worker; global state is cross-shard by definition — fold results at the merge point after the window", obj.Name())
}

// rootObj resolves the root variable of an access path (the x of x,
// x.f, x[i], *x), or nil.
func rootObj(pass *analysis.Pass, expr ast.Expr) types.Object {
	for {
		switch e := expr.(type) {
		case *ast.Ident:
			if e.Name == "_" {
				return nil
			}
			return pass.TypesInfo.Uses[e]
		case *ast.SelectorExpr:
			expr = e.X
		case *ast.IndexExpr:
			expr = e.X
		case *ast.StarExpr:
			expr = e.X
		case *ast.ParenExpr:
			expr = e.X
		case *ast.CallExpr:
			expr = e.Fun
		default:
			return nil
		}
	}
}

// recvString renders a method's receiver type for witness paths, e.g.
// "(*Machine)".
func recvString(fd *ast.FuncDecl) string {
	if len(fd.Recv.List) == 0 {
		return ""
	}
	t := fd.Recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		if id, ok := star.X.(*ast.Ident); ok {
			return "(*" + id.Name + ")"
		}
	}
	if id, ok := t.(*ast.Ident); ok {
		return id.Name
	}
	return "(recv)"
}
