package sim_test

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/cfs"
	"repro/internal/cpuset"
	"repro/internal/sim"
	"repro/internal/spmd"
	"repro/internal/task"
	"repro/internal/topo"
)

// shardCfg builds a CFS machine config with the given shard settings.
func shardCfg(seed uint64, shards int, par bool) sim.Config {
	return sim.Config{
		Seed:          seed,
		NewScheduler:  func(coreID int) sim.Scheduler { return cfs.New(cfs.DefaultParams()) },
		Shards:        shards,
		ShardParallel: par,
	}
}

// fingerprint reduces a finished machine to every externally observable
// quantity: per-task accounting, per-core utilisation, machine stats.
func fingerprint(m *sim.Machine) string {
	s := fmt.Sprintf("now=%d ev=%d cs=%d wk=%d mig=%d live=%d\n",
		m.Now(), m.Stats.Events, m.Stats.ContextSwitches, m.Stats.Wakeups,
		m.Stats.TotalMigrations(), m.LiveTasks())
	for _, t := range m.Tasks() {
		s += fmt.Sprintf("task %d %s exec=%d work=%.9g mig=%d fin=%d core=%d st=%v\n",
			t.ID, t.Name, t.ExecTime, t.WorkDone, t.Migrations, t.FinishedAt, t.CoreID, t.State)
	}
	for _, c := range m.Cores {
		s += fmt.Sprintf("core %d busy=%d idle=%d stolen=%d\n",
			c.ID(), c.BusyTime, c.IdleTime(), c.StolenTime)
	}
	return s
}

// socketApps builds one pinned SPMD app per socket — a shard-contained
// workload: every task's affinity is a single core and every barrier
// couples tasks of one socket only.
func socketApps(m *sim.Machine, model spmd.Model, iters int) []*spmd.App {
	perSocket := map[int]cpuset.Set{}
	for _, ci := range m.Topo.Cores {
		perSocket[ci.Socket] = perSocket[ci.Socket].Add(ci.ID)
	}
	var apps []*spmd.App
	for s := 0; s < len(perSocket); s++ {
		app := spmd.Build(m, spmd.Spec{
			Name:             fmt.Sprintf("app%d", s),
			Threads:          perSocket[s].Count(),
			Iterations:       iters,
			WorkPerIteration: float64(300 * time.Microsecond),
			WorkJitter:       0.3,
			MemIntensity:     0.4,
			RSSBytes:         1 << 20,
			Model:            model,
			Affinity:         perSocket[s],
		})
		apps = append(apps, app)
	}
	for _, a := range apps {
		a.StartPinned()
	}
	return apps
}

// TestShardCountInvariance is the core refactor guarantee: the shard
// partition must not change one bit of any simulation result. A
// cross-socket workload (full-machine affinity, sleeps, barriers,
// migrations off the default placer) runs bit-identically at every
// shard count.
func TestShardCountInvariance(t *testing.T) {
	run := func(shards int) string {
		m := sim.New(topo.Tigerton(), shardCfg(7, shards, false))
		app := spmd.Build(m, spmd.Spec{
			Name: "a", Threads: 24, Iterations: 6,
			WorkPerIteration: float64(200 * time.Microsecond),
			WorkJitter:       0.5, MemIntensity: 0.5,
			Model: spmd.UPCSleep(),
		})
		app.Start()
		// A second app with sleep phases keeps wake timers hopping
		// between cores (and hence shards) via the idle placer.
		b := spmd.Build(m, spmd.Spec{
			Name: "b", Threads: 8, Iterations: 4,
			WorkPerIteration: float64(150 * time.Microsecond),
			Model:            spmd.OpenMPDefault(),
		})
		b.Start()
		m.Run(int64(50 * time.Millisecond))
		return fingerprint(m)
	}
	want := run(1)
	for _, shards := range []int{2, 4} {
		if got := run(shards); got != want {
			t.Errorf("shards=%d diverged from shards=1:\n%s", shards, diffLines(want, got))
		}
	}
}

// TestParallelWindowInvariance proves the headline property: with a
// shard-contained workload, running shards on parallel goroutines
// between sync horizons produces bit-identical results to the
// sequential event loop.
func TestParallelWindowInvariance(t *testing.T) {
	models := []spmd.Model{spmd.UPCSleep(), spmd.OpenMPDefault(), spmd.OpenMPInfinite()}
	for _, model := range models {
		model := model
		t.Run(model.Name, func(t *testing.T) {
			run := func(shards int, par bool) string {
				m := sim.New(topo.Fabric(4, 4), shardCfg(11, shards, par))
				socketApps(m, model, 8)
				m.Run(int64(40 * time.Millisecond))
				return fingerprint(m)
			}
			want := run(1, false)
			for _, c := range []struct {
				shards int
				par    bool
			}{{2, false}, {4, false}, {2, true}, {4, true}} {
				if got := run(c.shards, c.par); got != want {
					t.Errorf("shards=%d parallel=%v diverged:\n%s",
						c.shards, c.par, diffLines(want, got))
				}
			}
		})
	}
}

// hog returns a program that computes forever in fixed chunks.
func hog(chunk time.Duration) task.Program {
	return &task.ComputeForever{Chunk: float64(chunk)}
}

// TestParallelWindowsActuallyOpen guards against the fast path silently
// never engaging: the shard-contained fabric workload must spend most of
// its events inside windows.
func TestParallelWindowsActuallyOpen(t *testing.T) {
	m := sim.New(topo.Fabric(4, 4), shardCfg(11, 4, true))
	socketApps(m, spmd.UPCSleep(), 8)
	m.Run(int64(40 * time.Millisecond))
	if m.Windows() == 0 {
		t.Fatal("no parallel window ever opened for a shard-contained workload")
	}
	if m.WindowEvents() == 0 {
		t.Fatal("windows opened but processed no events")
	}
	if frac := float64(m.WindowEvents()) / float64(m.Stats.Events); frac < 0.5 {
		t.Errorf("only %.0f%% of events ran inside windows; want a majority", 100*frac)
	}
}

// TestWindowBlockedByWideAffinity: a single task whose affinity spans
// shards must keep every window closed (it could be woken or migrated
// across shards at any moment).
func TestWindowBlockedByWideAffinity(t *testing.T) {
	m := sim.New(topo.Fabric(4, 4), shardCfg(11, 4, true))
	socketApps(m, spmd.UPCSleep(), 4)
	wide := m.NewTask("wide", hog(time.Millisecond))
	m.Start(wide) // full-machine affinity
	m.Run(int64(10 * time.Millisecond))
	if m.Windows() != 0 {
		t.Errorf("%d windows opened despite a machine-wide task", m.Windows())
	}
}

// TestSleepTimerFollowsShard: a task that sleeps, migrates across
// sockets while asleep (balancer-style Migrate on a sleeping task), and
// wakes must wake on the destination shard's queue with its one reusable
// timer intact.
func TestSleepTimerFollowsShard(t *testing.T) {
	m := sim.New(topo.Tigerton(), shardCfg(3, 4, false))
	tk := m.NewTask("sleeper", &task.Seq{Actions: []task.Action{
		task.Compute{Work: float64(100 * time.Microsecond)},
		task.Sleep{D: 5 * time.Millisecond},
		task.Compute{Work: float64(100 * time.Microsecond)},
		task.Sleep{D: 5 * time.Millisecond},
		task.Compute{Work: float64(100 * time.Microsecond)},
	}})
	m.StartOn(tk, 0)
	// Let it reach its first sleep, then move it to the last socket.
	m.RunFor(time.Millisecond)
	if tk.State != task.Sleeping {
		t.Fatalf("state = %v, want sleeping", tk.State)
	}
	m.Migrate(tk, 15, "test")
	m.RunFor(30 * time.Millisecond)
	if tk.State != task.Done {
		t.Fatalf("state = %v, want done (task stalled after cross-shard sleep migration)", tk.State)
	}
	if tk.CoreID != 15 {
		t.Errorf("finished on core %d, want 15", tk.CoreID)
	}
}

// TestSimultaneousMigrationsIntoShard: several tasks migrated in the
// same event into one destination core must all arrive, preempt
// correctly and make progress — and identically at any shard count.
func TestSimultaneousMigrationsIntoShard(t *testing.T) {
	run := func(shards int) string {
		m := sim.New(topo.Tigerton(), shardCfg(5, shards, false))
		var tasks []*task.Task
		for i := 0; i < 6; i++ {
			tk := m.NewTask(fmt.Sprintf("w%d", i), hog(500*time.Microsecond))
			tasks = append(tasks, tk)
			m.StartOn(tk, i) // spread over sockets 0 and 1
		}
		m.After(2*time.Millisecond, func(now int64) {
			for _, tk := range tasks {
				if tk.CoreID != 12 {
					m.MigrateNow(tk, 12, "test") // all into socket 3
				}
			}
		})
		m.Run(int64(20 * time.Millisecond))
		return fingerprint(m)
	}
	want := run(1)
	for _, shards := range []int{2, 4} {
		if got := run(shards); got != want {
			t.Errorf("shards=%d diverged:\n%s", shards, diffLines(want, got))
		}
	}
}

// TestMigrationAtSyncHorizon: a global event that migrates a task out of
// a shard at the exact time of pending shard events must order
// identically at any shard count (the horizon event and the shard events
// carry the same timestamp).
func TestMigrationAtSyncHorizon(t *testing.T) {
	run := func(shards int) string {
		m := sim.New(topo.Tigerton(), shardCfg(9, shards, false))
		tk := m.NewTask("mover", hog(time.Millisecond))
		m.StartOn(tk, 0)
		other := m.NewTask("peer", hog(time.Millisecond))
		m.StartOn(other, 1)
		// The mover's slice events land at multiples of its slice; fire
		// the migration exactly at one of them.
		m.At(int64(6*time.Millisecond), func(now int64) {
			m.MigrateNow(tk, 14, "test")
		})
		m.Run(int64(15 * time.Millisecond))
		return fingerprint(m)
	}
	want := run(1)
	for _, shards := range []int{2, 4} {
		if got := run(shards); got != want {
			t.Errorf("shards=%d diverged:\n%s", shards, diffLines(want, got))
		}
	}
}

// TestHotplugMidMigrationSharded extends the PR 5 hotplug suite across
// shards: unplug a core while a sleeping task is mid-migration toward
// it; the wake must be redirected to an online core, identically at any
// shard count.
func TestHotplugMidMigrationSharded(t *testing.T) {
	run := func(shards int) string {
		m := sim.New(topo.Tigerton(), shardCfg(13, shards, false))
		tk := m.NewTask("victim", &task.Seq{Actions: []task.Action{
			task.Compute{Work: float64(100 * time.Microsecond)},
			task.Sleep{D: 4 * time.Millisecond},
			task.Compute{Work: float64(300 * time.Microsecond)},
		}})
		m.StartOn(tk, 2)
		filler := m.NewTask("filler", hog(time.Millisecond))
		m.StartOn(filler, 13)
		m.After(time.Millisecond, func(now int64) {
			m.Migrate(tk, 13, "test") // sleeping: just re-homes the wake
		})
		m.After(2*time.Millisecond, func(now int64) {
			m.SetCoreOnline(13, false) // destination vanishes pre-wake
		})
		m.Run(int64(20 * time.Millisecond))
		if tk.State != task.Done {
			t.Fatalf("victim state = %v, want done", tk.State)
		}
		if !m.Cores[13].Online() && tk.CoreID == 13 {
			t.Fatalf("victim finished on the offline core")
		}
		return fingerprint(m)
	}
	want := run(1)
	for _, shards := range []int{2, 4} {
		if got := run(shards); got != want {
			t.Errorf("shards=%d diverged:\n%s", shards, diffLines(want, got))
		}
	}
}

// TestWindowTripwires: machine-global actions inside a parallel window
// must panic rather than corrupt state.
func TestWindowTripwires(t *testing.T) {
	m := sim.New(topo.Fabric(2, 2), shardCfg(1, 2, true))
	// One long-running pinned task per socket so a window opens.
	for s := 0; s < 2; s++ {
		tk := m.NewTask(fmt.Sprintf("w%d", s), hog(time.Millisecond))
		tk.Affinity = cpuset.Of(2 * s)
		m.StartOn(tk, 2*s)
	}
	var recovered any
	// AtOn events are shard-local, so this callback fires inside the
	// window; Sync is machine-wide and must trip.
	m.AtOn(0, int64(time.Millisecond), func(now int64) {
		defer func() { recovered = recover() }()
		m.Sync()
	})
	m.Run(int64(5 * time.Millisecond))
	if m.Windows() == 0 {
		t.Fatal("no window opened; tripwire not exercised")
	}
	if recovered == nil {
		t.Error("machine-wide Sync inside a window did not panic")
	}
}

// diffLines renders the first divergent line of two fingerprints.
func diffLines(want, got string) string {
	w, g := []byte(want), []byte(got)
	n := len(w)
	if len(g) < n {
		n = len(g)
	}
	for i := 0; i < n; i++ {
		if w[i] != g[i] {
			lo := i - 80
			if lo < 0 {
				lo = 0
			}
			hiW, hiG := i+120, i+120
			if hiW > len(w) {
				hiW = len(w)
			}
			if hiG > len(g) {
				hiG = len(g)
			}
			return fmt.Sprintf("want ...%s...\n got ...%s...", w[lo:hiW], g[lo:hiG])
		}
	}
	return fmt.Sprintf("lengths differ: want %d bytes, got %d", len(w), len(g))
}
