package spmd_test

import (
	"testing"
	"time"

	"repro/internal/cfs"
	"repro/internal/cpuset"
	"repro/internal/sim"
	"repro/internal/spmd"
	"repro/internal/task"
	"repro/internal/topo"
)

func newSMP(n int, seed uint64) *sim.Machine {
	return sim.New(topo.SMP(n), sim.Config{Seed: seed, NewScheduler: cfs.Factory()})
}

// All threads cross every barrier generation together.
func TestBarrierGenerations(t *testing.T) {
	m := newSMP(4, 1)
	app := spmd.Build(m, spmd.Spec{
		Name: "app", Threads: 4, Iterations: 7, WorkPerIteration: 1e6,
		Model: spmd.Model{Policy: task.WaitBlock},
	})
	app.Start()
	m.Run(int64(time.Second))
	if !app.Done() {
		t.Fatal("app not done")
	}
	if app.Barrier.Crossings != 7 {
		t.Errorf("crossings = %d, want 7", app.Barrier.Crossings)
	}
	if app.Barrier.Waiting() != 0 {
		t.Errorf("%d waiters left after completion", app.Barrier.Waiting())
	}
}

// Each wait policy completes the same workload with identical crossings.
func TestAllWaitPoliciesComplete(t *testing.T) {
	for _, p := range []task.WaitPolicy{
		task.WaitSpin, task.WaitYield, task.WaitPollSleep,
		task.WaitBlock, task.WaitSpinThenBlock,
	} {
		m := newSMP(2, 3)
		app := spmd.Build(m, spmd.Spec{
			Name: "app", Threads: 5, Iterations: 20, WorkPerIteration: 2e6,
			Model: spmd.Model{Policy: p, Blocktime: 3 * time.Millisecond},
		})
		app.Start()
		m.Run(int64(time.Minute))
		if !app.Done() {
			t.Errorf("policy %v: app did not finish", p)
			continue
		}
		if app.Barrier.Crossings != 20 {
			t.Errorf("policy %v: crossings %d", p, app.Barrier.Crossings)
		}
	}
}

// Spin-then-block transitions to sleep after the blocktime: with one
// thread stuck computing behind another, the early arriver's exec time
// is bounded by work + blocktime (it sleeps afterwards).
func TestSpinThenBlockStopsBurning(t *testing.T) {
	m := newSMP(2, 1)
	// Thread 0 on core 0 computes 1 ms per iteration; thread 1 shares
	// core 1 with a hog, so it computes at half speed.
	app := spmd.Build(m, spmd.Spec{
		Name: "app", Threads: 2, Iterations: 1, WorkPerIteration: 50e6,
		Model: spmd.Model{Policy: task.WaitSpinThenBlock, Blocktime: 5 * time.Millisecond},
	})
	hog := m.NewTask("hog", &task.ComputeForever{Chunk: 1e9})
	hog.Affinity = cpuset.Of(1)
	m.StartOn(hog, 1)
	app.Tasks[0].Affinity = cpuset.Of(0)
	app.Tasks[1].Affinity = cpuset.Of(1)
	m.StartOn(app.Tasks[0], 0)
	m.StartOn(app.Tasks[1], 1)
	m.Run(int64(time.Minute))
	if !app.Done() {
		t.Fatal("app not done")
	}
	// Thread 0 finishes at 50 ms, spins 5 ms, then blocks until thread
	// 1 finishes at ~100 ms.
	want := 55 * time.Millisecond
	if got := app.Tasks[0].ExecTime; got < want || got > want+2*time.Millisecond {
		t.Errorf("early arriver exec %v, want ≈ %v (work+blocktime)", got, want)
	}
}

// Counter is one-shot: satisfied forever after n arrivals.
func TestCounter(t *testing.T) {
	m := newSMP(1, 1)
	c := spmd.NewCounter(2)
	done := 0
	mk := func(name string) *task.Task {
		prog := &task.Seq{Actions: []task.Action{
			task.Compute{Work: 1e6},
			task.WaitFor{C: c, Policy: task.WaitBlock},
			task.Compute{Work: 1e6},
		}}
		tk := m.NewTask(name, prog)
		return tk
	}
	a, b := mk("a"), mk("b")
	m.OnTaskDone(func(*task.Task) { done++ })
	m.Start(a)
	m.Start(b)
	m.Run(int64(time.Second))
	if done != 2 {
		t.Fatalf("done = %d, want 2", done)
	}
	// Late arrivals pass immediately.
	late := mk("late")
	m.Start(late)
	m.Run(int64(2 * time.Second))
	if late.State != task.Done {
		t.Error("late arriver blocked on satisfied counter")
	}
}

// Speedup accounting: a perfectly parallel app on n cores has speedup n.
func TestSpeedupAccounting(t *testing.T) {
	m := newSMP(4, 2)
	app := spmd.Build(m, spmd.Spec{
		Name: "app", Threads: 4, Iterations: 10, WorkPerIteration: 5e6,
		Model: spmd.Model{Policy: task.WaitBlock},
	})
	app.StartPinned()
	m.Run(int64(time.Minute))
	if !app.Done() {
		t.Fatal("app not done")
	}
	if sp := app.Speedup(); sp < 3.95 || sp > 4.001 {
		t.Errorf("speedup %v, want ≈ 4", sp)
	}
	if sw := app.SerialWork(); sw != 200*time.Millisecond {
		t.Errorf("serial work %v, want 200ms", sw)
	}
}

// StartPinned distributes round-robin over the affinity set and pins.
func TestStartPinnedPlacement(t *testing.T) {
	m := newSMP(4, 2)
	app := spmd.Build(m, spmd.Spec{
		Name: "app", Threads: 6, Iterations: 1, WorkPerIteration: 1e6,
		Model:    spmd.UPC(),
		Affinity: cpuset.Of(1, 3),
	})
	app.StartPinned()
	wantCores := []int{1, 3, 1, 3, 1, 3}
	for i, tk := range app.Tasks {
		if tk.CoreID != wantCores[i] {
			t.Errorf("thread %d on core %d, want %d", i, tk.CoreID, wantCores[i])
		}
		if !tk.Pinned() {
			t.Errorf("thread %d not pinned", i)
		}
	}
}

// WorkJitter stays within the configured bounds and total serial work is
// unchanged in expectation (loose check).
func TestWorkJitterBounds(t *testing.T) {
	m := newSMP(1, 5)
	app := spmd.Build(m, spmd.Spec{
		Name: "app", Threads: 1, Iterations: 200, WorkPerIteration: 1e6,
		WorkJitter: 0.25, Model: spmd.Model{Policy: task.WaitBlock},
	})
	app.Start()
	m.Run(int64(time.Minute))
	if !app.Done() {
		t.Fatal("app not done")
	}
	// Total exec must be within ±25% of nominal even in the worst case,
	// and within a few % for 200 samples.
	nominal := 200 * time.Millisecond
	got := app.Tasks[0].ExecTime
	if got < nominal*90/100 || got > nominal*110/100 {
		t.Errorf("jittered total %v too far from nominal %v", got, nominal)
	}
}

// Model presets carry the documented policies.
func TestModelPresets(t *testing.T) {
	cases := []struct {
		m    spmd.Model
		want task.WaitPolicy
	}{
		{spmd.UPC(), task.WaitYield},
		{spmd.UPCSleep(), task.WaitPollSleep},
		{spmd.MPI(), task.WaitYield},
		{spmd.OpenMPDefault(), task.WaitSpinThenBlock},
		{spmd.OpenMPInfinite(), task.WaitSpin},
	}
	for _, c := range cases {
		if c.m.Policy != c.want {
			t.Errorf("%s policy = %v, want %v", c.m.Name, c.m.Policy, c.want)
		}
	}
	if bt := spmd.OpenMPDefault().Blocktime; bt != 200*time.Millisecond {
		t.Errorf("KMP_BLOCKTIME default = %v, want 200ms", bt)
	}
}

// OnDone fires exactly once, when the last thread exits.
func TestOnDoneFiresOnce(t *testing.T) {
	m := newSMP(2, 9)
	app := spmd.Build(m, spmd.Spec{
		Name: "app", Threads: 3, Iterations: 2, WorkPerIteration: 1e6,
		Model: spmd.UPC(),
	})
	fired := 0
	app.OnDone(func(*spmd.App) { fired++ })
	app.Start()
	m.Run(int64(time.Minute))
	if fired != 1 {
		t.Errorf("OnDone fired %d times", fired)
	}
}
