package xrand

import (
	"math"
	"testing"
	"testing/quick"
)

// Same seed, same stream.
func TestDeterministic(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverge at step %d", i)
		}
	}
}

// Different seeds give different streams (first words differ for a
// sample of seeds).
func TestSeedSensitivity(t *testing.T) {
	seen := map[uint64]uint64{}
	for seed := uint64(0); seed < 200; seed++ {
		v := New(seed).Uint64()
		if prev, dup := seen[v]; dup {
			t.Fatalf("seeds %d and %d share first output %x", prev, seed, v)
		}
		seen[v] = seed
	}
}

// Split produces an independent stream: the parent advances by one and
// the child does not mirror it.
func TestSplitIndependence(t *testing.T) {
	parent := New(7)
	child := parent.Split()
	var p, c [64]uint64
	for i := range p {
		p[i] = parent.Uint64()
		c[i] = child.Uint64()
	}
	same := 0
	for i := range p {
		if p[i] == c[i] {
			same++
		}
	}
	if same > 0 {
		t.Errorf("parent and child share %d of 64 outputs", same)
	}
}

// Splitting does not perturb later siblings: the second Split result is
// the same whether or not the first split stream was consumed.
func TestSplitStability(t *testing.T) {
	a := New(9)
	s1 := a.Split()
	for i := 0; i < 100; i++ {
		s1.Uint64() // consuming the child must not affect the parent
	}
	next := a.Uint64()

	b := New(9)
	b.Split()
	if got := b.Uint64(); got != next {
		t.Errorf("parent stream depends on child consumption: %x vs %x", got, next)
	}
}

func TestIntnRange(t *testing.T) {
	r := New(1)
	if err := quick.Check(func(nRaw uint16) bool {
		n := int(nRaw%1000) + 1
		v := r.Intn(n)
		return v >= 0 && v < n
	}, nil); err != nil {
		t.Error(err)
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic for Intn(0)")
		}
	}()
	New(1).Intn(0)
}

func TestFloat64Range(t *testing.T) {
	r := New(3)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of range: %v", v)
		}
	}
}

// Float64 mean is near 1/2 (uniformity smoke test).
func TestFloat64Mean(t *testing.T) {
	r := New(4)
	sum := 0.0
	const n = 200000
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Errorf("mean %v, want ≈ 0.5", mean)
	}
}

func TestJitter(t *testing.T) {
	r := New(5)
	if got := r.Jitter(0); got != 0 {
		t.Errorf("Jitter(0) = %d", got)
	}
	if got := r.Jitter(-3); got != 0 {
		t.Errorf("Jitter(-3) = %d", got)
	}
	for i := 0; i < 1000; i++ {
		if v := r.Jitter(100); v < 0 || v >= 100 {
			t.Fatalf("Jitter out of range: %d", v)
		}
	}
}

// Perm returns a valid permutation every time.
func TestPermIsPermutation(t *testing.T) {
	r := New(6)
	for n := 0; n < 40; n++ {
		p := r.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) has length %d", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) invalid: %v", n, p)
			}
			seen[v] = true
		}
	}
}

// NormFloat64 has roughly standard moments.
func TestNormMoments(t *testing.T) {
	r := New(8)
	const n = 200000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		v := r.NormFloat64()
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Errorf("mean %v, want ≈ 0", mean)
	}
	if math.Abs(variance-1) > 0.05 {
		t.Errorf("variance %v, want ≈ 1", variance)
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		r.Uint64()
	}
}
