// Command lbos-lint statically enforces the repository's determinism
// contract: experiment output must be a pure function of (machine,
// workload, balancer, seed), bit-identical at any Parallelism level.
//
// Usage:
//
//	lbos-lint [-only names] [-f text|json|github] [-o report.json]
//	          [-ledger lint-budget.txt] packages...
//	lbos-lint -write-ledger lint-budget.txt ./...
//
// It runs seven analyzers (see each package's doc for the full rules):
//
//	nodeterm    wall-clock reads, global math/rand, nondeterministically
//	            seeded sources, selects that race
//	maporder    range over a map feeding an output sink without a sort
//	slotsafety  Runner cell functions and go-launched worker goroutines
//	            that capture loop variables or mutate shared state
//	            outside their own slot
//	eventown    pooled event handles tracked through branches and loops:
//	            use-after-Release, double Release, Schedule on released,
//	            release on only some exit paths
//	windowsafe  machine-global calls, tracer/metrics emission, and
//	            global writes on any path reachable from a go-launched
//	            worker literal (package-local call graph)
//	timeunits   wall-clock nanoseconds or bare time.Duration values
//	            flowing into simulated-time positions without an
//	            explicit conversion site
//	allowdoc    every //lint:allow-* directive must name a known
//	            category and carry a justification
//
// Output formats: text (file:line:col: analyzer [category]: message),
// json (the report schema below), github (workflow error annotations).
// -o additionally writes the JSON report to a file regardless of the
// display format, for CI artifact upload. Any finding makes the exit
// status 1.
//
// The suppression ledger: -ledger compares the per-category counts of
// //lint:allow-<category> directives in the loaded packages against a
// committed budget file and fails when they differ, so a new escape
// hatch cannot land without a reviewed ledger update. -write-ledger
// regenerates the file from the current tree.
//
// A site that is deliberately exempt carries a //lint:allow-<category>
// directive on its line or the line above; the category vocabulary is
// analysis.Categories.
//
// The implementation is stdlib-only (see internal/analysis); the
// analyzers follow the golang.org/x/tools/go/analysis shape, so they
// could be rehosted on a vet -vettool multichecker if x/tools is ever
// vendored.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"

	"repro/internal/analysis"
	"repro/internal/analysis/allowdoc"
	"repro/internal/analysis/eventown"
	"repro/internal/analysis/maporder"
	"repro/internal/analysis/nodeterm"
	"repro/internal/analysis/slotsafety"
	"repro/internal/analysis/timeunits"
	"repro/internal/analysis/windowsafe"
)

var all = []*analysis.Analyzer{
	nodeterm.Analyzer, maporder.Analyzer, slotsafety.Analyzer,
	eventown.Analyzer, windowsafe.Analyzer, timeunits.Analyzer,
	allowdoc.Analyzer,
}

// finding is one diagnostic in the JSON report schema.
type finding struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Category string `json:"category"`
	Message  string `json:"message"`
}

func main() {
	only := flag.String("only", "", "comma-separated analyzer names to run (default: all)")
	format := flag.String("f", "text", "output format: text, json, or github (workflow annotations)")
	asJSON := flag.Bool("json", false, "shorthand for -f json")
	report := flag.String("o", "", "also write the JSON report to this file")
	ledger := flag.String("ledger", "", "verify //lint:allow-* counts against this committed budget file")
	writeLedger := flag.String("write-ledger", "", "regenerate the budget file from the current tree and exit")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: lbos-lint [-only names] [-f text|json|github] [-o report.json] [-ledger file] packages...\n\nanalyzers:\n")
		for _, a := range all {
			fmt.Fprintf(os.Stderr, "  %-12s %s\n", a.Name, a.Doc)
		}
	}
	flag.Parse()
	if flag.NArg() == 0 {
		flag.Usage()
		os.Exit(2)
	}
	if *asJSON {
		*format = "json"
	}
	switch *format {
	case "text", "json", "github":
	default:
		fmt.Fprintf(os.Stderr, "lbos-lint: unknown format %q\n", *format)
		os.Exit(2)
	}

	analyzers := all
	if *only != "" {
		analyzers = nil
		for _, name := range strings.Split(*only, ",") {
			found := false
			for _, a := range all {
				if a.Name == name {
					analyzers = append(analyzers, a)
					found = true
				}
			}
			if !found {
				fmt.Fprintf(os.Stderr, "lbos-lint: unknown analyzer %q\n", name)
				os.Exit(2)
			}
		}
	}

	pkgs, err := analysis.Load(flag.Args())
	if err != nil {
		fmt.Fprintln(os.Stderr, "lbos-lint:", err)
		os.Exit(2)
	}

	if *writeLedger != "" {
		if err := os.WriteFile(*writeLedger, []byte(formatLedger(countDirectives(pkgs))), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "lbos-lint:", err)
			os.Exit(2)
		}
		return
	}

	findings := []finding{} // non-nil so JSON renders [] when clean
	for _, pkg := range pkgs {
		diags, err := analysis.Run(analyzers, pkg.Fset, pkg.Files, pkg.Types, pkg.Info)
		if err != nil {
			fmt.Fprintf(os.Stderr, "lbos-lint: %s: %v\n", pkg.Path, err)
			os.Exit(2)
		}
		for _, d := range diags {
			pos := pkg.Fset.Position(d.Pos)
			findings = append(findings, finding{
				File:     pos.Filename,
				Line:     pos.Line,
				Col:      pos.Column,
				Analyzer: d.Analyzer,
				Category: d.Category,
				Message:  d.Message,
			})
		}
	}

	switch *format {
	case "json":
		emitJSON(os.Stdout, findings)
	case "github":
		for _, f := range findings {
			// One workflow error annotation per finding; GitHub renders
			// them inline on the PR diff.
			fmt.Printf("::error file=%s,line=%d,col=%d,title=lbos-lint %s [%s]::%s\n",
				f.File, f.Line, f.Col, f.Analyzer, f.Category, escapeAnnotation(f.Message))
		}
	default:
		for _, f := range findings {
			fmt.Printf("%s:%d:%d: %s [%s]: %s\n", f.File, f.Line, f.Col, f.Analyzer, f.Category, f.Message)
		}
	}
	if *report != "" {
		rf, err := os.Create(*report)
		if err != nil {
			fmt.Fprintln(os.Stderr, "lbos-lint:", err)
			os.Exit(2)
		}
		emitJSON(rf, findings)
		if err := rf.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "lbos-lint:", err)
			os.Exit(2)
		}
	}

	failed := len(findings) > 0
	if *ledger != "" {
		if !checkLedger(*ledger, countDirectives(pkgs)) {
			failed = true
		}
	}
	if failed {
		os.Exit(1)
	}
}

func emitJSON(w *os.File, findings []finding) {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(findings); err != nil {
		fmt.Fprintln(os.Stderr, "lbos-lint:", err)
		os.Exit(2)
	}
}

// escapeAnnotation applies the workflow-command escaping rules to an
// annotation message.
func escapeAnnotation(s string) string {
	r := strings.NewReplacer("%", "%25", "\r", "%0D", "\n", "%0A")
	return r.Replace(s)
}

// countDirectives tallies //lint:allow-* directives per category across
// the loaded packages — the same parse the suppressor uses, so the
// ledger can never disagree with what is actually suppressed.
func countDirectives(pkgs []*analysis.Package) map[string]int {
	counts := map[string]int{}
	for _, pkg := range pkgs {
		for _, d := range analysis.Directives(pkg.Files) {
			counts[d.Category]++
		}
	}
	return counts
}

// formatLedger renders the budget file: sorted "category count" lines
// under a regeneration hint.
func formatLedger(counts map[string]int) string {
	cats := make([]string, 0, len(counts))
	for c := range counts {
		cats = append(cats, c)
	}
	sort.Strings(cats)
	var b strings.Builder
	b.WriteString("# Suppression ledger: committed //lint:allow-* budget per category.\n")
	b.WriteString("# CI fails when the tree's counts differ from this file, so a new\n")
	b.WriteString("# escape hatch cannot land without a reviewed update here.\n")
	b.WriteString("# Regenerate: go run ./cmd/lbos-lint -write-ledger lint-budget.txt ./...\n")
	for _, c := range cats {
		fmt.Fprintf(&b, "%s %d\n", c, counts[c])
	}
	return b.String()
}

// checkLedger compares the tree's directive counts to the committed
// budget and explains every drift.
func checkLedger(path string, actual map[string]int) bool {
	data, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "lbos-lint: ledger:", err)
		return false
	}
	budget := map[string]int{}
	for i, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		cat, numStr, ok := strings.Cut(line, " ")
		if !ok {
			fmt.Fprintf(os.Stderr, "lbos-lint: ledger: %s:%d: malformed line %q\n", path, i+1, line)
			return false
		}
		n, err := strconv.Atoi(strings.TrimSpace(numStr))
		if err != nil {
			fmt.Fprintf(os.Stderr, "lbos-lint: ledger: %s:%d: bad count %q\n", path, i+1, numStr)
			return false
		}
		budget[cat] = n
	}
	ok := true
	cats := map[string]bool{}
	for c := range budget {
		cats[c] = true
	}
	for c := range actual {
		cats[c] = true
	}
	sorted := make([]string, 0, len(cats))
	for c := range cats {
		sorted = append(sorted, c)
	}
	sort.Strings(sorted)
	for _, c := range sorted {
		a, b := actual[c], budget[c]
		if a == b {
			continue
		}
		ok = false
		switch {
		case a > b:
			fmt.Fprintf(os.Stderr,
				"lbos-lint: ledger: %d %s suppression(s) in the tree but %d budgeted in %s; remove the new //lint:allow-%s or update the ledger in the same change\n",
				a, c, b, path, c)
		default:
			fmt.Fprintf(os.Stderr,
				"lbos-lint: ledger: %d %s suppression(s) in the tree but %d budgeted in %s; shrink the ledger to match\n",
				a, c, b, path)
		}
	}
	return ok
}
