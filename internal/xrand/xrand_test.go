package xrand

import (
	"math"
	"testing"
	"testing/quick"
)

// Same seed, same stream.
func TestDeterministic(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverge at step %d", i)
		}
	}
}

// Different seeds give different streams (first words differ for a
// sample of seeds).
func TestSeedSensitivity(t *testing.T) {
	seen := map[uint64]uint64{}
	for seed := uint64(0); seed < 200; seed++ {
		v := New(seed).Uint64()
		if prev, dup := seen[v]; dup {
			t.Fatalf("seeds %d and %d share first output %x", prev, seed, v)
		}
		seen[v] = seed
	}
}

// Split produces an independent stream: the parent advances by one and
// the child does not mirror it.
func TestSplitIndependence(t *testing.T) {
	parent := New(7)
	child := parent.Split()
	var p, c [64]uint64
	for i := range p {
		p[i] = parent.Uint64()
		c[i] = child.Uint64()
	}
	same := 0
	for i := range p {
		if p[i] == c[i] {
			same++
		}
	}
	if same > 0 {
		t.Errorf("parent and child share %d of 64 outputs", same)
	}
}

// Splitting does not perturb later siblings: the second Split result is
// the same whether or not the first split stream was consumed.
func TestSplitStability(t *testing.T) {
	a := New(9)
	s1 := a.Split()
	for i := 0; i < 100; i++ {
		s1.Uint64() // consuming the child must not affect the parent
	}
	next := a.Uint64()

	b := New(9)
	b.Split()
	if got := b.Uint64(); got != next {
		t.Errorf("parent stream depends on child consumption: %x vs %x", got, next)
	}
}

func TestIntnRange(t *testing.T) {
	r := New(1)
	if err := quick.Check(func(nRaw uint16) bool {
		n := int(nRaw%1000) + 1
		v := r.Intn(n)
		return v >= 0 && v < n
	}, nil); err != nil {
		t.Error(err)
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic for Intn(0)")
		}
	}()
	New(1).Intn(0)
}

func TestFloat64Range(t *testing.T) {
	r := New(3)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of range: %v", v)
		}
	}
}

// Float64 mean is near 1/2 (uniformity smoke test).
func TestFloat64Mean(t *testing.T) {
	r := New(4)
	sum := 0.0
	const n = 200000
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Errorf("mean %v, want ≈ 0.5", mean)
	}
}

func TestJitter(t *testing.T) {
	r := New(5)
	if got := r.Jitter(0); got != 0 {
		t.Errorf("Jitter(0) = %d", got)
	}
	if got := r.Jitter(-3); got != 0 {
		t.Errorf("Jitter(-3) = %d", got)
	}
	for i := 0; i < 1000; i++ {
		if v := r.Jitter(100); v < 0 || v >= 100 {
			t.Fatalf("Jitter out of range: %d", v)
		}
	}
}

// Perm returns a valid permutation every time.
func TestPermIsPermutation(t *testing.T) {
	r := New(6)
	for n := 0; n < 40; n++ {
		p := r.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) has length %d", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) invalid: %v", n, p)
			}
			seen[v] = true
		}
	}
}

// NormFloat64 has roughly standard moments.
func TestNormMoments(t *testing.T) {
	r := New(8)
	const n = 200000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		v := r.NormFloat64()
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Errorf("mean %v, want ≈ 0", mean)
	}
	if math.Abs(variance-1) > 0.05 {
		t.Errorf("variance %v, want ≈ 1", variance)
	}
}

// The exact Exponential output stream is pinned: open-system arrival
// schedules are a pure function of the seed, so any change to the draw
// (even a numerically equivalent refactor) would silently reshuffle
// every open-workload experiment. The golden values were produced by
// this implementation at the repo's canonical seed.
func TestExponentialGoldenStream(t *testing.T) {
	want := []float64{
		2.0388030724961674,
		6.4420368838956241,
		4.5923676404423484,
		1.6467988898745836,
		1.4442890352108264,
		4.2866502940896591,
		1.7622532889754279,
		0.49709967049722936,
	}
	r := New(20100109)
	for i, w := range want {
		if got := r.Exponential(0.25); got != w {
			t.Fatalf("Exponential stream diverges at step %d: got %.17g, want %.17g", i, got, w)
		}
	}
}

// The Poisson inverse-CDF stream is pinned for the same reason, in both
// the summation regime and the large-mean normal-approximation regime.
func TestPoissonGoldenStream(t *testing.T) {
	want := []int{3, 5, 4, 3, 2, 4, 3, 1, 1, 4, 4, 5, 6, 2, 3, 3}
	r := New(20100109)
	for i, w := range want {
		if got := r.Poisson(3.5); got != w {
			t.Fatalf("Poisson stream diverges at step %d: got %d, want %d", i, got, w)
		}
	}
	big := []int{798, 755, 785, 800, 818, 786}
	q := New(11)
	for i, w := range big {
		if got := q.Poisson(800); got != w {
			t.Fatalf("Poisson(800) stream diverges at step %d: got %d, want %d", i, got, w)
		}
	}
}

// Each split stream's draws are independent of how much the sibling
// consumed — the property that lets every arrival stream of an open
// workload own a split without perturbing the others.
func TestExponentialSplitStreams(t *testing.T) {
	a := New(7)
	s1, s2 := a.Split(), a.Split()
	wantS1 := []float64{0.5430856774564311, 1.617058351895867}
	wantS2 := []float64{1.4438036750143659, 1.7530186906864}
	for i := range wantS1 {
		if got := s1.Exponential(1); got != wantS1[i] {
			t.Fatalf("stream 1 step %d: got %.17g, want %.17g", i, got, wantS1[i])
		}
	}
	for i := range wantS2 {
		if got := s2.Exponential(1); got != wantS2[i] {
			t.Fatalf("stream 2 step %d: got %.17g, want %.17g", i, got, wantS2[i])
		}
	}
}

// Exponential(rate) has mean ≈ 1/rate and consumes exactly one uniform
// per draw (advancing a sibling stream's view not at all).
func TestExponentialMoments(t *testing.T) {
	r := New(12)
	const n = 200000
	const rate = 0.5
	var sum float64
	for i := 0; i < n; i++ {
		v := r.Exponential(rate)
		if v < 0 {
			t.Fatalf("negative exponential draw %v", v)
		}
		sum += v
	}
	if mean := sum / n; math.Abs(mean-1/rate) > 0.02 {
		t.Errorf("mean %v, want ≈ %v", mean, 1/rate)
	}
}

// Poisson(mean) has mean and variance ≈ mean in the summation regime.
func TestPoissonMoments(t *testing.T) {
	r := New(13)
	const n = 200000
	const mean = 4.0
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		v := float64(r.Poisson(mean))
		sum += v
		sumSq += v * v
	}
	m := sum / n
	variance := sumSq/n - m*m
	if math.Abs(m-mean) > 0.05 {
		t.Errorf("mean %v, want ≈ %v", m, mean)
	}
	if math.Abs(variance-mean) > 0.1 {
		t.Errorf("variance %v, want ≈ %v", variance, mean)
	}
}

func TestPoissonEdgeCases(t *testing.T) {
	r := New(14)
	if got := r.Poisson(0); got != 0 {
		t.Errorf("Poisson(0) = %d, want 0", got)
	}
	if got := r.Poisson(-2); got != 0 {
		t.Errorf("Poisson(-2) = %d, want 0", got)
	}
	// The underflow fallback must stay near its mean and non-negative.
	for i := 0; i < 1000; i++ {
		if v := r.Poisson(900); v < 0 || v > 2000 {
			t.Fatalf("Poisson(900) draw out of plausible range: %d", v)
		}
	}
}

func TestExponentialPanicsOnNonPositiveRate(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic for Exponential(0)")
		}
	}()
	New(1).Exponential(0)
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		r.Uint64()
	}
}
