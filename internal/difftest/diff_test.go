package difftest

import (
	"encoding/json"
	"testing"
)

// drivers is the experiment sample the equivalence matrix runs: the
// core paper figures plus the perturbed drivers (fault injection
// exercises hotplug drains, kthread daemons and frequency steps through
// the sharded merge), the analytic fig1 (no simulated cells — its
// capture must still round-trip the harness identically), and the
// open-system bakeoff (mid-run task admission and departure on every
// engine configuration).
var drivers = []string{
	"fig1", "fig2", "fig3t", "fig5", "abl-jit", "noise-omps", "hotplug-churn",
	"open-bakeoff", "predict-bakeoff",
}

// matrix is the engine grid every driver must traverse without changing
// one output byte: shard counts {1, 2, 4} (4 = the socket count of the
// paper machines, so the "sockets" point coincides), grid parallelism
// {1, 8}, and lookahead windows on and off.
var matrix = []Settings{
	{Shards: 1, Parallelism: 1},
	{Shards: 2, Parallelism: 1},
	{Shards: 4, Parallelism: 1},
	{Shards: 4, Parallelism: 8},
	{Shards: 2, ShardParallel: true, Parallelism: 1},
	{Shards: 4, ShardParallel: true, Parallelism: 8},
}

// TestEngineEquivalence is the tentpole guarantee: for every driver the
// sharded engine reproduces the legacy single-queue engine's tables,
// trace bytes and metrics byte-identically at every shard count,
// parallelism level and window setting.
func TestEngineEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("differential matrix skipped in short mode")
	}
	for _, id := range drivers {
		id := id
		t.Run(id, func(t *testing.T) {
			t.Parallel()
			legacy, err := RunExperiment(id, 2, 32, 20100109, Settings{Parallelism: 1})
			if err != nil {
				t.Fatal(err)
			}
			if legacy.Tables == "" {
				t.Fatal("legacy engine rendered no tables")
			}
			if !json.Valid(legacy.Trace) {
				t.Fatalf("legacy trace is not valid JSON:\n%.200s", legacy.Trace)
			}
			for _, s := range matrix {
				got, err := RunExperiment(id, 2, 32, 20100109, s)
				if err != nil {
					t.Fatalf("%v: %v", s, err)
				}
				if d := Diff(legacy, got); d != "" {
					t.Errorf("%v diverges from the single-queue engine:\n%s", s, d)
				}
			}
		})
	}
}

// TestEngineEquivalenceBare runs without trace or metrics sinks —
// exactly what a plain `lbos run` does. Sinks block parallel lookahead
// windows, so the matrix above never reaches the window-eligibility
// path inside an experiment; this bare variant does, and pins the
// regression where a scale-1 socket-contained cell opened a window and
// the experiment's stop-on-completion hook panicked inside it.
func TestEngineEquivalenceBare(t *testing.T) {
	if testing.Short() {
		t.Skip("differential matrix skipped in short mode")
	}
	for _, id := range []string{"fig5", "noise-omps"} {
		id := id
		t.Run(id, func(t *testing.T) {
			t.Parallel()
			legacy, err := RunExperiment(id, 2, 1, 20100109, Settings{Parallelism: 1, Bare: true})
			if err != nil {
				t.Fatal(err)
			}
			for _, s := range []Settings{
				{Shards: 4, Parallelism: 1, Bare: true},
				{Shards: 4, ShardParallel: true, Parallelism: 1, Bare: true},
				{Shards: 4, ShardParallel: true, Parallelism: 8, Bare: true},
			} {
				got, err := RunExperiment(id, 2, 1, 20100109, s)
				if err != nil {
					t.Fatalf("%v: %v", s, err)
				}
				if d := Diff(legacy, got); d != "" {
					t.Errorf("%v diverges from the single-queue engine:\n%s", s, d)
				}
			}
		})
	}
}

// TestEngineEquivalenceAcrossSeeds guards the matrix itself: a sharded
// run must track the legacy engine for other seeds too, and different
// seeds must produce different output (otherwise the comparison above
// proves nothing).
func TestEngineEquivalenceAcrossSeeds(t *testing.T) {
	if testing.Short() {
		t.Skip("differential matrix skipped in short mode")
	}
	const id = "abl-jit" // seed-sensitive: tabulates run-time variation
	s := Settings{Shards: 4, ShardParallel: true, Parallelism: 8}
	tables := map[string]bool{}
	for _, seed := range []uint64{1, 2, 20100109} {
		legacy, err := RunExperiment(id, 2, 32, seed, Settings{Parallelism: 1})
		if err != nil {
			t.Fatal(err)
		}
		sharded, err := RunExperiment(id, 2, 32, seed, s)
		if err != nil {
			t.Fatal(err)
		}
		if d := Diff(legacy, sharded); d != "" {
			t.Errorf("seed %d: engines diverge:\n%s", seed, d)
		}
		tables[legacy.Tables] = true
	}
	if len(tables) < 2 {
		t.Error("every seed rendered identical tables — the equivalence comparison has no power")
	}
}
