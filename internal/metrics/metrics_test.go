package metrics

import (
	"math"
	"reflect"
	"testing"
)

func TestCounterGauge(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("migrations.speedbal")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Errorf("counter = %d, want 5", got)
	}
	if r.Counter("migrations.speedbal") != c {
		t.Error("Counter is not get-or-create")
	}
	g := r.Gauge("core0.busy_frac")
	g.Set(0.25)
	g.Set(0.75)
	if got := g.Value(); got != 0.75 {
		t.Errorf("gauge = %v, want 0.75", got)
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("speed", []float64{0.5, 1.0, 2.0})
	for _, v := range []float64{0.1, 0.5, 0.6, 1.5, 3.0, 0.9} {
		h.Observe(v)
	}
	s := r.Snapshot()
	if len(s.Hists) != 1 {
		t.Fatalf("hists = %d, want 1", len(s.Hists))
	}
	hs := s.Hists[0]
	// ≤0.5: {0.1, 0.5}; ≤1.0: {0.6, 0.9}; ≤2.0: {1.5}; overflow: {3.0}.
	want := []int64{2, 2, 1, 1}
	if !reflect.DeepEqual(hs.Counts, want) {
		t.Errorf("counts = %v, want %v", hs.Counts, want)
	}
	if hs.Count != 6 {
		t.Errorf("count = %d, want 6", hs.Count)
	}
	if hs.Min != 0.1 || hs.Max != 3.0 {
		t.Errorf("min/max = %v/%v, want 0.1/3", hs.Min, hs.Max)
	}
	if got := hs.Mean(); math.Abs(got-6.6/6) > 1e-12 {
		t.Errorf("mean = %v, want %v", got, 6.6/6)
	}
	// Second lookup keeps the original bounds.
	if h2 := r.Histogram("speed", nil); h2 != h {
		t.Error("Histogram is not get-or-create")
	}
}

func TestSnapshotSorted(t *testing.T) {
	r := NewRegistry()
	for _, n := range []string{"zeta", "alpha", "mid"} {
		r.Counter(n).Inc()
		r.Gauge(n).Set(1)
		r.Histogram(n, []float64{1}).Observe(1)
	}
	s := r.Snapshot()
	wantNames := []string{"alpha", "mid", "zeta"}
	for i, c := range s.Counters {
		if c.Name != wantNames[i] {
			t.Errorf("counter %d = %q, want %q", i, c.Name, wantNames[i])
		}
	}
	for i, g := range s.Gauges {
		if g.Name != wantNames[i] {
			t.Errorf("gauge %d = %q, want %q", i, g.Name, wantNames[i])
		}
	}
	for i, h := range s.Hists {
		if h.Name != wantNames[i] {
			t.Errorf("hist %d = %q, want %q", i, h.Name, wantNames[i])
		}
	}
}

func TestAggregate(t *testing.T) {
	mk := func(migs int64, busy float64, speeds ...float64) Snapshot {
		r := NewRegistry()
		r.Counter("migrations").Add(migs)
		r.Gauge("busy").Set(busy)
		h := r.Histogram("speed", []float64{1.0})
		for _, v := range speeds {
			h.Observe(v)
		}
		return r.Snapshot()
	}
	a := NewAggregate()
	a.Add(mk(3, 0.5, 0.5, 1.5))
	a.Add(mk(7, 0.7, 0.25))
	if a.Runs() != 2 {
		t.Fatalf("runs = %d, want 2", a.Runs())
	}
	s := a.Snapshot()
	if len(s.Counters) != 1 || s.Counters[0].Value != 10 {
		t.Errorf("counters = %+v, want migrations=10", s.Counters)
	}
	if len(s.Gauges) != 1 || math.Abs(s.Gauges[0].Value-0.6) > 1e-12 {
		t.Errorf("gauges = %+v, want busy=0.6", s.Gauges)
	}
	if len(s.Hists) != 1 {
		t.Fatalf("hists = %+v", s.Hists)
	}
	h := s.Hists[0]
	if h.Count != 3 || !reflect.DeepEqual(h.Counts, []int64{2, 1}) {
		t.Errorf("hist = %+v, want count 3 buckets [2 1]", h)
	}
	if h.Min != 0.25 || h.Max != 1.5 {
		t.Errorf("hist min/max = %v/%v, want 0.25/1.5", h.Min, h.Max)
	}
	if math.Abs(h.Sum-2.25) > 1e-12 {
		t.Errorf("hist sum = %v, want 2.25", h.Sum)
	}
}

// TestAggregateDeterministic pins that identical snapshot sequences
// merge to identical snapshots (the harness adds in submission order,
// so this is the whole cross-parallelism contract for metrics).
func TestAggregateDeterministic(t *testing.T) {
	build := func() Snapshot {
		a := NewAggregate()
		for i := 0; i < 5; i++ {
			r := NewRegistry()
			r.Counter("c").Add(int64(i))
			r.Gauge("g").Set(float64(i) * 0.1)
			r.Histogram("h", []float64{1, 2}).Observe(float64(i) * 0.7)
			a.Add(r.Snapshot())
		}
		return a.Snapshot()
	}
	if !reflect.DeepEqual(build(), build()) {
		t.Error("aggregate snapshots differ across identical builds")
	}
}

func TestBucketHelpers(t *testing.T) {
	exp := ExpBuckets(1, 2, 4)
	if !reflect.DeepEqual(exp, []float64{1, 2, 4, 8}) {
		t.Errorf("ExpBuckets = %v", exp)
	}
	lin := LinearBuckets(0.1, 0.1, 3)
	want := []float64{0.1, 0.2, 0.30000000000000004}
	if !reflect.DeepEqual(lin, want) {
		t.Errorf("LinearBuckets = %v", lin)
	}
	for _, fn := range []func(){
		func() { ExpBuckets(0, 2, 4) },
		func() { ExpBuckets(1, 1, 4) },
		func() { LinearBuckets(0, 0, 4) },
		func() { LinearBuckets(0, 1, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("invalid bucket spec did not panic")
				}
			}()
			fn()
		}()
	}
}
