package exp

import (
	"fmt"
	"time"

	"repro/internal/cfs"
	"repro/internal/dwrr"
	"repro/internal/linuxlb"
	"repro/internal/openload"
	"repro/internal/perturb"
	"repro/internal/predict"
	"repro/internal/sim"
	"repro/internal/speedbal"
	"repro/internal/stats"
	"repro/internal/topo"
	"repro/internal/ule"
)

func init() {
	Register(&Experiment{
		ID:    "open-bakeoff",
		Title: "Open-system bakeoff: job response time vs offered load",
		PaperRef: "beyond the paper: §6 measures closed batches; this sweeps " +
			"a seeded open arrival stream over every balancer in the repo",
		Expect: "response times grow with ρ and diverge as ρ → 1; dynamic " +
			"balancing beats the EQUI-style fixed allocation at high load, " +
			"and speed balancing's rescan adoption keeps SPEED competitive " +
			"on arrivals it was never handed at startup",
		Run: runOpenBakeoff,
	})
}

// openPolicy is one contender in the bakeoff.
type openPolicy struct {
	name  string
	dwrr  bool // DWRR scheduler (balances by round stealing)
	linux bool // Linux queue-length balancer
	speed bool // + user-level speed balancer adopting the open group
	ule   bool // FreeBSD ULE push/pull
	equi  bool // EQUI-style fixed allocation (pin at admission)
}

// openPolicies lists the contenders; CFS is the no-balancer baseline
// (per-core queues, fork placement only).
var openPolicies = []openPolicy{
	{name: string(StratSpeed), linux: true, speed: true},
	{name: string(StratLoad), linux: true},
	{name: string(StratDWRR), dwrr: true},
	{name: string(StratULE), ule: true},
	{name: "CFS"},
	{name: "EQUI", equi: true},
}

// openRhos is the offered-load sweep; 0.95 probes near-saturation where
// placement quality dominates response time.
var openRhos = []float64{0.30, 0.50, 0.70, 0.85, 0.95}

// openCellOut is one cell's harvest: per-job response times and wake
// latencies, pooled across repetitions by the row assembly.
type openCellOut struct {
	sojournsMs []float64
	wakesUs    []float64
	admitted   int
	unfinished int
	// predictPulls/Hits/Misses are the speed balancer's prediction
	// audit counters (zero for non-SPEED policies or reactive cells).
	predictPulls  int
	predictHits   int
	predictMisses int
}

// openCellOpts parameterises one open-system cell beyond the policy
// itself: load point, run length, engine settings, optional fault
// injection and the speed balancer's predictive mode.
type openCellOpts struct {
	rho      float64
	horizon  time.Duration
	seed     uint64
	shards   int
	shardPar bool
	perturb  perturb.Config
	predict  bool
}

// runOpenCell simulates one (policy, ρ, seed) cell: arrivals for
// horizon, then a drain window, then per-job accounting.
func runOpenCell(p openPolicy, o openCellOpts) openCellOut {
	cfg := sim.Config{Seed: o.seed, Shards: o.shards, ShardParallel: o.shardPar}
	if p.dwrr {
		cfg.NewScheduler, _ = dwrr.NewFactory(dwrr.DefaultConfig())
	} else {
		cfg.NewScheduler = cfs.Factory()
	}
	m := sim.New(topo.Tigerton(), cfg)
	if p.linux {
		m.AddActor(linuxlb.Default())
	}
	var sb *speedbal.Balancer
	if p.speed {
		scfg := speedbal.DefaultConfig()
		scfg.RescanGroup = openload.Group
		if o.predict {
			scfg.Predict = predict.DefaultConfig()
		}
		sb = speedbal.New(scfg)
		m.AddActor(sb)
	}
	if p.ule {
		m.AddActor(ule.Default())
	}
	if o.perturb.Active() {
		// After the balancers, as in exp.Run: the RNG split order stays
		// fixed regardless of which families are on.
		m.AddActor(perturb.New(o.perturb))
	}
	g := openload.New(openload.Config{
		Rho:        o.rho,
		Horizon:    o.horizon,
		FixedAlloc: p.equi,
	})
	m.AddActor(g)
	// Run past the horizon so the backlog drains; a stable system
	// (ρ < 1) empties well inside 2 extra horizons + 2 s, and whatever
	// does not is reported in the table's unfinished column rather than
	// silently truncated out of the percentiles.
	m.Run(int64(3*o.horizon) + int64(2*time.Second))
	out := openCellOut{admitted: g.Admitted, unfinished: g.Unfinished()}
	if sb != nil {
		out.predictPulls = sb.PredictPulls
		out.predictHits = sb.PredictHits
		out.predictMisses = sb.PredictMisses
	}
	for _, r := range g.Records {
		out.sojournsMs = append(out.sojournsMs, float64(r.Sojourn)/1e6)
		if r.Wakes > 0 {
			out.wakesUs = append(out.wakesUs, float64(r.WakeMean)/1e3)
		}
	}
	return out
}

// runOpenBakeoff sweeps ρ × policy, pooling per-job sojourns across
// repetitions into mean/p50/p95/p99 response times.
func runOpenBakeoff(ctx *Context) []*Table {
	horizon := time.Duration(int64(8*time.Second) / int64(ctx.Scale))
	if horizon < 250*time.Millisecond {
		horizon = 250 * time.Millisecond
	}
	tb := &Table{
		Title: "Open-system bakeoff: sojourn time vs offered load (Tigerton, 16 cores)",
		Columns: []string{"rho", "policy", "jobs", "unfin",
			"mean ms", "p50 ms", "p95 ms", "p99 ms", "wake us"},
	}
	tb.Note("pooled over %d reps; arrivals for %v per cell, then a drain window", ctx.Reps, horizon)
	tb.Note("wake us = mean per-job wake-to-run latency over jobs that slept")

	rn := NewRunner(ctx)
	for ri, rho := range openRhos {
		for pi, p := range openPolicies {
			cfgIdx := ri*len(openPolicies) + pi
			// Result callbacks run on the Wait goroutine in submission
			// order, so pooling into per-config samples there is both
			// race-free and deterministic.
			soj, wake := &stats.Sample{}, &stats.Sample{}
			jobs, unfin := new(int), new(int)
			for rep := 0; rep < ctx.Reps; rep++ {
				rho, p := rho, p
				seed := seedFor(ctx.Seed, cfgIdx, rep)
				rn.SubmitFunc(
					fmt.Sprintf("open rho=%.2f %s rep %d", rho, p.name, rep),
					func() RunResult {
						return RunResult{Out: runOpenCell(p, openCellOpts{
							rho: rho, horizon: horizon, seed: seed,
							shards: ctx.Shards, shardPar: ctx.ShardParallel,
							predict: ctx.Predict,
						})}
					},
					func(res RunResult) {
						o := res.Out.(openCellOut)
						*jobs += o.admitted
						*unfin += o.unfinished
						for _, v := range o.sojournsMs {
							soj.Add(v)
						}
						for _, v := range o.wakesUs {
							wake.Add(v)
						}
					})
			}
			rho, p := rho, p
			rn.Then(func() {
				tb.AddRow(fmt.Sprintf("%.2f", rho), p.name, *jobs, *unfin,
					fmt.Sprintf("%.3f", soj.Mean()),
					fmt.Sprintf("%.3f", soj.Percentile(50)),
					fmt.Sprintf("%.3f", soj.Percentile(95)),
					fmt.Sprintf("%.3f", soj.Percentile(99)),
					fmt.Sprintf("%.1f", wake.Mean()))
				ctx.Logf("open-bakeoff: rho=%.2f %s done (%d jobs)", rho, p.name, *jobs)
			})
		}
	}
	rn.Wait()
	return []*Table{tb}
}
