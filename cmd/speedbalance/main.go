// Command speedbalance mirrors the paper's stand-alone speedbalancer
// program (§5.2) against the simulated machine: it "forks" an SPMD
// application, pins its threads round-robin over the requested cores,
// and balances their speeds, printing a per-thread report.
//
// Usage:
//
//	speedbalance [flags]
//
//	-machine tigerton|barcelona|nehalem|smpN   (default tigerton)
//	-threads N        application threads (default 16)
//	-cores N          restrict to the first N cores (default all)
//	-work MS          per-thread work between barriers, ms (default 100)
//	-iters N          barrier iterations (default 50)
//	-model upc|upc-sleep|mpi|openmp|openmp-inf  (default upc)
//	-interval MS      balance interval (default 100)
//	-threshold F      T_s speed threshold (default 0.9)
//	-hog CORE         pin a cpu-hog competitor to CORE (-1: none)
//	-makej N          run a make -j N competitor (0: none)
//	-baseline         also run LOAD and PINNED for comparison
//	-parallel N       worker pool for the independent runs (0: GOMAXPROCS)
//	-timeline         print an ASCII core-occupancy chart
//	-seed N           RNG seed
//
// With -baseline the three runs (SPEED, LOAD, PINNED) are independent
// simulations; -parallel fans them over a worker pool. Each run owns its
// machine and seed, so the report is byte-identical at any pool width.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"time"

	lbos "repro"
	"repro/internal/speedbal"
	"repro/internal/timeline"
)

func main() {
	machine := flag.String("machine", "tigerton", "machine model")
	threads := flag.Int("threads", 16, "application threads")
	cores := flag.Int("cores", 0, "restrict to first N cores (0: all)")
	workMS := flag.Float64("work", 100, "per-thread work between barriers (ms)")
	iters := flag.Int("iters", 50, "barrier iterations")
	model := flag.String("model", "upc", "programming model")
	intervalMS := flag.Int("interval", 100, "balance interval (ms)")
	threshold := flag.Float64("threshold", 0.9, "T_s speed threshold")
	hog := flag.Int("hog", -1, "pin a cpu-hog to this core")
	makej := flag.Int("makej", 0, "make -j width competitor")
	baseline := flag.Bool("baseline", false, "also run LOAD and PINNED")
	parallel := flag.Int("parallel", 0, "worker pool for independent runs (0: GOMAXPROCS)")
	showTimeline := flag.Bool("timeline", false, "print an ASCII core-occupancy chart")
	seed := flag.Uint64("seed", 1, "RNG seed")
	flag.Parse()

	workers := *parallel
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}

	tp, err := machineByName(*machine)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	mdl, err := modelByName(*model)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	aff := tp().AllCores()
	if *cores > 0 {
		aff = lbos.Cores(*cores)
	}
	spec := lbos.AppSpec{
		Name:             "app",
		Threads:          *threads,
		Iterations:       *iters,
		WorkPerIteration: *workMS * lbos.Millisecond,
		Model:            mdl,
		Affinity:         aff,
	}
	cfg := lbos.SpeedConfig{
		Interval:  time.Duration(*intervalMS) * time.Millisecond,
		Threshold: *threshold,
	}

	setup := func(sys *lbos.System) {
		if *hog >= 0 {
			sys.AddCPUHog(*hog)
		}
		if *makej > 0 {
			sys.AddMakeJ(*makej)
		}
	}

	// The SPEED run and the optional baselines are independent
	// simulations, each with its own machine and seed: fan them over the
	// worker pool and print in fixed order afterwards.
	type baseRes struct {
		name    string
		elapsed time.Duration
		speedup float64
	}
	var (
		app *lbos.App
		bal = speedbal.New(cfg)
		rec *timeline.Recorder
	)
	runs := []func(){func() {
		sys := lbos.NewSystem(tp(), lbos.WithSeed(*seed))
		setup(sys)
		if *showTimeline {
			rec = &timeline.Recorder{}
			sys.Machine().AddActor(rec)
		}
		app = sys.BuildApp(spec)
		bal.Launch(sys.Machine(), app)
		sys.RunUntil(app)
	}}
	var bases []baseRes
	if *baseline {
		bases = make([]baseRes, 2)
		for i, b := range []string{"LOAD", "PINNED"} {
			i, b := i, b
			runs = append(runs, func() {
				sys := lbos.NewSystem(tp(), lbos.WithSeed(*seed))
				setup(sys)
				var a *lbos.App
				if b == "LOAD" {
					a = sys.StartApp(spec)
				} else {
					a = sys.StartPinned(spec)
				}
				sys.RunUntil(a)
				bases[i] = baseRes{b, a.Elapsed(), a.Speedup()}
			})
		}
	}

	if workers > len(runs) {
		workers = len(runs)
	}
	idx := make(chan int)
	var wg sync.WaitGroup
	var progressMu sync.Mutex
	finished := 0
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				runs[i]()
				if len(runs) > 1 {
					progressMu.Lock()
					finished++ //lint:allow-slotsafety progressMu serialises this progress counter
					fmt.Fprintf(os.Stderr, "speedbalance: %d/%d runs done\n", finished, len(runs))
					progressMu.Unlock()
				}
			}
		}()
	}
	for i := range runs {
		idx <- i
	}
	close(idx)
	wg.Wait()

	fmt.Printf("speedbalance: %d threads on %s (%d cores allowed), %s barriers\n",
		*threads, *machine, aff.Count(), mdl.Name)
	fmt.Printf("  elapsed %v   speedup %.2f   migrations %d\n\n",
		app.Elapsed().Round(time.Millisecond), app.Speedup(), bal.Migrations)
	fmt.Printf("  %-8s %12s %12s %6s %6s\n", "thread", "exec", "speed", "migs", "core")
	for _, t := range app.Tasks {
		speed := float64(t.ExecTime) / float64(app.Elapsed())
		fmt.Printf("  %-8s %12v %12.3f %6d %6d\n",
			t.Name, t.ExecTime.Round(time.Millisecond), speed, t.Migrations, t.CoreID)
	}

	if rec != nil {
		fmt.Println()
		rec.Gantt(os.Stdout, 100)
		fmt.Print("utilisation:")
		for c, u := range rec.Utilisation() {
			if c%8 == 0 {
				fmt.Print("\n  ")
			}
			fmt.Printf("core%-2d %3.0f%%  ", c, u*100)
		}
		fmt.Println()
	}

	if *baseline {
		fmt.Println()
		for _, b := range bases {
			fmt.Printf("  %-7s elapsed %v   speedup %.2f\n",
				b.name+":", b.elapsed.Round(time.Millisecond), b.speedup)
		}
	}
}

func machineByName(name string) (func() *lbos.Topology, error) {
	switch name {
	case "tigerton":
		return lbos.Tigerton, nil
	case "barcelona":
		return lbos.Barcelona, nil
	case "nehalem":
		return lbos.Nehalem, nil
	}
	if n, ok := strings.CutPrefix(name, "smp"); ok {
		if k, err := strconv.Atoi(n); err == nil && k > 0 && k <= 64 {
			return func() *lbos.Topology { return lbos.SMP(k) }, nil
		}
	}
	return nil, fmt.Errorf("unknown machine %q (tigerton|barcelona|nehalem|smpN)", name)
}

func modelByName(name string) (lbos.Model, error) {
	switch name {
	case "upc":
		return lbos.UPC(), nil
	case "upc-sleep":
		return lbos.UPCSleep(), nil
	case "mpi":
		return lbos.MPI(), nil
	case "openmp":
		return lbos.OpenMPDefault(), nil
	case "openmp-inf":
		return lbos.OpenMPInfinite(), nil
	}
	return lbos.Model{}, fmt.Errorf("unknown model %q", name)
}
