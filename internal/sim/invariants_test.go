package sim_test

// Property tests: physical invariants of the simulated machine that must
// hold for every (seed, topology, strategy) draw. They guard the time
// accounting the whole reproduction rests on — the paper's speed metric
// is exec time over real time, so a task that accrues more exec time
// than wall time, a core that is busy for longer than the run, or a task
// resident on two cores at once would silently corrupt every result
// table. Runs are driven through the experiment harness (exp.Run) so the
// checked wiring is exactly what the tables measure.

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"
	"time"

	"repro/internal/competing"
	"repro/internal/cpuset"
	"repro/internal/exp"
	"repro/internal/perturb"
	"repro/internal/sim"
	"repro/internal/spmd"
	"repro/internal/task"
	"repro/internal/topo"
)

// residencyChecker samples the machine while it runs and fails the test
// if any task is visible on two cores at once (running or queued), or if
// a running task's CoreID disagrees with the core it occupies.
type residencyChecker struct {
	t      *testing.T
	every  time.Duration
	m      *sim.Machine
	checks int
}

func (rc *residencyChecker) Start(m *sim.Machine) {
	rc.m = m
	m.After(rc.every, rc.tick)
}

func (rc *residencyChecker) tick(now int64) {
	rc.checks++
	seen := map[*task.Task]int{}
	for _, c := range rc.m.Cores {
		if cur := c.Current(); cur != nil {
			seen[cur]++
			if cur.CoreID != c.ID() {
				rc.t.Errorf("t=%d: running task %q has CoreID %d but occupies core %d",
					now, cur.Name, cur.CoreID, c.ID())
			}
			if cur.State != task.Running {
				rc.t.Errorf("t=%d: task %q occupies core %d in state %v",
					now, cur.Name, c.ID(), cur.State)
			}
		}
		for _, q := range c.Queued() {
			seen[q]++
		}
	}
	var multi []string
	for tk, n := range seen {
		if n > 1 {
			multi = append(multi, fmt.Sprintf("t=%d: task %q resident on %d cores at once", now, tk.Name, n))
		}
	}
	sort.Strings(multi)
	for _, msg := range multi {
		rc.t.Error(msg)
	}
	rc.m.After(rc.every, rc.tick)
}

// drawOpts builds a random measurement from a seeded source, spanning
// every topology family, strategy and barrier model.
func drawOpts(rng *rand.Rand) exp.RunOpts {
	topos := []func() *topo.Topology{
		func() *topo.Topology { return topo.SMP(2) },
		func() *topo.Topology { return topo.SMP(5) },
		func() *topo.Topology { return topo.SMP(16) },
		topo.Tigerton,
		topo.Barcelona,
		topo.Nehalem,
		func() *topo.Topology { return topo.Asymmetric([]float64{1.5, 1.5, 1, 1}) },
	}
	strategies := []exp.Strategy{
		exp.StratPinned, exp.StratLoad, exp.StratSpeed, exp.StratDWRR, exp.StratULE,
	}
	models := []spmd.Model{
		spmd.UPC(), spmd.UPCSleep(), spmd.MPI(), spmd.OpenMPDefault(), spmd.OpenMPInfinite(),
	}

	tp := topos[rng.Intn(len(topos))]
	cores := tp().NumCores()
	o := exp.RunOpts{
		Topo:     tp,
		Strategy: strategies[rng.Intn(len(strategies))],
		Spec: spmd.Spec{
			Name:             "prop",
			Threads:          1 + rng.Intn(2*cores),
			Iterations:       1 + rng.Intn(12),
			WorkPerIteration: float64(1+rng.Intn(40)) * 1e6,
			WorkJitter:       0.3 * rng.Float64(),
			Model:            models[rng.Intn(len(models))],
			Affinity:         cpuset.All(1 + rng.Intn(cores)),
		},
		Seed: rng.Uint64(),
	}
	if rng.Intn(3) == 0 {
		o.Spec.MemIntensity = 0.9 * rng.Float64()
		o.Spec.RSSBytes = 1 << 20
	}
	if rng.Intn(4) == 0 {
		o.Setup = func(m *sim.Machine) { competing.CPUHog(m, 0) }
	}
	return o
}

// drawPerturb builds a random perturbation mix: always hotplug churn
// (the invariant-threatening family — it moves resident tasks around),
// plus a coin-flip of each other family.
func drawPerturb(rng *rand.Rand) perturb.Config {
	cfg := perturb.Config{
		Hotplug: perturb.HotplugConfig{
			Interval:   time.Duration(5+rng.Intn(45)) * time.Millisecond,
			OffTime:    time.Duration(2+rng.Intn(20)) * time.Millisecond,
			Jitter:     rng.Float64(),
			MaxOffline: 1 + rng.Intn(3),
		},
	}
	if rng.Intn(2) == 0 {
		cfg.Noise = perturb.DefaultNoise()
		cfg.Noise.Kthread = rng.Intn(2) == 0
	}
	if rng.Intn(2) == 0 {
		cfg.Freq = perturb.DefaultFreq()
	}
	if rng.Intn(2) == 0 {
		cfg.Storm = perturb.DefaultStorm()
		cfg.Storm.Period = 50 * time.Millisecond
	}
	return cfg
}

// TestInvariantsRandomRuns checks, over random draws:
//
//  1. no task's exec time exceeds the real time it existed for,
//  2. the sum of per-core busy time never exceeds elapsed × cores
//     (and each core's busy + idle time fits in the elapsed time),
//  3. a task is never resident on two cores at once (sampled while the
//     run is in flight by residencyChecker).
func TestInvariantsRandomRuns(t *testing.T) {
	draws := 40
	if testing.Short() {
		draws = 8
	}
	rng := rand.New(rand.NewSource(20100109))
	for i := 0; i < draws; i++ {
		o := drawOpts(rng)
		rc := &residencyChecker{t: t, every: 500 * time.Microsecond}
		setup := o.Setup
		o.Setup = func(m *sim.Machine) {
			if setup != nil {
				setup(m)
			}
			m.AddActor(rc)
		}
		res := exp.Run(o)

		m := res.Machine
		m.Sync()
		now := m.Now()
		if now <= 0 {
			t.Fatalf("draw %d (%s on %s): run did not advance", i, o.Strategy, m.Topo.Name)
		}
		if rc.checks == 0 {
			t.Errorf("draw %d: residency checker never ran", i)
		}

		for _, tk := range m.Tasks() {
			alive := now - tk.StartedAt
			if int64(tk.ExecTime) > alive {
				t.Errorf("draw %d (%s on %s): task %q exec time %v exceeds its real time %v",
					i, o.Strategy, m.Topo.Name, tk.Name, tk.ExecTime, time.Duration(alive))
			}
		}

		var busy time.Duration
		for _, c := range m.Cores {
			if int64(c.BusyTime) > now {
				t.Errorf("draw %d (%s on %s): core %d busy %v > elapsed %v",
					i, o.Strategy, m.Topo.Name, c.ID(), c.BusyTime, time.Duration(now))
			}
			if total := int64(c.BusyTime + c.IdleTime()); total > now {
				t.Errorf("draw %d (%s on %s): core %d busy+idle %v > elapsed %v",
					i, o.Strategy, m.Topo.Name, c.ID(), time.Duration(total), time.Duration(now))
			}
			busy += c.BusyTime
		}
		if limit := now * int64(len(m.Cores)); int64(busy) > limit {
			t.Errorf("draw %d (%s on %s): total busy %v exceeds elapsed × %d cores = %v",
				i, o.Strategy, m.Topo.Name, busy, len(m.Cores), time.Duration(limit))
		}
	}
}

// TestInvariantsUnderPerturbation repeats the physical-invariant checks
// with fault injection active — hotplug churn always, the other
// families by coin flip. It additionally checks the hotplug safety
// properties:
//
//  1. no task is lost — every application thread reaches Done even
//     though its core may have vanished underneath it (the run ending
//     without hitting the time limit is the machine-level witness; the
//     per-task states are checked explicitly),
//  2. unplugged cores come back, and while offline they accrue no busy
//     time beyond the run's physical budget,
//  3. the exec ≤ real and Σbusy ≤ elapsed × cores accounting bounds
//     survive drains, replugs, steals and frequency steps.
func TestInvariantsUnderPerturbation(t *testing.T) {
	draws := 25
	if testing.Short() {
		draws = 6
	}
	rng := rand.New(rand.NewSource(20100623))
	for i := 0; i < draws; i++ {
		o := drawOpts(rng)
		o.Perturb = drawPerturb(rng)
		o.Limit = 500 * time.Second
		rc := &residencyChecker{t: t, every: 500 * time.Microsecond}
		setup := o.Setup
		o.Setup = func(m *sim.Machine) {
			if setup != nil {
				setup(m)
			}
			m.AddActor(rc)
		}
		res := exp.Run(o)

		m := res.Machine
		m.Sync()
		now := m.Now()
		if res.Truncated {
			t.Fatalf("perturbed draw %d (%s on %s): hit the time limit — a task was starved or lost",
				i, o.Strategy, m.Topo.Name)
		}
		for _, tk := range m.Tasks() {
			if tk.Group == o.Spec.Name && tk.State != task.Done {
				t.Errorf("perturbed draw %d (%s on %s): app task %q lost in state %v",
					i, o.Strategy, m.Topo.Name, tk.Name, tk.State)
			}
			if alive := now - tk.StartedAt; int64(tk.ExecTime) > alive {
				t.Errorf("perturbed draw %d (%s on %s): task %q exec %v exceeds real %v",
					i, o.Strategy, m.Topo.Name, tk.Name, tk.ExecTime, time.Duration(alive))
			}
		}
		// A core may legitimately end the run offline (the machine stops
		// the moment the app exits, pending replugs unfired), so only the
		// accounting bounds are checked per core.
		var busy time.Duration
		for _, c := range m.Cores {
			if int64(c.BusyTime) > now {
				t.Errorf("perturbed draw %d (%s on %s): core %d busy %v > elapsed %v",
					i, o.Strategy, m.Topo.Name, c.ID(), c.BusyTime, time.Duration(now))
			}
			busy += c.BusyTime
		}
		if limit := now * int64(len(m.Cores)); int64(busy) > limit {
			t.Errorf("perturbed draw %d (%s on %s): total busy %v exceeds elapsed × %d cores = %v",
				i, o.Strategy, m.Topo.Name, busy, len(m.Cores), time.Duration(limit))
		}
	}
}
