package exp

import (
	"repro/internal/cpuset"
	"repro/internal/npb"
	"repro/internal/perturb"
	"repro/internal/spmd"
	"repro/internal/stats"
	"repro/internal/topo"
)

// Perturbed experiment drivers: canned fault-injection scenarios built
// on internal/perturb. Every other experiment can be perturbed too via
// `lbos run -perturb <families> <id>`; the drivers here pin a profile so
// the headline results regenerate without flags.

func init() {
	Register(&Experiment{
		ID:       "noise-omps",
		Title:    "OpenMP class S under injected kernel noise (ompS with the missing ingredient)",
		PaperRef: "§6.4",
		Expect: "Paper: ~45% improvement for class S with polling barriers at 16 " +
			"cores, attributed to OS noise the load balancer cannot see. With " +
			"kernel-noise injection the simulator reproduces the shape: SB_INF " +
			"recovers most of what LB_DEF loses to noise-convoyed barriers.",
		Run: func(ctx *Context) []*Table {
			old := ctx.Perturb
			defer func() { ctx.Perturb = old }()
			if !ctx.Perturb.Active() {
				ctx.Perturb = perturb.Config{Noise: perturb.KthreadNoise()}
			}
			return runOmpS(ctx)
		},
	})
	Register(&Experiment{
		ID:       "hotplug-churn",
		Title:    "Balancer robustness under core hot-unplug/replug churn",
		PaperRef: "robustness (beyond paper)",
		Expect: "Not in the paper: every balancer must survive cores vanishing " +
			"and returning mid-run — no lost tasks, bounded slowdown. SPEED " +
			"should degrade gracefully: its per-core speed slots go stale " +
			"across unplugs and re-learn after replug.",
		Run: runHotplugChurn,
	})
}

// runHotplugChurn runs a barrier-heavy workload on Tigerton while one
// core at a time is repeatedly unplugged and replugged, across all five
// strategies. The interesting output is that the runs finish at all
// (drain + re-place correctness) and how much each strategy pays.
func runHotplugChurn(ctx *Context) []*Table {
	t := &Table{
		Title: "cg.B, 16 threads / 16 cores, one core unplugged every ~400 ms for ~150 ms",
		Columns: []string{"strategy", "elapsed s", "speedup",
			"app migs", "hotplug migs", "var%"},
	}
	pcfg := perturb.Config{Hotplug: perturb.DefaultHotplug()}
	rn := NewRunner(ctx)
	config := 7000
	for _, strat := range []Strategy{StratPinned, StratLoad, StratSpeed, StratDWRR, StratULE} {
		strat := strat
		el, sp := &stats.Sample{}, &stats.Sample{}
		var migs, hotMigs int
		spec := ScaleSpec(ctx, npb.CG.Spec(16, spmd.UPC(), cpuset.All(16)))
		rn.Repeat(config, RunOpts{
			Topo: topo.Tigerton, Strategy: strat, Spec: spec, Perturb: pcfg,
		}, func(_ int, r RunResult) {
			el.AddDuration(r.Elapsed)
			sp.Add(r.Speedup)
			migs += r.AppMigrations
			hotMigs += r.Stats.Migrations["hotplug"]
		})
		config++
		rn.Then(func() {
			t.AddRow(string(strat), el.Mean(), sp.Mean(),
				migs/ctx.Reps, hotMigs/ctx.Reps, el.VariationPct())
			ctx.Logf("hotplug-churn: %s done", strat)
		})
	}
	rn.Wait()
	t.Note("hotplug migs counts tasks drained off an unplugging core (plus wakes redirected away from it); PINNED tasks get their affinity widened by the fallback path when their core vanishes")
	return []*Table{t}
}
