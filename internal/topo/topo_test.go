package topo

import (
	"testing"
	"time"

	"repro/internal/cpuset"
)

func machines() []*Topology {
	return []*Topology{Tigerton(), Barcelona(), Nehalem(), SMP(8),
		Asymmetric([]float64{1, 2, 0.5}), Fabric(16, 64), Fabric(2, 6)}
}

// Every built-in machine passes structural validation.
func TestAllMachinesValidate(t *testing.T) {
	for _, m := range machines() {
		if err := m.Validate(); err != nil {
			t.Errorf("%s: %v", m.Name, err)
		}
	}
}

func TestTigertonShape(t *testing.T) {
	m := Tigerton()
	if m.NumCores() != 16 || m.NUMANodes != 1 {
		t.Fatalf("cores=%d nodes=%d", m.NumCores(), m.NUMANodes)
	}
	// Cores 0 and 1 share an L2; 0 and 2 share only the socket; 0 and 4
	// are on different sockets but the same (single) NUMA node.
	if d := m.Distance(0, 1); d != DistCache {
		t.Errorf("Distance(0,1) = %v, want cache", d)
	}
	if d := m.Distance(0, 2); d != DistSocket {
		t.Errorf("Distance(0,2) = %v, want socket", d)
	}
	if d := m.Distance(0, 4); d != DistSocket {
		t.Errorf("Distance(0,4) = %v, want socket (UMA: never numa)", d)
	}
	if d := m.Distance(3, 3); d != DistSelf {
		t.Errorf("Distance(3,3) = %v, want self", d)
	}
	if _, ok := m.SharedCache(0, 1); !ok {
		t.Error("cores 0,1 share no cache, want shared L2")
	}
	if _, ok := m.SharedCache(0, 2); ok {
		t.Error("cores 0,2 share a cache, want none")
	}
}

func TestFabricShape(t *testing.T) {
	m := Fabric(16, 64)
	if m.NumCores() != 1024 || m.NUMANodes != 16 {
		t.Fatalf("cores=%d nodes=%d", m.NumCores(), m.NUMANodes)
	}
	// Cores 0 and 3 share an L3-slice cluster; 0 and 63 share only the
	// socket; 0 and 64 are on different NUMA nodes.
	if d := m.Distance(0, 3); d != DistCache {
		t.Errorf("Distance(0,3) = %v, want cache", d)
	}
	if d := m.Distance(0, 63); d != DistSocket {
		t.Errorf("Distance(0,63) = %v, want socket", d)
	}
	if _, ok := m.SharedCache(0, 63); !ok {
		t.Error("cores 0,63 share no cache, want socket L3")
	}
	if d := m.Distance(0, 64); d != DistNUMA {
		t.Errorf("Distance(0,64) = %v, want numa", d)
	}
	if got := m.MemDomainOf(1023); got != 15 {
		t.Errorf("MemDomainOf(1023) = %d, want 15", got)
	}
	for _, c := range []int{0, 511, 1023} {
		if s := m.Cores[c].Socket; s != c/64 {
			t.Errorf("core %d on socket %d, want %d", c, s, c/64)
		}
	}
	// A non-multiple-of-four socket width still validates (short last
	// cluster per socket).
	if err := Fabric(3, 5).Validate(); err != nil {
		t.Errorf("Fabric(3,5): %v", err)
	}
}

func TestBarcelonaShape(t *testing.T) {
	m := Barcelona()
	if m.NUMANodes != 4 {
		t.Fatalf("nodes = %d", m.NUMANodes)
	}
	if d := m.Distance(0, 3); d != DistCache {
		t.Errorf("Distance(0,3) = %v, want cache (shared L3)", d)
	}
	if d := m.Distance(0, 4); d != DistNUMA {
		t.Errorf("Distance(0,4) = %v, want numa", d)
	}
	if m.RemoteMemoryPenalty <= 0 {
		t.Error("Barcelona must have a remote-memory penalty")
	}
	// The NODE level must be marked NUMA so speedbalancer blocks it.
	top := m.Levels[len(m.Levels)-1]
	if !top.NUMA {
		t.Error("top level not marked NUMA")
	}
}

func TestNehalemSMT(t *testing.T) {
	m := Nehalem()
	if d := m.Distance(0, 8); d != DistSMT {
		t.Errorf("Distance(0,8) = %v, want smt", d)
	}
	if d := m.Distance(0, 1); d != DistCache {
		t.Errorf("Distance(0,1) = %v, want cache", d)
	}
	if d := m.Distance(0, 4); d != DistNUMA {
		t.Errorf("Distance(0,4) = %v, want numa", d)
	}
	if got := m.Cores[3].SMTSiblings; got != cpuset.Of(3, 11) {
		t.Errorf("siblings of 3 = %v", got)
	}
}

// Migration cost grows with distance and saturates with RSS at the
// destination LLC size.
func TestMigrationCostMonotonic(t *testing.T) {
	m := Tigerton()
	rss := int64(1 << 20)
	same := m.MigrationCost(rss, 0, 0)
	cache := m.MigrationCost(rss, 0, 1)
	socket := m.MigrationCost(rss, 0, 2)
	cross := m.MigrationCost(rss, 0, 4)
	if same != 0 {
		t.Errorf("same-core cost %v, want 0", same)
	}
	if !(cache < socket && socket <= cross) {
		t.Errorf("cost ordering violated: cache=%v socket=%v cross=%v", cache, socket, cross)
	}
	// Saturation: RSS beyond LLC costs the same as LLC-sized RSS.
	big := m.MigrationCost(1<<30, 0, 4)
	llc := m.MigrationCost(4<<20, 0, 4)
	if big != llc {
		t.Errorf("cost not capped at LLC: big=%v llc=%v", big, llc)
	}
	// Within the paper's quoted envelope: µs (fits in cache) to ~2 ms.
	if cache < time.Microsecond || cross > 3*time.Millisecond {
		t.Errorf("costs outside paper envelope: cache=%v cross=%v", cache, cross)
	}
}

func TestMigrationCostNUMA(t *testing.T) {
	m := Barcelona()
	rss := int64(2 << 20)
	intra := m.MigrationCost(rss, 0, 1)
	inter := m.MigrationCost(rss, 0, 4)
	if inter <= intra {
		t.Errorf("NUMA migration (%v) not costlier than intra-socket (%v)", inter, intra)
	}
}

func TestMemDomainOf(t *testing.T) {
	m := Tigerton()
	if d := m.MemDomainOf(0); d != m.MemDomainOf(3) {
		t.Error("cores 0,3 in different mem domains, want same socket FSB")
	}
	if m.MemDomainOf(0) == m.MemDomainOf(4) {
		t.Error("cores 0,4 share a mem domain, want separate FSBs")
	}
	// SMP machines have no bandwidth model: every core reports -1.
	smp := SMP(4)
	if smp.MemDomainOf(0) != -1 {
		t.Error("SMP core has a mem domain, want none (unlimited)")
	}
}

func TestCacheSizeFor(t *testing.T) {
	b := Barcelona()
	if got := b.CacheSizeFor(0); got != 2<<20 {
		t.Errorf("Barcelona LLC = %d, want 2MB L3", got)
	}
	tg := Tigerton()
	if got := tg.CacheSizeFor(0); got != 4<<20 {
		t.Errorf("Tigerton LLC = %d, want 4MB L2", got)
	}
}

func TestAsymmetricSpeeds(t *testing.T) {
	m := Asymmetric([]float64{1, 2, 0.5})
	if m.Cores[1].BaseSpeed != 2 || m.Cores[2].BaseSpeed != 0.5 {
		t.Error("asymmetric speeds not applied")
	}
	if err := m.Validate(); err != nil {
		t.Error(err)
	}
}

func TestValidateCatchesBadTopology(t *testing.T) {
	m := Tigerton()
	m.Cores[3].BaseSpeed = 0
	if err := m.Validate(); err == nil {
		t.Error("zero speed not caught")
	}

	m = Tigerton()
	m.Levels[0].Groups = m.Levels[0].Groups[1:] // drop a group: no cover
	if err := m.Validate(); err == nil {
		t.Error("non-covering level not caught")
	}

	m = Tigerton()
	m.MemDomains[0].Capacity = 0
	if err := m.Validate(); err == nil {
		t.Error("zero mem capacity not caught")
	}
}

func TestGroupOf(t *testing.T) {
	m := Tigerton()
	mc := m.Levels[0]
	if g := mc.GroupOf(5); g != cpuset.Of(4, 5) {
		t.Errorf("MC group of 5 = %v", g)
	}
	if g := mc.GroupOf(63); !g.Empty() {
		t.Errorf("group of absent core = %v", g)
	}
}

func TestDistanceString(t *testing.T) {
	for _, c := range []struct {
		d    Distance
		want string
	}{
		{DistSelf, "self"}, {DistSMT, "smt"}, {DistCache, "cache"},
		{DistSocket, "socket"}, {DistNUMA, "numa"},
	} {
		if c.d.String() != c.want {
			t.Errorf("%d.String() = %q", c.d, c.d.String())
		}
	}
}
