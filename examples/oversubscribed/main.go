// Oversubscribed: the paper's §1 motivating example — three threads on
// two cores — across every balancer in the repository.
//
// Queue-length balancing cannot improve a 2-vs-1 split (Linux's integer
// imbalance arithmetic leaves it alone), so the application perceives
// the system at 50% speed. Speed balancing rotates the doubled-up slot
// among the threads, lifting the application to ~66% — the paper's
// asymptotic bound (2T+1)/(2(T+1)) with T=1.
//
//	go run ./examples/oversubscribed
package main

import (
	"fmt"
	"time"

	lbos "repro"
	"repro/internal/model"
)

func main() {
	const work = 4000 * lbos.Millisecond // 4 s of work per thread

	spec := lbos.AppSpec{
		Name:             "app",
		Threads:          3,
		Iterations:       1,
		WorkPerIteration: work,
		Model:            lbos.UPC(),
	}

	split := model.NewSplit(3, 2)
	fmt.Printf("3 threads, 2 cores: T=%d  Linux speed=%.2f  ideal speed=%.2f  max speedup=%.2fx\n\n",
		split.T, split.LinuxSpeed(), split.IdealSpeed(), split.MaxSpeedup())

	type result struct {
		name    string
		elapsed time.Duration
	}
	var results []result

	run := func(name string, f func() *lbos.App) {
		app := f()
		results = append(results, result{name, app.Elapsed()})
	}

	run("LOAD (Linux)", func() *lbos.App {
		sys := lbos.NewSystem(lbos.SMP(2), lbos.WithSeed(7))
		app := sys.StartApp(spec)
		sys.RunUntil(app)
		return app
	})
	run("SPEED", func() *lbos.App {
		sys := lbos.NewSystem(lbos.SMP(2), lbos.WithSeed(7))
		app := sys.BuildApp(spec)
		sys.SpeedBalance(app, lbos.SpeedConfig{})
		sys.RunUntil(app)
		return app
	})
	run("DWRR", func() *lbos.App {
		sys := lbos.NewSystem(lbos.SMP(2), lbos.WithSeed(7), lbos.WithDWRR())
		app := sys.StartApp(spec)
		sys.RunUntil(app)
		return app
	})
	run("FreeBSD ULE", func() *lbos.App {
		sys := lbos.NewSystem(lbos.SMP(2), lbos.WithSeed(7), lbos.WithULE())
		app := sys.StartApp(spec)
		sys.RunUntil(app)
		return app
	})
	run("PINNED", func() *lbos.App {
		sys := lbos.NewSystem(lbos.SMP(2), lbos.WithSeed(7))
		app := sys.StartPinned(spec)
		sys.RunUntil(app)
		return app
	})

	ideal := time.Duration(1.5 * work)
	fmt.Printf("%-14s %10s  %s\n", "balancer", "elapsed", "vs ideal (1.5W)")
	for _, r := range results {
		fmt.Printf("%-14s %10v  %.2fx\n",
			r.name, r.elapsed.Round(time.Millisecond), float64(r.elapsed)/float64(ideal))
	}
}
