// Package a seeds every eventown violation class against doubles that
// mirror the eventq pooling surface. The branch and loop fixtures are
// the point of the dataflow upgrade: a per-statement AST check cannot
// see a Release in one arm reaching a use after the join, or a second
// Release arriving around a loop back edge.
package a

// Event, Queue, and Sharded mirror internal/eventq's pooled surface.
type Event struct{ shard int }

func (e *Event) Queued() bool { return false }

type Queue struct{}

func (q *Queue) PushPooled(at int64, fn func(now int64)) *Event { return &Event{} }
func (q *Queue) Release(e *Event)                               {}
func (q *Queue) Schedule(e *Event, at int64)                    {}
func (q *Queue) Remove(e *Event) bool                           { return true }

type Sharded struct{}

func (s *Sharded) PushPooled(shard int, at int64, fn func(now int64)) *Event { return &Event{} }
func (s *Sharded) ShardRelease(e *Event)                                     {}

// Straight-line use after Release: the baseline.
func useAfterRelease(q *Queue) {
	h := q.PushPooled(10, func(now int64) {})
	q.Release(h)
	if h.Queued() { // want eventown:"used after Release"
		return
	}
}

// Double release recycles a struct that may already back another timer.
func doubleRelease(q *Queue) {
	h := q.PushPooled(10, func(now int64) {})
	q.Release(h)
	q.Release(h) // want eventown:"released twice"
}

// Release in one arm, use after the join: only the CFG sees this.
func branchThenSchedule(q *Queue, cancel bool) {
	h := q.PushPooled(10, func(now int64) {})
	if cancel {
		q.Release(h)
	}
	q.Schedule(h, 20) // want eventown:"may have been released on a path reaching this Schedule"
}

// Schedule on a definitely released handle.
func scheduleReleased(q *Queue) {
	h := q.PushPooled(10, func(now int64) {})
	q.Release(h)
	q.Schedule(h, 20) // want eventown:"Schedule on released pooled event handle"
}

// The second trip around the loop releases again: the may-state arrives
// via the back edge. The handle is also released on only the iterating
// paths, so the exit is inconsistent too.
func loopRelease(q *Queue, n int) {
	h := q.PushPooled(10, func(now int64) {})
	for i := 0; i < n; i++ {
		q.Release(h) // want eventown:"may already have been released on a path reaching this Release"
	}
} // want eventown:"released on only some paths"

// Early return leaks the handle the other path releases.
func leakOnEarlyReturn(q *Queue, fast bool) {
	h := q.PushPooled(10, func(now int64) {})
	if fast {
		return // want eventown:"released on another path but still live at this return"
	}
	q.Release(h)
}

// The sharded queue's release path is the one the parallel window uses.
func shardedUseAfterRelease(s *Sharded) {
	h := s.PushPooled(0, 10, func(now int64) {})
	s.ShardRelease(h)
	_ = h.Queued() // want eventown:"used after Release"
}
