package exp

import (
	"fmt"
	"io"
	"strings"
)

// Table is a rendered experiment result: a titled grid with notes.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
	Notes   []string
}

// AddRow appends a row, formatting each cell with %v.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = trimFloat(v)
		case string:
			row[i] = v
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.Rows = append(t.Rows, row)
}

// Note appends a footnote line.
func (t *Table) Note(format string, args ...any) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// Render writes the table as aligned text.
func (t *Table) Render(w io.Writer) {
	fmt.Fprintf(w, "== %s ==\n", t.Title)
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		var b strings.Builder
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			pad := 0
			if i < len(widths) {
				pad = widths[i] - len(cell)
			}
			// Right-align numeric-looking cells, left-align the rest.
			if isNumeric(cell) {
				b.WriteString(strings.Repeat(" ", pad))
				b.WriteString(cell)
			} else {
				b.WriteString(cell)
				b.WriteString(strings.Repeat(" ", pad))
			}
		}
		fmt.Fprintln(w, strings.TrimRight(b.String(), " "))
	}
	line(t.Columns)
	total := 0
	for _, wd := range widths {
		total += wd + 2
	}
	fmt.Fprintln(w, strings.Repeat("-", total-2))
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "  note: %s\n", n)
	}
}

// CSV writes the table as comma-separated values (no notes).
func (t *Table) CSV(w io.Writer) {
	esc := func(s string) string {
		if strings.ContainsAny(s, ",\"\n") {
			return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
		}
		return s
	}
	cols := make([]string, len(t.Columns))
	for i, c := range t.Columns {
		cols[i] = esc(c)
	}
	fmt.Fprintln(w, strings.Join(cols, ","))
	for _, row := range t.Rows {
		cells := make([]string, len(row))
		for i, c := range row {
			cells[i] = esc(c)
		}
		fmt.Fprintln(w, strings.Join(cells, ","))
	}
}

// String renders to a string.
func (t *Table) String() string {
	var b strings.Builder
	t.Render(&b)
	return b.String()
}

func trimFloat(v float64) string {
	s := fmt.Sprintf("%.2f", v)
	s = strings.TrimRight(s, "0")
	s = strings.TrimRight(s, ".")
	if s == "" || s == "-" {
		s = "0"
	}
	return s
}

func isNumeric(s string) bool {
	if s == "" {
		return false
	}
	for _, r := range s {
		if !strings.ContainsRune("0123456789.-+%x", r) {
			return false
		}
	}
	return true
}
