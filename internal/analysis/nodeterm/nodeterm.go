// Package nodeterm implements the determinism analyzer: it forbids the
// constructs that make a simulation run depend on anything beyond
// (machine, workload, balancer, seed).
//
// Banned constructs:
//
//   - wall-clock reads: time.Now, time.Since, time.Until, time.Sleep,
//     time.After, time.AfterFunc, time.Tick, time.NewTicker,
//     time.NewTimer. Simulated time must come from the event clock;
//     the one sanctioned wall-clock site for progress reporting lives
//     in internal/clock behind //lint:allow-wallclock.
//   - the global math/rand and math/rand/v2 generators (rand.Intn,
//     rand.Float64, rand.Shuffle, ...): shared mutable state whose
//     sequence depends on what other code drew before. Randomness must
//     flow from internal/xrand, or at minimum from a locally
//     constructed, explicitly seeded source.
//   - rand.New / rand.NewSource / rand.NewPCG / rand.NewChaCha8 seeded
//     from a nondeterministic source (a wall-clock read, os.Getpid,
//     crypto/rand): the constructor is fine, the seed provenance is the
//     violation.
//   - select statements with two or more communication cases: when
//     several cases are ready the runtime picks uniformly at random,
//     so control flow diverges between runs. Channel fan-in must be
//     restructured into deterministic receives (or annotated
//     //lint:allow-select where the nondeterminism provably cannot
//     reach any output, as in the Runner's internals).
//
// Machine-global simulator calls from worker goroutines, which this
// analyzer used to flag per-statement, are now the depth-0 case of the
// call-graph-aware windowsafe analyzer (same machineglobal category and
// directive vocabulary).
package nodeterm

import (
	"go/ast"
	"go/types"

	"repro/internal/analysis"
)

// Analyzer is the nodeterm analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "nodeterm",
	Doc:  "forbid wall-clock reads, global math/rand, nondeterministically seeded sources, and racy selects",
	Run:  run,
}

// wallclock lists the time functions whose results differ between runs.
// Pure constructors/converters (time.Duration, time.Unix, time.Date) are
// deliberately absent: they are deterministic functions of their inputs.
var wallclock = map[string]bool{
	"Now": true, "Since": true, "Until": true, "Sleep": true,
	"After": true, "AfterFunc": true, "Tick": true,
	"NewTicker": true, "NewTimer": true,
}

// randGlobals lists the package-level math/rand functions that draw from
// the shared global generator.
var randGlobals = map[string]bool{
	"Int": true, "Intn": true, "Int31": true, "Int31n": true,
	"Int63": true, "Int63n": true, "Uint32": true, "Uint64": true,
	"Float32": true, "Float64": true, "ExpFloat64": true,
	"NormFloat64": true, "Perm": true, "Shuffle": true, "Seed": true,
	"Read": true,
}

// randV2Globals is the same for math/rand/v2, whose global generator
// cannot even be seeded.
var randV2Globals = map[string]bool{
	"Int": true, "IntN": true, "Int32": true, "Int32N": true,
	"Int64": true, "Int64N": true, "Uint": true, "UintN": true,
	"Uint32": true, "Uint32N": true, "Uint64": true, "Uint64N": true,
	"Float32": true, "Float64": true, "ExpFloat64": true,
	"NormFloat64": true, "Perm": true, "Shuffle": true, "N": true,
}

// sourceCtors are the generator constructors whose seed argument we
// audit for nondeterministic provenance.
var sourceCtors = map[string]bool{
	"New": true, "NewSource": true, "NewPCG": true, "NewChaCha8": true,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.SelectorExpr:
				checkSelector(pass, n)
			case *ast.CallExpr:
				checkSeedProvenance(pass, n)
			case *ast.SelectStmt:
				checkSelect(pass, n)
			}
			return true
		})
	}
	return nil
}

// pkgFunc resolves sel to a package-level function and returns its
// package path and name ("" if sel is something else, e.g. a method or
// a field).
func pkgFunc(pass *analysis.Pass, sel *ast.SelectorExpr) (path, name string) {
	fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil {
		return "", ""
	}
	if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
		return "", ""
	}
	return fn.Pkg().Path(), fn.Name()
}

// checkSelector flags any mention — call or function value — of a banned
// wall-clock or global-rand function.
func checkSelector(pass *analysis.Pass, sel *ast.SelectorExpr) {
	path, name := pkgFunc(pass, sel)
	switch path {
	case "time":
		if wallclock[name] {
			pass.Reportf(sel.Pos(), "wallclock",
				"time.%s reads the wall clock; simulation time must come from the event clock (internal/clock is the sanctioned progress-reporting wrapper)", name)
		}
	case "math/rand":
		if randGlobals[name] {
			pass.Reportf(sel.Pos(), "rand",
				"math/rand.%s draws from the shared global generator; use internal/xrand seeded from the run's seed", name)
		}
	case "math/rand/v2":
		if randV2Globals[name] {
			pass.Reportf(sel.Pos(), "rand",
				"math/rand/v2.%s draws from the unseedable global generator; use internal/xrand seeded from the run's seed", name)
		}
	}
}

// checkSeedProvenance flags rand.New / rand.NewSource whose seed
// expression derives from the wall clock, the process identity, or
// crypto/rand. A constant or computed seed is fine — that is the
// pattern the repo's own tests use.
func checkSeedProvenance(pass *analysis.Pass, call *ast.CallExpr) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	path, name := pkgFunc(pass, sel)
	if (path != "math/rand" && path != "math/rand/v2") || !sourceCtors[name] {
		return
	}
	for _, arg := range call.Args {
		if src := nondeterministicSource(pass, arg); src != "" {
			pass.Reportf(call.Pos(), "rand",
				"rand.%s seeded from %s; derive the seed from the run's base seed instead", name, src)
			return
		}
	}
}

// nondeterministicSource reports the first nondeterministic input found
// inside a seed expression ("" if none).
func nondeterministicSource(pass *analysis.Pass, expr ast.Expr) string {
	found := ""
	ast.Inspect(expr, func(n ast.Node) bool {
		if found != "" {
			return false
		}
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		path, name := pkgFunc(pass, sel)
		switch {
		case path == "time" && wallclock[name]:
			found = "the wall clock (time." + name + ")"
		case path == "os" && (name == "Getpid" || name == "Getppid"):
			found = "the process identity (os." + name + ")"
		case path == "crypto/rand":
			found = "crypto/rand"
		}
		return found == ""
	})
	return found
}

// checkSelect flags selects that can race: with two or more ready
// communication cases the runtime chooses uniformly at random.
func checkSelect(pass *analysis.Pass, sel *ast.SelectStmt) {
	comm := 0
	for _, clause := range sel.Body.List {
		if cc, ok := clause.(*ast.CommClause); ok && cc.Comm != nil {
			comm++
		}
	}
	if comm >= 2 {
		pass.Reportf(sel.Pos(), "select",
			"select with %d communication cases chooses nondeterministically when several are ready; restructure into deterministic receives", comm)
	}
}
