// Package a seeds the allowdoc violations: a bare directive and a
// typoed category.
package a

import "time"

func undocumented() {
	_ = time.Now //lint:allow-wallclock // want allowdoc:"has no justification"
}

func typoedCategory() {
	_ = time.Now //lint:allow-wallcock oops // want allowdoc:"names an unknown category"
}
