// Package allow exercises the eventown escape hatch: the construct
// would fire without its directive, so any diagnostic here is a
// suppression bug.
package allow

type Event struct{}

type Queue struct{}

func (q *Queue) PushPooled(at int64, fn func(now int64)) *Event { return &Event{} }
func (q *Queue) Release(e *Event)                               {}

// poolReuseProbe is the pool_test.go idiom: comparing a released
// handle's identity to prove the free list recycles.
func poolReuseProbe(q *Queue) bool {
	h := q.PushPooled(10, func(now int64) {})
	q.Release(h)
	//lint:allow-eventown pool-identity probe, proving the free list recycles
	return q.PushPooled(20, func(now int64) {}) == h
}
