package exp

import (
	"fmt"

	"repro/internal/cpuset"
	"repro/internal/npb"
	"repro/internal/spmd"
	"repro/internal/stats"
	"repro/internal/topo"
)

func init() {
	Register(&Experiment{
		ID:       "fig4",
		Title:    "UPC suite: SPEED vs LOAD per benchmark (worst, avg, variation)",
		PaperRef: "Figure 4 / §6.2",
		Expect: "SPEED improves average performance by up to ~50% and worst case by " +
			"up to ~70%; SPEED varies ≈2% overall, LOAD up to ~67%.",
		Run: runFig4,
	})
	Register(&Experiment{
		ID:       "table3",
		Title:    "Summary of SPEED improvements for the combined UPC workload",
		PaperRef: "Table 3",
		Expect: "SPEED vs PINNED up to ~24%, vs LOAD average up to ~46%, vs LOAD " +
			"worst case up to ~90%; variation: SPEED ≤ ~3%, LOAD up to ~67%.",
		Run: runTable3,
	})
}

// suiteData is the measurement grid shared by fig4 and table3: per
// (benchmark, core count, strategy) samples of run time.
type suiteData struct {
	benches []npb.Benchmark
	cores   []int
	// times[bench][cores][strategy]
	times map[string]map[int]map[Strategy]*stats.Sample
}

var fig4Strategies = []Strategy{StratSpeed, StratLoad, StratPinned}

// runSuite measures the UPC suite across core counts under SPEED, LOAD
// and PINNED on Tigerton.
func runSuite(ctx *Context) *suiteData {
	d := &suiteData{
		benches: npb.Suite(),
		cores:   []int{4, 6, 8, 10, 12, 14, 16},
		times:   map[string]map[int]map[Strategy]*stats.Sample{},
	}
	run := NewRunner(ctx)
	config := 1000
	for _, b := range d.benches {
		d.times[b.Name] = map[int]map[Strategy]*stats.Sample{}
		for _, n := range d.cores {
			d.times[b.Name][n] = map[Strategy]*stats.Sample{}
			spec := ScaleSpec(ctx, b.Spec(16, spmd.UPC(), cpuset.All(n)))
			for _, st := range fig4Strategies {
				s := &stats.Sample{}
				d.times[b.Name][n][st] = s
				run.Repeat(config, RunOpts{
					Topo: topo.Tigerton, Strategy: st, Spec: spec,
				}, func(_ int, r RunResult) { s.AddDuration(r.Elapsed) })
				config++
			}
			run.Then(func() { ctx.Logf("suite: %s on %d cores done", b.Name, n) })
		}
	}
	run.Wait()
	return d
}

// suiteCache memoises the grid so fig4 and table3 in one process share
// the measurements (they are the same experiment in the paper).
var suiteCache = map[string]*suiteData{}

func suiteFor(ctx *Context) *suiteData {
	key := fmt.Sprintf("%d/%d/%d", ctx.Reps, ctx.Scale, ctx.Seed)
	if d, ok := suiteCache[key]; ok {
		return d
	}
	d := runSuite(ctx)
	suiteCache[key] = d
	return d
}

func runFig4(ctx *Context) []*Table {
	d := suiteFor(ctx)
	t := &Table{
		Title: "SPEED vs LOAD per benchmark and core count (ratios < 1 favour SPEED)",
		Columns: []string{"benchmark", "cores", "SB_AVG/LB_AVG", "SB_WORST/LB_WORST",
			"SB variation %", "LB variation %"},
	}
	for _, b := range d.benches {
		for _, n := range d.cores {
			sp := d.times[b.Name][n][StratSpeed]
			lb := d.times[b.Name][n][StratLoad]
			t.AddRow(b.Name, n,
				sp.Mean()/lb.Mean(),
				sp.Max()/lb.Max(),
				sp.VariationPct(),
				lb.VariationPct())
		}
	}
	t.Note("16 UPC (yield-barrier) threads on the given cores of Tigerton; %d reps", ctx.Reps)
	t.Note("reproduction finding: in the Lemma 1 unprofitable regime (S ≪ B: sp, cg, bt) rotation churn costs SPEED a few percent on a noise-free substrate, and at even splits (4/8/16 cores) there is nothing to win; the paper's uniform wins there ride on real-system LOAD noise our clean simulator does not produce. The profitable regime (ep, and ft at S ≈ B) reproduces the paper's improvements.")
	return []*Table{t}
}

func runTable3(ctx *Context) []*Table {
	d := suiteFor(ctx)
	t := &Table{
		Title: "SPEED % improvement and % variation (aggregated over core counts)",
		Columns: []string{"benchmark", "vs PINNED", "vs LB avg", "vs LB worst",
			"SPEED var %", "LOAD var %"},
	}
	type agg struct{ vsPinned, vsLBAvg, vsLBWorst, varS, varL stats.Sample }
	all := &agg{}
	for _, b := range d.benches {
		a := &agg{}
		for _, n := range d.cores {
			sp := d.times[b.Name][n][StratSpeed]
			lb := d.times[b.Name][n][StratLoad]
			pn := d.times[b.Name][n][StratPinned]
			for _, x := range []*agg{a, all} {
				x.vsPinned.Add(sp.ImprovementPct(pn))
				x.vsLBAvg.Add(sp.ImprovementPct(lb))
				x.vsLBWorst.Add(sp.WorstImprovementPct(lb))
				x.varS.Add(sp.VariationPct())
				x.varL.Add(lb.VariationPct())
			}
		}
		t.AddRow(b.Name, a.vsPinned.Mean(), a.vsLBAvg.Mean(), a.vsLBWorst.Mean(),
			a.varS.Mean(), a.varL.Mean())
	}
	t.AddRow("all", all.vsPinned.Mean(), all.vsLBAvg.Mean(), all.vsLBWorst.Mean(),
		all.varS.Mean(), all.varL.Mean())
	t.Note("improvements are means over core counts {4..16}; variation is the paper's max/min ratio − 1")
	return []*Table{t}
}
