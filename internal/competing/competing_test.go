package competing_test

import (
	"repro/internal/cpuset"
	"testing"
	"time"

	"repro/internal/cfs"
	"repro/internal/competing"
	"repro/internal/linuxlb"
	"repro/internal/sim"
	"repro/internal/task"
	"repro/internal/topo"
)

func newMachine(n int, seed uint64) *sim.Machine {
	m := sim.New(topo.SMP(n), sim.Config{Seed: seed, NewScheduler: cfs.Factory()})
	m.AddActor(linuxlb.Default())
	return m
}

// The cpu-hog stays pinned and consumes its core fully when alone.
func TestCPUHog(t *testing.T) {
	m := newMachine(2, 1)
	hog := competing.CPUHog(m, 1)
	m.RunFor(time.Second)
	m.Sync()
	if hog.CoreID != 1 {
		t.Errorf("hog on core %d", hog.CoreID)
	}
	if hog.ExecTime < 990*time.Millisecond {
		t.Errorf("hog exec %v over 1s alone", hog.ExecTime)
	}
	if hog.Migrations != 0 {
		t.Errorf("pinned hog migrated %d times", hog.Migrations)
	}
}

// make -j keeps its width in flight and respawns finished jobs.
func TestMakeJRespawns(t *testing.T) {
	m := newMachine(4, 2)
	mk := &competing.MakeJ{Width: 3}
	m.AddActor(mk)
	m.RunFor(3 * time.Second)
	if mk.JobsFinished < 10 {
		t.Errorf("only %d jobs finished in 3s", mk.JobsFinished)
	}
	// In-flight count: tasks in the "make" group not yet done.
	inflight := 0
	for _, tk := range m.Tasks() {
		if tk.Group == "make" && tk.State != task.Done {
			inflight++
		}
	}
	if inflight == 0 || inflight > 3 {
		t.Errorf("in-flight jobs %d, want 1..3", inflight)
	}
}

// Duration bounds the spawner: after the window plus drain time no jobs
// remain.
func TestMakeJDuration(t *testing.T) {
	m := newMachine(4, 3)
	mk := &competing.MakeJ{Width: 2, Duration: 500 * time.Millisecond}
	m.AddActor(mk)
	m.RunFor(3 * time.Second)
	finished := mk.JobsFinished
	m.RunFor(2 * time.Second)
	if mk.JobsFinished > finished+2 {
		t.Errorf("jobs still spawning after duration: %d -> %d", finished, mk.JobsFinished)
	}
}

// Stop ceases respawning immediately.
func TestMakeJStop(t *testing.T) {
	m := newMachine(2, 4)
	mk := &competing.MakeJ{Width: 2}
	m.AddActor(mk)
	m.RunFor(time.Second)
	mk.Stop()
	n := mk.JobsFinished
	m.RunFor(2 * time.Second)
	// In-flight jobs may still complete, but no new ones spawn.
	if mk.JobsFinished > n+2 {
		t.Errorf("jobs grew from %d to %d after Stop", n, mk.JobsFinished)
	}
}

// Interactive tasks barely load the machine but keep waking.
func TestInteractive(t *testing.T) {
	m := newMachine(1, 5)
	ia := &competing.Interactive{Period: 50 * time.Millisecond, Burst: 1e6}
	m.AddActor(ia)
	m.RunFor(5 * time.Second)
	m.Sync()
	// ~100 bursts of 1 ms ≈ 100 ms of CPU over 5 s (2%).
	if ia.Task.ExecTime < 50*time.Millisecond || ia.Task.ExecTime > 200*time.Millisecond {
		t.Errorf("interactive exec %v, want ≈ 100ms", ia.Task.ExecTime)
	}
}

// MakeJ respects its affinity restriction.
func TestMakeJAffinity(t *testing.T) {
	m := newMachine(4, 6)
	mk := &competing.MakeJ{Width: 4, Affinity: cpuset.Of(0, 1)}
	m.AddActor(mk)
	m.RunFor(2 * time.Second)
	for _, tk := range m.Tasks() {
		if tk.Group == "make" && tk.CoreID > 1 {
			t.Errorf("make job on core %d outside affinity", tk.CoreID)
		}
	}
}
