// Package speedbal implements the paper's contribution: user-level speed
// balancing (§5).
//
// Instead of equalising run-queue lengths, speed balancing equalises the
// speed of an application's threads, where speed = t_exec / t_real over
// a balancing interval. A balancer thread runs per core; periodically
// (every ~100 ms plus random jitter) it:
//
//  1. computes the speed of every managed thread on its (local) core
//     over the elapsed interval,
//  2. computes the local core speed as the average of those,
//  3. computes the global core speed as the average over all cores,
//  4. if the local core is faster than the global average, pulls one
//     thread from a suitable remote core — one whose speed is
//     sufficiently below the global average (s_k/s_global < T_s,
//     default 0.9) and that has not been involved in a migration for at
//     least two balance intervals.
//
// The thread pulled is the one that has migrated least ("to avoid
// creating hot-potato tasks"). Migration uses sched_setaffinity
// semantics: the thread is re-pinned to the destination core, moving
// immediately and becoming invisible to the Linux balancer. Migrations
// across NUMA domains are blocked by default (§5.2); per-domain minimum
// intervals allow, e.g., cache-domain migrations twice as often.
package speedbal

import (
	"sort"
	"time"

	"repro/internal/cpuset"
	"repro/internal/predict"
	"repro/internal/sim"
	"repro/internal/spmd"
	"repro/internal/task"
	"repro/internal/topo"
	"repro/internal/trace"
	"repro/internal/xrand"
)

// Measure selects the thread-speed signal.
type Measure int

const (
	// MeasureCPUShare is the paper's speed = t_exec / t_real (weighted
	// by the core's relative clock on heterogeneous machines, per §4's
	// extension). Spin- and yield-waiting count as progress, which is
	// what makes blocked co-runners visible (§5).
	MeasureCPUShare Measure = iota
	// MeasureWorkRate is the §7 future-work alternative: speed from a
	// retired-work performance counter (Δwork/Δwall). It sees through
	// contention the CPU share cannot — memory-bandwidth saturation,
	// SMT interference, remote-NUMA stalls — but scores waiting threads
	// as making no progress, and, as §7 warns for real systems, would
	// contend for the performance counters with application tuning.
	MeasureWorkRate
)

// String names the measure.
func (m Measure) String() string {
	if m == MeasureWorkRate {
		return "work-rate"
	}
	return "cpu-share"
}

// PullPolicy selects the victim thread on the remote core. The paper
// uses least-migrated; the others exist for the abl-pull ablation.
type PullPolicy int

const (
	// PullLeastMigrated is the paper's choice.
	PullLeastMigrated PullPolicy = iota
	// PullRandom picks uniformly.
	PullRandom
	// PullMostMigrated deliberately creates hot-potato tasks.
	PullMostMigrated
)

// Config tunes the balancer. The zero value is completed by
// DefaultConfig values in New.
type Config struct {
	// Interval is the balance interval (100 ms in all the paper's
	// experiments, §5.1).
	Interval time.Duration
	// Threshold is T_s: pull only from cores with
	// s_k/s_global < Threshold (0.9 in the paper, §5.2), which absorbs
	// measurement noise when queues are perfectly balanced.
	Threshold float64
	// PostMigrationBlock is the number of balance intervals a core
	// involved in a migration is blocked from further migrations
	// (at least 2, §5.2).
	PostMigrationBlock int
	// BlockNUMA blocks migrations that cross NUMA domains (the paper's
	// configuration on Barcelona).
	BlockNUMA bool
	// Jitter adds up to one balance interval of random delay to each
	// wake-up, breaking migration cycles between queues (§5.1).
	Jitter bool
	// NoiseStdDev perturbs each speed sample multiplicatively with
	// N(0, σ), modelling the taskstats measurement noise the paper
	// compensates for with T_s. Zero disables.
	NoiseStdDev float64
	// AccountingGranularity quantises exec-time readings, modelling the
	// tick-granular cputime accounting of the 2.6.28 kernel (default
	// 1 ms, a HZ=1000 kernel; 10 ms on a HZ=100 build). This is why
	// the paper finds that "using a lower value for the balancing
	// interval might produce inaccurate values for thread speeds"
	// (§6.1): at B close to the tick, Δexec carries a relative error
	// of tick/B. Negative disables quantisation.
	AccountingGranularity time.Duration
	// PullPolicy selects the victim thread (default least-migrated).
	PullPolicy PullPolicy
	// StartupDelay postpones the first balancing pass (the paper's
	// user-tunable delay for /proc to settle).
	StartupDelay time.Duration
	// Measure selects the speed signal (default the paper's CPU share).
	Measure Measure
	// SMTAware weights sampled speeds by the sibling hardware context's
	// occupancy — the paper's stated future work for the Nehalem
	// results ("weight the speed of a task according to the state of
	// the other hardware context", §6). Requires knowing the machine's
	// SMT contention factor, which a deployment calibrates once.
	SMTAware bool
	// EnableSwaps lets the balancer exchange two threads when a plain
	// pull cannot help: with one thread per core on cores of different
	// speeds, pulls only create doubled-up queues, but a swap rotates
	// fast-core time without ever lowering utilisation. This is an
	// extension beyond the paper's pull-only design (see DESIGN.md).
	EnableSwaps bool
	// RescanGroup, when non-empty, makes the balancer poll the machine
	// for new tasks whose Group matches — the paper's "can be easily
	// extended to balance applications with dynamic parallelism by
	// polling the /proc file system" (§5.2 footnote). New threads are
	// adopted and pinned to the core the adoption placement picks (the
	// predicted-fastest core when prediction is active and warm, the
	// least-loaded managed core otherwise — pinning them blindly to
	// wherever they happened to land is the short-job regression the
	// open-bakeoff exposed).
	RescanGroup string
	// Predict enables the anticipatory mode (internal/predict): the
	// balancer keeps decayed per-core and per-thread speed
	// distributions, runs its decisions on horizon-extrapolated
	// effective speeds, pulls from cores whose *predicted* speed
	// crosses T_s when the slowest-core probability bound clears
	// Predict.MinConfidence, and places admitted group threads on the
	// predicted-fastest core. With Predict.Horizon or Predict.Weight
	// zero the decisions degenerate to the reactive balancer exactly
	// (byte-identical output — pinned by difftest).
	Predict predict.Config
}

// DefaultConfig returns the paper's parameters.
func DefaultConfig() Config {
	return Config{
		Interval:              100 * time.Millisecond,
		Threshold:             0.9,
		PostMigrationBlock:    2,
		BlockNUMA:             true,
		Jitter:                true,
		NoiseStdDev:           0.01,
		AccountingGranularity: time.Millisecond,
	}
}

// Balancer is the speedbalancer process managing one application.
type Balancer struct {
	cfg Config
	m   *sim.Machine
	rng *xrand.RNG

	// managed is the set of application threads, fixed at Manage time
	// (the /proc PID scan); exited threads are skipped dynamically.
	managed []*task.Task
	// cores is the managed core set (the user-requested cores).
	cores []int

	// speeds[j] is the latest core-speed sample for managed core index
	// j — the only state shared between balancer threads (s_global is
	// derived from it).
	speeds []float64
	// sampled[j] is when core j's balancer last sampled.
	sampled []int64
	// lastStolen[j] is core j's steal-time reading (Core.StolenWall, the
	// /proc/stat steal+irq account) at its last sample, so the idle-core
	// speed estimate can discount kernel noise a newcomer would suffer.
	lastStolen []time.Duration
	// lastMigration[j] is when core j was last involved in a migration
	// (as source or destination).
	lastMigration []int64
	// lastExec[t] is each thread's exec-time reading at its core's last
	// sample; lastWork[t] the work-counter reading (MeasureWorkRate).
	// Entries are purged when the thread exits so churny workloads
	// (rescan groups, make -j competitors) do not grow them unboundedly.
	lastExec map[*task.Task]time.Duration
	lastWork map[*task.Task]float64
	// managedSet maps each managed thread to its rank (index in managed);
	// the rank orders the per-core membership lists.
	managedSet map[*task.Task]int
	// members[j] holds the live managed threads currently on managed core
	// index j, in rank order — the same threads, in the same order, that a
	// scan of managed filtered by CoreID would yield. Maintained through
	// the machine's core-change and task-done hooks so sample/balance do
	// O(threads-on-core) work instead of O(all threads).
	members [][]*task.Task
	// coreIdx maps a managed core's ID to its index j in cores.
	coreIdx map[int]int
	// liveManaged counts managed threads not yet Done (O(1) allDone).
	liveManaged int
	// scanned is the rescan cursor into Machine.Tasks(): tasks are
	// append-only and their Group is fixed at creation, so each rescan
	// only needs to look at tasks created since the previous one.
	scanned int
	// wakeTimers[j] is core index j's reusable balancer-wake timer.
	wakeTimers []*sim.Timer

	// tracker holds the predictive estimators (nil unless
	// Predict.Enabled); predActive caches Predict.Active() — the gate
	// on every decision the predictor may change.
	tracker    *predict.Tracker
	predActive bool
	// prevPlacer is the fork-placement policy the predictive placer
	// wraps; non-group tasks delegate to it unchanged.
	prevPlacer sim.Placer
	// effBuf, distBuf, idxBuf, probOf and predSlowest are the
	// per-balance-pass scratch buffers of the predictive path,
	// preallocated so prediction adds no steady-state allocation.
	// probOf[k] is core index k's slowest-probability bound this pass
	// (−1 when unsampled or cold); predSlowest[j] is the core index
	// balancer thread j predicted slowest at its previous pass (−1
	// none), resolved against the realized slowest for the hit/miss
	// audit.
	effBuf      []float64
	distBuf     []predict.Dist
	idxBuf      []int
	boundsBuf   []float64
	probOf      []float64
	predSlowest []int
	// occAtSample[j] is how many runnable tasks shared core j when its
	// speed was last sampled (≥1); the placer multiplies it back out to
	// recover the core's capacity from the per-thread speed, then
	// divides by the live occupancy.
	occAtSample []int

	// Migrations counts pulls performed, for reporting.
	Migrations int
	// Swaps counts thread exchanges (EnableSwaps extension).
	Swaps int
	// Adopted counts threads discovered by the dynamic rescan.
	Adopted int
	// PredictPulls counts anticipatory pulls: candidates whose realized
	// speed was still above threshold when the prediction fired.
	PredictPulls int
	// PredictHits and PredictMisses audit the slowest-core predictions
	// against the next pass's realized speeds.
	PredictHits, PredictMisses int
	// OnMigrate, if set, observes every pull (testing/tracing).
	OnMigrate func(t *task.Task, from, to int, now int64)
	stopped   bool
}

// New creates a balancer with cfg; zero fields take defaults.
func New(cfg Config) *Balancer {
	d := DefaultConfig()
	if cfg.Interval == 0 {
		cfg.Interval = d.Interval
	}
	if cfg.Threshold == 0 {
		cfg.Threshold = d.Threshold
	}
	if cfg.PostMigrationBlock == 0 {
		cfg.PostMigrationBlock = d.PostMigrationBlock
	}
	if cfg.AccountingGranularity == 0 {
		cfg.AccountingGranularity = d.AccountingGranularity
	}
	if cfg.Predict.Enabled {
		// Complete the estimator knobs; Horizon and Weight stay as
		// given — they are the degeneracy dials the ablations sweep.
		pd := predict.DefaultConfig()
		if cfg.Predict.MinConfidence == 0 {
			cfg.Predict.MinConfidence = pd.MinConfidence
		}
		if cfg.Predict.Decay == 0 {
			cfg.Predict.Decay = pd.Decay
		}
		if cfg.Predict.MinWeight == 0 {
			cfg.Predict.MinWeight = pd.MinWeight
		}
	}
	return &Balancer{
		cfg:        cfg,
		lastExec:   make(map[*task.Task]time.Duration),
		lastWork:   make(map[*task.Task]float64),
		managedSet: make(map[*task.Task]int),
	}
}

// Default creates a balancer with the paper's parameters.
func Default() *Balancer { return New(DefaultConfig()) }

// Launch builds-and-manages in one step: it pins the application's
// threads round-robin across the allowed cores (the initial distribution
// of §5.2, maximising hardware parallelism), starts them, and begins
// balancing. Call before or after Machine.Run has started.
func (b *Balancer) Launch(m *sim.Machine, app *spmd.App) {
	app.StartPinned()
	b.Manage(m, app.Tasks, app.Spec.Affinity)
	m.AddActor(b)
}

// Manage registers the threads and the managed core set without starting
// anything; use with AddActor for already-running tasks. Calling it again
// mid-run admits a new batch of threads: the managed core set stays fixed
// at what Start saw (the per-core state arrays are sized then), and a
// wake loop that drained after the previous batch finished is re-armed.
func (b *Balancer) Manage(m *sim.Machine, threads []*task.Task, cores cpuset.Set) {
	if cores.Empty() {
		cores = m.Topo.AllCores()
	}
	for _, t := range threads {
		if _, ok := b.managedSet[t]; !ok {
			b.addManaged(t)
		}
	}
	if b.wakeTimers == nil {
		b.cores = cores.Cores()
	} else if !b.stopped {
		b.ensureTimers(b.m.Now())
	}
}

// addManaged appends a thread to the managed set at the next rank and,
// once the balancer has started, threads it into the membership lists.
func (b *Balancer) addManaged(t *task.Task) {
	b.managedSet[t] = len(b.managed)
	b.managed = append(b.managed, t)
	if b.members == nil {
		return // Start will build the lists from managed
	}
	if t.State == task.Done {
		return
	}
	b.liveManaged++
	if j, ok := b.coreIdx[t.CoreID]; ok {
		// The newest rank sorts last, so this is an append.
		b.members[j] = append(b.members[j], t)
	}
}

// Start implements sim.Actor: one balancer thread per managed core.
func (b *Balancer) Start(m *sim.Machine) {
	b.m = m
	b.rng = m.RNG()
	if len(b.cores) == 0 {
		// Rescan-only usage (no explicit Manage): watch every core.
		b.cores = m.Topo.AllCores().Cores()
	}
	n := len(b.cores)
	b.speeds = make([]float64, n)
	b.sampled = make([]int64, n)
	b.lastStolen = make([]time.Duration, n)
	b.lastMigration = make([]int64, n)
	for j := range b.speeds {
		b.speeds[j] = -1 // unsampled
	}
	b.coreIdx = make(map[int]int, n)
	for j, c := range b.cores {
		b.coreIdx[c] = j
	}
	b.members = make([][]*task.Task, n)
	for _, t := range b.managed {
		if t.State == task.Done {
			continue
		}
		b.liveManaged++
		if j, ok := b.coreIdx[t.CoreID]; ok {
			b.members[j] = append(b.members[j], t)
		}
	}
	if b.cfg.Predict.Enabled {
		b.tracker = predict.NewTracker(b.cfg.Predict, n, b.cfg.Interval)
		b.predActive = b.cfg.Predict.Active()
		b.effBuf = make([]float64, n)
		b.occAtSample = make([]int, n)
	}
	if b.predActive {
		b.distBuf = make([]predict.Dist, 0, n)
		b.idxBuf = make([]int, 0, n)
		b.boundsBuf = make([]float64, n)
		b.probOf = make([]float64, n)
		b.predSlowest = make([]int, n)
		for j := range b.predSlowest {
			b.predSlowest[j] = -1
		}
		if b.cfg.RescanGroup != "" {
			// Wake-time placement: admitted group threads start on the
			// predicted-fastest core instead of wherever the wrapped
			// (load-based) placer would put them.
			b.prevPlacer = m.GetPlacer()
			m.SetPlacer(b)
		}
	}
	m.OnCoreChange(b.noteMove)
	m.OnTaskDone(b.noteDone)
	m.OnTaskStart(b.noteStart)
	m.OnOnlineChange(b.noteOnline)
	// The balancer threads may ride their cores' shard queues — and so
	// run inside parallel windows — only when every core they can read
	// or pull from (the whole managed set) lives in one shard. A rescan
	// group additionally scans machine-global task state, which pins the
	// timers to the control queue.
	shardLocal := b.cfg.RescanGroup == ""
	if shardLocal {
		shard := m.ShardOf(b.cores[0])
		for _, c := range b.cores[1:] {
			if m.ShardOf(c) != shard {
				shardLocal = false
				break
			}
		}
	}
	b.wakeTimers = make([]*sim.Timer, n)
	for j := range b.cores {
		j := j
		fn := func(now int64) { b.wake(j, now) }
		if shardLocal {
			b.wakeTimers[j] = m.NewCoreTimer(b.cores[j], fn)
		} else {
			b.wakeTimers[j] = m.NewTimer(fn)
		}
		delay := b.cfg.StartupDelay + b.cfg.Interval
		b.wakeTimers[j].Schedule(m.Now() + int64(delay) + b.jitter())
	}
}

// noteMove keeps the membership lists consistent with t.CoreID: the
// machine invokes it on first placement and on every migration,
// whichever component moved the task.
func (b *Balancer) noteMove(t *task.Task, from, to int) {
	rank, ok := b.managedSet[t]
	if !ok || t.State == task.Done {
		return
	}
	if j, ok := b.coreIdx[from]; ok {
		b.removeMember(j, t)
	}
	if j, ok := b.coreIdx[to]; ok {
		b.insertMember(j, t, rank)
	}
	// The thread's lastExec/lastWork baselines are deliberately NOT
	// rebased at the move. The pending Δexec since its last sample was
	// earned on the source core, so the destination's next window can
	// see a per-thread share above 1 and read spuriously fast for one
	// interval — exactly what the paper's /proc-reading user-level
	// balancer measures after a pull (per-thread counters are
	// cumulative; residence is whatever the scan finds). The artifact is
	// self-correcting after one window and acts as post-pull hysteresis:
	// a freshly loaded core briefly reads fast, which suppresses
	// immediate follow-on pulls toward its neighbours. Rebasing here
	// (measured) costs EP ~15% of its speedup via over-pulling.
	// Hotplug-drain staleness is handled separately: noteOnline
	// invalidates the *core's* sample window at unplug and replug.
}

// noteOnline invalidates a managed core's speed sample when the core is
// unplugged or replugged: a stale sample would otherwise keep skewing
// s_global — and keep attracting pulls toward the measurement of a core
// that no longer runs anything — until the core's own balancer thread
// next woke. The sample window restarts at the transition so the first
// post-replug sample does not average across the offline gap.
func (b *Balancer) noteOnline(c *sim.Core, online bool) {
	j, ok := b.coreIdx[c.ID()]
	if !ok {
		return
	}
	b.speeds[j] = -1
	b.sampled[j] = b.m.Now()
	b.lastStolen[j] = c.StolenWall()
	if b.tracker != nil {
		// The old distribution is evidence about a machine that no
		// longer exists on either side of the transition.
		b.tracker.ResetCore(j)
	}
}

// noteStart is the admission-side mirror of noteDone: the machine
// invokes it when a task first reaches a core. The wake timers
// deliberately die when there is nothing left to balance (allDone for a
// fixed set, or a drained machine under a rescan group); before this
// hook, a thread admitted afterwards — an open-system arrival, or a
// late Manage batch — was never balanced because no timer remained to
// observe it. Admission re-arms the loop. Task starts are machine-global
// events (never inside a parallel shard window), so the re-arm happens
// at a globally synchronised instant on every engine configuration.
func (b *Balancer) noteStart(t *task.Task) {
	if b.stopped || b.wakeTimers == nil {
		return
	}
	if _, ok := b.managedSet[t]; !ok {
		if b.cfg.RescanGroup == "" || t.Group != b.cfg.RescanGroup {
			return
		}
	}
	b.ensureTimers(b.m.Now())
}

// ensureTimers restarts every dead wake timer one interval (plus jitter)
// from now. Pending timers are left alone, so a burst of admissions
// neither postpones nor duplicates an already-scheduled pass.
func (b *Balancer) ensureTimers(now int64) {
	for j := range b.wakeTimers {
		if !b.wakeTimers[j].Pending() {
			b.wakeTimers[j].Schedule(now + int64(b.cfg.Interval) + b.jitter())
		}
	}
}

// noteDone drops an exited managed thread from its membership list and
// purges its speed-accounting map entries, keeping both bounded across
// churny workloads.
func (b *Balancer) noteDone(t *task.Task) {
	if _, ok := b.managedSet[t]; !ok {
		return
	}
	if j, ok := b.coreIdx[t.CoreID]; ok {
		b.removeMember(j, t)
	}
	delete(b.lastExec, t)
	delete(b.lastWork, t)
	if b.tracker != nil {
		b.tracker.ForgetThread(t.ID)
	}
	b.liveManaged--
}

// insertMember inserts t into members[j] at its rank position, so the
// list stays in managed order — the iteration order sample and
// pickVictim depend on for bit-identical results.
func (b *Balancer) insertMember(j int, t *task.Task, rank int) {
	l := b.members[j]
	i := sort.Search(len(l), func(i int) bool { return b.managedSet[l[i]] > rank })
	l = append(l, nil)
	copy(l[i+1:], l[i:])
	l[i] = t
	b.members[j] = l
}

// removeMember deletes t from members[j] if present.
func (b *Balancer) removeMember(j int, t *task.Task) {
	l := b.members[j]
	for i, o := range l {
		if o == t {
			copy(l[i:], l[i+1:])
			l[len(l)-1] = nil
			b.members[j] = l[:len(l)-1]
			return
		}
	}
}

// Stop halts further balancing (the balancer exits with the app).
func (b *Balancer) Stop() { b.stopped = true }

func (b *Balancer) jitter() int64 {
	if !b.cfg.Jitter {
		return 0
	}
	return b.rng.Jitter(int64(b.cfg.Interval))
}

// wake is one balancer-thread activation on managed core index j.
func (b *Balancer) wake(j int, now int64) {
	if b.stopped {
		return
	}
	if j == 0 && b.cfg.RescanGroup != "" {
		b.rescan(now)
	}
	if b.allDone() && b.cfg.RescanGroup == "" {
		// Fixed set finished: let the wake loop drain. A later Manage
		// batch or task admission restarts it through noteStart.
		return
	}
	if b.cfg.RescanGroup != "" && b.m.LiveTasks() == 0 {
		// Dynamic group, machine drained: with no live task left to
		// spawn new group members, rescanning forever would keep the
		// event queue busy after the workload has exited. A mid-run
		// admission (an open-system arrival) re-arms the loop through
		// noteStart, so dying here is safe, not just frugal.
		return
	}
	if !b.m.Cores[b.cores[j]].Online() {
		// The core was hot-unplugged: its threads were drained elsewhere,
		// so there is nothing to measure and pulling work here would be a
		// bug. Keep the thread alive (the real balancer thread would just
		// find itself migrated off the dead core) and keep the sample
		// window fresh for the replug.
		b.speeds[j] = -1
		b.sampled[j] = now
		b.lastStolen[j] = b.m.Cores[b.cores[j]].StolenWall()
		if b.tracker != nil {
			b.tracker.ResetCore(j)
		}
		b.wakeTimers[j].Schedule(now + int64(b.cfg.Interval) + b.jitter())
		return
	}
	b.sample(j, now)
	b.balance(j, now)
	b.wakeTimers[j].Schedule(now + int64(b.cfg.Interval) + b.jitter())
}

// rescan adopts newly appeared tasks of the managed group — the §5.2
// dynamic-parallelism extension (polling /proc for new PIDs). Adopted
// threads are pinned so the Linux balancer stops moving them; speed
// balancing takes over. The pin target is the adoption placement — the
// predicted-fastest core when prediction is warm, the least-loaded
// managed core otherwise — NOT blindly the core the thread happened to
// land on: pinning short open jobs wherever the fork placer's stale
// snapshot dropped them was the low-ρ p95 regression the open-bakeoff
// exposed (a job shorter than the balance interval finishes before any
// pull can rescue it, so the adoption pin is the only placement it ever
// gets). Tasks are created in order and never change group, so only
// those that appeared since the last rescan need looking at.
func (b *Balancer) rescan(now int64) {
	tasks := b.m.Tasks()
	for _, t := range tasks[b.scanned:] {
		if t.Group != b.cfg.RescanGroup || t.State == task.Done {
			continue
		}
		if _, ok := b.managedSet[t]; ok {
			continue
		}
		b.addManaged(t)
		b.Adopted++
		if t.CoreID >= 0 {
			dst := b.adoptionCore(t)
			t.Affinity = cpuset.Of(dst)
			if dst != t.CoreID {
				// A placement correction, not a balance pull: it does
				// not consume the post-migration block.
				b.m.MigrateNow(t, dst, "speedbal-adopt")
			}
		}
	}
	b.scanned = len(tasks)
}

// adoptionCore picks where a freshly adopted thread is pinned: the
// predicted-fastest managed core when the predictor is active and warm,
// else the least-loaded online managed core (ties prefer the thread's
// current core — no gratuitous migration — then the lowest ID). When no
// managed core is usable the thread keeps its current core, the paper's
// original pin.
func (b *Balancer) adoptionCore(t *task.Task) int {
	if c, ok := b.predictedFastestCore(t); ok {
		return c
	}
	best, bestLoad := -1, 0
	for _, core := range b.cores {
		c := b.m.Cores[core]
		if !c.Online() || !t.Affinity.Has(core) {
			continue
		}
		l := c.NrRunnable()
		if best == -1 || l < bestLoad || (l == bestLoad && core == t.CoreID) {
			best, bestLoad = core, l
		}
	}
	if best < 0 {
		return t.CoreID
	}
	return best
}

// predictedFastestCore scores the managed cores by the speed a newcomer
// would get *now*: the predicted per-thread speed, multiplied back by
// the sample-time occupancy to recover the core's capacity, divided by
// the live occupancy plus the newcomer. Rebasing to live occupancy is
// what keeps the placer at least as current as least-loaded (which it
// degenerates to on a homogeneous clean machine) while still steering
// around cores whose *capacity* the predictor has learned is low —
// IRQ-saturated, down-clocked — which queue lengths cannot show.
// A core whose distribution is still cold — start of run, or freshly
// replugged after ResetCore — is scored at its nominal capacity (base
// clock, live occupancy): the optimistic prior keeps the placer engaged
// under hotplug churn, where some core is nearly always cold, and
// degenerates to least-loaded when every core is cold. Returns ok=false
// only when prediction is off or no managed core is eligible.
func (b *Balancer) predictedFastestCore(t *task.Task) (int, bool) {
	if !b.predActive {
		return 0, false
	}
	h := b.cfg.Predict.Horizon
	best, bestScore := -1, 0.0
	for j, core := range b.cores {
		c := b.m.Cores[core]
		if !c.Online() || !t.Affinity.Has(core) {
			continue
		}
		cap := c.Info().BaseSpeed
		if b.tracker.CoreWarm(j) {
			cap = b.tracker.Predicted(j, h) * float64(b.occAtSample[j])
		}
		s := cap / float64(c.NrRunnable()+1)
		if best == -1 || s > bestScore {
			best, bestScore = core, s
		}
	}
	if best < 0 {
		return 0, false
	}
	return best, true
}

// Place implements sim.Placer: managed-group tasks start on the
// predicted-fastest core; everything else delegates to the placer this
// one wrapped at Start. Installed only when prediction is active and a
// rescan group is configured — placement is where anticipation pays
// most, since a job shorter than the balance interval is never touched
// again.
func (b *Balancer) Place(m *sim.Machine, t *task.Task) int {
	if t.Group == b.cfg.RescanGroup {
		if c, ok := b.predictedFastestCore(t); ok {
			if reg := m.Metrics(); reg != nil {
				reg.Counter("speedbal.predict.place").Inc()
			}
			return c
		}
	}
	return b.prevPlacer.Place(m, t)
}

// allDone reports whether every managed thread has exited. With a
// rescan group configured, an empty managed set means "nothing yet",
// not "done".
func (b *Balancer) allDone() bool {
	if len(b.managed) == 0 {
		return b.cfg.RescanGroup == ""
	}
	return b.liveManaged == 0
}

// sample computes the local core speed: the average, over the managed
// threads currently on the core, of Δexec/Δwall since this balancer's
// previous sample (steps 1–2 of §5.1).
func (b *Balancer) sample(j int, now int64) {
	coreID := b.cores[j]
	c := b.m.Cores[coreID]
	c.Sync()
	wall := time.Duration(now - b.sampled[j])
	if wall <= 0 {
		// A zero-length window carries no information: leave the window
		// open (do not consume it) so the next wake samples across the
		// whole elapsed interval instead of publishing a stale speed.
		return
	}
	b.sampled[j] = now
	// Difference the core's steal account over the window: the share of
	// wall time kernel noise took regardless of what ran. Busy cores
	// already see theft through their threads' exec times; the idle-core
	// estimate below needs it read directly.
	stolenNow := c.StolenWall()
	stolenFrac := float64(stolenNow-b.lastStolen[j]) / float64(wall)
	b.lastStolen[j] = stolenNow
	if stolenFrac < 0 {
		stolenFrac = 0
	} else if stolenFrac > 1 {
		stolenFrac = 1
	}
	var sum float64
	var cnt int
	for _, t := range b.members[j] {
		var s float64
		if b.cfg.Measure == MeasureWorkRate {
			// Performance-counter extension (§7): retired work per
			// wall time. The counter sees contention losses directly.
			d := t.WorkDone - b.lastWork[t]
			b.lastWork[t] = t.WorkDone
			s = d / float64(wall)
		} else {
			// Read exec time the way the taskstats interface reports
			// it: quantised to the accounting tick.
			read := t.ExecTime
			if g := b.cfg.AccountingGranularity; g > 0 {
				read = read / g * g
			}
			d := read - b.lastExec[t]
			b.lastExec[t] = read
			// Weight the CPU share by the core's relative clock: §4
			// notes the argument "can be easily extended to
			// heterogeneous systems ... by weighting with the relative
			// core speed". The clock rating is static information
			// (/sys), so the user-level balancer may use it.
			s = task.Speed(d, wall) * c.Info().BaseSpeed
			if b.cfg.SMTAware {
				// Future-work extension (§6): discount the share by
				// the sibling hardware context's utilisation.
				s *= b.smtFactor(coreID)
			}
		}
		if b.cfg.NoiseStdDev > 0 {
			s *= 1 + b.cfg.NoiseStdDev*b.rng.NormFloat64()
			if s < 0 {
				s = 0
			}
		}
		if b.tracker != nil {
			// Feed the per-thread distribution from the same (noisy)
			// reading the balancer acts on — the predictor models what
			// the balancer can measure, not ground truth.
			b.tracker.ObserveThread(t.ID, s)
		}
		sum += s
		cnt++
	}
	occ := c.NrRunnable()
	if occ < 1 {
		occ = 1
	}
	if cnt == 0 {
		// No managed thread here: the core's "speed" for the
		// application is the share a newcomer would get — high when
		// the core is idle, low when unrelated work occupies it or
		// kernel noise (the steal account) is eating it.
		occ = c.NrRunnable() + 1
		s := (1 - stolenFrac) / float64(occ) * c.Info().BaseSpeed
		if b.cfg.SMTAware {
			s *= b.smtFactor(coreID)
		}
		b.speeds[j] = s
	} else {
		b.speeds[j] = sum / float64(cnt)
	}
	if b.tracker != nil {
		// The tracker's last-sample field mirrors speeds[j] exactly;
		// that identity is what makes a zero-horizon prediction
		// degenerate to the realized sample bit-for-bit. occAtSample
		// remembers how many ways the core was being shared when the
		// sample was taken, so the placer can rebase the per-thread
		// speed to the live occupancy at fork time.
		b.tracker.ObserveCore(j, b.speeds[j], now)
		b.occAtSample[j] = occ
	}
	if reg := b.m.Metrics(); reg != nil {
		reg.Histogram("speedbal.core_speed", speedBuckets).Observe(b.speeds[j])
	}
}

// speedBuckets spans the plausible core-speed range (base clocks ≈ 1;
// contention and sharing push samples toward 0).
var speedBuckets = []float64{0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0, 1.25, 1.5, 2.0}

// probBuckets spans [0,1] for the predicted slowest-core probability
// histogram (speedbal.predict.slowest_p).
var probBuckets = []float64{0.05, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 0.95, 0.99}

// smtFactor returns the speed discount for the sibling hardware
// context's current occupancy.
func (b *Balancer) smtFactor(coreID int) float64 {
	info := b.m.Cores[coreID].Info()
	if info.SMTSiblings.Count() <= 1 {
		return 1
	}
	for _, s := range info.SMTSiblings.Cores() {
		if s != coreID && !b.m.Cores[s].Idle() {
			return b.m.Config().SMTContentionFactor
		}
	}
	return 1
}

// globalSpeed averages the per-core speeds (step 3 of §5.1). Cores not
// yet sampled are skipped.
func (b *Balancer) globalSpeed() float64 { return avgSpeed(b.speeds) }

// avgSpeed averages the sampled (non-negative) entries of a speed
// vector — realized or effective.
func avgSpeed(xs []float64) float64 {
	var sum float64
	var n int
	for _, s := range xs {
		if s >= 0 {
			sum += s
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// effSpeeds fills effBuf with the effective speeds the balance pass
// decides on: each realized sample blended toward its prediction,
// eff[k] = s_k + Weight·(Predicted(k, Horizon) − s_k). The blend is
// algebraically — and, because Predicted(k, 0) returns the realized
// sample verbatim, bit-for-bit — the identity when Horizon or Weight is
// zero, which is the reactive-degeneracy contract the difftest property
// test pins down. Unsampled (negative) and cold cores pass through
// unchanged.
func (b *Balancer) effSpeeds() []float64 {
	if b.tracker == nil {
		return b.speeds
	}
	for k, sk := range b.speeds {
		e := sk
		if sk >= 0 && b.tracker.CoreWarm(k) {
			p := b.tracker.Predicted(k, b.cfg.Predict.Horizon)
			e = sk + b.cfg.Predict.Weight*(p-sk)
			if e < 0 {
				e = 0
			}
		}
		b.effBuf[k] = e
	}
	return b.effBuf
}

// slowestProbs computes, for every sampled+warm+online managed core,
// the order-statistic lower bound on "this core is the slowest next
// interval" from the effective means and the estimators' spreads.
// probOf[k] is −1 for cores with no usable distribution.
func (b *Balancer) slowestProbs(eff []float64) []float64 {
	b.distBuf = b.distBuf[:0]
	b.idxBuf = b.idxBuf[:0]
	for k, e := range eff {
		b.probOf[k] = -1
		if e < 0 || !b.tracker.CoreWarm(k) || !b.m.Cores[b.cores[k]].Online() {
			continue
		}
		b.distBuf = append(b.distBuf, predict.Dist{Mean: e, Std: b.tracker.CoreStd(k)})
		b.idxBuf = append(b.idxBuf, k)
	}
	if len(b.distBuf) > 0 {
		out := predict.SlowestLowerBounds(b.distBuf, b.boundsBuf[:len(b.distBuf)])
		for i, k := range b.idxBuf {
			b.probOf[k] = out[i]
		}
	}
	return b.probOf
}

// marginalBelow is the predictor's marginal confidence that core index
// k's speed stays below the pull threshold next interval: the CDF of
// its (effective-mean, decayed-spread) distribution at T_s times the
// effective global speed.
func (b *Balancer) marginalBelow(k int, skEff, sgEff float64) float64 {
	d := predict.Dist{Mean: skEff, Std: b.tracker.CoreStd(k)}
	return d.CDF(b.cfg.Threshold * sgEff)
}

// auditPrediction resolves balancer thread j's previous slowest-core
// prediction against the realized speeds of this pass (hit/miss
// counters), then records the new prediction: the core with the lowest
// effective speed among those with a live distribution. The
// order-statistic bound is the prediction's *confidence*, observed into
// the histogram — it is not the point prediction itself, because the
// midpoint bounds all collapse to zero when several cores crowd the
// slow side, which would degenerate an argmax to the first index.
func (b *Balancer) auditPrediction(j int, eff, probs []float64) {
	reg := b.m.Metrics()
	if prev := b.predSlowest[j]; prev >= 0 {
		arg := -1
		var min float64
		for k, s := range b.speeds {
			if s < 0 || !b.m.Cores[b.cores[k]].Online() {
				continue
			}
			if arg == -1 || s < min {
				arg, min = k, s
			}
		}
		if arg >= 0 {
			if arg == prev {
				b.PredictHits++
				if reg != nil {
					reg.Counter("speedbal.predict.hit").Inc()
				}
			} else {
				b.PredictMisses++
				if reg != nil {
					reg.Counter("speedbal.predict.miss").Inc()
				}
			}
		}
	}
	best := -1
	for k, p := range probs {
		if p >= 0 && (best == -1 || eff[k] < eff[best]) {
			best = k
		}
	}
	b.predSlowest[j] = best
	if best >= 0 && reg != nil {
		reg.Histogram("speedbal.predict.slowest_p", probBuckets).Observe(probs[best])
	}
}

// balance is step 4 of §5.1: if the local core is faster than the global
// average, pull one thread from a suitable slower core. With prediction
// active the decision runs on *effective* speeds (realized blended
// toward predicted), and a candidate that qualifies only predictively —
// its realized speed is still above T_s — additionally needs its
// slowest-core probability bound to clear MinConfidence before the pull
// fires as a KindPredictMigrate.
func (b *Balancer) balance(j int, now int64) {
	sj := b.speeds[j]
	if sj < 0 {
		return
	}
	sg := b.globalSpeed()
	// Effective (prediction-blended) counterparts. The reactive decision
	// path below runs on realized speeds exactly as always; the
	// effective values only ever *add* anticipatory candidates, so
	// prediction cannot suppress a pull the reactive balancer would have
	// made — misprediction degrades toward reactive, never below it.
	eff := b.effSpeeds()
	sjEff, sgEff := eff[j], avgSpeed(eff)
	var probs []float64
	if b.predActive {
		probs = b.slowestProbs(eff)
		b.auditPrediction(j, eff, probs)
	}
	local := b.cores[j]
	tr := b.m.Tracing()
	if tr {
		b.m.Emit(trace.Event{Kind: trace.KindBalanceWake, Core: local, Label: "speedbal",
			SLocal: sj, SGlobal: sg, Threshold: b.cfg.Threshold})
	}
	reactivePass := sg > 0 && sj > sg
	predictPass := b.predActive && sgEff > 0 && sjEff > sgEff
	if !reactivePass && !predictPass {
		if tr {
			b.traceSkip(local, local, "not-above-global", 0, sg)
		}
		return
	}
	block := int64(b.cfg.PostMigrationBlock) * int64(b.cfg.Interval)
	if now-b.lastMigration[j] < block {
		if tr {
			b.traceSkip(local, local, "post-migration-block", 0, sg)
		}
		return
	}
	// Collect the suitable remote cores, slowest first; pull from the
	// slowest one that actually holds a migratable managed thread (a
	// core occupied only by unrelated work is slow but has nothing for
	// us to take).
	type cand struct {
		k        int
		sk       float64
		dist     topo.Distance
		predOnly bool
	}
	var cands []cand
	for k, remote := range b.cores {
		if k == j || b.speeds[k] < 0 {
			continue
		}
		if !b.m.Cores[remote].Online() {
			// Unplugged since its last sample: nothing runs there and a
			// swap would try to push a thread onto a dead core.
			if tr {
				b.traceSkip(local, remote, "offline", b.speeds[k], sg)
			}
			continue
		}
		sk := b.speeds[k]
		// Reactive qualification, on realized speeds — unchanged from
		// the paper's test. Failing it, a candidate may still qualify
		// *predictively*: its effective speed crosses the threshold and
		// the predictor is confident enough (the order-statistic
		// slowest-core bound, or — since that bound collapses when
		// several cores crowd the slow side of the midpoint — the
		// marginal probability of sub-threshold speed next interval).
		predOnly := false
		if !(reactivePass && sk < sg && sk/sg < b.cfg.Threshold) {
			skEff := eff[k]
			predOK := predictPass && probs[k] >= 0 &&
				skEff < sgEff && skEff/sgEff < b.cfg.Threshold
			if predOK {
				conf := probs[k]
				if mc := b.marginalBelow(k, skEff, sgEff); mc > conf {
					conf = mc
				}
				if conf < b.cfg.Predict.MinConfidence {
					if tr {
						b.traceSkip(local, remote, "predict-low-confidence", skEff, sgEff)
					}
					continue
				}
			}
			if !predOK {
				if tr {
					b.traceSkip(local, remote, "above-threshold", sk, sg)
				}
				continue
			}
			predOnly, sk = true, skEff
		}
		if now-b.lastMigration[k] < block {
			if tr {
				b.traceSkip(local, remote, "post-migration-block", sk, sg)
			}
			continue
		}
		d := b.m.Topo.Distance(remote, local)
		if b.cfg.BlockNUMA && d >= topo.DistNUMA {
			if tr {
				b.traceSkip(local, remote, "numa-block", sk, sg)
			}
			continue
		}
		if b.cfg.SMTAware && d == topo.DistSMT {
			// Moving a thread between two contexts of the same
			// physical core cannot change its SMT contention.
			if tr {
				b.traceSkip(local, remote, "smt-same-core", sk, sg)
			}
			continue
		}
		cands = append(cands, cand{k, sk, d, predOnly})
	}
	// Prefer nearby sources: migrations between cache-sharing cores are
	// orders of magnitude cheaper, which is why §5.2 lets them happen
	// more often ("migrations ... twice as often between cores that
	// share a cache"). Ties break toward the slowest core.
	sort.Slice(cands, func(a, bb int) bool {
		if cands[a].dist != cands[bb].dist {
			return cands[a].dist < cands[bb].dist
		}
		if cands[a].sk != cands[bb].sk {
			return cands[a].sk < cands[bb].sk
		}
		return cands[a].k < cands[bb].k
	})
	for _, c := range cands {
		victim := b.pickVictim(b.cores[c.k], local)
		if victim == nil {
			if tr {
				b.traceSkip(local, b.cores[c.k], "no-victim", c.sk, sg)
			}
			continue
		}
		remote := b.cores[c.k]
		// Anticipatory pulls never take the swap path: the swap is a
		// remedy for a *realized* one-thread-per-core imbalance, and
		// trading threads on a prediction would double the misprediction
		// cost (two wrong moves instead of one).
		if c.predOnly {
			if tr {
				b.m.Emit(trace.Event{Kind: trace.KindPredictMigrate, Core: local,
					Task: victim.ID, TaskName: victim.Name, Src: remote, Dst: local,
					SLocal: sjEff, SK: b.speeds[c.k], SPred: c.sk, SGlobal: sgEff,
					Threshold: b.cfg.Threshold})
			}
			victim.Affinity = cpuset.Of(local)
			b.m.MigrateNow(victim, local, "speedbal-predict")
			b.Migrations++
			b.PredictPulls++
			if reg := b.m.Metrics(); reg != nil {
				reg.Counter("speedbal.predict.pull").Inc()
			}
			if b.OnMigrate != nil {
				b.OnMigrate(victim, remote, local, now)
			}
			b.lastMigration[j] = now
			b.lastMigration[c.k] = now
			return
		}
		if b.cfg.EnableSwaps && b.countManaged(remote) == 1 && b.countManaged(local) >= 1 {
			// Pull-only balancing cannot help a one-thread-per-core
			// imbalance (the pull would just double up the local
			// queue): exchange the two threads instead, rotating
			// fast-core time at constant utilisation.
			give := b.pickVictim(local, remote)
			if give != nil && give != victim {
				if tr {
					b.m.Emit(trace.Event{Kind: trace.KindBalancePull, Core: local,
						Task: victim.ID, TaskName: victim.Name, Src: remote, Dst: local,
						SLocal: sj, SK: c.sk, SGlobal: sg, Threshold: b.cfg.Threshold})
				}
				victim.Affinity = cpuset.Of(local)
				give.Affinity = cpuset.Of(remote)
				b.m.MigrateNow(victim, local, "speedbal-swap")
				b.m.MigrateNow(give, remote, "speedbal-swap")
				b.Swaps++
				if b.OnMigrate != nil {
					b.OnMigrate(victim, remote, local, now)
					b.OnMigrate(give, local, remote, now)
				}
				b.lastMigration[j] = now
				b.lastMigration[c.k] = now
				return
			}
		}
		// sched_setaffinity: re-pin to the destination; the Linux
		// balancer will not touch it afterwards (§5.2).
		if tr {
			b.m.Emit(trace.Event{Kind: trace.KindBalancePull, Core: local,
				Task: victim.ID, TaskName: victim.Name, Src: remote, Dst: local,
				SLocal: sj, SK: c.sk, SGlobal: sg, Threshold: b.cfg.Threshold})
		}
		victim.Affinity = cpuset.Of(local)
		b.m.MigrateNow(victim, local, "speedbal")
		b.Migrations++
		if b.OnMigrate != nil {
			b.OnMigrate(victim, b.cores[c.k], local, now)
		}
		b.lastMigration[j] = now
		b.lastMigration[c.k] = now
		return
	}
}

// traceSkip records a balancer decision not to pull. remote == local
// marks a whole-pass skip rather than a per-candidate one (the exporter
// omits the candidate fields in that case).
func (b *Balancer) traceSkip(local, remote int, reason string, sk, sg float64) {
	b.m.Emit(trace.Event{Kind: trace.KindBalanceSkip, Core: local, Src: remote,
		Label: "speedbal", Reason: reason, SK: sk, SGlobal: sg})
}

// countManaged returns the number of live managed threads on the core.
func (b *Balancer) countManaged(core int) int {
	return len(b.members[b.coreIdx[core]])
}

// pickVictim chooses which managed thread to pull off the remote core:
// the least-migrated by default.
func (b *Balancer) pickVictim(remote, local int) *task.Task {
	var cands []*task.Task
	for _, t := range b.members[b.coreIdx[remote]] {
		if t.State == task.Sleeping || t.State == task.Blocked {
			// Re-pinning a sleeper is possible but pointless: its
			// speed contribution is already reflected in co-runners.
			continue
		}
		cands = append(cands, t)
	}
	if len(cands) == 0 {
		return nil
	}
	switch b.cfg.PullPolicy {
	case PullRandom:
		return cands[b.rng.Intn(len(cands))]
	case PullMostMigrated:
		pick := cands[0]
		for _, t := range cands[1:] {
			if t.Migrations > pick.Migrations {
				pick = t
			}
		}
		return pick
	default:
		// PullLeastMigrated, preferring a queued thread over the
		// running one at equal migration counts: yanking a thread
		// mid-compute (sched_setaffinity moves it immediately)
		// disrupts more than redirecting one that is waiting its turn.
		// With prediction active an intermediate tie-break applies
		// first: pull the thread with the lowest tracked speed mean —
		// the one suffering most on the slow core gains most from the
		// move. Inert when prediction is off or either mean is unknown,
		// so the reactive victim choice is unchanged.
		better := func(t, pick *task.Task) bool {
			if t.Migrations != pick.Migrations {
				return t.Migrations < pick.Migrations
			}
			if b.predActive {
				tm, tok := b.tracker.ThreadMean(t.ID)
				pm, pok := b.tracker.ThreadMean(pick.ID)
				if tok && pok && tm != pm {
					return tm < pm
				}
			}
			return pick.State == task.Running && t.State != task.Running
		}
		pick := cands[0]
		for _, t := range cands[1:] {
			if better(t, pick) {
				pick = t
			}
		}
		return pick
	}
}
