package exp

import (
	"fmt"
	"time"

	"repro/internal/cpuset"
	"repro/internal/npb"
	"repro/internal/spmd"
	"repro/internal/stats"
	"repro/internal/topo"
)

func init() {
	Register(&Experiment{
		ID:       "table2",
		Title:    "Selected NAS parallel benchmarks: characteristics",
		PaperRef: "Table 2",
		Expect: "bt.A: RSS 0.4GB, speedups 4.6/10.0; ft.B: 5.6GB, 5.3/10.5, " +
			"inter-barrier 73–206 ms; is.C: 3.1GB, 4.8/8.4, 44–63 ms; sp.A: 0.1GB, " +
			"7.2/12.4, ~2 ms; all 16-core run times within [2 s, 80 s].",
		Run: runTable2,
	})
}

// paperTable2 holds the paper's reported values for side-by-side
// comparison (zero = not reported).
var paperTable2 = map[string]struct {
	rssGB              float64
	speedupT, speedupB float64
	interBarrierMs     float64
}{
	"bt.A": {rssGB: 0.4, speedupT: 4.6, speedupB: 10.0},
	"ft.B": {rssGB: 5.6, speedupT: 5.3, speedupB: 10.5, interBarrierMs: 73},
	"is.C": {rssGB: 3.1, speedupT: 4.8, speedupB: 8.4, interBarrierMs: 44},
	"sp.A": {rssGB: 0.1, speedupT: 7.2, speedupB: 12.4, interBarrierMs: 2},
	"cg.B": {interBarrierMs: 4},
	"ep.C": {},
}

func runTable2(ctx *Context) []*Table {
	t := &Table{
		Title: "Benchmark characteristics: measured (one-per-core, 16 threads on 16 cores) vs paper",
		Columns: []string{"bench", "RSS GB", "paper", "speedupT", "paper", "speedupB", "paper",
			"barrier ms (T)", "paper", "runT s"},
	}
	run := NewRunner(ctx)
	config := 4000
	for _, b := range npb.Suite() {
		spec := ScaleSpec(ctx, b.Spec(16, spmd.UPC(), cpuset.All(16)))
		spT, spB, rtT := &stats.Sample{}, &stats.Sample{}, &stats.Sample{}
		barrierMs := new(float64)
		run.Repeat(config, RunOpts{
			Topo: topo.Tigerton, Strategy: StratPinned, Spec: spec,
		}, func(_ int, r RunResult) {
			spT.Add(r.Speedup)
			rtT.AddDuration(r.Elapsed)
			if spec.Iterations > 0 {
				*barrierMs = r.Elapsed.Seconds() * 1000 / float64(spec.Iterations)
			}
		})
		config++
		run.Repeat(config, RunOpts{
			Topo: topo.Barcelona, Strategy: StratPinned, Spec: spec,
		}, func(_ int, r RunResult) { spB.Add(r.Speedup) })
		config++

		run.Then(func() {
			p := paperTable2[b.Name]
			rssGB := float64(b.RSSPerThread) * 16 / float64(1<<30)
			t.AddRow(b.Name,
				rssGB, orDash(p.rssGB),
				spT.Mean(), orDash(p.speedupT),
				spB.Mean(), orDash(p.speedupB),
				*barrierMs, orDash(p.interBarrierMs),
				rtT.Mean())
			ctx.Logf("table2: %s done", b.Name)
		})
	}
	run.Wait()
	t.Note("speedups relative to serial work on an uncontended unit-speed core; run time at scale 1/%d of paper scale", ctx.Scale)
	t.Note("ep.C has a single compute phase, so its barrier column reflects the whole run")
	if ctx.Scale > 1 {
		t.Note("run times and barrier intervals are scaled down by the context scale; multiply by %d for paper scale", ctx.Scale)
	}
	return []*Table{t}
}

func orDash(v float64) string {
	if v == 0 {
		return "-"
	}
	return fmt.Sprintf("%.4g", v)
}

// predictedTable2 is used by tests: the closed-form inter-barrier
// prediction for the Tigerton capacity.
func predictedTable2(b npb.Benchmark) time.Duration {
	return b.InterBarrierTime(1.0)
}
