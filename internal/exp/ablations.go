package exp

import (
	"fmt"
	"time"

	"repro/internal/cpuset"
	"repro/internal/npb"
	"repro/internal/perturb"
	"repro/internal/predict"
	"repro/internal/speedbal"
	"repro/internal/spmd"
	"repro/internal/stats"
	"repro/internal/topo"
)

// The ablations probe the design choices §5 calls out: the speed
// threshold T_s, the balance interval, wake-up jitter, NUMA blocking,
// and the least-migrated pull policy.

func init() {
	Register(&Experiment{
		ID:       "abl-ts",
		Title:    "Ablation: speed threshold T_s",
		PaperRef: "§5.2 (T_s = 0.9)",
		Expect: "T_s near 1.0 reacts to measurement noise with spurious " +
			"migrations on balanced runs; too low a threshold stops profitable " +
			"pulls on imbalanced runs. 0.9 gets both right.",
		Run: runAblTs,
	})
	Register(&Experiment{
		ID:       "abl-int",
		Title:    "Ablation: balance interval",
		PaperRef: "§6.1 (100 ms default; 20 ms best for EP)",
		Expect: "Cheap-migration workloads (EP) favour short intervals; " +
			"100 ms is the best compromise once migration costs matter.",
		Run: runAblInterval,
	})
	Register(&Experiment{
		ID:       "abl-jit",
		Title:    "Ablation: randomised wake-up jitter",
		PaperRef: "§5.1 (break migration cycles)",
		Expect: "Without jitter, balancers synchronise and chase the same " +
			"slow core (hot-potato cycles): more migrations for equal or worse " +
			"run time.",
		Run: runAblJitter,
	})
	Register(&Experiment{
		ID:       "abl-numa",
		Title:    "Ablation: NUMA migration blocking",
		PaperRef: "§5.2 (block inter-node migrations)",
		Expect: "Allowing cross-node migrations on Barcelona moves threads away " +
			"from their first-touch pages; memory-bound benchmarks slow down.",
		Run: runAblNUMA,
	})
	Register(&Experiment{
		ID:       "abl-horizon",
		Title:    "Ablation: prediction horizon vs speed threshold",
		PaperRef: "beyond the paper: the predictive mode's horizon dial against §5.2's T_s",
		Expect: "horizon 0 degenerates to the reactive balancer at every " +
			"T_s; armed horizons edge the speedup up via the predictive " +
			"victim tie-break and confidence gating, with no horizon " +
			"worse than reactive and no sharp optimum — under a random " +
			"walk the SNR shrinkage suppresses trend extrapolation, so " +
			"the dial is safe rather than decisive",
		Run: runAblHorizon,
	})
	Register(&Experiment{
		ID:       "abl-pull",
		Title:    "Ablation: victim selection policy",
		PaperRef: "§5.1 (pull the least-migrated thread)",
		Expect: "Pulling the most-migrated thread creates hot-potato tasks " +
			"(more migrations, higher warmup cost, worse equalisation) than " +
			"least-migrated.",
		Run: runAblPull,
	})
}

// ablEP is the canonical imbalanced workload: EP with 16 threads on 10
// cores (SQ=6, FQ=4).
func ablEP(ctx *Context) spmd.Spec {
	return ScaleSpec(ctx, npb.EP.Spec(16, spmd.UPC(), cpuset.All(10)))
}

func runAblTs(ctx *Context) []*Table {
	t := &Table{
		Title:   "Speed threshold sweep (EP, 16 threads / 10 cores, Tigerton)",
		Columns: []string{"T_s", "speedup", "migrations", "balanced-run migrations"},
	}
	run := NewRunner(ctx)
	config := 7000
	for _, ts := range []float64{0.5, 0.7, 0.8, 0.9, 0.95, 0.999} {
		cfg := speedbal.DefaultConfig()
		cfg.Threshold = ts
		sp, mig, migBal := &stats.Sample{}, &stats.Sample{}, &stats.Sample{}
		run.Repeat(config, RunOpts{
			Topo: topo.Tigerton, Strategy: StratSpeed, Spec: ablEP(ctx), SpeedCfg: &cfg,
		}, func(_ int, r RunResult) {
			sp.Add(r.Speedup)
			mig.Add(float64(r.SpeedbalMigrations))
		})
		config++
		// Balanced control: 16 threads on 16 cores — any migration is
		// spurious noise-chasing.
		balSpec := ScaleSpec(ctx, npb.EP.Spec(16, spmd.UPC(), cpuset.All(16)))
		run.Repeat(config, RunOpts{
			Topo: topo.Tigerton, Strategy: StratSpeed, Spec: balSpec, SpeedCfg: &cfg,
		}, func(_ int, r RunResult) { migBal.Add(float64(r.SpeedbalMigrations)) })
		config++
		run.Then(func() {
			t.AddRow(fmt.Sprintf("%.3g", ts), sp.Mean(), mig.Mean(), migBal.Mean())
			ctx.Logf("abl-ts: T_s=%.3g done", ts)
		})
	}
	run.Wait()
	return []*Table{t}
}

func runAblInterval(ctx *Context) []*Table {
	t := &Table{
		Title: "Balance interval sweep (Tigerton)",
		Columns: []string{"interval", "EP 16/10 speedup", "EP migrations",
			"ft.B 16/10 time s", "ft migrations"},
	}
	run := NewRunner(ctx)
	config := 7100
	for _, iv := range []time.Duration{
		10 * time.Millisecond, 20 * time.Millisecond, 50 * time.Millisecond,
		100 * time.Millisecond, 200 * time.Millisecond, 500 * time.Millisecond,
	} {
		cfg := speedbal.DefaultConfig()
		cfg.Interval = iv
		ep, epm, ft, ftm := &stats.Sample{}, &stats.Sample{}, &stats.Sample{}, &stats.Sample{}
		run.Repeat(config, RunOpts{
			Topo: topo.Tigerton, Strategy: StratSpeed, Spec: ablEP(ctx), SpeedCfg: &cfg,
		}, func(_ int, r RunResult) {
			ep.Add(r.Speedup)
			epm.Add(float64(r.SpeedbalMigrations))
		})
		config++
		ftSpec := ScaleSpec(ctx, npb.FT.Spec(16, spmd.UPC(), cpuset.All(10)))
		run.Repeat(config, RunOpts{
			Topo: topo.Tigerton, Strategy: StratSpeed, Spec: ftSpec, SpeedCfg: &cfg,
		}, func(_ int, r RunResult) {
			ft.AddDuration(r.Elapsed)
			ftm.Add(float64(r.SpeedbalMigrations))
		})
		config++
		run.Then(func() {
			t.AddRow(fmt.Sprintf("%v", iv), ep.Mean(), epm.Mean(), ft.Mean(), ftm.Mean())
			ctx.Logf("abl-int: %v done", iv)
		})
	}
	run.Wait()
	t.Note("EP migrations are ~free (tiny RSS); ft.B pays ~hundreds of µs warmup per move")
	return []*Table{t}
}

func runAblJitter(ctx *Context) []*Table {
	t := &Table{
		Title:   "Jitter on/off (EP, 16 threads / 10 cores, Tigerton)",
		Columns: []string{"jitter", "speedup", "variation %", "migrations"},
	}
	run := NewRunner(ctx)
	config := 7200
	for _, jit := range []bool{true, false} {
		cfg := speedbal.DefaultConfig()
		cfg.Jitter = jit
		sp, rt, mig := &stats.Sample{}, &stats.Sample{}, &stats.Sample{}
		run.Repeat(config, RunOpts{
			Topo: topo.Tigerton, Strategy: StratSpeed, Spec: ablEP(ctx), SpeedCfg: &cfg,
		}, func(_ int, r RunResult) {
			sp.Add(r.Speedup)
			rt.AddDuration(r.Elapsed)
			mig.Add(float64(r.SpeedbalMigrations))
		})
		config++
		run.Then(func() {
			t.AddRow(fmt.Sprintf("%v", jit), sp.Mean(), rt.VariationPct(), mig.Mean())
		})
	}
	run.Wait()
	return []*Table{t}
}

func runAblNUMA(ctx *Context) []*Table {
	t := &Table{
		Title:   "NUMA blocking on Barcelona (ft.B, 16 threads / 10 cores)",
		Columns: []string{"block NUMA", "time s", "speedup", "migrations"},
	}
	run := NewRunner(ctx)
	config := 7300
	for _, block := range []bool{true, false} {
		cfg := speedbal.DefaultConfig()
		cfg.BlockNUMA = block
		spec := ScaleSpec(ctx, npb.FT.Spec(16, spmd.UPC(), cpuset.All(10)))
		rt, sp, mig := &stats.Sample{}, &stats.Sample{}, &stats.Sample{}
		run.Repeat(config, RunOpts{
			Topo: topo.Barcelona, Strategy: StratSpeed, Spec: spec, SpeedCfg: &cfg,
		}, func(_ int, r RunResult) {
			rt.AddDuration(r.Elapsed)
			sp.Add(r.Speedup)
			mig.Add(float64(r.SpeedbalMigrations))
		})
		config++
		run.Then(func() {
			t.AddRow(fmt.Sprintf("%v", block), rt.Mean(), sp.Mean(), mig.Mean())
			ctx.Logf("abl-numa: block=%v done", block)
		})
	}
	run.Wait()
	t.Note("ft.B threads first-touch their pages on the starting node; cross-node moves run at the remote-memory penalty thereafter")
	return []*Table{t}
}

// runAblHorizon sweeps the prediction horizon against the speed
// threshold T_s on the canonical imbalanced workload under frequency
// drift — the disturbance prediction is built to anticipate. Horizon 0
// is the reactive balancer (the degeneracy contract), so each T_s row
// group carries its own baseline.
func runAblHorizon(ctx *Context) []*Table {
	t := &Table{
		Title:   "Prediction horizon × T_s (EP, 16 threads / 10 cores, Tigerton, freq drift)",
		Columns: []string{"T_s", "horizon", "speedup", "migrations", "pred pulls", "hit %"},
	}
	run := NewRunner(ctx)
	config := 7500
	for _, ts := range []float64{0.8, 0.9, 0.95} {
		for _, h := range []time.Duration{0, 25 * time.Millisecond, 50 * time.Millisecond,
			100 * time.Millisecond, 200 * time.Millisecond} {
			cfg := speedbal.DefaultConfig()
			cfg.Threshold = ts
			cfg.Predict = predict.DefaultConfig()
			cfg.Predict.Horizon = h
			sp, mig, pulls := &stats.Sample{}, &stats.Sample{}, &stats.Sample{}
			hits, misses := new(int), new(int)
			run.Repeat(config, RunOpts{
				Topo: topo.Tigerton, Strategy: StratSpeed, Spec: ablEP(ctx), SpeedCfg: &cfg,
				Perturb: perturb.Config{Freq: perturb.DefaultFreq()},
			}, func(_ int, r RunResult) {
				sp.Add(r.Speedup)
				mig.Add(float64(r.SpeedbalMigrations))
				pulls.Add(float64(r.PredictPulls))
				*hits += r.PredictHits
				*misses += r.PredictMisses
			})
			config++
			ts, h := ts, h
			run.Then(func() {
				hitPct := "-"
				if n := *hits + *misses; n > 0 {
					hitPct = fmt.Sprintf("%.0f", 100*float64(*hits)/float64(n))
				}
				t.AddRow(fmt.Sprintf("%.3g", ts), fmt.Sprintf("%v", h),
					sp.Mean(), mig.Mean(), pulls.Mean(), hitPct)
				ctx.Logf("abl-horizon: T_s=%.3g h=%v done", ts, h)
			})
		}
	}
	run.Wait()
	t.Note("horizon 0 rows are the reactive balancer bit-for-bit (degeneracy contract)")
	return []*Table{t}
}

func runAblPull(ctx *Context) []*Table {
	t := &Table{
		Title:   "Victim selection (EP, 16 threads / 10 cores, Tigerton)",
		Columns: []string{"policy", "speedup", "migrations", "max per-thread migrations"},
	}
	policies := []struct {
		name string
		p    speedbal.PullPolicy
	}{
		{"least-migrated", speedbal.PullLeastMigrated},
		{"random", speedbal.PullRandom},
		{"most-migrated", speedbal.PullMostMigrated},
	}
	run := NewRunner(ctx)
	config := 7400
	for _, pol := range policies {
		cfg := speedbal.DefaultConfig()
		cfg.PullPolicy = pol.p
		sp, mig, maxm := &stats.Sample{}, &stats.Sample{}, &stats.Sample{}
		run.Repeat(config, RunOpts{
			Topo: topo.Tigerton, Strategy: StratSpeed, Spec: ablEP(ctx), SpeedCfg: &cfg,
		}, func(_ int, r RunResult) {
			sp.Add(r.Speedup)
			mig.Add(float64(r.SpeedbalMigrations))
			mm := 0
			for _, tk := range r.App.Tasks {
				if tk.Migrations > mm {
					mm = tk.Migrations
				}
			}
			maxm.Add(float64(mm))
		})
		config++
		run.Then(func() {
			t.AddRow(pol.name, sp.Mean(), mig.Mean(), maxm.Mean())
		})
	}
	run.Wait()
	return []*Table{t}
}
