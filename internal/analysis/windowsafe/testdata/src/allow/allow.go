// Package allow exercises the windowsafe escape hatches: every
// construct here would fire without its directive, so any diagnostic in
// this package is a suppression bug — except the one that asserts a
// directive for the wrong category does not leak across.
package allow

// Machine mirrors sim.Machine's surface.
type Machine struct{}

func (m *Machine) Stop()            {}
func (m *Machine) Emit(kind string) {}

func sanctionedWorkerStop(m *Machine, fatal chan struct{}) {
	go func() {
		<-fatal
		m.Stop() //lint:allow-machineglobal fatal-error path, machine already quiescent
	}()
}

func sanctionedEmit(m *Machine, done chan struct{}) {
	go func() {
		m.Emit("final") //lint:allow-windowsafe runs after the window barrier, provably serialised
		done <- struct{}{}
	}()
}

func wrongCategoryDoesNotLeak(m *Machine, done chan struct{}) {
	go func() {
		// machineglobal findings need a machineglobal allow; a windowsafe
		// directive must not cover them.
		m.Stop() //lint:allow-windowsafe wrong category on purpose // want machineglobal:"Machine.Stop is a machine-global, event-loop-only operation"
		done <- struct{}{}
	}()
}
