package dwrr_test

import (
	"repro/internal/cpuset"
	"testing"
	"time"

	"repro/internal/dwrr"
	"repro/internal/sim"
	"repro/internal/task"
	"repro/internal/topo"
)

func newDWRR(n int, seed uint64) (*sim.Machine, *dwrr.Global) {
	factory, g := dwrr.NewFactory(dwrr.DefaultConfig())
	m := sim.New(topo.SMP(n), sim.Config{Seed: seed, NewScheduler: factory})
	return m, g
}

// The paper's fairness example: three CPU-bound threads on two cores
// under DWRR make near-equal progress (~66% each), unlike queue-length
// balancing's 50/50/100 split.
func TestThreeOnTwoFairness(t *testing.T) {
	m, g := newDWRR(2, 1)
	var tasks []*task.Task
	for i := 0; i < 3; i++ {
		tk := m.NewTask("t", &task.ComputeForever{Chunk: 1e9})
		m.Start(tk)
		tasks = append(tasks, tk)
	}
	m.RunFor(10 * time.Second)
	m.Sync()
	var min, max time.Duration
	for i, tk := range tasks {
		if i == 0 || tk.ExecTime < min {
			min = tk.ExecTime
		}
		if i == 0 || tk.ExecTime > max {
			max = tk.ExecTime
		}
	}
	// Perfect fairness would be 6.67s each; the simplified round
	// balancing drifts by a few round slices over the run.
	want := 10 * time.Second * 2 / 3
	if min < want-600*time.Millisecond || max > want+600*time.Millisecond {
		t.Errorf("exec spread [%v, %v], want ≈ %v ± 600ms", min, max, want)
	}
	// Contrast with queue-length stasis, where the doubled-up threads
	// would sit at 5s and the solo thread at 10s.
	if min < 5500*time.Millisecond {
		t.Errorf("min exec %v: a thread is starved as under queue-length balancing", min)
	}
	if g.Steals() == 0 {
		t.Error("round balancing performed no steals")
	}
}

// Round numbers of busy cores stay within one of each other (the DWRR
// invariant), checked throughout a run.
func TestRoundSpreadInvariant(t *testing.T) {
	m, g := newDWRR(4, 2)
	for i := 0; i < 9; i++ {
		tk := m.NewTask("t", &task.ComputeForever{Chunk: 1e9})
		m.Start(tk)
	}
	for i := 0; i < 100; i++ {
		m.RunFor(50 * time.Millisecond)
		if spread := g.MaxRoundSpread(); spread > 1 {
			t.Fatalf("round spread %d > 1 at t=%v", spread, time.Duration(m.Now()))
		}
	}
}

// Priorities: a nice -5 task receives proportionally more CPU under
// DWRR's weighted round slices.
func TestWeightedRounds(t *testing.T) {
	m, _ := newDWRR(1, 3)
	hi := m.NewTask("hi", &task.ComputeForever{Chunk: 1e9})
	hi.Nice = -5
	hi.Sched.Weight = task.NiceWeight(-5)
	lo := m.NewTask("lo", &task.ComputeForever{Chunk: 1e9})
	m.Start(hi)
	m.Start(lo)
	m.RunFor(30 * time.Second)
	m.Sync()
	ratio := float64(hi.ExecTime) / float64(lo.ExecTime)
	want := float64(task.NiceWeight(-5)) / float64(task.NiceWeight(0))
	if ratio < want*0.85 || ratio > want*1.15 {
		t.Errorf("exec ratio %.2f, want ≈ %.2f", ratio, want)
	}
}

// Steals respect affinity.
func TestStealRespectsAffinity(t *testing.T) {
	m, _ := newDWRR(2, 4)
	pinned := m.NewTask("pinned", &task.ComputeForever{Chunk: 1e9})
	pinned.Affinity = cpuset.Of(0)
	m.StartOn(pinned, 0)
	other := m.NewTask("other", &task.ComputeForever{Chunk: 1e9})
	other.Affinity = cpuset.Of(0)
	m.StartOn(other, 0)
	// Core 1 idles and will try to steal; both tasks are pinned to 0.
	m.RunFor(2 * time.Second)
	if pinned.CoreID != 0 || other.CoreID != 0 {
		t.Errorf("pinned tasks moved: cores %d %d", pinned.CoreID, other.CoreID)
	}
}

// Sleeping tasks rejoin the current round on wake and the system stays
// consistent.
func TestSleepWakeConsistency(t *testing.T) {
	m, _ := newDWRR(2, 5)
	sleeper := m.NewTask("sleeper", &task.Loop{
		Iterations: 50,
		Body: func(int) []task.Action {
			return []task.Action{
				task.Compute{Work: 5e6},
				task.Sleep{D: 20 * time.Millisecond},
			}
		},
	})
	hog := m.NewTask("hog", &task.ComputeForever{Chunk: 1e9})
	m.Start(sleeper)
	m.Start(hog)
	m.Run(int64(time.Minute))
	if sleeper.State != task.Done {
		t.Errorf("sleeper state %v, want done", sleeper.State)
	}
	// The sleeper computed 50×5ms = 250ms total.
	if sleeper.ExecTime != 250*time.Millisecond {
		t.Errorf("sleeper exec %v, want 250ms", sleeper.ExecTime)
	}
}

// DWRR migrates far more than speed balancing on the same imbalanced
// workload — the paper's critique of its migration volume ("the
// algorithm might migrate a large number of threads").
func TestMigrationVolume(t *testing.T) {
	m, g := newDWRR(2, 6)
	for i := 0; i < 3; i++ {
		tk := m.NewTask("t", &task.Seq{Actions: []task.Action{task.Compute{Work: 3e9}}})
		m.Start(tk)
	}
	m.Run(int64(time.Minute))
	// 3 threads × 3 s at 2/3 speed ≈ 4.5 s; one steal per round (100 ms)
	// gives dozens of migrations — far above speedbal's one per two
	// 100 ms intervals.
	if g.Steals() < 20 {
		t.Errorf("steals = %d, want ≥ 20 (DWRR migrates aggressively)", g.Steals())
	}
}

// A task that sleeps across round boundaries must wake with a fresh
// round budget: whatever RoundUsed it carries was spent in a round that
// has already closed while it slept. Before the reset in Enqueue, such
// a sleeper woke pre-charged (here 95 of 100 ms), computed only the
// 5 ms remainder, and then sat in the expired queue for the hog's whole
// remaining round — an extra ~100 ms of latency on every wake cycle,
// which this end-to-end bound catches.
func TestWakeAcrossRoundsGetsFreshBudget(t *testing.T) {
	factory, _ := dwrr.NewFactory(dwrr.Config{
		RoundSlice: 100 * time.Millisecond,
		Slice:      10 * time.Millisecond,
	})
	m := sim.New(topo.SMP(1), sim.Config{Seed: 31, NewScheduler: factory})
	hog := m.NewTask("hog", &task.ComputeForever{Chunk: 1e9})
	m.Start(hog)
	const iters = 20
	sleeper := m.NewTask("sleeper", &task.Loop{
		Iterations: iters,
		Body: func(int) []task.Action {
			return []task.Action{
				task.Compute{Work: 95e6},
				task.Sleep{D: 300 * time.Millisecond},
			}
		},
	})
	m.Start(sleeper)
	m.Run(int64(time.Minute))
	if sleeper.State != task.Done {
		t.Fatalf("sleeper state %v, want done", sleeper.State)
	}
	// Each cycle is ~190 ms of interleaved compute (fair share against
	// the hog) plus the 300 ms sleep; the stale-budget bug adds an
	// expired-queue wait of up to a full round per cycle on top.
	elapsed := time.Duration(sleeper.FinishedAt - sleeper.StartedAt)
	t.Logf("sleeper finished in %v", elapsed)
	if elapsed > iters*450*time.Millisecond {
		t.Errorf("sleeper took %v for %d cycles — woke pre-charged with a stale round budget?", elapsed, iters)
	}
}
