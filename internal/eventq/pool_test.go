package eventq

import "testing"

// Schedule on a pending event moves it without re-allocating, and the
// fresh sequence number makes it fire after events already scheduled at
// the destination time — exactly as a remove+push would.
func TestScheduleMovesWithFreshSeq(t *testing.T) {
	var q Queue
	var fired []string
	mk := func(name string) *Event {
		return NewEvent(func(Time) { fired = append(fired, name) })
	}
	a, b, c := mk("a"), mk("b"), mk("c")
	q.Schedule(a, 10)
	q.Schedule(b, 20)
	q.Schedule(c, 30)
	// Move a from 10 to 20: it must now fire after b (scheduled at 20
	// earlier) even though a's original sequence number was lower.
	q.Schedule(a, 20)
	for {
		e := q.Pop()
		if e == nil {
			break
		}
		e.Fire(e.At)
	}
	want := []string{"b", "a", "c"}
	for i := range want {
		if i >= len(fired) || fired[i] != want[i] {
			t.Fatalf("fired %v, want %v", fired, want)
		}
	}
}

// Schedule works on fired (unqueued) events: the owner reschedules the
// same handle forever.
func TestScheduleReusesHandle(t *testing.T) {
	var q Queue
	n := 0
	e := NewEvent(func(Time) { n++ })
	for i := 0; i < 5; i++ {
		if e.Queued() {
			t.Fatalf("iteration %d: event still queued", i)
		}
		q.Schedule(e, Time(i))
		if !e.Queued() {
			t.Fatalf("iteration %d: Schedule left event unqueued", i)
		}
		if got := q.Pop(); got != e {
			t.Fatalf("iteration %d: Pop = %v, want the scheduled event", i, got)
		}
		e.Fire(e.At)
	}
	if n != 5 {
		t.Fatalf("fired %d times, want 5", n)
	}
}

// Pooled events are recycled through Release and Remove; classic Push
// events never are, so their handles stay valid.
func TestPoolRecycling(t *testing.T) {
	var q Queue
	p1 := q.PushPooled(1, func(Time) {})
	q.Pop()
	q.Release(p1)
	//lint:allow-eventown pool-identity probe, reading the released struct is the point
	if p1.Fire != nil {
		t.Error("Release did not drop the pooled event's closure")
	}
	p2 := q.PushPooled(2, func(Time) {})
	if p2 != p1 {
		t.Error("PushPooled did not reuse the released event")
	}
	// Remove recycles a pooled event directly.
	if !q.Remove(p2) {
		t.Fatal("Remove(pooled) = false")
	}
	p3 := q.PushPooled(3, func(Time) {})
	//lint:allow-eventown pool-identity probe, comparing against the recycled handle is the point
	if p3 != p2 {
		t.Error("Remove did not return the pooled event to the free list")
	}
	q.Pop()
	q.Release(p3)

	// Non-pooled events must never enter the free list.
	h := q.Push(4, func(Time) {})
	q.Pop()
	q.Release(h) // no-op
	if p := q.PushPooled(5, func(Time) {}); p == h {
		t.Error("Release recycled a non-pooled event")
	}
}

// Release on a still-queued event is a no-op: the event-loop owner may
// call it unconditionally, but a requeued-from-its-own-callback event
// must survive.
func TestReleaseSkipsQueuedEvents(t *testing.T) {
	var q Queue
	e := q.PushPooled(1, func(Time) {})
	top := q.Pop()
	q.Schedule(top, 2) // callback rescheduled it
	q.Release(top)
	if top.Fire == nil {
		t.Fatal("Release cleared a queued event")
	}
	if got := q.Pop(); got != e {
		t.Fatal("requeued event lost")
	}
}

// The hot paths must not allocate once warm: pooled push/pop/release
// cycles and caller-owned reschedules run allocation-free.
func TestHotPathAllocations(t *testing.T) {
	var q Queue
	fn := func(Time) {}
	// Warm the heap slice and the free list.
	for i := 0; i < 64; i++ {
		q.PushPooled(Time(i), fn)
	}
	for q.Len() > 0 {
		q.Release(q.Pop())
	}

	if avg := testing.AllocsPerRun(100, func() {
		for i := 0; i < 32; i++ {
			q.PushPooled(Time(i), fn)
		}
		for q.Len() > 0 {
			q.Release(q.Pop())
		}
	}); avg != 0 {
		t.Errorf("pooled push/pop/release: %v allocs/run, want 0", avg)
	}

	e := NewEvent(fn)
	at := Time(0)
	if avg := testing.AllocsPerRun(100, func() {
		for i := 0; i < 32; i++ {
			at++
			q.Schedule(e, at)
		}
		q.Pop()
	}); avg != 0 {
		t.Errorf("owned-event reschedule: %v allocs/run, want 0", avg)
	}
}
