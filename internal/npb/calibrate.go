package npb

// Calibration derivation (see Table 2 of the paper and DESIGN.md §6).
//
// The simulator's memory model gives a task of memory intensity m, on a
// socket whose memory path has capacity C shared by k running tasks of
// the same intensity, a per-core efficiency of
//
//	f = 1 − m + m·min(1, C/(k·m))
//
// Serial runs have k=1 and m ≤ C, so f=1: the serial baseline is
// unaffected. A 16-thread run on 16 cores places 4 threads per socket
// (k=4), so
//
//	f16 = 1 − m + C/4      (whenever 4m > C)
//
// and the 16-core speedup is 16·f16. With Tigerton C=1.0 and Barcelona
// C=2.4 we solve for m from the Tigerton speedups in Table 2 and check
// the Barcelona prediction:
//
//	bench   speedup(T)  m       predicted speedup(B)  Table 2 (B)
//	bt.A    4.6         0.96    16·(0.04+0.6) = 10.2  10.0
//	ft.B    5.3         0.92    16·(0.08+0.6) = 10.9  10.5
//	is.C    4.8         0.95    16·(0.05+0.6) = 10.4   8.4  (†)
//	sp.A    7.2         0.80    16·(0.20+0.6) = 12.8  12.4
//	ep.C   ~16          0       16                    ~16
//
// (†) is.C under-performs the bandwidth model on Barcelona because the
// real integer sort's all-to-all key exchange stresses the inter-socket
// HyperTransport links, which we do not model separately. The deviation
// is recorded in EXPERIMENTS.md; it does not affect any balancer
// comparison (all balancers see the same substrate).
//
// Work per iteration W is set from the 16-core inter-barrier times in
// Table 2: the inter-barrier wall time on Tigerton is W/f16, so e.g.
// ft.B with a ~100 ms inter-barrier target and f16=0.33 gives W=33 ms.
// Iteration counts place the 16-core run times inside the paper's
// [2 s, 80 s] band.

import "time"

// InterBarrierTime predicts the benchmark's inter-barrier wall time for
// a one-thread-per-core 16-core run on sockets of 4 cores with the given
// per-socket memory capacity — the closed form used to pick the
// calibration constants, exported for the table2 experiment to print
// next to measured values.
func (b Benchmark) InterBarrierTime(capacity float64) time.Duration {
	m := b.MemIntensity
	f := 1.0
	k := 4.0 * m // 4 busy cores per socket
	if m > 0 && k > capacity {
		f = 1 - m + m*capacity/k
	}
	return time.Duration(b.WorkPerIteration / f)
}
