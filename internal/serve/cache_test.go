package serve

import (
	"fmt"
	"testing"
)

func TestCacheGetPut(t *testing.T) {
	c := NewCache(1 << 20)
	if _, ok := c.Get("k"); ok {
		t.Fatal("hit on empty cache")
	}
	c.Put("k", Entry{Body: []byte("body"), Trace: []byte("trace")})
	e, ok := c.Get("k")
	if !ok || string(e.Body) != "body" || string(e.Trace) != "trace" {
		t.Fatalf("got %+v ok=%v", e, ok)
	}
	// First write wins: content addressing means re-puts carry the same
	// bytes, so the stored copy is never replaced.
	c.Put("k", Entry{Body: []byte("other")})
	e, _ = c.Get("k")
	if string(e.Body) != "body" {
		t.Error("re-put replaced the stored entry")
	}
	hits, misses, _, entries, bytes := c.Stats()
	if hits != 2 || misses != 1 || entries != 1 || bytes != 9 {
		t.Errorf("stats hits=%d misses=%d entries=%d bytes=%d", hits, misses, entries, bytes)
	}
}

func TestCacheLRUEviction(t *testing.T) {
	// Budget for ~4 ten-byte entries.
	c := NewCache(40)
	for i := 0; i < 4; i++ {
		c.Put(fmt.Sprintf("k%d", i), Entry{Body: []byte("0123456789")})
	}
	// Touch k0 so k1 is the least recently used.
	c.Get("k0")
	c.Put("k4", Entry{Body: []byte("0123456789")})
	if _, ok := c.Get("k1"); ok {
		t.Error("LRU entry k1 survived eviction")
	}
	for _, k := range []string{"k0", "k2", "k3", "k4"} {
		if _, ok := c.Get(k); !ok {
			t.Errorf("entry %s evicted out of LRU order", k)
		}
	}
	_, _, evicted, entries, bytes := c.Stats()
	if evicted != 1 || entries != 4 || bytes != 40 {
		t.Errorf("evicted=%d entries=%d bytes=%d", evicted, entries, bytes)
	}
}

func TestCacheOversizeEntryStays(t *testing.T) {
	// An entry larger than the whole budget still serves (the cache
	// keeps at least one entry); the next insert evicts it.
	c := NewCache(8)
	c.Put("big", Entry{Body: make([]byte, 100)})
	if _, ok := c.Get("big"); !ok {
		t.Fatal("oversize entry not stored")
	}
	c.Put("next", Entry{Body: []byte("x")})
	if _, ok := c.Get("big"); ok {
		t.Error("oversize entry survived the next insert")
	}
	if _, ok := c.Get("next"); !ok {
		t.Error("fresh entry evicted instead of the oversize one")
	}
}
