// Package clean holds deterministic patterns that must never fire:
// explicitly seeded generators, pure time arithmetic, degenerate
// selects, and local identifiers that shadow banned names.
package clean

import (
	"math/rand"
	"time"
)

// seededRand is the pattern the repo's own property tests use: a seed
// that is a pure function of the test input.
func seededRand(seed int64) float64 {
	rng := rand.New(rand.NewSource(seed))
	return rng.Float64()
}

// derivedSeed mixes a constant; still deterministic.
func derivedSeed(base int64) *rand.Rand {
	return rand.New(rand.NewSource(base*6364136223846793005 + 1442695040888963407))
}

// pureTime uses only deterministic time constructors and arithmetic.
func pureTime() time.Duration {
	d := 3 * time.Second
	epoch := time.Unix(0, 0)
	return d + epoch.Sub(time.Unix(0, 0))
}

// singleSelect has one communication case plus default: no race.
func singleSelect(a chan int) int {
	select {
	case x := <-a:
		return x
	default:
		return 0
	}
}

type stopwatch struct{}

// Now is a method, not time.Now: must not fire.
func (stopwatch) Now() int64 { return 0 }

func methodNamedNow() int64 {
	var s stopwatch
	return s.Now()
}
