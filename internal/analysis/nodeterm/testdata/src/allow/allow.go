// Package allow exercises the //lint:allow-* escape hatches: every
// construct here would fire without its directive, so any diagnostic in
// this package is a suppression bug.
package allow

import (
	"math/rand"
	"time"
)

func sanctionedWallClock() time.Duration {
	start := time.Now() //lint:allow-wallclock progress reporting only
	//lint:allow-wallclock directive on the preceding line also suppresses
	return time.Since(start)
}

func sanctionedRand() int {
	return rand.Intn(10) //lint:allow-rand demo code, order does not matter
}

func sanctionedSelect(a, b chan int) int {
	//lint:allow-select fan-in feeds a commutative counter
	select {
	case x := <-a:
		return x
	case x := <-b:
		return x
	}
}

func wrongCategoryDoesNotLeak() {
	// An allow for a different category must not suppress this.
	time.Sleep(time.Millisecond) //lint:allow-rand // want "time.Sleep reads the wall clock"
}
