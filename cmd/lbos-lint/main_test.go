package main

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/analysis"
)

func TestLedgerRoundTrip(t *testing.T) {
	counts := map[string]int{"eventown": 2, "wallclock": 1}
	path := filepath.Join(t.TempDir(), "budget.txt")
	if err := os.WriteFile(path, []byte(formatLedger(counts)), 0o644); err != nil {
		t.Fatal(err)
	}
	if !checkLedger(path, counts) {
		t.Error("ledger written from counts must verify against them")
	}
}

func TestLedgerCatchesDrift(t *testing.T) {
	path := filepath.Join(t.TempDir(), "budget.txt")
	if err := os.WriteFile(path, []byte(formatLedger(map[string]int{"eventown": 1})), 0o644); err != nil {
		t.Fatal(err)
	}
	if checkLedger(path, map[string]int{"eventown": 2}) {
		t.Error("a new suppression must fail the gate")
	}
	if checkLedger(path, map[string]int{}) {
		t.Error("a stale budget line must fail the gate")
	}
	if checkLedger(path, map[string]int{"eventown": 1, "timeunits": 1}) {
		t.Error("a suppression in an unbudgeted category must fail the gate")
	}
}

func TestLedgerRejectsMalformed(t *testing.T) {
	path := filepath.Join(t.TempDir(), "budget.txt")
	if err := os.WriteFile(path, []byte("eventown\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if checkLedger(path, map[string]int{}) {
		t.Error("malformed ledger line must fail the gate")
	}
	if checkLedger(filepath.Join(t.TempDir(), "missing.txt"), map[string]int{}) {
		t.Error("missing ledger file must fail the gate")
	}
}

// TestRepoSweepIsClean is the in-tree twin of the CI lint gate: every
// analyzer over every package must report nothing, and the tree's
// suppression counts must match the committed lint-budget.txt exactly.
// A true positive introduced anywhere in the repo — or an escape hatch
// added without a ledger update — fails here before CI sees it.
func TestRepoSweepIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("repo-wide typecheck sweep is slow; run without -short")
	}
	pkgs, err := analysis.Load([]string{"repro/..."})
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	for _, pkg := range pkgs {
		diags, err := analysis.Run(all, pkg.Fset, pkg.Files, pkg.Types, pkg.Info)
		if err != nil {
			t.Fatalf("run on %s: %v", pkg.Path, err)
		}
		for _, d := range diags {
			t.Errorf("%s: %s [%s]: %s", pkg.Fset.Position(d.Pos), d.Analyzer, d.Category, d.Message)
		}
	}
	ledger, err := filepath.Abs(filepath.Join("..", "..", "lint-budget.txt"))
	if err != nil {
		t.Fatal(err)
	}
	if !checkLedger(ledger, countDirectives(pkgs)) {
		t.Error("suppression counts drifted from lint-budget.txt; regenerate with -write-ledger and review the diff")
	}
}
