package eventown_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/eventown"
)

func TestEventown(t *testing.T) {
	analysistest.Run(t, "testdata/src", eventown.Analyzer, "a", "allow", "clean")
}
