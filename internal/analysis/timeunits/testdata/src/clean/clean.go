// Package clean holds the sanctioned unit-crossing idioms that must
// never fire: now + int64(d), duration-since-start Run/At on a fresh
// machine, untracked values mixed with durations, and wall time kept to
// progress reporting.
package clean

import "time"

type Machine struct {
	q Queue
}

func (m *Machine) Now() int64                      { return 0 }
func (m *Machine) Run(until int64) int64           { return until }
func (m *Machine) At(at int64, fn func(now int64)) {}

type Event struct{ At int64 }

type Queue struct{}

func (q *Queue) Push(at int64, fn func(now int64)) *Event { return &Event{} }
func (q *Queue) Schedule(e *Event, at int64)              {}

// scheduleNext is the conversion-site idiom: base + int64(duration).
func scheduleNext(q *Queue, e *Event, m *Machine, interval time.Duration) {
	q.Schedule(e, m.Now()+int64(interval))
}

// runForDuration: "run until int64(d)" on a fresh machine is
// duration-since-start, the repo's pervasive test idiom — Machine.Run
// and At accept it by design.
func runForDuration(m *Machine) int64 {
	return m.Run(int64(10 * time.Second))
}

func atOffset(m *Machine) {
	m.At(int64(6*time.Millisecond), func(now int64) {})
}

// directCallback: the callback's now parameter is simulated time, so
// now + int64(interval) is SimTime and the nested re-push is clean.
func directCallback(q *Queue, interval time.Duration) {
	q.Push(1000, func(now int64) {
		q.Push(now+int64(interval), func(int64) {})
	})
}

// periodicTimer re-pushes through a named closure: the now parameter is
// untracked there, and untracked + duration stays untracked — the
// analyzer only reports provable unit errors.
func periodicTimer(q *Queue, interval time.Duration) {
	var tick func(now int64)
	tick = func(now int64) {
		q.Push(now+int64(interval), tick)
	}
	q.Push(0, tick)
}

// spanCompare: subtracting two sim timestamps yields a span, and spans
// compare against durations freely.
func spanCompare(m *Machine, budget time.Duration) bool {
	start := m.Now()
	end := m.Run(start + int64(budget))
	return end-start > int64(budget)
}

// progressLog keeps wall time out of the simulation: measuring how long
// a run took is exactly what the wall clock is for.
func progressLog(m *Machine) (int64, time.Duration) {
	sw := time.Now()
	end := m.Run(int64(time.Second))
	return end, time.Since(sw)
}
