// Package ctrlflow builds intraprocedural control-flow graphs over the
// AST and solves forward dataflow problems on them. It is the engine
// under the flow-sensitive analyzers (eventown, timeunits, windowsafe):
// where the original lbos-lint checks match one statement at a time,
// these need to know what *must* or *may* have happened on every path
// reaching a statement — a pooled event handle released on one branch
// but used after the join, a duration-typed value laundered through a
// local before being passed as an absolute time.
//
// The package is stdlib-only and deliberately mirrors the shape of
// golang.org/x/tools/go/cfg plus a small generic worklist solver, so the
// analyzers could be rehosted on the real ctrlflow pass of a vet
// multichecker without structural change.
//
// A CFG is a set of basic blocks. Block.Nodes holds the statements and
// control expressions of the block in execution order: leaf statements
// appear whole (assignments, calls, returns), and compound statements
// are decomposed — an if contributes its condition expression to the
// block that branches, a range statement contributes itself to its head
// block so transfer functions can see the key/value bindings. Function
// literals nested in a statement are NOT expanded; analyzers analyze
// each literal as its own function (see Inspect).
//
// Calls that provably do not return — panic, os.Exit, log.Fatal*, and
// the testing.TB Fatal/Skip family — terminate their block with no
// successors, so state on those paths never reaches the exit join. This
// matters in practice: without it, every `if err != nil { t.Fatal(err) }`
// guard would smear a spurious "maybe" state over the code below it.
package ctrlflow

import (
	"go/ast"
	"go/token"
)

// A CFG is the control-flow graph of one function body.
type CFG struct {
	// Blocks lists every block in creation order; Blocks[0] is Entry.
	// Unreachable blocks (code after a return) are present but have no
	// predecessors, and the solver never visits them.
	Blocks []*Block
	Entry  *Block
	// Exit is the single virtual exit block. It holds no nodes; a block
	// whose successor list contains Exit ends the function, either at an
	// explicit return (its last node is an *ast.ReturnStmt) or by
	// falling off the end of the body.
	Exit *Block
}

// A Block is a maximal straight-line sequence of nodes.
type Block struct {
	Index int
	Kind  string // human-readable origin, e.g. "for.head", "if.then"
	Nodes []ast.Node
	Succs []*Block
}

// New builds the CFG for one function body.
func New(body *ast.BlockStmt) *CFG {
	b := &builder{cfg: &CFG{}}
	b.cfg.Entry = b.newBlock("entry")
	b.cfg.Exit = &Block{Index: -1, Kind: "exit"}
	b.cur = b.cfg.Entry
	b.stmtList(body.List)
	b.edgeTo(b.cfg.Exit)
	return b.cfg
}

type builder struct {
	cfg      *builderCFG
	cur      *Block // nil while the current point is unreachable
	targets  *targets
	labels   map[string]*lblock
	curLabel string // label attached to the next loop/switch/select
	fallt    *Block // fallthrough target of the current case clause
}

// builderCFG is an alias so the builder reads naturally.
type builderCFG = CFG

// targets is the stack of enclosing break/continue destinations.
type targets struct {
	outer *targets
	label string
	brk   *Block
	cont  *Block // nil for switch/select
}

// lblock records the blocks a label can jump to.
type lblock struct {
	start *Block // goto target: the labeled statement itself
}

func (b *builder) newBlock(kind string) *Block {
	blk := &Block{Index: len(b.cfg.Blocks), Kind: kind}
	b.cfg.Blocks = append(b.cfg.Blocks, blk)
	return blk
}

// add appends a node to the current block, materializing an unreachable
// block if control cannot get here (dead code still parses and solves).
func (b *builder) add(n ast.Node) {
	if b.cur == nil {
		b.cur = b.newBlock("unreachable")
	}
	b.cur.Nodes = append(b.cur.Nodes, n)
}

// edgeTo links the current block to dst, if the current point is live.
func (b *builder) edgeTo(dst *Block) {
	if b.cur != nil {
		b.cur.Succs = append(b.cur.Succs, dst)
	}
}

// live ensures there is a current block to branch from.
func (b *builder) live() *Block {
	if b.cur == nil {
		b.cur = b.newBlock("unreachable")
	}
	return b.cur
}

func (b *builder) stmtList(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s)
	}
}

// takeLabel consumes the pending label for the statement that owns it.
func (b *builder) takeLabel() string {
	l := b.curLabel
	b.curLabel = ""
	return l
}

func (b *builder) labeled(name string) *lblock {
	if b.labels == nil {
		b.labels = map[string]*lblock{}
	}
	lb := b.labels[name]
	if lb == nil {
		lb = &lblock{start: b.newBlock("label." + name)}
		b.labels[name] = lb
	}
	return lb
}

func (b *builder) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		b.stmtList(s.List)

	case *ast.LabeledStmt:
		lb := b.labeled(s.Label.Name)
		b.edgeTo(lb.start)
		b.cur = lb.start
		b.curLabel = s.Label.Name
		b.stmt(s.Stmt)
		b.curLabel = ""

	case *ast.IfStmt:
		if s.Init != nil {
			b.add(s.Init)
		}
		b.add(s.Cond)
		cond := b.live()
		done := b.newBlock("if.done")
		then := b.newBlock("if.then")
		cond.Succs = append(cond.Succs, then)
		b.cur = then
		b.stmt(s.Body)
		b.edgeTo(done)
		if s.Else != nil {
			els := b.newBlock("if.else")
			cond.Succs = append(cond.Succs, els)
			b.cur = els
			b.stmt(s.Else)
			b.edgeTo(done)
		} else {
			cond.Succs = append(cond.Succs, done)
		}
		b.cur = done

	case *ast.ForStmt:
		label := b.takeLabel()
		if s.Init != nil {
			b.add(s.Init)
		}
		head := b.newBlock("for.head")
		b.edgeTo(head)
		b.cur = head
		if s.Cond != nil {
			b.add(s.Cond)
		}
		head = b.live() // cond may have materialized nothing new
		body := b.newBlock("for.body")
		done := b.newBlock("for.done")
		var post *Block
		cont := head
		if s.Post != nil {
			post = b.newBlock("for.post")
			cont = post
		}
		head.Succs = append(head.Succs, body)
		if s.Cond != nil {
			head.Succs = append(head.Succs, done)
		}
		b.targets = &targets{outer: b.targets, label: label, brk: done, cont: cont}
		b.cur = body
		b.stmt(s.Body)
		b.edgeTo(cont)
		b.targets = b.targets.outer
		if post != nil {
			b.cur = post
			b.add(s.Post)
			b.edgeTo(head)
		}
		b.cur = done

	case *ast.RangeStmt:
		label := b.takeLabel()
		head := b.newBlock("range.head")
		b.edgeTo(head)
		// The range statement itself lives in the head block: transfer
		// functions see the key/value bindings once per entry.
		head.Nodes = append(head.Nodes, s)
		body := b.newBlock("range.body")
		done := b.newBlock("range.done")
		head.Succs = append(head.Succs, body, done)
		b.targets = &targets{outer: b.targets, label: label, brk: done, cont: head}
		b.cur = body
		b.stmt(s.Body)
		b.edgeTo(head)
		b.targets = b.targets.outer
		b.cur = done

	case *ast.SwitchStmt:
		label := b.takeLabel()
		if s.Init != nil {
			b.add(s.Init)
		}
		if s.Tag != nil {
			b.add(s.Tag)
		}
		b.switchBody(label, s.Body, true, func(cc *ast.CaseClause) {
			for _, e := range cc.List {
				b.add(e)
			}
		})

	case *ast.TypeSwitchStmt:
		label := b.takeLabel()
		if s.Init != nil {
			b.add(s.Init)
		}
		b.add(s.Assign)
		b.switchBody(label, s.Body, false, func(cc *ast.CaseClause) {})

	case *ast.SelectStmt:
		label := b.takeLabel()
		sel := b.live()
		done := b.newBlock("select.done")
		b.targets = &targets{outer: b.targets, label: label, brk: done}
		for _, clause := range s.Body.List {
			cc := clause.(*ast.CommClause)
			blk := b.newBlock("select.case")
			sel.Succs = append(sel.Succs, blk)
			b.cur = blk
			if cc.Comm != nil {
				b.stmt(cc.Comm)
			}
			b.stmtList(cc.Body)
			b.edgeTo(done)
		}
		b.targets = b.targets.outer
		b.cur = done

	case *ast.ReturnStmt:
		b.add(s)
		b.edgeTo(b.cfg.Exit)
		b.cur = nil

	case *ast.BranchStmt:
		switch s.Tok {
		case token.BREAK:
			for t := b.targets; t != nil; t = t.outer {
				if s.Label == nil || t.label == s.Label.Name {
					b.edgeTo(t.brk)
					break
				}
			}
		case token.CONTINUE:
			for t := b.targets; t != nil; t = t.outer {
				if t.cont != nil && (s.Label == nil || t.label == s.Label.Name) {
					b.edgeTo(t.cont)
					break
				}
			}
		case token.GOTO:
			b.edgeTo(b.labeled(s.Label.Name).start)
		case token.FALLTHROUGH:
			b.edgeTo(b.fallt)
		}
		b.cur = nil

	case *ast.ExprStmt:
		b.add(s)
		if call, ok := s.X.(*ast.CallExpr); ok && noReturn(call) {
			b.cur = nil
		}

	default:
		// Assign, IncDec, Send, Decl, Go, Defer, Empty: straight-line.
		b.add(s)
	}
}

// switchBody wires the clause blocks of a switch or type switch. The
// preceding tag/assign nodes already sit in the current block, which
// becomes the branch point.
func (b *builder) switchBody(label string, body *ast.BlockStmt, allowFallthrough bool, caseExprs func(*ast.CaseClause)) {
	branch := b.live()
	done := b.newBlock("switch.done")
	b.targets = &targets{outer: b.targets, label: label, brk: done}
	clauses := body.List
	blocks := make([]*Block, len(clauses))
	hasDefault := false
	for i, clause := range clauses {
		blocks[i] = b.newBlock("switch.case")
		branch.Succs = append(branch.Succs, blocks[i])
		if clause.(*ast.CaseClause).List == nil {
			hasDefault = true
		}
	}
	if !hasDefault {
		branch.Succs = append(branch.Succs, done)
	}
	for i, clause := range clauses {
		cc := clause.(*ast.CaseClause)
		b.cur = blocks[i]
		caseExprs(cc)
		if allowFallthrough && i+1 < len(blocks) {
			b.fallt = blocks[i+1]
		} else {
			b.fallt = nil
		}
		b.stmtList(cc.Body)
		b.edgeTo(done)
	}
	b.fallt = nil
	b.targets = b.targets.outer
	b.cur = done
}

// noReturn reports whether a call statement provably never returns:
// panic, os.Exit, log.Fatal*, and the testing.TB Fatal/Skip family.
// This is syntactic on purpose — the builder has no type information —
// and the method-name set is narrow enough that a false "terminates"
// would take a user method named FailNow doing something else entirely.
func noReturn(call *ast.CallExpr) bool {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		return fun.Name == "panic"
	case *ast.SelectorExpr:
		switch fun.Sel.Name {
		case "Fatal", "Fatalf", "FailNow", "Skip", "Skipf", "SkipNow":
			return true
		case "Exit":
			id, ok := fun.X.(*ast.Ident)
			return ok && id.Name == "os"
		case "Fatalln":
			return true
		}
	}
	return false
}

// Inspect walks n like ast.Inspect but does not descend into the bodies
// of nested function literals: a literal runs at some other time on some
// other path, so its statements must not be folded into the enclosing
// function's flow state. The literal node itself is still visited (a
// handle captured by a closure is a use of the handle).
func Inspect(n ast.Node, f func(ast.Node) bool) {
	ast.Inspect(n, func(child ast.Node) bool {
		if !f(child) {
			return false
		}
		if lit, ok := child.(*ast.FuncLit); ok {
			// Visit the type (params may reference values) but skip the
			// body's statements.
			ast.Inspect(lit.Type, f)
			return false
		}
		return true
	})
}
