package exp

import (
	"bytes"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/spmd"
	"repro/internal/topo"
)

func runnerOpts() RunOpts {
	return RunOpts{
		Topo:     func() *topo.Topology { return topo.SMP(2) },
		Strategy: StratLoad,
		Spec: spmd.Spec{
			Name: "t", Threads: 3, Iterations: 3, WorkPerIteration: 1e6,
			Model: spmd.UPC(),
		},
	}
}

// Callbacks and Then hooks are delivered strictly in submission order,
// regardless of the order cells complete in.
func TestRunnerDeliveryOrder(t *testing.T) {
	ctx := &Context{Reps: 3, Scale: 1, Seed: 7, Parallelism: 8}
	r := NewRunner(ctx)
	var got []string
	for cfg := 0; cfg < 4; cfg++ {
		cfg := cfg
		r.Repeat(cfg, runnerOpts(), func(rep int, res RunResult) {
			if res.Elapsed <= 0 {
				t.Errorf("config %d rep %d: degenerate result", cfg, rep)
			}
			got = append(got, fmt.Sprintf("c%dr%d", cfg, rep))
		})
		r.Then(func() { got = append(got, fmt.Sprintf("then%d", cfg)) })
	}
	r.Wait()
	var want []string
	for cfg := 0; cfg < 4; cfg++ {
		for rep := 0; rep < 3; rep++ {
			want = append(want, fmt.Sprintf("c%dr%d", cfg, rep))
		}
		want = append(want, fmt.Sprintf("then%d", cfg))
	}
	if strings.Join(got, " ") != strings.Join(want, " ") {
		t.Errorf("delivery order:\n got %v\nwant %v", got, want)
	}
}

// The same grid produces identical results at every parallelism level —
// the slot-indexed aggregation contract of the Runner itself.
func TestRunnerParallelismInvariant(t *testing.T) {
	collect := func(par int) []time.Duration {
		ctx := &Context{Reps: 4, Scale: 1, Seed: 42, Parallelism: par}
		r := NewRunner(ctx)
		var out []time.Duration
		for cfg := 0; cfg < 3; cfg++ {
			o := runnerOpts()
			o.Spec.WorkJitter = 0.2
			r.Repeat(cfg, o, func(_ int, res RunResult) { out = append(out, res.Elapsed) })
		}
		r.Wait()
		return out
	}
	base := collect(1)
	for _, par := range []int{2, 8} {
		got := collect(par)
		for i := range base {
			if got[i] != base[i] {
				t.Errorf("parallelism %d: cell %d elapsed %v, want %v", par, i, got[i], base[i])
			}
		}
	}
}

// A panicking cell cancels the remaining cells and surfaces through
// Wait; already-delivered callbacks are unaffected.
func TestRunnerPanicCancels(t *testing.T) {
	ctx := &Context{Reps: 1, Scale: 1, Seed: 1, Parallelism: 1}
	r := NewRunner(ctx)
	ran := 0
	r.SubmitFunc("ok", func() RunResult { return Run(runnerOpts()) }, func(RunResult) { ran++ })
	r.SubmitFunc("boom", func() RunResult { panic("exploded") }, func(RunResult) { ran++ })
	r.SubmitFunc("after", func() RunResult { return Run(runnerOpts()) }, func(RunResult) { ran++ })

	defer func() {
		p := recover()
		if p == nil {
			t.Fatal("Wait did not re-panic on cell failure")
		}
		if !strings.Contains(fmt.Sprint(p), "boom") {
			t.Errorf("panic %v does not identify the failed cell", p)
		}
		if ran != 1 {
			t.Errorf("delivered %d callbacks, want 1 (cells after the failure must be cancelled)", ran)
		}
	}()
	r.Wait()
}

// FailFast: a run overrunning its simulated time limit cancels the
// remaining cells; without FailFast the truncated value is tabulated.
func TestRunnerFailFast(t *testing.T) {
	overrun := runnerOpts()
	overrun.Spec.WorkPerIteration = 1e12 // ~17 min of work ...
	overrun.Limit = time.Millisecond     // ... in a 1 ms budget

	// Default: truncation is tabulated (Speedup 0), not fatal.
	var res RunResult
	Repeat(&Context{Reps: 1, Seed: 1}, 0, overrun, func(_ int, r RunResult) { res = r })
	if !res.Truncated || res.Speedup != 0 || res.Elapsed != time.Millisecond {
		t.Errorf("truncated run not surfaced: %+v", res)
	}

	// FailFast: the overrun aborts the experiment.
	defer func() {
		if p := recover(); p == nil {
			t.Fatal("FailFast did not abort on time-limit overrun")
		} else if !strings.Contains(fmt.Sprint(p), "overran") {
			t.Errorf("panic %v does not describe the overrun", p)
		}
	}()
	r := NewRunner(&Context{Reps: 1, Seed: 1, FailFast: true, Parallelism: 4})
	r.Repeat(0, overrun, nil)
	r.Wait()
}

// Logf is safe for concurrent use: parallel writers may interleave
// lines, but never bytes within a line.
func TestLogfSerialised(t *testing.T) {
	var buf bytes.Buffer
	ctx := &Context{Log: &buf}
	const writers, lines = 8, 50
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < lines; i++ {
				ctx.Logf("writer %d line %d of %d", w, i, lines)
			}
		}(w)
	}
	wg.Wait()
	out := strings.Split(strings.TrimSuffix(buf.String(), "\n"), "\n")
	if len(out) != writers*lines {
		t.Fatalf("got %d lines, want %d", len(out), writers*lines)
	}
	for _, l := range out {
		if !strings.HasPrefix(l, "writer ") || !strings.HasSuffix(l, fmt.Sprintf(" of %d", lines)) {
			t.Fatalf("interleaved log line: %q", l)
		}
	}
}

// Context.Interrupt aborts the grid between cells: a channel closed
// before Wait skips every cell, and Wait surfaces ErrInterrupted.
func TestRunnerInterruptBeforeStart(t *testing.T) {
	interrupt := make(chan struct{})
	close(interrupt)
	ctx := &Context{Reps: 3, Seed: 1, Parallelism: 2, Interrupt: interrupt}
	r := NewRunner(ctx)
	ran := 0
	r.Repeat(0, runnerOpts(), func(int, RunResult) { ran++ })
	defer func() {
		p := recover()
		if p == nil {
			t.Fatal("Wait did not panic on an interrupted grid")
		}
		err, ok := p.(error)
		if !ok || !errors.Is(err, ErrInterrupted) {
			t.Errorf("Wait panicked with %v, want ErrInterrupted", p)
		}
		if ran != 0 {
			t.Errorf("delivered %d callbacks on a pre-closed interrupt, want 0", ran)
		}
	}()
	r.Wait()
}

// An interrupt arriving mid-grid cancels only the not-yet-started tail:
// the delivered prefix is intact and Wait reports ErrInterrupted.
func TestRunnerInterruptMidGrid(t *testing.T) {
	interrupt := make(chan struct{})
	ctx := &Context{Reps: 1, Seed: 1, Parallelism: 1, Interrupt: interrupt}
	r := NewRunner(ctx)
	ran := 0
	r.SubmitFunc("first", func() RunResult { return Run(runnerOpts()) }, func(RunResult) { ran++ })
	r.SubmitFunc("trigger", func() RunResult {
		close(interrupt) // abort arrives while this cell is in flight
		return Run(runnerOpts())
	}, func(RunResult) { ran++ })
	r.SubmitFunc("tail", func() RunResult { return Run(runnerOpts()) }, func(RunResult) { ran++ })
	defer func() {
		p := recover()
		if p == nil {
			t.Fatal("Wait did not panic on a mid-grid interrupt")
		}
		err, ok := p.(error)
		if !ok || !errors.Is(err, ErrInterrupted) {
			t.Errorf("Wait panicked with %v, want ErrInterrupted", p)
		}
		// The in-flight cell ran to completion; with Parallelism 1 the
		// first two cells deliver, the tail is skipped.
		if ran != 2 {
			t.Errorf("delivered %d callbacks, want 2 (prefix intact, tail skipped)", ran)
		}
	}()
	r.Wait()
}

// A Runner is reusable after Wait for a second phase.
func TestRunnerReuse(t *testing.T) {
	ctx := &Context{Reps: 2, Seed: 3, Parallelism: 2}
	r := NewRunner(ctx)
	n := 0
	r.Repeat(0, runnerOpts(), func(int, RunResult) { n++ })
	r.Wait()
	r.Repeat(1, runnerOpts(), func(int, RunResult) { n++ })
	r.Wait()
	if n != 4 {
		t.Errorf("delivered %d callbacks across two phases, want 4", n)
	}
}

// Regression: Wait used to reset items/next but leave err and cancelled
// set, so a runner reused after a handled failure (panic recovered by
// the driver, or an explicit Cancel) silently skipped every cell of the
// next phase and re-panicked the stale error.
func TestRunnerReuseAfterCancel(t *testing.T) {
	ctx := &Context{Reps: 1, Seed: 3, Parallelism: 2}
	r := NewRunner(ctx)

	// Phase 1 fails; the driver recovers, as a REPL-style caller would.
	func() {
		defer func() {
			if p := recover(); p == nil {
				t.Fatal("Wait did not panic on the failed phase")
			}
		}()
		r.SubmitFunc("boom", func() RunResult { panic("first phase fails") }, nil)
		r.Wait()
	}()

	// Phase 2 on the same runner must run its cells, not skip them, and
	// Wait must return instead of re-panicking the phase-1 error.
	n := 0
	r.Repeat(0, runnerOpts(), func(int, RunResult) { n++ })
	r.Wait()
	if n != 1 {
		t.Errorf("phase 2 delivered %d callbacks, want 1 (stale cancel state skipped cells)", n)
	}

	// Same for an explicit Cancel that the driver absorbed.
	func() {
		defer func() { recover() }()
		r.Cancel(fmt.Errorf("driver aborted"))
		r.Wait()
	}()
	n = 0
	r.Repeat(1, runnerOpts(), func(int, RunResult) { n++ })
	r.Wait()
	if n != 1 {
		t.Errorf("post-Cancel phase delivered %d callbacks, want 1", n)
	}
}
