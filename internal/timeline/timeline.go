// Package timeline records and renders what a simulated machine did over
// time: which task group occupied each core, per-core utilisation, and
// an ASCII Gantt-style chart. It is a pure observer — a sampling actor
// built on the public machine API — useful for demonstrating speed
// balancing's thread rotation (e.g. `speedbalance -timeline`).
package timeline

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"time"

	"repro/internal/sim"
)

// Sample is one observation of one core.
type Sample struct {
	At    int64
	Core  int
	Group string // "" when idle
	Name  string
}

// Recorder samples core occupancy at a fixed period.
type Recorder struct {
	// Period is the sampling interval (default 50 ms).
	Period time.Duration
	// Limit stops sampling after this many rounds (0 = unlimited).
	Limit int

	m       *sim.Machine
	samples []Sample
	rounds  int
}

// Start implements sim.Actor.
func (r *Recorder) Start(m *sim.Machine) {
	r.m = m
	if r.Period == 0 {
		r.Period = 50 * time.Millisecond
	}
	m.After(r.Period, r.tick)
}

func (r *Recorder) tick(now int64) {
	r.rounds++
	for _, c := range r.m.Cores {
		s := Sample{At: now, Core: c.ID()}
		if t := c.Current(); t != nil {
			s.Group, s.Name = t.Group, t.Name
		}
		r.samples = append(r.samples, s)
	}
	if r.Limit == 0 || r.rounds < r.Limit {
		r.m.After(r.Period, r.tick)
	}
}

// Samples returns the raw observations in time order.
func (r *Recorder) Samples() []Sample { return r.samples }

// Utilisation returns, per core, the fraction of samples in which the
// core was running anything.
func (r *Recorder) Utilisation() []float64 {
	if r.rounds == 0 {
		return nil
	}
	busy := make([]int, len(r.m.Cores))
	for _, s := range r.samples {
		if s.Group != "" || s.Name != "" {
			busy[s.Core]++
		}
	}
	out := make([]float64, len(busy))
	for i, b := range busy {
		out[i] = float64(b) / float64(r.rounds)
	}
	return out
}

// Gantt renders an ASCII chart: one row per core, one column per sample
// round, one letter per task group (idle = '.'). Wide runs are
// downsampled to at most maxCols columns.
func (r *Recorder) Gantt(w io.Writer, maxCols int) {
	if r.rounds == 0 {
		fmt.Fprintln(w, "(no samples)")
		return
	}
	if maxCols <= 0 {
		maxCols = 100
	}
	nc := len(r.m.Cores)
	// grid[core][round] = group.
	grid := make([][]string, nc)
	for i := range grid {
		grid[i] = make([]string, r.rounds)
	}
	round := map[int64]int{}
	next := 0
	for _, s := range r.samples {
		ri, ok := round[s.At]
		if !ok {
			ri = next
			round[s.At] = ri
			next++
		}
		if ri < r.rounds {
			grid[s.Core][ri] = s.Group
		}
	}
	letters := r.legend()
	step := 1
	if r.rounds > maxCols {
		step = (r.rounds + maxCols - 1) / maxCols
	}
	for c := 0; c < nc; c++ {
		var b strings.Builder
		fmt.Fprintf(&b, "core %2d ", c)
		for ri := 0; ri < r.rounds; ri += step {
			g := grid[c][ri]
			if g == "" {
				b.WriteByte('.')
			} else {
				b.WriteByte(letters[g])
			}
		}
		fmt.Fprintln(w, b.String())
	}
	// Legend, stable order.
	var groups []string
	for g := range letters {
		groups = append(groups, g)
	}
	sort.Strings(groups)
	var b strings.Builder
	b.WriteString("legend: .=idle")
	for _, g := range groups {
		fmt.Fprintf(&b, "  %c=%s", letters[g], g)
	}
	fmt.Fprintln(w, b.String())
}

// legend assigns a stable letter per group (a-z, then A-Z, then '#').
func (r *Recorder) legend() map[string]byte {
	var groups []string
	seen := map[string]bool{}
	for _, s := range r.samples {
		if s.Group != "" && !seen[s.Group] {
			seen[s.Group] = true
			groups = append(groups, s.Group)
		}
	}
	sort.Strings(groups)
	out := make(map[string]byte, len(groups))
	for i, g := range groups {
		switch {
		case i < 26:
			out[g] = byte('a' + i)
		case i < 52:
			out[g] = byte('A' + i - 26)
		default:
			out[g] = '#'
		}
	}
	return out
}

// Migrations counts, per task group, how many adjacent sample rounds saw
// a group's thread on a different core set — a coarse rotation signal
// (exact counts live in task.Migrations; this is render-side only).
func (r *Recorder) GroupRotation(group string) int {
	perRound := map[int64][]int{}
	for _, s := range r.samples {
		if s.Group == group {
			perRound[s.At] = append(perRound[s.At], s.Core)
		}
	}
	var ats []int64
	for at := range perRound {
		ats = append(ats, at)
	}
	sort.Slice(ats, func(i, j int) bool { return ats[i] < ats[j] })
	changes := 0
	var prev string
	for _, at := range ats {
		cores := perRound[at]
		sort.Ints(cores)
		key := fmt.Sprint(cores)
		if prev != "" && key != prev {
			changes++
		}
		prev = key
	}
	return changes
}
