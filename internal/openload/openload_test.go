package openload_test

import (
	"fmt"
	"sort"
	"testing"
	"time"

	"repro/internal/cfs"
	"repro/internal/linuxlb"
	"repro/internal/openload"
	"repro/internal/sim"
	"repro/internal/speedbal"
	"repro/internal/stats"
	"repro/internal/task"
	"repro/internal/topo"
)

func newMachine(seed uint64, shards int, par bool) *sim.Machine {
	return sim.New(topo.Tigerton(), sim.Config{
		Seed: seed, NewScheduler: cfs.Factory(),
		Shards: shards, ShardParallel: par,
	})
}

// run drives one open workload to drain: arrivals stop at the horizon
// and the run continues until every admitted job departs.
func run(seed uint64, cfg openload.Config, shards int, par bool) *openload.Gen {
	m := newMachine(seed, shards, par)
	m.AddActor(linuxlb.Default())
	g := openload.New(cfg)
	m.AddActor(g)
	m.Run(int64(time.Hour))
	return g
}

func fingerprint(g *openload.Gen) string {
	s := fmt.Sprintf("admitted=%d completed=%d\n", g.Admitted, g.Completed)
	for _, r := range g.Records {
		s += fmt.Sprintf("%s %d %d %d %d %d\n",
			r.Class, r.ArrivedAt, r.Sojourn, r.FirstRun, r.WakeMean, r.WakeMax)
	}
	return s
}

var quick = openload.Config{Rho: 0.6, Horizon: 2 * time.Second}

// The workload drains: every admitted job completes once arrivals stop.
func TestDrainsAfterHorizon(t *testing.T) {
	g := run(1, quick, 0, false)
	if g.Admitted == 0 {
		t.Fatal("no jobs admitted")
	}
	if g.Unfinished() != 0 {
		t.Errorf("%d of %d jobs unfinished after drain", g.Unfinished(), g.Admitted)
	}
	if len(g.Records) != g.Completed {
		t.Errorf("records %d != completed %d", len(g.Records), g.Completed)
	}
	classes := map[string]int{}
	for _, r := range g.Records {
		classes[r.Class]++
		if r.Sojourn <= 0 {
			t.Fatalf("non-positive sojourn %v for %s job", r.Sojourn, r.Class)
		}
		if r.FirstRun < 0 || r.FirstRun > r.Sojourn {
			t.Fatalf("first-run latency %v outside [0, %v]", r.FirstRun, r.Sojourn)
		}
	}
	for _, c := range openload.DefaultClasses() {
		if classes[c.Name] == 0 {
			t.Errorf("class %q produced no completed jobs", c.Name)
		}
	}
}

// Same seed, same workload — and a different seed, a different one.
func TestSeedDeterminism(t *testing.T) {
	a, b := run(7, quick, 0, false), run(7, quick, 0, false)
	if fingerprint(a) != fingerprint(b) {
		t.Error("same seed produced different workloads")
	}
	if c := run(8, quick, 0, false); fingerprint(a) == fingerprint(c) {
		t.Error("different seeds produced identical workloads")
	}
}

// The record stream is byte-identical across engine configurations:
// single queue, sharded, and sharded with parallel drain (arrivals are
// global events; the generator blocks windows for its global job table).
func TestEngineConfigDeterminism(t *testing.T) {
	base := fingerprint(run(11, quick, 0, false))
	for _, c := range []struct {
		shards int
		par    bool
	}{{4, false}, {4, true}} {
		got := fingerprint(run(11, quick, c.shards, c.par))
		if got != base {
			t.Errorf("shards=%d parallel=%v diverges from single-queue run", c.shards, c.par)
		}
	}
}

// Class arrival streams are split per class: appending a class must not
// perturb the arrival times of the existing ones.
func TestClassStreamIndependence(t *testing.T) {
	three := run(13, quick, 0, false)
	four := run(13, openload.Config{
		Rho:     0.6,
		Horizon: 2 * time.Second,
		Classes: append(openload.DefaultClasses(),
			Class4()),
	}, 0, false)
	// Records land in completion order, which the extra class's CPU
	// competition legitimately reshuffles; the invariant is the arrival
	// schedule, so compare the sorted arrival times.
	arrivals := func(g *openload.Gen, class string) []int64 {
		var at []int64
		for _, r := range g.Records {
			if r.Class == class {
				at = append(at, r.ArrivedAt)
			}
		}
		sort.Slice(at, func(i, j int) bool { return at[i] < at[j] })
		return at
	}
	for _, c := range openload.DefaultClasses() {
		a3, a4 := arrivals(three, c.Name), arrivals(four, c.Name)
		if len(a3) != len(a4) {
			t.Fatalf("class %q arrival count changed: %d vs %d", c.Name, len(a3), len(a4))
		}
		for i := range a3 {
			if a3[i] != a4[i] {
				t.Fatalf("class %q arrival %d moved: %d vs %d", c.Name, i, a3[i], a4[i])
			}
		}
	}
	if len(arrivals(four, "extra")) == 0 {
		t.Error("appended class produced no jobs")
	}
}

// Class4 is an additional sequential class for the stream-independence
// test.
func Class4() openload.Class {
	return openload.Class{Name: "extra", Weight: 0.1, Work: 10e6}
}

// FixedAlloc pins every thread at admission and nothing ever migrates.
func TestFixedAllocPinsThreads(t *testing.T) {
	m := newMachine(17, 0, false)
	m.AddActor(linuxlb.Default())
	g := openload.New(openload.Config{Rho: 0.6, Horizon: time.Second, FixedAlloc: true})
	m.AddActor(g)
	m.Run(int64(time.Hour))
	if g.Unfinished() != 0 {
		t.Fatalf("%d jobs unfinished", g.Unfinished())
	}
	for _, tk := range m.Tasks() {
		if tk.Group != openload.Group {
			continue
		}
		if tk.Migrations != 0 {
			t.Fatalf("pinned task %q migrated %d times", tk.Name, tk.Migrations)
		}
		if !tk.Pinned() {
			t.Fatalf("task %q not pinned under FixedAlloc", tk.Name)
		}
	}
}

// A horizon admitting exactly one job is the smallest record stream the
// bakeoff tables aggregate, and the one where aggregation edge cases
// bite: the single record must carry no-signal zeroes (a job that never
// slept has Wakes == 0 and a meaningless WakeMean, which must be 0, not
// a division artifact), and pooling it through stats.Sample must make
// every percentile the record itself rather than interpolating off the
// end of a one-element slice.
func TestSingleJobRecordAggregation(t *testing.T) {
	g := run(2, openload.Config{
		Classes: []openload.Class{{Name: "solo", Weight: 1, Work: 200e6}},
		Rho:     0.05, Horizon: 250 * time.Millisecond,
	}, 0, false)
	if g.Admitted != 1 {
		t.Fatalf("admitted %d jobs, the test needs exactly 1 — seed drifted?", g.Admitted)
	}
	if len(g.Records) != 1 || g.Unfinished() != 0 {
		t.Fatalf("records=%d unfinished=%d, want 1 completed record", len(g.Records), g.Unfinished())
	}
	r := g.Records[0]
	if r.Sojourn <= 0 {
		t.Errorf("non-positive sojourn %v", r.Sojourn)
	}
	if r.Wakes == 0 && (r.WakeMean != 0 || r.WakeMax != 0) {
		t.Errorf("job with no wakeups carries wake latencies: mean=%v max=%v", r.WakeMean, r.WakeMax)
	}
	if r.FirstRun < 0 || r.FirstRun > r.Sojourn {
		t.Errorf("first-run latency %v outside [0, %v]", r.FirstRun, r.Sojourn)
	}
	soj := &stats.Sample{}
	soj.Add(float64(r.Sojourn))
	want := float64(r.Sojourn)
	for _, p := range []float64{0, 50, 95, 99, 100} {
		if got := soj.Percentile(p); got != want {
			t.Errorf("single-record Percentile(%v) = %v, want %v", p, got, want)
		}
	}
	if soj.Mean() != want || soj.Max() != want {
		t.Errorf("single-record mean/max = %v/%v, want %v", soj.Mean(), soj.Max(), want)
	}
}

// Offered load scales throughput: doubling ρ roughly doubles the
// admitted-job count over a fixed horizon.
func TestRhoScalesArrivals(t *testing.T) {
	lo := run(19, openload.Config{Rho: 0.3, Horizon: 2 * time.Second}, 0, false)
	hi := run(19, openload.Config{Rho: 0.6, Horizon: 2 * time.Second}, 0, false)
	ratio := float64(hi.Admitted) / float64(lo.Admitted)
	if ratio < 1.6 || ratio > 2.4 {
		t.Errorf("admissions ratio %.2f for 2x offered load (lo %d, hi %d)",
			ratio, lo.Admitted, hi.Admitted)
	}
}

// The generator composes with speedbal's rescan adoption: arrivals into
// a machine whose wake loop drained between jobs are still adopted (the
// closed-batch bookkeeping fix this PR ships).
func TestSpeedbalAdoptsArrivals(t *testing.T) {
	m := newMachine(23, 0, false)
	m.AddActor(linuxlb.Default())
	sb := speedbal.New(speedbal.Config{RescanGroup: openload.Group})
	m.AddActor(sb)
	// Sparse arrivals of jobs longer than the 100 ms balance interval
	// (shorter ones legitimately finish before the first rescan, like
	// any /proc poller would miss them): the machine fully drains
	// between jobs, so without admission re-arming the balancer adopts
	// only arrivals that overlap the first job's wake window.
	g := openload.New(openload.Config{
		Classes: []openload.Class{{Name: "batch", Weight: 1, Work: 400e6}},
		Rho:     0.02, Horizon: 8 * time.Second,
	})
	m.AddActor(g)
	m.Run(int64(time.Hour))
	if g.Unfinished() != 0 {
		t.Fatalf("%d jobs unfinished", g.Unfinished())
	}
	if g.Admitted < 2 {
		t.Skipf("only %d arrivals at this seed", g.Admitted)
	}
	if sb.Adopted != g.Admitted {
		t.Errorf("balancer adopted %d of %d arrivals", sb.Adopted, g.Admitted)
	}
	for _, tk := range m.Tasks() {
		if tk.Group == openload.Group && tk.State != task.Done {
			t.Errorf("task %q stuck in %v", tk.Name, tk.State)
		}
	}
}
