package serve

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"runtime/debug"
	"strings"

	"repro/internal/exp"
	"repro/internal/perturb"
)

// Spec is the wire form of one experiment request: the JSON document a
// client POSTs to /v1/runs. It mirrors the knobs of `lbos run` — an
// experiment ID from the internal/exp registry plus the workload dials
// (reps, scale, seed, perturb, predict) and the engine dials (parallel,
// shards, shardpar).
//
// The two groups are deliberately distinct. Workload dials select *what*
// is computed and are part of the cache identity; engine dials select
// *how fast* it is computed and are normalised out of the cache key,
// because the repository-wide determinism contract (README "Determinism
// policy", proven by internal/difftest) guarantees the output bytes are
// identical at every -parallel/-shards/-shardpar level.
type Spec struct {
	// Experiment is the registry ID (`lbos list`), e.g. "fig1".
	Experiment string `json:"experiment"`
	// Reps is the repetitions per configuration (default 10, the
	// paper's count).
	Reps int `json:"reps,omitempty"`
	// Scale divides workload sizes (default 1 = full paper scale).
	Scale int `json:"scale,omitempty"`
	// Seed is the base RNG seed (default 20100109, the PPoPP'10 date).
	Seed uint64 `json:"seed,omitempty"`
	// Perturb composes deterministic fault injection onto every run:
	// comma-separated families from noise, kthread, hotplug, freq,
	// storm, all ("" = none; "all" is canonicalised to the family list).
	Perturb string `json:"perturb,omitempty"`
	// Predict arms the speed balancer's predictive mode in SPEED runs.
	Predict bool `json:"predict,omitempty"`
	// Trace additionally records a Chrome trace-event stream, fetched
	// from /v1/runs/{id}/trace.
	Trace bool `json:"trace,omitempty"`
	// Metrics appends the aggregated scheduler metrics tables to the
	// result document.
	Metrics bool `json:"metrics,omitempty"`

	// Parallel is the experiment grid's worker count (0 = GOMAXPROCS).
	// Engine dial: not part of the cache key.
	Parallel int `json:"parallel,omitempty"`
	// Shards partitions each run's simulator into per-socket event
	// shards. Engine dial: not part of the cache key.
	Shards int `json:"shards,omitempty"`
	// ShardParallel opens conservative lookahead windows. Engine dial:
	// not part of the cache key.
	ShardParallel bool `json:"shardpar,omitempty"`
}

// Default workload dials, matching `lbos run`.
const (
	DefaultReps  = 10
	DefaultScale = 1
	DefaultSeed  = 20100109
)

// ParseSpec decodes a wire spec strictly: unknown fields are errors, so
// a typo'd knob fails loudly instead of silently running the default.
func ParseSpec(data []byte) (Spec, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var s Spec
	if err := dec.Decode(&s); err != nil {
		return Spec{}, fmt.Errorf("serve: invalid spec: %w", err)
	}
	// Trailing garbage after the document is also a client error.
	if dec.More() {
		return Spec{}, fmt.Errorf("serve: invalid spec: trailing data after JSON document")
	}
	return s, nil
}

// Canonicalize validates the spec and fills defaults, returning the
// canonical form every equivalent submission maps to. The rules:
//
//   - Experiment must name a registered experiment.
//   - Reps/Scale default to 10/1 and must be ≥ 1; Seed defaults to
//     20100109 (a seed of 0 means "default", like the CLI).
//   - Perturb is parsed (unknown families are errors) and rewritten to
//     a canonical family list: segments trimmed, empties dropped,
//     "all" expanded to "noise,hotplug,freq,storm", exact duplicates
//     deduplicated. Segment order is otherwise preserved — it carries
//     meaning ("noise,kthread" and "kthread,noise" pick different
//     noise presets, last one wins).
//   - Engine dials (Parallel, Shards, ShardParallel) are validated but
//     left as-is; Key ignores them.
func (s Spec) Canonicalize() (Spec, error) {
	if s.Experiment == "" {
		return Spec{}, fmt.Errorf("serve: spec has no experiment ID")
	}
	if _, err := exp.ByID(s.Experiment); err != nil {
		return Spec{}, err
	}
	if s.Reps == 0 {
		s.Reps = DefaultReps
	}
	if s.Reps < 1 {
		return Spec{}, fmt.Errorf("serve: reps %d out of range (want ≥ 1)", s.Reps)
	}
	if s.Scale == 0 {
		s.Scale = DefaultScale
	}
	if s.Scale < 1 {
		return Spec{}, fmt.Errorf("serve: scale %d out of range (want ≥ 1)", s.Scale)
	}
	if s.Seed == 0 {
		s.Seed = DefaultSeed
	}
	if s.Parallel < 0 {
		return Spec{}, fmt.Errorf("serve: parallel %d out of range (want ≥ 0)", s.Parallel)
	}
	if s.Shards < 0 {
		return Spec{}, fmt.Errorf("serve: shards %d out of range (want ≥ 0)", s.Shards)
	}
	canon, err := canonicalPerturb(s.Perturb)
	if err != nil {
		return Spec{}, err
	}
	s.Perturb = canon
	return s, nil
}

// canonicalPerturb validates a perturbation family list and rewrites it
// to the canonical form described on Canonicalize.
func canonicalPerturb(spec string) (string, error) {
	if _, err := perturb.Parse(spec); err != nil {
		return "", err
	}
	var out []string
	seen := map[string]bool{}
	for _, name := range strings.Split(spec, ",") {
		name = strings.TrimSpace(name)
		switch name {
		case "":
			continue
		case "all":
			for _, fam := range []string{"noise", "hotplug", "freq", "storm"} {
				if !seen[fam] {
					seen[fam] = true
					out = append(out, fam)
				}
			}
		default:
			if !seen[name] {
				seen[name] = true
				out = append(out, name)
			}
		}
	}
	return strings.Join(out, ","), nil
}

// canonicalSpec is the exact byte layout hashed into the cache key: the
// workload dials only, every field explicit (no omitempty), so the
// canonical JSON is a total function of the workload identity.
type canonicalSpec struct {
	Experiment string `json:"experiment"`
	Reps       int    `json:"reps"`
	Scale      int    `json:"scale"`
	Seed       uint64 `json:"seed"`
	Perturb    string `json:"perturb"`
	Predict    bool   `json:"predict"`
	Trace      bool   `json:"trace"`
	Metrics    bool   `json:"metrics"`
}

// CanonicalJSON renders the workload identity of an already-canonical
// spec as deterministic bytes (struct field order, all fields present).
func (s Spec) CanonicalJSON() []byte {
	b, err := json.Marshal(canonicalSpec{
		Experiment: s.Experiment,
		Reps:       s.Reps,
		Scale:      s.Scale,
		Seed:       s.Seed,
		Perturb:    s.Perturb,
		Predict:    s.Predict,
		Trace:      s.Trace,
		Metrics:    s.Metrics,
	})
	if err != nil {
		// A struct of scalars cannot fail to marshal.
		panic(err)
	}
	return b
}

// keyDomain separates lbosd cache keys from any other SHA-256 use and
// versions the key derivation itself: changing the canonical layout
// bumps this string, invalidating every old key.
const keyDomain = "lbos-serve/v1"

// Key derives the content address of the spec's result: the SHA-256 of
// (key domain, code version, canonical workload JSON), hex-encoded. The
// code version is part of the key because the cache stores *outputs of
// the code*, not facts about the world: the same spec under a different
// build may legitimately produce different bytes, and a stale hit would
// silently serve the old build's results (DESIGN.md §11).
func (s Spec) Key(version string) string {
	h := sha256.New()
	h.Write([]byte(keyDomain))
	h.Write([]byte{0})
	h.Write([]byte(version))
	h.Write([]byte{0})
	h.Write(s.CanonicalJSON())
	return hex.EncodeToString(h.Sum(nil))
}

// Context builds the experiment context a canonical spec runs under.
// The interrupt channel aborts the grid between cells (per-request
// cancellation; see exp.Context.Interrupt).
func (s Spec) Context(interrupt <-chan struct{}) (*exp.Context, error) {
	pcfg, err := perturb.Parse(s.Perturb)
	if err != nil {
		return nil, err
	}
	return &exp.Context{
		Reps:          s.Reps,
		Scale:         s.Scale,
		Seed:          s.Seed,
		Parallelism:   s.Parallel,
		Perturb:       pcfg,
		Predict:       s.Predict,
		Shards:        s.Shards,
		ShardParallel: s.ShardParallel,
		Interrupt:     interrupt,
	}, nil
}

// CodeVersion resolves the running build's identity for cache keys: the
// VCS revision when the binary was built from a stamped checkout (plus
// a dirty marker), else the module version, else "devel". Server tests
// pin Config.Version instead, so key derivation stays testable.
func CodeVersion() string {
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return "devel"
	}
	var rev, modified string
	for _, st := range bi.Settings {
		switch st.Key {
		case "vcs.revision":
			rev = st.Value
		case "vcs.modified":
			modified = st.Value
		}
	}
	if rev != "" {
		if modified == "true" {
			return rev + "+dirty"
		}
		return rev
	}
	if v := bi.Main.Version; v != "" && v != "(devel)" {
		return v
	}
	return "devel"
}
