package eventq

import (
	"testing"
)

// The fuzz targets interpret the input as a little op script — 3-byte
// chunks of (opcode, argA, argB) — driving the real queue alongside a
// trivially-correct model, and fail on the first observable divergence.
// They are the adversarial complement of the unit tests: the corpus
// under testdata/fuzz/ pins the interleavings that matter (same-time
// pushes, reschedule of a pending event, pooled release/reuse,
// cross-shard moves, window entry on timestamp ties), and fuzzing mines
// for new ones. CI runs each target briefly (-fuzztime) on every push.

// refModel is the oracle for FuzzEventQueue: a flat list ordered by
// nothing, searched linearly for the (At, seq) minimum — too slow to
// ship, too simple to be wrong.
type refModel struct {
	ids  map[int]Time // id → scheduled time
	seqs map[int]int  // id → model sequence of last scheduling
	next int
}

func newRefModel() *refModel {
	return &refModel{ids: map[int]Time{}, seqs: map[int]int{}}
}

func (r *refModel) push(id int, at Time) {
	r.ids[id] = at
	r.seqs[id] = r.next
	r.next++
}

func (r *refModel) remove(id int) bool {
	if _, ok := r.ids[id]; !ok {
		return false
	}
	delete(r.ids, id)
	delete(r.seqs, id)
	return true
}

// min returns the id of the earliest (At, seq) pending event, or -1.
func (r *refModel) min() int {
	best, bestAt, bestSeq := -1, Time(0), 0
	for id, at := range r.ids {
		if best == -1 || at < bestAt || (at == bestAt && r.seqs[id] < bestSeq) {
			best, bestAt, bestSeq = id, at, r.seqs[id]
		}
	}
	return best
}

// FuzzEventQueue drives a single Queue through arbitrary
// push/pop/reschedule/remove/release interleavings against the
// reference model: every Pop and Peek must return exactly the event the
// model predicts, including sequence-stable ordering of same-time
// events and reuse of pooled events after Release.
func FuzzEventQueue(f *testing.F) {
	f.Add([]byte{})
	// Same-time pushes must pop in push order.
	f.Add([]byte{0, 5, 0, 0, 5, 0, 0, 5, 0, 2, 0, 0, 2, 0, 0, 2, 0, 0})
	// Pooled push, pop+release, pooled push reusing the freed event.
	f.Add([]byte{1, 3, 0, 2, 0, 0, 1, 3, 0, 2, 0, 0})
	// Reschedule a pending event behind a same-time rival.
	f.Add([]byte{0, 9, 0, 0, 9, 0, 3, 0, 9, 2, 0, 0, 2, 0, 0})
	// Remove, then pop the survivor.
	f.Add([]byte{0, 4, 0, 0, 6, 0, 4, 0, 0, 2, 0, 0})

	f.Fuzz(func(t *testing.T, script []byte) {
		var q Queue
		model := newRefModel()
		idOf := map[*Event]int{}
		var owned []*Event // handles eligible for Schedule/Remove
		nextID := 0

		popAndCheck := func() {
			want := model.min()
			e := q.Pop()
			if e == nil {
				if want != -1 {
					t.Fatalf("Pop = nil, model has event %d pending", want)
				}
				return
			}
			got, ok := idOf[e]
			if !ok {
				t.Fatalf("Pop returned an event the harness never pushed")
			}
			if got != want {
				t.Fatalf("Pop = event %d (at=%d), model wants event %d (at=%d)",
					got, e.At, want, model.ids[want])
			}
			model.remove(got)
			delete(idOf, e)
			q.Release(e) // no-op for owned events, recycles pooled ones
		}

		for i := 0; i+2 < len(script); i += 3 {
			op, a, b := script[i]%6, script[i+1], script[i+2]
			at := Time(b % 64)
			switch op {
			case 0: // owned push
				e := q.Push(at, func(Time) {})
				idOf[e] = nextID
				owned = append(owned, e)
				model.push(nextID, at)
				nextID++
			case 1: // pooled push (handle not retained past firing)
				e := q.PushPooled(at, func(Time) {})
				idOf[e] = nextID
				model.push(nextID, at)
				nextID++
			case 2:
				popAndCheck()
			case 3: // reschedule an owned event (pending or fired)
				if len(owned) == 0 {
					continue
				}
				e := owned[int(a)%len(owned)]
				id := idOf[e]
				if e.Queued() {
					model.remove(id)
				} else {
					// Re-inserting a fired handle is a fresh logical event.
					idOf[e] = nextID
					id = nextID
					nextID++
				}
				q.Schedule(e, at)
				model.push(id, at)
			case 4: // remove an owned event
				if len(owned) == 0 {
					continue
				}
				e := owned[int(a)%len(owned)]
				id, pending := idOf[e]
				got := q.Remove(e)
				if !pending {
					// The handle already fired: Remove must decline.
					if got {
						t.Fatalf("Remove returned true for a fired event")
					}
					continue
				}
				want := model.remove(id)
				if got != want {
					t.Fatalf("Remove(event %d) = %v, model says %v", id, got, want)
				}
				if got {
					delete(idOf, e)
				}
			case 5: // peek
				want := model.min()
				e := q.Peek()
				if (e == nil) != (want == -1) {
					t.Fatalf("Peek nil-ness disagrees with model (want event %d)", want)
				}
				if e != nil && idOf[e] != want {
					t.Fatalf("Peek = event %d, model wants %d", idOf[e], want)
				}
			}
		}
		// Drain: the complete remaining order must match the model.
		for q.Len() > 0 || model.min() != -1 {
			popAndCheck()
		}
	})
}

// FuzzShardMerge drives a Sharded queue and a plain Queue through the
// same operation sequence — every event pushed to some shard of one and
// to the other — and requires identical pop order: the partition must
// never change when an event fires, whatever the shard count, including
// on cross-shard timestamp ties and events rescheduled across shards.
// A final window phase checks the parallel-drain primitives: shard pops
// stay below the horizon and in shard-local order, and the sequence
// fold keeps post-window pushes globally ordered.
func FuzzShardMerge(f *testing.F) {
	f.Add(byte(2), []byte{})
	// Cross-shard timestamp tie: two shards, same time, push order wins.
	f.Add(byte(2), []byte{0, 0, 7, 0, 1, 7, 2, 0, 0, 2, 0, 0})
	// Reschedule moves an event to another shard.
	f.Add(byte(3), []byte{0, 0, 9, 3, 0, 70, 2, 0, 0})
	// Global (control) events interleaved with shard events.
	f.Add(byte(2), []byte{0, 2, 5, 0, 0, 5, 2, 0, 0, 2, 0, 0})
	// Pooled events across shards with release/reuse.
	f.Add(byte(4), []byte{1, 0, 3, 1, 1, 3, 2, 0, 0, 1, 2, 3, 2, 0, 0, 2, 0, 0})

	f.Fuzz(func(t *testing.T, shardsByte byte, script []byte) {
		nsh := 1 + int(shardsByte%4)
		s := NewSharded(nsh)
		var oracle Queue
		type pair struct {
			se, oe *Event
			id     int
		}
		idOfS := map[*Event]*pair{}
		var owned []*pair
		nextID := 0
		shardOf := func(b byte) int { return int(b) % (nsh + 1) } // includes Global

		popBoth := func() {
			se, oe := s.Pop(), oracle.Pop()
			if (se == nil) != (oe == nil) {
				t.Fatalf("Pop: sharded=%v oracle=%v", se != nil, oe != nil)
			}
			if se == nil {
				return
			}
			p := idOfS[se]
			if p == nil {
				t.Fatalf("sharded Pop returned an unknown event")
			}
			if p.oe != oe {
				t.Fatalf("pop order diverged: sharded popped event %d (at=%d), oracle popped at=%d",
					p.id, se.At, oe.At)
			}
			if se.At != oe.At {
				t.Fatalf("event %d times disagree: %d vs %d", p.id, se.At, oe.At)
			}
			delete(idOfS, se)
			s.Release(se)
			oracle.Release(oe)
		}

		for i := 0; i+2 < len(script); i += 3 {
			op, a, b := script[i]%5, script[i+1], script[i+2]
			at := Time(b % 64)
			sh := shardOf(a)
			switch op {
			case 0: // owned push
				p := &pair{id: nextID}
				p.se = s.Push(sh, at, func(Time) {})
				p.oe = oracle.Push(at, func(Time) {})
				idOfS[p.se] = p
				owned = append(owned, p)
				nextID++
			case 1: // pooled push
				p := &pair{id: nextID}
				p.se = s.PushPooled(sh, at, func(Time) {})
				p.oe = oracle.PushPooled(at, func(Time) {})
				idOfS[p.se] = p
				nextID++
			case 2:
				popBoth()
			case 3: // reschedule, possibly across shards
				if len(owned) == 0 {
					continue
				}
				p := owned[int(a)%len(owned)]
				if !p.se.Queued() {
					continue // fired handles of pooled pairs are recycled
				}
				newShard := shardOf(b >> 4)
				s.Schedule(p.se, newShard, at)
				oracle.Schedule(p.oe, at)
			case 4: // remove
				if len(owned) == 0 {
					continue
				}
				p := owned[int(a)%len(owned)]
				gotS, gotO := s.Remove(p.se), oracle.Remove(p.oe)
				if gotS != gotO {
					t.Fatalf("Remove(event %d): sharded=%v oracle=%v", p.id, gotS, gotO)
				}
				if gotS {
					delete(idOfS, p.se)
				}
			}
		}

		// Window phase: drain what remains through the parallel-window
		// primitives. The horizon is the earliest control event (or the
		// end of time), exactly as the machine computes it.
		horizon := Time(1 << 62)
		if g := s.PeekGlobal(); g != nil {
			horizon = g.At
		}
		s.BeginWindow()
		for sh := 0; sh < s.Shards(); sh++ {
			last := Time(-1 << 62)
			repushed := false
			for {
				e := s.ShardPopBefore(sh, horizon)
				if e == nil {
					break
				}
				if e.At >= horizon {
					t.Fatalf("shard %d popped event at %d beyond horizon %d", sh, e.At, horizon)
				}
				if e.At < last {
					t.Fatalf("shard %d popped out of order: %d after %d", sh, e.At, last)
				}
				last = e.At
				if !repushed {
					// In-window scheduling onto the own shard must stay
					// legal (once, so the drain terminates: the re-pushed
					// event may itself be popped and is not re-pushed again).
					repushed = true
					s.PushPooled(sh, e.At+1, func(Time) {})
				}
				s.ShardRelease(e)
			}
			if h := s.ShardPeek(sh); h != nil && h.At < horizon {
				t.Fatalf("shard %d still holds pre-horizon event at %d after drain", sh, h.At)
			}
		}
		s.EndWindow()
		// The sequence fold must keep post-window same-time pushes in
		// push order across shards. Identity, not time, marks the probe
		// events: leftover script events may share their timestamp.
		var post []*Event
		isPost := map[*Event]bool{}
		for k := 0; k < 2*nsh; k++ {
			e := s.Push(k%nsh, horizon+10, func(Time) {})
			post = append(post, e)
			isPost[e] = true
		}
		for k := 0; ; k++ {
			e := s.Pop()
			if e == nil {
				break
			}
			if isPost[e] {
				if e != post[0] {
					t.Fatalf("post-window pop %d out of push order", k)
				}
				post = post[1:]
			}
		}
		if len(post) != 0 {
			t.Fatalf("%d post-window events never popped", len(post))
		}
	})
}
