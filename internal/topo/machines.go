package topo

import (
	"fmt"
	"time"

	"repro/internal/cpuset"
)

// Linux 2.6.28-era balancing parameters, as summarised in the paper's §2:
// idle cores balance every 1–2 timer ticks (10 ms tick on a server) on
// UMA and every 64 ms on NUMA; busy cores every 64–128 ms for SMT,
// 64–256 ms for shared packages, and 256–1024 ms for NUMA. Imbalance
// percentage is 125 for most domains, 110 for SMT. We store a single
// representative interval per (level, busy/idle) drawn from those ranges.
const (
	smtBusyInterval    = 64 * time.Millisecond
	cacheBusyInterval  = 64 * time.Millisecond
	socketBusyInterval = 128 * time.Millisecond
	numaBusyInterval   = 256 * time.Millisecond

	umaIdleInterval  = 10 * time.Millisecond
	numaIdleInterval = 64 * time.Millisecond
)

// Tigerton returns the UMA machine from Table 1: quad-socket quad-core
// Intel Xeon E7310 at 1.6 GHz, 4 MB L2 per core pair, no L3, no NUMA.
// Core numbering: socket s holds cores 4s..4s+3; cores (4s, 4s+1) and
// (4s+2, 4s+3) are the L2 pairs.
func Tigerton() *Topology {
	const nCores = 16
	t := &Topology{
		Name:         "tigerton",
		NUMANodes:    1,
		MemBandwidth: 4.0, // GB/s per-core refill over the FSB
	}
	for c := 0; c < nCores; c++ {
		t.Cores = append(t.Cores, CoreInfo{
			ID:          c,
			BaseSpeed:   1.0,
			Node:        0,
			Socket:      c / 4,
			CacheGroup:  c / 2,
			SMTSiblings: cpuset.Of(c),
		})
	}
	for g := 0; g < nCores/2; g++ {
		t.Caches = append(t.Caches, Cache{
			Name:  "L2",
			Size:  4 << 20,
			Cores: cpuset.Range(2*g, 2*g+2),
		})
	}
	// Each socket's four cores share a front-side bus; the FSB sustains
	// about one fully memory-bound core at full speed — the bottleneck
	// behind the modest 16-core NAS speedups on this machine (Table 2:
	// 4.6–7.2). With capacity C and four threads of memory intensity m
	// per socket, per-core efficiency is 1−m+C/4.
	for s := 0; s < 4; s++ {
		t.MemDomains = append(t.MemDomains, MemDomain{
			Cores:    cpuset.Range(4*s, 4*s+4),
			Capacity: 1.0,
		})
	}
	t.Levels = []DomainLevel{
		{
			Name:         "MC",
			Groups:       pairGroups(nCores),
			BusyInterval: cacheBusyInterval,
			IdleInterval: umaIdleInterval,
			ImbalancePct: 125,
			NewIdle:      true,
		},
		{
			Name:         "CPU",
			Groups:       quadGroups(nCores),
			BusyInterval: socketBusyInterval,
			IdleInterval: umaIdleInterval,
			ImbalancePct: 125,
			NewIdle:      true,
		},
		{
			Name:         "SYS",
			Groups:       []cpuset.Set{cpuset.All(nCores)},
			BusyInterval: socketBusyInterval * 2,
			IdleInterval: umaIdleInterval,
			ImbalancePct: 125,
			NewIdle:      true,
		},
	}
	return t
}

// Barcelona returns the NUMA machine from Table 1: quad-socket quad-core
// AMD Opteron 8350 at 2.0 GHz, 512 KB L2 per core, 2 MB L3 per socket,
// one NUMA node per socket. Core numbering: node/socket s holds cores
// 4s..4s+3.
func Barcelona() *Topology {
	const nCores = 16
	t := &Topology{
		Name:                "barcelona",
		NUMANodes:           4,
		RemoteMemoryPenalty: 0.5, // fully memory-bound remote task runs at 1/1.5 speed
		MemBandwidth:        6.0, // GB/s local refill via on-die controller
	}
	for c := 0; c < nCores; c++ {
		t.Cores = append(t.Cores, CoreInfo{
			ID:          c,
			BaseSpeed:   1.0,
			Node:        c / 4,
			Socket:      c / 4,
			CacheGroup:  c / 4, // shared L3 per socket
			SMTSiblings: cpuset.Of(c),
		})
	}
	for c := 0; c < nCores; c++ {
		t.Caches = append(t.Caches, Cache{
			Name:  "L2",
			Size:  512 << 10,
			Cores: cpuset.Of(c),
		})
	}
	for s := 0; s < 4; s++ {
		t.Caches = append(t.Caches, Cache{
			Name:  "L3",
			Size:  2 << 20,
			Cores: cpuset.Range(4*s, 4*s+4),
		})
	}
	// Each node's on-die memory controller sustains roughly twice what
	// Tigerton's FSB does — Table 2's Barcelona speedups (8.4–12.4) are
	// about double the Tigerton ones.
	for s := 0; s < 4; s++ {
		t.MemDomains = append(t.MemDomains, MemDomain{
			Cores:    cpuset.Range(4*s, 4*s+4),
			Capacity: 2.4,
		})
	}
	t.Levels = []DomainLevel{
		{
			Name:         "MC",
			Groups:       quadGroups(nCores),
			BusyInterval: cacheBusyInterval,
			IdleInterval: umaIdleInterval,
			ImbalancePct: 125,
			NewIdle:      true,
		},
		{
			Name:         "NODE",
			Groups:       []cpuset.Set{cpuset.All(nCores)},
			BusyInterval: numaBusyInterval,
			IdleInterval: numaIdleInterval,
			ImbalancePct: 125,
			NewIdle:      false,
			NUMA:         true,
		},
	}
	return t
}

// Nehalem returns a 2-socket, 4-core, 2-way SMT machine (the 2x4x(2)
// system mentioned in §6): 16 logical CPUs. Logical CPU numbering follows
// Linux convention: CPU c and c+8 are SMT siblings; socket 0 holds
// physical cores 0-3 (logical 0-3 and 8-11).
func Nehalem() *Topology {
	const nLogical = 16
	t := &Topology{
		Name:                "nehalem",
		NUMANodes:           2,
		RemoteMemoryPenalty: 0.3,
		MemBandwidth:        8.0,
	}
	for c := 0; c < nLogical; c++ {
		phys := c % 8
		t.Cores = append(t.Cores, CoreInfo{
			ID:          c,
			BaseSpeed:   1.0,
			Node:        phys / 4,
			Socket:      phys / 4,
			CacheGroup:  phys / 4, // shared L3 per socket
			SMTSiblings: cpuset.Of(phys, phys+8),
		})
	}
	for s := 0; s < 2; s++ {
		t.Caches = append(t.Caches, Cache{
			Name:  "L3",
			Size:  8 << 20,
			Cores: cpuset.Range(4*s, 4*s+4).Union(cpuset.Range(4*s+8, 4*s+12)),
		})
	}
	// Triple-channel DDR3 per socket: generous bandwidth.
	for s := 0; s < 2; s++ {
		t.MemDomains = append(t.MemDomains, MemDomain{
			Cores:    cpuset.Range(4*s, 4*s+4).Union(cpuset.Range(4*s+8, 4*s+12)),
			Capacity: 3.0,
		})
	}
	var smtGroups []cpuset.Set
	for phys := 0; phys < 8; phys++ {
		smtGroups = append(smtGroups, cpuset.Of(phys, phys+8))
	}
	var socketGroups []cpuset.Set
	for s := 0; s < 2; s++ {
		socketGroups = append(socketGroups, cpuset.Range(4*s, 4*s+4).Union(cpuset.Range(4*s+8, 4*s+12)))
	}
	t.Levels = []DomainLevel{
		{
			Name:         "SMT",
			Groups:       smtGroups,
			BusyInterval: smtBusyInterval,
			IdleInterval: umaIdleInterval,
			ImbalancePct: 110,
			NewIdle:      true,
		},
		{
			Name:         "MC",
			Groups:       socketGroups,
			BusyInterval: cacheBusyInterval,
			IdleInterval: umaIdleInterval,
			ImbalancePct: 125,
			NewIdle:      true,
		},
		{
			Name:         "NODE",
			Groups:       []cpuset.Set{cpuset.All(nLogical)},
			BusyInterval: numaBusyInterval,
			IdleInterval: numaIdleInterval,
			ImbalancePct: 125,
			NewIdle:      false,
			NUMA:         true,
		},
	}
	return t
}

// SMP returns a flat UMA machine with n identical cores and a single
// system-level scheduling domain — the simplest possible substrate, used
// by unit tests and the analytic-model validation.
func SMP(n int) *Topology {
	return Asymmetric(uniform(n))
}

// Fabric returns a datacenter-scale NUMA machine: sockets packages, each
// a NUMA node of coresPer cores (no SMT), with an 8 MB last-level cache
// and an on-die memory controller per socket. Core numbering is
// contiguous per socket: socket s holds cores [s·coresPer, (s+1)·coresPer).
// Cores within a socket share the L3 in groups of four (a mesh-slice
// cluster), mirroring the Tigerton pair / Barcelona socket structure at
// larger scale.
//
// Fabric(16, 64) is the 1,024-core reference machine of the sharded
// simulator: sixteen single-node sockets map one-to-one onto event-queue
// shards, so conservative-lookahead windows parallelise perfectly.
func Fabric(sockets, coresPer int) *Topology {
	n := sockets * coresPer
	if sockets <= 0 || coresPer <= 0 || n > cpuset.MaxCPU {
		panic(fmt.Sprintf("topo: invalid fabric %d sockets x %d cores", sockets, coresPer))
	}
	t := &Topology{
		Name:                fmt.Sprintf("fabric%dx%d", sockets, coresPer),
		NUMANodes:           sockets,
		RemoteMemoryPenalty: 0.5,
		MemBandwidth:        12.0,
	}
	// L3-slice clusters of four cores; a short final cluster absorbs a
	// coresPer that is not a multiple of four.
	cluster := 4
	if coresPer < cluster {
		cluster = coresPer
	}
	for c := 0; c < n; c++ {
		t.Cores = append(t.Cores, CoreInfo{
			ID:          c,
			BaseSpeed:   1.0,
			Node:        c / coresPer,
			Socket:      c / coresPer,
			CacheGroup:  c / cluster,
			SMTSiblings: cpuset.Of(c),
		})
	}
	var clusterGroups []cpuset.Set
	for s := 0; s < sockets; s++ {
		lo, hi := s*coresPer, (s+1)*coresPer
		t.Caches = append(t.Caches, Cache{
			Name:  "L3",
			Size:  8 << 20,
			Cores: cpuset.Range(lo, hi),
		})
		// Modern per-socket controllers sustain several fully
		// memory-bound cores at once.
		t.MemDomains = append(t.MemDomains, MemDomain{
			Cores:    cpuset.Range(lo, hi),
			Capacity: 8.0,
		})
		for g := lo; g < hi; g += cluster {
			end := g + cluster
			if end > hi {
				end = hi
			}
			clusterGroups = append(clusterGroups, cpuset.Range(g, end))
		}
	}
	var socketGroups []cpuset.Set
	for s := 0; s < sockets; s++ {
		socketGroups = append(socketGroups, cpuset.Range(s*coresPer, (s+1)*coresPer))
	}
	t.Levels = []DomainLevel{
		{
			Name:         "MC",
			Groups:       clusterGroups,
			BusyInterval: cacheBusyInterval,
			IdleInterval: umaIdleInterval,
			ImbalancePct: 125,
			NewIdle:      true,
		},
		{
			Name:         "CPU",
			Groups:       socketGroups,
			BusyInterval: socketBusyInterval,
			IdleInterval: umaIdleInterval,
			ImbalancePct: 125,
			NewIdle:      true,
		},
		{
			Name:         "NODE",
			Groups:       []cpuset.Set{cpuset.All(n)},
			BusyInterval: numaBusyInterval,
			IdleInterval: numaIdleInterval,
			ImbalancePct: 125,
			NewIdle:      false,
			NUMA:         true,
		},
	}
	return t
}

// Asymmetric returns a flat UMA machine whose core i runs at speeds[i]
// times the reference clock. This models condition 2 from the paper's
// introduction (e.g. Turbo Boost over-clocking a subset of cores).
func Asymmetric(speeds []float64) *Topology {
	n := len(speeds)
	if n == 0 || n > cpuset.MaxCPU {
		panic(fmt.Sprintf("topo: invalid core count %d", n))
	}
	t := &Topology{
		Name:         fmt.Sprintf("smp%d", n),
		NUMANodes:    1,
		MemBandwidth: 4.0,
	}
	for c := 0; c < n; c++ {
		t.Cores = append(t.Cores, CoreInfo{
			ID:          c,
			BaseSpeed:   speeds[c],
			SMTSiblings: cpuset.Of(c),
		})
	}
	t.Caches = append(t.Caches, Cache{Name: "LLC", Size: 4 << 20, Cores: cpuset.All(n)})
	t.Levels = []DomainLevel{
		{
			Name:         "SYS",
			Groups:       []cpuset.Set{cpuset.All(n)},
			BusyInterval: socketBusyInterval,
			IdleInterval: umaIdleInterval,
			ImbalancePct: 125,
			NewIdle:      true,
		},
	}
	return t
}

// Validate checks structural invariants: every level partitions the core
// set, core attributes are self-consistent, and levels are ordered
// innermost-first (group sizes non-decreasing). It returns the first
// violation found.
func (t *Topology) Validate() error {
	n := len(t.Cores)
	if n == 0 {
		return fmt.Errorf("topology %q has no cores", t.Name)
	}
	all := cpuset.All(n)
	for i, c := range t.Cores {
		if c.ID != i {
			return fmt.Errorf("core %d has ID %d", i, c.ID)
		}
		if c.BaseSpeed <= 0 {
			return fmt.Errorf("core %d has non-positive speed %v", i, c.BaseSpeed)
		}
		if !c.SMTSiblings.Has(i) {
			return fmt.Errorf("core %d not in its own SMT sibling set", i)
		}
		if c.Node < 0 || c.Node >= t.NUMANodes {
			return fmt.Errorf("core %d on node %d outside [0,%d)", i, c.Node, t.NUMANodes)
		}
	}
	prevSize := 0
	for li, l := range t.Levels {
		var union cpuset.Set
		size := -1
		for _, g := range l.Groups {
			if !union.Intersect(g).Empty() {
				return fmt.Errorf("level %s: overlapping groups", l.Name)
			}
			union = union.Union(g)
			if size == -1 {
				size = g.Count()
			}
		}
		if union != all {
			return fmt.Errorf("level %s: groups cover %v, want %v", l.Name, union, all)
		}
		if size < prevSize {
			return fmt.Errorf("level %d (%s) smaller than inner level", li, l.Name)
		}
		prevSize = size
		if l.ImbalancePct < 100 {
			return fmt.Errorf("level %s: imbalance pct %d < 100", l.Name, l.ImbalancePct)
		}
	}
	if len(t.MemDomains) > 0 {
		var union cpuset.Set
		for i, d := range t.MemDomains {
			if d.Capacity <= 0 {
				return fmt.Errorf("mem domain %d: capacity %v", i, d.Capacity)
			}
			if !union.Intersect(d.Cores).Empty() {
				return fmt.Errorf("mem domain %d overlaps another", i)
			}
			union = union.Union(d.Cores)
		}
		if union != all {
			return fmt.Errorf("mem domains cover %v, want %v", union, all)
		}
	}
	return nil
}

func pairGroups(n int) []cpuset.Set {
	var gs []cpuset.Set
	for i := 0; i < n; i += 2 {
		gs = append(gs, cpuset.Range(i, i+2))
	}
	return gs
}

func quadGroups(n int) []cpuset.Set {
	var gs []cpuset.Set
	for i := 0; i < n; i += 4 {
		gs = append(gs, cpuset.Range(i, i+4))
	}
	return gs
}

func uniform(n int) []float64 {
	s := make([]float64, n)
	for i := range s {
		s[i] = 1.0
	}
	return s
}
