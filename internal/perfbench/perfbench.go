// Package perfbench is the continuous benchmark harness behind `lbos
// bench`: it runs a fixed suite of simulator benchmarks, reports them as
// a BENCH_<n>.json document, and gates regressions against a committed
// baseline.
//
// The suite has three kinds of cases:
//
//   - calib: a pure-arithmetic spin, independent of the simulator. Its
//     ns/op measures the host, so dividing every other case's ns/op by
//     it (the ns_norm field) yields a hardware-normalised figure that
//     can be compared against a baseline recorded on a different
//     machine. Allocation counts need no such normalisation — they are
//     exact and host-independent.
//   - wake: a balancer-wake micro-benchmark. One op advances a
//     steady-state oversubscribed speed-balanced application by one
//     balance interval, exercising the event-queue and sampling hot
//     paths with tracing off.
//   - experiment cases (fig2, fig3t, fig5, abl-int): full experiment
//     runs at pinned seed and scale. Their events_per_sec is the
//     end-to-end simulator throughput the ROADMAP cares about.
//   - serve: a warm-cache POST through the lbosd handler stack. It
//     runs no simulation at all; its ns/op and allocs/op bound the
//     overhead the serving layer adds to a repeated query.
//
// Regression gate: a report compared against a baseline fails when any
// case's allocs/op grows beyond the tolerance, or its calibrated ns/op
// (ns_norm) does. Wall-clock noise is absorbed by the calibration case;
// allocation counts are deterministic.
package perfbench

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"runtime"
	"strings"
	"testing"
	"time"

	"repro/internal/cfs"
	"repro/internal/cpuset"
	"repro/internal/exp"
	"repro/internal/linuxlb"
	"repro/internal/metrics"
	"repro/internal/openload"
	"repro/internal/perturb"
	"repro/internal/predict"
	"repro/internal/serve"
	"repro/internal/sim"
	"repro/internal/speedbal"
	"repro/internal/spmd"
	"repro/internal/topo"
)

// Schema is the BENCH_<n>.json schema version.
const Schema = 1

// suiteSeed pins every simulation in the suite.
const suiteSeed = 20100109

// Case is one benchmark measurement in a report.
type Case struct {
	Name string `json:"name"`
	Desc string `json:"desc,omitempty"`
	// N is the iteration count the numbers below are averaged over.
	N int `json:"n"`
	// NsPerOp is raw wall time per op — host-dependent; compare NsNorm.
	NsPerOp float64 `json:"ns_per_op"`
	// BytesPerOp and AllocsPerOp come from the Go allocator and are
	// host-independent.
	BytesPerOp  int64 `json:"bytes_per_op"`
	AllocsPerOp int64 `json:"allocs_per_op"`
	// EventsPerOp counts simulator events processed per op (0 for the
	// calibration case); it is a pure function of the seed.
	EventsPerOp float64 `json:"events_per_op,omitempty"`
	// EventsPerSec is the simulator throughput EventsPerOp/NsPerOp.
	EventsPerSec float64 `json:"events_per_sec,omitempty"`
	// NsNorm is NsPerOp divided by the calibration case's NsPerOp —
	// the hardware-normalised cost a baseline comparison uses.
	NsNorm float64 `json:"ns_norm,omitempty"`
}

// Report is the BENCH_<n>.json document.
type Report struct {
	Schema    int    `json:"schema"`
	Tool      string `json:"tool"`
	GoVersion string `json:"go"`
	GOOS      string `json:"goos"`
	GOARCH    string `json:"goarch"`
	Suite     []Case `json:"suite"`
	// Comparison is present when the run was gated against a baseline.
	Comparison *Comparison `json:"comparison,omitempty"`
}

// Comparison records a baseline gate evaluation.
type Comparison struct {
	Baseline  string  `json:"baseline"`
	Tolerance float64 `json:"tolerance"`
	Deltas    []Delta `json:"deltas"`
	// Regressions lists human-readable gate failures; empty means pass.
	Regressions []string `json:"regressions,omitempty"`
}

// Delta is one case's new/baseline ratios (1.0 = unchanged, lower is
// better for costs, higher is better for events_per_sec).
type Delta struct {
	Name              string  `json:"name"`
	NsNormRatio       float64 `json:"ns_norm_ratio,omitempty"`
	AllocsRatio       float64 `json:"allocs_ratio,omitempty"`
	EventsPerSecRatio float64 `json:"events_per_sec_ratio,omitempty"`
}

// Spec declares one suite case: bench runs the measurement b.N times and
// returns the total number of simulator events processed inside the
// timed region.
type Spec struct {
	Name  string
	Desc  string
	bench func(b *testing.B) (events int64)
}

// Suite returns the fixed benchmark suite, calibration first.
func Suite() []Spec {
	return []Spec{
		{
			Name:  "calib",
			Desc:  "pure-arithmetic host calibration (normalises ns/op across machines)",
			bench: calibBench,
		},
		{
			Name:  "wake",
			Desc:  "one balance interval of a steady-state speed-balanced app, tracing off",
			bench: wakeBench,
		},
		{
			Name:  "predict",
			Desc:  "the wake scenario with the predictive balancer mode armed",
			bench: predictBench,
		},
		{
			Name:  "perturb",
			Desc:  "the wake scenario with the full fault-injection mix active",
			bench: perturbBench,
		},
		{
			Name:  "fab1k",
			Desc:  "1,024-core fabric: 16 socket-pinned apps on 16 parallel event shards",
			bench: fabric1kBench,
		},
		{
			Name:  "open",
			Desc:  "open-system arrivals at rho=0.8 under the Linux balancer, tracing off",
			bench: openBench,
		},
		{
			Name:  "serve",
			Desc:  "lbosd cache hit: one warm POST /v1/runs?wait=1 through the full handler stack",
			bench: serveBench,
		},
		experimentCase("fig2", "round-robin vs load-balanced placement sweep"),
		experimentCase("fig3t", "speedup of NAS-like benchmarks under the balancers"),
		experimentCase("fig5", "multiprogrammed speedup"),
		experimentCase("abl-int", "balance-interval ablation"),
	}
}

// sink defeats dead-code elimination in calibBench.
var sink uint64

// calibBench spins a fixed amount of integer arithmetic: no memory
// traffic, no simulator, no allocation — as close to a pure clock-rate
// probe as portable Go gets.
func calibBench(b *testing.B) int64 {
	b.ReportAllocs()
	x := uint64(0x9e3779b97f4a7c15)
	for i := 0; i < b.N; i++ {
		for j := 0; j < 1<<21; j++ {
			x ^= x << 13
			x ^= x >> 7
			x ^= x << 17
		}
	}
	sink = x
	return 0
}

// wakeBench measures the balancer-wake hot path: 32 UPC threads on the
// 16-core Tigerton under speed balancing, advanced one 100 ms balance
// interval per op. The app is effectively endless, so every op does the
// same steady-state work: ~16 balancer wakes (sample + balance) plus the
// compute/barrier event traffic they ride on.
func wakeBench(b *testing.B) int64 {
	m := sim.New(topo.Tigerton(), sim.Config{Seed: suiteSeed, NewScheduler: cfs.Factory()})
	app := spmd.Build(m, spmd.Spec{
		Name:             "wake",
		Threads:          32,
		Iterations:       1 << 30,
		WorkPerIteration: 3e6, // 3 ms between barriers
		Model:            spmd.UPC(),
	})
	bal := speedbal.New(speedbal.Config{})
	bal.Launch(m, app)
	m.RunFor(time.Second) // reach steady state
	before := m.Stats.Events
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m.RunFor(100 * time.Millisecond)
	}
	b.StopTimer()
	return int64(m.Stats.Events - before)
}

// predictBench is wakeBench with the predictive mode armed: the same
// steady-state app, but every balance interval now also feeds the
// per-thread and per-core speed estimators, blends effective speeds and
// audits last interval's slowest-core call. Its delta over the wake
// case is the marginal cost of prediction; the wake case itself (which
// leaves Predict zero) is what proves the predictive plumbing stays off
// the hot path when disabled.
func predictBench(b *testing.B) int64 {
	m := sim.New(topo.Tigerton(), sim.Config{Seed: suiteSeed, NewScheduler: cfs.Factory()})
	app := spmd.Build(m, spmd.Spec{
		Name:             "predict",
		Threads:          32,
		Iterations:       1 << 30,
		WorkPerIteration: 3e6,
		Model:            spmd.UPC(),
	})
	bal := speedbal.New(speedbal.Config{Predict: predict.DefaultConfig()})
	bal.Launch(m, app)
	m.RunFor(time.Second)
	before := m.Stats.Events
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m.RunFor(100 * time.Millisecond)
	}
	b.StopTimer()
	return int64(m.Stats.Events - before)
}

// perturbBench is wakeBench with every fault-injection family active:
// schedulable kthread noise, hotplug churn, frequency drift and
// interrupt storms, with periods compressed so each 100 ms op sees
// events from all four. It pins the injector hot paths — timer-driven
// steal application, daemon wake/sleep cycling, drain/replug — so a
// perturbation-layer slowdown lands with a number attached.
func perturbBench(b *testing.B) int64 {
	m := sim.New(topo.Tigerton(), sim.Config{Seed: suiteSeed, NewScheduler: cfs.Factory()})
	noise := perturb.KthreadNoise()
	noise.Cores = cpuset.Of(0, 2, 5, 9)
	in := perturb.New(perturb.Config{
		Noise: noise,
		Hotplug: perturb.HotplugConfig{Interval: 80 * time.Millisecond,
			OffTime: 30 * time.Millisecond, Jitter: 0.5, MaxOffline: 1},
		Freq: perturb.FreqConfig{Interval: 25 * time.Millisecond, Min: 0.6, Max: 1.0,
			Step: 0.1, Jitter: 0.5},
		Storm: perturb.StormConfig{Period: 60 * time.Millisecond,
			Duration: 2 * time.Millisecond, Jitter: 0.5, Steal: 1.0},
	})
	m.AddActor(in)
	app := spmd.Build(m, spmd.Spec{
		Name:             "perturb",
		Threads:          32,
		Iterations:       1 << 30,
		WorkPerIteration: 3e6,
		Model:            spmd.UPC(),
	})
	bal := speedbal.New(speedbal.Config{})
	bal.Launch(m, app)
	m.RunFor(time.Second)
	before := m.Stats.Events
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m.RunFor(100 * time.Millisecond)
	}
	b.StopTimer()
	return int64(m.Stats.Events - before)
}

// openBench measures the open-system admission/departure hot path: an
// endless-horizon openload generator at ρ=0.8 on the 16-core Tigerton
// under the Linux balancer, advanced 100 ms per op. Each op covers the
// whole arrival pipeline — exponential draws, control-queue timers,
// task creation, placement, per-job accounting on departure — on top of
// the scheduler traffic the admitted jobs generate.
func openBench(b *testing.B) int64 {
	m := sim.New(topo.Tigerton(), sim.Config{Seed: suiteSeed, NewScheduler: cfs.Factory()})
	m.AddActor(linuxlb.Default())
	m.AddActor(openload.New(openload.Config{Rho: 0.8}))
	m.RunFor(time.Second) // reach steady state
	before := m.Stats.Events
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m.RunFor(100 * time.Millisecond)
	}
	b.StopTimer()
	return int64(m.Stats.Events - before)
}

// serveBench measures the lbosd cache-hit path end to end: the cache
// is warmed with one real fig1 run, then every op is a full POST
// /v1/runs?wait=1 through the HTTP handler stack — spec parse,
// canonicalization, SHA-256 key derivation, cache lookup and response
// serialisation — that must come back a hit without touching the
// worker pool. This is the overhead a warm lbosd adds on top of zero
// simulation work; a regression here means repeated queries stopped
// being effectively free.
func serveBench(b *testing.B) int64 {
	s := serve.New(serve.Config{Workers: 1, QueueDepth: 4, Version: "bench"})
	defer s.Drain()
	h := s.Handler()
	spec := `{"experiment":"fig1","reps":1,"scale":8,"seed":20100109}`
	post := func() *httptest.ResponseRecorder {
		req := httptest.NewRequest("POST", "/v1/runs?wait=1", strings.NewReader(spec))
		w := httptest.NewRecorder()
		h.ServeHTTP(w, req)
		return w
	}
	if w := post(); w.Code != http.StatusOK {
		panic(fmt.Sprintf("perfbench: serve warmup failed: %d %s", w.Code, w.Body.String()))
	}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if w := post(); w.Code != http.StatusOK || w.Header().Get("X-Lbos-Cache") != serve.CacheHit {
			panic(fmt.Sprintf("perfbench: serve op was not a cache hit: %d %q",
				w.Code, w.Header().Get("X-Lbos-Cache")))
		}
	}
	b.StopTimer()
	return 0
}

// fabric1kSetup assembles the datacenter-scale sharded scenario: a
// 16-socket × 64-core fabric (1,024 cores), one pinned 64-thread
// UPC-sleep app per socket, and a Linux balancer instance per socket
// domain, on 16 event shards with parallel lookahead windows. Every
// task, barrier and balancer is socket-contained, so the simulation runs
// almost entirely inside parallel windows — the configuration the
// 1,024-core throughput case exists to gate.
func fabric1kSetup() *sim.Machine {
	tp := topo.Fabric(16, 64)
	m := sim.New(tp, sim.Config{Seed: suiteSeed, NewScheduler: cfs.Factory(),
		Shards: 16, ShardParallel: true})
	perSocket := make([]cpuset.Set, 16)
	for _, ci := range tp.Cores {
		perSocket[ci.Socket] = perSocket[ci.Socket].Add(ci.ID)
	}
	for s, set := range perSocket {
		lcfg := linuxlb.DefaultConfig()
		lcfg.Domain = set
		m.AddActor(linuxlb.New(lcfg))
		app := spmd.Build(m, spmd.Spec{
			Name:             fmt.Sprintf("sock%02d", s),
			Threads:          set.Count(),
			Iterations:       1 << 30,
			WorkPerIteration: float64(300 * time.Microsecond),
			WorkJitter:       0.3,
			MemIntensity:     0.4,
			RSSBytes:         1 << 20,
			Model:            spmd.UPCSleep(),
			Affinity:         set,
		})
		app.StartPinned()
	}
	return m
}

// fabric1kBench measures end-to-end sharded throughput at 1,024 cores:
// one op advances the fabric1kSetup steady state by 10 ms of simulated
// time. The events/s figure is the scale headline; the ns_norm and
// allocs gates catch regressions in the shard merge and window machinery
// that the paper-sized cases cannot see.
func fabric1kBench(b *testing.B) int64 {
	m := fabric1kSetup()
	m.RunFor(100 * time.Millisecond) // reach steady state
	before := m.Stats.Events
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m.RunFor(10 * time.Millisecond)
	}
	b.StopTimer()
	return int64(m.Stats.Events - before)
}

// experimentCase wraps a registered experiment as a suite case: one op
// is a full single-rep serial run at scale 8 and the pinned seed, with
// the event count taken from the harness metrics.
func experimentCase(id, desc string) Spec {
	return Spec{
		Name: id,
		Desc: desc,
		bench: func(b *testing.B) (events int64) {
			e, err := exp.ByID(id)
			if err != nil {
				panic(err)
			}
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				ctx := &exp.Context{
					Reps: 1, Scale: 8, Seed: suiteSeed,
					Parallelism: 1,
					Metrics:     metrics.NewAggregate(),
				}
				e.Run(ctx)
				events += counterValue(ctx.Metrics.Snapshot(), "sim.events")
			}
			return events
		},
	}
}

// counterValue reads one counter from a snapshot (0 when absent).
func counterValue(s metrics.Snapshot, name string) int64 {
	for _, c := range s.Counters {
		if c.Name == name {
			return c.Value
		}
	}
	return 0
}

// RunSuite executes the suite and assembles a report. log, when
// non-nil, receives a progress line per completed case.
func RunSuite(log io.Writer) *Report {
	r := &Report{
		Schema:    Schema,
		Tool:      "lbos bench",
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
	}
	var calibNs float64
	for _, spec := range Suite() {
		var events int64
		res := testing.Benchmark(func(b *testing.B) {
			events = spec.bench(b)
		})
		c := Case{
			Name:        spec.Name,
			Desc:        spec.Desc,
			N:           res.N,
			NsPerOp:     float64(res.T.Nanoseconds()) / float64(res.N),
			BytesPerOp:  res.AllocedBytesPerOp(),
			AllocsPerOp: res.AllocsPerOp(),
		}
		if events > 0 {
			c.EventsPerOp = float64(events) / float64(res.N)
			if res.T > 0 {
				c.EventsPerSec = float64(events) / res.T.Seconds()
			}
		}
		if spec.Name == "calib" {
			calibNs = c.NsPerOp
		} else if calibNs > 0 {
			c.NsNorm = c.NsPerOp / calibNs
		}
		r.Suite = append(r.Suite, c)
		if log != nil {
			fmt.Fprintf(log, "bench: %-8s %12.0f ns/op %8d allocs/op %10d B/op",
				c.Name, c.NsPerOp, c.AllocsPerOp, c.BytesPerOp)
			if c.EventsPerSec > 0 {
				fmt.Fprintf(log, " %12.0f events/s", c.EventsPerSec)
			}
			fmt.Fprintln(log)
		}
	}
	return r
}

// Compare evaluates report r against a baseline with the given relative
// tolerance (0.15 = 15%). The allocs/op gate is absolute (counts are
// host-independent); the ns/op gate uses the calibration-normalised
// figures so baselines recorded on other machines stay meaningful. The
// calibration case itself is never gated.
func Compare(r, base *Report, baselinePath string, tol float64) *Comparison {
	cmp := &Comparison{Baseline: baselinePath, Tolerance: tol}
	old := make(map[string]Case, len(base.Suite))
	for _, c := range base.Suite {
		old[c.Name] = c
	}
	for _, c := range r.Suite {
		if c.Name == "calib" {
			continue
		}
		o, ok := old[c.Name]
		if !ok {
			continue
		}
		d := Delta{Name: c.Name}
		if o.NsNorm > 0 && c.NsNorm > 0 {
			d.NsNormRatio = c.NsNorm / o.NsNorm
			if d.NsNormRatio > 1+tol {
				cmp.Regressions = append(cmp.Regressions, fmt.Sprintf(
					"%s: normalised ns/op regressed %.1f%% (%.3f -> %.3f, tolerance %.0f%%)",
					c.Name, (d.NsNormRatio-1)*100, o.NsNorm, c.NsNorm, tol*100))
			}
		}
		if o.AllocsPerOp > 0 {
			d.AllocsRatio = float64(c.AllocsPerOp) / float64(o.AllocsPerOp)
			if d.AllocsRatio > 1+tol {
				cmp.Regressions = append(cmp.Regressions, fmt.Sprintf(
					"%s: allocs/op regressed %.1f%% (%d -> %d, tolerance %.0f%%)",
					c.Name, (d.AllocsRatio-1)*100, o.AllocsPerOp, c.AllocsPerOp, tol*100))
			}
		}
		if o.EventsPerSec > 0 && c.EventsPerSec > 0 {
			d.EventsPerSecRatio = c.EventsPerSec / o.EventsPerSec
		}
		cmp.Deltas = append(cmp.Deltas, d)
	}
	return cmp
}

// WriteJSON writes the report as indented JSON.
func (r *Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// Load reads a report from a file.
func Load(path string) (*Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r Report
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("perfbench: parsing %s: %w", path, err)
	}
	if r.Schema != Schema {
		return nil, fmt.Errorf("perfbench: %s has schema %d, want %d", path, r.Schema, Schema)
	}
	return &r, nil
}
