// Package clean holds deterministic map-iteration patterns that must
// never fire: collect-then-sort, iteration-local builders, commutative
// aggregation, and ranges over slices.
package clean

import (
	"fmt"
	"sort"
	"strings"
)

// sortedKeys is the canonical idiom: the escaping append is blessed by
// the sort that follows.
func sortedKeys(m map[string]int) {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Println(k, m[k])
	}
}

// sortSlice blesses via sort.Slice instead of sort.Strings.
func sortSlice(m map[string]float64) []float64 {
	var vals []float64
	for _, v := range m {
		vals = append(vals, v)
	}
	sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
	return vals
}

// localBuilder writes only to an iteration-local builder that never
// leaves the loop body.
func localBuilder(m map[string]int) int {
	n := 0
	for k := range m {
		var b strings.Builder
		b.WriteString(k)
		n += b.Len()
	}
	return n
}

// aggregate is commutative: no output sink, no escaping append.
func aggregate(m map[string]int) int {
	sum := 0
	for _, v := range m {
		sum += v
	}
	return sum
}

// sliceRange iterates a slice; order is deterministic.
func sliceRange(xs []string) {
	for _, x := range xs {
		fmt.Println(x)
	}
}

// allowed demonstrates the escape hatch for a deliberate site.
func allowed(m map[string]int) {
	for k := range m {
		fmt.Println(k) //lint:allow-maporder diagnostic dump, order irrelevant
	}
}

// histogram mimics the metrics registry type.
type histogram struct{}

func (*histogram) Observe(x float64) {}

// sortedObserve feeds a histogram in deterministic key order: the map
// range only collects, the sorted second loop does the observing.
func sortedObserve(h *histogram, m map[string]float64) {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		h.Observe(m[k])
	}
}

// localObserve records only into an iteration-local histogram that
// never leaves the loop body.
func localObserve(m map[string]float64) {
	for _, v := range m {
		var h histogram
		h.Observe(v)
	}
}
