package cfs

import (
	"testing"
	"testing/quick"
	"time"

	"repro/internal/task"
)

func newTask(id int, nice int) *task.Task {
	t := &task.Task{ID: id, Nice: nice}
	t.Sched.Weight = task.NiceWeight(nice)
	return t
}

func TestPickOrderByVruntime(t *testing.T) {
	q := New(DefaultParams())
	a, b, c := newTask(1, 0), newTask(2, 0), newTask(3, 0)
	a.Sched.Vruntime, b.Sched.Vruntime, c.Sched.Vruntime = 30, 10, 20
	q.Enqueue(a, false)
	q.Enqueue(b, false)
	q.Enqueue(c, false)
	// All enqueued non-wakeup at minVruntime 0: vruntimes are preserved
	// relative to the queue clock.
	got := q.PickNext()
	if got != b {
		t.Fatalf("picked %d, want task 2 (lowest vruntime)", got.ID)
	}
}

func TestDoubleEnqueuePanics(t *testing.T) {
	q := New(DefaultParams())
	a := newTask(1, 0)
	q.Enqueue(a, false)
	defer func() {
		if recover() == nil {
			t.Error("no panic on double enqueue")
		}
	}()
	q.Enqueue(a, false)
}

func TestSliceProportionalToWeight(t *testing.T) {
	q := New(DefaultParams())
	hi, lo := newTask(1, -5), newTask(2, 0)
	q.Enqueue(hi, false)
	q.Enqueue(lo, false)
	sHi, sLo := q.Slice(hi), q.Slice(lo)
	if sHi <= sLo {
		t.Errorf("higher-priority slice %v not larger than %v", sHi, sLo)
	}
	// Floor at the minimum granularity.
	for i := 3; i < 20; i++ {
		q.Enqueue(newTask(i, 0), false)
	}
	if s := q.Slice(lo); s < DefaultParams().MinGranularity {
		t.Errorf("slice %v below min granularity", s)
	}
}

// Wakeup preemption requires a vruntime lead beyond the granularity.
func TestWakeupPreemption(t *testing.T) {
	q := New(DefaultParams())
	cur := newTask(1, 0)
	q.Enqueue(cur, false)
	if q.PickNext() != cur {
		t.Fatal("setup failed")
	}
	q.AccountExec(cur, 50*time.Millisecond)

	// A long sleeper gets the clamped credit and preempts.
	sleeper := newTask(2, 0)
	sleeper.Sched.Vruntime = 0
	if preempt := q.Enqueue(sleeper, true); !preempt {
		t.Error("far-behind sleeper did not preempt")
	}
	q.Dequeue(sleeper)

	// A task that slept just now, barely behind the runner, does not
	// preempt: its restored position is within the wakeup granularity.
	near := newTask(3, 0)
	near.Sched.QueueClock = q.MinVruntime()
	near.Sched.Vruntime = -int64(time.Millisecond) // 1 ms behind at sleep time
	if preempt := q.Enqueue(near, true); preempt {
		t.Error("near task preempted within wakeup granularity")
	}
}

// Sleeper credit is clamped: a task asleep for an hour resumes near the
// queue clock, not an hour behind.
func TestSleeperCreditClamped(t *testing.T) {
	p := DefaultParams()
	q := New(p)
	runner := newTask(1, 0)
	q.Enqueue(runner, false)
	q.PickNext()
	q.AccountExec(runner, time.Hour/1000) // advance the clock: 3.6s vruntime
	minV := q.MinVruntime()

	sleeper := newTask(2, 0)
	sleeper.Sched.Vruntime = 0
	q.Enqueue(sleeper, true)
	if got, floor := sleeper.Sched.Vruntime, minV-int64(p.SleeperCredit); got < floor {
		t.Errorf("sleeper vruntime %d below floor %d", got, floor)
	}
}

// Yield places the caller strictly behind every queued task.
func TestYieldGoesBehind(t *testing.T) {
	q := New(DefaultParams())
	a, b, c := newTask(1, 0), newTask(2, 0), newTask(3, 0)
	q.Enqueue(a, false)
	q.Enqueue(b, false)
	q.Enqueue(c, false)
	got := q.PickNext() // a (ID order at equal vruntime)
	q.Yield(got)
	q.PutPrev(got)
	if next := q.PickNext(); next == got {
		t.Error("yielded task picked again immediately")
	}
}

// Weighted fairness: vruntime advances inversely to weight.
func TestAccountExecWeighted(t *testing.T) {
	q := New(DefaultParams())
	hi, lo := newTask(1, -5), newTask(2, 0)
	q.Enqueue(hi, false)
	q.Enqueue(lo, false)
	q.Dequeue(hi)
	q.Dequeue(lo)
	hi.Sched.Vruntime, lo.Sched.Vruntime = 0, 0
	q.Enqueue(hi, false)
	q.PickNext()
	q.AccountExec(hi, 10*time.Millisecond)
	dHi := hi.Sched.Vruntime
	q.Dequeue(hi)

	q.Enqueue(lo, false)
	lo.Sched.Vruntime = q.MinVruntime() // normalise for comparison
	base := lo.Sched.Vruntime
	q.PickNext()
	q.AccountExec(lo, 10*time.Millisecond)
	dLo := lo.Sched.Vruntime - base

	ratio := float64(dLo) / float64(dHi)
	want := float64(task.NiceWeight(-5)) / float64(task.NiceWeight(0))
	if ratio < want*0.99 || ratio > want*1.01 {
		t.Errorf("vruntime ratio %.3f, want ≈ %.3f", ratio, want)
	}
}

// Dequeue of the running task detaches it; weights stay consistent.
func TestDequeueRunning(t *testing.T) {
	q := New(DefaultParams())
	a, b := newTask(1, 0), newTask(2, 0)
	q.Enqueue(a, false)
	q.Enqueue(b, false)
	cur := q.PickNext()
	q.Dequeue(cur)
	if q.NrRunnable() != 1 {
		t.Fatalf("NrRunnable = %d, want 1", q.NrRunnable())
	}
	if q.WeightedLoad() != 1024 {
		t.Errorf("WeightedLoad = %d, want 1024", q.WeightedLoad())
	}
	if next := q.PickNext(); next == cur {
		t.Error("dequeued task picked")
	}
}

// Vruntime normalisation: a task dequeued from a busy queue and
// enqueued on a fresh one does not carry an absolute advantage.
func TestVruntimeNormalisation(t *testing.T) {
	q1 := New(DefaultParams())
	a := newTask(1, 0)
	filler := newTask(2, 0)
	q1.Enqueue(filler, false)
	q1.Enqueue(a, false)
	q1.PickNext()
	q1.AccountExec(filler, time.Second) // q1 clock far ahead
	q1.Dequeue(a)

	q2 := New(DefaultParams())
	b := newTask(3, 0)
	q2.Enqueue(b, false)
	q2.Enqueue(a, false)
	// a must not be entitled to a full second of catch-up on q2.
	if gap := b.Sched.Vruntime - a.Sched.Vruntime; gap > int64(time.Second)/2 {
		t.Errorf("migrated task carried %v of vruntime advantage", time.Duration(gap))
	}
}

// MinVruntime never decreases.
func TestMinVruntimeMonotonic(t *testing.T) {
	q := New(DefaultParams())
	last := int64(0)
	a := newTask(1, 0)
	q.Enqueue(a, false)
	for i := 0; i < 100; i++ {
		tk := q.PickNext()
		q.AccountExec(tk, time.Millisecond)
		if mv := q.MinVruntime(); mv < last {
			t.Fatalf("minVruntime went backwards: %d < %d", mv, last)
		} else {
			last = mv
		}
		q.PutPrev(tk)
	}
}

// Property: random operation sequences keep queue counters consistent.
func TestPropertyQueueConsistency(t *testing.T) {
	f := func(ops []uint8) bool {
		q := New(DefaultParams())
		var queued []*task.Task
		var cur *task.Task
		nextID := 0
		for _, op := range ops {
			switch op % 5 {
			case 0: // enqueue new
				tk := newTask(nextID, int(op%7)-3)
				nextID++
				q.Enqueue(tk, op%2 == 0)
				queued = append(queued, tk)
			case 1: // pick
				if cur == nil {
					cur = q.PickNext()
					if cur != nil {
						for i, x := range queued {
							if x == cur {
								queued = append(queued[:i], queued[i+1:]...)
								break
							}
						}
					}
				}
			case 2: // account + putprev
				if cur != nil {
					q.AccountExec(cur, time.Duration(op)*time.Millisecond)
					q.PutPrev(cur)
					queued = append(queued, cur)
					cur = nil
				}
			case 3: // dequeue one
				if len(queued) > 0 {
					tk := queued[len(queued)-1]
					queued = queued[:len(queued)-1]
					q.Dequeue(tk)
				}
			case 4: // yield current
				if cur != nil {
					q.Yield(cur)
					q.PutPrev(cur)
					queued = append(queued, cur)
					cur = nil
				}
			}
			wantN := len(queued)
			if cur != nil {
				wantN++
			}
			if q.NrRunnable() != wantN {
				return false
			}
			var wantW int64
			for _, x := range queued {
				wantW += x.Sched.Weight
			}
			if cur != nil {
				wantW += cur.Sched.Weight
			}
			if q.WeightedLoad() != wantW {
				return false
			}
			if len(q.Queued()) != len(queued) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
