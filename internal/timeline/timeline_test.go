package timeline_test

import (
	"strings"
	"testing"
	"time"

	"repro/internal/cfs"
	"repro/internal/sim"
	"repro/internal/speedbal"
	"repro/internal/spmd"
	"repro/internal/task"
	"repro/internal/timeline"
	"repro/internal/topo"
)

func TestRecorderSamplesAndUtilisation(t *testing.T) {
	m := sim.New(topo.SMP(2), sim.Config{Seed: 1, NewScheduler: cfs.Factory()})
	rec := &timeline.Recorder{Period: 10 * time.Millisecond}
	m.AddActor(rec)
	// Core 0 busy the whole second; core 1 idle.
	hog := m.NewTask("hog", &task.ComputeForever{Chunk: 1e9})
	hog.Group = "hog"
	m.StartOn(hog, 0)
	m.RunFor(time.Second)
	u := rec.Utilisation()
	if len(u) != 2 {
		t.Fatalf("utilisation entries %d", len(u))
	}
	if u[0] < 0.99 {
		t.Errorf("core 0 utilisation %.2f, want ≈ 1", u[0])
	}
	if u[1] != 0 {
		t.Errorf("core 1 utilisation %.2f, want 0", u[1])
	}
	if len(rec.Samples()) != 2*100 {
		t.Errorf("samples %d, want 200", len(rec.Samples()))
	}
}

func TestGanttRendersGroupsAndLegend(t *testing.T) {
	m := sim.New(topo.SMP(2), sim.Config{Seed: 2, NewScheduler: cfs.Factory()})
	rec := &timeline.Recorder{Period: 20 * time.Millisecond}
	m.AddActor(rec)
	app := spmd.Build(m, spmd.Spec{
		Name: "app", Threads: 2, Iterations: 1, WorkPerIteration: 500e6,
		Model: spmd.UPC(),
	})
	app.StartPinned()
	m.RunFor(600 * time.Millisecond)
	var b strings.Builder
	rec.Gantt(&b, 40)
	out := b.String()
	if !strings.Contains(out, "core  0") || !strings.Contains(out, "legend:") {
		t.Fatalf("gantt missing structure:\n%s", out)
	}
	if !strings.Contains(out, "a=app") {
		t.Errorf("legend missing group letter:\n%s", out)
	}
	// Each core row shows the app running ('a') for the work duration.
	if strings.Count(out, "a") < 10 {
		t.Errorf("too few busy cells:\n%s", out)
	}
}

func TestGanttEmpty(t *testing.T) {
	m := sim.New(topo.SMP(1), sim.Config{Seed: 3, NewScheduler: cfs.Factory()})
	rec := &timeline.Recorder{}
	rec.Start(m)
	var b strings.Builder
	rec.Gantt(&b, 10)
	if !strings.Contains(b.String(), "no samples") {
		t.Errorf("empty gantt output %q", b.String())
	}
}

// Rotation under speed balancing is visible in the timeline: the app
// group occupies different core sets over time on an oversubscribed run.
func TestGroupRotationVisible(t *testing.T) {
	m := sim.New(topo.SMP(2), sim.Config{Seed: 4, NewScheduler: cfs.Factory()})
	rec := &timeline.Recorder{Period: 50 * time.Millisecond}
	m.AddActor(rec)
	app := spmd.Build(m, spmd.Spec{
		Name: "app", Threads: 3, Iterations: 1, WorkPerIteration: 2e9,
		Model: spmd.UPC(),
	})
	sb := speedbal.Default()
	sb.Launch(m, app)
	m.Run(int64(time.Minute))
	if !app.Done() {
		t.Fatal("app not done")
	}
	// With 3 threads on 2 cores both cores always run "app": per-core
	// rotation is invisible at group level, so check via per-task
	// migrations instead and ensure sampling kept up.
	if sb.Migrations == 0 {
		t.Error("no migrations to visualise")
	}
	if len(rec.Samples()) == 0 {
		t.Error("recorder captured nothing")
	}
}

func TestLimitStopsSampling(t *testing.T) {
	m := sim.New(topo.SMP(1), sim.Config{Seed: 5, NewScheduler: cfs.Factory()})
	rec := &timeline.Recorder{Period: time.Millisecond, Limit: 5}
	m.AddActor(rec)
	hog := m.NewTask("hog", &task.ComputeForever{Chunk: 1e9})
	m.StartOn(hog, 0)
	m.RunFor(time.Second)
	if got := len(rec.Samples()); got != 5 {
		t.Errorf("samples %d, want 5 (limit)", got)
	}
}
