// Package slotsafety implements the Runner cell-isolation analyzer.
//
// The experiment Runner (internal/exp) executes each submitted cell
// function concurrently on a worker pool and keeps output deterministic
// by landing every result in the slot indexed by its submission
// position. That contract holds only if a cell function is
// self-contained: it must not mutate state shared with other cells
// (results belong in the returned RunResult, aggregation in the ordered
// result callback, which the Runner serializes), and it must not lean on
// loop variables of the submission loop — the repo's convention is to
// snapshot them into iteration-locals so a cell's inputs are visibly
// frozen at submission time.
//
// The analyzer inspects every function literal passed as the cell (run)
// argument of Runner.SubmitFunc and flags:
//
//   - writes (assignment, ++/--, delete) whose target is declared
//     outside the literal — shared state mutated from worker
//     goroutines in completion order;
//   - reads of variables bound by an enclosing for/range clause —
//     capture a snapshot (v := v) before submitting instead.
//
// Reads of non-loop outer variables are allowed: cells routinely read
// workload specs built before the loop. //lint:allow-slotsafety
// suppresses a finding that is deliberate (e.g. an atomic counter).
//
// The same discipline governs the simulator's shard workers: inside a
// parallel lookahead window each shard goroutine (the machine launches
// them as `go func(s int) { ... }(s)`) may touch only the state of its
// own shard, and cross-shard effects happen at the merge point after
// the window closes. The analyzer therefore also inspects every
// function literal launched by a go statement and flags:
//
//   - writes to variables declared outside the literal, unless the
//     access path selects the worker's own slot — an index expression
//     whose index is one of the literal's integer parameters, the
//     per-shard idiom `states[s].field = ...` in `go func(s int)`;
//   - reads of enclosing loop variables — pass the value as an
//     argument (`go func(s int) { ... }(s)`) so each worker's identity
//     is fixed at launch.
package slotsafety

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/analysis"
)

// Analyzer is the slotsafety analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "slotsafety",
	Doc:  "flag Runner cell functions that capture loop variables or mutate shared state",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		walk(pass, f, nil)
	}
	return nil
}

// walk descends through f tracking the set of variables bound by
// enclosing loop clauses, so that when a SubmitFunc call is reached the
// loop-variable captures of its cell literal can be identified.
func walk(pass *analysis.Pass, n ast.Node, loopVars []types.Object) {
	switch n := n.(type) {
	case *ast.ForStmt:
		vars := loopVars
		if as, ok := n.Init.(*ast.AssignStmt); ok {
			for _, lhs := range as.Lhs {
				if id, ok := lhs.(*ast.Ident); ok {
					if obj := pass.TypesInfo.Defs[id]; obj != nil {
						vars = append(vars, obj)
					}
				}
			}
		}
		walkChildren(pass, n, vars)
		return
	case *ast.RangeStmt:
		vars := loopVars
		for _, e := range []ast.Expr{n.Key, n.Value} {
			if id, ok := e.(*ast.Ident); ok {
				if obj := pass.TypesInfo.Defs[id]; obj != nil {
					vars = append(vars, obj)
				}
			}
		}
		walkChildren(pass, n, vars)
		return
	case *ast.CallExpr:
		if lit := cellLiteral(pass, n); lit != nil {
			checkCell(pass, lit, loopVars)
		}
	case *ast.GoStmt:
		if lit, ok := n.Call.Fun.(*ast.FuncLit); ok {
			checkWorker(pass, lit, loopVars)
		}
	}
	walkChildren(pass, n, loopVars)
}

func walkChildren(pass *analysis.Pass, n ast.Node, loopVars []types.Object) {
	ast.Inspect(n, func(child ast.Node) bool {
		if child == n {
			return true
		}
		if child != nil {
			walk(pass, child, loopVars)
		}
		return false
	})
}

// cellLiteral returns the function literal passed as the cell (second)
// argument of a Runner.SubmitFunc call, or nil. The receiver is matched
// by its named type, so the check also covers test doubles named Runner.
func cellLiteral(pass *analysis.Pass, call *ast.CallExpr) *ast.FuncLit {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "SubmitFunc" || len(call.Args) < 2 {
		return nil
	}
	selection := pass.TypesInfo.Selections[sel]
	if selection == nil {
		return nil
	}
	recv := selection.Recv()
	if ptr, ok := recv.(*types.Pointer); ok {
		recv = ptr.Elem()
	}
	named, ok := recv.(*types.Named)
	if !ok || named.Obj().Name() != "Runner" {
		return nil
	}
	lit, _ := call.Args[1].(*ast.FuncLit)
	return lit
}

// checkCell reports shared-state writes and loop-variable captures
// inside one cell literal.
func checkCell(pass *analysis.Pass, lit *ast.FuncLit, loopVars []types.Object) {
	isLoopVar := func(obj types.Object) bool {
		for _, lv := range loopVars {
			if obj == lv {
				return true
			}
		}
		return false
	}
	free := func(obj types.Object) bool {
		return obj != nil && (obj.Pos() < lit.Pos() || obj.Pos() > lit.End())
	}
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				if obj := writeTarget(pass, lhs); free(obj) {
					pass.Reportf(lhs.Pos(), "slotsafety",
						"cell function mutates %s, which is shared across concurrently running cells; return the value via RunResult or aggregate in the ordered result callback", obj.Name())
				}
			}
		case *ast.IncDecStmt:
			if obj := writeTarget(pass, n.X); free(obj) {
				pass.Reportf(n.Pos(), "slotsafety",
					"cell function mutates %s, which is shared across concurrently running cells; return the value via RunResult or aggregate in the ordered result callback", obj.Name())
			}
		case *ast.CallExpr:
			if id, ok := n.Fun.(*ast.Ident); ok && id.Name == "delete" && len(n.Args) > 0 {
				if _, builtin := pass.TypesInfo.Uses[id].(*types.Builtin); builtin {
					if obj := writeTarget(pass, n.Args[0]); free(obj) {
						pass.Reportf(n.Pos(), "slotsafety",
							"cell function mutates %s, which is shared across concurrently running cells; return the value via RunResult or aggregate in the ordered result callback", obj.Name())
					}
				}
			}
		case *ast.Ident:
			if obj, ok := pass.TypesInfo.Uses[n].(*types.Var); ok && isLoopVar(obj) {
				pass.Reportf(n.Pos(), "slotsafety",
					"cell function captures loop variable %s; snapshot it into an iteration-local (%s := %s) before SubmitFunc so the cell's inputs are frozen at submission", n.Name, n.Name, n.Name)
			}
		}
		return true
	})
}

// checkWorker reports shared-state writes and loop-variable captures
// inside a function literal launched by a go statement — the shard
// worker shape. Writes that stay inside the worker's own slot (an index
// expression indexed by one of the literal's integer parameters) are
// the sanctioned per-shard idiom and pass.
func checkWorker(pass *analysis.Pass, lit *ast.FuncLit, loopVars []types.Object) {
	slots := intParams(pass, lit)
	isLoopVar := func(obj types.Object) bool {
		for _, lv := range loopVars {
			if obj == lv {
				return true
			}
		}
		return false
	}
	free := func(obj types.Object) bool {
		return obj != nil && (obj.Pos() < lit.Pos() || obj.Pos() > lit.End())
	}
	report := func(pos token.Pos, obj types.Object) {
		pass.Reportf(pos, "slotsafety",
			"worker goroutine mutates %s, which other workers can reach; confine writes to the worker's own slot (indexed by its shard parameter) and fold shared state at the merge point after the window", obj.Name())
	}
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				if obj, slotted := slottedWriteTarget(pass, lhs, slots); !slotted && free(obj) {
					report(lhs.Pos(), obj)
				}
			}
		case *ast.IncDecStmt:
			if obj, slotted := slottedWriteTarget(pass, n.X, slots); !slotted && free(obj) {
				report(n.Pos(), obj)
			}
		case *ast.CallExpr:
			if id, ok := n.Fun.(*ast.Ident); ok && id.Name == "delete" && len(n.Args) > 0 {
				if _, builtin := pass.TypesInfo.Uses[id].(*types.Builtin); builtin {
					if obj, slotted := slottedWriteTarget(pass, n.Args[0], slots); !slotted && free(obj) {
						report(n.Pos(), obj)
					}
				}
			}
		case *ast.Ident:
			if obj, ok := pass.TypesInfo.Uses[n].(*types.Var); ok && isLoopVar(obj) {
				pass.Reportf(n.Pos(), "slotsafety",
					"worker goroutine captures loop variable %s; pass it as an argument (go func(%s int) { ... }(%s)) so the worker's identity is fixed at launch", n.Name, n.Name, n.Name)
			}
		}
		return true
	})
}

// intParams collects the objects of a literal's integer-typed
// parameters — the candidate shard/slot indices.
func intParams(pass *analysis.Pass, lit *ast.FuncLit) []types.Object {
	var out []types.Object
	if lit.Type.Params == nil {
		return nil
	}
	for _, field := range lit.Type.Params.List {
		for _, name := range field.Names {
			obj := pass.TypesInfo.Defs[name]
			if obj == nil {
				continue
			}
			if b, ok := obj.Type().Underlying().(*types.Basic); ok && b.Info()&types.IsInteger != 0 {
				out = append(out, obj)
			}
		}
	}
	return out
}

// slottedWriteTarget resolves the root variable of a write target like
// writeTarget, and additionally reports whether the access path passes
// through an index expression whose index is one of the worker's slot
// parameters — `states[s].field` with parameter s is slot-confined.
func slottedWriteTarget(pass *analysis.Pass, expr ast.Expr, slots []types.Object) (types.Object, bool) {
	slotted := false
	for {
		switch e := expr.(type) {
		case *ast.Ident:
			if e.Name == "_" {
				return nil, slotted
			}
			if obj, ok := pass.TypesInfo.Uses[e].(*types.Var); ok {
				return obj, slotted
			}
			return nil, slotted
		case *ast.SelectorExpr:
			expr = e.X
		case *ast.IndexExpr:
			if id, ok := e.Index.(*ast.Ident); ok {
				idx := pass.TypesInfo.Uses[id]
				for _, s := range slots {
					if idx == s {
						slotted = true
					}
				}
			}
			expr = e.X
		case *ast.StarExpr:
			expr = e.X
		case *ast.ParenExpr:
			expr = e.X
		default:
			return nil, slotted
		}
	}
}

// writeTarget resolves the variable ultimately written by an assignment
// target (the root x of x, x.f, x[i], *x), or nil.
func writeTarget(pass *analysis.Pass, expr ast.Expr) types.Object {
	for {
		switch e := expr.(type) {
		case *ast.Ident:
			if e.Name == "_" {
				return nil
			}
			if obj, ok := pass.TypesInfo.Uses[e].(*types.Var); ok {
				return obj
			}
			return nil
		case *ast.SelectorExpr:
			expr = e.X
		case *ast.IndexExpr:
			expr = e.X
		case *ast.StarExpr:
			expr = e.X
		case *ast.ParenExpr:
			expr = e.X
		default:
			return nil
		}
	}
}
