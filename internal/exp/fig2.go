package exp

import (
	"fmt"
	"time"

	"repro/internal/cpuset"
	"repro/internal/speedbal"
	"repro/internal/spmd"
	"repro/internal/stats"
	"repro/internal/topo"
)

func init() {
	Register(&Experiment{
		ID:       "fig2",
		Title:    "3 threads on 2 cores: barrier granularity vs balance interval",
		PaperRef: "Figure 2 / §6.1",
		Expect: "Increasing the frequency of migrations (smaller balance interval) " +
			"improves performance; a 20 ms interval is best for the EP-style " +
			"benchmark; below the Lemma 1 threshold speed balancing matches LOAD " +
			"(slowdown ≈ 1.33 vs the 1.5S ideal), above it approaches the ideal.",
		Run: runFig2,
	})
}

func runFig2(ctx *Context) []*Table {
	// Total compute per thread is fixed (the paper uses ≈27 s); the
	// barrier granularity S divides it into iterations.
	totalWork := 27e9 / float64(ctx.Scale)
	grains := []time.Duration{
		50 * time.Microsecond, // paper's regime: S ≪ B, parity with LOAD expected
		time.Millisecond,
		5 * time.Millisecond,
		20 * time.Millisecond,
		50 * time.Millisecond,
		200 * time.Millisecond,
		time.Second,
	}
	intervals := []time.Duration{
		20 * time.Millisecond,
		50 * time.Millisecond,
		100 * time.Millisecond,
		200 * time.Millisecond,
		500 * time.Millisecond,
	}

	cols := []string{"S (inter-barrier)", "LOAD"}
	for _, b := range intervals {
		cols = append(cols, fmt.Sprintf("SPEED B=%v", b))
	}
	t := &Table{
		Title:   "Slowdown vs ideal 1.5·S·iterations (3 threads, 2 cores, UPC yield barriers)",
		Columns: cols,
	}

	run := NewRunner(ctx)
	config := 0
	for _, grain := range grains {
		iters := int(totalWork / float64(grain))
		if iters < 1 {
			iters = 1
		}
		// Cap event volume at fine granularities: the slowdown ratio is
		// per-iteration, so fewer iterations measure the same quantity.
		if iters > 20000 {
			iters = 20000
		}
		spec := spmd.Spec{
			Name: "ep-mod", Threads: 3, Iterations: iters,
			WorkPerIteration: float64(grain),
			Model:            spmd.UPC(),
			Affinity:         cpuset.All(2),
		}
		ideal := 1.5 * float64(iters) * float64(grain)

		load := &stats.Sample{}
		run.Repeat(config, RunOpts{
			Topo:     func() *topo.Topology { return topo.SMP(2) },
			Strategy: StratLoad, Spec: spec,
		}, func(_ int, r RunResult) { load.Add(float64(r.Elapsed) / ideal) })
		config++

		speeds := make([]*stats.Sample, len(intervals))
		for i, b := range intervals {
			cfg := speedbal.DefaultConfig()
			cfg.Interval = b
			s := &stats.Sample{}
			speeds[i] = s
			run.Repeat(config, RunOpts{
				Topo:     func() *topo.Topology { return topo.SMP(2) },
				Strategy: StratSpeed, Spec: spec, SpeedCfg: &cfg,
			}, func(_ int, r RunResult) { s.Add(float64(r.Elapsed) / ideal) })
			config++
		}
		run.Then(func() {
			row := []any{fmt.Sprintf("%v", grain), load.Mean()}
			for _, s := range speeds {
				row = append(row, s.Mean())
			}
			t.AddRow(row...)
			ctx.Logf("fig2: S=%v done", grain)
		})
	}
	run.Wait()
	t.Note("total compute per thread %.3gs; ideal = perfect 3-way split over 2 cores", totalWork/1e9)
	t.Note("paper deviation: the paper sweeps S in tens of µs where its measured spread (1.1–1.3) depends on kernel yield quirks we do not model; per Lemma 1, S ≪ B rows must sit at ≈1.33 (2S lockstep) for every balancer, and the S ≫ B rows approach 1.0")
	return []*Table{t}
}
