package exp

import (
	"testing"
	"time"

	"repro/internal/stats"
)

// DWRR's round advancement used to require the active queue to empty —
// which, under open arrivals at high load, it never does: each newcomer
// joins the current round with a fresh slice, so a task expired early
// in the round was stranded behind an unbounded arrival stream. At
// ρ=0.85 over this exact cell the stranding put p99 sojourn at ~2.0s
// (max 6.6s); the round-budget force-advance bounds it near 300ms. The
// 800ms assertion discriminates the two with wide margin on both sides.
func TestDWRROpenTailBounded(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second open-system cells skipped in short mode")
	}
	var dwrr openPolicy
	for _, p := range openPolicies {
		if p.dwrr {
			dwrr = p
		}
	}
	if !dwrr.dwrr {
		t.Fatal("no DWRR policy in openPolicies")
	}
	soj := &stats.Sample{}
	unfin := 0
	for rep := 0; rep < 4; rep++ {
		o := runOpenCell(dwrr, openCellOpts{
			rho: 0.85, horizon: 8 * time.Second,
			seed: seedFor(20100109, 900, rep),
		})
		for _, v := range o.sojournsMs {
			soj.Add(v)
		}
		unfin += o.unfinished
	}
	if soj.N() < 1000 {
		t.Fatalf("only %d jobs completed — the cell is not exercising the tail", soj.N())
	}
	p99 := soj.Percentile(99)
	t.Logf("DWRR rho=0.85: n=%d unfin=%d p50=%.1fms p99=%.1fms max=%.1fms",
		soj.N(), unfin, soj.Percentile(50), p99, soj.Max())
	if p99 > 800 {
		t.Errorf("p99 sojourn %.1fms > 800ms — expired tasks are being stranded behind open-round arrivals again", p99)
	}
	if unfin != 0 {
		t.Errorf("%d jobs unfinished after the drain window", unfin)
	}
}

// Rescan adoption used to pin a newly appeared thread to whatever core
// the fork placer's stale snapshot dropped it on. A job shorter than
// the balance interval finishes before any pull can rescue it, so that
// pin was the only placement it ever got — and at ρ=0.5 it made SPEED's
// p95 sojourn the worst of all six policies (108ms against LOAD's 99ms
// over these exact cells). With adoption placed via the predictor's
// fastest-core estimate (least-loaded fallback when cold, as here —
// these cells run reactive), SPEED lands mid-pack at ~78ms. The test
// asserts the ordering, not the absolute numbers: SPEED's p95 must
// stay strictly better than the worst contender's.
func TestSpeedLowRhoP95NotWorst(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second open-system cells skipped in short mode")
	}
	p95 := make(map[string]float64, len(openPolicies))
	for _, p := range openPolicies {
		soj := &stats.Sample{}
		for rep := 0; rep < 3; rep++ {
			o := runOpenCell(p, openCellOpts{
				rho: 0.5, horizon: 4 * time.Second,
				seed: seedFor(20100109, 910, rep),
			})
			for _, v := range o.sojournsMs {
				soj.Add(v)
			}
		}
		if soj.N() < 500 {
			t.Fatalf("%s: only %d jobs completed", p.name, soj.N())
		}
		p95[p.name] = soj.Percentile(95)
		t.Logf("%-7s p95 = %.1fms over %d jobs", p.name, p95[p.name], soj.N())
	}
	speed := p95[string(StratSpeed)]
	worst := 0.0
	for name, v := range p95 {
		if name != string(StratSpeed) && v > worst {
			worst = v
		}
	}
	if speed >= worst {
		t.Errorf("SPEED p95 %.1fms is the worst of the pack (next worst %.1fms) — short open jobs are being pinned in place at adoption again", speed, worst)
	}
}
