package sim_test

import (
	"sort"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/cfs"
	"repro/internal/competing"
	"repro/internal/cpuset"
	"repro/internal/linuxlb"
	"repro/internal/sim"
	"repro/internal/speedbal"
	"repro/internal/spmd"
	"repro/internal/task"
	"repro/internal/topo"
	"repro/internal/ule"
)

// quickCfg builds a quick.Check config with n iterations, scaled down
// under the race detector and -short so the property tests fit the
// default package timeout on small hosts.
func quickCfg(n int) *quick.Config {
	if raceEnabled || testing.Short() {
		n /= 8
		if n < 4 {
			n = 4
		}
	}
	return &quick.Config{MaxCount: n}
}

// Property: for arbitrary small workloads under arbitrary balancer
// combinations, global invariants hold: every app finishes, total exec
// never exceeds cores × elapsed, work counters equal the work specified,
// and no task ends outside its affinity.
func TestPropertyGlobalInvariants(t *testing.T) {
	f := func(seed uint64, threadsRaw, coresRaw, itersRaw, balRaw uint8) bool {
		cores := int(coresRaw%7) + 2 // 2..8
		threads := int(threadsRaw%12) + 1
		iters := int(itersRaw%8) + 1
		policy := []task.WaitPolicy{
			task.WaitSpin, task.WaitYield, task.WaitPollSleep, task.WaitBlock,
		}[int(balRaw>>4)%4]

		m := sim.New(topo.SMP(cores), sim.Config{Seed: seed, NewScheduler: cfs.Factory()})
		switch balRaw % 3 {
		case 0:
			m.AddActor(linuxlb.Default())
		case 1:
			m.AddActor(ule.Default())
		}
		const work = 2e6
		app := spmd.Build(m, spmd.Spec{
			Name: "app", Threads: threads, Iterations: iters,
			WorkPerIteration: work,
			Model:            spmd.Model{Policy: policy, Blocktime: 3 * time.Millisecond},
		})
		if balRaw%3 == 2 {
			sb := speedbal.Default()
			sb.Launch(m, app)
		} else {
			app.Start()
		}
		end := m.Run(int64(time.Hour))
		if !app.Done() {
			return false
		}
		m.Sync()
		var total time.Duration
		for _, tk := range m.Tasks() {
			total += tk.ExecTime
			if tk.Group == app.Spec.Name {
				if tk.WorkDone != float64(iters)*work {
					return false
				}
				if !tk.Affinity.Has(tk.CoreID) {
					return false
				}
			}
		}
		return total <= time.Duration(end)*time.Duration(cores)
	}
	if err := quick.Check(f, quickCfg(120)); err != nil {
		t.Error(err)
	}
}

// Property: determinism holds under every balancer kind — identical
// seeds give identical elapsed times and migration counts.
func TestPropertyDeterminismAcrossBalancers(t *testing.T) {
	run := func(seed uint64, kind int) (int64, int) {
		m := sim.New(topo.Tigerton(), sim.Config{Seed: seed, NewScheduler: cfs.Factory()})
		switch kind {
		case 0:
			m.AddActor(linuxlb.Default())
		case 1:
			m.AddActor(ule.Default())
		}
		app := spmd.Build(m, spmd.Spec{
			Name: "app", Threads: 9, Iterations: 10, WorkPerIteration: 3e6,
			WorkJitter: 0.2, Model: spmd.UPC(),
		})
		var sb *speedbal.Balancer
		if kind == 2 {
			sb = speedbal.Default()
			sb.Launch(m, app)
		} else {
			app.Start()
		}
		m.Run(int64(time.Hour))
		migs := 0
		for _, tk := range app.Tasks {
			migs += tk.Migrations
		}
		return int64(app.Elapsed()), migs
	}
	f := func(seed uint64, kindRaw uint8) bool {
		kind := int(kindRaw % 3)
		e1, m1 := run(seed, kind)
		e2, m2 := run(seed, kind)
		return e1 == e2 && m1 == m2
	}
	if err := quick.Check(f, quickCfg(40)); err != nil {
		t.Error(err)
	}
}

// A mixed pressure-cooker scenario: two SPMD apps (one speed-balanced,
// one OS-balanced), a make -j, a hog and an interactive task coexist;
// everything completes and the speed balancer touches only its app.
func TestMixedWorkloadIsolation(t *testing.T) {
	m := sim.New(topo.Tigerton(), sim.Config{Seed: 99, NewScheduler: cfs.Factory()})
	m.AddActor(linuxlb.Default())
	competing.CPUHog(m, 3)
	m.AddActor(&competing.MakeJ{Width: 3, Duration: 2 * time.Second})
	m.AddActor(&competing.Interactive{})

	managed := spmd.Build(m, spmd.Spec{
		Name: "managed", Threads: 12, Iterations: 5, WorkPerIteration: 40e6,
		Model: spmd.UPC(),
	})
	other := spmd.Build(m, spmd.Spec{
		Name: "other", Threads: 6, Iterations: 5, WorkPerIteration: 40e6,
		Model: spmd.UPCSleep(),
	})
	sb := speedbal.Default()
	moved := map[string]bool{}
	sb.OnMigrate = func(tk *task.Task, _, _ int, _ int64) { moved[tk.Group] = true }
	sb.Launch(m, managed)
	other.Start()

	m.Run(int64(time.Minute))
	if !managed.Done() || !other.Done() {
		t.Fatalf("apps done: managed=%v other=%v", managed.Done(), other.Done())
	}
	groups := make([]string, 0, len(moved))
	for g := range moved {
		groups = append(groups, g)
	}
	sort.Strings(groups)
	for _, g := range groups {
		if g != "managed" {
			t.Errorf("speed balancer moved a %q task", g)
		}
	}
}

// Nice values interact correctly with balancing: a low-priority app
// sharing with a normal one gets the weight-proportional share under
// plain CFS, and speed balancing of the normal app does not starve it.
func TestNiceIsolationUnderSpeedBalancing(t *testing.T) {
	m := sim.New(topo.SMP(4), sim.Config{Seed: 5, NewScheduler: cfs.Factory()})
	m.AddActor(linuxlb.Default())
	bg := spmd.Build(m, spmd.Spec{
		Name: "bg", Threads: 4, Iterations: 1, WorkPerIteration: 500e6,
		Model: spmd.UPC(), Nice: 10,
	})
	fg := spmd.Build(m, spmd.Spec{
		Name: "fg", Threads: 6, Iterations: 1, WorkPerIteration: 500e6,
		Model: spmd.UPC(),
	})
	bg.StartPinned()
	sb := speedbal.Default()
	sb.Launch(m, fg)
	m.Run(int64(time.Minute))
	if !fg.Done() {
		t.Fatal("foreground app unfinished")
	}
	m.RunFor(10 * time.Second)
	if !bg.Done() {
		t.Error("background app starved")
	}
}

// Machine.Cancel removes scheduled events.
func TestCancelEvent(t *testing.T) {
	m := newSMP(t, 1, 1)
	fired := false
	ev := m.After(time.Millisecond, func(int64) { fired = true })
	m.Cancel(ev)
	m.RunFor(10 * time.Millisecond)
	if fired {
		t.Error("cancelled event fired")
	}
}

// RoundRobinPlacer wraps over the affinity set.
func TestRoundRobinPlacer(t *testing.T) {
	m := newSMP(t, 4, 1)
	m.SetPlacer(&sim.RoundRobinPlacer{})
	var got []int
	for i := 0; i < 6; i++ {
		tk := m.NewTask("t", &task.ComputeForever{Chunk: 1e9})
		tk.Affinity = cpuset.Of(1, 3)
		m.Start(tk)
		got = append(got, tk.CoreID)
	}
	want := []int{1, 3, 1, 3, 1, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("placements %v, want %v", got, want)
		}
	}
}

// Migrating a sleeping task re-homes it: it wakes on the new core.
func TestMigrateSleepingTask(t *testing.T) {
	m := newSMP(t, 2, 1)
	tk := m.NewTask("t", &task.Seq{Actions: []task.Action{
		task.Compute{Work: 1e6},
		task.Sleep{D: 20 * time.Millisecond},
		task.Compute{Work: 1e6},
	}})
	m.StartOn(tk, 0)
	m.RunFor(5 * time.Millisecond) // now sleeping
	if tk.State != task.Sleeping {
		t.Fatalf("state %v, want sleeping", tk.State)
	}
	m.Migrate(tk, 1, "test")
	m.RunFor(100 * time.Millisecond)
	if tk.State != task.Done {
		t.Fatalf("state %v, want done", tk.State)
	}
	if tk.CoreID != 1 {
		t.Errorf("finished on core %d, want 1", tk.CoreID)
	}
}
