package exp

import (
	"strings"
	"testing"

	"repro/internal/spmd"
	"repro/internal/topo"
)

func TestRegistryComplete(t *testing.T) {
	// Every artifact in DESIGN.md §4 must be registered.
	want := []string{
		"table1", "fig1", "fig2", "fig3t", "fig3b", "fig4", "fig4omp",
		"fig5", "fig6", "table2", "table3", "ompS",
		"abl-ts", "abl-int", "abl-jit", "abl-numa", "abl-pull",
		"ext-smt", "ext-measure", "ext-swap",
		"noise-omps", "hotplug-churn", "open-bakeoff",
		"predict-bakeoff", "abl-horizon",
	}
	for _, id := range want {
		e, err := ByID(id)
		if err != nil {
			t.Errorf("missing experiment %q: %v", id, err)
			continue
		}
		if e.Title == "" || e.PaperRef == "" || e.Expect == "" || e.Run == nil {
			t.Errorf("experiment %q incompletely described", id)
		}
	}
	if len(All()) != len(want) {
		t.Errorf("registry has %d experiments, want %d", len(All()), len(want))
	}
}

func TestByIDUnknown(t *testing.T) {
	if _, err := ByID("fig99"); err == nil {
		t.Error("unknown ID did not error")
	}
}

func TestSeedForDeterministicAndDistinct(t *testing.T) {
	a := seedFor(1, 2, 3)
	if seedFor(1, 2, 3) != a {
		t.Error("seedFor not deterministic")
	}
	seen := map[uint64]bool{a: true}
	for c := 0; c < 20; c++ {
		for r := 0; r < 10; r++ {
			s := seedFor(1, c, r)
			if seen[s] && !(c == 2 && r == 3) {
				t.Errorf("seed collision at config=%d rep=%d", c, r)
			}
			seen[s] = true
		}
	}
}

func TestTableRender(t *testing.T) {
	tb := &Table{
		Title:   "test",
		Columns: []string{"name", "value"},
	}
	tb.AddRow("alpha", 1.5)
	tb.AddRow("beta", "x")
	tb.Note("a note %d", 7)
	out := tb.String()
	for _, want := range []string{"== test ==", "alpha", "1.5", "beta", "note: a note 7"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}

func TestTableCSV(t *testing.T) {
	tb := &Table{Columns: []string{"a", "b"}}
	tb.AddRow(`comma,cell`, 2)
	var b strings.Builder
	tb.CSV(&b)
	got := b.String()
	if !strings.Contains(got, `"comma,cell"`) {
		t.Errorf("CSV escaping broken:\n%s", got)
	}
	if !strings.HasPrefix(got, "a,b\n") {
		t.Errorf("CSV header broken:\n%s", got)
	}
}

func TestTrimFloat(t *testing.T) {
	cases := []struct {
		in   float64
		want string
	}{
		{1.5, "1.5"}, {2.0, "2"}, {0.67, "0.67"}, {0, "0"},
		{10.125, "10.12"}, // round-half-even
	}
	for _, c := range cases {
		if got := trimFloat(c.in); got != c.want {
			t.Errorf("trimFloat(%v) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestScaleSpec(t *testing.T) {
	ctx := &Context{Scale: 8}
	s := spmd.Spec{Iterations: 80, WorkPerIteration: 100}
	got := ScaleSpec(ctx, s)
	if got.Iterations != 10 || got.WorkPerIteration != 100 {
		t.Errorf("scaled iterations: %+v", got)
	}
	ep := spmd.Spec{Iterations: 1, WorkPerIteration: 800}
	got = ScaleSpec(ctx, ep)
	if got.Iterations != 1 || got.WorkPerIteration != 100 {
		t.Errorf("scaled EP: %+v", got)
	}
	// Scale 1 is identity.
	if got := ScaleSpec(&Context{Scale: 1}, s); got != s {
		t.Errorf("identity scale changed spec")
	}
}

// Run executes a minimal measurement for every strategy without error
// and with a sane result.
func TestRunAllStrategies(t *testing.T) {
	for _, st := range []Strategy{StratPinned, StratLoad, StratSpeed, StratDWRR, StratULE} {
		r := Run(RunOpts{
			Topo:     func() *topo.Topology { return topo.SMP(2) },
			Strategy: st,
			Spec: spmd.Spec{
				Name: "t", Threads: 3, Iterations: 5, WorkPerIteration: 1e6,
				Model: spmd.UPC(),
			},
			Seed: 1,
		})
		if !r.App.Done() {
			t.Errorf("%s: app not done", st)
		}
		if r.Speedup <= 0 || r.Elapsed <= 0 {
			t.Errorf("%s: degenerate result %+v", st, r)
		}
	}
}

// Repetitions with different seeds are independent but deterministic.
func TestRepeatDeterminism(t *testing.T) {
	ctx := &Context{Reps: 3, Scale: 1, Seed: 7}
	collect := func() []int64 {
		var out []int64
		Repeat(ctx, 42, RunOpts{
			Topo:     func() *topo.Topology { return topo.SMP(2) },
			Strategy: StratLoad,
			Spec: spmd.Spec{
				Name: "t", Threads: 3, Iterations: 5, WorkPerIteration: 1e6,
				Model: spmd.UPC(), WorkJitter: 0.2,
			},
		}, func(rep int, r RunResult) { out = append(out, int64(r.Elapsed)) })
		return out
	}
	a, b := collect(), collect()
	for i := range a {
		if a[i] != b[i] {
			t.Errorf("rep %d differs across identical Repeats", i)
		}
	}
}

// Every experiment runs end-to-end at a tiny scale and yields at least
// one non-empty table. This is the integration smoke test for the whole
// harness; skipped in -short mode.
func TestAllExperimentsSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment smoke test skipped in short mode")
	}
	ctx := &Context{Reps: 1, Scale: 32, Seed: 99}
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			tables := e.Run(ctx)
			if len(tables) == 0 {
				t.Fatal("no tables")
			}
			for _, tb := range tables {
				if len(tb.Rows) == 0 {
					t.Errorf("table %q empty", tb.Title)
				}
			}
		})
	}
}
