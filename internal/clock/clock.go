// Package clock is the repository's single sanctioned wall-clock entry
// point.
//
// Simulation and experiment code must be deterministic — time flows
// from the event clock, never from the host — so the nodeterm analyzer
// (internal/analysis/nodeterm) bans time.Now throughout the module.
// The one legitimate use is operator-facing progress reporting: how
// long an experiment took in wall time. That use funnels through this
// package, whose two time calls carry the //lint:allow-wallclock
// directive; any other wall-clock read anywhere in the module is a lint
// error. Nothing measured here may influence simulated results.
package clock

import "time"

// A Stopwatch marks a wall-clock start time for progress reporting.
type Stopwatch struct {
	start time.Time
}

// Start begins timing.
func Start() Stopwatch {
	return Stopwatch{start: time.Now()} //lint:allow-wallclock sole sanctioned wall-clock read (progress reporting)
}

// Elapsed returns the wall time since Start.
func (s Stopwatch) Elapsed() time.Duration {
	return time.Since(s.start) //lint:allow-wallclock sole sanctioned wall-clock read (progress reporting)
}
