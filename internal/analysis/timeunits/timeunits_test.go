package timeunits_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/timeunits"
)

func TestTimeunits(t *testing.T) {
	analysistest.Run(t, "testdata/src", timeunits.Analyzer, "a", "allow", "clean")
}
