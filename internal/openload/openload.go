// Package openload generates open-system workloads: jobs arrive at the
// machine from outside, run to completion, and depart, at an offered
// load ρ the caller dials. This is the queueing-theoretic complement to
// the paper's closed batches — §6 measures fixed thread sets to
// completion, while a deployment faces a stream of interactive bursts,
// batch jobs and parallel programs whose response time is the metric
// that matters. The generator lets every balancer in the repo be scored
// on mean/p95/p99 sojourn time under identical, seeded arrival
// schedules (the open-bakeoff experiment).
//
// Determinism contract: every arrival schedule is a pure function of
// the machine seed. Each job class owns an RNG split off the machine
// stream in class order, so its Poisson arrival process is independent
// of every other class — adding a class appends a split and perturbs no
// existing schedule. Arrivals fire from timers on the global control
// queue: task admission is a machine-global event and never happens
// inside a parallel shard window. The generator's job table and record
// list are machine-global too, and task-exit hooks can otherwise fire
// on shard workers, so Start calls Machine.BlockWindows — the sharded
// event queue and its deterministic merge stay active, only the
// parallel drain is withheld (exactly the posture exp.Run takes for its
// own machine-global completion hook).
package openload

import (
	"fmt"
	"time"

	"repro/internal/cpuset"
	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/spmd"
	"repro/internal/task"
	"repro/internal/xrand"
)

// Group is the task group every generated job belongs to, so a
// group-aware balancer (speedbal's RescanGroup) can adopt arrivals.
const Group = "open"

// Class describes one job class of the open workload.
type Class struct {
	// Name labels the class in records and task names.
	Name string
	// Weight is the class's absolute share of the offered load: the
	// class arrives at rate Rho·Weight·capacity/Work. Weights are NOT
	// normalised — a mix whose weights sum to 1 offers exactly Rho; a
	// class appended later adds its own load without changing any
	// existing class's arrival rate (or, with the per-class RNG
	// splits, its arrival times).
	Weight float64
	// Work is the job's total mean work in speed-1.0 nanoseconds,
	// summed over all of its threads.
	Work float64
	// Threads is the job's parallel width; 1 (or 0) is sequential.
	Threads int
	// Iterations is the barrier-round count of a parallel job
	// (default 1: compute then one final barrier, EP-style).
	Iterations int
	// Bursts splits a sequential job into compute bursts separated by
	// Sleep — the interactive think-time pattern (default 1: one
	// uninterrupted compute, the batch pattern).
	Bursts int
	// Sleep is the think time between bursts.
	Sleep time.Duration
	// Model fixes the synchronization runtime of parallel jobs
	// (default UPC: yielding barriers).
	Model spmd.Model
	// Nice is the task priority.
	Nice int
}

// Config tunes the generator.
type Config struct {
	// Classes is the job mix; nil takes DefaultClasses.
	Classes []Class
	// Rho is the offered load as a fraction of machine capacity
	// (Σ arrival-rate × work = Rho × Σ core speeds). Stable queues
	// need Rho < 1; Rho ≥ 1 is permitted for saturation studies.
	Rho float64
	// Horizon bounds the arrival window: no job arrives after
	// Start + Horizon. Zero means arrivals never stop (steady-state
	// benchmarking); jobs in flight at the horizon still complete.
	Horizon time.Duration
	// FixedAlloc admits each job onto a fixed round-robin core
	// partition (threads pinned at arrival, never migrated) — an
	// EQUI-style static-allocation baseline against which the
	// balancers' dynamic placement is scored.
	FixedAlloc bool
}

// DefaultClasses is the bakeoff mix: interactive bursts dominate the
// arrival count, batch jobs the per-job work, and malleable parallel
// jobs exercise the barrier path.
func DefaultClasses() []Class {
	return []Class{
		{Name: "inter", Weight: 0.5, Work: 20e6, Bursts: 4, Sleep: 5 * time.Millisecond},
		{Name: "batch", Weight: 0.2, Work: 160e6},
		{Name: "par", Weight: 0.3, Work: 80e6, Threads: 4, Iterations: 8},
	}
}

// Record is one completed job's response-time accounting.
type Record struct {
	// Class is the job class name.
	Class string
	// ArrivedAt is the admission time (ns sim time).
	ArrivedAt int64
	// Sojourn is arrival → last-thread-exit, the open-system response
	// time.
	Sojourn time.Duration
	// FirstRun is arrival → first dispatch of the slowest thread: how
	// long admission waited for a CPU.
	FirstRun time.Duration
	// WakeMean and WakeMax aggregate wake-to-run latency over every
	// wakeup of every thread of the job; Wakes is the wakeup count
	// (0 for a job that never slept — its WakeMean carries no signal).
	WakeMean, WakeMax time.Duration
	Wakes             int
}

// job tracks one in-flight job.
type job struct {
	class     int
	arrivedAt int64
	live      int

	wakeSum, wakeMax int64
	wakeN            int
	firstRun         int64
}

// Gen is the generator; register it with Machine.AddActor.
type Gen struct {
	cfg     Config
	classes []Class
	m       *sim.Machine
	streams []*xrand.RNG
	timers  []*sim.Timer
	rates   []float64 // per-class arrival rate, jobs per ns
	endAt   int64     // last admissible arrival time (MaxInt64 if endless)

	jobs   map[*task.Task]*job
	cursor int // FixedAlloc round-robin core cursor
	nextID int

	// Records lists completed jobs in completion order (deterministic:
	// exits retire in merged event order at any shard count).
	Records []Record
	// Admitted and Completed count jobs; their difference is the
	// in-flight (or abandoned-at-horizon) population.
	Admitted, Completed int

	stopped bool
}

// sojournBuckets spans job sojourns from 1 ms to ~17 min, geometric ×2.
var sojournBuckets = metrics.ExpBuckets(1e6, 2, 20)

// wakeBuckets spans wake-to-run latencies from 1 µs to ~4 s.
var wakeBuckets = metrics.ExpBuckets(1e3, 4, 12)

// New validates the configuration and builds a generator.
func New(cfg Config) *Gen {
	if cfg.Classes == nil {
		cfg.Classes = DefaultClasses()
	}
	if cfg.Rho <= 0 {
		panic(fmt.Sprintf("openload: non-positive offered load %v", cfg.Rho))
	}
	for i, c := range cfg.Classes {
		if c.Weight <= 0 || c.Work <= 0 {
			panic(fmt.Sprintf("openload: class %d (%q) needs positive Weight and Work", i, c.Name))
		}
	}
	return &Gen{
		cfg:     cfg,
		classes: append([]Class(nil), cfg.Classes...),
		jobs:    make(map[*task.Task]*job),
	}
}

// Start implements sim.Actor: split one arrival stream per class, arm
// one control-queue timer per class, and hook task exits.
func (g *Gen) Start(m *sim.Machine) {
	g.m = m
	m.BlockWindows()
	var capacity float64
	for _, c := range m.Topo.Cores {
		capacity += c.BaseSpeed
	}
	g.endAt = int64(^uint64(0) >> 1)
	if g.cfg.Horizon > 0 {
		g.endAt = m.Now() + int64(g.cfg.Horizon)
	}
	g.rates = make([]float64, len(g.classes))
	g.streams = make([]*xrand.RNG, len(g.classes))
	g.timers = make([]*sim.Timer, len(g.classes))
	rng := m.RNG()
	for k := range g.classes {
		k := k
		// λ_k work_k = Rho·weight_k·capacity, so Σ λ_k work_k = Rho·capacity.
		g.rates[k] = g.cfg.Rho * g.classes[k].Weight * capacity / g.classes[k].Work
		g.streams[k] = rng.Split()
		g.timers[k] = m.NewTimer(func(now int64) { g.arrive(k, now) })
		g.scheduleNext(k, m.Now())
	}
	m.OnTaskDone(g.taskDone)
}

// Stop halts further arrivals; jobs in flight still complete.
func (g *Gen) Stop() {
	g.stopped = true
	for _, t := range g.timers {
		t.Stop()
	}
}

// scheduleNext draws class k's next inter-arrival gap and arms its
// timer, unless the arrival would fall past the horizon — the draw
// still happens, so the schedule of every arrival inside the horizon is
// identical whether or not a horizon is set.
func (g *Gen) scheduleNext(k int, now int64) {
	gap := g.streams[k].Exponential(g.rates[k])
	at := now + int64(gap)
	if at > g.endAt {
		return
	}
	g.timers[k].Schedule(at)
}

// arrive admits one class-k job.
func (g *Gen) arrive(k int, now int64) {
	if g.stopped {
		return
	}
	g.admit(k, now)
	g.scheduleNext(k, now)
}

// admit builds the job's tasks and starts them.
func (g *Gen) admit(k int, now int64) {
	c := &g.classes[k]
	threads := c.Threads
	if threads < 1 {
		threads = 1
	}
	id := g.nextID
	g.nextID++
	j := &job{class: k, arrivedAt: now, live: threads, firstRun: -1}

	var bar *spmd.Barrier
	if threads > 1 {
		bar = spmd.NewBarrier(threads)
	}
	for i := 0; i < threads; i++ {
		t := g.m.NewTask(fmt.Sprintf("%s.%d.%d", c.Name, id, i), g.program(c, bar))
		t.Group = Group
		t.Nice = c.Nice
		t.Sched.Weight = task.NiceWeight(c.Nice)
		g.jobs[t] = j
		if g.cfg.FixedAlloc {
			cores := g.m.Topo.AllCores().Cores()
			core := cores[g.cursor%len(cores)]
			g.cursor++
			t.Affinity = cpuset.Of(core)
			g.m.StartOn(t, core)
		} else {
			g.m.Start(t)
		}
	}
	g.Admitted++
}

// program builds one thread's program for a class-c job.
func (g *Gen) program(c *Class, bar *spmd.Barrier) task.Program {
	if bar != nil {
		iters := c.Iterations
		if iters < 1 {
			iters = 1
		}
		model := c.Model
		if model.Name == "" {
			model = spmd.UPC()
		}
		perIter := c.Work / float64(bar.N()) / float64(iters)
		wait := task.WaitFor{C: bar, Policy: model.Policy, Blocktime: model.Blocktime}
		return &task.Loop{
			Iterations: iters,
			Body:       func(int) []task.Action { return []task.Action{task.Compute{Work: perIter}, wait} },
		}
	}
	bursts := c.Bursts
	if bursts <= 1 {
		return &task.Seq{Actions: []task.Action{task.Compute{Work: c.Work}}}
	}
	perBurst := c.Work / float64(bursts)
	sleep := c.Sleep
	return &task.Loop{
		Iterations: bursts,
		Body: func(iter int) []task.Action {
			if iter == bursts-1 {
				// The final burst ends the job; a trailing think time
				// would pad every interactive sojourn by Sleep.
				return []task.Action{task.Compute{Work: perBurst}}
			}
			return []task.Action{task.Compute{Work: perBurst}, task.Sleep{D: sleep}}
		},
	}
}

// taskDone folds a finished thread into its job, emitting the job's
// record when the last thread departs.
func (g *Gen) taskDone(t *task.Task) {
	j, ok := g.jobs[t]
	if !ok {
		return
	}
	delete(g.jobs, t)
	j.wakeSum += t.WakeLatSum
	j.wakeN += t.WakeLatN
	if t.WakeLatMax > j.wakeMax {
		j.wakeMax = t.WakeLatMax
	}
	if t.FirstRanAt >= 0 {
		if fr := t.FirstRanAt - j.arrivedAt; fr > j.firstRun {
			j.firstRun = fr
		}
	}
	j.live--
	if j.live > 0 {
		return
	}
	rec := Record{
		Class:     g.classes[j.class].Name,
		ArrivedAt: j.arrivedAt,
		Sojourn:   time.Duration(t.FinishedAt - j.arrivedAt),
		WakeMax:   time.Duration(j.wakeMax),
		Wakes:     j.wakeN,
	}
	if j.firstRun >= 0 {
		rec.FirstRun = time.Duration(j.firstRun)
	}
	if j.wakeN > 0 {
		rec.WakeMean = time.Duration(j.wakeSum / int64(j.wakeN))
	}
	g.Records = append(g.Records, rec)
	g.Completed++
	if reg := g.m.Metrics(); reg != nil {
		reg.Histogram("openload.sojourn_ns", sojournBuckets).Observe(float64(rec.Sojourn))
		if j.wakeN > 0 {
			reg.Histogram("openload.wake_ns", wakeBuckets).Observe(float64(rec.WakeMean))
		}
	}
}

// Unfinished counts admitted jobs that have not completed.
func (g *Gen) Unfinished() int { return g.Admitted - g.Completed }
