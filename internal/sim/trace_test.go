package sim_test

import (
	"testing"
	"time"

	"repro/internal/cfs"
	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/task"
	"repro/internal/topo"
	"repro/internal/trace"
)

// tracedRun executes a small contended workload and returns the machine
// plus whatever the tracer captured (nil tracer/metrics allowed).
func tracedRun(t *testing.T, tr trace.Tracer, reg *metrics.Registry) *sim.Machine {
	t.Helper()
	m := sim.New(topo.SMP(2), sim.Config{
		Seed:         1,
		NewScheduler: cfs.Factory(),
		Tracer:       tr,
		Metrics:      reg,
	})
	// Three compute tasks on two cores force queueing, timeslice
	// rotations and run stints; a sleep exercises the wakeup path.
	for i := 0; i < 3; i++ {
		tk := m.NewTask("w", &task.Seq{Actions: []task.Action{
			task.Compute{Work: float64(30 * time.Millisecond)},
			task.Sleep{D: time.Millisecond},
			task.Compute{Work: float64(30 * time.Millisecond)},
		}})
		m.Start(tk)
	}
	m.Run(int64(time.Second))
	return m
}

func TestMachineEmitsTraceEvents(t *testing.T) {
	ring := trace.NewRing(1 << 12)
	reg := metrics.NewRegistry()
	tracedRun(t, ring, reg)
	evs := ring.Events()
	if len(evs) == 0 {
		t.Fatal("no events traced")
	}
	kinds := map[trace.Kind]int{}
	var lastSeq uint64
	for i, e := range evs {
		kinds[e.Kind]++
		if i > 0 && e.Seq <= lastSeq {
			t.Fatalf("seq not strictly increasing at %d: %d after %d", i, e.Seq, lastSeq)
		}
		lastSeq = e.Seq
		if e.Kind == trace.KindRunStint {
			if e.Dur <= 0 {
				t.Errorf("run stint with dur %d", e.Dur)
			}
			if e.Time-e.Dur < 0 {
				t.Errorf("run stint starts before time 0: end %d dur %d", e.Time, e.Dur)
			}
		}
	}
	for _, k := range []trace.Kind{trace.KindForkPlace, trace.KindRunStint, trace.KindTimeslice} {
		if kinds[k] == 0 {
			t.Errorf("no %v events traced (kinds: %v)", k, kinds)
		}
	}
	if kinds[trace.KindForkPlace] != 3 {
		t.Errorf("fork-place events = %d, want 3", kinds[trace.KindForkPlace])
	}
}

// TestTracingDoesNotPerturbRun pins the observer-effect contract: a
// traced run and an untraced run of the same seed produce identical
// scheduling outcomes.
func TestTracingDoesNotPerturbRun(t *testing.T) {
	ring := trace.NewRing(1 << 12)
	traced := tracedRun(t, ring, metrics.NewRegistry())
	plain := tracedRun(t, nil, nil)
	if traced.Stats.ContextSwitches != plain.Stats.ContextSwitches ||
		traced.Stats.Wakeups != plain.Stats.Wakeups ||
		traced.Stats.Events != plain.Stats.Events {
		t.Errorf("traced run diverged: %+v vs %+v", traced.Stats, plain.Stats)
	}
	for i := range traced.Tasks() {
		a, b := traced.Tasks()[i], plain.Tasks()[i]
		if a.ExecTime != b.ExecTime || a.FinishedAt != b.FinishedAt {
			t.Errorf("task %d diverged: exec %v/%v finished %d/%d",
				i, a.ExecTime, b.ExecTime, a.FinishedAt, b.FinishedAt)
		}
	}
}

// TestTraceRepeatable pins event-level determinism: two identical traced
// runs capture identical event sequences.
func TestTraceRepeatable(t *testing.T) {
	r1 := trace.NewRing(1 << 12)
	r2 := trace.NewRing(1 << 12)
	tracedRun(t, r1, nil)
	tracedRun(t, r2, nil)
	a, b := r1.Events(), r2.Events()
	if len(a) != len(b) {
		t.Fatalf("event counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("event %d differs:\n%+v\n%+v", i, a[i], b[i])
		}
	}
}

// benchRun is tracedRun without the testing.T, for benchmarks.
func benchRun(tr trace.Tracer) {
	m := sim.New(topo.SMP(2), sim.Config{
		Seed:         1,
		NewScheduler: cfs.Factory(),
		Tracer:       tr,
	})
	for i := 0; i < 3; i++ {
		tk := m.NewTask("w", &task.Seq{Actions: []task.Action{
			task.Compute{Work: float64(30 * time.Millisecond)},
			task.Sleep{D: time.Millisecond},
			task.Compute{Work: float64(30 * time.Millisecond)},
		}})
		m.Start(tk)
	}
	m.Run(int64(time.Second))
}

// BenchmarkTracedVsUntraced guards the nil-tracer fast path: the
// untraced case must not pay for event construction (every emission
// site checks Tracing() before building the Event). Compare the two
// sub-benchmarks' ns/op and allocs to quantify tracing overhead.
func BenchmarkTracedVsUntraced(b *testing.B) {
	b.Run("untraced", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			benchRun(nil)
		}
	})
	b.Run("traced", func(b *testing.B) {
		ring := trace.NewRing(1 << 12)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			ring.Reset()
			benchRun(ring)
		}
	})
}

func TestMigrationMetrics(t *testing.T) {
	reg := metrics.NewRegistry()
	m := sim.New(topo.SMP(2), sim.Config{Seed: 1, NewScheduler: cfs.Factory(), Metrics: reg})
	tk := m.NewTask("mover", &task.Seq{Actions: []task.Action{task.Compute{Work: float64(time.Millisecond)}}})
	m.StartOn(tk, 0)
	m.Run(0)
	m.MigrateNow(tk, 1, "testlabel")
	s := reg.Snapshot()
	if len(s.Counters) != 1 || s.Counters[0].Name != "migrations.testlabel" || s.Counters[0].Value != 1 {
		t.Errorf("counters = %+v, want migrations.testlabel=1", s.Counters)
	}
}
