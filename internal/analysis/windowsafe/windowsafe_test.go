package windowsafe_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/windowsafe"
)

func TestWindowsafe(t *testing.T) {
	analysistest.Run(t, "testdata/src", windowsafe.Analyzer, "a", "allow", "clean")
}
