package predict

import (
	"math"
	"testing"
	"time"

	"repro/internal/xrand"
)

// With Decay = 1 the estimator is plain Welford: exact mean, population
// variance.
func TestWelfordUndecayedMatchesBatch(t *testing.T) {
	xs := []float64{0.2, 0.9, 0.4, 0.4, 0.7, 0.1, 0.5}
	var e Welford
	for _, x := range xs {
		e.Observe(x, 1)
	}
	mean, ss := 0.0, 0.0
	for _, x := range xs {
		mean += x
	}
	mean /= float64(len(xs))
	for _, x := range xs {
		ss += (x - mean) * (x - mean)
	}
	wantVar := ss / float64(len(xs))
	if math.Abs(e.Mean()-mean) > 1e-12 {
		t.Errorf("mean = %v, want %v", e.Mean(), mean)
	}
	if math.Abs(e.Var()-wantVar) > 1e-12 {
		t.Errorf("var = %v, want %v", e.Var(), wantVar)
	}
	if e.Weight() != float64(len(xs)) {
		t.Errorf("weight = %v, want %d", e.Weight(), len(xs))
	}
}

// A decayed estimator must track a level shift: after enough samples at
// the new level the mean is close to it, while an undecayed one is
// stuck between the regimes.
func TestWelfordDecayTracksShift(t *testing.T) {
	var decayed, plain Welford
	for i := 0; i < 50; i++ {
		decayed.Observe(1.0, 0.8)
		plain.Observe(1.0, 1)
	}
	for i := 0; i < 20; i++ {
		decayed.Observe(0.5, 0.8)
		plain.Observe(0.5, 1)
	}
	if d := math.Abs(decayed.Mean() - 0.5); d > 0.01 {
		t.Errorf("decayed mean %v not tracking the shift to 0.5", decayed.Mean())
	}
	if plain.Mean() < 0.8 {
		t.Errorf("undecayed mean %v forgot the old regime — decay comparison is vacuous", plain.Mean())
	}
}

// Variance of a constant signal is zero even under decay, and never
// negative under rounding.
func TestWelfordConstantSignal(t *testing.T) {
	var e Welford
	for i := 0; i < 100; i++ {
		e.Observe(0.7, 0.8)
		if e.Var() < 0 {
			t.Fatalf("negative variance %v at sample %d", e.Var(), i)
		}
	}
	if e.Var() > 1e-18 {
		t.Errorf("variance of constant signal = %v, want ~0", e.Var())
	}
	if e.StdDev() != math.Sqrt(e.Var()) {
		t.Errorf("StdDev inconsistent with Var")
	}
}

func TestDistCDF(t *testing.T) {
	d := Dist{Mean: 1, Std: 0.1}
	if got := d.CDF(1); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("CDF at the mean = %v, want 0.5", got)
	}
	if got := d.CDF(0.5); got > 1e-5 {
		t.Errorf("CDF far below the mean = %v, want ~0", got)
	}
	if got := d.CDF(1.5); got < 1-1e-5 {
		t.Errorf("CDF far above the mean = %v, want ~1", got)
	}
	step := Dist{Mean: 1, Std: 0}
	if step.CDF(0.999) != 0 || step.CDF(1) != 1 {
		t.Errorf("degenerate CDF is not a step at the mean")
	}
}

// A clearly slowest distribution gets a bound near 1, the others near
// 0; the fastest bound mirrors it; and the bounds always sum to ≤ 1
// (they partition disjoint events).
func TestBoundsSeparated(t *testing.T) {
	ds := []Dist{
		{Mean: 0.2, Std: 0.05}, // clearly slowest
		{Mean: 0.9, Std: 0.05},
		{Mean: 1.0, Std: 0.05},
		{Mean: 1.1, Std: 0.05}, // clearly fastest
	}
	slow := SlowestLowerBounds(ds, make([]float64, len(ds)))
	if slow[0] < 0.95 {
		t.Errorf("slowest bound for the clearly slowest core = %v, want near 1", slow[0])
	}
	for i, p := range slow[1:] {
		if p > 0.05 {
			t.Errorf("slowest bound for core %d = %v, want near 0", i+1, p)
		}
	}
	// The midpoint lower bound is loose when several distributions sit
	// on the far side of c, so assert ordering, not magnitude: the
	// clearly fastest core must carry the largest fastest-bound.
	fast := FastestLowerBounds(ds, make([]float64, len(ds)))
	for i, p := range fast[:3] {
		if p >= fast[3] {
			t.Errorf("fastest bound for core %d (%v) not below the fastest core's (%v)", i, p, fast[3])
		}
	}
	sum := 0.0
	for _, p := range slow {
		sum += p
	}
	if sum > 1+1e-9 {
		t.Errorf("slowest bounds sum to %v > 1", sum)
	}
}

// Identical distributions are exchangeable: equal bounds, no NaNs.
func TestBoundsSymmetric(t *testing.T) {
	ds := []Dist{{Mean: 0.5, Std: 0.1}, {Mean: 0.5, Std: 0.1}, {Mean: 0.5, Std: 0.1}}
	out := SlowestLowerBounds(ds, make([]float64, 3))
	for i, p := range out {
		if math.IsNaN(p) || p < 0 || p > 1 {
			t.Fatalf("bound %d = %v out of range", i, p)
		}
		if math.Abs(p-out[0]) > 1e-12 {
			t.Errorf("asymmetric bounds for exchangeable dists: %v", out)
		}
	}
}

// Degenerate (zero-variance) distributions produce certainties; the
// −inf log terms must not leak NaNs into the other bounds.
func TestBoundsDegenerate(t *testing.T) {
	ds := []Dist{
		{Mean: 0.1, Std: 0}, // certainly below any midpoint
		{Mean: 1.0, Std: 0.05},
		{Mean: 1.1, Std: 0.05},
	}
	out := SlowestLowerBounds(ds, make([]float64, 3))
	for i, p := range out {
		if math.IsNaN(p) {
			t.Fatalf("bound %d is NaN: %v", i, out)
		}
	}
	if out[0] < 0.95 {
		t.Errorf("certainly-slowest bound = %v, want ~1", out[0])
	}
	if out[1] != 0 || out[2] != 0 {
		t.Errorf("others should be impossible to be slowest below the midpoint: %v", out)
	}
	// Two certain distributions on the candidate side: every bound
	// collapses to 0 except possibly the candidates' own, which are
	// also 0 because the *other* certain one blocks them.
	ds2 := []Dist{{Mean: 0.1, Std: 0}, {Mean: 0.1, Std: 0}, {Mean: 2.0, Std: 0.05}}
	out2 := SlowestLowerBounds(ds2, make([]float64, 3))
	for i, p := range out2 {
		if math.IsNaN(p) {
			t.Fatalf("bound %d is NaN with two degenerate dists: %v", i, out2)
		}
	}
	if out2[0] != 0 || out2[1] != 0 {
		t.Errorf("two cores certain below the midpoint cannot each exclude the other: %v", out2)
	}
}

func TestBoundsSmallSets(t *testing.T) {
	if out := SlowestLowerBounds(nil, nil); len(out) != 0 {
		t.Errorf("empty set: %v", out)
	}
	out := SlowestLowerBounds([]Dist{{Mean: 0.4, Std: 0.1}}, make([]float64, 1))
	if out[0] != 1 {
		t.Errorf("singleton is trivially slowest, got %v", out[0])
	}
}

// Predicted(j, 0) must return the realized sample bit-for-bit — the
// algebraic half of the reactive-degeneracy contract.
func TestPredictedZeroHorizonIsRealized(t *testing.T) {
	tr := NewTracker(DefaultConfig(), 2, 100*time.Millisecond)
	rng := xrand.New(7)
	now := int64(0)
	for i := 0; i < 40; i++ {
		now += int64(100 * time.Millisecond)
		s := 0.3 + 0.6*rng.Float64()
		tr.ObserveCore(0, s, now)
		if got := tr.Predicted(0, 0); got != s {
			t.Fatalf("sample %d: Predicted(0,0) = %v, want the realized %v exactly", i, got, s)
		}
	}
}

// The trend must carry a steadily drifting core's prediction toward the
// drift direction: a core slowing by 0.05/interval predicts lower than
// its last sample at a one-interval horizon.
func TestPredictedFollowsTrend(t *testing.T) {
	const interval = 100 * time.Millisecond
	tr := NewTracker(DefaultConfig(), 1, interval)
	now, s := int64(0), 1.0
	for i := 0; i < 20; i++ {
		now += int64(interval)
		tr.ObserveCore(0, s, now)
		s -= 0.05
	}
	last := s + 0.05
	got := tr.Predicted(0, interval)
	if got >= last {
		t.Errorf("prediction %v not below the last sample %v despite a falling trend", got, last)
	}
	if math.Abs(got-(last-0.05)) > 0.02 {
		t.Errorf("prediction %v, want ≈ %v (last sample minus one step)", got, last-0.05)
	}
	if p := tr.Predicted(0, 40*interval); p != 0 {
		t.Errorf("far-horizon prediction %v not clamped at 0", p)
	}
}

func TestTrackerWarmAndReset(t *testing.T) {
	tr := NewTracker(DefaultConfig(), 1, 100*time.Millisecond)
	if tr.CoreWarm(0) {
		t.Fatal("cold tracker reports warm")
	}
	now := int64(0)
	for i := 0; i < 5; i++ {
		now += int64(100 * time.Millisecond)
		tr.ObserveCore(0, 0.8, now)
	}
	if !tr.CoreWarm(0) {
		t.Fatal("tracker not warm after 5 samples with MinWeight 3")
	}
	d := tr.CoreDist(0, 100*time.Millisecond)
	if math.Abs(d.Mean-0.8) > 1e-9 {
		t.Errorf("core dist mean %v, want ~0.8", d.Mean)
	}
	tr.ResetCore(0)
	if tr.CoreWarm(0) {
		t.Fatal("tracker warm after reset")
	}
	if got := tr.Predicted(0, time.Second); got != 0 {
		t.Errorf("reset core predicts %v, want 0", got)
	}
}

func TestThreadEstimators(t *testing.T) {
	tr := NewTracker(DefaultConfig(), 1, 100*time.Millisecond)
	if _, ok := tr.ThreadMean(9); ok {
		t.Fatal("unknown thread reports a mean")
	}
	for i := 0; i < 6; i++ {
		tr.ObserveThread(9, 0.4)
	}
	m, ok := tr.ThreadMean(9)
	if !ok || math.Abs(m-0.4) > 1e-9 {
		t.Errorf("thread mean = %v ok=%v, want 0.4", m, ok)
	}
	tr.ForgetThread(9)
	if _, ok := tr.ThreadMean(9); ok {
		t.Fatal("forgotten thread still reports a mean")
	}
	if len(tr.threads) != 0 {
		t.Errorf("thread map holds %d entries after forget", len(tr.threads))
	}
}

// Config.Active is the single gate the degeneracy contract hangs on.
func TestConfigActive(t *testing.T) {
	c := DefaultConfig()
	if !c.Active() {
		t.Fatal("default config inactive")
	}
	for _, mod := range []func(*Config){
		func(c *Config) { c.Enabled = false },
		func(c *Config) { c.Horizon = 0 },
		func(c *Config) { c.Weight = 0 },
	} {
		c := DefaultConfig()
		mod(&c)
		if c.Active() {
			t.Errorf("config %+v should be inert", c)
		}
	}
}
