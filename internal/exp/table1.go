package exp

import (
	"fmt"

	"repro/internal/topo"
)

func init() {
	Register(&Experiment{
		ID:       "table1",
		Title:    "Test systems",
		PaperRef: "Table 1",
		Expect: "Tigerton: UMA quad-socket quad-core Intel Xeon E7310, 4 MB L2 per " +
			"core pair, no L3. Barcelona: NUMA quad-socket quad-core AMD Opteron " +
			"8350, 512 KB L2 per core, 2 MB L3 per socket.",
		Run: runTable1,
	})
}

func runTable1(ctx *Context) []*Table {
	t := &Table{
		Title:   "Simulated test systems",
		Columns: []string{"property", "tigerton", "barcelona", "nehalem"},
	}
	machines := []*topo.Topology{topo.Tigerton(), topo.Barcelona(), topo.Nehalem()}
	row := func(name string, f func(*topo.Topology) string) {
		cells := []any{name}
		for _, m := range machines {
			cells = append(cells, f(m))
		}
		t.AddRow(cells...)
	}
	row("logical CPUs", func(m *topo.Topology) string { return fmt.Sprintf("%d", m.NumCores()) })
	row("NUMA nodes", func(m *topo.Topology) string { return fmt.Sprintf("%d", m.NUMANodes) })
	row("sched domains", func(m *topo.Topology) string {
		s := ""
		for i, l := range m.Levels {
			if i > 0 {
				s += "/"
			}
			s += fmt.Sprintf("%s(%d)", l.Name, l.Groups[0].Count())
		}
		return s
	})
	row("caches", func(m *topo.Topology) string {
		seen := map[string]int{}
		order := []string{}
		for _, c := range m.Caches {
			if _, ok := seen[c.Name]; !ok {
				order = append(order, c.Name)
			}
			seen[c.Name]++
		}
		s := ""
		for i, n := range order {
			if i > 0 {
				s += " "
			}
			var size int64
			var cores int
			for _, c := range m.Caches {
				if c.Name == n {
					size, cores = c.Size, c.Cores.Count()
				}
			}
			s += fmt.Sprintf("%s:%dK/%dcores", n, size>>10, cores)
		}
		return s
	})
	row("mem capacity/socket", func(m *topo.Topology) string {
		if len(m.MemDomains) == 0 {
			return "inf"
		}
		return fmt.Sprintf("%.1f", m.MemDomains[0].Capacity)
	})
	row("remote-mem penalty", func(m *topo.Topology) string {
		return fmt.Sprintf("%.2f", m.RemoteMemoryPenalty)
	})
	for _, m := range machines {
		if err := m.Validate(); err != nil {
			t.Note("VALIDATION FAILURE %s: %v", m.Name, err)
		}
	}
	t.Note("memory capacity is in memory-core equivalents per socket (see topo.MemDomain); it is the calibrated stand-in for FSB vs on-die-controller bandwidth")
	return []*Table{t}
}
