// Package timeunits implements the time-unit confusion analyzer.
//
// Simulated time (eventq.Time) is a bare int64 alias — deliberately, so
// event callbacks need no wrapper closures — which means the type
// checker cannot tell an absolute simulation timestamp from a
// time.Duration converted to int64, or from wall-clock nanoseconds. The
// three units only meet correctly at explicit conversion sites
// (now + int64(d)); anywhere else, mixing them is a unit bug the
// compiler will never see. This analyzer reconstructs the missing units
// with a taint lattice {SimTime, DurRel, Wall} propagated flow-
// sensitively through locals on the function's CFG
// (internal/analysis/ctrlflow), and flags:
//
//   - wall-clock-derived values (time.Now/Since/Until chains,
//     Unix*/Nanoseconds on them, clock.Stopwatch.Elapsed) reaching any
//     simulated-time sink — the scheduling argument of Queue/Sharded
//     Push/PushPooled/Schedule, Timer.Schedule, Machine.At/AtOn/Run —
//     or mixed arithmetically with simulated time anywhere;
//   - a purely duration-derived value (int64(d), d.Nanoseconds()) used
//     as the absolute time of a *re*-scheduling sink (Queue/Sharded
//     Push/PushPooled/Schedule, Timer.Schedule): scheduling at
//     t = interval instead of t = now + interval silently schedules in
//     the dead past or the wrong epoch. Machine.Run/At are exempt from
//     this rule — running a fresh machine "until int64(d)" is the
//     repo's pervasive duration-since-start idiom and is well-defined.
//
// Taint sources: Machine.Now()/Run() results and the int64 parameter of
// a callback literal handed to a timer API are SimTime; Event.At is
// SimTime; int64/eventq.Time conversions of time.Duration values and
// Nanoseconds/Microseconds/Milliseconds/Seconds calls are DurRel (or
// Wall when the duration itself came from the wall clock). Values of
// unknown provenance stay untainted and never fire a rule, so a
// SimTime-typed parameter plus int64(interval) is silent — the analyzer
// only reports when the unit error is provable.
//
// //lint:allow-timeunits marks a site that mixes units deliberately.
package timeunits

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/analysis"
	"repro/internal/analysis/ctrlflow"
)

// Analyzer is the timeunits analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "timeunits",
	Doc:  "flag wall-clock nanoseconds and bare time.Duration values flowing into simulated-time positions without an explicit conversion site",
	Run:  run,
}

// taint is the unit lattice. unknown (zero) never fires a rule.
type taint uint8

const (
	unknown taint = iota
	simTime       // absolute simulated nanoseconds
	durRel        // relative nanoseconds from a time.Duration
	wall          // derived from the wall clock
)

func (t taint) String() string {
	switch t {
	case simTime:
		return "simulated time"
	case durRel:
		return "a relative time.Duration value"
	case wall:
		return "wall-clock time"
	}
	return "unknown"
}

// absSinks maps receiver type -> method -> index of the absolute-time
// argument. All of them reject wall taint.
var absSinks = map[string]map[string]int{
	"Queue":   {"Push": 0, "PushPooled": 0, "Schedule": 1},
	"Sharded": {"Push": 1, "PushPooled": 1, "Schedule": 2},
	"Timer":   {"Schedule": 0},
	"Machine": {"At": 0, "AtOn": 1, "Run": 0},
}

// rescheduleSinks is the subset of absSinks whose argument must not be a
// bare duration: these re-arm timers on machines already deep into a
// run, where t = interval is the dead past.
var rescheduleSinks = map[string]bool{"Queue": true, "Sharded": true, "Timer": true}

// callbackTakers maps receiver type -> methods whose function-literal
// argument receives the firing time: the literal's int64 parameter is a
// SimTime source.
var callbackTakers = map[string]map[string]bool{
	"Queue":   {"Push": true, "PushPooled": true},
	"Sharded": {"PushPooled": true},
	"Machine": {"At": true, "AtOn": true, "After": true, "NewTimer": true, "NewCoreTimer": true},
}

// state maps int64-ish local variables to their unit taint.
type state map[types.Object]taint

func cloneState(s state) state {
	c := make(state, len(s))
	for k, v := range s {
		c[k] = v
	}
	return c
}

// joinState merges unit facts: agreement survives, disagreement decays
// to unknown — except that wall contamination on either path survives
// the join (a value that may carry wall time is still unfit for a sink).
func joinState(dst, src state) bool {
	changed := false
	for k, sv := range src {
		dv, ok := dst[k]
		if !ok {
			dst[k] = sv
			changed = true
			continue
		}
		nv := dv
		switch {
		case dv == sv:
		case dv == wall || sv == wall:
			nv = wall
		default:
			nv = unknown
		}
		if nv != dv {
			dst[k] = nv
			changed = true
		}
	}
	return changed
}

func run(pass *analysis.Pass) error {
	c := &checker{pass: pass, timerLits: map[*ast.FuncLit]bool{}}
	// First sweep: find the callback literals handed to timer APIs, so
	// their now-parameters seed SimTime.
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			recv := analysis.RecvTypeName(pass.TypesInfo, sel)
			if methods, ok := callbackTakers[recv]; ok && methods[sel.Sel.Name] {
				for _, arg := range call.Args {
					if lit, ok := arg.(*ast.FuncLit); ok {
						c.timerLits[lit] = true
					}
				}
			}
			return true
		})
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				if n.Body != nil {
					c.checkFunc(n.Body, nil)
				}
			case *ast.FuncLit:
				c.checkFunc(n.Body, c.entryParams(n))
			}
			return true
		})
	}
	return nil
}

type checker struct {
	pass      *analysis.Pass
	timerLits map[*ast.FuncLit]bool
	reported  map[token.Pos]bool
}

// entryParams seeds the int64 parameters of a timer callback literal
// with SimTime.
func (c *checker) entryParams(lit *ast.FuncLit) state {
	if !c.timerLits[lit] || lit.Type.Params == nil {
		return nil
	}
	s := state{}
	for _, field := range lit.Type.Params.List {
		for _, name := range field.Names {
			obj := c.pass.TypesInfo.Defs[name]
			if obj == nil {
				continue
			}
			if b, ok := obj.Type().Underlying().(*types.Basic); ok && b.Kind() == types.Int64 {
				s[obj] = simTime
			}
		}
	}
	return s
}

func (c *checker) checkFunc(body *ast.BlockStmt, entry state) {
	g := ctrlflow.New(body)
	flow := ctrlflow.Dataflow[state]{
		Entry: func() state {
			if entry == nil {
				return state{}
			}
			return cloneState(entry)
		},
		Clone: cloneState,
		Join:  joinState,
		Transfer: func(n ast.Node, s state) {
			c.transfer(n, s, false)
		},
	}
	in := ctrlflow.Solve(g, flow)
	c.reported = map[token.Pos]bool{}
	ctrlflow.Replay(g, in, cloneState, func(n ast.Node, s state) {
		c.transfer(n, s, true)
	})
}

// transfer applies one CFG node: propagate taint through assignments,
// and in the reporting pass check sinks and mixing.
func (c *checker) transfer(n ast.Node, s state, report bool) {
	if report {
		c.checkNode(n, s)
	}
	switch n := n.(type) {
	case *ast.AssignStmt:
		if len(n.Lhs) == len(n.Rhs) {
			for i := range n.Lhs {
				c.assign(n.Lhs[i], n.Rhs[i], s)
			}
		} else {
			for _, lhs := range n.Lhs {
				if obj := defOrUse(c.pass, lhs); obj != nil {
					delete(s, obj)
				}
			}
		}
	case *ast.DeclStmt:
		if gd, ok := n.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok && len(vs.Names) == len(vs.Values) {
					for i := range vs.Names {
						c.assign(vs.Names[i], vs.Values[i], s)
					}
				}
			}
		}
	case *ast.RangeStmt:
		for _, e := range []ast.Expr{n.Key, n.Value} {
			if obj := defOrUse(c.pass, e); obj != nil {
				delete(s, obj)
			}
		}
	}
}

func (c *checker) assign(lhs, rhs ast.Expr, s state) {
	obj := defOrUse(c.pass, lhs)
	if obj == nil {
		return
	}
	t := c.eval(rhs, s)
	if t == unknown {
		delete(s, obj)
	} else {
		s[obj] = t
	}
}

// checkNode fires the rules on every expression inside one CFG node,
// without descending into nested function literals (they are analyzed as
// their own functions).
func (c *checker) checkNode(n ast.Node, s state) {
	ctrlflow.Inspect(n, func(child ast.Node) bool {
		switch child := child.(type) {
		case *ast.CallExpr:
			c.checkSink(child, s)
		case *ast.BinaryExpr:
			a, b := c.eval(child.X, s), c.eval(child.Y, s)
			if (a == wall && b == simTime) || (a == simTime && b == wall) {
				c.reportf(child.OpPos, "expression mixes wall-clock time with simulated time; simulated timestamps must never meet the wall clock")
			}
		}
		return true
	})
}

// checkSink applies the sink rules to one call.
func (c *checker) checkSink(call *ast.CallExpr, s state) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	recv := analysis.RecvTypeName(c.pass.TypesInfo, sel)
	methods, ok := absSinks[recv]
	if !ok {
		return
	}
	idx, ok := methods[sel.Sel.Name]
	if !ok || idx >= len(call.Args) {
		return
	}
	arg := call.Args[idx]
	switch c.eval(arg, s) {
	case wall:
		c.reportf(arg.Pos(),
			"wall-clock-derived nanoseconds passed as the simulated time of %s.%s; simulated time is a pure function of the event clock", recv, sel.Sel.Name)
	case durRel:
		if rescheduleSinks[recv] {
			c.reportf(arg.Pos(),
				"bare time.Duration value passed as the absolute time of %s.%s; schedule at now + int64(d) (or use the Duration-typed ScheduleAfter/After API) — t = interval alone is the dead past once the clock has advanced", recv, sel.Sel.Name)
		}
	}
}

func (c *checker) reportf(pos token.Pos, format string, args ...any) {
	if c.reported[pos] {
		return
	}
	c.reported[pos] = true
	c.pass.Reportf(pos, "timeunits", format, args...)
}

// eval computes the unit taint of an expression under the current state.
func (c *checker) eval(e ast.Expr, s state) taint {
	switch e := e.(type) {
	case *ast.ParenExpr:
		return c.eval(e.X, s)
	case *ast.UnaryExpr:
		return c.eval(e.X, s)
	case *ast.Ident:
		if obj := defOrUse(c.pass, e); obj != nil {
			return s[obj]
		}
		return unknown
	case *ast.SelectorExpr:
		// Field access: Event.At is an absolute simulated timestamp.
		if e.Sel.Name == "At" && typeName(c.pass, e.X) == "Event" {
			return simTime
		}
		return unknown
	case *ast.BinaryExpr:
		return binTaint(e.Op, c.eval(e.X, s), c.eval(e.Y, s))
	case *ast.CallExpr:
		return c.evalCall(e, s)
	}
	return unknown
}

func (c *checker) evalCall(call *ast.CallExpr, s state) taint {
	// Conversion? int64(d) / eventq.Time(d) of a Duration is the
	// sanctioned unit-crossing site — the result is a relative value.
	if tv, ok := c.pass.TypesInfo.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		inner := c.eval(call.Args[0], s)
		if isDuration(c.pass.TypesInfo.Types[call.Args[0]].Type) && isIntegerType(tv.Type) {
			if inner == wall {
				return wall
			}
			return durRel
		}
		return inner
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return unknown
	}
	// Package functions: the wall-clock roots.
	if path, name := pkgFunc(c.pass, sel); path == "time" {
		switch name {
		case "Now", "Since", "Until":
			return wall
		}
		return unknown
	}
	recv := analysis.RecvTypeName(c.pass.TypesInfo, sel)
	switch {
	case recv == "Machine" && (sel.Sel.Name == "Now" || sel.Sel.Name == "Run"):
		return simTime
	case recv == "Stopwatch" && sel.Sel.Name == "Elapsed":
		return wall
	}
	// Methods on wall-tainted values stay wall (UnixNano, Sub, Add...).
	if c.eval(sel.X, s) == wall {
		return wall
	}
	// Duration extractors on clean durations are relative values.
	switch sel.Sel.Name {
	case "Nanoseconds", "Microseconds", "Milliseconds", "Seconds":
		if isDuration(c.pass.TypesInfo.Types[sel.X].Type) {
			return durRel
		}
	}
	return unknown
}

// binTaint is the unit algebra of one binary operator.
func binTaint(op token.Token, a, b taint) taint {
	if a == wall || b == wall {
		return wall
	}
	switch op {
	case token.ADD:
		if a == simTime || b == simTime {
			// base + offset: the conversion-site idiom.
			return simTime
		}
		if a == durRel && b == durRel {
			return durRel
		}
	case token.SUB:
		switch {
		case a == simTime && b == simTime:
			return durRel // elapsed simulated span
		case a == simTime:
			return simTime
		case a == durRel && b == durRel:
			return durRel
		}
	case token.MUL, token.QUO, token.REM:
		if (a == durRel || b == durRel) && a != simTime && b != simTime {
			return durRel
		}
	}
	return unknown
}

func isDuration(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Duration" && obj.Pkg() != nil && obj.Pkg().Path() == "time"
}

func isIntegerType(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsInteger != 0
}

// typeName returns the named-type name of an expression's type,
// stripping one pointer.
func typeName(pass *analysis.Pass, e ast.Expr) string {
	tv, ok := pass.TypesInfo.Types[e]
	if !ok {
		return ""
	}
	t := tv.Type
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return ""
	}
	return named.Obj().Name()
}

// pkgFunc resolves sel to a package-level function (path, name), or
// ("", "").
func pkgFunc(pass *analysis.Pass, sel *ast.SelectorExpr) (string, string) {
	fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil {
		return "", ""
	}
	if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
		return "", ""
	}
	return fn.Pkg().Path(), fn.Name()
}

// defOrUse resolves an identifier to its variable object through either
// a use or a := definition.
func defOrUse(pass *analysis.Pass, e ast.Expr) types.Object {
	id, ok := e.(*ast.Ident)
	if !ok || id.Name == "_" {
		return nil
	}
	if obj, ok := pass.TypesInfo.Uses[id].(*types.Var); ok {
		return obj
	}
	if obj, ok := pass.TypesInfo.Defs[id].(*types.Var); ok {
		return obj
	}
	return nil
}
