package cpuset

import (
	"testing"
	"testing/quick"
)

func TestOfAndHas(t *testing.T) {
	s := Of(0, 3, 63)
	for c := 0; c < MaxCPU; c++ {
		want := c == 0 || c == 3 || c == 63
		if s.Has(c) != want {
			t.Errorf("Has(%d) = %v, want %v", c, s.Has(c), want)
		}
	}
	if s.Has(-1) || s.Has(64) {
		t.Error("Has out of range returned true")
	}
}

func TestRangeAll(t *testing.T) {
	if got, want := Range(2, 5), Of(2, 3, 4); got != want {
		t.Errorf("Range(2,5) = %v, want %v", got, want)
	}
	if got := All(3); got != Of(0, 1, 2) {
		t.Errorf("All(3) = %v", got)
	}
	if !Range(5, 5).Empty() {
		t.Error("empty range not empty")
	}
}

func TestAddRemove(t *testing.T) {
	var s Set
	s = s.Add(7)
	if !s.Has(7) || s.Count() != 1 {
		t.Fatalf("after Add(7): %v", s)
	}
	s = s.Add(7) // idempotent
	if s.Count() != 1 {
		t.Error("double Add changed count")
	}
	s = s.Remove(7)
	if !s.Empty() {
		t.Error("Remove did not empty the set")
	}
	s = s.Remove(7) // idempotent
	if !s.Empty() {
		t.Error("double Remove changed the set")
	}
}

func TestAddPanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic for Add(64)")
		}
	}()
	Set(0).Add(64)
}

func TestCoresOrderAndFirst(t *testing.T) {
	s := Of(9, 1, 5)
	got := s.Cores()
	want := []int{1, 5, 9}
	if len(got) != len(want) {
		t.Fatalf("Cores = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Cores = %v, want %v", got, want)
		}
	}
	if s.First() != 1 {
		t.Errorf("First = %d", s.First())
	}
	if Set(0).First() != -1 {
		t.Error("First of empty != -1")
	}
}

func TestString(t *testing.T) {
	cases := []struct {
		s    Set
		want string
	}{
		{Set(0), "{}"},
		{Of(3), "3"},
		{Of(0, 1, 2, 3), "0-3"},
		{Of(0, 1, 2, 8, 10, 11), "0-2,8,10-11"},
	}
	for _, c := range cases {
		if got := c.s.String(); got != c.want {
			t.Errorf("%#x.String() = %q, want %q", uint64(c.s), got, c.want)
		}
	}
}

// Set-algebra laws via quick.Check.
func TestPropertySetAlgebra(t *testing.T) {
	cfg := &quick.Config{MaxCount: 500}
	if err := quick.Check(func(a, b uint64) bool {
		x, y := Set(a), Set(b)
		return x.Union(y) == y.Union(x) &&
			x.Intersect(y) == y.Intersect(x) &&
			x.Union(y).Contains(x) &&
			x.Contains(x.Intersect(y)) &&
			x.Minus(y).Intersect(y).Empty() &&
			x.Minus(y).Union(x.Intersect(y)) == x
	}, cfg); err != nil {
		t.Error(err)
	}
	if err := quick.Check(func(a uint64) bool {
		x := Set(a)
		return x.Count() == len(x.Cores())
	}, cfg); err != nil {
		t.Error(err)
	}
}

// Cores round-trips through Of.
func TestPropertyCoresRoundTrip(t *testing.T) {
	if err := quick.Check(func(a uint64) bool {
		x := Set(a)
		return Of(x.Cores()...) == x
	}, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
