package speedbal_test

import (
	"testing"
	"time"

	"repro/internal/cfs"
	"repro/internal/cpuset"
	"repro/internal/linuxlb"
	"repro/internal/sim"
	"repro/internal/speedbal"
	"repro/internal/spmd"
	"repro/internal/task"
	"repro/internal/topo"
)

func newMachine(seed uint64) *sim.Machine {
	return sim.New(topo.SMP(2), sim.Config{Seed: seed, NewScheduler: cfs.Factory()})
}

// threeOnTwo is a barrier-per-iteration SPMD app on two cores.
func threeOnTwo(iters int, work float64) spmd.Spec {
	return spmd.Spec{
		Name: "app", Threads: 3, Iterations: iters, WorkPerIteration: work,
		Model: spmd.UPC(), Affinity: cpuset.All(2),
	}
}

// epThreeOnTwo is an EP-style app: one long compute phase per thread and
// a single final (yield-waiting) barrier — the structure of the paper's
// headline Figure 3 benchmark ("uses negligible memory, no
// synchronization").
func epThreeOnTwo(work float64) spmd.Spec {
	return spmd.Spec{
		Name: "app", Threads: 3, Iterations: 1, WorkPerIteration: work,
		Model: spmd.UPC(), Affinity: cpuset.All(2),
	}
}

// The paper's §1 example with an EP workload: three threads on two
// cores. Queue-length balancing leaves the 2+1 split static — and the
// final yield-waiting barrier keeps the queues occupied, so new-idle
// balancing never fires — capping the app at the slowest thread's 50%
// speed (elapsed ≈ 2W). Speed balancing rotates threads so every thread
// averages 2/3 speed, approaching the ideal 1.5W (§4: "the application
// perceives the system as running at 66% speed").
func TestEPThreeThreadsTwoCores(t *testing.T) {
	const work = 2e9 // 2 s per thread
	ideal := time.Duration(1.5 * work)

	// LOAD: Linux balancer only.
	mLoad := newMachine(1)
	mLoad.AddActor(linuxlb.Default())
	appLoad := spmd.Build(mLoad, epThreeOnTwo(work))
	appLoad.Start()
	mLoad.Run(int64(time.Hour))
	if !appLoad.Done() {
		t.Fatal("LOAD app did not finish")
	}

	// SPEED: speedbalancer manages the app (Linux balancer still runs
	// for unrelated tasks).
	mSpeed := newMachine(1)
	mSpeed.AddActor(linuxlb.Default())
	appSpeed := spmd.Build(mSpeed, epThreeOnTwo(work))
	sb := speedbal.Default()
	sb.Launch(mSpeed, appSpeed)
	mSpeed.Run(int64(time.Hour))
	if !appSpeed.Done() {
		t.Fatal("SPEED app did not finish")
	}

	loadT, speedT := appLoad.Elapsed(), appSpeed.Elapsed()
	t.Logf("ideal %v, SPEED %v, LOAD %v, migrations %d", ideal, speedT, loadT, sb.Migrations)

	// LOAD stays near 2× the per-thread serial time.
	if loadT < time.Duration(1.85*work) {
		t.Errorf("LOAD elapsed %v suspiciously fast; want ≈ %v", loadT, time.Duration(2*work))
	}
	// SPEED must be well below LOAD and within 15% of ideal.
	if speedT >= loadT {
		t.Errorf("SPEED %v not faster than LOAD %v", speedT, loadT)
	}
	if float64(speedT) > 1.15*float64(ideal) {
		t.Errorf("SPEED %v more than 15%% over ideal %v", speedT, ideal)
	}
	if sb.Migrations == 0 {
		t.Error("speed balancer performed no migrations")
	}
}

// Lemma 1's flip side: with fine-grained barriers (S ≪ B) the lockstep
// iteration time is pinned at 2S by the slowest thread and rare
// migrations cannot help — speed balancing provides "the same
// performance as the Linux default" (§4's negative qualifier).
func TestLemma1FineGrainParity(t *testing.T) {
	const iters, work = 400, 2e6 // S = 2 ms ≪ B = 100 ms
	mLoad := newMachine(2)
	mLoad.AddActor(linuxlb.Default())
	appLoad := spmd.Build(mLoad, threeOnTwo(iters, work))
	appLoad.Start()
	mLoad.Run(int64(time.Hour))

	mSpeed := newMachine(2)
	appSpeed := spmd.Build(mSpeed, threeOnTwo(iters, work))
	sb := speedbal.Default()
	sb.Launch(mSpeed, appSpeed)
	mSpeed.Run(int64(time.Hour))

	if !appLoad.Done() || !appSpeed.Done() {
		t.Fatal("apps did not finish")
	}
	ratio := float64(appSpeed.Elapsed()) / float64(appLoad.Elapsed())
	t.Logf("SPEED/LOAD = %.3f (SPEED %v, LOAD %v)", ratio, appSpeed.Elapsed(), appLoad.Elapsed())
	if ratio < 0.9 || ratio > 1.1 {
		t.Errorf("fine-grain SPEED/LOAD = %.3f, want ≈ 1 (Lemma 1 threshold not met)", ratio)
	}
}

// Lemma 1's profitable regime: coarse barriers (S well above the
// 2·ceil(SQ/FQ)·B threshold) let mid-iteration migrations move queued
// work onto the waiting core, beating queue-length balancing.
func TestLemma1CoarseGrainBenefit(t *testing.T) {
	const iters, work = 8, 1e9 // S = 1 s ≫ threshold 2×2×100 ms = 0.4 s
	mLoad := newMachine(2)
	mLoad.AddActor(linuxlb.Default())
	appLoad := spmd.Build(mLoad, threeOnTwo(iters, work))
	appLoad.Start()
	mLoad.Run(int64(time.Hour))

	mSpeed := newMachine(2)
	appSpeed := spmd.Build(mSpeed, threeOnTwo(iters, work))
	sb := speedbal.Default()
	sb.Launch(mSpeed, appSpeed)
	mSpeed.Run(int64(time.Hour))

	if !appLoad.Done() || !appSpeed.Done() {
		t.Fatal("apps did not finish")
	}
	ratio := float64(appSpeed.Elapsed()) / float64(appLoad.Elapsed())
	t.Logf("SPEED/LOAD = %.3f (SPEED %v, LOAD %v, %d migrations)",
		ratio, appSpeed.Elapsed(), appLoad.Elapsed(), sb.Migrations)
	if ratio > 0.92 {
		t.Errorf("coarse-grain SPEED/LOAD = %.3f, want notable improvement (< 0.92)", ratio)
	}
}

// Necessity condition (§4): every thread must run on a fast core at
// least once. With speed balancing each of the three threads should
// receive a nontrivial share of CPU — no thread starves at exactly 1/2
// while others get 1.
func TestSpeedBalancingEqualisesThreadSpeeds(t *testing.T) {
	m := newMachine(3)
	app := spmd.Build(m, epThreeOnTwo(3e9))
	sb := speedbal.Default()
	sb.Launch(m, app)
	m.Run(int64(time.Hour))
	if !app.Done() {
		t.Fatal("app did not finish")
	}
	// All threads compute the same total work, so equal finish times ⇒
	// equal average speeds. Check exec-time spread: spin/yield overhead
	// aside, exec times should be within ~20% of each other.
	var min, max time.Duration
	for i, tk := range app.Tasks {
		if i == 0 || tk.ExecTime < min {
			min = tk.ExecTime
		}
		if i == 0 || tk.ExecTime > max {
			max = tk.ExecTime
		}
	}
	if float64(max) > 1.5*float64(min) {
		t.Errorf("thread exec spread too wide: min %v max %v", min, max)
	}
}

// The post-migration block: cores involved in a migration must not
// migrate again within two balance intervals. We assert the aggregate
// migration rate is bounded by one per (block interval / cores).
func TestMigrationRateBounded(t *testing.T) {
	const iters = 500
	const work = 5e6
	m := newMachine(7)
	app := spmd.Build(m, threeOnTwo(iters, work))
	cfg := speedbal.DefaultConfig()
	sb := speedbal.New(cfg)
	sb.Launch(m, app)
	m.Run(int64(time.Hour))
	if !app.Done() {
		t.Fatal("app did not finish")
	}
	elapsed := app.Elapsed()
	// With 2 cores and a 2-interval block, each migration blocks both
	// cores, so the global rate is at most one per 2 intervals (plus
	// jitter slack).
	maxRate := float64(elapsed)/float64(2*cfg.Interval) + 2
	if float64(sb.Migrations) > maxRate {
		t.Errorf("migrations %d exceed bound %.0f over %v", sb.Migrations, maxRate, elapsed)
	}
}

// Dedicated one-per-core apps must not be disturbed: with equal speeds
// everywhere, the threshold test (s_k/s_global < 0.9) suppresses
// migrations despite measurement noise.
func TestNoSpuriousMigrationsWhenBalanced(t *testing.T) {
	m := newMachine(11)
	app := spmd.Build(m, spmd.Spec{
		Name: "app", Threads: 2, Iterations: 200, WorkPerIteration: 5e6,
		Model: spmd.UPC(), Affinity: cpuset.All(2),
	})
	sb := speedbal.Default()
	sb.Launch(m, app)
	m.Run(int64(time.Hour))
	if !app.Done() {
		t.Fatal("app did not finish")
	}
	if sb.Migrations != 0 {
		t.Errorf("got %d spurious migrations on a perfectly balanced app", sb.Migrations)
	}
}

// Speed balancing respects NUMA blocking: on Barcelona with BlockNUMA,
// no migration crosses nodes.
func TestNUMABlocking(t *testing.T) {
	m := sim.New(topo.Barcelona(), sim.Config{Seed: 5, NewScheduler: cfs.Factory()})
	// 6 threads restricted to cores {0,1} (node 0) ∪ {4,5} (node 1):
	// an uneven 2-2-1-1 spread would tempt cross-node pulls.
	aff := cpuset.Of(0, 1, 4, 5)
	app := spmd.Build(m, spmd.Spec{
		Name: "app", Threads: 6, Iterations: 100, WorkPerIteration: 10e6,
		Model: spmd.UPC(), Affinity: aff,
	})
	sb := speedbal.Default()
	sb.Launch(m, app)

	type move struct{ from, to int }
	var moves []move
	// Track migrations via task state sampling after the run.
	m.Run(int64(time.Hour))
	if !app.Done() {
		t.Fatal("app did not finish")
	}
	_ = moves
	// All threads must finish on the node they started on: with
	// round-robin over {0,1,4,5}, threads 0,1,4,5 start on node 0 or 1
	// and BlockNUMA forbids leaving it.
	for i, tk := range app.Tasks {
		startCore := aff.Cores()[i%4]
		startNode := m.Topo.Cores[startCore].Node
		endNode := m.Topo.Cores[tk.CoreID].Node
		if startNode != endNode {
			t.Errorf("thread %d crossed NUMA nodes: %d → %d", i, startNode, endNode)
		}
	}
}

// The balancer must never violate the managed set: it only moves its
// own application's threads.
func TestOnlyManagedThreadsMoved(t *testing.T) {
	m := newMachine(9)
	m.AddActor(linuxlb.Default())
	hog := m.NewTask("hog", &task.ComputeForever{Chunk: 1e8})
	hog.Affinity = cpuset.Of(0)
	m.StartOn(hog, 0)

	app := spmd.Build(m, threeOnTwo(100, 5e6))
	sb := speedbal.Default()
	sb.Launch(m, app)
	m.Run(int64(30 * time.Second))
	if hog.Migrations != 0 {
		t.Errorf("unmanaged pinned hog migrated %d times", hog.Migrations)
	}
}

// Hotplug: unplug a core mid-run under speed balancing. The balancer
// must never pull work toward the offline core, must not lose the
// drained threads, and must re-adopt the core after replug (its
// post-replug balancer wakes see an idle core and pull work back).
func TestHotplugUnplugReplug(t *testing.T) {
	m := sim.New(topo.SMP(4), sim.Config{Seed: 9, NewScheduler: cfs.Factory()})
	app := spmd.Build(m, spmd.Spec{
		Name: "app", Threads: 4, Iterations: 1, WorkPerIteration: 2e9,
		Model: spmd.UPC(), Affinity: cpuset.All(4),
	})
	cfg := speedbal.DefaultConfig()
	sb := speedbal.New(cfg)

	const unplugAt = 200 * time.Millisecond
	const replugAt = 500 * time.Millisecond
	var badPulls int
	sb.OnMigrate = func(tk *task.Task, from, to int, now int64) {
		if to == 3 && now >= int64(unplugAt) && now < int64(replugAt) {
			badPulls++
		}
	}
	sb.Launch(m, app)
	var busyAtReplug time.Duration
	m.After(unplugAt, func(int64) { m.SetCoreOnline(3, false) })
	m.After(replugAt, func(int64) {
		busyAtReplug = m.Cores[3].BusyTime
		m.SetCoreOnline(3, true)
	})
	m.Run(int64(time.Hour))
	m.Sync()
	if !app.Done() {
		t.Fatal("app did not finish across unplug/replug")
	}
	for _, tk := range app.Tasks {
		if tk.State != task.Done {
			t.Errorf("thread %q lost in state %v", tk.Name, tk.State)
		}
	}
	if badPulls > 0 {
		t.Errorf("%d pulls targeted the offline core", badPulls)
	}
	// The doubled-up core runs at half speed after the drain; once core
	// 3 returns, its balancer thread must notice the idle core and pull
	// a thread back rather than leaving the 2-1-1-0 split in place.
	if sb.Migrations == 0 {
		t.Errorf("no migrations at all — the replugged core was never rebalanced")
	}
	if got := m.Cores[3].BusyTime; got <= busyAtReplug {
		t.Errorf("core 3 busy time did not grow after replug (at replug %v, final %v)", busyAtReplug, got)
	}
}

// Regression (PR 8): a rescan-group balancer whose machine fully drained
// must wake again when a new group member is admitted. Before the
// admission hook, the wake timers died at the drain (correctly — an
// empty machine must not be polled forever) but nothing restarted them,
// so an open-system arrival into the idle machine was never adopted or
// balanced.
func TestAdmissionIntoDrainedMachineRearms(t *testing.T) {
	m := newMachine(21)
	sb := speedbal.New(speedbal.Config{RescanGroup: "dyn"})
	m.AddActor(sb)

	first := m.NewTask("dyn.0", &task.Seq{Actions: []task.Action{task.Compute{Work: 300e6}}})
	first.Group = "dyn"
	m.Start(first)

	// Admit the second batch well after the machine drained and every
	// wake timer gave up: three threads into two cores, the §1 imbalance
	// the balancer exists to fix.
	var second []*task.Task
	m.After(3*time.Second, func(int64) {
		for i := 0; i < 3; i++ {
			tk := m.NewTask("dyn.late", &task.Seq{Actions: []task.Action{task.Compute{Work: 500e6}}})
			tk.Group = "dyn"
			second = append(second, tk)
			m.StartOn(tk, i%2)
		}
	})
	m.Run(int64(time.Hour))

	if first.State != task.Done {
		t.Fatalf("first task in state %v", first.State)
	}
	for i, tk := range second {
		if tk.State != task.Done {
			t.Errorf("late task %d in state %v, want done", i, tk.State)
		}
	}
	// Adoption happens only inside a balancer wake; 4 adoptions prove the
	// loop restarted after the drain.
	if sb.Adopted != 4 {
		t.Errorf("adopted %d tasks, want 4 (wake loop never re-armed?)", sb.Adopted)
	}
}

// Regression (PR 8): a fixed-set balancer finishes its batch, drains its
// wake loop, and is then handed a second batch via Manage mid-run. The
// re-Manage (and the admission hook behind it) must restart the loop —
// the imbalanced second batch gets no migrations otherwise.
func TestManageAfterAllDoneRearms(t *testing.T) {
	m := newMachine(23)
	app1 := spmd.Build(m, spmd.Spec{
		Name: "batch1", Threads: 2, Iterations: 1, WorkPerIteration: 200e6,
		Model: spmd.UPC(), Affinity: cpuset.All(2),
	})
	sb := speedbal.Default()
	sb.Launch(m, app1)

	var app2 *spmd.App
	m.After(3*time.Second, func(int64) {
		app2 = spmd.Build(m, epThreeOnTwo(2e9))
		app2.StartPinned()
		sb.Manage(m, app2.Tasks, cpuset.All(2))
	})
	m.Run(int64(time.Hour))

	if !app1.Done() {
		t.Fatal("first batch did not finish")
	}
	if app2 == nil || !app2.Done() {
		t.Fatal("second batch did not finish")
	}
	// The 3-on-2 EP batch needs pulls to equalise thread speeds; zero
	// migrations means no balancer thread ever woke for it.
	if sb.Migrations == 0 {
		t.Error("no migrations for the mid-run batch — wake loop never re-armed")
	}
	// And the balancing must actually have helped: elapsed near the 1.5W
	// ideal, not the 2W static split.
	if el := app2.Elapsed(); float64(el) > 1.3*1.5e9*2 {
		t.Errorf("second batch elapsed %v, want well under the 2W static split", el)
	}
}
