// Package topo describes simulated machine topologies: cores, clock
// speeds, cache sharing, sockets, NUMA nodes and SMT siblings, plus the
// Linux-style scheduling-domain hierarchy built on top of them.
//
// The two primary machines are the ones evaluated in the paper (Table 1):
//
//   - Tigerton: UMA quad-socket quad-core Intel Xeon E7310. Each pair of
//     cores shares a 4 MB L2; each socket shares a front-side bus; no L3;
//     no NUMA; no SMT. 16 cores.
//   - Barcelona: NUMA quad-socket quad-core AMD Opteron 8350. Cores in a
//     socket share a 2 MB L3; each socket is a NUMA node. 16 cores.
//
// A Nehalem-like 2-socket 4-core 2-way-SMT machine is provided for the
// SMT experiments the paper mentions, and Builder/Asymmetric support
// arbitrary machines (condition 2 in the paper's introduction: cores
// running at different speeds, e.g. Turbo Boost).
package topo

import (
	"fmt"
	"time"

	"repro/internal/cpuset"
)

// Distance classifies how far apart two cores are in the memory
// hierarchy. Larger is farther; migration cost grows with distance.
type Distance int

const (
	// DistSelf means the same core.
	DistSelf Distance = iota
	// DistSMT means two hardware contexts of the same physical core.
	DistSMT
	// DistCache means distinct cores sharing a mid/last-level cache.
	DistCache
	// DistSocket means same socket but no shared cache.
	DistSocket
	// DistNUMA means different NUMA nodes (or different sockets on UMA;
	// on UMA machines the "node" is the whole machine, so cross-socket
	// UMA distance is DistSocket, never DistNUMA).
	DistNUMA
)

// String returns a short human-readable name for the distance.
func (d Distance) String() string {
	switch d {
	case DistSelf:
		return "self"
	case DistSMT:
		return "smt"
	case DistCache:
		return "cache"
	case DistSocket:
		return "socket"
	case DistNUMA:
		return "numa"
	}
	return fmt.Sprintf("Distance(%d)", int(d))
}

// CoreInfo is the static description of one logical CPU.
type CoreInfo struct {
	ID int
	// BaseSpeed is the clock multiplier: work retired per nanosecond of
	// run time. 1.0 is the reference speed; an asymmetric machine gives
	// some cores a different value.
	BaseSpeed float64
	// Node is the NUMA node the core belongs to (0 on UMA machines).
	Node int
	// Socket is the physical package.
	Socket int
	// CacheGroup identifies the set of cores sharing this core's
	// mid/last-level cache. On Tigerton these are the L2 pairs; on
	// Barcelona the L3 socket groups.
	CacheGroup int
	// SMTSiblings is the set of logical CPUs (including this one) that
	// share the physical core. Count()==1 means no SMT.
	SMTSiblings cpuset.Set
}

// DomainLevel is one level of the scheduling-domain hierarchy, innermost
// first, with the Linux balancing parameters the paper quotes in §2.
type DomainLevel struct {
	// Name is the Linux-style level name: "SMT", "MC", "CPU", "NODE".
	Name string
	// Groups partitions all cores into the domains at this level.
	Groups []cpuset.Set
	// BusyInterval is how often a busy core balances at this level.
	BusyInterval time.Duration
	// IdleInterval is how often an idle core balances at this level.
	IdleInterval time.Duration
	// ImbalancePct is the Linux imbalance percentage: groups must differ
	// by more than this ratio (×100) to trigger migration. Typically 125,
	// 110 for SMT.
	ImbalancePct int
	// NewIdle enables immediate balancing when a core in the domain goes
	// idle (SD_BALANCE_NEWIDLE).
	NewIdle bool
	// NUMA marks the level as crossing NUMA nodes; speedbalancer blocks
	// migrations at NUMA levels by default.
	NUMA bool
}

// Cache describes one cache shared by a group of cores; used to compute
// migration warmup costs.
type Cache struct {
	Name  string // e.g. "L2", "L3"
	Size  int64  // bytes
	Cores cpuset.Set
}

// MemDomain is a group of cores sharing a memory path (a front-side bus
// on Tigerton, an on-die memory controller on Barcelona) with finite
// capacity. Capacity is in "memory-core equivalents": the number of
// fully memory-bound (MemIntensity 1.0) tasks the path sustains at full
// speed. When aggregate demand exceeds capacity, the memory-bound
// fraction of every task on the path slows proportionally — this is what
// caps the NAS benchmarks' 16-core speedups in Table 2.
type MemDomain struct {
	Cores    cpuset.Set
	Capacity float64
}

// Topology is a complete machine description.
type Topology struct {
	Name   string
	Cores  []CoreInfo
	Levels []DomainLevel // innermost first
	Caches []Cache
	// MemDomains partitions the cores by shared memory path. Empty
	// means unlimited bandwidth (no contention model).
	MemDomains []MemDomain
	// NUMANodes is the number of NUMA nodes (1 on UMA machines).
	NUMANodes int
	// RemoteMemoryPenalty is the fractional slowdown of a fully
	// memory-bound task whose pages live on a remote node: effective
	// speed is multiplied by 1/(1+p·m) where m is the task's memory
	// intensity. Zero on UMA machines.
	RemoteMemoryPenalty float64
	// MemBandwidth is the per-core cache refill bandwidth (bytes/ns =
	// GB/s) used for migration warmup costs.
	MemBandwidth float64
}

// NumCores returns the number of logical CPUs.
func (t *Topology) NumCores() int { return len(t.Cores) }

// AllCores returns the set of all core IDs.
func (t *Topology) AllCores() cpuset.Set { return cpuset.All(len(t.Cores)) }

// Distance returns the hierarchy distance between two cores.
func (t *Topology) Distance(a, b int) Distance {
	ca, cb := &t.Cores[a], &t.Cores[b]
	switch {
	case a == b:
		return DistSelf
	case ca.SMTSiblings.Has(b):
		return DistSMT
	case ca.CacheGroup == cb.CacheGroup:
		return DistCache
	case ca.Node != cb.Node:
		return DistNUMA
	default:
		return DistSocket
	}
}

// SharedCache returns the smallest cache shared by both cores and true,
// or a zero Cache and false if they share none.
func (t *Topology) SharedCache(a, b int) (Cache, bool) {
	var best Cache
	found := false
	for _, c := range t.Caches {
		if c.Cores.Has(a) && c.Cores.Has(b) {
			if !found || c.Size < best.Size {
				best = c
				found = true
			}
		}
	}
	return best, found
}

// CacheSizeFor returns the size of the largest cache reachable from the
// core (its last-level cache).
func (t *Topology) CacheSizeFor(core int) int64 {
	var best int64
	for _, c := range t.Caches {
		if c.Cores.Has(core) && c.Size > best {
			best = c.Size
		}
	}
	return best
}

// MemDomainOf returns the index of the memory domain containing the
// core, or -1 when no contention model is configured.
func (t *Topology) MemDomainOf(core int) int {
	for i := range t.MemDomains {
		if t.MemDomains[i].Cores.Has(core) {
			return i
		}
	}
	return -1
}

// GroupOf returns the group containing core at the given level index.
func (l *DomainLevel) GroupOf(core int) cpuset.Set {
	for _, g := range l.Groups {
		if g.Has(core) {
			return g
		}
	}
	return cpuset.Set{}
}

// MigrationCost estimates the one-time cache warmup delay a task pays on
// its first run after moving from core `from` to core `to`, given its
// resident set size in bytes.
//
// Calibration follows the numbers the paper quotes from Li et al. [15]:
// microseconds when the footprint fits in a shared cache, up to ~2 ms for
// footprints larger than cache on UMA machines, and larger across NUMA
// nodes. The model: the task must refill min(RSS, destination LLC) at the
// machine's refill bandwidth, plus a fixed kernel-migration overhead of a
// few microseconds; refills over NUMA links are twice as slow.
func (t *Topology) MigrationCost(rssBytes int64, from, to int) time.Duration {
	if from == to {
		return 0
	}
	const kernelOverhead = 3 * time.Microsecond
	d := t.Distance(from, to)
	if d == DistSMT {
		// Hardware contexts share all caches; only the kernel cost.
		return kernelOverhead
	}
	// Working set that must be refilled at the destination.
	refill := rssBytes
	if llc := t.CacheSizeFor(to); llc > 0 && refill > llc {
		refill = llc
	}
	if shared, ok := t.SharedCache(from, to); ok {
		// The shared cache retains the task's lines; only inner
		// (per-core) levels must warm, a small fraction.
		refill = min64(refill, shared.Size/8)
	}
	bw := t.MemBandwidth
	if bw <= 0 {
		bw = 4.0 // bytes per ns (4 GB/s) default
	}
	if d == DistNUMA {
		bw /= 2
	}
	return kernelOverhead + time.Duration(float64(refill)/bw)
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}
