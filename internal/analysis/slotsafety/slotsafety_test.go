package slotsafety_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/slotsafety"
)

func TestSlotsafety(t *testing.T) {
	analysistest.Run(t, "testdata/src", slotsafety.Analyzer, "a", "clean")
}
