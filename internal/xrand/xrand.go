// Package xrand provides a small, fast, deterministic pseudo-random
// number generator used throughout the simulator.
//
// The standard library's math/rand is avoided for two reasons: its global
// generator is shared mutable state, and its exact output sequence is not
// guaranteed to stay stable across Go releases for all helper methods.
// Reproducibility of simulation runs is a hard requirement here — a run
// must be a pure function of (machine, workload, balancer, seed) — so we
// implement xoshiro256** directly. The generator is splittable: derived
// generators for independent actors (one per balancer thread, one per
// application) are produced with Split, so adding an actor never perturbs
// the stream seen by the others.
package xrand

import "math"

// RNG is a xoshiro256** pseudo-random number generator.
// The zero value is invalid; use New.
type RNG struct {
	s [4]uint64
}

// splitmix64 is used to seed the xoshiro state from a single word, and to
// derive split streams. It is the reference seeding procedure recommended
// by the xoshiro authors.
func splitmix64(x *uint64) uint64 {
	*x += 0x9e3779b97f4a7c15
	z := *x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// New returns a generator seeded from the given seed. Two generators with
// the same seed produce identical streams.
func New(seed uint64) *RNG {
	r := &RNG{}
	x := seed
	for i := range r.s {
		r.s[i] = splitmix64(&x)
	}
	// A pathological all-zero state cannot occur: splitmix64 is a
	// bijection over a counter, but guard anyway.
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[0] = 1
	}
	return r
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 random bits.
func (r *RNG) Uint64() uint64 {
	s := &r.s
	result := rotl(s[1]*5, 7) * 9
	t := s[1] << 17
	s[2] ^= s[0]
	s[3] ^= s[1]
	s[1] ^= s[2]
	s[0] ^= s[3]
	s[2] ^= t
	s[3] = rotl(s[3], 45)
	return result
}

// Split returns a new generator whose stream is statistically independent
// of the receiver's. The receiver advances by one step.
func (r *RNG) Split() *RNG {
	x := r.Uint64()
	return New(splitmix64(&x))
}

// Intn returns a uniformly distributed int in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("xrand: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Int63n returns a uniformly distributed int64 in [0, n). It panics if n <= 0.
func (r *RNG) Int63n(n int64) int64 {
	if n <= 0 {
		panic("xrand: Int63n with non-positive n")
	}
	return int64(r.Uint64() % uint64(n))
}

// Float64 returns a uniformly distributed float64 in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Jitter returns a duration-like value in [0, max). It is sugar for
// Int63n with a zero-tolerant max: Jitter(0) is 0.
func (r *RNG) Jitter(max int64) int64 {
	if max <= 0 {
		return 0
	}
	return r.Int63n(max)
}

// Perm returns a random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Exponential returns an exponentially distributed float64 with the
// given rate (mean 1/rate), via the inverse CDF: −ln(1−U)/rate. The
// inverse-transform method consumes exactly one uniform draw per
// variate, so a stream of inter-arrival times advances the generator a
// fixed, predictable number of steps — the property the open-system
// workload generator relies on for per-stream golden tests. math.Log is
// tightly specified, so results are deterministic across platforms. It
// panics if rate <= 0.
func (r *RNG) Exponential(rate float64) float64 {
	if rate <= 0 {
		panic("xrand: Exponential with non-positive rate")
	}
	// Float64 is in [0, 1), so 1−u is in (0, 1] and the log is finite.
	return -math.Log(1-r.Float64()) / rate
}

// Poisson returns a Poisson-distributed count with the given mean, via
// the inverse CDF: one uniform draw located in the cumulative
// distribution by summing pmf terms (p_{k+1} = p_k·mean/(k+1)). Like
// Exponential it consumes exactly one uniform per variate. For means
// large enough that exp(−mean) underflows (≳700) it falls back to a
// rounded normal approximation, which stays deterministic (Sqrt and Log
// are correctly rounded / tightly specified). Non-positive means
// return 0.
func (r *RNG) Poisson(mean float64) int {
	if mean <= 0 {
		return 0
	}
	p := math.Exp(-mean)
	if p <= 0 {
		// Underflow regime: N(mean, mean) rounded and clamped at zero.
		n := mean + math.Sqrt(mean)*r.NormFloat64()
		if n < 0 {
			return 0
		}
		return int(n + 0.5)
	}
	u := r.Float64()
	k, cdf := 0, p
	for u > cdf {
		k++
		p *= mean / float64(k)
		cdf += p
		if p <= 0 {
			// The tail has underflown; u can no longer be reached by
			// summing, so stop at the last representable term.
			break
		}
	}
	return k
}

// NormFloat64 returns a normally distributed float64 with mean 0 and
// standard deviation 1, using the polar (Marsaglia) method. Used to model
// measurement noise in thread-speed samples (the paper notes taskstats
// readings are noisy).
func (r *RNG) NormFloat64() float64 {
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s >= 1 || s == 0 {
			continue
		}
		// math.Sqrt is correctly rounded and math.Log is tightly
		// specified, so results are deterministic across platforms.
		return u * math.Sqrt(-2*math.Log(s)/s)
	}
}
