// Package cpuset provides a compact set of CPU (core) identifiers.
//
// It models the affinity masks used by sched_setaffinity and taskset in
// the paper: a task may only be placed on cores in its mask, the Linux
// load balancer respects masks when pulling, and speedbalancer migrates a
// thread by rewriting its mask to a single core. The set is a fixed-size
// multi-word bitmask sized for datacenter-scale fabrics (1,024 logical
// CPUs — the 16-socket × 64-core machines of the sharded simulator); the
// struct stays comparable, so sets keep working as map keys and in ==
// comparisons against the zero value.
package cpuset

import (
	"fmt"
	"math/bits"
	"strings"
)

// MaxCPU is the largest representable core ID plus one.
const MaxCPU = 1024

// words is the number of 64-bit words backing a Set.
const words = MaxCPU / 64

// Set is a bitmask of core IDs in [0, MaxCPU). The zero value is the
// empty set; Sets are comparable with ==.
type Set struct {
	w [words]uint64
}

// Of returns a set containing exactly the given cores.
func Of(cores ...int) Set {
	var s Set
	for _, c := range cores {
		s = s.Add(c)
	}
	return s
}

// Range returns the set {lo, lo+1, ..., hi-1}.
func Range(lo, hi int) Set {
	var s Set
	for c := lo; c < hi; c++ {
		s = s.Add(c)
	}
	return s
}

// All returns a set of the first n cores.
func All(n int) Set { return Range(0, n) }

// Add returns the set with core c included. It panics if c is out of range.
func (s Set) Add(c int) Set {
	check(c)
	s.w[c>>6] |= 1 << uint(c&63)
	return s
}

// Remove returns the set with core c excluded.
func (s Set) Remove(c int) Set {
	check(c)
	s.w[c>>6] &^= 1 << uint(c&63)
	return s
}

// Has reports whether core c is in the set.
func (s Set) Has(c int) bool {
	if c < 0 || c >= MaxCPU {
		return false
	}
	return s.w[c>>6]&(1<<uint(c&63)) != 0
}

// Count returns the number of cores in the set.
func (s Set) Count() int {
	n := 0
	for _, w := range s.w {
		n += bits.OnesCount64(w)
	}
	return n
}

// Empty reports whether the set has no cores.
func (s Set) Empty() bool { return s == Set{} }

// Union returns s ∪ t.
func (s Set) Union(t Set) Set {
	for i := range s.w {
		s.w[i] |= t.w[i]
	}
	return s
}

// Intersect returns s ∩ t.
func (s Set) Intersect(t Set) Set {
	for i := range s.w {
		s.w[i] &= t.w[i]
	}
	return s
}

// Minus returns s \ t.
func (s Set) Minus(t Set) Set {
	for i := range s.w {
		s.w[i] &^= t.w[i]
	}
	return s
}

// Contains reports whether every core of t is in s.
func (s Set) Contains(t Set) bool {
	for i := range s.w {
		if t.w[i]&^s.w[i] != 0 {
			return false
		}
	}
	return true
}

// First returns the smallest core ID in the set, or -1 if empty.
func (s Set) First() int {
	for i, w := range s.w {
		if w != 0 {
			return i<<6 + bits.TrailingZeros64(w)
		}
	}
	return -1
}

// Next returns the smallest core ID in the set that is >= c, or -1 when
// none is. It lets callers walk a set without allocating.
func (s Set) Next(c int) int {
	if c < 0 {
		c = 0
	}
	if c >= MaxCPU {
		return -1
	}
	i := c >> 6
	w := s.w[i] >> uint(c&63)
	if w != 0 {
		return c + bits.TrailingZeros64(w)
	}
	for i++; i < words; i++ {
		if s.w[i] != 0 {
			return i<<6 + bits.TrailingZeros64(s.w[i])
		}
	}
	return -1
}

// ForEach visits the core IDs in ascending order without allocating; fn
// returning false stops the walk.
func (s Set) ForEach(fn func(c int) bool) {
	for i, w := range s.w {
		base := i << 6
		for ; w != 0; w &= w - 1 {
			if !fn(base + bits.TrailingZeros64(w)) {
				return
			}
		}
	}
}

// Cores returns the core IDs in ascending order.
func (s Set) Cores() []int {
	out := make([]int, 0, s.Count())
	for i, w := range s.w {
		base := i << 6
		for ; w != 0; w &= w - 1 {
			out = append(out, base+bits.TrailingZeros64(w))
		}
	}
	return out
}

// String renders the set in taskset-like list form, e.g. "0-3,8,10-11".
func (s Set) String() string {
	if s.Empty() {
		return "{}"
	}
	var b strings.Builder
	cores := s.Cores()
	for i := 0; i < len(cores); {
		j := i
		for j+1 < len(cores) && cores[j+1] == cores[j]+1 {
			j++
		}
		if b.Len() > 0 {
			b.WriteByte(',')
		}
		if j == i {
			fmt.Fprintf(&b, "%d", cores[i])
		} else {
			fmt.Fprintf(&b, "%d-%d", cores[i], cores[j])
		}
		i = j + 1
	}
	return b.String()
}

func check(c int) {
	if c < 0 || c >= MaxCPU {
		panic(fmt.Sprintf("cpuset: core %d out of range [0,%d)", c, MaxCPU))
	}
}
