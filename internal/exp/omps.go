package exp

import (
	"time"

	"repro/internal/competing"
	"repro/internal/cpuset"
	"repro/internal/npb"
	"repro/internal/perturb"
	"repro/internal/sim"
	"repro/internal/spmd"
	"repro/internal/stats"
	"repro/internal/topo"
)

func init() {
	Register(&Experiment{
		ID:       "fig4omp",
		Title:    "OpenMP workload: default (DEF) vs polling (INF) barriers under LOAD and SPEED",
		PaperRef: "Figure 4 (OpenMP lines) / §6.2",
		Expect: "LOAD with polling barriers (LB_INF) is ~7% better than LB_DEF " +
			"overall on dedicated cores; best overall is SPEED with polling " +
			"(SB_INF ≈ 11% over LB_INF); SPEED with sleeping barriers loses ~3% vs " +
			"LB_DEF because speedbalancer has no special handling for sleepers.",
		Run: runFig4OMP,
	})
	Register(&Experiment{
		ID:       "ompS",
		Title:    "OpenMP class S (barrier-dominated) on Barcelona, 16 cores, polling barriers",
		PaperRef: "§6.4",
		Expect: "Paper: ~45% improvement for class S with polling barriers at 16 " +
			"cores. NOT REPRODUCED (recorded as a negative result): the 45% rides " +
			"on kernel-noise convoy amplification at tens-of-µs barriers, which " +
			"the clean simulator deliberately lacks — measured SB_INF ≈ LB_INF ≈ " +
			"LB_DEF. See EXPERIMENTS.md.",
		Run: runOmpS,
	})
}

func runFig4OMP(ctx *Context) []*Table {
	benches := []npb.Benchmark{npb.BT, npb.CG, npb.FT, npb.IS, npb.SP}
	// Core count 4 makes oversubscribed barrier waits exceed
	// KMP_BLOCKTIME for the coarse benchmarks, exposing the DEF/INF
	// sleep-vs-poll difference; 12 and 14 are the uneven counts.
	coreCounts := []int{4, 12, 14}
	t := &Table{
		Title: "OpenMP run-time ratios (avg over reps and core counts 4/12/14, 16 threads, Tigerton)",
		Columns: []string{"benchmark", "LB_INF/LB_DEF", "SB_INF/LB_INF", "SB_DEF/LB_DEF",
			"SB_INF var%", "LB_INF var%"},
	}
	rn := NewRunner(ctx)
	config := 5000
	var aInf, aDef, aSbInf, aSbDef stats.Sample
	for _, b := range benches {
		rInfDef, rSbLb, rSbDefLbDef := &stats.Sample{}, &stats.Sample{}, &stats.Sample{}
		varS, varL := &stats.Sample{}, &stats.Sample{}
		for _, n := range coreCounts {
			run := func(strat Strategy, model spmd.Model) *stats.Sample {
				s := &stats.Sample{}
				spec := ScaleSpec(ctx, b.Spec(16, model, cpuset.All(n)))
				rn.Repeat(config, RunOpts{
					Topo: topo.Tigerton, Strategy: strat, Spec: spec,
				}, func(_ int, r RunResult) { s.AddDuration(r.Elapsed) })
				config++
				return s
			}
			lbDef := run(StratLoad, spmd.OpenMPDefault())
			lbInf := run(StratLoad, spmd.OpenMPInfinite())
			sbDef := run(StratSpeed, spmd.OpenMPDefault())
			sbInf := run(StratSpeed, spmd.OpenMPInfinite())
			rn.Then(func() {
				rInfDef.Add(lbInf.Mean() / lbDef.Mean())
				rSbLb.Add(sbInf.Mean() / lbInf.Mean())
				rSbDefLbDef.Add(sbDef.Mean() / lbDef.Mean())
				varS.Add(sbInf.VariationPct())
				varL.Add(lbInf.VariationPct())
				aInf.Add(lbInf.Mean())
				aDef.Add(lbDef.Mean())
				aSbInf.Add(sbInf.Mean())
				aSbDef.Add(sbDef.Mean())
				ctx.Logf("fig4omp: %s on %d cores done", b.Name, n)
			})
		}
		rn.Then(func() {
			t.AddRow(b.Name, rInfDef.Mean(), rSbLb.Mean(), rSbDefLbDef.Mean(), varS.Mean(), varL.Mean())
		})
	}
	rn.Wait()
	t.AddRow("all", aInf.Mean()/aDef.Mean(), aSbInf.Mean()/aInf.Mean(), aSbDef.Mean()/aDef.Mean(), "-", "-")
	t.Note("DEF = KMP_BLOCKTIME 200 ms (spin then sleep); INF = poll forever; ratios < 1 favour the numerator")
	return []*Table{t}
}

func runOmpS(ctx *Context) []*Table {
	perturbed := ctx.Perturb.Active()
	t := &Table{
		Title: "OpenMP class S on Barcelona, 16 threads / 15 cores, interactive interference",
		Columns: []string{"benchmark", "LB_DEF s", "LB_INF s", "SB_INF s",
			"SB_INF vs LB_DEF %"},
	}
	// The paper measures class S dedicated on 16 cores, where its 45%
	// comes from kernel-noise convoy effects at ~40 µs barriers. Without
	// a perturbation layer we recreate only the spirit of the measurement
	// — one core withheld and light interactive interference — and record
	// a negative result. Under -perturb (or via the noise-omps driver)
	// the kernel noise itself supplies the interference, so the app gets
	// all 16 cores and no competing task, like the paper's quiet-but-
	// noisy dedicated machine.
	affinity := cpuset.All(15)
	interfere := func(m *sim.Machine) {
		m.AddActor(&competing.Interactive{Period: 20 * time.Millisecond, Burst: 2e6})
	}
	pcfg := ctx.Perturb
	if perturbed {
		t.Title = "OpenMP class S on Barcelona, 16 threads / 16 cores, kernel-noise perturbation"
		affinity = cpuset.All(16)
		interfere = nil
		if pcfg.Noise.Period > 0 && !pcfg.Noise.Kthread {
			// The noise that produces the paper's class-S gap is
			// *schedulable*: kernel daemons whose bursts land on run queues
			// and goad the load balancer into migrating barrier threads.
			// Pure IRQ-style theft at one thread per core turns out to be
			// unbeatable by any migration policy (vacating a stolen core
			// doubles up two polling threads — far worse than the theft), so
			// the driver upgrades plain -perturb noise to the kthread form.
			pcfg.Noise = perturb.KthreadNoise()
		}
		if pcfg.Noise.Kthread && pcfg.Noise.Cores.Empty() {
			// Concentrate the daemons the way real kernel housekeeping
			// concentrates: on the cores that take the interrupt and
			// kworker load — here one or two per Barcelona socket.
			// Uniform daemons raise every core's load average equally
			// and cancel out of the balance.
			pcfg.Noise.Cores = cpuset.Of(0, 1, 4, 8, 9, 12)
		}
	}
	rn := NewRunner(ctx)
	config := 6000
	var impAll stats.Sample
	for _, base := range []npb.Benchmark{npb.BT, npb.CG, npb.IS, npb.SP} {
		b := npb.ClassS(base)
		run := func(strat Strategy, model spmd.Model) *stats.Sample {
			s := &stats.Sample{}
			spec := ScaleSpec(ctx, b.Spec(16, model, affinity))
			rn.Repeat(config, RunOpts{
				Topo: topo.Barcelona, Strategy: strat, Spec: spec, Setup: interfere,
				Perturb: pcfg,
			}, func(_ int, r RunResult) { s.AddDuration(r.Elapsed) })
			config++
			return s
		}
		lbDef := run(StratLoad, spmd.OpenMPDefault())
		lbInf := run(StratLoad, spmd.OpenMPInfinite())
		sbInf := run(StratSpeed, spmd.OpenMPInfinite())
		rn.Then(func() {
			imp := sbInf.ImprovementPct(lbDef)
			impAll.Add(imp)
			t.AddRow(b.Name, lbDef.Mean(), lbInf.Mean(), sbInf.Mean(), imp)
			ctx.Logf("ompS: %s done", b.Name)
		})
	}
	rn.Wait()
	t.AddRow("mean", "-", "-", "-", impAll.Mean())
	t.Note("class S: 1/32 work per iteration, 8x iterations — synchronization dominates")
	if perturbed {
		t.Note("kernel noise steals core time invisibly to run-queue lengths: the load balancer cannot react, the speed balancer sees the victims' t_exec/t_real drop and migrates — the paper's §6.4 regime")
	} else {
		t.Note("paper deviation: the paper's dedicated-machine 45%% at 16/16 cores arises from kernel-noise convoy effects at tens-of-µs barriers that the clean simulator does not produce; measured parity (SPEED pays ~3%% sampling churn) is recorded as a negative result. Run with -perturb noise (or the noise-omps driver) to inject that noise and recover the paper's shape")
	}
	return []*Table{t}
}
