package lbos

import (
	"testing"
	"time"
)

// The quickstart scenario: SPEED beats LOAD on an oversubscribed app.
func TestPublicAPIQuickstart(t *testing.T) {
	spec := AppSpec{
		Name: "solver", Threads: 6, Iterations: 1,
		WorkPerIteration: 500 * Millisecond,
		Model:            UPC(),
		Affinity:         Cores(4),
	}
	loadSys := NewSystem(SMP(4), WithSeed(1))
	loadApp := loadSys.StartApp(spec)
	loadSys.RunUntil(loadApp)

	speedSys := NewSystem(SMP(4), WithSeed(1))
	speedApp := speedSys.BuildApp(spec)
	bal := speedSys.SpeedBalance(speedApp, SpeedConfig{})
	speedSys.RunUntil(speedApp)

	if !loadApp.Done() || !speedApp.Done() {
		t.Fatal("apps did not finish")
	}
	if speedApp.Elapsed() >= loadApp.Elapsed() {
		t.Errorf("SPEED %v not faster than LOAD %v", speedApp.Elapsed(), loadApp.Elapsed())
	}
	if bal.Migrations == 0 {
		t.Error("no migrations performed")
	}
}

// Every system option builds and runs.
func TestSystemOptions(t *testing.T) {
	spec := AppSpec{
		Name: "a", Threads: 3, Iterations: 3,
		WorkPerIteration: 5 * Millisecond, Model: UPC(),
	}
	for _, opt := range []struct {
		name string
		opts []Option
	}{
		{"linux", nil},
		{"ule", []Option{WithULE()}},
		{"dwrr", []Option{WithDWRR()}},
		{"none", []Option{WithoutBalancing()}},
	} {
		sys := NewSystem(SMP(2), append(opt.opts, WithSeed(2))...)
		app := sys.StartApp(spec)
		sys.RunUntil(app)
		if !app.Done() {
			t.Errorf("%s: app did not finish", opt.name)
		}
	}
}

// Machine presets validate and have the Table 1 shapes.
func TestMachinePresets(t *testing.T) {
	for _, f := range []func() *Topology{Tigerton, Barcelona, Nehalem} {
		tp := f()
		if err := tp.Validate(); err != nil {
			t.Errorf("%s: %v", tp.Name, err)
		}
		if tp.NumCores() != 16 {
			t.Errorf("%s: %d cores", tp.Name, tp.NumCores())
		}
	}
}

// Benchmark suite is wired through.
func TestBenchmarkSuite(t *testing.T) {
	if len(BenchmarkSuite()) != 6 {
		t.Errorf("suite size %d", len(BenchmarkSuite()))
	}
	sys := NewSystem(Tigerton(), WithSeed(3))
	spec := SP.Spec(16, OpenMPInfinite(), Cores(16))
	spec.Iterations = 50
	app := sys.StartPinned(spec)
	sys.RunUntil(app)
	if !app.Done() {
		t.Fatal("sp.A did not finish")
	}
	if sp := app.Speedup(); sp < 5 {
		t.Errorf("sp.A one-per-core speedup %.2f, want > 5", sp)
	}
}

// Competitors attach through the facade.
func TestCompetitors(t *testing.T) {
	sys := NewSystem(SMP(4), WithSeed(4))
	hog := sys.AddCPUHog(0)
	mk := sys.AddMakeJ(2)
	sys.RunFor(2 * time.Second)
	if hog.ExecTime == 0 {
		t.Error("hog did not run")
	}
	if mk.JobsFinished == 0 {
		t.Error("make -j finished no jobs")
	}
}

// Experiments are reachable through the facade.
func TestExperimentFacade(t *testing.T) {
	if len(Experiments()) < 17 {
		t.Errorf("only %d experiments", len(Experiments()))
	}
	e, err := ExperimentByID("table1")
	if err != nil {
		t.Fatal(err)
	}
	tables := e.Run(&ExperimentContext{Reps: 1, Scale: 32})
	if len(tables) == 0 || len(tables[0].Rows) == 0 {
		t.Error("table1 produced nothing")
	}
}

// RunUntil with several apps waits for all of them.
func TestRunUntilMultipleApps(t *testing.T) {
	sys := NewSystem(SMP(4), WithSeed(5))
	a := sys.StartApp(AppSpec{Name: "a", Threads: 2, Iterations: 2,
		WorkPerIteration: 10 * Millisecond, Model: UPC()})
	b := sys.StartApp(AppSpec{Name: "b", Threads: 2, Iterations: 2,
		WorkPerIteration: 30 * Millisecond, Model: UPC()})
	sys.RunUntil(a, b)
	if !a.Done() || !b.Done() {
		t.Errorf("done: a=%v b=%v", a.Done(), b.Done())
	}
}
