// Package competing provides the multiprogrammed workloads the paper
// shares the machine with in §6.3: a pure-compute "cpu-hog", a make -j
// style build (memory- and I/O-using subprocess spawner), and a simple
// interactive task, all unrelated to the managed parallel application
// and therefore balanced by the OS, not by speedbalancer.
package competing

import (
	"fmt"
	"time"

	"repro/internal/cpuset"
	"repro/internal/sim"
	"repro/internal/task"
	"repro/internal/xrand"
)

// CPUHog starts a compute-only task pinned to the given core (the
// Figure 5 competitor: "a compute-intensive cpu-hog that uses no
// memory" pinned to the first core). It returns the task.
func CPUHog(m *sim.Machine, core int) *task.Task {
	t := m.NewTask(fmt.Sprintf("cpu-hog.%d", core), &task.ComputeForever{Chunk: 1e9})
	t.Affinity = cpuset.Of(core)
	m.StartOn(t, core)
	return t
}

// MakeJ models "make -j N": a driver that keeps up to Width compile
// jobs in flight. Each job computes for a random duration, interleaved
// with I/O sleeps (reading sources, writing objects), then exits and is
// replaced — so tasks continually enter and leave run queues, exercising
// the OS placement and balancing paths. Jobs are unpinned: the OS
// balances them freely.
type MakeJ struct {
	// Width is the -j parallelism.
	Width int
	// Affinity restricts jobs to a core subset; zero means all cores.
	Affinity cpuset.Set
	// JobWork is the mean compute per job (speed-1.0 ns; default 80 ms).
	JobWork float64
	// JobRSS is each job's resident set (default 64 MB).
	JobRSS int64
	// Duration stops spawning after this much simulated time runs out
	// (0 = run forever).
	Duration time.Duration

	m       *sim.Machine
	rng     *xrand.RNG
	stopped bool
	// JobsFinished counts completed jobs.
	JobsFinished int
}

// Start implements sim.Actor.
func (mk *MakeJ) Start(m *sim.Machine) {
	mk.m = m
	mk.rng = m.RNG()
	if mk.Width <= 0 {
		mk.Width = 4
	}
	if mk.JobWork <= 0 {
		mk.JobWork = 80e6
	}
	if mk.JobRSS <= 0 {
		mk.JobRSS = 64 << 20
	}
	if mk.Affinity.Empty() {
		mk.Affinity = m.Topo.AllCores()
	}
	stopAt := int64(-1)
	if mk.Duration > 0 {
		stopAt = m.Now() + int64(mk.Duration)
	}
	m.OnTaskDone(func(t *task.Task) {
		if t.Group != "make" || mk.stopped {
			return
		}
		mk.JobsFinished++
		if stopAt >= 0 && mk.m.Now() >= stopAt {
			return
		}
		// The driver spawns a replacement job after a brief fork gap.
		mk.m.After(200*time.Microsecond, func(int64) { mk.spawn() })
	})
	for i := 0; i < mk.Width; i++ {
		mk.spawn()
	}
}

// Stop ceases respawning; in-flight jobs drain.
func (mk *MakeJ) Stop() { mk.stopped = true }

func (mk *MakeJ) spawn() {
	if mk.stopped {
		return
	}
	// A compile job: read sources (I/O sleep), compute in bursts with
	// occasional page-cache stalls, write output (I/O sleep).
	work := mk.JobWork * (0.5 + mk.rng.Float64())
	bursts := 4
	actions := []task.Action{task.Sleep{D: time.Duration(1+mk.rng.Intn(3)) * time.Millisecond}}
	for i := 0; i < bursts; i++ {
		actions = append(actions, task.Compute{Work: work / float64(bursts)})
		if i < bursts-1 {
			actions = append(actions, task.Sleep{D: 500 * time.Microsecond})
		}
	}
	actions = append(actions, task.Sleep{D: 2 * time.Millisecond})
	t := mk.m.NewTask(fmt.Sprintf("make.job%d", mk.JobsFinished), &task.Seq{Actions: actions})
	t.Group = "make"
	t.Affinity = mk.Affinity
	t.RSS = mk.JobRSS
	t.MemIntensity = 0.3
	mk.m.Start(t)
}

// Interactive models a lightly loaded interactive task: short compute
// bursts separated by long sleeps (quiescent "for long periods relative
// to cpu-intensive applications", §2). The OS sleeper credit keeps its
// latency low without affecting throughput much.
type Interactive struct {
	// Period is the think time between bursts (default 100 ms).
	Period time.Duration
	// Burst is the compute per activation (default 2 ms).
	Burst float64

	Task *task.Task
}

// Start implements sim.Actor.
func (ia *Interactive) Start(m *sim.Machine) {
	if ia.Period == 0 {
		ia.Period = 100 * time.Millisecond
	}
	if ia.Burst == 0 {
		ia.Burst = 2e6
	}
	ia.Task = m.NewTask("interactive", &task.Loop{
		Body: func(int) []task.Action {
			return []task.Action{
				task.Compute{Work: ia.Burst},
				task.Sleep{D: ia.Period},
			}
		},
	})
	m.Start(ia.Task)
}
